file(REMOVE_RECURSE
  "libexaeff_agent.a"
)
