# Empty compiler generated dependencies file for exaeff_agent.
# This may be replaced when dependencies are built.
