file(REMOVE_RECURSE
  "CMakeFiles/exaeff_agent.dir/budget.cc.o"
  "CMakeFiles/exaeff_agent.dir/budget.cc.o.d"
  "CMakeFiles/exaeff_agent.dir/capping_agent.cc.o"
  "CMakeFiles/exaeff_agent.dir/capping_agent.cc.o.d"
  "CMakeFiles/exaeff_agent.dir/fingerprint.cc.o"
  "CMakeFiles/exaeff_agent.dir/fingerprint.cc.o.d"
  "CMakeFiles/exaeff_agent.dir/power_steering.cc.o"
  "CMakeFiles/exaeff_agent.dir/power_steering.cc.o.d"
  "CMakeFiles/exaeff_agent.dir/response_model.cc.o"
  "CMakeFiles/exaeff_agent.dir/response_model.cc.o.d"
  "libexaeff_agent.a"
  "libexaeff_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exaeff_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
