file(REMOVE_RECURSE
  "libexaeff_core.a"
)
