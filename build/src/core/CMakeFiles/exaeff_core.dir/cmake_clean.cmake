file(REMOVE_RECURSE
  "CMakeFiles/exaeff_core.dir/accumulator.cc.o"
  "CMakeFiles/exaeff_core.dir/accumulator.cc.o.d"
  "CMakeFiles/exaeff_core.dir/characterization.cc.o"
  "CMakeFiles/exaeff_core.dir/characterization.cc.o.d"
  "CMakeFiles/exaeff_core.dir/decomposition.cc.o"
  "CMakeFiles/exaeff_core.dir/decomposition.cc.o.d"
  "CMakeFiles/exaeff_core.dir/domain_analysis.cc.o"
  "CMakeFiles/exaeff_core.dir/domain_analysis.cc.o.d"
  "CMakeFiles/exaeff_core.dir/modal.cc.o"
  "CMakeFiles/exaeff_core.dir/modal.cc.o.d"
  "CMakeFiles/exaeff_core.dir/phases.cc.o"
  "CMakeFiles/exaeff_core.dir/phases.cc.o.d"
  "CMakeFiles/exaeff_core.dir/projection.cc.o"
  "CMakeFiles/exaeff_core.dir/projection.cc.o.d"
  "CMakeFiles/exaeff_core.dir/report.cc.o"
  "CMakeFiles/exaeff_core.dir/report.cc.o.d"
  "libexaeff_core.a"
  "libexaeff_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exaeff_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
