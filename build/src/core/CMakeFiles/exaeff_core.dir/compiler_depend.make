# Empty compiler generated dependencies file for exaeff_core.
# This may be replaced when dependencies are built.
