
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/accumulator.cc" "src/core/CMakeFiles/exaeff_core.dir/accumulator.cc.o" "gcc" "src/core/CMakeFiles/exaeff_core.dir/accumulator.cc.o.d"
  "/root/repo/src/core/characterization.cc" "src/core/CMakeFiles/exaeff_core.dir/characterization.cc.o" "gcc" "src/core/CMakeFiles/exaeff_core.dir/characterization.cc.o.d"
  "/root/repo/src/core/decomposition.cc" "src/core/CMakeFiles/exaeff_core.dir/decomposition.cc.o" "gcc" "src/core/CMakeFiles/exaeff_core.dir/decomposition.cc.o.d"
  "/root/repo/src/core/domain_analysis.cc" "src/core/CMakeFiles/exaeff_core.dir/domain_analysis.cc.o" "gcc" "src/core/CMakeFiles/exaeff_core.dir/domain_analysis.cc.o.d"
  "/root/repo/src/core/modal.cc" "src/core/CMakeFiles/exaeff_core.dir/modal.cc.o" "gcc" "src/core/CMakeFiles/exaeff_core.dir/modal.cc.o.d"
  "/root/repo/src/core/phases.cc" "src/core/CMakeFiles/exaeff_core.dir/phases.cc.o" "gcc" "src/core/CMakeFiles/exaeff_core.dir/phases.cc.o.d"
  "/root/repo/src/core/projection.cc" "src/core/CMakeFiles/exaeff_core.dir/projection.cc.o" "gcc" "src/core/CMakeFiles/exaeff_core.dir/projection.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/exaeff_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/exaeff_core.dir/report.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/exaeff_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/exaeff_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/exaeff_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/exaeff_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/exaeff_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/exaeff_workloads.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
