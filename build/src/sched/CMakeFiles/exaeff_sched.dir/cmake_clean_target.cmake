file(REMOVE_RECURSE
  "libexaeff_sched.a"
)
