# Empty compiler generated dependencies file for exaeff_sched.
# This may be replaced when dependencies are built.
