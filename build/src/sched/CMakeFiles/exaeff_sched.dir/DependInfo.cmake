
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/domain.cc" "src/sched/CMakeFiles/exaeff_sched.dir/domain.cc.o" "gcc" "src/sched/CMakeFiles/exaeff_sched.dir/domain.cc.o.d"
  "/root/repo/src/sched/fleetgen.cc" "src/sched/CMakeFiles/exaeff_sched.dir/fleetgen.cc.o" "gcc" "src/sched/CMakeFiles/exaeff_sched.dir/fleetgen.cc.o.d"
  "/root/repo/src/sched/log.cc" "src/sched/CMakeFiles/exaeff_sched.dir/log.cc.o" "gcc" "src/sched/CMakeFiles/exaeff_sched.dir/log.cc.o.d"
  "/root/repo/src/sched/policy.cc" "src/sched/CMakeFiles/exaeff_sched.dir/policy.cc.o" "gcc" "src/sched/CMakeFiles/exaeff_sched.dir/policy.cc.o.d"
  "/root/repo/src/sched/queue_sim.cc" "src/sched/CMakeFiles/exaeff_sched.dir/queue_sim.cc.o" "gcc" "src/sched/CMakeFiles/exaeff_sched.dir/queue_sim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/exaeff_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/exaeff_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/exaeff_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/exaeff_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/exaeff_workloads.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
