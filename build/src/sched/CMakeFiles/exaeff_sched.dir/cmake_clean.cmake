file(REMOVE_RECURSE
  "CMakeFiles/exaeff_sched.dir/domain.cc.o"
  "CMakeFiles/exaeff_sched.dir/domain.cc.o.d"
  "CMakeFiles/exaeff_sched.dir/fleetgen.cc.o"
  "CMakeFiles/exaeff_sched.dir/fleetgen.cc.o.d"
  "CMakeFiles/exaeff_sched.dir/log.cc.o"
  "CMakeFiles/exaeff_sched.dir/log.cc.o.d"
  "CMakeFiles/exaeff_sched.dir/policy.cc.o"
  "CMakeFiles/exaeff_sched.dir/policy.cc.o.d"
  "CMakeFiles/exaeff_sched.dir/queue_sim.cc.o"
  "CMakeFiles/exaeff_sched.dir/queue_sim.cc.o.d"
  "libexaeff_sched.a"
  "libexaeff_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exaeff_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
