file(REMOVE_RECURSE
  "libexaeff_common.a"
)
