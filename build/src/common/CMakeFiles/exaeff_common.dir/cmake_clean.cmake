file(REMOVE_RECURSE
  "CMakeFiles/exaeff_common.dir/ascii_plot.cc.o"
  "CMakeFiles/exaeff_common.dir/ascii_plot.cc.o.d"
  "CMakeFiles/exaeff_common.dir/csv.cc.o"
  "CMakeFiles/exaeff_common.dir/csv.cc.o.d"
  "CMakeFiles/exaeff_common.dir/rng.cc.o"
  "CMakeFiles/exaeff_common.dir/rng.cc.o.d"
  "CMakeFiles/exaeff_common.dir/stats.cc.o"
  "CMakeFiles/exaeff_common.dir/stats.cc.o.d"
  "CMakeFiles/exaeff_common.dir/table.cc.o"
  "CMakeFiles/exaeff_common.dir/table.cc.o.d"
  "libexaeff_common.a"
  "libexaeff_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exaeff_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
