# Empty dependencies file for exaeff_common.
# This may be replaced when dependencies are built.
