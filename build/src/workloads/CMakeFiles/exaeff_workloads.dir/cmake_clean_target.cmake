file(REMOVE_RECURSE
  "libexaeff_workloads.a"
)
