# Empty compiler generated dependencies file for exaeff_workloads.
# This may be replaced when dependencies are built.
