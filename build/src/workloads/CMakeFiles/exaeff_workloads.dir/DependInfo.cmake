
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/app_profile.cc" "src/workloads/CMakeFiles/exaeff_workloads.dir/app_profile.cc.o" "gcc" "src/workloads/CMakeFiles/exaeff_workloads.dir/app_profile.cc.o.d"
  "/root/repo/src/workloads/ert.cc" "src/workloads/CMakeFiles/exaeff_workloads.dir/ert.cc.o" "gcc" "src/workloads/CMakeFiles/exaeff_workloads.dir/ert.cc.o.d"
  "/root/repo/src/workloads/membench.cc" "src/workloads/CMakeFiles/exaeff_workloads.dir/membench.cc.o" "gcc" "src/workloads/CMakeFiles/exaeff_workloads.dir/membench.cc.o.d"
  "/root/repo/src/workloads/vai.cc" "src/workloads/CMakeFiles/exaeff_workloads.dir/vai.cc.o" "gcc" "src/workloads/CMakeFiles/exaeff_workloads.dir/vai.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/exaeff_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/exaeff_gpusim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
