file(REMOVE_RECURSE
  "CMakeFiles/exaeff_workloads.dir/app_profile.cc.o"
  "CMakeFiles/exaeff_workloads.dir/app_profile.cc.o.d"
  "CMakeFiles/exaeff_workloads.dir/ert.cc.o"
  "CMakeFiles/exaeff_workloads.dir/ert.cc.o.d"
  "CMakeFiles/exaeff_workloads.dir/membench.cc.o"
  "CMakeFiles/exaeff_workloads.dir/membench.cc.o.d"
  "CMakeFiles/exaeff_workloads.dir/vai.cc.o"
  "CMakeFiles/exaeff_workloads.dir/vai.cc.o.d"
  "libexaeff_workloads.a"
  "libexaeff_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exaeff_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
