# Empty compiler generated dependencies file for exaeff_telemetry.
# This may be replaced when dependencies are built.
