file(REMOVE_RECURSE
  "CMakeFiles/exaeff_telemetry.dir/aggregator.cc.o"
  "CMakeFiles/exaeff_telemetry.dir/aggregator.cc.o.d"
  "CMakeFiles/exaeff_telemetry.dir/archive.cc.o"
  "CMakeFiles/exaeff_telemetry.dir/archive.cc.o.d"
  "CMakeFiles/exaeff_telemetry.dir/codec.cc.o"
  "CMakeFiles/exaeff_telemetry.dir/codec.cc.o.d"
  "CMakeFiles/exaeff_telemetry.dir/smi.cc.o"
  "CMakeFiles/exaeff_telemetry.dir/smi.cc.o.d"
  "CMakeFiles/exaeff_telemetry.dir/store.cc.o"
  "CMakeFiles/exaeff_telemetry.dir/store.cc.o.d"
  "libexaeff_telemetry.a"
  "libexaeff_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exaeff_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
