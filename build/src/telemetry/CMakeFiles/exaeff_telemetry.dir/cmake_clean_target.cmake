file(REMOVE_RECURSE
  "libexaeff_telemetry.a"
)
