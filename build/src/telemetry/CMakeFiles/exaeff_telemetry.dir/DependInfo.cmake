
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/aggregator.cc" "src/telemetry/CMakeFiles/exaeff_telemetry.dir/aggregator.cc.o" "gcc" "src/telemetry/CMakeFiles/exaeff_telemetry.dir/aggregator.cc.o.d"
  "/root/repo/src/telemetry/archive.cc" "src/telemetry/CMakeFiles/exaeff_telemetry.dir/archive.cc.o" "gcc" "src/telemetry/CMakeFiles/exaeff_telemetry.dir/archive.cc.o.d"
  "/root/repo/src/telemetry/codec.cc" "src/telemetry/CMakeFiles/exaeff_telemetry.dir/codec.cc.o" "gcc" "src/telemetry/CMakeFiles/exaeff_telemetry.dir/codec.cc.o.d"
  "/root/repo/src/telemetry/smi.cc" "src/telemetry/CMakeFiles/exaeff_telemetry.dir/smi.cc.o" "gcc" "src/telemetry/CMakeFiles/exaeff_telemetry.dir/smi.cc.o.d"
  "/root/repo/src/telemetry/store.cc" "src/telemetry/CMakeFiles/exaeff_telemetry.dir/store.cc.o" "gcc" "src/telemetry/CMakeFiles/exaeff_telemetry.dir/store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/exaeff_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/exaeff_gpusim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
