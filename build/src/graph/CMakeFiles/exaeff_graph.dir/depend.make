# Empty dependencies file for exaeff_graph.
# This may be replaced when dependencies are built.
