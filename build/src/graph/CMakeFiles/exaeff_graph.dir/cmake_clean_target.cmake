file(REMOVE_RECURSE
  "libexaeff_graph.a"
)
