
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/csr.cc" "src/graph/CMakeFiles/exaeff_graph.dir/csr.cc.o" "gcc" "src/graph/CMakeFiles/exaeff_graph.dir/csr.cc.o.d"
  "/root/repo/src/graph/generators.cc" "src/graph/CMakeFiles/exaeff_graph.dir/generators.cc.o" "gcc" "src/graph/CMakeFiles/exaeff_graph.dir/generators.cc.o.d"
  "/root/repo/src/graph/gpu_mapping.cc" "src/graph/CMakeFiles/exaeff_graph.dir/gpu_mapping.cc.o" "gcc" "src/graph/CMakeFiles/exaeff_graph.dir/gpu_mapping.cc.o.d"
  "/root/repo/src/graph/louvain.cc" "src/graph/CMakeFiles/exaeff_graph.dir/louvain.cc.o" "gcc" "src/graph/CMakeFiles/exaeff_graph.dir/louvain.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/exaeff_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/exaeff_gpusim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
