file(REMOVE_RECURSE
  "CMakeFiles/exaeff_graph.dir/csr.cc.o"
  "CMakeFiles/exaeff_graph.dir/csr.cc.o.d"
  "CMakeFiles/exaeff_graph.dir/generators.cc.o"
  "CMakeFiles/exaeff_graph.dir/generators.cc.o.d"
  "CMakeFiles/exaeff_graph.dir/gpu_mapping.cc.o"
  "CMakeFiles/exaeff_graph.dir/gpu_mapping.cc.o.d"
  "CMakeFiles/exaeff_graph.dir/louvain.cc.o"
  "CMakeFiles/exaeff_graph.dir/louvain.cc.o.d"
  "libexaeff_graph.a"
  "libexaeff_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exaeff_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
