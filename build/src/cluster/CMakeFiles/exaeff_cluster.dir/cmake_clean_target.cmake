file(REMOVE_RECURSE
  "libexaeff_cluster.a"
)
