# Empty compiler generated dependencies file for exaeff_cluster.
# This may be replaced when dependencies are built.
