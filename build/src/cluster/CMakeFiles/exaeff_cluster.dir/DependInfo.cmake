
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/node_sim.cc" "src/cluster/CMakeFiles/exaeff_cluster.dir/node_sim.cc.o" "gcc" "src/cluster/CMakeFiles/exaeff_cluster.dir/node_sim.cc.o.d"
  "/root/repo/src/cluster/system_config.cc" "src/cluster/CMakeFiles/exaeff_cluster.dir/system_config.cc.o" "gcc" "src/cluster/CMakeFiles/exaeff_cluster.dir/system_config.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/exaeff_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/exaeff_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/exaeff_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
