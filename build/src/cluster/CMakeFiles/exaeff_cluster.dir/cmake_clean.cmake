file(REMOVE_RECURSE
  "CMakeFiles/exaeff_cluster.dir/node_sim.cc.o"
  "CMakeFiles/exaeff_cluster.dir/node_sim.cc.o.d"
  "CMakeFiles/exaeff_cluster.dir/system_config.cc.o"
  "CMakeFiles/exaeff_cluster.dir/system_config.cc.o.d"
  "libexaeff_cluster.a"
  "libexaeff_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exaeff_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
