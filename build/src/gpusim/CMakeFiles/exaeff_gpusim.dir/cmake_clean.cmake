file(REMOVE_RECURSE
  "CMakeFiles/exaeff_gpusim.dir/control_api.cc.o"
  "CMakeFiles/exaeff_gpusim.dir/control_api.cc.o.d"
  "CMakeFiles/exaeff_gpusim.dir/device_spec.cc.o"
  "CMakeFiles/exaeff_gpusim.dir/device_spec.cc.o.d"
  "CMakeFiles/exaeff_gpusim.dir/perf_model.cc.o"
  "CMakeFiles/exaeff_gpusim.dir/perf_model.cc.o.d"
  "CMakeFiles/exaeff_gpusim.dir/phase_run.cc.o"
  "CMakeFiles/exaeff_gpusim.dir/phase_run.cc.o.d"
  "CMakeFiles/exaeff_gpusim.dir/policy.cc.o"
  "CMakeFiles/exaeff_gpusim.dir/policy.cc.o.d"
  "CMakeFiles/exaeff_gpusim.dir/power_model.cc.o"
  "CMakeFiles/exaeff_gpusim.dir/power_model.cc.o.d"
  "CMakeFiles/exaeff_gpusim.dir/simulator.cc.o"
  "CMakeFiles/exaeff_gpusim.dir/simulator.cc.o.d"
  "libexaeff_gpusim.a"
  "libexaeff_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exaeff_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
