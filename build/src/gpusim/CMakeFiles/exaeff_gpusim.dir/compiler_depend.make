# Empty compiler generated dependencies file for exaeff_gpusim.
# This may be replaced when dependencies are built.
