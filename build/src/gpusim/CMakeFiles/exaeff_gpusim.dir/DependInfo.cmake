
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpusim/control_api.cc" "src/gpusim/CMakeFiles/exaeff_gpusim.dir/control_api.cc.o" "gcc" "src/gpusim/CMakeFiles/exaeff_gpusim.dir/control_api.cc.o.d"
  "/root/repo/src/gpusim/device_spec.cc" "src/gpusim/CMakeFiles/exaeff_gpusim.dir/device_spec.cc.o" "gcc" "src/gpusim/CMakeFiles/exaeff_gpusim.dir/device_spec.cc.o.d"
  "/root/repo/src/gpusim/perf_model.cc" "src/gpusim/CMakeFiles/exaeff_gpusim.dir/perf_model.cc.o" "gcc" "src/gpusim/CMakeFiles/exaeff_gpusim.dir/perf_model.cc.o.d"
  "/root/repo/src/gpusim/phase_run.cc" "src/gpusim/CMakeFiles/exaeff_gpusim.dir/phase_run.cc.o" "gcc" "src/gpusim/CMakeFiles/exaeff_gpusim.dir/phase_run.cc.o.d"
  "/root/repo/src/gpusim/policy.cc" "src/gpusim/CMakeFiles/exaeff_gpusim.dir/policy.cc.o" "gcc" "src/gpusim/CMakeFiles/exaeff_gpusim.dir/policy.cc.o.d"
  "/root/repo/src/gpusim/power_model.cc" "src/gpusim/CMakeFiles/exaeff_gpusim.dir/power_model.cc.o" "gcc" "src/gpusim/CMakeFiles/exaeff_gpusim.dir/power_model.cc.o.d"
  "/root/repo/src/gpusim/simulator.cc" "src/gpusim/CMakeFiles/exaeff_gpusim.dir/simulator.cc.o" "gcc" "src/gpusim/CMakeFiles/exaeff_gpusim.dir/simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/exaeff_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
