file(REMOVE_RECURSE
  "libexaeff_gpusim.a"
)
