# Empty dependencies file for bench_fig10_heatmap.
# This may be replaced when dependencies are built.
