file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_nextgen.dir/bench_ablation_nextgen.cc.o"
  "CMakeFiles/bench_ablation_nextgen.dir/bench_ablation_nextgen.cc.o.d"
  "bench_ablation_nextgen"
  "bench_ablation_nextgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_nextgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
