# Empty compiler generated dependencies file for bench_ablation_nextgen.
# This may be replaced when dependencies are built.
