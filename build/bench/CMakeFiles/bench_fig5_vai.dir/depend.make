# Empty dependencies file for bench_fig5_vai.
# This may be replaced when dependencies are built.
