file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_vai.dir/bench_fig5_vai.cc.o"
  "CMakeFiles/bench_fig5_vai.dir/bench_fig5_vai.cc.o.d"
  "bench_fig5_vai"
  "bench_fig5_vai.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_vai.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
