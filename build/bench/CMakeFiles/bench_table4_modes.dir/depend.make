# Empty dependencies file for bench_table4_modes.
# This may be replaced when dependencies are built.
