file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_modes.dir/bench_table4_modes.cc.o"
  "CMakeFiles/bench_table4_modes.dir/bench_table4_modes.cc.o.d"
  "bench_table4_modes"
  "bench_table4_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
