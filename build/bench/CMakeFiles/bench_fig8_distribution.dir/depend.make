# Empty dependencies file for bench_fig8_distribution.
# This may be replaced when dependencies are built.
