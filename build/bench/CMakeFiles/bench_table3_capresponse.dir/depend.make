# Empty dependencies file for bench_table3_capresponse.
# This may be replaced when dependencies are built.
