file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_capresponse.dir/bench_table3_capresponse.cc.o"
  "CMakeFiles/bench_table3_capresponse.dir/bench_table3_capresponse.cc.o.d"
  "bench_table3_capresponse"
  "bench_table3_capresponse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_capresponse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
