file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_membench.dir/bench_fig6_membench.cc.o"
  "CMakeFiles/bench_fig6_membench.dir/bench_fig6_membench.cc.o.d"
  "bench_fig6_membench"
  "bench_fig6_membench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_membench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
