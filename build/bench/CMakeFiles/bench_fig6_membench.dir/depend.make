# Empty dependencies file for bench_fig6_membench.
# This may be replaced when dependencies are built.
