file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_agent.dir/bench_ablation_agent.cc.o"
  "CMakeFiles/bench_ablation_agent.dir/bench_ablation_agent.cc.o.d"
  "bench_ablation_agent"
  "bench_ablation_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
