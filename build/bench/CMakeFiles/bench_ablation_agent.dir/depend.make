# Empty dependencies file for bench_ablation_agent.
# This may be replaced when dependencies are built.
