# Empty dependencies file for bench_fig2_telemetry.
# This may be replaced when dependencies are built.
