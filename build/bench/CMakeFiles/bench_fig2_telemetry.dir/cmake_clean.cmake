file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_telemetry.dir/bench_fig2_telemetry.cc.o"
  "CMakeFiles/bench_fig2_telemetry.dir/bench_fig2_telemetry.cc.o.d"
  "bench_fig2_telemetry"
  "bench_fig2_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
