# Empty dependencies file for bench_table7_policy.
# This may be replaced when dependencies are built.
