# Empty dependencies file for bench_table5_projection.
# This may be replaced when dependencies are built.
