file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_projection.dir/bench_table5_projection.cc.o"
  "CMakeFiles/bench_table5_projection.dir/bench_table5_projection.cc.o.d"
  "bench_table5_projection"
  "bench_table5_projection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
