# Empty dependencies file for bench_ablation_fingerprint.
# This may be replaced when dependencies are built.
