file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fingerprint.dir/bench_ablation_fingerprint.cc.o"
  "CMakeFiles/bench_ablation_fingerprint.dir/bench_ablation_fingerprint.cc.o.d"
  "bench_ablation_fingerprint"
  "bench_ablation_fingerprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fingerprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
