# Empty dependencies file for bench_fig3_accesspattern.
# This may be replaced when dependencies are built.
