file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_accesspattern.dir/bench_fig3_accesspattern.cc.o"
  "CMakeFiles/bench_fig3_accesspattern.dir/bench_fig3_accesspattern.cc.o.d"
  "bench_fig3_accesspattern"
  "bench_fig3_accesspattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_accesspattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
