# Empty dependencies file for bench_table6_selective.
# This may be replaced when dependencies are built.
