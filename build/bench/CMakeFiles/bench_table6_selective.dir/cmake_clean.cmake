file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_selective.dir/bench_table6_selective.cc.o"
  "CMakeFiles/bench_table6_selective.dir/bench_table6_selective.cc.o.d"
  "bench_table6_selective"
  "bench_table6_selective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_selective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
