# Empty dependencies file for bench_fig9_domains.
# This may be replaced when dependencies are built.
