file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_domains.dir/bench_fig9_domains.cc.o"
  "CMakeFiles/bench_fig9_domains.dir/bench_fig9_domains.cc.o.d"
  "bench_fig9_domains"
  "bench_fig9_domains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_domains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
