file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_node.dir/bench_fig1_node.cc.o"
  "CMakeFiles/bench_fig1_node.dir/bench_fig1_node.cc.o.d"
  "bench_fig1_node"
  "bench_fig1_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
