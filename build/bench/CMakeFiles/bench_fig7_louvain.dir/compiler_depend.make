# Empty compiler generated dependencies file for bench_fig7_louvain.
# This may be replaced when dependencies are built.
