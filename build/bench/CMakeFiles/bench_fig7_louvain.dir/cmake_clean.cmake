file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_louvain.dir/bench_fig7_louvain.cc.o"
  "CMakeFiles/bench_fig7_louvain.dir/bench_fig7_louvain.cc.o.d"
  "bench_fig7_louvain"
  "bench_fig7_louvain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_louvain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
