# Empty compiler generated dependencies file for exaeff.
# This may be replaced when dependencies are built.
