file(REMOVE_RECURSE
  "CMakeFiles/exaeff.dir/exaeff_cli.cc.o"
  "CMakeFiles/exaeff.dir/exaeff_cli.cc.o.d"
  "exaeff"
  "exaeff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exaeff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
