# Empty dependencies file for louvain_energy.
# This may be replaced when dependencies are built.
