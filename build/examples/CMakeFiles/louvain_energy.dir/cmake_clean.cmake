file(REMOVE_RECURSE
  "CMakeFiles/louvain_energy.dir/louvain_energy.cpp.o"
  "CMakeFiles/louvain_energy.dir/louvain_energy.cpp.o.d"
  "louvain_energy"
  "louvain_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/louvain_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
