file(REMOVE_RECURSE
  "CMakeFiles/datacenter_projection.dir/datacenter_projection.cpp.o"
  "CMakeFiles/datacenter_projection.dir/datacenter_projection.cpp.o.d"
  "datacenter_projection"
  "datacenter_projection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacenter_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
