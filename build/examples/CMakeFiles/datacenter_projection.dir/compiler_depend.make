# Empty compiler generated dependencies file for datacenter_projection.
# This may be replaced when dependencies are built.
