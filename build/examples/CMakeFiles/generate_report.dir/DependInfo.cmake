
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/generate_report.cpp" "examples/CMakeFiles/generate_report.dir/generate_report.cpp.o" "gcc" "examples/CMakeFiles/generate_report.dir/generate_report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/exaeff_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/exaeff_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/exaeff_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/exaeff_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/exaeff_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/exaeff_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/exaeff_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/exaeff_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
