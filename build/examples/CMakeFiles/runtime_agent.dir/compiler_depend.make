# Empty compiler generated dependencies file for runtime_agent.
# This may be replaced when dependencies are built.
