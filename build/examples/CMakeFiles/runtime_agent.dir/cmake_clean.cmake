file(REMOVE_RECURSE
  "CMakeFiles/runtime_agent.dir/runtime_agent.cpp.o"
  "CMakeFiles/runtime_agent.dir/runtime_agent.cpp.o.d"
  "runtime_agent"
  "runtime_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
