file(REMOVE_RECURSE
  "CMakeFiles/powercap_advisor.dir/powercap_advisor.cpp.o"
  "CMakeFiles/powercap_advisor.dir/powercap_advisor.cpp.o.d"
  "powercap_advisor"
  "powercap_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/powercap_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
