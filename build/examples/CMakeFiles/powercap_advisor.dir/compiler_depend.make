# Empty compiler generated dependencies file for powercap_advisor.
# This may be replaced when dependencies are built.
