file(REMOVE_RECURSE
  "CMakeFiles/empirical_roofline.dir/empirical_roofline.cpp.o"
  "CMakeFiles/empirical_roofline.dir/empirical_roofline.cpp.o.d"
  "empirical_roofline"
  "empirical_roofline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/empirical_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
