# Empty dependencies file for modal_test.
# This may be replaced when dependencies are built.
