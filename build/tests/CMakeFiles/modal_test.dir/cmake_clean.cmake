file(REMOVE_RECURSE
  "CMakeFiles/modal_test.dir/core/modal_test.cc.o"
  "CMakeFiles/modal_test.dir/core/modal_test.cc.o.d"
  "modal_test"
  "modal_test.pdb"
  "modal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
