file(REMOVE_RECURSE
  "CMakeFiles/gpu_mapping_test.dir/graph/gpu_mapping_test.cc.o"
  "CMakeFiles/gpu_mapping_test.dir/graph/gpu_mapping_test.cc.o.d"
  "gpu_mapping_test"
  "gpu_mapping_test.pdb"
  "gpu_mapping_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_mapping_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
