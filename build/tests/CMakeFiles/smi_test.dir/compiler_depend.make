# Empty compiler generated dependencies file for smi_test.
# This may be replaced when dependencies are built.
