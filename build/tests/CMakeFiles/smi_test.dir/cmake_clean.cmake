file(REMOVE_RECURSE
  "CMakeFiles/smi_test.dir/telemetry/smi_test.cc.o"
  "CMakeFiles/smi_test.dir/telemetry/smi_test.cc.o.d"
  "smi_test"
  "smi_test.pdb"
  "smi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
