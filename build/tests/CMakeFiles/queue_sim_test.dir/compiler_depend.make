# Empty compiler generated dependencies file for queue_sim_test.
# This may be replaced when dependencies are built.
