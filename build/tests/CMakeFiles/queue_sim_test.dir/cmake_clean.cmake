file(REMOVE_RECURSE
  "CMakeFiles/queue_sim_test.dir/sched/queue_sim_test.cc.o"
  "CMakeFiles/queue_sim_test.dir/sched/queue_sim_test.cc.o.d"
  "queue_sim_test"
  "queue_sim_test.pdb"
  "queue_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queue_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
