file(REMOVE_RECURSE
  "CMakeFiles/control_api_test.dir/gpusim/control_api_test.cc.o"
  "CMakeFiles/control_api_test.dir/gpusim/control_api_test.cc.o.d"
  "control_api_test"
  "control_api_test.pdb"
  "control_api_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/control_api_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
