# Empty compiler generated dependencies file for control_api_test.
# This may be replaced when dependencies are built.
