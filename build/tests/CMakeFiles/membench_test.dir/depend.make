# Empty dependencies file for membench_test.
# This may be replaced when dependencies are built.
