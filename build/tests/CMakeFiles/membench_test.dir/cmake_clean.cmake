file(REMOVE_RECURSE
  "CMakeFiles/membench_test.dir/workloads/membench_test.cc.o"
  "CMakeFiles/membench_test.dir/workloads/membench_test.cc.o.d"
  "membench_test"
  "membench_test.pdb"
  "membench_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/membench_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
