file(REMOVE_RECURSE
  "CMakeFiles/fleetgen_test.dir/sched/fleetgen_test.cc.o"
  "CMakeFiles/fleetgen_test.dir/sched/fleetgen_test.cc.o.d"
  "fleetgen_test"
  "fleetgen_test.pdb"
  "fleetgen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleetgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
