# Empty dependencies file for fleetgen_test.
# This may be replaced when dependencies are built.
