# Empty dependencies file for vai_test.
# This may be replaced when dependencies are built.
