file(REMOVE_RECURSE
  "CMakeFiles/vai_test.dir/workloads/vai_test.cc.o"
  "CMakeFiles/vai_test.dir/workloads/vai_test.cc.o.d"
  "vai_test"
  "vai_test.pdb"
  "vai_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vai_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
