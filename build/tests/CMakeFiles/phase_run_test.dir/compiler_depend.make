# Empty compiler generated dependencies file for phase_run_test.
# This may be replaced when dependencies are built.
