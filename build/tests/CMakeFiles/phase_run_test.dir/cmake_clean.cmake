file(REMOVE_RECURSE
  "CMakeFiles/phase_run_test.dir/gpusim/phase_run_test.cc.o"
  "CMakeFiles/phase_run_test.dir/gpusim/phase_run_test.cc.o.d"
  "phase_run_test"
  "phase_run_test.pdb"
  "phase_run_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase_run_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
