file(REMOVE_RECURSE
  "CMakeFiles/domain_analysis_test.dir/core/domain_analysis_test.cc.o"
  "CMakeFiles/domain_analysis_test.dir/core/domain_analysis_test.cc.o.d"
  "domain_analysis_test"
  "domain_analysis_test.pdb"
  "domain_analysis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domain_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
