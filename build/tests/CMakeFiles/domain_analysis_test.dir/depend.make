# Empty dependencies file for domain_analysis_test.
# This may be replaced when dependencies are built.
