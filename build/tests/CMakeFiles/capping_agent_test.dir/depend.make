# Empty dependencies file for capping_agent_test.
# This may be replaced when dependencies are built.
