file(REMOVE_RECURSE
  "CMakeFiles/capping_agent_test.dir/agent/capping_agent_test.cc.o"
  "CMakeFiles/capping_agent_test.dir/agent/capping_agent_test.cc.o.d"
  "capping_agent_test"
  "capping_agent_test.pdb"
  "capping_agent_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capping_agent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
