file(REMOVE_RECURSE
  "CMakeFiles/ert_test.dir/workloads/ert_test.cc.o"
  "CMakeFiles/ert_test.dir/workloads/ert_test.cc.o.d"
  "ert_test"
  "ert_test.pdb"
  "ert_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ert_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
