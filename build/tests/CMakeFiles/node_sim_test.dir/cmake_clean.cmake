file(REMOVE_RECURSE
  "CMakeFiles/node_sim_test.dir/cluster/node_sim_test.cc.o"
  "CMakeFiles/node_sim_test.dir/cluster/node_sim_test.cc.o.d"
  "node_sim_test"
  "node_sim_test.pdb"
  "node_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
