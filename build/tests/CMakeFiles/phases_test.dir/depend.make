# Empty dependencies file for phases_test.
# This may be replaced when dependencies are built.
