file(REMOVE_RECURSE
  "CMakeFiles/device_spec_test.dir/gpusim/device_spec_test.cc.o"
  "CMakeFiles/device_spec_test.dir/gpusim/device_spec_test.cc.o.d"
  "device_spec_test"
  "device_spec_test.pdb"
  "device_spec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_spec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
