# Empty compiler generated dependencies file for power_steering_test.
# This may be replaced when dependencies are built.
