file(REMOVE_RECURSE
  "CMakeFiles/power_steering_test.dir/agent/power_steering_test.cc.o"
  "CMakeFiles/power_steering_test.dir/agent/power_steering_test.cc.o.d"
  "power_steering_test"
  "power_steering_test.pdb"
  "power_steering_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_steering_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
