file(REMOVE_RECURSE
  "CMakeFiles/response_model_test.dir/agent/response_model_test.cc.o"
  "CMakeFiles/response_model_test.dir/agent/response_model_test.cc.o.d"
  "response_model_test"
  "response_model_test.pdb"
  "response_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/response_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
