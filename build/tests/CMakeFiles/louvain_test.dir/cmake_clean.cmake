file(REMOVE_RECURSE
  "CMakeFiles/louvain_test.dir/graph/louvain_test.cc.o"
  "CMakeFiles/louvain_test.dir/graph/louvain_test.cc.o.d"
  "louvain_test"
  "louvain_test.pdb"
  "louvain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/louvain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
