# Empty compiler generated dependencies file for louvain_test.
# This may be replaced when dependencies are built.
