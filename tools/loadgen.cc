// exaeff/tools/loadgen.cc
//
// Closed-loop HTTP load generator for the `exaeff serve` projection
// service.  N workers each issue a deterministic request mix (/project
// over characterized caps, /sweep over the full and bin-restricted
// decompositions, 5% /healthz; --sweep-share sets the /sweep fraction,
// default 25%) and record latency into one shared histogram — plus a
// dedicated /sweep histogram, so sweep-path regressions show up as
// their own p50/p99 in the summary next to the overall quantiles and
// per-status census.  503 (load-shed) responses are retried with the
// shared common::BackoffPolicy schedule: the wait before each retry is
// max(server Retry-After, policy wait) scaled by a seeded jitter in
// [0.75, 1.25), so the client honors the server's hint but never beats
// the policy's floor.
//
// Client-side fault modes reuse the faults spec-item grammar
// (--faults=, comma-separated key=value items):
//
//   slowloris=p:stall_s   send half a request, stall stall_s seconds,
//                         then finish (expects the server's read
//                         deadline to answer 408 when stall is long)
//   garbage=p             send seeded random bytes (expects 400)
//   churn=p               connect and close without sending anything
//   burst=p:n             open n concurrent connections, then read all
//                         (drives admission-queue shedding; 503 here is
//                         expected and not retried)
//   seed=u64              overrides --seed inside the spec
//
// Every per-request decision derives from splitmix64(seed, iteration),
// independent of worker count and interleaving, so the request sequence
// is bit-reproducible for a fixed seed.
//
// Exit status: 1 when any response was an unexpected 5xx (anything
// other than 503) or arrived truncated (body shorter than its declared
// Content-Length); 0 otherwise.  Connection refusals are counted, not
// fatal — a draining server is allowed to stop accepting.
#include <atomic>
#include <cctype>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/backoff.h"
#include "common/error.h"
#include "common/rng.h"
#include "faults/fault_plan.h"
#include "net/socket_io.h"
#include "obs/metrics.h"
#include "run/atomic_file.h"

namespace {

using namespace exaeff;

constexpr int kResponseTimeoutMs = 15000;

struct Options {
  std::string host = "127.0.0.1";
  int port = -1;
  std::size_t workers = 4;
  std::size_t requests = 200;
  std::uint64_t seed = 0xF50;
  double sweep_share = 0.25;  ///< fraction of the mix that is /sweep
  std::string faults_spec;
  std::string json_path;
};

/// Client-side fault plan, parsed from the shared spec grammar.
struct ClientFaultPlan {
  faults::FaultRate slowloris;  ///< param = stall seconds
  double garbage_probability = 0.0;
  double churn_probability = 0.0;
  faults::FaultRate burst;  ///< param = concurrent connections
  std::uint64_t seed = 0;
  bool seed_set = false;

  static ClientFaultPlan parse(std::string_view spec) {
    ClientFaultPlan plan;
    for (const faults::SpecItem& it : faults::parse_spec_items(spec)) {
      if (it.key == "slowloris") {
        plan.slowloris = faults::spec_rate(it);
      } else if (it.key == "garbage") {
        plan.garbage_probability = faults::spec_number(it);
      } else if (it.key == "churn") {
        plan.churn_probability = faults::spec_number(it);
      } else if (it.key == "burst") {
        plan.burst = faults::spec_rate(it);
      } else if (it.key == "seed") {
        plan.seed = faults::spec_u64(it);
        plan.seed_set = true;
      } else {
        throw ConfigError("fault spec: unknown key '" + std::string(it.key) +
                          "'");
      }
    }
    plan.validate();
    return plan;
  }

  void validate() const {
    auto check_p = [](double p, const char* what) {
      if (!(p >= 0.0 && p <= 1.0)) {
        throw ConfigError(std::string("fault spec: ") + what +
                          " probability must be in [0, 1]");
      }
    };
    check_p(slowloris.probability, "slowloris");
    check_p(garbage_probability, "garbage");
    check_p(churn_probability, "churn");
    check_p(burst.probability, "burst");
    if (slowloris.enabled() && !(slowloris.param > 0.0)) {
      throw ConfigError("fault spec: slowloris stall must be > 0");
    }
    if (burst.enabled() &&
        (burst.param < 1.0 || burst.param != std::floor(burst.param) ||
         burst.param > 256.0)) {
      throw ConfigError(
          "fault spec: burst size must be an integer in [1, 256]");
    }
    const double total = slowloris.probability + garbage_probability +
                         churn_probability + burst.probability;
    if (total > 1.0) {
      throw ConfigError("fault spec: fault probabilities sum above 1");
    }
  }
};

/// A parsed (enough) HTTP response: status, Retry-After, completeness.
struct Response {
  bool got_status = false;
  int status = 0;
  double retry_after_s = 0.0;
  bool complete = false;  ///< body length matches Content-Length
};

/// Reads until peer close (Connection: close protocol) and parses the
/// status line, Retry-After and Content-Length.
Response read_response(int fd) {
  Response r;
  std::string data;
  const auto deadline = net::Deadline::after_ms(kResponseTimeoutMs);
  char buf[4096];
  while (!deadline.expired() && data.size() < (1u << 20)) {
    const int rdy = net::wait_readable(fd, deadline.remaining_ms());
    if (rdy <= 0) break;
    const ssize_t n = net::recv_some(fd, buf, sizeof buf);
    if (n <= 0) break;
    data.append(buf, static_cast<std::size_t>(n));
  }
  if (data.size() < 12 || data.compare(0, 5, "HTTP/") != 0) return r;
  const auto sp = data.find(' ');
  if (sp == std::string::npos || sp + 4 > data.size()) return r;
  r.status = std::atoi(data.c_str() + sp + 1);
  r.got_status = r.status >= 100 && r.status <= 599;

  auto head_end = data.find("\r\n\r\n");
  std::size_t body_at = head_end == std::string::npos ? 0 : head_end + 4;
  if (head_end == std::string::npos) {
    head_end = data.find("\n\n");
    body_at = head_end == std::string::npos ? data.size() : head_end + 2;
  }
  const std::string_view head =
      std::string_view(data).substr(0, head_end == std::string::npos
                                           ? data.size()
                                           : head_end);
  long content_length = -1;
  std::size_t pos = 0;
  while (pos < head.size()) {
    auto eol = head.find('\n', pos);
    if (eol == std::string_view::npos) eol = head.size();
    std::string line(head.substr(pos, eol - pos));
    pos = eol + 1;
    for (auto& c : line) c = static_cast<char>(std::tolower(c));
    if (line.rfind("content-length:", 0) == 0) {
      content_length = std::atol(line.c_str() + 15);
    } else if (line.rfind("retry-after:", 0) == 0) {
      r.retry_after_s = std::atof(line.c_str() + 12);
    }
  }
  const auto body_len =
      body_at <= data.size() ? data.size() - body_at : std::size_t{0};
  r.complete = content_length >= 0 &&
               body_len == static_cast<std::size_t>(content_length);
  return r;
}

struct Stats {
  std::mutex mu;
  std::map<int, std::uint64_t> by_status;
  std::uint64_t requests_sent = 0;  ///< HTTP transactions incl retries
  std::uint64_t responses = 0;
  std::uint64_t retries = 0;
  double backoff_wait_s = 0.0;  ///< total slept honoring 503 Retry-After
  std::uint64_t refused = 0;
  std::uint64_t incomplete = 0;
  std::uint64_t unexpected_5xx = 0;
  std::uint64_t faults_slowloris = 0;
  std::uint64_t faults_garbage = 0;
  std::uint64_t faults_churn = 0;
  std::uint64_t faults_burst_conns = 0;

  void record(const Response& r) {
    std::lock_guard<std::mutex> lock(mu);
    ++responses;
    ++by_status[r.status];
    if (r.status >= 500 && r.status != 503) ++unexpected_5xx;
    if (!r.complete) ++incomplete;
  }
};

/// The deterministic request mix over characterized cap settings.
/// /healthz keeps a fixed 5% slice; --sweep-share carves the /sweep
/// fraction out of the remaining 95% (the default 0.25 reproduces the
/// historical 70/25/5 mix draw for draw).  Sweep requests rotate through
/// the fleet-wide decomposition and the five bin-restricted ones, so a
/// sweep-heavy run exercises the memoized restricted-decomposition path,
/// not just the cached full answer.
std::string pick_target(Rng& rng, double sweep_share) {
  static constexpr double kCaps[] = {1500.0, 1300.0, 1100.0, 900.0, 700.0};
  static constexpr const char* kSweeps[] = {
      "/sweep?caps=700:1700:200",       "/sweep?caps=700:1700:200&bin=A",
      "/sweep?caps=700:1700:200&bin=B", "/sweep?caps=700:1700:200&bin=C",
      "/sweep?caps=700:1700:200&bin=D", "/sweep?caps=700:1700:200&bin=E",
  };
  const double which = rng.uniform();
  if (which < 0.95 - sweep_share) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "/project?cap=%.0f",
                  kCaps[rng.uniform_index(5)]);
    return buf;
  }
  if (which < 0.95) return kSweeps[rng.uniform_index(6)];
  return "/healthz";
}

bool is_sweep_target(const std::string& target) {
  return target.rfind("/sweep", 0) == 0;
}

std::string request_text(const std::string& target, const Options& opts) {
  return "GET " + target + " HTTP/1.1\r\nHost: " + opts.host +
         "\r\nUser-Agent: exaeff-loadgen\r\n\r\n";
}

/// One transaction: connect, send, read.  Returns false on refusal.
bool transact(const Options& opts, const std::string& text, Response& out) {
  int fd = net::connect_tcp(opts.host, static_cast<std::uint16_t>(opts.port));
  if (fd < 0) return false;
  if (!net::send_all(fd, text, net::Deadline::after_ms(kResponseTimeoutMs))) {
    net::close_fd(fd);
    return false;
  }
  out = read_response(fd);
  net::close_fd(fd);
  return true;
}

void run_normal(const Options& opts, const common::BackoffPolicy& policy,
                Rng& rng, Stats& stats, obs::Histogram& lat,
                obs::Histogram& sweep_lat) {
  const std::string target = pick_target(rng, opts.sweep_share);
  const bool sweep = is_sweep_target(target);
  const std::string text = request_text(target, opts);
  for (std::size_t attempt = 1; attempt <= policy.max_attempts; ++attempt) {
    Response r;
    const auto t0 = std::chrono::steady_clock::now();
    {
      std::lock_guard<std::mutex> lock(stats.mu);
      ++stats.requests_sent;
    }
    if (!transact(opts, text, r)) {
      std::lock_guard<std::mutex> lock(stats.mu);
      ++stats.refused;
      return;
    }
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    lat.observe(elapsed);
    if (sweep) sweep_lat.observe(elapsed);
    if (r.status == 503 && policy.retries_after(attempt)) {
      // Honor the server's Retry-After but never undercut the policy's
      // own schedule; jitter decorrelates the retry herd.
      const double wait =
          std::max(r.retry_after_s, policy.backoff_before_retry(attempt)) *
          rng.uniform(0.75, 1.25);
      {
        std::lock_guard<std::mutex> lock(stats.mu);
        ++stats.retries;
        stats.backoff_wait_s += wait;
      }
      std::this_thread::sleep_for(std::chrono::duration<double>(wait));
      continue;
    }
    if (r.got_status) {
      stats.record(r);
    } else {
      std::lock_guard<std::mutex> lock(stats.mu);
      ++stats.refused;
    }
    return;
  }
}

void run_slowloris(const Options& opts, double stall_s, Stats& stats) {
  {
    std::lock_guard<std::mutex> lock(stats.mu);
    ++stats.faults_slowloris;
    ++stats.requests_sent;
  }
  int fd = net::connect_tcp(opts.host, static_cast<std::uint16_t>(opts.port));
  if (fd < 0) {
    std::lock_guard<std::mutex> lock(stats.mu);
    ++stats.refused;
    return;
  }
  const std::string text = request_text("/healthz", opts);
  const auto half = text.size() / 2;
  const auto deadline = net::Deadline::after_ms(kResponseTimeoutMs);
  bool sent = net::send_all(fd, std::string_view(text).substr(0, half),
                            deadline);
  std::this_thread::sleep_for(std::chrono::duration<double>(stall_s));
  // The server may have 408'd and closed already; the tail send then
  // fails, which is exactly the slow-loris outcome we want to observe.
  if (sent) {
    (void)net::send_all(fd, std::string_view(text).substr(half), deadline);
  }
  const Response r = read_response(fd);
  net::close_fd(fd);
  if (r.got_status) {
    stats.record(r);
  } else {
    std::lock_guard<std::mutex> lock(stats.mu);
    ++stats.refused;
  }
}

void run_garbage(const Options& opts, Rng& rng, Stats& stats) {
  {
    std::lock_guard<std::mutex> lock(stats.mu);
    ++stats.faults_garbage;
    ++stats.requests_sent;
  }
  std::string junk(16 + rng.uniform_index(64), '\0');
  for (auto& c : junk) {
    // Avoid NUL so the parser exercises its line-level rejections too,
    // not just the byte filter.
    c = static_cast<char>(1 + rng.uniform_index(255));
  }
  Response r;
  if (!transact(opts, junk, r)) {
    std::lock_guard<std::mutex> lock(stats.mu);
    ++stats.refused;
    return;
  }
  if (r.got_status) {
    stats.record(r);
  } else {
    std::lock_guard<std::mutex> lock(stats.mu);
    ++stats.refused;
  }
}

void run_churn(const Options& opts, Stats& stats) {
  {
    std::lock_guard<std::mutex> lock(stats.mu);
    ++stats.faults_churn;
  }
  int fd = net::connect_tcp(opts.host, static_cast<std::uint16_t>(opts.port));
  if (fd < 0) {
    std::lock_guard<std::mutex> lock(stats.mu);
    ++stats.refused;
    return;
  }
  net::close_fd(fd);
}

void run_burst(const Options& opts, std::size_t conns, Rng& rng,
               Stats& stats) {
  const std::string text =
      request_text(pick_target(rng, opts.sweep_share), opts);
  std::vector<int> fds;
  fds.reserve(conns);
  for (std::size_t i = 0; i < conns; ++i) {
    const int fd =
        net::connect_tcp(opts.host, static_cast<std::uint16_t>(opts.port));
    if (fd < 0) {
      std::lock_guard<std::mutex> lock(stats.mu);
      ++stats.refused;
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(stats.mu);
      ++stats.faults_burst_conns;
      ++stats.requests_sent;
    }
    if (!net::send_all(fd, text, net::Deadline::after_ms(kResponseTimeoutMs))) {
      int doomed = fd;
      net::close_fd(doomed);
      std::lock_guard<std::mutex> lock(stats.mu);
      ++stats.refused;
      continue;
    }
    fds.push_back(fd);
  }
  for (int fd : fds) {
    const Response r = read_response(fd);
    net::close_fd(fd);
    if (r.got_status) {
      stats.record(r);
    } else {
      std::lock_guard<std::mutex> lock(stats.mu);
      ++stats.refused;
    }
  }
}

void worker_main(const Options& opts, const ClientFaultPlan& plan,
                 const common::BackoffPolicy& policy, std::size_t worker,
                 Stats& stats, obs::Histogram& lat,
                 obs::Histogram& sweep_lat) {
  for (std::size_t i = worker; i < opts.requests; i += opts.workers) {
    // Iteration-keyed stream: the draw sequence for request i is the
    // same for any worker count, so the mix is seed-reproducible.
    std::uint64_t sm = opts.seed ^ (0x9E3779B97F4A7C15ULL * (i + 1));
    Rng rng(splitmix64(sm));
    const double u = rng.uniform();
    double edge = plan.slowloris.probability;
    if (plan.slowloris.enabled() && u < edge) {
      run_slowloris(opts, plan.slowloris.param, stats);
      continue;
    }
    edge += plan.garbage_probability;
    if (plan.garbage_probability > 0.0 && u < edge) {
      run_garbage(opts, rng, stats);
      continue;
    }
    edge += plan.churn_probability;
    if (plan.churn_probability > 0.0 && u < edge) {
      run_churn(opts, stats);
      continue;
    }
    edge += plan.burst.probability;
    if (plan.burst.enabled() && u < edge) {
      run_burst(opts, static_cast<std::size_t>(plan.burst.param), rng, stats);
      continue;
    }
    run_normal(opts, policy, rng, stats, lat, sweep_lat);
  }
}

std::string summary_json(const Stats& stats, const obs::Histogram& lat,
                         const obs::Histogram& sweep_lat) {
  std::ostringstream out;
  char buf[64];
  auto ms = [&buf](const obs::Histogram& h, double q) {
    std::snprintf(buf, sizeof buf, "%.3f", h.quantile(q) * 1e3);
    return std::string(buf);
  };
  out << "{\n";
  out << "  \"requests_sent\": " << stats.requests_sent << ",\n";
  out << "  \"responses\": " << stats.responses << ",\n";
  out << "  \"by_status\": {";
  bool first = true;
  for (const auto& [status, count] : stats.by_status) {
    if (!first) out << ", ";
    first = false;
    out << "\"" << status << "\": " << count;
  }
  out << "},\n";
  out << "  \"retries\": " << stats.retries << ",\n";
  std::snprintf(buf, sizeof buf, "%.3f", stats.backoff_wait_s);
  out << "  \"backoff_wait_s\": " << buf << ",\n";
  out << "  \"latency_count\": " << lat.count() << ",\n";
  out << "  \"p50_ms\": " << ms(lat, 0.50) << ",\n";
  out << "  \"p90_ms\": " << ms(lat, 0.90) << ",\n";
  out << "  \"p99_ms\": " << ms(lat, 0.99) << ",\n";
  out << "  \"sweep_latency_count\": " << sweep_lat.count() << ",\n";
  out << "  \"sweep_p50_ms\": " << ms(sweep_lat, 0.50) << ",\n";
  out << "  \"sweep_p90_ms\": " << ms(sweep_lat, 0.90) << ",\n";
  out << "  \"sweep_p99_ms\": " << ms(sweep_lat, 0.99) << ",\n";
  out << "  \"faults\": {\"slowloris\": " << stats.faults_slowloris
      << ", \"garbage\": " << stats.faults_garbage
      << ", \"churn\": " << stats.faults_churn
      << ", \"burst_conns\": " << stats.faults_burst_conns << "},\n";
  out << "  \"refused\": " << stats.refused << ",\n";
  out << "  \"incomplete\": " << stats.incomplete << ",\n";
  out << "  \"unexpected_5xx\": " << stats.unexpected_5xx << "\n";
  out << "}\n";
  return out.str();
}

int usage() {
  std::fprintf(
      stderr,
      "usage: loadgen --port=<port> [options]\n"
      "  --host=<addr>        server address (default 127.0.0.1)\n"
      "  --workers=<N>        concurrent closed-loop workers (default 4)\n"
      "  --requests=<N>       total iterations across workers (default "
      "200)\n"
      "  --seed=<u64>         fault/mix seed (default 0xF50)\n"
      "  --sweep-share=<p>    /sweep fraction of the mix, in [0, 0.95]\n"
      "                       (default 0.25; /healthz keeps a fixed 5%%)\n"
      "  --faults=<spec>      client fault plan: slowloris=p:stall_s,\n"
      "                       garbage=p, churn=p, burst=p:n, seed=u64\n"
      "  --json=<path>        write the summary JSON to a file "
      "(atomic);\n"
      "                       default prints to stdout\n");
  return 2;
}

bool parse_u64_flag(const std::string& value, std::uint64_t& out) {
  if (value.empty()) return false;
  char* end = nullptr;
  errno = 0;
  out = std::strtoull(value.c_str(), &end, 0);
  return errno == 0 && end == value.c_str() + value.size();
}

bool parse_double_flag(const std::string& value, double& out) {
  if (value.empty()) return false;
  char* end = nullptr;
  errno = 0;
  out = std::strtod(value.c_str(), &end);
  return errno == 0 && end == value.c_str() + value.size() &&
         std::isfinite(out);
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  opts.seed = 0xF50;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? std::string() : arg.substr(eq + 1);
    std::uint64_t v = 0;
    if (key == "--help") return usage();
    if (key == "--host") {
      opts.host = value;
    } else if (key == "--port") {
      if (!parse_u64_flag(value, v) || v > 65535) return usage();
      opts.port = static_cast<int>(v);
    } else if (key == "--workers") {
      if (!parse_u64_flag(value, v) || v < 1 || v > 256) return usage();
      opts.workers = static_cast<std::size_t>(v);
    } else if (key == "--requests") {
      if (!parse_u64_flag(value, v) || v < 1 || v > 1000000) return usage();
      opts.requests = static_cast<std::size_t>(v);
    } else if (key == "--seed") {
      if (!parse_u64_flag(value, v)) return usage();
      opts.seed = v;
    } else if (key == "--sweep-share") {
      double p = 0.0;
      if (!parse_double_flag(value, p) || p < 0.0 || p > 0.95) {
        return usage();
      }
      opts.sweep_share = p;
    } else if (key == "--faults") {
      opts.faults_spec = value;
    } else if (key == "--json") {
      opts.json_path = value;
    } else {
      std::fprintf(stderr, "loadgen: unknown option '%s'\n", key.c_str());
      return usage();
    }
  }
  if (opts.port < 0) return usage();

  ClientFaultPlan plan;
  try {
    plan = ClientFaultPlan::parse(opts.faults_spec);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "loadgen: %s\n", e.what());
    return 2;
  }
  if (plan.seed_set) opts.seed = plan.seed;

  // The shared retry schedule (satellite of the serve PR): the same
  // BackoffPolicy the cap-applier and shard supervisor use, with a base
  // short enough for an interactive tool.
  common::BackoffPolicy policy;
  policy.max_attempts = 8;
  policy.base_backoff_s = 0.05;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_s = 2.0;
  policy.validate();

  Stats stats;
  obs::Histogram latency(1e-5, 60.0, 48);
  obs::Histogram sweep_latency(1e-5, 60.0, 48);
  std::vector<std::thread> workers;
  workers.reserve(opts.workers);
  for (std::size_t w = 0; w < opts.workers; ++w) {
    workers.emplace_back(
        [&opts, &plan, &policy, w, &stats, &latency, &sweep_latency] {
          worker_main(opts, plan, policy, w, stats, latency, sweep_latency);
        });
  }
  for (auto& t : workers) t.join();

  const std::string summary = summary_json(stats, latency, sweep_latency);
  if (opts.json_path.empty()) {
    std::fputs(summary.c_str(), stdout);
  } else {
    run::AtomicFile out(opts.json_path);
    out.write(summary);
    if (!out.commit()) {
      std::fprintf(stderr, "loadgen: cannot write '%s'\n",
                   opts.json_path.c_str());
      return 1;
    }
  }
  const bool failed = stats.unexpected_5xx > 0 || stats.incomplete > 0;
  if (failed) {
    std::fprintf(stderr,
                 "loadgen: FAILED (unexpected_5xx=%" PRIu64
                 ", incomplete=%" PRIu64 ")\n",
                 stats.unexpected_5xx, stats.incomplete);
  }
  return failed ? 1 : 0;
}
