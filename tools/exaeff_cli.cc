// tools/exaeff_cli.cc
//
// The `exaeff` command-line tool: every workflow in the library behind
// one binary, for operators who want answers without writing C++.
//
//   exaeff ert [freq_mhz]            empirical roofline of the device
//   exaeff characterize              Table III cap-response table
//   exaeff campaign [nodes] [days]   synthesize + summarize a campaign
//   exaeff project [nodes] [days]    campaign + Table V projection
//   exaeff report <path> [nodes]     full analysis report to a file
//   exaeff decompose <watts> [mhz]   utilization envelope for a reading
//   exaeff queue [nodes] [days]      FCFS vs EASY scheduling comparison
//   exaeff faults-sweep [nodes] [days]
//                                    projection drift vs telemetry dropout
//   exaeff serve [nodes] [days]      resident projection service: load the
//                                    characterized fleet once, then answer
//                                    GET /project and /sweep queries over
//                                    HTTP until SIGTERM drains (exit 0);
//                                    requires --listen=<port>
//
// Global options (any position, `--flag=value` form):
//   --trace=<file.json>    write a Chrome trace_event file of the run
//   --metrics=<file>       write metrics (.prom text or .json by extension)
//   --listen=<port>        serve /metrics, /metrics.json, /healthz and
//                          /runinfo over HTTP while the run is in flight
//                          (port 0 binds an ephemeral port; the bound
//                          port is logged as obs.listening)
//   --timeline=<file.json> sample /proc/self (RSS, CPU, threads, fds)
//                          on an interval and write the time series
//   --log-level=<level>    debug|info|warn|error (default info)
//   --faults=<spec>        inject telemetry faults (see faults/fault_plan.h)
//   --min-coverage=<frac>  refuse projections below this telemetry coverage
//   --jobs=<N>             worker threads (default: EXAEFF_JOBS env var or
//                          hardware concurrency); outputs are byte-identical
//                          for any N, including 1
//   --shards=<N>           run campaign/project telemetry across N worker
//                          *processes* with heartbeat supervision and
//                          crash/hang restart; byte-identical to --shards=1
//                          and to the in-process path for any N
//   --checkpoint=<dir>     journal completed work units to <dir>/journal.ckpt
//   --resume               replay journaled work units instead of recomputing
//   --deadline=<sec>       cancel the run after this wall-clock budget
//   --memory-budget=<MB>   out-of-core telemetry: bound resident telemetry
//                          to this budget, spilling closed windows as
//                          chunked archives (campaign/project; requires
//                          --spill-dir=)
//   --spill-dir=<dir>      directory for spill archives (win-NNNNNN.tel);
//                          created if missing
//   --serve-workers=<N>    serve: worker threads (default min(jobs, 8))
//   --serve-queue=<N>      serve: admission queue depth; a full queue
//                          sheds with 503 + Retry-After (default 64)
//   --serve-deadline-ms=<ms>
//                          serve: per-request compute deadline (504 on
//                          expiry; default 2000)
//   --serve-io-timeout-ms=<ms>
//                          serve: socket read/write deadline — the
//                          slow-loris bound (default 5000)
//
// Commands that project savings exit with code 3 (and a clear stderr
// message) when the surviving telemetry is below --min-coverage: a number
// extrapolated from a sliver of the fleet is worse than no number.
//
// Exit codes: 0 success, 2 usage/argument error, 3 data-quality refusal,
// 130 cancelled (SIGINT, SIGTERM, or --deadline; the checkpoint journal,
// if any, is already flushed), 1 any other error.
//
// Results go to stdout; diagnostics, logs and the end-of-run stage
// summary go to stderr, so piping stdout stays clean and deterministic.
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <unistd.h>

#include "common/error.h"
#include "core/decomposition.h"
#include "core/report.h"
#include "exec/thread_pool.h"
#include "faults/injector.h"
#include "obs/exposition_server.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/resource_sampler.h"
#include "obs/span_stats.h"
#include "obs/trace.h"
#include "run/atomic_file.h"
#include "run/checkpoint.h"
#include "run/journal.h"
#include "run/spill_campaign.h"
#include "run/supervisor.h"
#include "sched/fleetgen.h"
#include "sched/join.h"
#include "sched/queue_sim.h"
#include "serve/server.h"
#include "serve/service.h"
#include "shard/coordinator.h"
#include "workloads/ert.h"

namespace {

using namespace exaeff;

int usage() {
  std::fprintf(
      stderr,
      "usage: exaeff <command> [args] [options]\n"
      "commands:\n"
      "  ert [freq_mhz]            empirical roofline (optionally capped)\n"
      "  characterize              benchmark cap-response table\n"
      "  campaign [nodes] [days]   synthesize and summarize a campaign\n"
      "  project [nodes] [days]    campaign + savings projection\n"
      "  report <path> [nodes]     write the full analysis report\n"
      "  decompose <watts> [mhz]   utilization envelope for a reading\n"
      "  queue [nodes] [days]      FCFS vs EASY backfill comparison\n"
      "  faults-sweep [nodes] [days]\n"
      "                            projection drift vs telemetry dropout\n"
      "  serve [nodes] [days]      resident projection service over HTTP "
      "(requires --listen=);\n"
      "                            GET /project?cap=&domain=&bin=, "
      "/sweep?caps=lo:hi:step,\n"
      "                            /healthz /readyz /metrics /runinfo; "
      "SIGTERM drains, exit 0\n"
      "options (any position):\n"
      "  --trace=<file.json>       write Chrome trace_event spans "
      "(chrome://tracing, Perfetto)\n"
      "  --metrics=<file>          write run metrics; .json for JSON, "
      "anything else Prometheus text\n"
      "  --listen=<port>           serve live /metrics, /metrics.json, "
      "/healthz, /runinfo\n"
      "                            over HTTP during the run (0 = ephemeral "
      "port)\n"
      "  --timeline=<file.json>    sample process RSS/CPU/threads/fds into "
      "a JSON time series\n"
      "  --log-level=<level>       debug|info|warn|error (default info)\n"
      "  --faults=<spec>           inject telemetry faults, e.g. "
      "drop=0.1,stuck=0.01:60,seed=7\n"
      "  --min-coverage=<frac>     refuse projections below this coverage "
      "(default 0.5)\n"
      "  --jobs=<N>                worker threads (default: EXAEFF_JOBS or "
      "hardware concurrency);\n"
      "                            outputs are byte-identical for any N\n"
      "  --shards=<N>              campaign/project telemetry across N "
      "supervised worker\n"
      "                            processes (crash/hang restart); "
      "byte-identical for any N\n"
      "  --checkpoint=<dir>        journal completed work units to "
      "<dir>/journal.ckpt\n"
      "                            (campaign, project, faults-sweep)\n"
      "  --resume                  replay finished work units from the "
      "checkpoint journal\n"
      "  --deadline=<sec>          cancel after this wall-clock budget "
      "(exit 130,\n"
      "                            checkpoint preserved)\n"
      "  --memory-budget=<MB>      bound resident telemetry to this budget, "
      "spilling closed\n"
      "                            windows to --spill-dir as chunked "
      "archives\n"
      "                            (campaign, project; byte-identical "
      "results)\n"
      "  --spill-dir=<dir>         directory for telemetry spill archives "
      "(created if missing)\n"
      "  --serve-workers=<N>       serve: worker threads (default "
      "min(jobs, 8))\n"
      "  --serve-queue=<N>         serve: admission queue depth before "
      "503 shedding (default 64)\n"
      "  --serve-deadline-ms=<ms>  serve: per-request deadline, 504 on "
      "expiry (default 2000)\n"
      "  --serve-io-timeout-ms=<ms>\n"
      "                            serve: socket read/write deadline "
      "(default 5000)\n"
      "  --help                    show this message\n");
  return 2;
}

/// Options recognized on every subcommand.
struct GlobalOptions {
  std::string trace_path;
  std::string metrics_path;
  std::string timeline_path;
  std::string log_level = "info";
  std::string faults_spec;
  std::string checkpoint_dir;
  std::string spill_dir;
  double memory_budget_mb = 0.0;  ///< 0 = in-RAM telemetry (no spilling)
  double min_coverage = 0.5;
  double deadline_s = 0.0;  ///< 0 = no deadline
  std::size_t jobs = 0;  ///< 0 = EXAEFF_JOBS env or hardware concurrency
  std::size_t shards = 0;  ///< 0 = in-process; N = worker processes
  std::size_t serve_workers = 0;   ///< 0 = server default
  std::size_t serve_queue = 0;     ///< 0 = server default
  int serve_deadline_ms = 0;       ///< 0 = server default
  int serve_io_timeout_ms = 0;     ///< 0 = server default
  int listen_port = -1;  ///< -1 = no exposition server; 0 = ephemeral
  bool resume = false;
  bool help = false;
};

/// A malformed command line: one-line message, exit code 2.
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Strict "positive finite number" parse: the whole token must convert
/// and the value must be > 0.  Rejects "abc", "3x", "-1", "0", "inf".
bool try_parse_positive(const std::string& text, double& out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || errno == ERANGE ||
      !std::isfinite(v) || v <= 0.0) {
    return false;
  }
  out = v;
  return true;
}

double parse_positive(const std::string& text, const char* what) {
  double v = 0.0;
  if (!try_parse_positive(text, v)) {
    throw UsageError(std::string("exaeff: ") + what +
                     " must be a positive number, got '" + text + "'");
  }
  return v;
}

/// Splits argv into `--flag=value` global options and positional args.
/// Returns false (after complaining) on an unknown flag.
bool parse_args(int argc, char** argv, GlobalOptions& opts,
                std::vector<std::string>& positional) {
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional.push_back(arg);
      continue;
    }
    if (arg == "--help") {
      opts.help = true;
      continue;
    }
    if (arg == "--resume") {
      opts.resume = true;
      continue;
    }
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? std::string() : arg.substr(eq + 1);
    if (key == "--trace") {
      opts.trace_path = value;
    } else if (key == "--metrics") {
      opts.metrics_path = value;
    } else if (key == "--timeline") {
      opts.timeline_path = value;
    } else if (key == "--listen") {
      errno = 0;
      char* end = nullptr;
      const unsigned long v = std::strtoul(value.c_str(), &end, 10);
      if (value.empty() || value.front() == '-' ||
          end != value.c_str() + value.size() || errno == ERANGE ||
          v > 65535) {
        std::fprintf(stderr,
                     "exaeff: --listen must be a port in [0, 65535], "
                     "got '%s'\n",
                     value.c_str());
        return false;
      }
      opts.listen_port = static_cast<int>(v);
    } else if (key == "--log-level") {
      opts.log_level = value;
    } else if (key == "--faults") {
      opts.faults_spec = value;
    } else if (key == "--min-coverage") {
      double v = 0.0;
      if (!try_parse_positive(value, v) || v > 1.0) {
        std::fprintf(stderr,
                     "exaeff: --min-coverage must be in (0, 1], got '%s'\n",
                     value.c_str());
        return false;
      }
      opts.min_coverage = v;
    } else if (key == "--jobs") {
      double v = 0.0;
      if (!try_parse_positive(value, v) || v != std::floor(v) ||
          v > 4096.0) {
        std::fprintf(stderr,
                     "exaeff: --jobs must be a positive integer, got '%s'\n",
                     value.c_str());
        return false;
      }
      opts.jobs = static_cast<std::size_t>(v);
    } else if (key == "--shards") {
      double v = 0.0;
      if (!try_parse_positive(value, v) || v != std::floor(v) ||
          v > 256.0) {
        std::fprintf(
            stderr,
            "exaeff: --shards must be an integer in [1, 256], got '%s'\n",
            value.c_str());
        return false;
      }
      opts.shards = static_cast<std::size_t>(v);
    } else if (key == "--checkpoint") {
      opts.checkpoint_dir = value;
    } else if (key == "--spill-dir") {
      opts.spill_dir = value;
    } else if (key == "--memory-budget") {
      double v = 0.0;
      if (!try_parse_positive(value, v)) {
        std::fprintf(stderr,
                     "exaeff: --memory-budget must be a positive number of "
                     "MB, got '%s'\n",
                     value.c_str());
        return false;
      }
      opts.memory_budget_mb = v;
    } else if (key == "--serve-workers") {
      double v = 0.0;
      if (!try_parse_positive(value, v) || v != std::floor(v) ||
          v > 256.0) {
        std::fprintf(stderr,
                     "exaeff: --serve-workers must be an integer in "
                     "[1, 256], got '%s'\n",
                     value.c_str());
        return false;
      }
      opts.serve_workers = static_cast<std::size_t>(v);
    } else if (key == "--serve-queue") {
      double v = 0.0;
      if (!try_parse_positive(value, v) || v != std::floor(v) ||
          v > 65536.0) {
        std::fprintf(stderr,
                     "exaeff: --serve-queue must be an integer in "
                     "[1, 65536], got '%s'\n",
                     value.c_str());
        return false;
      }
      opts.serve_queue = static_cast<std::size_t>(v);
    } else if (key == "--serve-deadline-ms") {
      double v = 0.0;
      if (!try_parse_positive(value, v) || v != std::floor(v) ||
          v > 3600000.0) {
        std::fprintf(stderr,
                     "exaeff: --serve-deadline-ms must be an integer in "
                     "[1, 3600000], got '%s'\n",
                     value.c_str());
        return false;
      }
      opts.serve_deadline_ms = static_cast<int>(v);
    } else if (key == "--serve-io-timeout-ms") {
      double v = 0.0;
      if (!try_parse_positive(value, v) || v != std::floor(v) ||
          v > 3600000.0) {
        std::fprintf(stderr,
                     "exaeff: --serve-io-timeout-ms must be an integer in "
                     "[1, 3600000], got '%s'\n",
                     value.c_str());
        return false;
      }
      opts.serve_io_timeout_ms = static_cast<int>(v);
    } else if (key == "--deadline") {
      double v = 0.0;
      if (!try_parse_positive(value, v)) {
        std::fprintf(
            stderr,
            "exaeff: --deadline must be a positive number of seconds, "
            "got '%s'\n",
            value.c_str());
        return false;
      }
      opts.deadline_s = v;
    } else {
      std::fprintf(stderr, "exaeff: unknown option '%s'\n", key.c_str());
      return false;
    }
    if (key != "--help" && value.empty()) {
      std::fprintf(stderr, "exaeff: option '%s' needs =<value>\n",
                   key.c_str());
      return false;
    }
  }
  return true;
}

/// Positional numeric argument: validated when present, `fallback` when
/// absent.  Throws UsageError (exit 2) on garbage — a campaign over
/// "abc" nodes should fail loudly, not silently run the 0-node default.
double arg_num(const std::vector<std::string>& args, std::size_t i,
               double fallback, const char* what) {
  return i < args.size() ? parse_positive(args[i], what) : fallback;
}

struct CampaignBundle {
  sched::CampaignConfig cfg;
  workloads::ProfileLibrary library;
  core::RegionBoundaries boundaries;
  std::unique_ptr<core::CampaignAccumulator> acc;
  std::size_t jobs = 0;
  double coverage = 1.0;  ///< surviving / expected telemetry records
};

/// Freshly-created scratch directory for shard journals when the run
/// has no --checkpoint dir; removed (with its shard files) on scope
/// exit, so a shard-mode run without checkpointing leaves no residue.
struct ScratchShardDir {
  std::filesystem::path path;
  ScratchShardDir() {
    path = std::filesystem::temp_directory_path() /
           ("exaeff-shards-" + std::to_string(static_cast<long>(::getpid())));
    std::filesystem::create_directories(path);
  }
  ~ScratchShardDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

/// --memory-budget in bytes (the flag is MB).
std::size_t spill_budget_bytes(const GlobalOptions& opts) {
  return static_cast<std::size_t>(opts.memory_budget_mb * 1024.0 * 1024.0);
}

/// The multi-process telemetry stage: forks opts.shards supervised
/// workers and refolds their journaled chunk partials into `acc` in
/// global chunk order (byte-identical to the in-process path).  On
/// retry exhaustion the survivors are merged, the missing job ranges
/// and merged coverage go into one DataQualityError line, and the CLI
/// exits 3 through the normal data-quality path.
void run_campaign_sharded(const sched::FleetGenerator& gen,
                          const sched::SchedulerLog& log,
                          core::CampaignAccumulator& acc,
                          const faults::FaultPlan& plan,
                          const GlobalOptions& opts,
                          std::uint64_t expected_samples) {
  shard::ShardOptions sopts;
  sopts.shards = opts.shards;
  sopts.resume = opts.resume;
  sopts.spill_dir = opts.spill_dir;
  sopts.memory_budget_bytes = spill_budget_bytes(opts);
  sopts.cancel = exec::ThreadPool::global().cancellation_token();
  std::unique_ptr<ScratchShardDir> scratch;
  if (!opts.checkpoint_dir.empty()) {
    sopts.shard_dir = opts.checkpoint_dir;
  } else {
    scratch = std::make_unique<ScratchShardDir>();
    sopts.shard_dir = scratch->path.string();
  }
  faults::FaultCounters counters;
  const auto report =
      shard::run_sharded_campaign(gen, log, acc, plan, sopts, &counters);
  if (plan.any_enabled()) {
    faults::publish_fault_counters(counters);
    obs::Logger::global().info("campaign.faulted",
                               {{"plan", plan.describe()},
                                {"dropped", counters.dropped()},
                                {"passed", counters.passed}});
  }
  if (report.degraded()) {
    const double coverage =
        expected_samples > 0
            ? static_cast<double>(acc.gcd_sample_count()) /
                  static_cast<double>(expected_samples)
            : 0.0;
    char tail[96];
    std::snprintf(tail, sizeof tail,
                  " (merged coverage %.1f%%, floor %.1f%%)",
                  100.0 * coverage, 100.0 * opts.min_coverage);
    throw DataQualityError("sharded campaign degraded: " +
                           report.describe(sopts.retry.max_attempts) +
                           tail);
  }
}

CampaignBundle run_campaign(std::size_t nodes, double days,
                            const GlobalOptions& opts,
                            const faults::FaultPlan& plan = {},
                            run::Journal* journal = nullptr) {
  EXAEFF_TRACE_SPAN("cli.run_campaign");
  CampaignBundle b;
  b.cfg.system = cluster::frontier_scaled(nodes);
  b.cfg.duration_s = days * units::kDay;
  const auto& gcd = b.cfg.system.node.gcd;
  b.library = workloads::make_profile_library(gcd);
  b.boundaries = core::derive_boundaries(gcd);
  const sched::FleetGenerator gen(b.cfg, b.library);
  auto log = gen.generate_schedule();
  if (plan.truncate_fraction > 0.0) {
    std::size_t dropped = 0;
    log = faults::truncate_log(log, b.cfg.duration_s, plan,
                               b.cfg.system.compute_nodes, &dropped);
    obs::Logger::global().warn("campaign.log_truncated",
                               {{"dropped_jobs", dropped}});
  }
  b.jobs = log.size();
  obs::Logger::global().debug(
      "campaign.schedule",
      {{"nodes", nodes}, {"days", days}, {"jobs", b.jobs}});
  b.acc = std::make_unique<core::CampaignAccumulator>(
      b.cfg.telemetry_window_s, b.boundaries);
  const std::uint64_t expected = sched::expected_gcd_samples(
      log, b.cfg.telemetry_window_s, b.cfg.system.node.gcds_per_node());
  if (plan.crash_probability > 0.0 && opts.shards == 0) {
    obs::Logger::global().warn(
        "faults.crash_ignored",
        {{"why", "crash= only applies to --shards worker processes"}});
  }
  {
    EXAEFF_TRACE_SPAN("campaign.accumulate");
    auto& pool = exec::ThreadPool::global();
    if (opts.shards > 0) {
      run_campaign_sharded(gen, log, *b.acc, plan, opts, expected);
    } else if (!opts.spill_dir.empty()) {
      // Out-of-core path: telemetry streams through a bounded SpillStore
      // whose windows close at planned, deterministic job boundaries.
      // The accumulator sees the identical sample sequence, so stdout is
      // byte-identical to the in-RAM path; the spill summary goes to
      // stderr via the logger.
      const auto windows = run::plan_spill_windows(
          log, b.cfg.telemetry_window_s, b.cfg.system.node.gcds_per_node(),
          spill_budget_bytes(opts));
      telemetry::SpillConfig scfg;
      scfg.dir = opts.spill_dir;
      scfg.window_s = b.cfg.telemetry_window_s;
      telemetry::SpillStore store(std::move(scfg));
      run::generate_telemetry_spilled(gen, log, *b.acc, store, pool,
                                      nullptr, windows);
      store.publish_metrics();
      obs::Logger::global().info(
          "campaign.spilled",
          {{"windows", store.spilled_windows()},
           {"spilled_bytes", store.spilled_bytes()},
           {"records", store.ingested_records()}});
    } else if (journal != nullptr) {
      // Checkpointed path: chunk partials are journaled as they finish
      // and replayed on --resume; byte-identical to the sharded path.
      faults::FaultCounters counters;
      run::generate_telemetry_checkpointed(gen, log, *b.acc, plan, pool,
                                           journal, &counters);
      if (plan.any_enabled()) {
        faults::publish_fault_counters(counters);
        obs::Logger::global().info("campaign.faulted",
                                   {{"plan", plan.describe()},
                                    {"dropped", counters.dropped()},
                                    {"passed", counters.passed}});
      }
    } else {
      core::AccumulatorShards shards(*b.acc);
      if (plan.any_enabled()) {
        faults::FaultedJobShards faulted(shards, plan);
        gen.generate_telemetry(log, faulted, pool);
        faulted.publish_metrics();
        obs::Logger::global().info(
            "campaign.faulted",
            {{"plan", plan.describe()},
             {"dropped", faulted.counters().dropped()},
             {"passed", faulted.counters().passed}});
      } else {
        gen.generate_telemetry(log, shards, pool);
      }
    }
  }
  // Coverage is only *measured* under an active fault plan: clean runs
  // are 1.0 by construction (the generator emits exactly the expected
  // grid), and keeping the exact constant keeps clean reports
  // byte-identical to the pre-robustness output.
  if (plan.any_enabled() && expected > 0) {
    b.coverage = static_cast<double>(b.acc->gcd_sample_count()) /
                 static_cast<double>(expected);
  }
  obs::Logger::global().info("campaign.generated",
                             {{"nodes", nodes},
                              {"days", days},
                              {"jobs", b.jobs},
                              {"gcd_samples", b.acc->gcd_sample_count()}});
  return b;
}

int cmd_ert(const std::vector<std::string>& args) {
  EXAEFF_TRACE_SPAN("cli.ert");
  workloads::ert::Options opts;
  if (!args.empty()) opts.frequency_mhz = parse_positive(args[0], "freq_mhz");
  const auto report = workloads::ert::measure(gpusim::mi250x_gcd(), opts);
  std::printf("%s", workloads::ert::render(report).c_str());
  return 0;
}

/// Characterization options with the shared pool attached.
core::CharacterizationOptions pooled_characterization() {
  core::CharacterizationOptions copts;
  copts.pool = &exec::ThreadPool::global();
  return copts;
}

int cmd_characterize() {
  EXAEFF_TRACE_SPAN("cli.characterize");
  const auto table =
      core::characterize(gpusim::mi250x_gcd(), pooled_characterization());
  std::printf("%-10s %-10s %8s %8s %8s %8s\n", "class", "cap", "setting",
              "power%", "time%", "energy%");
  for (auto cls : {core::BenchClass::kComputeIntensive,
                   core::BenchClass::kMemoryIntensive}) {
    for (auto type : {core::CapType::kFrequency, core::CapType::kPower}) {
      for (const auto& r : table.rows(cls, type)) {
        std::printf("%-10s %-10s %8.0f %8.1f %8.1f %8.1f\n",
                    core::bench_class_name(cls), core::cap_type_name(type),
                    r.setting, r.avg_power_pct, r.runtime_pct,
                    r.energy_pct);
      }
    }
  }
  return 0;
}

int cmd_campaign(const std::vector<std::string>& args,
                 const GlobalOptions& opts, run::Journal* journal) {
  EXAEFF_TRACE_SPAN("cli.campaign");
  const auto nodes = static_cast<std::size_t>(arg_num(args, 0, 32, "nodes"));
  const double days = arg_num(args, 1, 7.0, "days");
  // campaign historically ignored --faults; it now honors the plan (the
  // chaos path needs crash= here), and with no --faults the parse
  // yields the empty plan, so existing invocations are unchanged.
  const auto plan = faults::FaultPlan::parse(opts.faults_spec);
  const auto b = run_campaign(nodes, days, opts, plan, journal);
  const auto d = b.acc->decomposition();
  std::printf("campaign: %zu nodes, %.1f days, %zu jobs, %zu records\n",
              nodes, days, b.jobs, b.acc->gcd_sample_count());
  std::printf("GPU energy: %.2f MWh over %.0f GPU-hours\n",
              units::joules_to_mwh(d.total_energy_j), d.total_gpu_hours);
  for (int r = 0; r < 4; ++r) {
    const auto region = static_cast<core::Region>(r);
    std::printf("  %-30s %5.1f%% hours  %5.1f%% energy\n",
                std::string(core::region_name(region)).c_str(),
                d.hours_pct(region),
                100.0 * d.energy_fraction(region));
  }
  return 0;
}

int cmd_project(const std::vector<std::string>& args,
                const GlobalOptions& opts, run::Journal* journal) {
  EXAEFF_TRACE_SPAN("cli.project");
  const auto nodes = static_cast<std::size_t>(arg_num(args, 0, 32, "nodes"));
  const double days = arg_num(args, 1, 7.0, "days");
  const auto plan = faults::FaultPlan::parse(opts.faults_spec);
  const auto b = run_campaign(nodes, days, opts, plan, journal);
  core::require_quality(core::DataQuality{b.coverage, 0.0},
                        core::QualityPolicy{opts.min_coverage, 1.0});
  const auto table =
      core::characterize(b.cfg.system.node.gcd, pooled_characterization());
  const core::ProjectionEngine engine(table);
  const auto d = b.acc->decomposition();
  if (b.coverage < 1.0) {
    std::printf("telemetry coverage: %.1f%% (faults: %s) -- projections "
                "are from degraded data\n",
                100.0 * b.coverage, plan.describe().c_str());
  }
  std::printf("%-6s %10s %10s %10s %8s %8s %10s\n", "cap", "CI MWh",
              "MI MWh", "TS MWh", "sav%", "dT%", "sav%@dT=0");
  for (auto type : {core::CapType::kFrequency, core::CapType::kPower}) {
    for (const auto& row : engine.project_sweep(d, type)) {
      std::printf("%4.0f%-2s %10.3f %10.3f %10.3f %8.1f %8.1f %10.1f\n",
                  row.setting,
                  type == core::CapType::kFrequency ? "M" : "W",
                  row.ci_saved_mwh, row.mi_saved_mwh, row.total_saved_mwh,
                  row.savings_pct, row.delta_t_pct,
                  row.savings_pct_no_slowdown);
    }
  }
  const auto best = engine.best_no_slowdown(d, core::CapType::kFrequency);
  std::printf("\nbest zero-slowdown point: %.0f MHz (%.1f%%)\n",
              best.setting, best.savings_pct_no_slowdown);
  return 0;
}

int cmd_report(const std::vector<std::string>& args,
               const GlobalOptions& opts) {
  EXAEFF_TRACE_SPAN("cli.report");
  if (args.empty()) return usage();
  const auto nodes = static_cast<std::size_t>(arg_num(args, 1, 32, "nodes"));
  const auto plan = faults::FaultPlan::parse(opts.faults_spec);
  const auto b = run_campaign(nodes, 7.0, opts, plan);
  const auto table =
      core::characterize(b.cfg.system.node.gcd, pooled_characterization());
  core::ReportInputs inputs;
  inputs.accumulator = b.acc.get();
  inputs.table = &table;
  inputs.campaign_label = std::to_string(nodes) + "-node campaign";
  inputs.quality.coverage = b.coverage;
  inputs.quality_policy.min_coverage = opts.min_coverage;
  run::AtomicFile out(args[0]);
  out.stream() << core::render_campaign_report(inputs);
  if (!out.commit()) {
    obs::Logger::global().error("report.open_failed", {{"path", args[0]}});
    return 1;
  }
  std::printf("report written to %s\n", args[0].c_str());
  return 0;
}

int cmd_decompose(const std::vector<std::string>& args) {
  EXAEFF_TRACE_SPAN("cli.decompose");
  if (args.empty()) return usage();
  const double watts = parse_positive(args[0], "watts");
  const double mhz = arg_num(args, 1, 1700.0, "mhz");
  const core::PowerDecomposer dec(gpusim::mi250x_gcd());
  const auto est = dec.estimate(watts, mhz);
  if (est.idle) {
    std::printf("%.0f W at %.0f MHz: idle (no activity inferable)\n",
                watts, mhz);
    return 0;
  }
  std::printf("%.0f W at %.0f MHz:\n", watts, mhz);
  std::printf("  ALU activity : %.2f .. %.2f (balanced point %.2f)\n",
              est.alu_min, est.alu_max, est.alu_mid);
  std::printf("  HBM traffic  : %.2f .. %.2f (balanced point %.2f)\n",
              est.hbm_min, est.hbm_max, est.hbm_mid);
  std::printf("  region       : %s\n",
              std::string(core::region_name(
                  core::RegionBoundaries{}.classify(watts)))
                  .c_str());
  return 0;
}

int cmd_queue(const std::vector<std::string>& args) {
  EXAEFF_TRACE_SPAN("cli.queue");
  const auto nodes = static_cast<std::uint32_t>(arg_num(args, 0, 64, "nodes"));
  const double days = arg_num(args, 1, 2.0, "days");
  const auto subs =
      sched::synthesize_submissions(nodes, days * units::kDay, 1.3, 5);
  for (auto disc : {sched::QueueDiscipline::kFcfs,
                    sched::QueueDiscipline::kEasyBackfill}) {
    const sched::BatchScheduler scheduler(nodes, disc);
    const auto out = scheduler.run(subs);
    std::printf("%-14s jobs=%zu util=%.1f%% mean-wait=%.0f min "
                "backfilled=%zu\n",
                disc == sched::QueueDiscipline::kFcfs ? "FCFS" : "EASY",
                out.log.size(), 100.0 * out.utilization,
                out.mean_wait_s / 60.0, out.backfilled);
  }
  return 0;
}

/// Sweeps iid dropout from clean to 30% over one fixed campaign and
/// reports how far the projection drifts from the clean baseline — the
/// "how much data loss can the analysis absorb" robustness bench.
int cmd_faults_sweep(const std::vector<std::string>& args,
                     const GlobalOptions& opts, run::Journal* journal) {
  EXAEFF_TRACE_SPAN("cli.faults_sweep");
  const auto nodes = static_cast<std::size_t>(arg_num(args, 0, 32, "nodes"));
  const double days = arg_num(args, 1, 7.0, "days");
  const auto base_plan = faults::FaultPlan::parse(opts.faults_spec);

  sched::CampaignConfig cfg;
  cfg.system = cluster::frontier_scaled(nodes);
  cfg.duration_s = days * units::kDay;
  const auto& gcd = cfg.system.node.gcd;
  const auto library = workloads::make_profile_library(gcd);
  const auto boundaries = core::derive_boundaries(gcd);
  const auto table = core::characterize(gcd, pooled_characterization());
  const core::ProjectionEngine engine(table);
  const sched::FleetGenerator gen(cfg, library);
  const auto log = gen.generate_schedule();
  const std::uint64_t expected = sched::expected_gcd_samples(
      log, cfg.telemetry_window_s, cfg.system.node.gcds_per_node());
  const double focus_mhz = 1100.0;

  std::printf("faults-sweep: %zu nodes, %.1f days, %zu jobs, cap %.0f MHz"
              " (base faults: %s, seed 0x%llX)\n",
              nodes, days, log.size(), focus_mhz,
              base_plan.describe().c_str(),
              static_cast<unsigned long long>(base_plan.seed));
  std::printf("%-6s %12s %10s %10s %8s %10s %10s\n", "drop%", "records",
              "coverage%", "TS MWh", "sav%", "sav%@dT=0", "drift%");

  // All dropout points run concurrently; each point's own campaign
  // generation then runs inline inside its worker (nested parallel loops
  // execute with identical chunking), so every point is byte-identical to
  // a serial run.  Results are printed serially in pct order afterwards.
  // The sweep checkpoints at point granularity: a finished point is one
  // journal entry, replayed wholesale on --resume.
  using SweepPoint = run::SweepPointCheckpoint;
  constexpr int kPoints = 7;  // 0%, 5%, ... 30%
  const std::uint64_t config_key =
      journal != nullptr
          ? run::campaign_config_key(cfg, base_plan, log.size())
          : 0;
  auto& pool = exec::ThreadPool::global();
  const auto points = pool.parallel_map(kPoints, [&](std::size_t i) {
    SweepPoint p;
    p.pct = static_cast<int>(i) * 5;
    const std::uint64_t key =
        run::sweep_point_key(config_key, focus_mhz, p.pct);
    if (journal != nullptr) {
      if (const std::string* payload = journal->find(key)) {
        SweepPoint restored;
        if (run::decode_sweep_point(*payload, restored)) return restored;
        obs::Logger::global().warn("run.checkpoint_decode_failed",
                                   {{"sweep_pct", p.pct}});
      }
    }
    faults::FaultPlan plan = base_plan;
    plan.drop_probability = static_cast<double>(p.pct) / 100.0;
    core::CampaignAccumulator acc(cfg.telemetry_window_s, boundaries);
    core::AccumulatorShards shards(acc);
    if (plan.any_enabled()) {
      faults::FaultedJobShards faulted(shards, plan);
      gen.generate_telemetry(log, faulted, pool);
      p.counters = faulted.counters();
      p.faulted = true;
    } else {
      gen.generate_telemetry(log, shards, pool);
    }
    p.records = acc.gcd_sample_count();
    p.coverage = expected > 0
                     ? static_cast<double>(p.records) /
                           static_cast<double>(expected)
                     : 1.0;
    p.row = engine.project(acc.decomposition(), core::CapType::kFrequency,
                           focus_mhz);
    if (journal != nullptr) {
      journal->append(key, run::encode_sweep_point(p));
    }
    return p;
  });

  const double clean_saved_mwh = points.front().row.total_saved_mwh;
  for (const SweepPoint& p : points) {
    if (p.faulted) faults::publish_fault_counters(p.counters);
    const double drift =
        clean_saved_mwh > 0.0
            ? 100.0 * (p.row.total_saved_mwh - clean_saved_mwh) /
                  clean_saved_mwh
            : 0.0;
    const bool below_floor = p.coverage < opts.min_coverage;
    std::printf("%-6d %12zu %10.2f %10.3f %8.1f %10.1f %+9.2f%s\n", p.pct,
                static_cast<std::size_t>(p.records), 100.0 * p.coverage,
                p.row.total_saved_mwh,
                p.row.savings_pct, p.row.savings_pct_no_slowdown, drift,
                below_floor ? " [BELOW FLOOR]" : "");
  }
  std::printf("\ndrift%% is the change in projected savings at %.0f MHz "
              "relative to the clean row.\n",
              focus_mhz);
  return 0;
}

/// End-of-run footer on stderr: where the wall time and samples went.
/// Stage lines report *child-exclusive* wall clock from the SpanStats
/// aggregates — summing the old inclusive gauges double-counted every
/// nested span (cli.project contained cli.run_campaign contained
/// campaign.accumulate, and all three showed the full duration) — plus
/// per-span p50/p95/p99 from the duration histograms.
void print_summary_footer() {
  const auto stages = obs::SpanStats::global().snapshot();
  std::fprintf(stderr, "--- exaeff run summary ---\n");
  std::fprintf(stderr, "stage timings (exclusive of nested stages):\n");
  for (const auto& s : stages) {
    std::fprintf(stderr,
                 "  %-28s %10.3f s   n=%-7llu p50 %8.3f  p95 %8.3f  "
                 "p99 %8.3f\n",
                 s.stage.c_str(), s.exclusive_s,
                 static_cast<unsigned long long>(s.count), s.p50_s, s.p95_s,
                 s.p99_s);
  }
  std::fprintf(stderr, "top counters:\n");
  const auto series = obs::MetricsRegistry::global().top_series(64);
  int shown = 0;
  for (const auto& [key, value] : series) {
    if (key.rfind("exaeff_stage_", 0) == 0 ||
        key.rfind("exaeff_sim_time_seconds", 0) == 0) {
      continue;
    }
    if (++shown > 8) break;
    std::fprintf(stderr, "  %-44s %14.0f\n", key.c_str(), value);
  }
}

/// `exaeff serve`: resident projection service.  Binds and starts the
/// request loop first (answering 503 not-ready with Retry-After), then
/// loads the characterized fleet once, flips ready, and parks until the
/// supervisor token trips (SIGTERM/SIGINT/--deadline).  The drain stops
/// accepting, finishes every admitted request, and returns 0 — the
/// service contract the fork-harness test and the CI hammer both assert.
int cmd_serve(const std::vector<std::string>& args, const GlobalOptions& opts,
              run::Supervisor& supervisor) {
  EXAEFF_TRACE_SPAN("cli.serve");
  if (opts.listen_port < 0) {
    std::fprintf(stderr, "exaeff: serve requires --listen=<port>\n");
    return 2;
  }
  const auto nodes = static_cast<std::size_t>(arg_num(args, 0, 32, "nodes"));
  const double days = arg_num(args, 1, 7.0, "days");

  auto service = std::make_shared<serve::ProjectionService>();
  // Scrape-freshness for the service's own /metrics route, same hook the
  // obs scrape endpoint uses for the batch commands.
  service->set_refresh_hook([] {
    exec::ThreadPool::global().publish_metrics();
    obs::SpanStats::global().publish(obs::MetricsRegistry::global());
  });

  serve::ServerOptions sopts;
  sopts.port = static_cast<std::uint16_t>(opts.listen_port);
  if (opts.serve_workers > 0) sopts.workers = opts.serve_workers;
  if (opts.serve_queue > 0) sopts.queue_depth = opts.serve_queue;
  if (opts.serve_deadline_ms > 0) {
    sopts.default_deadline_ms = opts.serve_deadline_ms;
  }
  if (opts.serve_io_timeout_ms > 0) {
    sopts.read_timeout_ms = opts.serve_io_timeout_ms;
    sopts.write_timeout_ms = opts.serve_io_timeout_ms;
  }
  serve::ProjectionServer server(service, sopts);
  if (!server.start()) {
    std::fprintf(stderr, "exaeff: --listen=%d failed: %s\n",
                 opts.listen_port, server.last_error().c_str());
    return 2;
  }
  obs::Logger::global().info(
      "serve.listening",
      {{"port", static_cast<unsigned>(server.port())},
       {"endpoints",
        "/project /sweep /healthz /readyz /metrics /metrics.json /runinfo"}});

  // The model load is the expensive part; until it lands every query
  // answers 503 + Retry-After.  SIGTERM mid-load cancels at a pool chunk
  // boundary and exits 130 through the shared CancelledError path.
  const auto model = serve::FleetModel::build(
      serve::FleetModelConfig{nodes, days}, exec::ThreadPool::global());
  service->set_model(model);
  obs::Logger::global().info("serve.ready",
                             {{"port", static_cast<unsigned>(server.port())},
                              {"nodes", nodes},
                              {"days", days},
                              {"jobs", model->jobs()}});
  std::printf("serving projections on port %u (%zu nodes, %zu jobs); "
              "SIGTERM drains\n",
              static_cast<unsigned>(server.port()), nodes, model->jobs());
  std::fflush(stdout);

  while (!supervisor.token().cancelled()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  const std::string why =
      run::Supervisor::reason_name(supervisor.token().reason());
  obs::Logger::global().info("serve.draining", {{"reason", why}});
  server.drain();
  const auto st = server.stats();
  obs::Logger::global().info("serve.drained",
                             {{"accepted", st.accepted},
                              {"responded", st.responded},
                              {"shed", st.shed},
                              {"timeouts", st.timeouts},
                              {"closed_early", st.closed_early},
                              {"write_failures", st.write_failures}});
  return 0;
}

int dispatch(const std::string& cmd, const std::vector<std::string>& args,
             const GlobalOptions& opts, run::Journal* journal,
             run::Supervisor& supervisor) {
  if (cmd == "serve") return cmd_serve(args, opts, supervisor);
  if (cmd == "ert") return cmd_ert(args);
  if (cmd == "characterize") return cmd_characterize();
  if (cmd == "campaign") return cmd_campaign(args, opts, journal);
  if (cmd == "project") return cmd_project(args, opts, journal);
  if (cmd == "report") return cmd_report(args, opts);
  if (cmd == "decompose") return cmd_decompose(args);
  if (cmd == "queue") return cmd_queue(args);
  if (cmd == "faults-sweep") return cmd_faults_sweep(args, opts, journal);
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  GlobalOptions opts;
  std::vector<std::string> positional;
  if (!parse_args(argc - 1, argv + 1, opts, positional)) return 2;
  if (opts.help) {
    usage();
    return 0;
  }
  if (positional.empty()) return usage();
  if (opts.resume && opts.checkpoint_dir.empty()) {
    std::fprintf(stderr, "exaeff: --resume requires --checkpoint=<dir>\n");
    return 2;
  }

  bool level_ok = true;
  const auto level = obs::parse_log_level(opts.log_level, &level_ok);
  if (!level_ok) {
    std::fprintf(stderr, "exaeff: bad --log-level '%s'\n",
                 opts.log_level.c_str());
    return usage();
  }
  obs::Logger::global().set_level(level);
  obs::set_metrics_enabled(true);  // feeds the summary footer
  if (!opts.trace_path.empty()) obs::Tracer::global().set_enabled(true);
  // Must precede the first ThreadPool::global() access; 0 keeps the
  // EXAEFF_JOBS / hardware-concurrency default.
  exec::set_job_count(opts.jobs);

  // Supervised execution: SIGINT/SIGTERM and the optional --deadline all
  // trip one cancellation token, observed at pool chunk boundaries.
  run::SupervisorOptions sup_opts;
  sup_opts.deadline_s = opts.deadline_s;
  run::Supervisor supervisor(sup_opts);
  exec::ThreadPool::global().set_cancellation_token(&supervisor.token());

  const std::string cmd = positional.front();
  const std::vector<std::string> args(positional.begin() + 1,
                                      positional.end());
  if (opts.shards > 0 && cmd != "campaign" && cmd != "project") {
    std::fprintf(stderr,
                 "exaeff: --shards is only supported by campaign and "
                 "project\n");
    return 2;
  }
  const bool serve_mode = cmd == "serve";
  if (!serve_mode && (opts.serve_workers > 0 || opts.serve_queue > 0 ||
                      opts.serve_deadline_ms > 0 ||
                      opts.serve_io_timeout_ms > 0)) {
    std::fprintf(stderr,
                 "exaeff: --serve-* options are only supported by serve\n");
    return 2;
  }
  if (serve_mode &&
      (!opts.checkpoint_dir.empty() || opts.resume ||
       !opts.faults_spec.empty())) {
    std::fprintf(stderr,
                 "exaeff: serve is incompatible with "
                 "--checkpoint/--resume/--faults\n");
    return 2;
  }
  // Out-of-core mode is strict: both flags together, campaign/project
  // only, and never combined with paths whose semantics it would change
  // (faults make spill queries inexact; checkpoint/resume journals do
  // not carry raw telemetry).
  if (!opts.spill_dir.empty() || opts.memory_budget_mb > 0.0) {
    if (opts.spill_dir.empty() || opts.memory_budget_mb <= 0.0) {
      std::fprintf(stderr,
                   "exaeff: --memory-budget and --spill-dir must be used "
                   "together\n");
      return 2;
    }
    if (cmd != "campaign" && cmd != "project") {
      std::fprintf(stderr,
                   "exaeff: --memory-budget/--spill-dir are only supported "
                   "by campaign and project\n");
      return 2;
    }
    if (!opts.faults_spec.empty()) {
      std::fprintf(stderr,
                   "exaeff: --memory-budget is incompatible with --faults "
                   "(spilled telemetry must be exact)\n");
      return 2;
    }
    if (!opts.checkpoint_dir.empty() || opts.resume) {
      std::fprintf(stderr,
                   "exaeff: --memory-budget is incompatible with "
                   "--checkpoint/--resume\n");
      return 2;
    }
    std::error_code ec;
    std::filesystem::create_directories(opts.spill_dir, ec);
    if (ec) {
      std::fprintf(stderr, "exaeff: cannot create --spill-dir '%s': %s\n",
                   opts.spill_dir.c_str(), ec.message().c_str());
      return 2;
    }
  }

  // Live self-observability: the /proc resource sampler runs whenever a
  // timeline or a scrape endpoint wants it, and the exposition server
  // only exists under --listen=.  Both are declared before the try so
  // every exit path (usage error, data-quality refusal, cancellation)
  // tears them down through the destructors; neither touches pipeline
  // state, so stdout stays byte-identical with them on or off.
  std::unique_ptr<obs::ResourceSampler> sampler;
  std::unique_ptr<obs::ExpositionServer> server;
  std::unique_ptr<run::Journal> journal;
  int rc = 0;
  try {
    // The scrape port binds before anything heavier starts: a taken
    // port (EADDRINUSE) should cost one line and exit 2, not surface
    // after samplers, journals and a partial pipeline spun up.
    if (opts.listen_port >= 0) {
      std::string command_line = cmd;
      for (const auto& a : args) command_line += " " + a;
      obs::RunInfo info;
      info.command = command_line;
      info.seed = faults::FaultPlan::parse(opts.faults_spec).seed;
      char hash_hex[17];
      std::string full_line;
      for (int i = 1; i < argc; ++i) {
        if (i > 1) full_line += " ";
        full_line += argv[i];
      }
      std::snprintf(hash_hex, sizeof hash_hex, "%016llx",
                    static_cast<unsigned long long>(run::fnv1a64(full_line)));
      info.config_hash = hash_hex;
      obs::set_run_info(info);
    }
    // In serve mode the ProjectionServer owns the port and serves
    // /metrics itself; the standalone scrape endpoint would fight it
    // for the bind.
    if (opts.listen_port >= 0 && !serve_mode) {
      obs::ExpositionServerOptions sopts;
      sopts.port = static_cast<std::uint16_t>(opts.listen_port);
      server = std::make_unique<obs::ExpositionServer>(sopts);
      // Scrape-freshness: republish the lazy series (span quantiles,
      // pool counters) right before each exposition.
      server->set_refresh_hook([] {
        exec::ThreadPool::global().publish_metrics();
        obs::SpanStats::global().publish(obs::MetricsRegistry::global());
      });
      if (!server->start()) {
        std::fprintf(stderr, "exaeff: --listen=%d failed: %s\n",
                     opts.listen_port, server->last_error().c_str());
        return 2;
      }
      obs::Logger::global().info(
          "obs.listening",
          {{"port", static_cast<unsigned>(server->port())},
           {"endpoints", "/metrics /metrics.json /healthz /runinfo"}});
    }
    if (opts.listen_port >= 0 || !opts.timeline_path.empty()) {
      sampler = std::make_unique<obs::ResourceSampler>();
      sampler->set_tick_hook(
          [] { exec::ThreadPool::global().publish_metrics(); });
      sampler->start();
    }
    if (!opts.checkpoint_dir.empty()) {
      std::filesystem::create_directories(opts.checkpoint_dir);
      journal = std::make_unique<run::Journal>(
          opts.checkpoint_dir + "/journal.ckpt", opts.resume);
      if (opts.resume) {
        obs::Logger::global().info(
            "run.resuming", {{"journal", journal->path()},
                             {"entries", journal->entries_loaded()}});
      }
    }
    rc = dispatch(cmd, args, opts, journal.get(), supervisor);
  } catch (const UsageError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  } catch (const run::JournalLockedError& e) {
    // Another process holds the checkpoint journal (advisory flock):
    // a concurrent writer would interleave torn records, so fail fast
    // as a usage-class error instead of corrupting the shared file.
    std::fprintf(stderr, "exaeff: %s\n", e.what());
    return 2;
  } catch (const DataQualityError& e) {
    // Distinct exit code: the pipeline worked, but the surviving data is
    // too thin to stand behind the numbers.
    std::fprintf(stderr, "exaeff: %s\n", e.what());
    obs::Logger::global().error("cli.data_quality", {{"what", e.what()}});
    return 3;
  } catch (const CancelledError&) {
    // Conventional interrupted-by-signal code.  Everything finished
    // before the stop is already durable in the journal; partial
    // artifacts were never renamed into place.
    run::Supervisor::publish_cancellation();
    const std::string why =
        run::Supervisor::reason_name(supervisor.token().reason());
    std::fprintf(stderr, "exaeff: run cancelled (%s)\n", why.c_str());
    if (journal != nullptr) {
      std::fprintf(stderr,
                   "exaeff: checkpoint saved (%zu work units in %s); "
                   "resume with --resume\n",
                   journal->size(), journal->path().c_str());
    }
    obs::Logger::global().warn("cli.cancelled", {{"reason", why}});
    return 130;
  } catch (const std::exception& e) {
    obs::Logger::global().error("cli.error", {{"what", e.what()}});
    return 1;
  }

  exec::ThreadPool::global().publish_metrics();
  if (journal != nullptr) journal->publish_metrics();
  // Final span aggregates (quantiles, exclusive times) land in the
  // registry before any exposition below reads it.
  obs::SpanStats::global().publish(obs::MetricsRegistry::global());
  if (sampler != nullptr) {
    sampler->stop();  // takes the end-of-run sample
    if (!opts.timeline_path.empty()) {
      run::AtomicFile out(opts.timeline_path);
      sampler->write_timeline_json(out.stream());
      if (!out.commit()) {
        obs::Logger::global().error("timeline.open_failed",
                                    {{"path", opts.timeline_path}});
      } else {
        obs::Logger::global().info(
            "timeline.written",
            {{"path", opts.timeline_path},
             {"samples", sampler->total_samples()}});
      }
    }
  }
  if (server != nullptr) {
    obs::Logger::global().info(
        "obs.server_stopped",
        {{"requests", server->requests_served()}});
    server->stop();
  }
  if (!opts.trace_path.empty()) {
    run::AtomicFile out(opts.trace_path);
    obs::Tracer::global().write_chrome_trace(out.stream());
    if (!out.commit()) {
      obs::Logger::global().error("trace.open_failed",
                                  {{"path", opts.trace_path}});
    } else {
      obs::Logger::global().info(
          "trace.written", {{"path", opts.trace_path},
                            {"spans", obs::Tracer::global().span_count()}});
    }
  }
  if (!opts.metrics_path.empty()) {
    const bool json = opts.metrics_path.size() >= 5 &&
                      opts.metrics_path.rfind(".json") ==
                          opts.metrics_path.size() - 5;
    auto& reg = obs::MetricsRegistry::global();
    if (!run::write_file_atomic(
            opts.metrics_path,
            json ? reg.expose_json() : reg.expose_prometheus())) {
      obs::Logger::global().error("metrics.open_failed",
                                  {{"path", opts.metrics_path}});
    }
  }
  print_summary_footer();
  return rc;
}
