// tools/exaeff_cli.cc
//
// The `exaeff` command-line tool: every workflow in the library behind
// one binary, for operators who want answers without writing C++.
//
//   exaeff ert [freq_mhz]            empirical roofline of the device
//   exaeff characterize              Table III cap-response table
//   exaeff campaign [nodes] [days]   synthesize + summarize a campaign
//   exaeff project [nodes] [days]    campaign + Table V projection
//   exaeff report <path> [nodes]     full analysis report to a file
//   exaeff decompose <watts> [mhz]   utilization envelope for a reading
//   exaeff queue [nodes] [days]      FCFS vs EASY scheduling comparison
//   exaeff faults-sweep [nodes] [days]
//                                    projection drift vs telemetry dropout
//
// Global options (any position, `--flag=value` form):
//   --trace=<file.json>    write a Chrome trace_event file of the run
//   --metrics=<file>       write metrics (.prom text or .json by extension)
//   --log-level=<level>    debug|info|warn|error (default info)
//   --faults=<spec>        inject telemetry faults (see faults/fault_plan.h)
//   --min-coverage=<frac>  refuse projections below this telemetry coverage
//   --jobs=<N>             worker threads (default: EXAEFF_JOBS env var or
//                          hardware concurrency); outputs are byte-identical
//                          for any N, including 1
//
// Commands that project savings exit with code 3 (and a clear stderr
// message) when the surviving telemetry is below --min-coverage: a number
// extrapolated from a sliver of the fleet is worse than no number.
//
// Results go to stdout; diagnostics, logs and the end-of-run stage
// summary go to stderr, so piping stdout stays clean and deterministic.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/decomposition.h"
#include "core/report.h"
#include "exec/thread_pool.h"
#include "faults/injector.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sched/fleetgen.h"
#include "sched/join.h"
#include "sched/queue_sim.h"
#include "workloads/ert.h"

namespace {

using namespace exaeff;

int usage() {
  std::fprintf(
      stderr,
      "usage: exaeff <command> [args] [options]\n"
      "commands:\n"
      "  ert [freq_mhz]            empirical roofline (optionally capped)\n"
      "  characterize              benchmark cap-response table\n"
      "  campaign [nodes] [days]   synthesize and summarize a campaign\n"
      "  project [nodes] [days]    campaign + savings projection\n"
      "  report <path> [nodes]     write the full analysis report\n"
      "  decompose <watts> [mhz]   utilization envelope for a reading\n"
      "  queue [nodes] [days]      FCFS vs EASY backfill comparison\n"
      "  faults-sweep [nodes] [days]\n"
      "                            projection drift vs telemetry dropout\n"
      "options (any position):\n"
      "  --trace=<file.json>       write Chrome trace_event spans "
      "(chrome://tracing, Perfetto)\n"
      "  --metrics=<file>          write run metrics; .json for JSON, "
      "anything else Prometheus text\n"
      "  --log-level=<level>       debug|info|warn|error (default info)\n"
      "  --faults=<spec>           inject telemetry faults, e.g. "
      "drop=0.1,stuck=0.01:60,seed=7\n"
      "  --min-coverage=<frac>     refuse projections below this coverage "
      "(default 0.5)\n"
      "  --jobs=<N>                worker threads (default: EXAEFF_JOBS or "
      "hardware concurrency);\n"
      "                            outputs are byte-identical for any N\n"
      "  --help                    show this message\n");
  return 2;
}

/// Options recognized on every subcommand.
struct GlobalOptions {
  std::string trace_path;
  std::string metrics_path;
  std::string log_level = "info";
  std::string faults_spec;
  double min_coverage = 0.5;
  std::size_t jobs = 0;  ///< 0 = EXAEFF_JOBS env or hardware concurrency
  bool help = false;
};

/// Splits argv into `--flag=value` global options and positional args.
/// Returns false (after complaining) on an unknown flag.
bool parse_args(int argc, char** argv, GlobalOptions& opts,
                std::vector<std::string>& positional) {
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional.push_back(arg);
      continue;
    }
    if (arg == "--help") {
      opts.help = true;
      continue;
    }
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? std::string() : arg.substr(eq + 1);
    if (key == "--trace") {
      opts.trace_path = value;
    } else if (key == "--metrics") {
      opts.metrics_path = value;
    } else if (key == "--log-level") {
      opts.log_level = value;
    } else if (key == "--faults") {
      opts.faults_spec = value;
    } else if (key == "--min-coverage") {
      opts.min_coverage = std::atof(value.c_str());
    } else if (key == "--jobs") {
      const long n = std::atol(value.c_str());
      if (n < 1) {
        std::fprintf(stderr, "exaeff: --jobs needs a positive integer\n");
        return false;
      }
      opts.jobs = static_cast<std::size_t>(n);
    } else {
      std::fprintf(stderr, "exaeff: unknown option '%s'\n", key.c_str());
      return false;
    }
    if (key != "--help" && value.empty()) {
      std::fprintf(stderr, "exaeff: option '%s' needs =<value>\n",
                   key.c_str());
      return false;
    }
  }
  return true;
}

double arg_num(const std::vector<std::string>& args, std::size_t i,
               double fallback) {
  return i < args.size() ? std::atof(args[i].c_str()) : fallback;
}

struct CampaignBundle {
  sched::CampaignConfig cfg;
  workloads::ProfileLibrary library;
  core::RegionBoundaries boundaries;
  std::unique_ptr<core::CampaignAccumulator> acc;
  std::size_t jobs = 0;
  double coverage = 1.0;  ///< surviving / expected telemetry records
};

CampaignBundle run_campaign(std::size_t nodes, double days,
                            const faults::FaultPlan& plan = {}) {
  EXAEFF_TRACE_SPAN("cli.run_campaign");
  CampaignBundle b;
  b.cfg.system = cluster::frontier_scaled(nodes);
  b.cfg.duration_s = days * units::kDay;
  const auto& gcd = b.cfg.system.node.gcd;
  b.library = workloads::make_profile_library(gcd);
  b.boundaries = core::derive_boundaries(gcd);
  const sched::FleetGenerator gen(b.cfg, b.library);
  auto log = gen.generate_schedule();
  if (plan.truncate_fraction > 0.0) {
    std::size_t dropped = 0;
    log = faults::truncate_log(log, b.cfg.duration_s, plan,
                               b.cfg.system.compute_nodes, &dropped);
    obs::Logger::global().warn("campaign.log_truncated",
                               {{"dropped_jobs", dropped}});
  }
  b.jobs = log.size();
  obs::Logger::global().debug(
      "campaign.schedule",
      {{"nodes", nodes}, {"days", days}, {"jobs", b.jobs}});
  b.acc = std::make_unique<core::CampaignAccumulator>(
      b.cfg.telemetry_window_s, b.boundaries);
  const std::uint64_t expected = sched::expected_gcd_samples(
      log, b.cfg.telemetry_window_s, b.cfg.system.node.gcds_per_node());
  {
    EXAEFF_TRACE_SPAN("campaign.accumulate");
    auto& pool = exec::ThreadPool::global();
    core::AccumulatorShards shards(*b.acc);
    if (plan.any_enabled()) {
      faults::FaultedJobShards faulted(shards, plan);
      gen.generate_telemetry(log, faulted, pool);
      faulted.publish_metrics();
      obs::Logger::global().info(
          "campaign.faulted",
          {{"plan", plan.describe()},
           {"dropped", faulted.counters().dropped()},
           {"passed", faulted.counters().passed}});
    } else {
      gen.generate_telemetry(log, shards, pool);
    }
  }
  // Coverage is only *measured* under an active fault plan: clean runs
  // are 1.0 by construction (the generator emits exactly the expected
  // grid), and keeping the exact constant keeps clean reports
  // byte-identical to the pre-robustness output.
  if (plan.any_enabled() && expected > 0) {
    b.coverage = static_cast<double>(b.acc->gcd_sample_count()) /
                 static_cast<double>(expected);
  }
  obs::Logger::global().info("campaign.generated",
                             {{"nodes", nodes},
                              {"days", days},
                              {"jobs", b.jobs},
                              {"gcd_samples", b.acc->gcd_sample_count()}});
  return b;
}

int cmd_ert(const std::vector<std::string>& args) {
  EXAEFF_TRACE_SPAN("cli.ert");
  workloads::ert::Options opts;
  if (!args.empty()) opts.frequency_mhz = std::atof(args[0].c_str());
  const auto report = workloads::ert::measure(gpusim::mi250x_gcd(), opts);
  std::printf("%s", workloads::ert::render(report).c_str());
  return 0;
}

/// Characterization options with the shared pool attached.
core::CharacterizationOptions pooled_characterization() {
  core::CharacterizationOptions copts;
  copts.pool = &exec::ThreadPool::global();
  return copts;
}

int cmd_characterize() {
  EXAEFF_TRACE_SPAN("cli.characterize");
  const auto table =
      core::characterize(gpusim::mi250x_gcd(), pooled_characterization());
  std::printf("%-10s %-10s %8s %8s %8s %8s\n", "class", "cap", "setting",
              "power%", "time%", "energy%");
  for (auto cls : {core::BenchClass::kComputeIntensive,
                   core::BenchClass::kMemoryIntensive}) {
    for (auto type : {core::CapType::kFrequency, core::CapType::kPower}) {
      for (const auto& r : table.rows(cls, type)) {
        std::printf("%-10s %-10s %8.0f %8.1f %8.1f %8.1f\n",
                    core::bench_class_name(cls), core::cap_type_name(type),
                    r.setting, r.avg_power_pct, r.runtime_pct,
                    r.energy_pct);
      }
    }
  }
  return 0;
}

int cmd_campaign(const std::vector<std::string>& args) {
  EXAEFF_TRACE_SPAN("cli.campaign");
  const auto nodes = static_cast<std::size_t>(arg_num(args, 0, 32));
  const double days = arg_num(args, 1, 7.0);
  const auto b = run_campaign(nodes, days);
  const auto d = b.acc->decomposition();
  std::printf("campaign: %zu nodes, %.1f days, %zu jobs, %zu records\n",
              nodes, days, b.jobs, b.acc->gcd_sample_count());
  std::printf("GPU energy: %.2f MWh over %.0f GPU-hours\n",
              units::joules_to_mwh(d.total_energy_j), d.total_gpu_hours);
  for (int r = 0; r < 4; ++r) {
    const auto region = static_cast<core::Region>(r);
    std::printf("  %-30s %5.1f%% hours  %5.1f%% energy\n",
                std::string(core::region_name(region)).c_str(),
                d.hours_pct(region),
                100.0 * d.energy_fraction(region));
  }
  return 0;
}

int cmd_project(const std::vector<std::string>& args,
                const GlobalOptions& opts) {
  EXAEFF_TRACE_SPAN("cli.project");
  const auto nodes = static_cast<std::size_t>(arg_num(args, 0, 32));
  const double days = arg_num(args, 1, 7.0);
  const auto plan = faults::FaultPlan::parse(opts.faults_spec);
  const auto b = run_campaign(nodes, days, plan);
  core::require_quality(core::DataQuality{b.coverage, 0.0},
                        core::QualityPolicy{opts.min_coverage, 1.0});
  const auto table =
      core::characterize(b.cfg.system.node.gcd, pooled_characterization());
  const core::ProjectionEngine engine(table);
  const auto d = b.acc->decomposition();
  if (b.coverage < 1.0) {
    std::printf("telemetry coverage: %.1f%% (faults: %s) -- projections "
                "are from degraded data\n",
                100.0 * b.coverage, plan.describe().c_str());
  }
  std::printf("%-6s %10s %10s %10s %8s %8s %10s\n", "cap", "CI MWh",
              "MI MWh", "TS MWh", "sav%", "dT%", "sav%@dT=0");
  for (auto type : {core::CapType::kFrequency, core::CapType::kPower}) {
    for (const auto& row : engine.project_sweep(d, type)) {
      std::printf("%4.0f%-2s %10.3f %10.3f %10.3f %8.1f %8.1f %10.1f\n",
                  row.setting,
                  type == core::CapType::kFrequency ? "M" : "W",
                  row.ci_saved_mwh, row.mi_saved_mwh, row.total_saved_mwh,
                  row.savings_pct, row.delta_t_pct,
                  row.savings_pct_no_slowdown);
    }
  }
  const auto best = engine.best_no_slowdown(d, core::CapType::kFrequency);
  std::printf("\nbest zero-slowdown point: %.0f MHz (%.1f%%)\n",
              best.setting, best.savings_pct_no_slowdown);
  return 0;
}

int cmd_report(const std::vector<std::string>& args,
               const GlobalOptions& opts) {
  EXAEFF_TRACE_SPAN("cli.report");
  if (args.empty()) return usage();
  const auto nodes = static_cast<std::size_t>(arg_num(args, 1, 32));
  const auto plan = faults::FaultPlan::parse(opts.faults_spec);
  const auto b = run_campaign(nodes, 7.0, plan);
  const auto table =
      core::characterize(b.cfg.system.node.gcd, pooled_characterization());
  core::ReportInputs inputs;
  inputs.accumulator = b.acc.get();
  inputs.table = &table;
  inputs.campaign_label = std::to_string(nodes) + "-node campaign";
  inputs.quality.coverage = b.coverage;
  inputs.quality_policy.min_coverage = opts.min_coverage;
  std::ofstream out(args[0]);
  if (!out) {
    obs::Logger::global().error("report.open_failed", {{"path", args[0]}});
    return 1;
  }
  out << core::render_campaign_report(inputs);
  std::printf("report written to %s\n", args[0].c_str());
  return 0;
}

int cmd_decompose(const std::vector<std::string>& args) {
  EXAEFF_TRACE_SPAN("cli.decompose");
  if (args.empty()) return usage();
  const double watts = std::atof(args[0].c_str());
  const double mhz = arg_num(args, 1, 1700.0);
  const core::PowerDecomposer dec(gpusim::mi250x_gcd());
  const auto est = dec.estimate(watts, mhz);
  if (est.idle) {
    std::printf("%.0f W at %.0f MHz: idle (no activity inferable)\n",
                watts, mhz);
    return 0;
  }
  std::printf("%.0f W at %.0f MHz:\n", watts, mhz);
  std::printf("  ALU activity : %.2f .. %.2f (balanced point %.2f)\n",
              est.alu_min, est.alu_max, est.alu_mid);
  std::printf("  HBM traffic  : %.2f .. %.2f (balanced point %.2f)\n",
              est.hbm_min, est.hbm_max, est.hbm_mid);
  std::printf("  region       : %s\n",
              std::string(core::region_name(
                  core::RegionBoundaries{}.classify(watts)))
                  .c_str());
  return 0;
}

int cmd_queue(const std::vector<std::string>& args) {
  EXAEFF_TRACE_SPAN("cli.queue");
  const auto nodes = static_cast<std::uint32_t>(arg_num(args, 0, 64));
  const double days = arg_num(args, 1, 2.0);
  const auto subs =
      sched::synthesize_submissions(nodes, days * units::kDay, 1.3, 5);
  for (auto disc : {sched::QueueDiscipline::kFcfs,
                    sched::QueueDiscipline::kEasyBackfill}) {
    const sched::BatchScheduler scheduler(nodes, disc);
    const auto out = scheduler.run(subs);
    std::printf("%-14s jobs=%zu util=%.1f%% mean-wait=%.0f min "
                "backfilled=%zu\n",
                disc == sched::QueueDiscipline::kFcfs ? "FCFS" : "EASY",
                out.log.size(), 100.0 * out.utilization,
                out.mean_wait_s / 60.0, out.backfilled);
  }
  return 0;
}

/// Sweeps iid dropout from clean to 30% over one fixed campaign and
/// reports how far the projection drifts from the clean baseline — the
/// "how much data loss can the analysis absorb" robustness bench.
int cmd_faults_sweep(const std::vector<std::string>& args,
                     const GlobalOptions& opts) {
  EXAEFF_TRACE_SPAN("cli.faults_sweep");
  const auto nodes = static_cast<std::size_t>(arg_num(args, 0, 32));
  const double days = arg_num(args, 1, 7.0);
  const auto base_plan = faults::FaultPlan::parse(opts.faults_spec);

  sched::CampaignConfig cfg;
  cfg.system = cluster::frontier_scaled(nodes);
  cfg.duration_s = days * units::kDay;
  const auto& gcd = cfg.system.node.gcd;
  const auto library = workloads::make_profile_library(gcd);
  const auto boundaries = core::derive_boundaries(gcd);
  const auto table = core::characterize(gcd, pooled_characterization());
  const core::ProjectionEngine engine(table);
  const sched::FleetGenerator gen(cfg, library);
  const auto log = gen.generate_schedule();
  const std::uint64_t expected = sched::expected_gcd_samples(
      log, cfg.telemetry_window_s, cfg.system.node.gcds_per_node());
  const double focus_mhz = 1100.0;

  std::printf("faults-sweep: %zu nodes, %.1f days, %zu jobs, cap %.0f MHz"
              " (base faults: %s, seed 0x%llX)\n",
              nodes, days, log.size(), focus_mhz,
              base_plan.describe().c_str(),
              static_cast<unsigned long long>(base_plan.seed));
  std::printf("%-6s %12s %10s %10s %8s %10s %10s\n", "drop%", "records",
              "coverage%", "TS MWh", "sav%", "sav%@dT=0", "drift%");

  // All dropout points run concurrently; each point's own campaign
  // generation then runs inline inside its worker (nested parallel loops
  // execute with identical chunking), so every point is byte-identical to
  // a serial run.  Results are printed serially in pct order afterwards.
  struct SweepPoint {
    int pct = 0;
    std::size_t records = 0;
    double coverage = 1.0;
    core::ProjectionRow row;
    faults::FaultCounters counters;
    bool faulted = false;
  };
  constexpr int kPoints = 7;  // 0%, 5%, ... 30%
  auto& pool = exec::ThreadPool::global();
  const auto points = pool.parallel_map(kPoints, [&](std::size_t i) {
    SweepPoint p;
    p.pct = static_cast<int>(i) * 5;
    faults::FaultPlan plan = base_plan;
    plan.drop_probability = static_cast<double>(p.pct) / 100.0;
    core::CampaignAccumulator acc(cfg.telemetry_window_s, boundaries);
    core::AccumulatorShards shards(acc);
    if (plan.any_enabled()) {
      faults::FaultedJobShards faulted(shards, plan);
      gen.generate_telemetry(log, faulted, pool);
      p.counters = faulted.counters();
      p.faulted = true;
    } else {
      gen.generate_telemetry(log, shards, pool);
    }
    p.records = acc.gcd_sample_count();
    p.coverage = expected > 0
                     ? static_cast<double>(p.records) /
                           static_cast<double>(expected)
                     : 1.0;
    p.row = engine.project(acc.decomposition(), core::CapType::kFrequency,
                           focus_mhz);
    return p;
  });

  const double clean_saved_mwh = points.front().row.total_saved_mwh;
  for (const SweepPoint& p : points) {
    if (p.faulted) faults::publish_fault_counters(p.counters);
    const double drift =
        clean_saved_mwh > 0.0
            ? 100.0 * (p.row.total_saved_mwh - clean_saved_mwh) /
                  clean_saved_mwh
            : 0.0;
    const bool below_floor = p.coverage < opts.min_coverage;
    std::printf("%-6d %12zu %10.2f %10.3f %8.1f %10.1f %+9.2f%s\n", p.pct,
                p.records, 100.0 * p.coverage, p.row.total_saved_mwh,
                p.row.savings_pct, p.row.savings_pct_no_slowdown, drift,
                below_floor ? " [BELOW FLOOR]" : "");
  }
  std::printf("\ndrift%% is the change in projected savings at %.0f MHz "
              "relative to the clean row.\n",
              focus_mhz);
  return 0;
}

/// End-of-run footer on stderr: where the wall time and samples went.
void print_summary_footer() {
  const auto& reg = obs::MetricsRegistry::global();
  const auto series = reg.top_series(64);
  const std::string stage_prefix = "exaeff_stage_seconds{";

  std::fprintf(stderr, "--- exaeff run summary ---\n");
  std::fprintf(stderr, "stage timings:\n");
  for (const auto& [key, value] : series) {
    if (key.rfind(stage_prefix, 0) != 0) continue;
    // key looks like exaeff_stage_seconds{stage="fleetgen.schedule"}.
    const auto q0 = key.find('"');
    const auto q1 = key.rfind('"');
    const std::string stage = q0 != std::string::npos && q1 > q0
                                  ? key.substr(q0 + 1, q1 - q0 - 1)
                                  : key;
    std::fprintf(stderr, "  %-28s %10.3f s\n", stage.c_str(), value);
  }
  std::fprintf(stderr, "top counters:\n");
  int shown = 0;
  for (const auto& [key, value] : series) {
    if (key.rfind(stage_prefix, 0) == 0 ||
        key.rfind("exaeff_sim_time_seconds", 0) == 0) {
      continue;
    }
    if (++shown > 8) break;
    std::fprintf(stderr, "  %-44s %14.0f\n", key.c_str(), value);
  }
}

int dispatch(const std::string& cmd, const std::vector<std::string>& args,
             const GlobalOptions& opts) {
  if (cmd == "ert") return cmd_ert(args);
  if (cmd == "characterize") return cmd_characterize();
  if (cmd == "campaign") return cmd_campaign(args);
  if (cmd == "project") return cmd_project(args, opts);
  if (cmd == "report") return cmd_report(args, opts);
  if (cmd == "decompose") return cmd_decompose(args);
  if (cmd == "queue") return cmd_queue(args);
  if (cmd == "faults-sweep") return cmd_faults_sweep(args, opts);
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  GlobalOptions opts;
  std::vector<std::string> positional;
  if (!parse_args(argc - 1, argv + 1, opts, positional)) return usage();
  if (opts.help) {
    usage();
    return 0;
  }
  if (positional.empty()) return usage();

  bool level_ok = true;
  const auto level = obs::parse_log_level(opts.log_level, &level_ok);
  if (!level_ok) {
    std::fprintf(stderr, "exaeff: bad --log-level '%s'\n",
                 opts.log_level.c_str());
    return usage();
  }
  obs::Logger::global().set_level(level);
  obs::set_metrics_enabled(true);  // feeds the summary footer
  if (!opts.trace_path.empty()) obs::Tracer::global().set_enabled(true);
  // Must precede the first ThreadPool::global() access; 0 keeps the
  // EXAEFF_JOBS / hardware-concurrency default.
  exec::set_job_count(opts.jobs);

  const std::string cmd = positional.front();
  const std::vector<std::string> args(positional.begin() + 1,
                                      positional.end());
  int rc = 0;
  try {
    rc = dispatch(cmd, args, opts);
  } catch (const DataQualityError& e) {
    // Distinct exit code: the pipeline worked, but the surviving data is
    // too thin to stand behind the numbers.
    std::fprintf(stderr, "exaeff: %s\n", e.what());
    obs::Logger::global().error("cli.data_quality", {{"what", e.what()}});
    return 3;
  } catch (const std::exception& e) {
    obs::Logger::global().error("cli.error", {{"what", e.what()}});
    return 1;
  }

  exec::ThreadPool::global().publish_metrics();
  if (!opts.trace_path.empty()) {
    std::ofstream out(opts.trace_path);
    if (!out) {
      obs::Logger::global().error("trace.open_failed",
                                  {{"path", opts.trace_path}});
    } else {
      obs::Tracer::global().write_chrome_trace(out);
      obs::Logger::global().info(
          "trace.written", {{"path", opts.trace_path},
                            {"spans", obs::Tracer::global().span_count()}});
    }
  }
  if (!opts.metrics_path.empty()) {
    std::ofstream out(opts.metrics_path);
    if (!out) {
      obs::Logger::global().error("metrics.open_failed",
                                  {{"path", opts.metrics_path}});
    } else {
      const bool json = opts.metrics_path.size() >= 5 &&
                        opts.metrics_path.rfind(".json") ==
                            opts.metrics_path.size() - 5;
      auto& reg = obs::MetricsRegistry::global();
      out << (json ? reg.expose_json() : reg.expose_prometheus());
    }
  }
  print_summary_footer();
  return rc;
}
