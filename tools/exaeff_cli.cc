// tools/exaeff_cli.cc
//
// The `exaeff` command-line tool: every workflow in the library behind
// one binary, for operators who want answers without writing C++.
//
//   exaeff ert [freq_mhz]            empirical roofline of the device
//   exaeff characterize              Table III cap-response table
//   exaeff campaign [nodes] [days]   synthesize + summarize a campaign
//   exaeff project [nodes] [days]    campaign + Table V projection
//   exaeff report <path> [nodes]     full analysis report to a file
//   exaeff decompose <watts> [mhz]   utilization envelope for a reading
//   exaeff queue [nodes] [days]      FCFS vs EASY scheduling comparison
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "core/decomposition.h"
#include "core/report.h"
#include "sched/fleetgen.h"
#include "sched/queue_sim.h"
#include "workloads/ert.h"

namespace {

using namespace exaeff;

int usage() {
  std::fprintf(
      stderr,
      "usage: exaeff <command> [args]\n"
      "  ert [freq_mhz]            empirical roofline (optionally capped)\n"
      "  characterize              benchmark cap-response table\n"
      "  campaign [nodes] [days]   synthesize and summarize a campaign\n"
      "  project [nodes] [days]    campaign + savings projection\n"
      "  report <path> [nodes]     write the full analysis report\n"
      "  decompose <watts> [mhz]   utilization envelope for a reading\n"
      "  queue [nodes] [days]      FCFS vs EASY backfill comparison\n");
  return 2;
}

struct CampaignBundle {
  sched::CampaignConfig cfg;
  workloads::ProfileLibrary library;
  core::RegionBoundaries boundaries;
  std::unique_ptr<core::CampaignAccumulator> acc;
  std::size_t jobs = 0;
};

CampaignBundle run_campaign(std::size_t nodes, double days) {
  CampaignBundle b;
  b.cfg.system = cluster::frontier_scaled(nodes);
  b.cfg.duration_s = days * units::kDay;
  const auto& gcd = b.cfg.system.node.gcd;
  b.library = workloads::make_profile_library(gcd);
  b.boundaries = core::derive_boundaries(gcd);
  const sched::FleetGenerator gen(b.cfg, b.library);
  const auto log = gen.generate_schedule();
  b.jobs = log.size();
  b.acc = std::make_unique<core::CampaignAccumulator>(
      b.cfg.telemetry_window_s, b.boundaries);
  gen.generate_telemetry(log, *b.acc);
  return b;
}

int cmd_ert(int argc, char** argv) {
  workloads::ert::Options opts;
  if (argc > 0) opts.frequency_mhz = std::atof(argv[0]);
  const auto report = workloads::ert::measure(gpusim::mi250x_gcd(), opts);
  std::printf("%s", workloads::ert::render(report).c_str());
  return 0;
}

int cmd_characterize() {
  const auto table = core::characterize(gpusim::mi250x_gcd());
  std::printf("%-10s %-10s %8s %8s %8s %8s\n", "class", "cap", "setting",
              "power%", "time%", "energy%");
  for (auto cls : {core::BenchClass::kComputeIntensive,
                   core::BenchClass::kMemoryIntensive}) {
    for (auto type : {core::CapType::kFrequency, core::CapType::kPower}) {
      for (const auto& r : table.rows(cls, type)) {
        std::printf("%-10s %-10s %8.0f %8.1f %8.1f %8.1f\n",
                    core::bench_class_name(cls), core::cap_type_name(type),
                    r.setting, r.avg_power_pct, r.runtime_pct,
                    r.energy_pct);
      }
    }
  }
  return 0;
}

int cmd_campaign(int argc, char** argv) {
  const std::size_t nodes =
      argc > 0 ? static_cast<std::size_t>(std::atoi(argv[0])) : 32;
  const double days = argc > 1 ? std::atof(argv[1]) : 7.0;
  const auto b = run_campaign(nodes, days);
  const auto d = b.acc->decomposition();
  std::printf("campaign: %zu nodes, %.1f days, %zu jobs, %zu records\n",
              nodes, days, b.jobs, b.acc->gcd_sample_count());
  std::printf("GPU energy: %.2f MWh over %.0f GPU-hours\n",
              units::joules_to_mwh(d.total_energy_j), d.total_gpu_hours);
  for (int r = 0; r < 4; ++r) {
    const auto region = static_cast<core::Region>(r);
    std::printf("  %-30s %5.1f%% hours  %5.1f%% energy\n",
                std::string(core::region_name(region)).c_str(),
                d.hours_pct(region),
                100.0 * d.energy_fraction(region));
  }
  return 0;
}

int cmd_project(int argc, char** argv) {
  const std::size_t nodes =
      argc > 0 ? static_cast<std::size_t>(std::atoi(argv[0])) : 32;
  const double days = argc > 1 ? std::atof(argv[1]) : 7.0;
  const auto b = run_campaign(nodes, days);
  const auto table = core::characterize(b.cfg.system.node.gcd);
  const core::ProjectionEngine engine(table);
  const auto d = b.acc->decomposition();
  std::printf("%-6s %10s %10s %10s %8s %8s %10s\n", "cap", "CI MWh",
              "MI MWh", "TS MWh", "sav%", "dT%", "sav%@dT=0");
  for (auto type : {core::CapType::kFrequency, core::CapType::kPower}) {
    for (const auto& row : engine.project_sweep(d, type)) {
      std::printf("%4.0f%-2s %10.3f %10.3f %10.3f %8.1f %8.1f %10.1f\n",
                  row.setting,
                  type == core::CapType::kFrequency ? "M" : "W",
                  row.ci_saved_mwh, row.mi_saved_mwh, row.total_saved_mwh,
                  row.savings_pct, row.delta_t_pct,
                  row.savings_pct_no_slowdown);
    }
  }
  const auto best = engine.best_no_slowdown(d, core::CapType::kFrequency);
  std::printf("\nbest zero-slowdown point: %.0f MHz (%.1f%%)\n",
              best.setting, best.savings_pct_no_slowdown);
  return 0;
}

int cmd_report(int argc, char** argv) {
  if (argc < 1) return usage();
  const std::size_t nodes =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 32;
  const auto b = run_campaign(nodes, 7.0);
  const auto table = core::characterize(b.cfg.system.node.gcd);
  core::ReportInputs inputs;
  inputs.accumulator = b.acc.get();
  inputs.table = &table;
  inputs.campaign_label = std::to_string(nodes) + "-node campaign";
  std::ofstream out(argv[0]);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", argv[0]);
    return 1;
  }
  out << core::render_campaign_report(inputs);
  std::printf("report written to %s\n", argv[0]);
  return 0;
}

int cmd_decompose(int argc, char** argv) {
  if (argc < 1) return usage();
  const double watts = std::atof(argv[0]);
  const double mhz = argc > 1 ? std::atof(argv[1]) : 1700.0;
  const core::PowerDecomposer dec(gpusim::mi250x_gcd());
  const auto est = dec.estimate(watts, mhz);
  if (est.idle) {
    std::printf("%.0f W at %.0f MHz: idle (no activity inferable)\n",
                watts, mhz);
    return 0;
  }
  std::printf("%.0f W at %.0f MHz:\n", watts, mhz);
  std::printf("  ALU activity : %.2f .. %.2f (balanced point %.2f)\n",
              est.alu_min, est.alu_max, est.alu_mid);
  std::printf("  HBM traffic  : %.2f .. %.2f (balanced point %.2f)\n",
              est.hbm_min, est.hbm_max, est.hbm_mid);
  std::printf("  region       : %s\n",
              std::string(core::region_name(
                  core::RegionBoundaries{}.classify(watts)))
                  .c_str());
  return 0;
}

int cmd_queue(int argc, char** argv) {
  const auto nodes = static_cast<std::uint32_t>(
      argc > 0 ? std::atoi(argv[0]) : 64);
  const double days = argc > 1 ? std::atof(argv[1]) : 2.0;
  const auto subs =
      sched::synthesize_submissions(nodes, days * units::kDay, 1.3, 5);
  for (auto disc : {sched::QueueDiscipline::kFcfs,
                    sched::QueueDiscipline::kEasyBackfill}) {
    const sched::BatchScheduler scheduler(nodes, disc);
    const auto out = scheduler.run(subs);
    std::printf("%-14s jobs=%zu util=%.1f%% mean-wait=%.0f min "
                "backfilled=%zu\n",
                disc == sched::QueueDiscipline::kFcfs ? "FCFS" : "EASY",
                out.log.size(), 100.0 * out.utilization,
                out.mean_wait_s / 60.0, out.backfilled);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const int rest = argc - 2;
  char** rest_argv = argv + 2;
  try {
    if (cmd == "ert") return cmd_ert(rest, rest_argv);
    if (cmd == "characterize") return cmd_characterize();
    if (cmd == "campaign") return cmd_campaign(rest, rest_argv);
    if (cmd == "project") return cmd_project(rest, rest_argv);
    if (cmd == "report") return cmd_report(rest, rest_argv);
    if (cmd == "decompose") return cmd_decompose(rest, rest_argv);
    if (cmd == "queue") return cmd_queue(rest, rest_argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
