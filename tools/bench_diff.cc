// tools/bench_diff.cc
//
// Bench regression gate: compares two google-benchmark JSON result
// files (the committed baseline vs a fresh run) and fails when any
// benchmark regressed by more than the tolerance.
//
//   bench_diff <baseline.json> <current.json> [--tolerance=15]
//              [--allow-missing]
//
// Per-benchmark real_time values are normalized to nanoseconds via
// time_unit and compared as current/baseline ratios.  Aggregate rows
// (mean/median/stddev from --benchmark_repetitions) are skipped so a
// repeated baseline still lines up with a single-shot run.
//
// Exit codes: 0 all within tolerance, 1 regression (or a baseline
// benchmark missing from the current run, unless --allow-missing),
// 2 usage / unreadable / unparsable input.
//
// The parser is deliberately minimal — it understands exactly the
// subset of JSON google-benchmark emits — so the gate stays
// dependency-free like everything else in the repo.
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct BenchResult {
  std::string name;
  double real_time_ns = 0.0;
  double cpu_time_ns = 0.0;
};

int usage() {
  std::fprintf(stderr,
               "usage: bench_diff <baseline.json> <current.json> "
               "[--tolerance=<pct>] [--allow-missing]\n"
               "  exit 1 when any benchmark's real_time regressed by more "
               "than <pct>%% (default 15)\n");
  return 2;
}

/// Extracts the JSON string immediately following `"key":` at `from`,
/// or an empty string when absent before `until`.
std::string find_string_field(const std::string& text, const std::string& key,
                              std::size_t from, std::size_t until) {
  const std::string needle = "\"" + key + "\"";
  const auto k = text.find(needle, from);
  if (k == std::string::npos || k >= until) return {};
  auto p = text.find(':', k + needle.size());
  if (p == std::string::npos) return {};
  p = text.find('"', p);
  if (p == std::string::npos || p >= until) return {};
  const auto q = text.find('"', p + 1);
  if (q == std::string::npos) return {};
  return text.substr(p + 1, q - p - 1);
}

/// Extracts the number following `"key":`, or NaN when absent.
double find_number_field(const std::string& text, const std::string& key,
                         std::size_t from, std::size_t until) {
  const std::string needle = "\"" + key + "\"";
  const auto k = text.find(needle, from);
  if (k == std::string::npos || k >= until) return std::nan("");
  const auto p = text.find(':', k + needle.size());
  if (p == std::string::npos) return std::nan("");
  return std::strtod(text.c_str() + p + 1, nullptr);
}

double unit_to_ns(const std::string& unit) {
  if (unit == "ns" || unit.empty()) return 1.0;
  if (unit == "us") return 1e3;
  if (unit == "ms") return 1e6;
  if (unit == "s") return 1e9;
  return std::nan("");
}

/// Parses the "benchmarks" array of a google-benchmark JSON document.
/// Returns false when the file does not look like benchmark output.
bool parse_benchmarks(const std::string& text,
                      std::vector<BenchResult>& out) {
  const auto arr = text.find("\"benchmarks\"");
  if (arr == std::string::npos) return false;
  std::size_t pos = text.find('[', arr);
  if (pos == std::string::npos) return false;
  // Walk the top-level objects of the array by brace depth.
  int depth = 0;
  std::size_t obj_begin = 0;
  for (std::size_t i = pos + 1; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '{') {
      if (depth == 0) obj_begin = i;
      ++depth;
    } else if (c == '}') {
      --depth;
      if (depth == 0) {
        const std::size_t obj_end = i;
        const std::string run_type =
            find_string_field(text, "run_type", obj_begin, obj_end);
        if (run_type.empty() || run_type == "iteration") {
          BenchResult r;
          r.name = find_string_field(text, "name", obj_begin, obj_end);
          const double scale = unit_to_ns(
              find_string_field(text, "time_unit", obj_begin, obj_end));
          const double real =
              find_number_field(text, "real_time", obj_begin, obj_end);
          const double cpu =
              find_number_field(text, "cpu_time", obj_begin, obj_end);
          if (!r.name.empty() && std::isfinite(scale) &&
              std::isfinite(real)) {
            r.real_time_ns = real * scale;
            r.cpu_time_ns = std::isfinite(cpu) ? cpu * scale : 0.0;
            out.push_back(r);
          }
        }
      }
    } else if (c == ']' && depth == 0) {
      return true;
    }
  }
  return false;
}

bool load_file(const char* path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

std::string format_time(double ns) {
  char buf[64];
  if (ns >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.3f s", ns / 1e9);
  } else if (ns >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.3f ms", ns / 1e6);
  } else if (ns >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.3f us", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.1f ns", ns);
  }
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  double tolerance_pct = 15.0;
  bool allow_missing = false;
  std::vector<const char*> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--tolerance=", 0) == 0) {
      errno = 0;
      char* end = nullptr;
      const double v = std::strtod(arg.c_str() + 12, &end);
      if (end != arg.c_str() + arg.size() || errno == ERANGE ||
          !std::isfinite(v) || v <= 0.0) {
        std::fprintf(stderr,
                     "bench_diff: --tolerance must be a positive percent, "
                     "got '%s'\n",
                     arg.c_str() + 12);
        return 2;
      }
      tolerance_pct = v;
    } else if (arg == "--allow-missing") {
      allow_missing = true;
    } else if (arg == "--help") {
      return usage();
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "bench_diff: unknown option '%s'\n", arg.c_str());
      return 2;
    } else {
      files.push_back(argv[i]);
    }
  }
  if (files.size() != 2) return usage();

  std::string base_text, cur_text;
  if (!load_file(files[0], base_text)) {
    std::fprintf(stderr, "bench_diff: cannot read '%s'\n", files[0]);
    return 2;
  }
  if (!load_file(files[1], cur_text)) {
    std::fprintf(stderr, "bench_diff: cannot read '%s'\n", files[1]);
    return 2;
  }
  std::vector<BenchResult> base, cur;
  if (!parse_benchmarks(base_text, base) || base.empty()) {
    std::fprintf(stderr,
                 "bench_diff: '%s' is not google-benchmark JSON output\n",
                 files[0]);
    return 2;
  }
  if (!parse_benchmarks(cur_text, cur) || cur.empty()) {
    std::fprintf(stderr,
                 "bench_diff: '%s' is not google-benchmark JSON output\n",
                 files[1]);
    return 2;
  }

  std::map<std::string, BenchResult> current;
  for (const auto& r : cur) current[r.name] = r;

  std::printf("%-44s %14s %14s %9s\n", "benchmark", "baseline", "current",
              "delta");
  int regressions = 0;
  int missing = 0;
  for (const auto& b : base) {
    const auto it = current.find(b.name);
    if (it == current.end()) {
      std::printf("%-44s %14s %14s %9s\n", b.name.c_str(),
                  format_time(b.real_time_ns).c_str(), "MISSING", "-");
      ++missing;
      continue;
    }
    const double delta_pct =
        b.real_time_ns > 0.0
            ? 100.0 * (it->second.real_time_ns - b.real_time_ns) /
                  b.real_time_ns
            : 0.0;
    const bool regressed = delta_pct > tolerance_pct;
    std::printf("%-44s %14s %14s %+8.1f%%%s\n", b.name.c_str(),
                format_time(b.real_time_ns).c_str(),
                format_time(it->second.real_time_ns).c_str(), delta_pct,
                regressed ? "  REGRESSION" : "");
    if (regressed) ++regressions;
    current.erase(it);
  }
  for (const auto& [name, r] : current) {
    std::printf("%-44s %14s %14s %9s\n", name.c_str(), "(new)",
                format_time(r.real_time_ns).c_str(), "-");
  }

  if (missing > 0 && !allow_missing) {
    std::fprintf(stderr,
                 "bench_diff: %d baseline benchmark(s) missing from the "
                 "current run (update %s or pass --allow-missing)\n",
                 missing, files[0]);
    return 1;
  }
  if (regressions > 0) {
    std::fprintf(stderr,
                 "bench_diff: %d benchmark(s) regressed beyond %.1f%%\n",
                 regressions, tolerance_pct);
    return 1;
  }
  std::fprintf(stderr, "bench_diff: %zu benchmarks within %.1f%%\n",
               base.size(), tolerance_pct);
  return 0;
}
