// Reproduces paper Table I: "Frontier system's summary".
#include "bench/support.h"
#include "cluster/system_config.h"
#include "common/table.h"

int main() {
  using namespace exaeff;
  bench::print_header("Table I", "Frontier system's summary");

  const auto cfg = cluster::frontier();
  const auto& gcd = cfg.node.gcd;
  const double pib = 1024.0 * 1024.0 * 1024.0 * 1024.0 * 1024.0;

  TextTable t("Frontier System");
  t.set_header({"Property", "Value"});
  t.add_row({"Compute node", std::to_string(cfg.compute_nodes)});
  t.add_row({"Peak performance",
             TextTable::num(cfg.peak_performance_eflops, 1) + " EF"});
  t.add_row({"Peak power", TextTable::num(cfg.peak_power_mw, 0) + " MW"});
  t.add_row({"GPU memory (HBM)",
             TextTable::num(cfg.total_hbm_bytes() / pib, 1) + " PB"});
  t.add_row({"CPU memory (DDR4)",
             TextTable::num(cfg.total_ddr4_bytes() / pib, 1) + " PB"});
  t.add_row({"Each Compute node",
             std::to_string(cfg.node.gpus_per_node) + " AMD MI250X"});
  t.add_row({"Each GPU", std::to_string(cfg.node.gcds_per_gpu) + " GCD"});
  t.add_row({"Each GCD",
             TextTable::num(gcd.hbm_bytes / (1024.0 * 1024.0 * 1024.0), 0) +
                 " GB HBM2E"});
  t.add_row({"GCD max power", TextTable::num(gcd.tdp_w, 0) + " W"});
  t.add_row({"GCD max frequency",
             TextTable::num(gcd.f_max_mhz, 0) + " MHz"});
  t.add_row({"HBM bandwidth",
             TextTable::num(gcd.hbm_bw / 1e12, 1) + " TB/s"});
  std::printf("%s\n", t.str().c_str());

  bench::note(
      "paper's Table I lists HBM bandwidth as '1.6 GB/s' — a typo for "
      "1.6 TB/s per GCD, which is what the model uses.");
  return 0;
}
