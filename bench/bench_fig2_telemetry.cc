// Reproduces paper Fig 2: (a) out-of-band telemetry vs ROCm-SMI agreement
// on a sample application run; (b) the GPU vs CPU energy split on the
// system.
#include "bench/support.h"
#include "common/ascii_plot.h"
#include "common/table.h"
#include "telemetry/smi.h"
#include "workloads/vai.h"

int main() {
  using namespace exaeff;
  bench::print_header(
      "Figure 2",
      "(a) telemetry vs ROCm-SMI comparison on a sample run;\n"
      "(b) GPU vs CPU energy on the (scaled) system.");

  // ---- (a): sample a multi-phase run with both channels ----------------
  const auto spec = gpusim::mi250x_gcd();
  const gpusim::GpuSimulator sim(spec);
  Rng rng(11);

  // A run alternating memory- and compute-heavy phases, ~5 minutes.
  std::vector<gpusim::TracePoint> truth;
  double t_offset = 0.0;
  for (double ai : {0.5, 64.0, 2.0, 1024.0, 4.0}) {
    std::vector<gpusim::TracePoint> part;
    const auto kernel = workloads::vai::make_kernel(spec, ai).scaled(3.0);
    (void)sim.run_traced(kernel, gpusim::PowerPolicy::none(), rng, part);
    for (auto p : part) {
      p.t_s += t_offset;
      truth.push_back(p);
    }
    t_offset = truth.back().t_s + 2.0;
  }

  const double t_end = truth.back().t_s;
  const auto smi = telemetry::sample_trace(
      truth, telemetry::rocm_smi_sampler(), 0.0, t_end, rng);
  const auto oob = telemetry::sample_trace(
      truth, telemetry::oob_sensor_sampler(), 0.0, t_end, rng);
  const auto telemetry_15s = telemetry::aggregate_series(oob, 15.0);
  const auto smi_15s = telemetry::aggregate_series(smi, 15.0);

  const auto agreement = telemetry::compare_series(telemetry_15s, smi_15s);
  TextTable a("(a) channel agreement on the sample run");
  a.set_header({"metric", "value"});
  a.add_row({"run length (s)", TextTable::num(t_end, 0)});
  a.add_row({"ROCm-SMI samples (1 s)", std::to_string(smi.size())});
  a.add_row({"telemetry samples (2 s -> 15 s)",
             std::to_string(telemetry_15s.size())});
  a.add_row({"mean abs diff (W)",
             TextTable::num(agreement.mean_abs_err_w, 1)});
  a.add_row({"mean rel diff", TextTable::pct(100 * agreement.mean_rel_err, 2)});
  a.add_row({"correlation", TextTable::num(agreement.correlation, 3)});
  std::printf("%s\n", a.str().c_str());

  LinePlot plot("(a) power vs time: telemetry [*] vs ROCm-SMI [o]", 72, 14);
  std::vector<double> tx, ty, sx, sy;
  for (const auto& p : telemetry_15s) {
    tx.push_back(p.t_s);
    ty.push_back(p.power_w);
  }
  for (const auto& p : smi_15s) {
    sx.push_back(p.t_s);
    sy.push_back(p.power_w);
  }
  plot.add_series("telemetry(15s)", tx, ty);
  plot.add_series("rocm-smi(15s)", sx, sy);
  plot.set_labels("time (s)", "power (W)");
  std::printf("%s\n", plot.str().c_str());

  // ---- (b): GPU vs CPU energy over a campaign with node channels -------
  sched::CampaignConfig cfg;
  cfg.system = cluster::frontier_scaled(16);
  cfg.duration_s = 2.0 * units::kDay;
  cfg.emit_node_samples = true;
  const auto library = workloads::make_profile_library(spec);
  const sched::FleetGenerator gen(cfg, library);
  const auto boundaries = core::derive_boundaries(spec);
  core::CampaignAccumulator acc(cfg.telemetry_window_s, boundaries);
  gen.generate_telemetry(gen.generate_schedule(), acc);

  const double gpu_mwh = units::joules_to_mwh(acc.total_gpu_energy_j());
  const double cpu_mwh = units::joules_to_mwh(acc.total_cpu_energy_j());
  TextTable b("(b) energy split over a 16-node, 2-day campaign");
  b.set_header({"component", "energy (MWh)", "share"});
  b.add_row({"GPU (all GCDs)", TextTable::num(gpu_mwh, 2),
             TextTable::pct(100 * gpu_mwh / (gpu_mwh + cpu_mwh), 1)});
  b.add_row({"CPU", TextTable::num(cpu_mwh, 2),
             TextTable::pct(100 * cpu_mwh / (gpu_mwh + cpu_mwh), 1)});
  std::printf("%s\n", b.str().c_str());

  bench::note(
      "paper anchors: the two channels agree closely on the sample run; "
      "GPUs dominate system energy (CPU and the rest are dwarfed, <20% on "
      "a utilized node).");
  return 0;
}
