// bench/support.h
//
// Shared plumbing for the table/figure reproduction harnesses: a standard
// synthetic campaign (the stand-in for the paper's three months of
// Frontier telemetry) and common formatting helpers.  Every bench binary
// is standalone; binaries that need the campaign regenerate it from the
// same seed, so all tables/figures describe the same dataset.
#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "core/accumulator.h"
#include "core/characterization.h"
#include "core/domain_analysis.h"
#include "core/projection.h"
#include "sched/fleetgen.h"

namespace exaeff::bench {

/// The standard campaign: a scaled Frontier fleet observed for several
/// weeks.  Scaled linearly, percentages transfer to the full machine.
struct Campaign {
  sched::CampaignConfig config;
  workloads::ProfileLibrary library;
  core::RegionBoundaries boundaries;
  std::unique_ptr<core::CampaignAccumulator> accumulator;
  std::size_t job_count = 0;
  double gpu_hours = 0.0;
};

/// Builds the standard campaign (deterministic; ~1-2 s).
inline Campaign make_standard_campaign(std::size_t nodes = 48,
                                       double days = 14.0,
                                       std::uint64_t seed = 0xF50) {
  Campaign c;
  c.config.system = cluster::frontier_scaled(nodes);
  c.config.duration_s = days * units::kDay;
  c.config.seed = seed;
  c.library = workloads::make_profile_library(c.config.system.node.gcd);
  c.boundaries = core::derive_boundaries(c.config.system.node.gcd);
  const sched::FleetGenerator gen(c.config, c.library);
  const auto log = gen.generate_schedule();
  c.job_count = log.size();
  c.gpu_hours = log.total_gpu_hours(c.config.system.node.gcds_per_node());
  c.accumulator = std::make_unique<core::CampaignAccumulator>(
      c.config.telemetry_window_s, c.boundaries);
  gen.generate_telemetry(log, *c.accumulator);
  return c;
}

/// Prints the standard bench header.
inline void print_header(const char* experiment, const char* description) {
  std::printf("==================================================================\n");
  std::printf("exaeff reproduction | %s\n", experiment);
  std::printf("%s\n", description);
  std::printf("==================================================================\n\n");
}

/// Prints a paper-vs-measured footnote line.
inline void note(const char* text) { std::printf("note: %s\n", text); }

}  // namespace exaeff::bench
