// Reproduces paper Fig 9: per-science-domain GPU power distributions,
// showing the characteristic modality of each domain's workloads.
#include "bench/support.h"
#include "common/ascii_plot.h"
#include "common/stats.h"

int main() {
  using namespace exaeff;
  bench::print_header(
      "Figure 9",
      "Characterization of workloads by science domain: per-domain GPU\n"
      "power distributions (shaded regions per Table IV).");

  const auto campaign = bench::make_standard_campaign();
  const auto& b = campaign.boundaries;

  for (auto d : sched::all_domains()) {
    const auto& hist = campaign.accumulator->domain_histogram(d);
    if (hist.total_weight() <= 0.0) continue;

    const auto density = smooth_density(hist, 8.0);
    std::vector<double> xs(hist.bin_count());
    for (std::size_t i = 0; i < xs.size(); ++i) xs[i] = hist.bin_center(i);

    char title[128];
    std::snprintf(title, sizeof title, "%s (%s) - %.0f k records",
                  std::string(sched::domain_code(d)).c_str(),
                  std::string(sched::domain_name(d)).c_str(),
                  hist.total_weight() / 1000.0);
    LinePlot plot(title, 72, 9);
    plot.add_series("density", xs, density);
    plot.set_labels("W", "density");
    std::printf("%s", plot.str().c_str());

    const double total = hist.total_weight();
    std::printf(
        "  region mass:  lat %.0f%%  |  mem %.0f%%  |  comp %.0f%%  |  "
        "boost %.1f%%\n\n",
        100.0 * hist.weight_between(hist.lo(), b.latency_max_w) / total,
        100.0 * hist.weight_between(b.latency_max_w, b.memory_max_w) / total,
        100.0 * hist.weight_between(b.memory_max_w, b.compute_max_w) / total,
        100.0 * hist.weight_between(b.compute_max_w, 1e9) / total);
  }

  bench::note(
      "paper anchors: (a)/(b)-style domains sit high (compute-bound), "
      "(c)/(d) low (latency-bound), (e)/(f) mid (memory-bound), (g)/(h) "
      "multi-modal across regions — here CHM/MAT, BIO/CLI, CFD/FUS and "
      "AST/NUC respectively.");
  return 0;
}
