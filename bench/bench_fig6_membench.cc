// Reproduces paper Fig 6: the L2-cache/HBM memory benchmark — average
// power, bandwidth and time-to-completion versus working-set size, under
// frequency caps (left column) and power caps (right column).
#include <vector>

#include "bench/support.h"
#include "common/ascii_plot.h"
#include "gpusim/simulator.h"
#include "workloads/membench.h"

namespace {

using namespace exaeff;

void emit(const gpusim::GpuSimulator& sim, bool frequency) {
  const std::vector<double> settings =
      frequency ? std::vector<double>{1700, 1300, 1100, 900, 700}
                : std::vector<double>{560, 300, 200, 140};
  const auto sizes = workloads::membench::standard_sizes();

  std::printf("--- %s ---\n", frequency ? "Left: frequency caps"
                                        : "Right: power caps");
  std::printf("%-12s", frequency ? "MiB \\ MHz" : "MiB \\ W");
  for (double s : settings) std::printf("%10.0f", s);
  std::printf("\n");

  struct Cell {
    double bw_gbs;
    double power_w;
    double time_rel;
    bool breached;
  };
  std::vector<std::vector<Cell>> grid;  // [size][setting]
  for (double size : sizes) {
    const auto kernel = workloads::membench::make_kernel(sim.spec(), size);
    const auto base = sim.run(kernel, gpusim::PowerPolicy::none());
    std::vector<Cell> row;
    for (double setting : settings) {
      const auto policy = frequency
                              ? gpusim::PowerPolicy::frequency(setting)
                              : gpusim::PowerPolicy::power(setting);
      const auto r = sim.run(kernel, policy);
      const double served =
          kernel.l2_bytes;  // total bytes served to the CUs
      row.push_back(Cell{served / r.time_s / 1e9, r.avg_power_w,
                         r.time_s / base.time_s, r.cap_breached});
    }
    grid.push_back(std::move(row));
  }

  auto block = [&](const char* name, auto getter, const char* fmt) {
    std::printf("[%s]\n", name);
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      std::printf("%-12.3g", sizes[i] / (1024.0 * 1024.0));
      for (const auto& c : grid[i]) std::printf(fmt, getter(c));
      std::printf("\n");
    }
  };
  block("a) bandwidth GB/s", [](const Cell& c) { return c.bw_gbs; },
        "%10.0f");
  block("b) avg power W (* = cap breached)",
        [](const Cell& c) { return c.power_w; }, "%10.1f");
  std::printf("[breach map: 1 = power cap breached]\n");
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::printf("%-12.3g", sizes[i] / (1024.0 * 1024.0));
    for (const auto& c : grid[i]) std::printf("%10d", c.breached ? 1 : 0);
    std::printf("\n");
  }
  block("c) time rel. to uncapped",
        [](const Cell& c) { return c.time_rel; }, "%10.3f");

  LinePlot plot(frequency ? "bandwidth vs size (frequency caps)"
                          : "bandwidth vs size (power caps)",
                72, 14);
  std::vector<double> xs;
  for (double s : sizes) xs.push_back(s / (1024.0 * 1024.0));
  for (std::size_t j = 0; j < settings.size(); j += settings.size() - 1) {
    std::vector<double> ys;
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      ys.push_back(grid[i][j].bw_gbs);
    }
    char label[32];
    std::snprintf(label, sizeof label, "%s %.0f",
                  frequency ? "MHz" : "W", settings[j]);
    plot.add_series(label, xs, ys);
    if (settings.size() == 1) break;
  }
  plot.set_log_x(true);
  plot.set_labels("working set (MiB)", "GB/s");
  std::printf("%s\n", plot.str().c_str());
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 6",
      "GPU memory characterization: bandwidth, power, runtime vs working\n"
      "set size (384 KiB .. 1.5 GiB) under frequency and power caps.");

  const gpusim::GpuSimulator sim(gpusim::mi250x_gcd());
  emit(sim, /*frequency=*/true);
  emit(sim, /*frequency=*/false);

  bench::note(
      "paper anchors: below the 16 MB L2 capacity, bandwidth follows the "
      "clock and power stays under any cap; above it, frequency caps stop "
      "mattering while 140/200 W caps are breached (extra HBM power) and "
      "still cost runtime.");
  return 0;
}
