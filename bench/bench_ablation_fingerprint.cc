// Ablation: region-level projection (the paper's method) vs per-job
// fingerprinting (the refinement its discussion proposes).  Also prints
// the per-job savings ranking an operator would act on.
#include "agent/fingerprint.h"
#include "bench/support.h"
#include "common/table.h"
#include "core/projection.h"

int main() {
  using namespace exaeff;
  bench::print_header(
      "Ablation: region-level vs per-job fingerprint projection",
      "The paper pools all samples into four regions; fingerprinting\n"
      "projects every job through its own region mix and ranks jobs.");

  const auto gcd = gpusim::mi250x_gcd();
  sched::CampaignConfig cfg;
  cfg.system = cluster::frontier_scaled(32);
  cfg.duration_s = 7.0 * units::kDay;
  const auto library = workloads::make_profile_library(gcd);
  const sched::FleetGenerator gen(cfg, library);
  const auto log = gen.generate_schedule();
  const auto boundaries = core::derive_boundaries(gcd);

  // Run both accumulators over the same stream.
  core::CampaignAccumulator region_acc(cfg.telemetry_window_s, boundaries);
  agent::JobFingerprintAccumulator fp_acc(cfg.telemetry_window_s,
                                          boundaries);
  struct Tee final : sched::JobSampleSink {
    sched::JobSampleSink& a;
    sched::JobSampleSink& b;
    Tee(sched::JobSampleSink& x, sched::JobSampleSink& y) : a(x), b(y) {}
    void on_job_sample(const telemetry::GcdSample& s,
                       const sched::Job& j) override {
      a.on_job_sample(s, j);
      b.on_job_sample(s, j);
    }
  } tee(region_acc, fp_acc);
  gen.generate_telemetry(log, tee);

  const auto table = core::characterize(gcd);
  const core::ProjectionEngine engine(table);

  TextTable t("projection comparison (frequency caps)");
  t.set_header({"cap (MHz)", "region-level savings %",
                "fingerprint savings %", "fingerprint runtime x"});
  for (double cap : {1300.0, 1100.0, 900.0}) {
    const auto region_row = engine.project(region_acc.decomposition(),
                                           core::CapType::kFrequency, cap);
    const auto ranked =
        agent::predict_sensitivities(fp_acc, table, gcd, cap);
    const auto agg = agent::aggregate_sensitivities(ranked);
    t.add_row({TextTable::num(cap, 0),
               TextTable::num(region_row.savings_pct, 2),
               TextTable::num(agg.savings_pct(), 2),
               TextTable::num(agg.mean_runtime_scale, 3)});
  }
  std::printf("%s\n", t.str().c_str());

  // Per-job ranking at 900 MHz: where the savings actually live.
  const auto ranked = agent::predict_sensitivities(fp_acc, table, gcd, 900.0);
  TextTable top("top 10 jobs by projected savings at 900 MHz");
  top.set_header({"job", "domain", "size", "energy (MWh)", "saved (MWh)",
                  "savings %", "runtime x"});
  std::size_t shown = 0;
  double cum = 0.0;
  double total_saved = 0.0;
  for (const auto& s : ranked) total_saved += s.saved_j;
  for (const auto& s : ranked) {
    if (shown >= 10) break;
    const auto& fp = fp_acc.fingerprints().at(s.job_id);
    cum += s.saved_j;
    top.add_row({std::to_string(s.job_id),
                 std::string(sched::domain_code(fp.domain)),
                 std::string(sched::bin_name(fp.bin)),
                 TextTable::num(units::joules_to_mwh(s.energy_j), 3),
                 TextTable::num(units::joules_to_mwh(s.saved_j), 4),
                 TextTable::num(s.savings_pct(), 1),
                 TextTable::num(s.runtime_scale, 3)});
    ++shown;
  }
  std::printf("%s\n", top.str().c_str());
  std::printf("top 10 of %zu jobs carry %.0f%% of all projected savings\n\n",
              ranked.size(), 100.0 * cum / total_saved);

  bench::note(
      "fingerprinting yields the same aggregate as the region method on "
      "the same samples (it is the same arithmetic, finer-grained) but "
      "exposes per-job runtime risk and concentrates action on the few "
      "jobs that matter.");
  return 0;
}
