// Reproduces paper Table IV: "Leveraging GPU modalities for Resource
// Utilization" — the four regions of operation and their GPU-hour share.
#include "bench/support.h"
#include "common/table.h"

int main() {
  using namespace exaeff;
  bench::print_header("Table IV",
                      "Modal decomposition of the campaign's GPU hours");

  const auto campaign = bench::make_standard_campaign();
  const auto decomp = campaign.accumulator->decomposition();
  const auto& b = campaign.boundaries;

  TextTable t("Regions of operation");
  t.set_header({"Region", "Mode (region of operation)", "Range (W)",
                "GPU Hrs. (%)", "Energy (%)"});
  const char* ranges[4];
  char r1[32], r2[32], r3[32], r4[32];
  std::snprintf(r1, sizeof r1, "<= %.0f", b.latency_max_w);
  std::snprintf(r2, sizeof r2, "%.0f-%.0f", b.latency_max_w, b.memory_max_w);
  std::snprintf(r3, sizeof r3, "%.0f-%.0f", b.memory_max_w, b.compute_max_w);
  std::snprintf(r4, sizeof r4, ">= %.0f", b.compute_max_w);
  ranges[0] = r1;
  ranges[1] = r2;
  ranges[2] = r3;
  ranges[3] = r4;

  for (int r = 0; r < 4; ++r) {
    const auto region = static_cast<core::Region>(r);
    t.add_row({std::to_string(r + 1),
               std::string(core::region_name(region)), ranges[r],
               TextTable::num(decomp.hours_pct(region), 1),
               TextTable::num(100.0 * decomp.energy_fraction(region), 1)});
  }
  std::printf("%s\n", t.str().c_str());

  std::printf("total: %.0f GPU-hours, %.2f MWh\n\n", decomp.total_gpu_hours,
              units::joules_to_mwh(decomp.total_energy_j));

  bench::note(
      "paper GPU-hour shares: 29.8 / 49.5 / 19.5 / 1.1%. Boundaries are "
      "derived from the benchmark characterization (compute-bound VAI "
      "power floor -> 420 W; latency probe -> 200 W; TDP -> 560 W).");
  return 0;
}
