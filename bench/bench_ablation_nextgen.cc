// Ablation: re-evaluating the projection on next-generation hardware —
// the paper's discussion point that "based on technology developments,
// such assessments have to be re-evaluated to understand the tradeoffs
// and opportunities."  The same workload mix and pipeline, two devices.
#include "bench/support.h"
#include "common/table.h"

namespace {

using namespace exaeff;

struct Evaluation {
  double total_mwh = 0.0;
  std::vector<core::ProjectionRow> rows;
  core::RegionBoundaries boundaries;
  std::array<double, 4> hours_pct{};
};

Evaluation evaluate(const gpusim::DeviceSpec& gcd) {
  sched::CampaignConfig cfg;
  cfg.system = cluster::frontier_scaled(32);
  cfg.system.node.gcd = gcd;
  cfg.duration_s = 7.0 * units::kDay;
  const auto library = workloads::make_profile_library(gcd);
  const sched::FleetGenerator gen(cfg, library);
  const auto boundaries = core::derive_boundaries(gcd);
  core::CampaignAccumulator acc(cfg.telemetry_window_s, boundaries);
  gen.generate_telemetry(gen.generate_schedule(), acc);

  core::CharacterizationOptions opts;
  opts.frequency_caps_mhz = {gcd.f_max_mhz, 0.88 * gcd.f_max_mhz,
                             0.76 * gcd.f_max_mhz, 0.65 * gcd.f_max_mhz,
                             0.53 * gcd.f_max_mhz};
  const auto table = core::characterize(gcd, opts);
  const core::ProjectionEngine engine(table);
  const auto decomp = acc.decomposition();

  Evaluation ev;
  ev.total_mwh = units::joules_to_mwh(decomp.total_energy_j);
  ev.rows = engine.project_sweep(decomp, core::CapType::kFrequency);
  ev.boundaries = boundaries;
  for (int r = 0; r < 4; ++r) {
    ev.hours_pct[static_cast<std::size_t>(r)] =
        decomp.hours_pct(static_cast<core::Region>(r));
  }
  return ev;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation: re-evaluation on next-generation hardware",
      "Identical workload mix and pipeline on the MI250X-class GCD and a\n"
      "hypothetical next-gen part (higher TDP/bandwidth, bigger static\n"
      "HBM share).  Where do the savings move?");

  const auto now = evaluate(gpusim::mi250x_gcd());
  const auto next = evaluate(gpusim::nextgen_gcd());

  TextTable b("derived region boundaries and occupancy");
  b.set_header({"device", "lat<= (W)", "mem<= (W)", "TDP (W)", "R1 hrs%",
                "R2 hrs%", "R3 hrs%"});
  b.add_row({"MI250X-GCD", TextTable::num(now.boundaries.latency_max_w, 0),
             TextTable::num(now.boundaries.memory_max_w, 0),
             TextTable::num(now.boundaries.compute_max_w, 0),
             TextTable::num(now.hours_pct[0], 1),
             TextTable::num(now.hours_pct[1], 1),
             TextTable::num(now.hours_pct[2], 1)});
  b.add_row({"NextGen-GCD",
             TextTable::num(next.boundaries.latency_max_w, 0),
             TextTable::num(next.boundaries.memory_max_w, 0),
             TextTable::num(next.boundaries.compute_max_w, 0),
             TextTable::num(next.hours_pct[0], 1),
             TextTable::num(next.hours_pct[1], 1),
             TextTable::num(next.hours_pct[2], 1)});
  std::printf("%s\n", b.str().c_str());

  TextTable t("frequency-cap projection, relative cap depth");
  t.set_header({"cap (% of f_max)", "MI250X sav%", "MI250X dT%",
                "NextGen sav%", "NextGen dT%"});
  for (std::size_t i = 0; i < now.rows.size() && i < next.rows.size();
       ++i) {
    const double frac = 100.0 * now.rows[i].setting / 1700.0;
    t.add_row({TextTable::num(frac, 0),
               TextTable::num(now.rows[i].savings_pct, 1),
               TextTable::num(now.rows[i].delta_t_pct, 1),
               TextTable::num(next.rows[i].savings_pct, 1),
               TextTable::num(next.rows[i].delta_t_pct, 1)});
  }
  std::printf("%s\n", t.str().c_str());

  bench::note(
      "the next-gen part's larger clock-independent HBM share shrinks the "
      "relative savings a frequency cap can reach on memory-bound work — "
      "the assessment indeed has to be redone per technology generation.");
  return 0;
}
