// Reproduces paper Fig 7 and the §IV-C case study: GPU-based Louvain
// community detection across networks of varying size and degree
// distribution, swept over frequency caps and power caps.
#include <cstring>
#include <vector>

#include "bench/support.h"
#include "common/table.h"
#include "gpusim/simulator.h"
#include "graph/generators.h"
#include "graph/gpu_mapping.h"
#include "graph/louvain.h"

namespace {

using namespace exaeff;

struct Network {
  std::string name;
  bool power_law;
  graph::DegreeStats stats;
  std::size_t edges;
  gpusim::KernelDesc kernel;
  double modularity;
};

Network prepare(const graph::NamedGraph& g, const gpusim::DeviceSpec& spec) {
  graph::LouvainParams params;
  params.max_iterations = 8;  // bench-speed setting; quality barely moves
  const auto run = louvain(g.graph, params);
  Network n;
  n.name = g.name;
  n.power_law = g.power_law;
  n.stats = g.graph.degree_stats();
  n.edges = g.graph.num_edges();
  n.kernel = map_louvain_run(spec, g.graph, run, {});
  n.modularity = run.modularity;
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = argc > 1 && std::strcmp(argv[1], "--full") == 0;
  bench::print_header(
      "Figure 7 / Section IV-C",
      "GPU Louvain community detection: runtime and power vs frequency\n"
      "for power-law (social) and bounded-degree (road) networks.\n"
      "(pass --full for the 8M-edge networks; default uses ~0.5-2M)");

  const auto spec = gpusim::mi250x_gcd();
  const gpusim::GpuSimulator sim(spec);

  std::vector<Network> networks;
  Rng rng(77);
  if (full) {
    for (const auto& g : graph::paper_network_suite(rng)) {
      networks.push_back(prepare(g, spec));
    }
  } else {
    graph::RmatParams p;
    p.scale = 16;
    networks.push_back(prepare(
        graph::NamedGraph{"social-0.5M", true, graph::rmat(p, rng)}, spec));
    p.scale = 18;
    networks.push_back(prepare(
        graph::NamedGraph{"social-2M", true, graph::rmat(p, rng)}, spec));
    networks.push_back(prepare(
        graph::NamedGraph{"road-0.5M", false,
                          graph::road_grid(500, 500, 0.05, rng)},
        spec));
    networks.push_back(prepare(
        graph::NamedGraph{"road-2M", false,
                          graph::road_grid(1000, 1000, 0.05, rng)},
        spec));
  }

  TextTable nets("Input networks (SNAP stand-ins)");
  nets.set_header({"network", "kind", "edges", "d_max", "d_avg", "Q"});
  for (const auto& n : networks) {
    nets.add_row({n.name, n.power_law ? "power-law" : "bounded",
                  std::to_string(n.edges), std::to_string(n.stats.d_max),
                  TextTable::num(n.stats.d_avg, 1),
                  TextTable::num(n.modularity, 3)});
  }
  std::printf("%s\n", nets.str().c_str());

  // (b)/(c): runtime and power vs frequency.
  const std::vector<double> freqs = {1700, 1500, 1300, 1100, 900, 700, 500};
  TextTable rt("Runtime relative to 1700 MHz");
  std::vector<std::string> header = {"network"};
  for (double f : freqs) header.push_back(TextTable::num(f, 0));
  rt.set_header(header);
  TextTable pw("Average power (W)");
  pw.set_header(header);
  TextTable en("Energy relative to 1700 MHz");
  en.set_header(header);
  for (const auto& n : networks) {
    const auto base = sim.run(n.kernel, gpusim::PowerPolicy::none());
    std::vector<std::string> r = {n.name};
    std::vector<std::string> p = {n.name};
    std::vector<std::string> e = {n.name};
    for (double f : freqs) {
      const auto run = sim.run(n.kernel, gpusim::PowerPolicy::frequency(f));
      r.push_back(TextTable::num(run.time_s / base.time_s, 2));
      p.push_back(TextTable::num(run.avg_power_w, 0));
      e.push_back(TextTable::num(run.energy_j / base.energy_j, 3));
    }
    rt.add_row(r);
    pw.add_row(p);
    en.add_row(e);
  }
  std::printf("%s\n%s\n%s\n", rt.str().c_str(), pw.str().c_str(),
              en.str().c_str());

  // Section IV-C power-cap case study on the largest road network.
  const Network* road = nullptr;
  for (const auto& n : networks) {
    if (!n.power_law) road = &n;
  }
  if (road != nullptr) {
    TextTable caps("Power-cap case study on " + road->name +
                   " (paper: 8M road net peaks at ~205 W)");
    caps.set_header({"cap (W)", "runtime rel.", "energy rel.", "breached"});
    const auto base = sim.run(road->kernel, gpusim::PowerPolicy::none());
    for (double cap : {260.0, 220.0, 180.0, 140.0}) {
      const auto r = sim.run(road->kernel, gpusim::PowerPolicy::power(cap));
      caps.add_row({TextTable::num(cap, 0),
                    TextTable::num(r.time_s / base.time_s, 3),
                    TextTable::num(r.energy_j / base.energy_j, 3),
                    r.cap_breached ? "yes" : "no"});
    }
    std::printf("%s\n", caps.str().c_str());
  }

  bench::note(
      "paper anchors: road networks are more frequency-sensitive and draw "
      "far less power (~205 W peak) than social networks; the largest "
      "social nets save ~3-5% energy at 900 MHz; capping the road net at "
      "220 W costs nothing, 140 W breaches with a runtime penalty.");
  return 0;
}
