// Reproduces paper Fig 3: the L2-cache benchmark's memory access pattern
// — blocks repeatedly loading chunk (block_id % num_chunks) — plus the
// resulting L2-hit-fraction curve from the live model.
#include "bench/support.h"
#include "workloads/membench.h"

int main() {
  using namespace exaeff;
  bench::print_header(
      "Figure 3",
      "GPU benches L2-cache memory access pattern (blocks -> chunks)");

  const auto spec = gpusim::mi250x_gcd();
  const workloads::membench::Params params;

  std::printf("kernel shape: %zu blocks x %zu threads; block b loads "
              "chunk (b %% num_chunks)\n\n",
              params.blocks, params.threads_per_block);

  // The mapping for a small chunk count, as the figure draws it.
  const int chunks = 4;
  std::printf("example with %d chunks of 384 KiB:\n", chunks);
  for (int b = 0; b < 8; ++b) {
    std::printf("  block %5d --> chunk %d  [%s]\n", b, b % chunks,
                std::string(static_cast<std::size_t>(8), '#').c_str());
  }
  std::printf("  ...all %zu blocks stream the same %d chunks -> maximum "
              "reuse pressure on the target level\n\n",
              params.blocks, chunks);

  // Hit fraction and traffic split across the size sweep.
  std::printf("%-12s %12s %14s %14s\n", "chunk set", "L2 hit frac",
              "L2 bytes/rec", "HBM bytes/rec");
  for (double size : workloads::membench::standard_sizes()) {
    const double h = workloads::membench::l2_hit_fraction(spec, size);
    const auto k = workloads::membench::make_kernel(spec, size);
    std::printf("%9.3g MB %12.3f %14.3g %14.3g\n",
                size / (1024.0 * 1024.0), h, k.l2_bytes, k.hbm_bytes);
  }
  std::printf("\nL2 capacity: %.0f MiB — the hit fraction (and Fig 6's "
              "bandwidth cliff) falls beyond it.\n",
              spec.l2_bytes / (1024.0 * 1024.0));
  return 0;
}
