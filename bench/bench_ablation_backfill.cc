// Ablation: batch-scheduling discipline — FCFS vs EASY backfill on the
// same synthetic submission stream, across load levels.  Context for the
// paper's environment: the telemetry join runs against logs produced by
// exactly this kind of scheduler, and capping policies change effective
// job runtimes, which feeds back into queueing.
#include "bench/support.h"
#include "common/table.h"
#include "sched/queue_sim.h"

int main() {
  using namespace exaeff;
  bench::print_header(
      "Ablation: FCFS vs EASY backfill",
      "Discrete-event batch scheduling of the same submission stream\n"
      "under both disciplines, across offered load.");

  const std::uint32_t nodes = 64;
  TextTable t("scheduling outcomes (64 nodes, 3-day stream)");
  t.set_header({"load", "discipline", "jobs", "utilization",
                "mean wait (min)", "max wait (h)", "backfilled"});

  for (double load : {0.8, 1.2, 1.8}) {
    const auto submissions = sched::synthesize_submissions(
        nodes, 3.0 * units::kDay, load, 21);
    for (auto discipline : {sched::QueueDiscipline::kFcfs,
                            sched::QueueDiscipline::kEasyBackfill}) {
      const sched::BatchScheduler scheduler(nodes, discipline);
      const auto out = scheduler.run(submissions);
      t.add_row({TextTable::num(load, 1),
                 discipline == sched::QueueDiscipline::kFcfs
                     ? "FCFS"
                     : "EASY backfill",
                 std::to_string(out.log.size()),
                 TextTable::pct(100.0 * out.utilization, 1),
                 TextTable::num(out.mean_wait_s / 60.0, 1),
                 TextTable::num(out.max_wait_s / 3600.0, 1),
                 std::to_string(out.backfilled)});
    }
  }
  std::printf("%s\n", t.str().c_str());

  // Interaction with power management: a 900 MHz cap stretches runtimes
  // of compute-heavy jobs; show the queueing cost of the stretch.
  const auto base = sched::synthesize_submissions(nodes, 3.0 * units::kDay,
                                                  1.2, 22);
  auto stretched = base;
  for (auto& j : stretched) {
    // Energy-optimal capping stretches mixed workloads ~10-25%.
    j.actual_runtime_s =
        std::min(j.actual_runtime_s * 1.18, j.requested_walltime_s);
  }
  const sched::BatchScheduler easy(nodes,
                                   sched::QueueDiscipline::kEasyBackfill);
  const auto out_base = easy.run(base);
  const auto out_stretched = easy.run(stretched);
  TextTable q("queueing cost of a fleet-wide cap (EASY, load 1.2)");
  q.set_header({"scenario", "utilization", "mean wait (min)",
                "makespan (h)"});
  q.add_row({"uncapped runtimes",
             TextTable::pct(100.0 * out_base.utilization, 1),
             TextTable::num(out_base.mean_wait_s / 60.0, 1),
             TextTable::num(out_base.makespan_s / 3600.0, 1)});
  q.add_row({"runtimes stretched 18% (capped)",
             TextTable::pct(100.0 * out_stretched.utilization, 1),
             TextTable::num(out_stretched.mean_wait_s / 60.0, 1),
             TextTable::num(out_stretched.makespan_s / 3600.0, 1)});
  std::printf("%s\n", q.str().c_str());

  bench::note(
      "backfilling recovers utilization and cuts waits at every load; "
      "runtime stretch from capping surfaces as queue wait — the hidden "
      "cost the paper's dT column prices at the job level.");
  return 0;
}
