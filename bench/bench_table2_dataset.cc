// Reproduces paper Table II: "Telemetry Dataset summary" for the
// synthetic campaign that stands in for the three months of Frontier
// telemetry.
#include "bench/support.h"
#include "common/table.h"

int main() {
  using namespace exaeff;
  bench::print_header("Table II",
                      "Telemetry dataset summary (synthetic campaign)");

  const auto campaign = bench::make_standard_campaign();

  TextTable t("Dataset");
  t.set_header({"id", "Name", "Resolution", "Volume / description"});
  t.add_row({"(a)", "Power telemetry data",
             TextTable::num(campaign.config.telemetry_window_s, 0) + " sec.",
             std::to_string(campaign.accumulator->gcd_sample_count()) +
                 " per-GCD records (2 s sensors aggregated)"});
  t.add_row({"(b)", "Job scheduler log", "per-job",
             std::to_string(campaign.job_count) +
                 " jobs: job_id, project_id, num_nodes, begin/end"});
  t.add_row({"(c)", "Per-node scheduler data", "per-node-per-job",
             "node allocation spans used for the telemetry join"});
  std::printf("%s\n", t.str().c_str());

  TextTable s("Campaign scale");
  s.set_header({"quantity", "value"});
  s.add_row({"fleet", std::to_string(campaign.config.system.compute_nodes) +
                          " nodes x 8 GCDs"});
  s.add_row({"duration",
             TextTable::num(campaign.config.duration_s / units::kDay, 1) +
                 " days"});
  s.add_row({"job GPU-hours", TextTable::num(campaign.gpu_hours, 0)});
  s.add_row({"total GPU energy",
             TextTable::num(units::joules_to_mwh(
                                campaign.accumulator->total_gpu_energy_j()),
                            2) +
                 " MWh"});
  std::printf("%s\n", s.str().c_str());

  bench::note(
      "the paper's dataset: 3 months of 9408-node telemetry, 16820 MWh of "
      "GPU energy; this campaign is the scaled stand-in all following "
      "tables/figures are computed from.");
  return 0;
}
