// Micro-benchmarks (google-benchmark) for the performance-critical
// library paths: simulator evaluation, cap solving, telemetry ingest,
// fleet generation throughput, the multi-process shard runtime and
// Louvain passes.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/rng.h"
#include "core/accumulator.h"
#include "core/characterization.h"
#include "core/projection.h"
#include "exec/thread_pool.h"
#include "graph/generators.h"
#include "graph/louvain.h"
#include "run/spill_campaign.h"
#include "sched/fleetgen.h"
#include "serve/service.h"
#include "shard/coordinator.h"
#include "telemetry/aggregator.h"
#include "telemetry/archive.h"
#include "telemetry/spill_store.h"
#include "telemetry/store.h"
#include "workloads/vai.h"

namespace {

using namespace exaeff;

void BM_PowerModelEval(benchmark::State& state) {
  const auto spec = gpusim::mi250x_gcd();
  const gpusim::PowerModel pm(spec);
  const auto kernel = workloads::vai::make_kernel(spec, 4.0);
  double f = 700.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pm.power_at(kernel, f));
    f = f >= 1700.0 ? 700.0 : f + 1.0;
  }
}
BENCHMARK(BM_PowerModelEval);

void BM_PowerCapSolve(benchmark::State& state) {
  const auto spec = gpusim::mi250x_gcd();
  const gpusim::PowerCapController ctrl(spec);
  const auto kernel = workloads::vai::make_kernel(spec, 4.0);
  double cap = 150.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctrl.solve(kernel, cap));
    cap = cap >= 560.0 ? 150.0 : cap + 1.0;
  }
}
BENCHMARK(BM_PowerCapSolve);

void BM_SimulatorRun(benchmark::State& state) {
  const gpusim::GpuSimulator sim(gpusim::mi250x_gcd());
  const auto kernel = workloads::vai::make_kernel(sim.spec(), 16.0);
  const auto policy = gpusim::PowerPolicy::power(300.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(kernel, policy));
  }
}
BENCHMARK(BM_SimulatorRun);

void BM_TelemetryAggregation(benchmark::State& state) {
  telemetry::TelemetryStore store(15.0);
  telemetry::Aggregator agg(store, 15.0);
  telemetry::GcdSample s;
  double t = 0.0;
  for (auto _ : state) {
    s.t_s = t;
    s.power_w = 300.0F;
    agg.on_gcd_sample(s);
    t += 2.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TelemetryAggregation);

void BM_AccumulatorIngest(benchmark::State& state) {
  core::CampaignAccumulator acc(15.0, core::RegionBoundaries{});
  sched::Job job;
  job.domain = sched::ScienceDomain::kCfd;
  job.bin = sched::SizeBin::kB;
  job.num_nodes = 1;
  job.begin_s = 0;
  job.end_s = 1e9;
  job.nodes = {0};
  telemetry::GcdSample s;
  double t = 0.0;
  float p = 100.0F;
  for (auto _ : state) {
    s.t_s = t;
    s.power_w = p;
    acc.on_job_sample(s, job);
    t += 15.0;
    p = p >= 600.0F ? 100.0F : p + 1.0F;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AccumulatorIngest);

/// A realistic multi-channel stream: per-channel runs of consecutive
/// windows, the shape the batched producers hand to consumers.
std::vector<telemetry::GcdSample> synth_stream() {
  std::vector<telemetry::GcdSample> stream;
  Rng rng(42);
  for (std::uint32_t node = 0; node < 4; ++node) {
    for (std::uint16_t g = 0; g < 8; ++g) {
      for (int w = 0; w < 512; ++w) {
        telemetry::GcdSample s;
        s.t_s = 15.0 * w;
        s.node_id = node;
        s.gcd_index = g;
        s.power_w = static_cast<float>(320.0 + 90.0 * rng.normal());
        stream.push_back(s);
      }
    }
  }
  return stream;
}

void BM_BatchedIngest(benchmark::State& state) {
  // Span-batched counterpart of BM_AccumulatorIngest: one on_job_batch
  // call per channel run instead of one virtual call per record.
  const auto stream = synth_stream();
  sched::Job job;
  job.domain = sched::ScienceDomain::kCfd;
  job.bin = sched::SizeBin::kB;
  job.num_nodes = 1;
  job.begin_s = 0;
  job.end_s = 1e9;
  job.nodes = {0};
  core::CampaignAccumulator acc(15.0, core::RegionBoundaries{});
  const std::span<const telemetry::GcdSample> span(stream);
  for (auto _ : state) {
    for (std::size_t off = 0; off < span.size(); off += 512) {
      acc.on_job_batch(span.subspan(off, 512), job);
    }
    benchmark::DoNotOptimize(acc.gcd_sample_count());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(stream.size() * state.iterations()));
}
BENCHMARK(BM_BatchedIngest);

void BM_ArchiveRoundTrip(benchmark::State& state) {
  const auto stream = synth_stream();
  for (auto _ : state) {
    std::stringstream buf;
    const auto info = telemetry::write_archive(buf, stream);
    benchmark::DoNotOptimize(info.checksum);
    const auto decoded = telemetry::read_archive(buf);
    benchmark::DoNotOptimize(decoded.size());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(stream.size() * state.iterations()));
}
BENCHMARK(BM_ArchiveRoundTrip);

void BM_FleetGeneration(benchmark::State& state) {
  sched::CampaignConfig cfg;
  cfg.system = cluster::frontier_scaled(static_cast<std::size_t>(
      state.range(0)));
  cfg.duration_s = 1.0 * units::kDay;
  const auto library =
      workloads::make_profile_library(cfg.system.node.gcd);
  const sched::FleetGenerator gen(cfg, library);
  const auto boundaries = core::derive_boundaries(cfg.system.node.gcd);
  std::size_t samples = 0;
  for (auto _ : state) {
    core::CampaignAccumulator acc(cfg.telemetry_window_s, boundaries);
    const auto log = gen.generate_schedule();
    gen.generate_telemetry(log, acc);
    samples = acc.gcd_sample_count();
    benchmark::DoNotOptimize(samples);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(samples * state.iterations()));
}
BENCHMARK(BM_FleetGeneration)->Arg(16)->Arg(48)->Unit(benchmark::kMillisecond);

void BM_FleetGenerationParallel(benchmark::State& state) {
  // The sharded campaign path on a pool of range(1) threads — the same
  // artifact as BM_FleetGeneration, produced through worker-local shards
  // merged in job order.  Compare against Arg(16) above for speedup.
  sched::CampaignConfig cfg;
  cfg.system = cluster::frontier_scaled(16);
  cfg.duration_s = 1.0 * units::kDay;
  const auto library =
      workloads::make_profile_library(cfg.system.node.gcd);
  const sched::FleetGenerator gen(cfg, library);
  const auto boundaries = core::derive_boundaries(cfg.system.node.gcd);
  exec::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  std::size_t samples = 0;
  for (auto _ : state) {
    core::CampaignAccumulator acc(cfg.telemetry_window_s, boundaries);
    const auto log = gen.generate_schedule();
    core::AccumulatorShards shards(acc);
    gen.generate_telemetry(log, shards, pool);
    samples = acc.gcd_sample_count();
    benchmark::DoNotOptimize(samples);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(samples * state.iterations()));
}
BENCHMARK(BM_FleetGenerationParallel)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_ShardedCampaign(benchmark::State& state) {
  // The full multi-process path on range(0) forked workers: spawn,
  // heartbeat supervision, per-shard journals, deterministic merge.
  // Compare against BM_FleetGenerationParallel for the process-level
  // overhead (fork + journal encode/decode + pipe supervision).
  sched::CampaignConfig cfg;
  cfg.system = cluster::frontier_scaled(16);
  cfg.duration_s = 1.0 * units::kDay;
  const auto library =
      workloads::make_profile_library(cfg.system.node.gcd);
  const sched::FleetGenerator gen(cfg, library);
  const auto boundaries = core::derive_boundaries(cfg.system.node.gcd);
  const auto log = gen.generate_schedule();
  const auto dir = std::filesystem::temp_directory_path() /
                   ("exaeff-bench-shards-" + std::to_string(::getpid()));
  std::size_t samples = 0;
  for (auto _ : state) {
    std::filesystem::create_directories(dir);
    core::CampaignAccumulator acc(cfg.telemetry_window_s, boundaries);
    shard::ShardOptions opts;
    opts.shards = static_cast<std::size_t>(state.range(0));
    opts.shard_dir = dir.string();
    opts.worker_threads = 2;
    (void)shard::run_sharded_campaign(gen, log, acc, {}, opts, nullptr);
    samples = acc.gcd_sample_count();
    benchmark::DoNotOptimize(samples);
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(samples * state.iterations()));
}
BENCHMARK(BM_ShardedCampaign)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_ParallelForOverhead(benchmark::State& state) {
  // Dispatch + handshake cost of an (almost) empty loop on a warm pool.
  exec::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    std::atomic<std::size_t> sink{0};
    pool.parallel_for(64, 1, [&](std::size_t begin, std::size_t end) {
      sink.fetch_add(end - begin, std::memory_order_relaxed);
    });
    benchmark::DoNotOptimize(sink.load());
  }
}
BENCHMARK(BM_ParallelForOverhead)->Arg(1)->Arg(4)->Arg(8)->UseRealTime();

void BM_Characterize(benchmark::State& state) {
  const auto spec = gpusim::mi250x_gcd();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::characterize(spec));
  }
}
BENCHMARK(BM_Characterize)->Unit(benchmark::kMillisecond);

void BM_LouvainPass(benchmark::State& state) {
  Rng rng(5);
  graph::RmatParams p;
  p.scale = static_cast<int>(state.range(0));
  const auto g = graph::rmat(p, rng);
  graph::LouvainParams params;
  params.max_iterations = 4;
  params.max_passes = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::louvain(g, params));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(g.num_edges()) * state.iterations());
}
BENCHMARK(BM_LouvainPass)->Arg(12)->Arg(14)->Unit(benchmark::kMillisecond);

void BM_ChunkedArchiveRoundTrip(benchmark::State& state) {
  // Lossless multi-chunk frame: small chunk_records forces many chunks
  // so the per-chunk header/index/CRC overhead is in the measurement.
  const auto stream = synth_stream();
  telemetry::CodecOptions opts;
  opts.lossless = true;
  for (auto _ : state) {
    std::stringstream buf;
    const auto info =
        telemetry::write_archive(buf, stream, opts, /*chunk_records=*/2048);
    benchmark::DoNotOptimize(info.chunks);
    const auto decoded = telemetry::read_archive(buf);
    benchmark::DoNotOptimize(decoded.size());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(stream.size() * state.iterations()));
}
BENCHMARK(BM_ChunkedArchiveRoundTrip);

void BM_MmapDecode(benchmark::State& state) {
  // Query-driven readback through the mmap-backed reader: open, decode
  // every chunk, close.  The file is written once outside the loop.
  const auto stream = synth_stream();
  telemetry::CodecOptions opts;
  opts.lossless = true;
  const auto path = std::filesystem::temp_directory_path() /
                    ("exaeff-bench-mmap-" + std::to_string(::getpid()) +
                     ".tel");
  {
    std::ofstream os(path, std::ios::binary);
    (void)telemetry::write_archive(os, stream, opts, /*chunk_records=*/2048);
  }
  for (auto _ : state) {
    const telemetry::ArchiveReader reader(path.string());
    std::size_t records = 0;
    for (std::size_t i = 0; i < reader.info().chunks; ++i) {
      records += reader.decode_chunk(i).size();
    }
    benchmark::DoNotOptimize(records);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(stream.size() * state.iterations()));
  std::error_code ec;
  std::filesystem::remove(path, ec);
}
BENCHMARK(BM_MmapDecode);

void BM_SpillCampaign(benchmark::State& state) {
  // The out-of-core driver end to end: plan windows on a small budget,
  // generate in parallel, spill every window through the lossless
  // archive.  The counter reports node-days of campaign per second —
  // the paper-scale capacity metric (9408 nodes x 90 days = 846,720
  // node-days).
  sched::CampaignConfig cfg;
  cfg.system = cluster::frontier_scaled(16);
  cfg.duration_s = 1.0 * units::kDay;
  const auto library = workloads::make_profile_library(cfg.system.node.gcd);
  const sched::FleetGenerator gen(cfg, library);
  const auto boundaries = core::derive_boundaries(cfg.system.node.gcd);
  const auto log = gen.generate_schedule();
  const auto windows = run::plan_spill_windows(
      log, cfg.telemetry_window_s, cfg.system.node.gcds_per_node(),
      /*memory_budget_bytes=*/8u << 20);
  const auto dir = std::filesystem::temp_directory_path() /
                   ("exaeff-bench-spill-" + std::to_string(::getpid()));
  exec::ThreadPool pool(4);
  for (auto _ : state) {
    std::filesystem::create_directories(dir);
    core::CampaignAccumulator acc(cfg.telemetry_window_s, boundaries);
    telemetry::SpillConfig scfg;
    scfg.dir = dir.string();
    scfg.window_s = cfg.telemetry_window_s;
    telemetry::SpillStore store(std::move(scfg));
    run::generate_telemetry_spilled(gen, log, acc, store, pool, nullptr,
                                    windows);
    benchmark::DoNotOptimize(store.spilled_bytes());
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }
  const double node_days = 16.0 * (cfg.duration_s / units::kDay);
  state.counters["node_days_per_s"] =
      benchmark::Counter(node_days * static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SpillCampaign)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_ProjectionSweep(benchmark::State& state) {
  const auto spec = gpusim::mi250x_gcd();
  const auto table = core::characterize(spec);
  const core::ProjectionEngine engine(table);
  core::ModalDecomposition d;
  d.regions[1] = {1000.0, 1e12};
  d.regions[2] = {500.0, 5e11};
  d.total_energy_j = 1.5e12;
  d.total_gpu_hours = 1500.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.project_sweep(d, core::CapType::kFrequency));
  }
}
BENCHMARK(BM_ProjectionSweep);

void BM_ProjectionSweepBatch(benchmark::State& state) {
  // The allocation-free batch kernel under the same sweep as
  // BM_ProjectionSweep: one preallocated row buffer, reused.
  const auto spec = gpusim::mi250x_gcd();
  const auto table = core::characterize(spec);
  const core::ProjectionEngine engine(table);
  core::ModalDecomposition d;
  d.regions[1] = {1000.0, 1e12};
  d.regions[2] = {500.0, 5e11};
  d.total_energy_j = 1.5e12;
  d.total_gpu_hours = 1500.0;
  std::vector<core::ProjectionRow> rows(
      engine.sweep_size(core::CapType::kFrequency));
  for (auto _ : state) {
    engine.project_sweep_into(d, core::CapType::kFrequency, rows);
    benchmark::DoNotOptimize(rows.data());
  }
}
BENCHMARK(BM_ProjectionSweepBatch);

void BM_DecompositionFor(benchmark::State& state) {
  core::CampaignAccumulator acc(15.0, core::RegionBoundaries{});
  Rng rng(7);
  sched::Job job;
  job.job_id = 1;
  job.num_nodes = 1;
  job.begin_s = 0.0;
  job.end_s = 1e9;
  job.nodes = {0};
  for (auto dom : sched::all_domains()) {
    for (auto bin : sched::all_size_bins()) {
      job.domain = dom;
      job.bin = bin;
      for (int i = 0; i < 8; ++i) {
        telemetry::GcdSample s;
        s.t_s = 15.0 * i;
        s.power_w = static_cast<float>(rng.uniform(80.0, 620.0));
        acc.on_job_sample(s, job);
      }
    }
  }
  std::array<std::array<bool, sched::kSizeBinCount>, sched::kDomainCount>
      mask{};
  for (auto& row : mask) row.fill(true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(acc.decomposition_for(mask));
  }
}
BENCHMARK(BM_DecompositionFor);

void BM_ServeSweep(benchmark::State& state) {
  // End-to-end /sweep compute + formatting through the service layer.
  // A fresh service per iteration defeats the response cache so the
  // batch path runs every time (the handler itself is the cost; the
  // service object is a few empty containers).
  static const std::shared_ptr<const serve::FleetModel> model =
      serve::FleetModel::build(serve::FleetModelConfig{8, 0.02},
                               exec::ThreadPool::global());
  for (auto _ : state) {
    serve::ProjectionService service;
    service.set_model(model);
    exec::CancellationToken token;
    serve::RequestContext ctx;
    ctx.token = &token;
    ctx.deadline = net::Deadline::after_ms(5000);
    net::HttpRequest req;
    req.method = "GET";
    req.path = "/sweep";
    req.query = "caps=700:1700:200";
    req.version = "HTTP/1.1";
    benchmark::DoNotOptimize(service.handle(req, ctx));
  }
}
BENCHMARK(BM_ServeSweep);

}  // namespace

BENCHMARK_MAIN();
