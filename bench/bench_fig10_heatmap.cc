// Reproduces paper Fig 10: heatmaps of (a) total GPU energy used and
// (b) projected energy saved (1100 MHz frequency cap) by science domain
// versus job-size bin.
#include "bench/support.h"
#include "common/ascii_plot.h"

int main() {
  using namespace exaeff;
  bench::print_header(
      "Figure 10",
      "Heatmaps: GPU energy used and energy saved (1100 MHz cap) by\n"
      "science domain x job-size bin.");

  const auto campaign = bench::make_standard_campaign();
  const auto table = core::characterize(campaign.config.system.node.gcd);
  const core::ProjectionEngine engine(table);
  const core::DomainAnalyzer analyzer(*campaign.accumulator, engine);

  const auto used = analyzer.energy_heatmap();
  std::printf("%s\n",
              heatmap("(a) total energy used (MWh)", used.row_labels,
                      used.col_labels, used.values, 2)
                  .c_str());

  const auto saved =
      analyzer.savings_heatmap(core::CapType::kFrequency, 1100.0);
  std::printf("%s\n",
              heatmap("(b) energy saved at 1100 MHz cap (MWh)",
                      saved.row_labels, saved.col_labels, saved.values, 3)
                  .c_str());

  // Share of savings coming from large jobs (A+B+C).
  double large = 0.0;
  double all = 0.0;
  for (std::size_t r = 0; r < saved.row_labels.size(); ++r) {
    for (std::size_t c = 0; c < saved.col_labels.size(); ++c) {
      all += saved.at(r, c);
      if (c <= 2) large += saved.at(r, c);
    }
  }
  std::printf("savings from job sizes A+B+C: %.0f%% of total projected "
              "savings\n\n",
              100.0 * large / all);

  bench::note(
      "paper anchors: most energy use and most projected savings sit in "
      "the large job sizes (A, B, C) of a handful of domains.");
  return 0;
}
