// Reproduces paper Fig 5: VAI normalized runtime, power and energy-to-
// solution versus frequency cap (left) and power cap (right), one series
// per arithmetic intensity.
#include <vector>

#include "bench/support.h"
#include "common/ascii_plot.h"
#include "gpusim/simulator.h"
#include "workloads/vai.h"

namespace {

using namespace exaeff;

void emit(const gpusim::GpuSimulator& sim, bool frequency) {
  const auto settings = frequency
                            ? workloads::vai::standard_frequency_caps()
                            : workloads::vai::standard_power_caps();
  std::printf("--- %s ---\n",
              frequency ? "Left: fixed frequency (700-1700 MHz)"
                        : "Right: power cap (200-560 W)");

  const std::vector<double> intensities = {0.0,    1.0 / 16, 0.25, 1.0,
                                           4.0,    16.0,     64.0, 256.0,
                                           1024.0};
  std::printf("%-12s", frequency ? "AI \\ MHz" : "AI \\ W");
  for (double s : settings) std::printf("%8.0f", s);
  std::printf("\n");

  struct Series {
    std::vector<double> runtime;
    std::vector<double> power;
    std::vector<double> energy;
  };
  std::vector<Series> rows;
  for (double ai : intensities) {
    const auto kernel = workloads::vai::make_kernel(sim.spec(), ai);
    const auto base = sim.run(kernel, gpusim::PowerPolicy::none());
    Series s;
    for (double setting : settings) {
      const auto policy = frequency
                              ? gpusim::PowerPolicy::frequency(setting)
                              : gpusim::PowerPolicy::power(setting);
      const auto r = sim.run(kernel, policy);
      s.runtime.push_back(r.time_s / base.time_s);
      s.power.push_back(r.avg_power_w / base.avg_power_w);
      s.energy.push_back(r.energy_j / base.energy_j);
    }
    rows.push_back(std::move(s));
  }

  auto block = [&](const char* name, std::vector<double> Series::* field) {
    std::printf("[%s, normalized to uncapped]\n", name);
    for (std::size_t i = 0; i < intensities.size(); ++i) {
      std::printf("%-12.4g", intensities[i]);
      for (double v : rows[i].*field) std::printf("%8.3f", v);
      std::printf("\n");
    }
  };
  block("runtime", &Series::runtime);
  block("power", &Series::power);
  block("energy to solution", &Series::energy);

  // Energy curves for three representative intensities.
  LinePlot plot(frequency ? "energy vs frequency cap"
                          : "energy vs power cap",
                72, 14);
  const std::size_t picks[] = {1, 4, 8};  // 1/16, 4, 1024
  for (std::size_t p : picks) {
    char label[32];
    std::snprintf(label, sizeof label, "AI=%g", intensities[p]);
    plot.add_series(label, settings, rows[p].energy);
  }
  plot.set_labels(frequency ? "MHz" : "W", "normalized energy");
  std::printf("%s\n", plot.str().c_str());
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 5",
      "VAI: normalized runtime (top), power (mid), energy-to-solution\n"
      "(bottom) under frequency caps and power caps, per intensity.");

  const gpusim::GpuSimulator sim(gpusim::mi250x_gcd());
  emit(sim, /*frequency=*/true);
  emit(sim, /*frequency=*/false);

  bench::note(
      "paper anchors: most consistent energy-to-solution at 1300 MHz with "
      "~30% average runtime cost; power caps below 300 W inflate runtime "
      "sharply; caps above ~500 W change little.");
  return 0;
}
