// Reproduces paper Fig 4: roofline sweeps of the VAI benchmark — achieved
// TFLOP/s, GB/s, power and normalized time-to-solution versus arithmetic
// intensity, under frequency caps (left column) and power caps (right).
#include <vector>

#include "bench/support.h"
#include "common/ascii_plot.h"
#include "gpusim/simulator.h"
#include "workloads/vai.h"

namespace {

using namespace exaeff;

struct SweepRow {
  double ai;
  double tflops;
  double gbytes;
  double power_w;
  double norm_time;
};

std::vector<SweepRow> sweep(const gpusim::GpuSimulator& sim,
                            const gpusim::PowerPolicy& policy) {
  std::vector<SweepRow> rows;
  for (double ai : workloads::vai::standard_intensities()) {
    if (ai == 0.0) continue;  // the roofline plot uses AI > 0
    const auto kernel = workloads::vai::make_kernel(sim.spec(), ai);
    const auto base = sim.run(kernel, gpusim::PowerPolicy::none());
    const auto r = sim.run(kernel, policy);
    rows.push_back(SweepRow{ai, r.timing.achieved_flops / 1e12,
                            r.timing.achieved_hbm_bw / 1e9, r.avg_power_w,
                            r.time_s / base.time_s});
  }
  return rows;
}

void emit(const char* title, const std::vector<gpusim::PowerPolicy>& caps,
          const gpusim::GpuSimulator& sim) {
  std::printf("--- %s ---\n", title);
  std::printf("%-12s", "AI(flop/B)");
  for (const auto& p : caps) std::printf("%14s", p.label().c_str());
  std::printf("\n");

  std::vector<std::vector<SweepRow>> all;
  all.reserve(caps.size());
  for (const auto& p : caps) all.push_back(sweep(sim, p));

  auto block = [&](const char* name, double SweepRow::* field,
                   const char* fmt) {
    std::printf("[%s]\n", name);
    for (std::size_t i = 0; i < all[0].size(); ++i) {
      std::printf("%-12.4g", all[0][i].ai);
      for (const auto& series : all) std::printf(fmt, series[i].*field);
      std::printf("\n");
    }
  };
  block("a) TFLOP/s", &SweepRow::tflops, "%14.2f");
  block("b) GByte/s", &SweepRow::gbytes, "%14.0f");
  block("c) Power (W)", &SweepRow::power_w, "%14.0f");
  block("d) normalized time", &SweepRow::norm_time, "%14.2f");

  // ASCII roofline for the first (uncapped) and last (tightest) setting.
  LinePlot plot(std::string(title) + ": achieved TFLOP/s vs AI", 72, 14);
  std::vector<double> ai;
  std::vector<double> y0;
  std::vector<double> y1;
  for (std::size_t i = 0; i < all[0].size(); ++i) {
    ai.push_back(all[0][i].ai);
    y0.push_back(all[0][i].tflops);
    y1.push_back(all.back()[i].tflops);
  }
  plot.add_series(caps.front().label(), ai, y0);
  plot.add_series(caps.back().label(), ai, y1);
  plot.set_log_x(true);
  plot.set_log_y(true);
  plot.set_labels("arithmetic intensity (flop/byte)", "TFLOP/s");
  std::printf("%s\n", plot.str().c_str());
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 4",
      "VAI roofline under power management: TFLOP/s, GB/s, power and\n"
      "normalized time-to-solution vs arithmetic intensity.");

  const gpusim::GpuSimulator sim(gpusim::mi250x_gcd());

  std::vector<gpusim::PowerPolicy> freq_caps;
  for (double f : workloads::vai::standard_frequency_caps()) {
    freq_caps.push_back(gpusim::PowerPolicy::frequency(f));
  }
  emit("Left column: fixed frequency", freq_caps, sim);

  std::vector<gpusim::PowerPolicy> power_caps;
  for (double w : workloads::vai::standard_power_caps()) {
    power_caps.push_back(gpusim::PowerPolicy::power(w));
  }
  power_caps.push_back(gpusim::PowerPolicy::power(100.0));
  emit("Right column: power cap", power_caps, sim);

  bench::note(
      "paper anchors: ridge at AI=4 where power peaks at ~540 W (only "
      "point near TDP); 380 W at AI=1/16; ~420 W compute-bound; memory- "
      "and compute-bound parts slow similarly under frequency caps.");
  return 0;
}
