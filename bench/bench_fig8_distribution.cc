// Reproduces paper Fig 8: system-wide distribution of GPU power
// utilization over the campaign, with the four regions of operation
// shaded (Table IV boundaries).
#include "bench/support.h"
#include "common/ascii_plot.h"
#include "common/stats.h"

int main() {
  using namespace exaeff;
  bench::print_header(
      "Figure 8",
      "Frontier-style system-wide distribution of GPU power utilization.");

  const auto campaign = bench::make_standard_campaign();
  const auto& hist = campaign.accumulator->system_histogram();
  const auto& b = campaign.boundaries;

  // Smooth density + peak detection (the paper reads modes off this).
  const auto density = smooth_density(hist, 8.0);
  std::vector<double> xs(hist.bin_count());
  for (std::size_t i = 0; i < xs.size(); ++i) xs[i] = hist.bin_center(i);

  LinePlot plot("GPU power distribution (density)", 76, 16);
  plot.add_series("density", xs, density);
  plot.set_labels("GPU power (W)", "density");
  std::printf("%s\n", plot.str().c_str());

  std::printf("region boundaries: latency <= %.0f W < memory <= %.0f W < "
              "compute <= %.0f W < boost\n\n",
              b.latency_max_w, b.memory_max_w, b.compute_max_w);

  const auto peaks = find_peaks(density, xs, 0.04);
  std::printf("detected modes (local maxima, prominence >= 4%% of max):\n");
  for (const auto& p : peaks) {
    std::printf("  %6.0f W  (height %.2e, region: %s)\n", p.x, p.height,
                std::string(core::region_name(b.classify(p.x))).c_str());
  }
  std::printf("\n");

  // Region mass directly from the histogram.
  const double total = hist.total_weight();
  std::printf("sample mass per region:\n");
  std::printf("  <=200 W        : %5.1f%%\n",
              100.0 * hist.weight_between(hist.lo(), b.latency_max_w) / total);
  std::printf("  200-420 W      : %5.1f%%\n",
              100.0 * hist.weight_between(b.latency_max_w, b.memory_max_w) /
                  total);
  std::printf("  420-560 W      : %5.1f%%\n",
              100.0 * hist.weight_between(b.memory_max_w, b.compute_max_w) /
                  total);
  std::printf("  >560 W (boost) : %5.1f%%\n",
              100.0 * hist.weight_between(b.compute_max_w, 1e9) / total);

  bench::note(
      "paper anchors: several peaks at low power, fewer toward high "
      "power; idle GPU draws 88-90 W; region shares per Table IV "
      "(29.8 / 49.5 / 19.5 / 1.1%).");
  return 0;
}
