// Reproduces paper Table VI: estimated savings when frequency capping is
// applied only to the high-yield science domains and the large job sizes
// (A, B and C).
#include "bench/support.h"
#include "common/table.h"

int main() {
  using namespace exaeff;
  bench::print_header(
      "Table VI",
      "Selective capping: high-yield domains ('red' heatmap cells) and\n"
      "job sizes A, B, C only.");

  const auto campaign = bench::make_standard_campaign();
  const auto table = core::characterize(campaign.config.system.node.gcd);
  const core::ProjectionEngine engine(table);
  const core::DomainAnalyzer analyzer(*campaign.accumulator, engine);

  // Select domains as the paper does: at least one strongly-saving cell
  // in the 1100 MHz savings heatmap.
  const auto selected = analyzer.high_yield_domains(
      core::CapType::kFrequency, 1100.0, 0.35);
  std::printf("selected domains:");
  for (auto d : selected) {
    std::printf(" %s", std::string(sched::domain_code(d)).c_str());
  }
  std::printf("  |  sizes: A, B, C\n\n");

  const std::vector<sched::SizeBin> bins = {
      sched::SizeBin::kA, sched::SizeBin::kB, sched::SizeBin::kC};
  const auto mask = core::DomainAnalyzer::selection_mask(selected, bins);
  const auto masked = campaign.accumulator->decomposition_for(mask);
  const auto full = campaign.accumulator->decomposition();
  const double total_mwh = units::joules_to_mwh(full.total_energy_j);

  TextTable t("Frequency capping restricted to the selection");
  t.set_header({"Total Energy", "Freq (MHz)", "C.I. (MWh)", "M.I. (MWh)",
                "T.S. (MWh)", "Savings (%)", "dT Time (%)",
                "Sav.(%) dT=0", "share of system-wide T.S."});
  bool first = true;
  for (double f : {1500.0, 1300.0, 1100.0, 900.0}) {
    const auto sel = engine.project(masked, core::CapType::kFrequency, f);
    const auto sys = engine.project(full, core::CapType::kFrequency, f);
    // The paper reports percentages against the *system* total.
    const double sav_pct = 100.0 * sel.total_saved_mwh / total_mwh;
    const double sav_dt0_pct = 100.0 * sel.mi_saved_mwh / total_mwh;
    t.add_row({first ? TextTable::num(total_mwh, 1) + " MWh" : "",
               TextTable::num(f, 0), TextTable::num(sel.ci_saved_mwh, 3),
               TextTable::num(sel.mi_saved_mwh, 3),
               TextTable::num(sel.total_saved_mwh, 3),
               TextTable::num(sav_pct, 1),
               TextTable::num(sel.delta_t_pct, 1),
               TextTable::num(sav_dt0_pct, 1),
               TextTable::pct(
                   100.0 * sel.total_saved_mwh /
                       std::max(sys.total_saved_mwh, 1e-12),
                   0)});
    first = false;
  }
  std::printf("%s\n", t.str().c_str());

  bench::note(
      "paper anchors: 6 selected domains on sizes A-C keep ~77% of the "
      "system-wide savings (e.g. 6.8% of 8.8% at 900 MHz).");
  return 0;
}
