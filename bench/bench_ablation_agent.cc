// Ablation: static system-wide frequency cap (the paper's projection
// scenario) vs the online region-classifying agent.  Replays the standard
// campaign's per-GCD telemetry under both strategies and compares energy
// savings against runtime cost.
#include <unordered_map>
#include <vector>

#include "agent/capping_agent.h"
#include "bench/support.h"
#include "common/table.h"

namespace {

using namespace exaeff;

/// Sink that retains each channel's power series (channel = job x node x
/// gcd; phases within a channel arrive in time order).
struct ChannelSink final : sched::JobSampleSink {
  std::unordered_map<std::uint64_t, std::vector<float>> channels;

  void on_job_sample(const telemetry::GcdSample& s,
                     const sched::Job& j) override {
    const std::uint64_t key =
        (j.job_id << 20) ^ (static_cast<std::uint64_t>(s.node_id) << 4) ^
        s.gcd_index;
    channels[key].push_back(s.power_w);
  }
};

}  // namespace

int main() {
  bench::print_header(
      "Ablation: static cap vs online agent",
      "The Table V projection assumes a cap applied only to the savings\n"
      "regions. A real static cap also slows latency phases; an online\n"
      "agent re-caps per region. How much of the upper bound survives?");

  // Smaller fleet: the replay keeps every channel series in memory.
  sched::CampaignConfig cfg;
  cfg.system = cluster::frontier_scaled(16);
  cfg.duration_s = 4.0 * units::kDay;
  const auto gcd = gpusim::mi250x_gcd();
  const auto library = workloads::make_profile_library(gcd);
  const sched::FleetGenerator gen(cfg, library);
  ChannelSink sink;
  gen.generate_telemetry(gen.generate_schedule(), sink);

  const auto table = core::characterize(gcd);
  const agent::RegionResponseModel model(table, gcd);
  const auto boundaries = core::derive_boundaries(gcd);

  auto replay_all = [&](auto&& replay_one) {
    agent::ReplayResult total;
    for (const auto& [key, series] : sink.channels) {
      const auto r = replay_one(series);
      total.base_energy_j += r.base_energy_j;
      total.capped_energy_j += r.capped_energy_j;
      total.base_hours += r.base_hours;
      total.capped_hours += r.capped_hours;
      total.windows += r.windows;
      total.cap_switches += r.cap_switches;
    }
    return total;
  };

  TextTable t("strategies on the same telemetry");
  t.set_header({"strategy", "energy saved %", "runtime increase %",
                "cap switches"});

  // Idealized projection (cap applied only in savings regions) — the
  // paper's upper bound, for reference.
  {
    core::CampaignAccumulator acc(cfg.telemetry_window_s, boundaries);
    // Re-book the channel series through the accumulator.
    sched::Job dummy;  // region booking only needs domain/bin defaults
    dummy.nodes = {0};
    dummy.num_nodes = 1;
    dummy.begin_s = 0;
    dummy.end_s = 1;
    telemetry::GcdSample s;
    for (const auto& [key, series] : sink.channels) {
      for (float p : series) {
        s.power_w = p;
        acc.on_job_sample(s, dummy);
      }
    }
    const core::ProjectionEngine engine(table);
    const auto row = engine.project(acc.decomposition(),
                                    core::CapType::kFrequency, 900.0);
    t.add_row({"upper bound (projection, 900 MHz)",
               TextTable::num(row.savings_pct, 2),
               TextTable::num(row.delta_t_pct, 2), "-"});
  }

  for (double cap : {1100.0, 900.0}) {
    const auto r = replay_all([&](const std::vector<float>& series) {
      return agent::replay_static(series, cfg.telemetry_window_s, cap,
                                  model, boundaries);
    });
    char name[48];
    std::snprintf(name, sizeof name, "static %.0f MHz everywhere", cap);
    t.add_row({name, TextTable::num(r.savings_pct(), 2),
               TextTable::num(r.slowdown_pct(), 2), "-"});
  }

  agent::AgentConfig agent_cfg;
  agent_cfg.policy.memory_cap_mhz = 900.0;
  const auto dyn = replay_all([&](const std::vector<float>& series) {
    return agent::replay_agent(series, cfg.telemetry_window_s, agent_cfg,
                               model, boundaries);
  });
  t.add_row({"online agent (MI->900 MHz)",
             TextTable::num(dyn.savings_pct(), 2),
             TextTable::num(dyn.slowdown_pct(), 2),
             std::to_string(dyn.cap_switches)});

  agent::AgentConfig both = agent_cfg;
  both.policy.compute_cap_mhz = 1500.0;
  const auto dyn2 = replay_all([&](const std::vector<float>& series) {
    return agent::replay_agent(series, cfg.telemetry_window_s, both, model,
                               boundaries);
  });
  t.add_row({"online agent (MI->900, CI->1500)",
             TextTable::num(dyn2.savings_pct(), 2),
             TextTable::num(dyn2.slowdown_pct(), 2),
             std::to_string(dyn2.cap_switches)});

  std::printf("%s\n", t.str().c_str());
  bench::note(
      "the agent recovers most of the projection's savings while paying a "
      "fraction of the static cap's runtime cost, because it un-caps "
      "latency and compute phases.");
  return 0;
}
