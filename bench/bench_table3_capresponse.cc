// Reproduces paper Table III: "Percentage of the average power and runtime
// for VAI and memory bandwidth (MB) benchmark for (a) varying frequency
// cap and (b) for varying power cap."
#include "bench/support.h"
#include "common/table.h"

namespace {

void print_half(const exaeff::core::CapResponseTable& table,
                exaeff::core::CapType type, const char* title,
                const char* setting_label) {
  using namespace exaeff;
  using core::BenchClass;

  TextTable t(title);
  t.set_header({setting_label, "VAI pwr(%)", "MB pwr(%)", "VAI time(%)",
                "MB time(%)", "VAI energy(%)", "MB energy(%)"});
  const auto vai_rows = table.rows(BenchClass::kComputeIntensive, type);
  for (const auto& v : vai_rows) {
    const auto& m =
        table.at(BenchClass::kMemoryIntensive, type, v.setting);
    t.add_row({TextTable::num(v.setting, 0), TextTable::num(v.avg_power_pct, 1),
               TextTable::num(m.avg_power_pct, 1),
               TextTable::num(v.runtime_pct, 1),
               TextTable::num(m.runtime_pct, 1),
               TextTable::num(v.energy_pct, 1),
               TextTable::num(m.energy_pct, 1)});
  }
  std::printf("%s\n", t.str().c_str());
}

}  // namespace

int main() {
  using namespace exaeff;
  bench::print_header(
      "Table III",
      "Average power / runtime / energy (% of uncapped) for the VAI and\n"
      "memory-bandwidth (MB) benchmarks under frequency and power caps.\n"
      "VAI rows average across arithmetic intensities; MB rows across\n"
      "HBM-resident working-set sizes.");

  const auto spec = gpusim::mi250x_gcd();
  const auto table = core::characterize(spec);

  print_half(table, core::CapType::kFrequency, "(a) Frequency Cap",
             "Freq cap (MHz)");
  print_half(table, core::CapType::kPower, "(b) Power Cap",
             "Power cap (W)");

  bench::note(
      "paper anchors: VAI@1300MHz P=68.2/T=129.8/E=88.6; VAI@200W "
      "P=49.3/T=222.3/E=105.7; MB runtime ~99-100% under frequency caps; "
      "MB@200W T=125.7/E=84.6.");
  return 0;
}
