// Reproduces paper Table V: "Estimated energy savings when frequency and
// power capped applied at system-wide" — the headline projection.
#include "bench/support.h"
#include "common/table.h"

namespace {

void print_rows(const std::vector<exaeff::core::ProjectionRow>& rows,
                const char* title, const char* setting_label,
                double total_mwh) {
  using exaeff::TextTable;
  TextTable t(title);
  t.set_header({"Total Energy", setting_label, "C.I. (MWh)", "M.I. (MWh)",
                "T.S. (MWh)", "Savings (%)", "dT Time (%)",
                "Sav.(%) dT=0"});
  bool first = true;
  for (const auto& r : rows) {
    t.add_row({first ? TextTable::num(total_mwh, 1) + " MWh" : "",
               TextTable::num(r.setting, 0),
               TextTable::num(r.ci_saved_mwh, 3),
               TextTable::num(r.mi_saved_mwh, 3),
               TextTable::num(r.total_saved_mwh, 3),
               TextTable::num(r.savings_pct, 1),
               TextTable::num(r.delta_t_pct, 1),
               TextTable::num(r.savings_pct_no_slowdown, 1)});
    first = false;
  }
  std::printf("%s\n", t.str().c_str());
}

}  // namespace

int main() {
  using namespace exaeff;
  bench::print_header(
      "Table V",
      "System-wide projected energy savings: benchmark cap responses\n"
      "applied to the campaign's memory- and compute-intensive regions.");

  const auto campaign = bench::make_standard_campaign();
  const auto table =
      core::characterize(campaign.config.system.node.gcd);
  const core::ProjectionEngine engine(table);
  const auto decomp = campaign.accumulator->decomposition();
  const double total_mwh = units::joules_to_mwh(decomp.total_energy_j);

  print_rows(engine.project_sweep(decomp, core::CapType::kFrequency),
             "(a) Frequency Cap", "Freq (MHz)", total_mwh);
  print_rows(engine.project_sweep(decomp, core::CapType::kPower),
             "(b) Power Cap", "Power (W)", total_mwh);

  const auto best =
      engine.best_no_slowdown(decomp, core::CapType::kFrequency);
  std::printf("best zero-slowdown operating point: %.0f MHz -> %.1f%% of "
              "total GPU energy saved with no runtime increase\n\n",
              best.setting, best.savings_pct_no_slowdown);

  bench::note(
      "paper anchors (16820 MWh over 3 months): best savings at 900 MHz "
      "(8.8% with dT=11.2%, 8.5% at dT=0); 700 MHz regresses the C.I. "
      "column to negative; power caps save less than frequency caps at "
      "mild settings and hurt at 200 W.");
  return 0;
}
