// Reproduces paper Table VII: "Job scheduling policy of Frontier system".
#include "bench/support.h"
#include "common/table.h"
#include "sched/policy.h"

int main() {
  using namespace exaeff;
  bench::print_header("Table VII", "Job scheduling policy of Frontier");

  const sched::SchedulingPolicy policy(9408);
  TextTable t("Frontier scheduling policy (9408 nodes)");
  t.set_header({"Job size", "Num-nodes", "Max. Walltime (Hrs.)"});
  for (auto b : sched::all_size_bins()) {
    const auto [lo, hi] = policy.node_range(b);
    t.add_row({std::string(sched::bin_name(b)),
               std::to_string(lo) + " - " + std::to_string(hi),
               TextTable::num(
                   sched::SchedulingPolicy::max_walltime_s(b) / 3600.0, 0)});
  }
  std::printf("%s\n", t.str().c_str());

  // Also show the scaled policy the synthetic campaign uses.
  const sched::SchedulingPolicy scaled(48);
  TextTable t2("Same policy at the synthetic campaign scale (48 nodes)");
  t2.set_header({"Job size", "Num-nodes", "Max. Walltime (Hrs.)"});
  for (auto b : sched::all_size_bins()) {
    const auto [lo, hi] = scaled.node_range(b);
    // Tiny fleets collapse the smallest bins into their neighbours.
    const std::string range =
        hi >= lo ? std::to_string(lo) + " - " + std::to_string(hi)
                 : "(collapsed)";
    t2.add_row({std::string(sched::bin_name(b)), range,
                TextTable::num(
                    sched::SchedulingPolicy::max_walltime_s(b) / 3600.0,
                    0)});
  }
  std::printf("%s\n", t2.str().c_str());
  return 0;
}
