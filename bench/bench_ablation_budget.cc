// Ablation: facility power-budget enforcement — uniform ceiling vs
// region-aware cap distribution, swept over budget levels.  The paper's
// motivation ("maximize performance within constrained power budgets")
// made concrete: at each budget, which strategy loses less throughput?
#include <vector>

#include "agent/budget.h"
#include "bench/support.h"
#include "common/rng.h"
#include "common/table.h"

int main() {
  using namespace exaeff;
  bench::print_header(
      "Ablation: power-budget allocation",
      "Distributing a fleet power budget as per-GCD frequency caps:\n"
      "one uniform ceiling vs region-aware (cheapest watts first).");

  const auto gcd = gpusim::mi250x_gcd();
  const auto table = core::characterize(gcd);
  const agent::BudgetAllocator allocator(table, gcd);

  // Fleet snapshot: GCD demands drawn with the campaign's region mix.
  Rng rng(9);
  std::vector<agent::GcdDemand> demands;
  for (int i = 0; i < 512; ++i) {
    const double u = rng.uniform();
    agent::GcdDemand d;
    if (u < 0.30) {
      d.region = core::Region::kLatencyBound;
      d.uncapped_power_w = rng.uniform(95.0, 190.0);
    } else if (u < 0.80) {
      d.region = core::Region::kMemoryIntensive;
      d.uncapped_power_w = rng.uniform(230.0, 410.0);
    } else {
      d.region = core::Region::kComputeIntensive;
      d.uncapped_power_w = rng.uniform(430.0, 545.0);
    }
    demands.push_back(d);
  }
  double uncapped = 0.0;
  for (const auto& d : demands) uncapped += d.uncapped_power_w;
  std::printf("fleet snapshot: %zu GCDs, %.1f kW uncapped demand\n\n",
              demands.size(), uncapped / 1000.0);

  TextTable t("throughput cost vs budget (runtime scale, 1.0 = no loss)");
  t.set_header({"budget (% of demand)", "uniform ceiling: cost",
                "uniform: met?", "region-aware: cost", "aware: met?"});
  for (double frac : {0.95, 0.90, 0.85, 0.80, 0.75, 0.70}) {
    const double budget = frac * uncapped;
    const auto uni = allocator.allocate(
        demands, budget, agent::BudgetStrategy::kUniformCeiling);
    const auto aware = allocator.allocate(
        demands, budget, agent::BudgetStrategy::kRegionAware);
    t.add_row({TextTable::num(100 * frac, 0),
               TextTable::num(uni.throughput_cost, 3),
               uni.feasible ? "yes" : "NO",
               TextTable::num(aware.throughput_cost, 3),
               aware.feasible ? "yes" : "NO"});
  }
  std::printf("%s\n", t.str().c_str());

  bench::note(
      "region-aware allocation takes its first watts from memory-bound "
      "GCDs (whose runtime barely moves) and leaves latency-bound GCDs "
      "uncapped, so it meets the same budget at a lower throughput cost.");
  return 0;
}
