// Reproduces paper Fig 1: schematic representation of a Frontier compute
// node and the MI250X multi-chip GPU — rendered from the live cluster
// model so the diagram can never drift from the configuration.
#include "bench/support.h"
#include "cluster/system_config.h"

int main() {
  using namespace exaeff;
  bench::print_header("Figure 1",
                      "Frontier compute node and MI250X multi-chip GPU");

  const auto cfg = cluster::frontier();
  const auto& node = cfg.node;
  const auto& gcd = node.gcd;

  std::printf("+---------------------- compute node ----------------------+\n");
  std::printf("|  CPU: 64-core, %3.0f-%3.0f W, %3.0f GB DDR4                   |\n",
              node.cpu.idle_power_w, node.cpu.max_power_w,
              node.cpu.ddr4_bytes / (1024.0 * 1024.0 * 1024.0));
  std::printf("|                                                           |\n");
  for (std::size_t g = 0; g < node.gpus_per_node; ++g) {
    std::printf("|  MI250X #%zu  +---------GCD---------+---------GCD---------+ |\n",
                g);
    std::printf("|             | %4.1f TF/s  %3.0fGB HBM | %4.1f TF/s  %3.0fGB HBM | |\n",
                gcd.peak_flops_theoretical / 1e12,
                gcd.hbm_bytes / (1024.0 * 1024.0 * 1024.0),
                gcd.peak_flops_theoretical / 1e12,
                gcd.hbm_bytes / (1024.0 * 1024.0 * 1024.0));
    std::printf("|             | %4.0f W TDP %4.0f MHz  | %4.0f W TDP %4.0f MHz  | |\n",
                gcd.tdp_w, gcd.f_max_mhz, gcd.tdp_w, gcd.f_max_mhz);
    std::printf("|             +---------------------+---------------------+ |\n");
  }
  std::printf("+-----------------------------------------------------------+\n\n");

  std::printf("per node: %zu GPUs = %zu user-visible GCDs, %.0f GB HBM2e, "
              "%.1f TB/s aggregate HBM bandwidth\n",
              node.gpus_per_node, node.gcds_per_node(),
              node.hbm_bytes() / (1024.0 * 1024.0 * 1024.0),
              static_cast<double>(node.gcds_per_node()) * gcd.hbm_bw / 1e12);
  std::printf("system: %zu nodes, %zu GCDs, out-of-band power sensors at "
              "2 s per GCD\n",
              cfg.compute_nodes, cfg.total_gcds());
  return 0;
}
