#include "telemetry/archive.h"

#include <array>
#include <istream>
#include <limits>
#include <ostream>

#include "common/error.h"

namespace exaeff::telemetry {

namespace {

constexpr char kFileMagic[8] = {'E', 'X', 'A', 'T', 'E', 'L', '0', '1'};

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? 0xEDB88320U ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

void put_u64(std::ostream& os, std::uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  os.write(buf, 8);
}

std::uint64_t get_u64(std::istream& is) {
  char buf[8];
  is.read(buf, 8);
  if (is.gcount() != 8) throw ParseError("telemetry archive: truncated");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(buf[i]))
         << (8 * i);
  }
  return v;
}

double get_f64(std::istream& is) {
  const std::uint64_t bits = get_u64(is);
  double d;
  static_assert(sizeof d == sizeof bits);
  __builtin_memcpy(&d, &bits, sizeof d);
  return d;
}

void put_f64(std::ostream& os, double d) {
  std::uint64_t bits;
  __builtin_memcpy(&bits, &d, sizeof bits);
  put_u64(os, bits);
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  static const auto table = make_crc_table();
  std::uint32_t crc = 0xFFFFFFFFU;
  for (std::uint8_t byte : data) {
    crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFU;
}

ArchiveInfo write_archive(std::ostream& os,
                          std::span<const GcdSample> samples,
                          const CodecOptions& options) {
  const auto payload = encode_samples(samples, options);

  ArchiveInfo info;
  info.records = samples.size();
  info.payload_bytes = payload.size();
  info.checksum = crc32(payload);
  info.t_min_s = std::numeric_limits<double>::infinity();
  info.t_max_s = -info.t_min_s;
  for (const auto& s : samples) {
    info.t_min_s = std::min(info.t_min_s, s.t_s);
    info.t_max_s = std::max(info.t_max_s, s.t_s);
  }
  if (samples.empty()) {
    info.t_min_s = 0.0;
    info.t_max_s = 0.0;
  }

  os.write(kFileMagic, sizeof kFileMagic);
  put_u64(os, info.records);
  put_f64(os, info.t_min_s);
  put_f64(os, info.t_max_s);
  put_u64(os, info.payload_bytes);
  put_u64(os, info.checksum);
  os.write(reinterpret_cast<const char*>(payload.data()),
           static_cast<std::streamsize>(payload.size()));
  EXAEFF_REQUIRE(os.good(), "telemetry archive: write failed");
  return info;
}

namespace {
ArchiveInfo read_header(std::istream& is) {
  char magic[sizeof kFileMagic];
  is.read(magic, sizeof magic);
  if (is.gcount() != sizeof magic ||
      !std::equal(magic, magic + sizeof magic, kFileMagic)) {
    throw ParseError("telemetry archive: bad magic");
  }
  ArchiveInfo info;
  info.records = get_u64(is);
  info.t_min_s = get_f64(is);
  info.t_max_s = get_f64(is);
  info.payload_bytes = get_u64(is);
  info.checksum = static_cast<std::uint32_t>(get_u64(is));
  return info;
}

std::vector<std::uint8_t> read_payload(std::istream& is,
                                       const ArchiveInfo& info) {
  std::vector<std::uint8_t> payload(info.payload_bytes);
  is.read(reinterpret_cast<char*>(payload.data()),
          static_cast<std::streamsize>(payload.size()));
  if (static_cast<std::uint64_t>(is.gcount()) != info.payload_bytes) {
    throw ParseError("telemetry archive: truncated payload");
  }
  if (crc32(payload) != info.checksum) {
    throw ParseError("telemetry archive: checksum mismatch");
  }
  return payload;
}
}  // namespace

std::vector<GcdSample> read_archive(std::istream& is) {
  const ArchiveInfo info = read_header(is);
  const auto payload = read_payload(is, info);
  auto samples = decode_samples(payload);
  if (samples.size() != info.records) {
    throw ParseError("telemetry archive: record count mismatch");
  }
  return samples;
}

ArchiveInfo read_archive(std::istream& is, TelemetrySink& sink) {
  const ArchiveInfo info = read_header(is);
  const auto payload = read_payload(is, info);
  const auto samples = decode_samples(payload);
  if (samples.size() != info.records) {
    throw ParseError("telemetry archive: record count mismatch");
  }
  sink.on_gcd_batch(samples);
  return info;
}

ArchiveInfo read_archive_info(std::istream& is) {
  const ArchiveInfo info = read_header(is);
  (void)read_payload(is, info);  // verify integrity
  return info;
}

}  // namespace exaeff::telemetry
