#include "telemetry/archive.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <bit>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>

#include "common/error.h"
#include "obs/metrics.h"

namespace exaeff::telemetry {

namespace {

constexpr char kFileMagic[8] = {'E', 'X', 'A', 'T', 'E', 'L', '0', '2'};
constexpr char kTailMagic[8] = {'E', 'X', 'A', 'I', 'D', 'X', '0', '2'};
constexpr std::size_t kHeaderBytes = sizeof kFileMagic;
constexpr std::size_t kEntryBytes = 64;  // 8 little-endian u64 fields
constexpr std::size_t kFooterBytes = 32;

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? 0xEDB88320U ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_f64(std::vector<std::uint8_t>& out, double d) {
  put_u64(out, std::bit_cast<std::uint64_t>(d));
}

std::uint64_t get_u64(std::span<const std::uint8_t> buf, std::size_t pos) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(buf[pos + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  return v;
}

double get_f64(std::span<const std::uint8_t> buf, std::size_t pos) {
  return std::bit_cast<double>(get_u64(buf, pos));
}

std::uint64_t channel_key(const GcdSample& s) {
  return (static_cast<std::uint64_t>(s.node_id) << 16) | s.gcd_index;
}

std::string chunk_context(std::size_t index, std::size_t total,
                          const std::string& what) {
  return "telemetry archive: chunk " + std::to_string(index + 1) + " of " +
         std::to_string(total) + ": " + what;
}

/// Reads the rest of `is` into memory.
std::vector<std::uint8_t> slurp(std::istream& is) {
  std::vector<std::uint8_t> data;
  char buf[65536];
  for (;;) {
    is.read(buf, sizeof buf);
    const std::streamsize got = is.gcount();
    data.insert(data.end(), buf, buf + got);
    if (got < static_cast<std::streamsize>(sizeof buf)) break;
  }
  return data;
}

struct ParsedIndex {
  ArchiveInfo info;
  std::vector<ChunkInfo> chunks;
};

/// Validates header magic, footer and index CRC; returns the index.
/// Chunk payloads are bounds-checked but not CRC-verified here.
ParsedIndex parse_index(std::span<const std::uint8_t> file) {
  if (file.size() < kHeaderBytes + kFooterBytes) {
    throw ParseError("telemetry archive: truncated");
  }
  if (!std::equal(kFileMagic, kFileMagic + sizeof kFileMagic, file.data())) {
    throw ParseError("telemetry archive: bad magic");
  }
  const std::size_t footer_at = file.size() - kFooterBytes;
  if (!std::equal(kTailMagic, kTailMagic + sizeof kTailMagic,
                  file.data() + footer_at + 24)) {
    throw ParseError("telemetry archive: bad footer magic");
  }
  const std::uint64_t index_offset = get_u64(file, footer_at);
  const std::uint64_t chunk_count = get_u64(file, footer_at + 8);
  const auto index_crc =
      static_cast<std::uint32_t>(get_u64(file, footer_at + 16));
  if (index_offset < kHeaderBytes || index_offset > footer_at ||
      chunk_count != (footer_at - index_offset) / kEntryBytes ||
      (footer_at - index_offset) % kEntryBytes != 0) {
    throw ParseError("telemetry archive: index size mismatch");
  }
  if (chunk_count == 0 && index_offset != kHeaderBytes) {
    throw ParseError("telemetry archive: empty index with payload bytes");
  }
  const auto index_bytes =
      file.subspan(index_offset, footer_at - index_offset);
  if (crc32(index_bytes) != index_crc) {
    throw ParseError("telemetry archive: index checksum mismatch");
  }

  ParsedIndex parsed;
  parsed.info.checksum = index_crc;
  parsed.info.chunks = chunk_count;
  parsed.info.t_min_s = std::numeric_limits<double>::infinity();
  parsed.info.t_max_s = -parsed.info.t_min_s;
  parsed.chunks.reserve(chunk_count);
  for (std::uint64_t i = 0; i < chunk_count; ++i) {
    const std::size_t at = index_offset + i * kEntryBytes;
    ChunkInfo c;
    c.records = get_u64(file, at);
    c.t_min_s = get_f64(file, at + 8);
    c.t_max_s = get_f64(file, at + 16);
    c.key_min = get_u64(file, at + 24);
    c.key_max = get_u64(file, at + 32);
    c.offset = get_u64(file, at + 40);
    c.bytes = get_u64(file, at + 48);
    c.checksum = static_cast<std::uint32_t>(get_u64(file, at + 56));
    if (c.offset < kHeaderBytes || c.bytes > index_offset ||
        c.offset > index_offset - c.bytes) {
      throw ParseError(
          chunk_context(i, chunk_count, "payload out of bounds"));
    }
    parsed.info.records += c.records;
    parsed.info.payload_bytes += c.bytes;
    if (c.records > 0) {
      parsed.info.t_min_s = std::min(parsed.info.t_min_s, c.t_min_s);
      parsed.info.t_max_s = std::max(parsed.info.t_max_s, c.t_max_s);
    }
    parsed.chunks.push_back(c);
  }
  if (parsed.info.records == 0) {
    parsed.info.t_min_s = 0.0;
    parsed.info.t_max_s = 0.0;
  }
  return parsed;
}

/// CRC-checks and decodes one chunk out of a whole-file byte span.
std::vector<GcdSample> decode_chunk_bytes(std::span<const std::uint8_t> file,
                                          const ChunkInfo& c,
                                          std::size_t index,
                                          std::size_t total) {
  const auto payload = file.subspan(c.offset, c.bytes);
  if (crc32(payload) != c.checksum) {
    throw ParseError(chunk_context(index, total, "checksum mismatch"));
  }
  std::vector<GcdSample> samples;
  try {
    samples = decode_samples(payload);
  } catch (const ParseError& e) {
    throw ParseError(chunk_context(index, total, e.what()));
  }
  if (samples.size() != c.records) {
    throw ParseError(chunk_context(index, total, "record count mismatch"));
  }
  return samples;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  static const auto table = make_crc_table();
  std::uint32_t crc = 0xFFFFFFFFU;
  for (std::uint8_t byte : data) {
    crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFU;
}

ChunkedArchiveWriter::ChunkedArchiveWriter(std::ostream& os,
                                           CodecOptions options)
    : os_(os), options_(options), offset_(kHeaderBytes) {
  os_.write(kFileMagic, sizeof kFileMagic);
  EXAEFF_REQUIRE(os_.good(), "telemetry archive: write failed");
}

void ChunkedArchiveWriter::add_chunk(std::span<const GcdSample> samples) {
  EXAEFF_REQUIRE(!finished_, "telemetry archive: add_chunk after finish");
  if (samples.empty()) return;
  const auto payload = encode_samples(samples, options_);

  ChunkInfo c;
  c.records = samples.size();
  c.offset = offset_;
  c.bytes = payload.size();
  c.checksum = crc32(payload);
  c.t_min_s = std::numeric_limits<double>::infinity();
  c.t_max_s = -c.t_min_s;
  c.key_min = ~std::uint64_t{0};
  c.key_max = 0;
  for (const auto& s : samples) {
    c.t_min_s = std::min(c.t_min_s, s.t_s);
    c.t_max_s = std::max(c.t_max_s, s.t_s);
    const auto key = channel_key(s);
    c.key_min = std::min(c.key_min, key);
    c.key_max = std::max(c.key_max, key);
  }

  os_.write(reinterpret_cast<const char*>(payload.data()),
            static_cast<std::streamsize>(payload.size()));
  EXAEFF_REQUIRE(os_.good(), "telemetry archive: write failed");
  offset_ += payload.size();
  chunks_.push_back(c);
}

ArchiveInfo ChunkedArchiveWriter::finish() {
  EXAEFF_REQUIRE(!finished_, "telemetry archive: finish called twice");
  finished_ = true;

  std::vector<std::uint8_t> index;
  index.reserve(chunks_.size() * kEntryBytes + kFooterBytes);
  ArchiveInfo info;
  info.chunks = chunks_.size();
  info.t_min_s = std::numeric_limits<double>::infinity();
  info.t_max_s = -info.t_min_s;
  for (const auto& c : chunks_) {
    put_u64(index, c.records);
    put_f64(index, c.t_min_s);
    put_f64(index, c.t_max_s);
    put_u64(index, c.key_min);
    put_u64(index, c.key_max);
    put_u64(index, c.offset);
    put_u64(index, c.bytes);
    put_u64(index, c.checksum);
    info.records += c.records;
    info.payload_bytes += c.bytes;
    info.t_min_s = std::min(info.t_min_s, c.t_min_s);
    info.t_max_s = std::max(info.t_max_s, c.t_max_s);
  }
  if (chunks_.empty()) {
    info.t_min_s = 0.0;
    info.t_max_s = 0.0;
  }
  info.checksum = crc32(index);

  // Footer: index offset, chunk count, index CRC, tail magic.
  put_u64(index, offset_);
  put_u64(index, chunks_.size());
  put_u64(index, info.checksum);
  index.insert(index.end(), kTailMagic, kTailMagic + sizeof kTailMagic);
  os_.write(reinterpret_cast<const char*>(index.data()),
            static_cast<std::streamsize>(index.size()));
  EXAEFF_REQUIRE(os_.good(), "telemetry archive: write failed");

  if (obs::metrics_enabled()) {
    auto& reg = obs::MetricsRegistry::global();
    reg.counter("exaeff_archive_chunks_total", "Archive chunks written")
        .inc(chunks_.size());
    reg.counter("exaeff_archive_bytes_raw_total",
                "Raw sample bytes framed into archive chunks")
        .inc(info.records * sizeof(GcdSample));
    reg.counter("exaeff_archive_bytes_encoded_total",
                "Encoded archive payload bytes written")
        .inc(info.payload_bytes);
  }
  return info;
}

ArchiveInfo write_archive(std::ostream& os,
                          std::span<const GcdSample> samples,
                          const CodecOptions& options,
                          std::size_t chunk_records) {
  EXAEFF_REQUIRE(chunk_records > 0, "telemetry archive: chunk_records == 0");
  ChunkedArchiveWriter writer(os, options);
  for (std::size_t off = 0; off < samples.size(); off += chunk_records) {
    writer.add_chunk(
        samples.subspan(off, std::min(chunk_records, samples.size() - off)));
  }
  return writer.finish();
}

std::vector<GcdSample> read_archive(std::istream& is) {
  const auto file = slurp(is);
  const auto parsed = parse_index(file);
  std::vector<GcdSample> out;
  out.reserve(parsed.info.records);
  for (std::size_t i = 0; i < parsed.chunks.size(); ++i) {
    const auto samples =
        decode_chunk_bytes(file, parsed.chunks[i], i, parsed.chunks.size());
    out.insert(out.end(), samples.begin(), samples.end());
  }
  return out;
}

ArchiveInfo read_archive(std::istream& is, TelemetrySink& sink) {
  const auto file = slurp(is);
  const auto parsed = parse_index(file);
  // Decode everything before delivering anything, so a corrupt chunk
  // mid-file leaves the sink untouched.
  std::vector<std::vector<GcdSample>> decoded;
  decoded.reserve(parsed.chunks.size());
  for (std::size_t i = 0; i < parsed.chunks.size(); ++i) {
    decoded.push_back(
        decode_chunk_bytes(file, parsed.chunks[i], i, parsed.chunks.size()));
  }
  for (const auto& samples : decoded) {
    sink.on_gcd_batch(samples);
  }
  return parsed.info;
}

ArchiveInfo read_archive_info(std::istream& is) {
  const auto file = slurp(is);
  const std::span<const std::uint8_t> view(file);
  const auto parsed = parse_index(view);
  for (std::size_t i = 0; i < parsed.chunks.size(); ++i) {
    const auto& c = parsed.chunks[i];
    if (crc32(view.subspan(c.offset, c.bytes)) != c.checksum) {
      throw ParseError(
          chunk_context(i, parsed.chunks.size(), "checksum mismatch"));
    }
  }
  return parsed.info;
}

ArchiveReader::ArchiveReader(const std::string& path) : path_(path) {
  if (std::getenv("EXAEFF_NO_MMAP") == nullptr) {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd >= 0) {
      struct stat st{};
      if (::fstat(fd, &st) == 0 && st.st_size > 0) {
        const auto size = static_cast<std::size_t>(st.st_size);
        void* p = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
        if (p != MAP_FAILED) {
          mapped_ = p;
          size_ = size;
        }
      }
      ::close(fd);
    }
  }
  if (mapped_ == nullptr) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      throw ParseError("telemetry archive: cannot open '" + path + "'");
    }
    fallback_ = slurp(in);
    size_ = fallback_.size();
  }
  try {
    auto parsed = parse_index(bytes());
    info_ = parsed.info;
    chunks_ = std::move(parsed.chunks);
  } catch (...) {
    if (mapped_ != nullptr) ::munmap(mapped_, size_);
    throw;
  }
  key_ordered_ = true;
  for (std::size_t i = 1; i < chunks_.size(); ++i) {
    if (chunks_[i].key_min < chunks_[i - 1].key_max) {
      key_ordered_ = false;
      break;
    }
  }
}

ArchiveReader::~ArchiveReader() {
  if (mapped_ != nullptr) ::munmap(mapped_, size_);
}

std::span<const std::uint8_t> ArchiveReader::bytes() const {
  if (mapped_ != nullptr) {
    return {static_cast<const std::uint8_t*>(mapped_), size_};
  }
  return fallback_;
}

std::vector<GcdSample> ArchiveReader::decode_chunk(std::size_t index) const {
  EXAEFF_REQUIRE(index < chunks_.size(),
                 "telemetry archive: chunk index out of range");
  return decode_chunk_bytes(bytes(), chunks_[index], index, chunks_.size());
}

std::uint64_t ArchiveReader::visit_time_range(double t0_s, double t1_s,
                                              TelemetrySink& sink) const {
  std::uint64_t delivered = 0;
  for (std::size_t i = 0; i < chunks_.size(); ++i) {
    const auto& c = chunks_[i];
    if (c.records == 0 || c.t_max_s < t0_s || c.t_min_s >= t1_s) continue;
    const auto samples = decode_chunk(i);
    // Deliver maximal contiguous in-range runs as span batches.
    std::size_t run_begin = 0;
    bool in_run = false;
    const std::span<const GcdSample> span(samples);
    for (std::size_t j = 0; j <= samples.size(); ++j) {
      const bool keep =
          j < samples.size() && samples[j].t_s >= t0_s && samples[j].t_s < t1_s;
      if (keep && !in_run) {
        run_begin = j;
        in_run = true;
      } else if (!keep && in_run) {
        sink.on_gcd_batch(span.subspan(run_begin, j - run_begin));
        delivered += j - run_begin;
        in_run = false;
      }
    }
  }
  return delivered;
}

void ArchiveReader::append_series(std::uint32_t node_id,
                                  std::uint16_t gcd_index, double t0_s,
                                  double t1_s,
                                  std::vector<GcdSample>& out) const {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(node_id) << 16) | gcd_index;
  std::size_t begin = 0;
  if (key_ordered_) {
    // Chunks are key-ordered (spill files are written channel-major),
    // so the candidates form a contiguous index range.
    const auto it = std::partition_point(
        chunks_.begin(), chunks_.end(),
        [key](const ChunkInfo& c) { return c.key_max < key; });
    begin = static_cast<std::size_t>(it - chunks_.begin());
  }
  for (std::size_t i = begin; i < chunks_.size(); ++i) {
    const auto& c = chunks_[i];
    if (key_ordered_ && c.key_min > key) break;
    if (c.records == 0 || c.key_min > key || c.key_max < key ||
        c.t_max_s < t0_s || c.t_min_s >= t1_s) {
      continue;
    }
    const auto samples = decode_chunk(i);
    // Decoded chunks are channel-major and time-ascending, so the
    // requested slice is one contiguous run found by binary search.
    const auto lo = std::partition_point(
        samples.begin(), samples.end(), [&](const GcdSample& s) {
          const auto k = channel_key(s);
          return k < key || (k == key && s.t_s < t0_s);
        });
    for (auto it = lo; it != samples.end(); ++it) {
      if (channel_key(*it) != key || it->t_s >= t1_s) break;
      out.push_back(*it);
    }
  }
}

}  // namespace exaeff::telemetry
