// exaeff/telemetry/store.h
//
// In-memory telemetry store with range queries, energy integration and
// CSV round-trip.  Suitable for benchmark-scale studies (millions of
// records); the fleet-scale pipeline streams into accumulators instead.
//
// Degraded-data policy: records may arrive in any order and may contain
// duplicates (re-transmissions).  sort() orders by (node, gcd, time) and
// resolves exact duplicate timestamps last-writer-wins (the record
// inserted last survives) — so small reorderings are fixed by sorting and
// duplicate policy is deterministic regardless of arrival order.
// clean_series() layers outlier rejection and optional gap imputation on
// top of series() and reports the resulting data quality.
#pragma once

#include <iosfwd>
#include <span>
#include <vector>

#include "telemetry/sample.h"

namespace exaeff::telemetry {

/// Outlier-rejection / imputation policy for clean_series().
struct CleanPolicy {
  double min_power_w = 0.0;    ///< reject readings below (sensor floor)
  double max_power_w = 1.0e4;  ///< reject readings above (sensor ceiling)
  /// Robust spike gate: reject |x - median| > mad_k * 1.4826 * MAD.
  /// 0 disables the gate; it is also skipped when MAD is 0 (constant
  /// series) or fewer than 4 samples survive the range gate.
  double mad_k = 0.0;
  /// Fill missing window-grid points by linear interpolation between the
  /// nearest surviving neighbours (nearest-value at the edges).
  bool impute = false;
};

/// Data-quality summary of one clean_series() call.
struct SeriesQuality {
  std::size_t expected = 0;  ///< grid points in [t0, t1)
  std::size_t observed = 0;  ///< records found before cleaning
  std::size_t rejected = 0;  ///< records removed by range/MAD gates
  std::size_t imputed = 0;   ///< grid points synthesized by imputation

  [[nodiscard]] double coverage() const {
    return expected > 0
               ? static_cast<double>(observed - rejected) /
                     static_cast<double>(expected)
               : 1.0;
  }
  [[nodiscard]] double imputed_share() const {
    const std::size_t kept = observed - rejected + imputed;
    return kept > 0
               ? static_cast<double>(imputed) / static_cast<double>(kept)
               : 0.0;
  }
};

/// Shared cleaning pass behind TelemetryStore::clean_series() and
/// SpillStore::clean_series(): applies the range and MAD gates and the
/// optional grid imputation of `policy` to an already-gathered
/// (node, gcd) series restricted to [t0, t1).  `quality` (optional)
/// receives coverage/imputation stats.
[[nodiscard]] std::vector<GcdSample> clean_series_records(
    std::vector<GcdSample> s, std::uint32_t node_id,
    std::uint16_t gcd_index, double t0, double t1, double window_s,
    const CleanPolicy& policy, SeriesQuality* quality = nullptr);

/// Append-only store of aggregated telemetry records.
class TelemetryStore final : public TelemetrySink {
 public:
  /// `window_s` is the record resolution; it is the integration weight
  /// used when converting power records to energy.
  explicit TelemetryStore(double window_s = 15.0) : window_s_(window_s) {}

  /// Pre-sizes the record buffers for a known ingest volume — e.g. the
  /// closed-form campaign grid count from sched::expected_gcd_samples()
  /// — so streaming ingest never reallocates.  A capacity hint only.
  void reserve(std::size_t gcd_records, std::size_t node_records = 0) {
    gcd_samples_.reserve(gcd_samples_.size() + gcd_records);
    node_samples_.reserve(node_samples_.size() + node_records);
  }

  void on_gcd_sample(const GcdSample& sample) override {
    gcd_samples_.push_back(sample);
  }
  void on_node_sample(const NodeSample& sample) override {
    node_samples_.push_back(sample);
  }
  /// Batch fast path: one bulk append per span.
  void on_gcd_batch(std::span<const GcdSample> samples) override {
    gcd_samples_.insert(gcd_samples_.end(), samples.begin(), samples.end());
  }
  void on_node_batch(std::span<const NodeSample> samples) override {
    node_samples_.insert(node_samples_.end(), samples.begin(),
                         samples.end());
  }

  [[nodiscard]] std::span<const GcdSample> gcd_samples() const {
    return gcd_samples_;
  }
  [[nodiscard]] std::span<const NodeSample> node_samples() const {
    return node_samples_;
  }
  [[nodiscard]] std::size_t size() const { return gcd_samples_.size(); }
  [[nodiscard]] bool empty() const { return gcd_samples_.empty(); }
  [[nodiscard]] double window_s() const { return window_s_; }

  /// Sorts records by (node, gcd, time) and removes exact duplicate
  /// (node, gcd, time) records last-writer-wins; required before
  /// series().  Returns the number of duplicates removed.
  std::size_t sort();

  /// All records of one GCD channel within [t0, t1), as a zero-copy view
  /// into the sorted record buffer (binary search at both ends).  The
  /// view is invalidated by any mutation of the store.  Requires sort().
  [[nodiscard]] std::span<const GcdSample> series_view(
      std::uint32_t node_id, std::uint16_t gcd_index, double t0,
      double t1) const;

  /// Copying wrapper around series_view() for callers that outlive or
  /// mutate the store.  Requires sort().
  [[nodiscard]] std::vector<GcdSample> series(std::uint32_t node_id,
                                              std::uint16_t gcd_index,
                                              double t0, double t1) const;

  /// series() plus outlier rejection and optional gap imputation under
  /// `policy`; `quality` (optional) receives coverage/imputation stats.
  /// Imputed records land on the window grid (multiples of window_s).
  /// Requires sort().
  [[nodiscard]] std::vector<GcdSample> clean_series(
      std::uint32_t node_id, std::uint16_t gcd_index, double t0, double t1,
      const CleanPolicy& policy, SeriesQuality* quality = nullptr) const;

  /// Total GPU energy across all records, joules (power x window).
  [[nodiscard]] double total_gpu_energy_j() const;

  /// Total CPU energy across node records, joules.
  [[nodiscard]] double total_cpu_energy_j() const;

  /// Time extent [min_t, max_t + window] over GCD records; {0,0} if empty.
  [[nodiscard]] std::pair<double, double> time_extent() const;

  /// Writes "t_s,node_id,gcd,power_w" CSV (with header).
  void save_csv(std::ostream& os) const;

  /// Reads records back from CSV written by save_csv.
  static TelemetryStore load_csv(std::istream& is, double window_s = 15.0);

  /// Bytes of sample payload currently retained.
  [[nodiscard]] std::size_t retained_bytes() const {
    return gcd_samples_.size() * sizeof(GcdSample) +
           node_samples_.size() * sizeof(NodeSample);
  }

  /// Publishes retention gauges (`exaeff_store_samples`,
  /// `exaeff_store_bytes`) to the metrics registry when enabled.
  void publish_metrics() const;

 private:
  double window_s_;
  std::vector<GcdSample> gcd_samples_;
  std::vector<NodeSample> node_samples_;
  bool sorted_ = false;
};

}  // namespace exaeff::telemetry
