// exaeff/telemetry/store.h
//
// In-memory telemetry store with range queries, energy integration and
// CSV round-trip.  Suitable for benchmark-scale studies (millions of
// records); the fleet-scale pipeline streams into accumulators instead.
#pragma once

#include <iosfwd>
#include <span>
#include <vector>

#include "telemetry/sample.h"

namespace exaeff::telemetry {

/// Append-only store of aggregated telemetry records.
class TelemetryStore final : public TelemetrySink {
 public:
  /// `window_s` is the record resolution; it is the integration weight
  /// used when converting power records to energy.
  explicit TelemetryStore(double window_s = 15.0) : window_s_(window_s) {}

  void on_gcd_sample(const GcdSample& sample) override {
    gcd_samples_.push_back(sample);
  }
  void on_node_sample(const NodeSample& sample) override {
    node_samples_.push_back(sample);
  }

  [[nodiscard]] std::span<const GcdSample> gcd_samples() const {
    return gcd_samples_;
  }
  [[nodiscard]] std::span<const NodeSample> node_samples() const {
    return node_samples_;
  }
  [[nodiscard]] std::size_t size() const { return gcd_samples_.size(); }
  [[nodiscard]] bool empty() const { return gcd_samples_.empty(); }
  [[nodiscard]] double window_s() const { return window_s_; }

  /// Sorts records by (node, gcd, time); required before series().
  void sort();

  /// All records of one GCD channel within [t0, t1).  Requires sort().
  [[nodiscard]] std::vector<GcdSample> series(std::uint32_t node_id,
                                              std::uint16_t gcd_index,
                                              double t0, double t1) const;

  /// Total GPU energy across all records, joules (power x window).
  [[nodiscard]] double total_gpu_energy_j() const;

  /// Total CPU energy across node records, joules.
  [[nodiscard]] double total_cpu_energy_j() const;

  /// Time extent [min_t, max_t + window] over GCD records; {0,0} if empty.
  [[nodiscard]] std::pair<double, double> time_extent() const;

  /// Writes "t_s,node_id,gcd,power_w" CSV (with header).
  void save_csv(std::ostream& os) const;

  /// Reads records back from CSV written by save_csv.
  static TelemetryStore load_csv(std::istream& is, double window_s = 15.0);

  /// Bytes of sample payload currently retained.
  [[nodiscard]] std::size_t retained_bytes() const {
    return gcd_samples_.size() * sizeof(GcdSample) +
           node_samples_.size() * sizeof(NodeSample);
  }

  /// Publishes retention gauges (`exaeff_store_samples`,
  /// `exaeff_store_bytes`) to the metrics registry when enabled.
  void publish_metrics() const;

 private:
  double window_s_;
  std::vector<GcdSample> gcd_samples_;
  std::vector<NodeSample> node_samples_;
  bool sorted_ = false;
};

}  // namespace exaeff::telemetry
