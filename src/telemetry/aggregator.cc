#include "telemetry/aggregator.h"

#include <cmath>

#include "obs/metrics.h"

namespace exaeff::telemetry {

void Aggregator::on_gcd_sample(const GcdSample& sample) {
  ++samples_in_;
  const std::uint64_t k = key(sample.node_id, sample.gcd_index);
  Accum& acc = gcd_windows_[k];
  const double window_start =
      std::floor(sample.t_s / window_s_) * window_s_;
  if (acc.active && window_start > acc.window_start) {
    emit_gcd(k, acc);
    acc = Accum{};
  }
  if (!acc.active) {
    acc.active = true;
    acc.window_start = window_start;
  }
  acc.power_sum += sample.power_w;
  ++acc.count;
}

void Aggregator::on_node_sample(const NodeSample& sample) {
  ++samples_in_;
  const std::uint64_t k = key(sample.node_id, 0xFFFF);
  Accum& acc = node_windows_[k];
  const double window_start =
      std::floor(sample.t_s / window_s_) * window_s_;
  if (acc.active && window_start > acc.window_start) {
    emit_node(k, acc);
    acc = Accum{};
  }
  if (!acc.active) {
    acc.active = true;
    acc.window_start = window_start;
  }
  acc.power_sum += sample.cpu_power_w;
  acc.aux_sum += sample.node_input_w;
  ++acc.count;
}

void Aggregator::emit_gcd(std::uint64_t channel_key, const Accum& acc) {
  GcdSample out;
  out.t_s = acc.window_start;
  out.node_id = static_cast<std::uint32_t>(channel_key >> 16);
  out.gcd_index = static_cast<std::uint16_t>(channel_key & 0xFFFF);
  out.power_w =
      static_cast<float>(acc.power_sum / static_cast<double>(acc.count));
  ++windows_out_;
  downstream_.on_gcd_sample(out);
}

void Aggregator::emit_node(std::uint64_t channel_key, const Accum& acc) {
  NodeSample out;
  out.t_s = acc.window_start;
  out.node_id = static_cast<std::uint32_t>(channel_key >> 16);
  out.cpu_power_w =
      static_cast<float>(acc.power_sum / static_cast<double>(acc.count));
  out.node_input_w =
      static_cast<float>(acc.aux_sum / static_cast<double>(acc.count));
  ++windows_out_;
  downstream_.on_node_sample(out);
}

void Aggregator::flush() {
  for (auto& [k, acc] : gcd_windows_) {
    if (acc.active && acc.count > 0) emit_gcd(k, acc);
    acc = Accum{};
  }
  for (auto& [k, acc] : node_windows_) {
    if (acc.active && acc.count > 0) emit_node(k, acc);
    acc = Accum{};
  }
  if (obs::metrics_enabled()) {
    auto& reg = obs::MetricsRegistry::global();
    reg.counter("exaeff_agg_samples_in_total",
                "Raw sensor samples consumed by the aggregator")
        .inc(samples_in_ - published_in_);
    reg.counter("exaeff_agg_windows_total",
                "Aggregated window records emitted")
        .inc(windows_out_ - published_out_);
    published_in_ = samples_in_;
    published_out_ = windows_out_;
  }
}

}  // namespace exaeff::telemetry
