#include "telemetry/aggregator.h"

#include <cmath>

#include "obs/metrics.h"

namespace exaeff::telemetry {

bool Aggregator::admit(Accum& acc, double window_start, double t,
                       double value, double aux) {
  // Late: the sample's window closed before it arrived.  Merging it into
  // the open window would silently bias the mean; drop and count instead.
  if (window_start <= acc.watermark ||
      (acc.active && window_start < acc.window_start)) {
    ++late_;
    return false;
  }
  // Duplicate timestamp of the channel's most recent reading: the newer
  // value wins (sensor re-transmissions carry the corrected reading).
  if (acc.active && acc.count > 0 && t == acc.last_t &&
      window_start == acc.window_start) {
    ++duplicates_;
    acc.power_sum += value - acc.last_power;
    acc.aux_sum += aux - acc.last_aux;
    acc.last_power = value;
    acc.last_aux = aux;
    return false;
  }
  return true;
}

bool Aggregator::passes_coverage(const Accum& acc) {
  if (gap_.expected_period_s <= 0.0) return true;
  const double expected = window_s_ / gap_.expected_period_s;
  const double coverage =
      std::min(1.0, static_cast<double>(acc.count) / expected);
  if (coverage < gap_.min_coverage) {
    ++low_coverage_;
    return false;
  }
  return true;
}

void Aggregator::ingest_gcd(std::uint64_t channel_key, Accum& acc,
                            const GcdSample& sample) {
  ++samples_in_;
  const double window_start =
      std::floor(sample.t_s / window_s_) * window_s_;
  if (!admit(acc, window_start, sample.t_s,
             static_cast<double>(sample.power_w), 0.0)) {
    return;
  }
  if (acc.active && window_start > acc.window_start) {
    emit_gcd(channel_key, acc);
    const double watermark = acc.window_start;
    acc = Accum{};
    acc.watermark = watermark;
  }
  if (!acc.active) {
    acc.active = true;
    acc.window_start = window_start;
  }
  acc.power_sum += sample.power_w;
  acc.last_t = sample.t_s;
  acc.last_power = sample.power_w;
  ++acc.count;
}

void Aggregator::ingest_node(std::uint64_t channel_key, Accum& acc,
                             const NodeSample& sample) {
  ++samples_in_;
  const double window_start =
      std::floor(sample.t_s / window_s_) * window_s_;
  if (!admit(acc, window_start, sample.t_s,
             static_cast<double>(sample.cpu_power_w),
             static_cast<double>(sample.node_input_w))) {
    return;
  }
  if (acc.active && window_start > acc.window_start) {
    emit_node(channel_key, acc);
    const double watermark = acc.window_start;
    acc = Accum{};
    acc.watermark = watermark;
  }
  if (!acc.active) {
    acc.active = true;
    acc.window_start = window_start;
  }
  acc.power_sum += sample.cpu_power_w;
  acc.aux_sum += sample.node_input_w;
  acc.last_t = sample.t_s;
  acc.last_power = sample.cpu_power_w;
  acc.last_aux = sample.node_input_w;
  ++acc.count;
}

void Aggregator::on_gcd_sample(const GcdSample& sample) {
  const std::uint64_t k = key(sample.node_id, sample.gcd_index);
  if (k != last_gcd_key_ || last_gcd_acc_ == nullptr) {
    last_gcd_acc_ = &gcd_windows_[k];
    last_gcd_key_ = k;
  }
  ingest_gcd(k, *last_gcd_acc_, sample);
}

void Aggregator::on_node_sample(const NodeSample& sample) {
  const std::uint64_t k = key(sample.node_id, 0xFFFF);
  if (k != last_node_key_ || last_node_acc_ == nullptr) {
    last_node_acc_ = &node_windows_[k];
    last_node_key_ = k;
  }
  ingest_node(k, *last_node_acc_, sample);
}

void Aggregator::on_gcd_batch(std::span<const GcdSample> samples) {
  // The cached accumulator pointer stays valid while the channel key is
  // unchanged: only a lookup of a *new* key can rehash the table, and
  // ingest never inserts into it.
  std::uint64_t cached_key = ~std::uint64_t{0};
  Accum* acc = nullptr;
  for (const GcdSample& sample : samples) {
    const std::uint64_t k = key(sample.node_id, sample.gcd_index);
    if (acc == nullptr || k != cached_key) {
      acc = &gcd_windows_[k];
      cached_key = k;
    }
    ingest_gcd(k, *acc, sample);
  }
}

void Aggregator::on_node_batch(std::span<const NodeSample> samples) {
  std::uint64_t cached_key = ~std::uint64_t{0};
  Accum* acc = nullptr;
  for (const NodeSample& sample : samples) {
    const std::uint64_t k = key(sample.node_id, 0xFFFF);
    if (acc == nullptr || k != cached_key) {
      acc = &node_windows_[k];
      cached_key = k;
    }
    ingest_node(k, *acc, sample);
  }
}

void Aggregator::emit_gcd(std::uint64_t channel_key, const Accum& acc) {
  if (!passes_coverage(acc)) return;
  GcdSample out;
  out.t_s = acc.window_start;
  out.node_id = static_cast<std::uint32_t>(channel_key >> 16);
  out.gcd_index = static_cast<std::uint16_t>(channel_key & 0xFFFF);
  out.power_w =
      static_cast<float>(acc.power_sum / static_cast<double>(acc.count));
  ++windows_out_;
  downstream_.on_gcd_sample(out);
}

void Aggregator::emit_node(std::uint64_t channel_key, const Accum& acc) {
  if (!passes_coverage(acc)) return;
  NodeSample out;
  out.t_s = acc.window_start;
  out.node_id = static_cast<std::uint32_t>(channel_key >> 16);
  out.cpu_power_w =
      static_cast<float>(acc.power_sum / static_cast<double>(acc.count));
  out.node_input_w =
      static_cast<float>(acc.aux_sum / static_cast<double>(acc.count));
  ++windows_out_;
  downstream_.on_node_sample(out);
}

void Aggregator::flush() {
  for (auto& [k, acc] : gcd_windows_) {
    if (acc.active && acc.count > 0) emit_gcd(k, acc);
    const double watermark =
        acc.active ? acc.window_start : acc.watermark;
    acc = Accum{};
    acc.watermark = watermark;
  }
  for (auto& [k, acc] : node_windows_) {
    if (acc.active && acc.count > 0) emit_node(k, acc);
    const double watermark =
        acc.active ? acc.window_start : acc.watermark;
    acc = Accum{};
    acc.watermark = watermark;
  }
  if (obs::metrics_enabled()) {
    auto& reg = obs::MetricsRegistry::global();
    reg.counter("exaeff_agg_samples_in_total",
                "Raw sensor samples consumed by the aggregator")
        .inc(samples_in_ - published_in_);
    reg.counter("exaeff_agg_windows_total",
                "Aggregated window records emitted")
        .inc(windows_out_ - published_out_);
    if (late_ != published_late_) {
      reg.counter("exaeff_agg_late_samples_total",
                  "Samples rejected because their window had closed")
          .inc(late_ - published_late_);
    }
    if (duplicates_ != published_dup_) {
      reg.counter("exaeff_agg_duplicate_samples_total",
                  "Same-timestamp samples resolved last-writer-wins")
          .inc(duplicates_ - published_dup_);
    }
    if (low_coverage_ != published_lowcov_) {
      reg.counter("exaeff_agg_low_coverage_windows_total",
                  "Windows suppressed by the min-coverage policy")
          .inc(low_coverage_ - published_lowcov_);
    }
    published_in_ = samples_in_;
    published_out_ = windows_out_;
    published_late_ = late_;
    published_dup_ = duplicates_;
    published_lowcov_ = low_coverage_;
  }
}

}  // namespace exaeff::telemetry
