// exaeff/telemetry/sample.h
//
// Telemetry record types and the sink interface the rest of the pipeline
// is built on.  Frontier's out-of-band infrastructure samples node-level
// sensors every 2 seconds and the pre-processing stage aggregates to 15
// second records (paper Table II); the fleet simulator reproduces those
// semantics and feeds whatever sink the analysis wants — an in-memory
// store for small studies, streaming histogram accumulators at fleet
// scale.
#pragma once

#include <cstdint>
#include <span>

namespace exaeff::telemetry {

/// Whether producers emit telemetry through the span-based batch calls
/// (the default) or fall back to one virtual call per record.  Both
/// paths are byte-identical by contract; the fallback exists so CI can
/// cross-check them (`EXAEFF_BATCH=0`) and as a bisection aid.  Reads
/// the environment once; set_batching() overrides it (tests).
[[nodiscard]] bool batching_enabled();
void set_batching(bool enabled);

/// Instantaneous (or window-averaged) power of one GCD on one node.
/// The paper's analysis operates almost entirely on this record.
struct GcdSample {
  double t_s = 0.0;            ///< sample time, seconds since campaign start
  std::uint32_t node_id = 0;   ///< compute node index
  std::uint16_t gcd_index = 0; ///< GCD within the node (0..7 on Frontier)
  float power_w = 0.0F;        ///< GPU power, watts

  bool operator==(const GcdSample&) const = default;
};

/// Node-level channels captured alongside the per-GCD sensors.
struct NodeSample {
  double t_s = 0.0;
  std::uint32_t node_id = 0;
  float cpu_power_w = 0.0F;    ///< CPU socket power
  float node_input_w = 0.0F;   ///< node power input (everything)

  bool operator==(const NodeSample&) const = default;
};

/// Consumer of telemetry records.  Implementations must tolerate samples
/// arriving grouped by node but interleaved in time across nodes.
///
/// Batch contract: producers may deliver a contiguous span of records
/// through on_gcd_batch()/on_node_batch() instead of one virtual call
/// per record.  The default implementations loop over the per-record
/// virtuals, so a sink that only overrides those observes the exact
/// same record sequence either way — batching is purely a throughput
/// optimization and must never change observable output.  A batch span
/// is only valid for the duration of the call; sinks that retain
/// records must copy them.
class TelemetrySink {
 public:
  virtual ~TelemetrySink() = default;

  virtual void on_gcd_sample(const GcdSample& sample) = 0;

  /// Node-level channels are optional; default is to ignore them.
  virtual void on_node_sample(const NodeSample& /*sample*/) {}

  /// Batch delivery; default preserves per-record semantics exactly.
  virtual void on_gcd_batch(std::span<const GcdSample> samples) {
    for (const GcdSample& s : samples) on_gcd_sample(s);
  }
  virtual void on_node_batch(std::span<const NodeSample> samples) {
    for (const NodeSample& s : samples) on_node_sample(s);
  }
};

/// Sink that forwards to two children (e.g. store + live histogram).
class TeeSink final : public TelemetrySink {
 public:
  TeeSink(TelemetrySink& first, TelemetrySink& second)
      : first_(first), second_(second) {}

  void on_gcd_sample(const GcdSample& s) override {
    first_.on_gcd_sample(s);
    second_.on_gcd_sample(s);
  }
  void on_node_sample(const NodeSample& s) override {
    first_.on_node_sample(s);
    second_.on_node_sample(s);
  }
  void on_gcd_batch(std::span<const GcdSample> samples) override {
    first_.on_gcd_batch(samples);
    second_.on_gcd_batch(samples);
  }
  void on_node_batch(std::span<const NodeSample> samples) override {
    first_.on_node_batch(samples);
    second_.on_node_batch(samples);
  }

 private:
  TelemetrySink& first_;
  TelemetrySink& second_;
};

}  // namespace exaeff::telemetry
