// exaeff/telemetry/sample.h
//
// Telemetry record types and the sink interface the rest of the pipeline
// is built on.  Frontier's out-of-band infrastructure samples node-level
// sensors every 2 seconds and the pre-processing stage aggregates to 15
// second records (paper Table II); the fleet simulator reproduces those
// semantics and feeds whatever sink the analysis wants — an in-memory
// store for small studies, streaming histogram accumulators at fleet
// scale.
#pragma once

#include <cstdint>

namespace exaeff::telemetry {

/// Instantaneous (or window-averaged) power of one GCD on one node.
/// The paper's analysis operates almost entirely on this record.
struct GcdSample {
  double t_s = 0.0;            ///< sample time, seconds since campaign start
  std::uint32_t node_id = 0;   ///< compute node index
  std::uint16_t gcd_index = 0; ///< GCD within the node (0..7 on Frontier)
  float power_w = 0.0F;        ///< GPU power, watts
};

/// Node-level channels captured alongside the per-GCD sensors.
struct NodeSample {
  double t_s = 0.0;
  std::uint32_t node_id = 0;
  float cpu_power_w = 0.0F;    ///< CPU socket power
  float node_input_w = 0.0F;   ///< node power input (everything)
};

/// Consumer of telemetry records.  Implementations must tolerate samples
/// arriving grouped by node but interleaved in time across nodes.
class TelemetrySink {
 public:
  virtual ~TelemetrySink() = default;

  virtual void on_gcd_sample(const GcdSample& sample) = 0;

  /// Node-level channels are optional; default is to ignore them.
  virtual void on_node_sample(const NodeSample& /*sample*/) {}
};

/// Sink that forwards to two children (e.g. store + live histogram).
class TeeSink final : public TelemetrySink {
 public:
  TeeSink(TelemetrySink& first, TelemetrySink& second)
      : first_(first), second_(second) {}

  void on_gcd_sample(const GcdSample& s) override {
    first_.on_gcd_sample(s);
    second_.on_gcd_sample(s);
  }
  void on_node_sample(const NodeSample& s) override {
    first_.on_node_sample(s);
    second_.on_node_sample(s);
  }

 private:
  TelemetrySink& first_;
  TelemetrySink& second_;
};

}  // namespace exaeff::telemetry
