#include "telemetry/sample.h"

#include <atomic>
#include <cstdlib>
#include <string_view>

namespace exaeff::telemetry {

namespace {
// -1 = not yet resolved from the environment; 0/1 once decided.
std::atomic<int> g_batching{-1};
}  // namespace

bool batching_enabled() {
  int v = g_batching.load(std::memory_order_relaxed);
  if (v < 0) {
    const char* env = std::getenv("EXAEFF_BATCH");
    const bool off =
        env != nullptr && (std::string_view(env) == "0" ||
                           std::string_view(env) == "off" ||
                           std::string_view(env) == "false");
    v = off ? 0 : 1;
    g_batching.store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

void set_batching(bool enabled) {
  g_batching.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

}  // namespace exaeff::telemetry
