// exaeff/telemetry/spill_store.h
//
// Bounded-memory telemetry retention: a TelemetrySink that buffers the
// open time window in RAM and spills closed windows through the
// lossless archive codec to chunk files under a spill directory.  This
// is what lets a paper-scale campaign (9408 nodes × 90 days ≈ 600 GB of
// raw records) retain its telemetry on a fixed memory budget.
//
// Two ways a window closes:
//   * the owning driver calls close_window() at a planned boundary
//     (the deterministic path — spill files are then a function of the
//     schedule and the budget, never of thread or shard count), or
//   * retained_bytes() crosses `memory_budget_bytes` after an append
//     (the backstop for free-form ingest; 0 disables it).
//
// Each spilled window is one chunked archive (`win-NNNNNN.tel`),
// committed through the atomic write-temp → fsync → rename path and
// re-opened through the mmap-backed ArchiveReader.  Spill files use the
// lossless codec, so the query surface — series_view(), clean_series(),
// total_gpu_energy_j(), time_extent() — answers exactly what an
// all-in-RAM TelemetryStore over the same ingest would (see
// tests/telemetry/spill_store_test.cc for the pinned equivalence).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/archive.h"
#include "telemetry/codec.h"
#include "telemetry/sample.h"
#include "telemetry/store.h"

namespace exaeff::telemetry {

/// Spill-store parameters.
struct SpillConfig {
  std::string dir;  ///< directory for spill files (must exist)
  /// Backstop: close the window when resident bytes reach this after an
  /// append.  0 disables the backstop (driver-directed windows only).
  std::size_t memory_budget_bytes = 0;
  double window_s = 15.0;  ///< record resolution (energy weight)
  /// Codec for spill files.  Lossless by default — queries must be
  /// exact; the quantized mode is for archival exports.
  CodecOptions codec{.lossless = true};
  /// Global index of the first window this store writes.  Shard workers
  /// set this so every worker names its files by the campaign-global
  /// window index and the merged directory is identical to a
  /// single-process run.
  std::size_t window_index_base = 0;
  /// Windows up to this many records sort with std::stable_sort (a
  /// record-sized temporary, fastest); larger windows sort through a
  /// 4-byte-per-record index permutation so the scratch never rivals
  /// the memory budget.  Both orders are identical.
  std::size_t sort_scratch_limit_records = std::size_t{1} << 25;
};

/// Bounded-memory TelemetrySink with spill-to-archive retention and an
/// exact query surface over spilled + resident records.
class SpillStore final : public TelemetrySink {
 public:
  explicit SpillStore(SpillConfig config);

  void on_gcd_sample(const GcdSample& sample) override;
  void on_node_sample(const NodeSample& sample) override;
  void on_gcd_batch(std::span<const GcdSample> samples) override;
  void on_node_batch(std::span<const NodeSample> samples) override;

  /// on_gcd_batch for a caller that is done with its buffer: identical
  /// accounting (same floating-point order), but when the resident
  /// window is empty the vector is adopted wholesale instead of copied
  /// — the spill campaign driver hands over each generated chunk this
  /// way, so a one-chunk window never holds two copies of its records.
  void ingest_gcd_owned(std::vector<GcdSample>&& samples);

  /// Sorts and LWW-dedupes the resident window (TelemetryStore::sort()
  /// semantics), writes it as one lossless chunked archive under the
  /// spill dir, and drops it from RAM.  No-op when nothing is resident.
  void close_window();

  /// Records of one GCD channel within [t0, t1), merged across every
  /// spilled window and the resident tail with last-writer-wins on
  /// exact duplicate timestamps — the same answer TelemetryStore's
  /// sorted buffer gives.  The view is backed by an internal scratch
  /// buffer and invalidated by the next series_view()/clean_series()
  /// call or any mutation.
  [[nodiscard]] std::span<const GcdSample> series_view(
      std::uint32_t node_id, std::uint16_t gcd_index, double t0,
      double t1) const;

  /// Copying form of series_view().
  [[nodiscard]] std::vector<GcdSample> series(std::uint32_t node_id,
                                              std::uint16_t gcd_index,
                                              double t0, double t1) const;

  /// series() plus the shared range/MAD/imputation cleaning pass.
  [[nodiscard]] std::vector<GcdSample> clean_series(
      std::uint32_t node_id, std::uint16_t gcd_index, double t0, double t1,
      const CleanPolicy& policy, SeriesQuality* quality = nullptr) const;

  /// Total GPU energy over every ingested record (power × window),
  /// accumulated in ingest order — the identical floating-point op
  /// sequence to TelemetryStore::total_gpu_energy_j() on the same
  /// (unsorted) ingest.
  [[nodiscard]] double total_gpu_energy_j() const { return energy_j_; }

  /// Total CPU energy across node records, joules.
  [[nodiscard]] double total_cpu_energy_j() const { return cpu_energy_j_; }

  /// Time extent [min_t, max_t + window] over GCD records; {0,0} if
  /// nothing was ingested.
  [[nodiscard]] std::pair<double, double> time_extent() const;

  [[nodiscard]] double window_s() const { return config_.window_s; }

  /// Bytes of sample payload currently resident in RAM.
  [[nodiscard]] std::size_t retained_bytes() const {
    return resident_.size() * sizeof(GcdSample);
  }

  /// Encoded bytes written to spill files so far.
  [[nodiscard]] std::uint64_t spilled_bytes() const {
    return spilled_bytes_;
  }
  [[nodiscard]] std::size_t spilled_windows() const {
    return windows_.size();
  }
  /// GCD records ingested (before any deduplication).
  [[nodiscard]] std::uint64_t ingested_records() const {
    return ingested_records_;
  }
  /// Paths of the spill files written so far, in window order.
  [[nodiscard]] std::vector<std::string> spill_files() const;

  /// Publishes the `exaeff_spill_bytes` gauge (and friends) when
  /// metrics are enabled.
  void publish_metrics() const;

 private:
  void maybe_spill();

  struct Window {
    std::string path;
    std::unique_ptr<ArchiveReader> reader;
  };

  SpillConfig config_;
  std::vector<GcdSample> resident_;
  std::vector<Window> windows_;
  double energy_j_ = 0.0;
  double cpu_energy_j_ = 0.0;
  double t_lo_ = 0.0;
  double t_hi_ = 0.0;
  bool any_gcd_ = false;
  std::uint64_t spilled_bytes_ = 0;
  std::uint64_t ingested_records_ = 0;
  mutable std::vector<GcdSample> scratch_;  ///< backs series_view()
};

}  // namespace exaeff::telemetry
