// exaeff/telemetry/archive.h
//
// File-backed telemetry archives: the storage format a site would keep
// its campaign history in.  An archive is a sequence of independently
// framed codec chunks followed by a trailing index and a fixed-size
// footer:
//
//   [8B magic "EXATEL02"]
//   [chunk 0 payload][chunk 1 payload]...          (codec byte streams)
//   [index: one 64-byte entry per chunk]           (extents + CRC)
//   [footer: index offset, chunk count, index CRC, 8B tail magic]
//
// Each index entry carries the chunk's record count, time extent,
// channel-key extent, byte offset/length and a CRC-32 of the payload,
// so readback seeks the index from the end of the file and decodes only
// the chunks a query touches instead of the whole file.  Streams are
// used for writing and whole-file reads so tests can use memory
// buffers; `ArchiveReader` maps a file read-only (with a plain read
// fallback) for query-driven readback.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "telemetry/codec.h"
#include "telemetry/store.h"

namespace exaeff::telemetry {

/// One entry of the trailing chunk index.
struct ChunkInfo {
  std::uint64_t records = 0;
  double t_min_s = 0.0;        ///< min timestamp in the chunk
  double t_max_s = 0.0;        ///< max timestamp in the chunk
  std::uint64_t key_min = 0;   ///< min (node_id << 16 | gcd_index)
  std::uint64_t key_max = 0;   ///< max (node_id << 16 | gcd_index)
  std::uint64_t offset = 0;    ///< payload offset from the file start
  std::uint64_t bytes = 0;     ///< payload byte length
  std::uint32_t checksum = 0;  ///< CRC-32 (IEEE) of the payload
};

/// Archive summary (readable from the index without decoding payloads).
struct ArchiveInfo {
  std::uint64_t records = 0;
  double t_min_s = 0.0;
  double t_max_s = 0.0;
  std::uint64_t payload_bytes = 0;  ///< sum of chunk payload bytes
  std::uint32_t checksum = 0;       ///< CRC-32 of the index block
  std::uint64_t chunks = 0;
};

/// Default chunking for whole-stream writes: large enough to amortize
/// per-chunk headers, small enough that a point query decodes little.
inline constexpr std::size_t kDefaultChunkRecords = 65536;

/// Incremental archive writer: frame chunks one at a time, then seal the
/// index.  This is what the spill store uses — each closed spill window
/// becomes one or more chunks without the whole stream ever being
/// resident.
class ChunkedArchiveWriter {
 public:
  /// Starts an archive on `os` (writes the header magic).
  explicit ChunkedArchiveWriter(std::ostream& os, CodecOptions options = {});

  /// Encodes `samples` as one chunk and appends it.  Empty spans are
  /// ignored.  Chunks should be appended in channel-major/time order if
  /// readers are to binary-search the index.
  void add_chunk(std::span<const GcdSample> samples);

  /// Writes the index + footer and returns the summary.  Must be called
  /// exactly once; no chunks may be added afterwards.
  ArchiveInfo finish();

  [[nodiscard]] std::size_t chunks_added() const { return chunks_.size(); }

 private:
  std::ostream& os_;
  CodecOptions options_;
  std::vector<ChunkInfo> chunks_;
  std::uint64_t offset_ = 0;
  bool finished_ = false;
};

/// Writes an archive of `samples` to `os`, split into chunks of
/// `chunk_records`.  Returns the summary.
ArchiveInfo write_archive(std::ostream& os,
                          std::span<const GcdSample> samples,
                          const CodecOptions& options = {},
                          std::size_t chunk_records = kDefaultChunkRecords);

/// Reads a whole archive; verifies the index and every chunk CRC and
/// returns the samples in chunk order.  Throws ParseError on corruption.
/// The archive must span the rest of the stream.
[[nodiscard]] std::vector<GcdSample> read_archive(std::istream& is);

/// Reads a whole archive and streams the decoded records into `sink`,
/// one span batch per chunk (per-record for sinks that don't override
/// the batch call).  Returns the archive summary.  Throws ParseError on
/// corruption; nothing is delivered in that case.
ArchiveInfo read_archive(std::istream& is, TelemetrySink& sink);

/// Reads just the summary.  The payload is not decoded but every chunk
/// CRC is still verified.
[[nodiscard]] ArchiveInfo read_archive_info(std::istream& is);

/// CRC-32 (IEEE 802.3) of a byte span — exposed for tests.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data);

/// Query-driven archive readback over a file.  The file is mapped
/// read-only with `mmap` so decoding touches only the pages of the
/// chunks a query needs; when mapping is unavailable (or the
/// `EXAEFF_NO_MMAP` environment variable is set) the reader falls back
/// to reading the file into memory through a stream.  The index is
/// validated eagerly; chunk payloads are CRC-checked lazily, on first
/// decode, with the chunk named in the error.
class ArchiveReader {
 public:
  explicit ArchiveReader(const std::string& path);
  ~ArchiveReader();
  ArchiveReader(const ArchiveReader&) = delete;
  ArchiveReader& operator=(const ArchiveReader&) = delete;

  [[nodiscard]] const ArchiveInfo& info() const { return info_; }
  [[nodiscard]] std::span<const ChunkInfo> chunks() const { return chunks_; }
  [[nodiscard]] const std::string& path() const { return path_; }
  /// True when the file is mmap-backed (false on the stream fallback).
  [[nodiscard]] bool mmap_active() const { return mapped_ != nullptr; }

  /// Decodes one chunk (CRC-verified).  Throws ParseError with the
  /// chunk named on corruption.
  [[nodiscard]] std::vector<GcdSample> decode_chunk(std::size_t index) const;

  /// Delivers every record with t in [t0, t1) to `sink` as span batches
  /// (maximal contiguous in-range runs), decoding only chunks whose
  /// time extent intersects the range.  Returns the record count
  /// delivered.
  std::uint64_t visit_time_range(double t0_s, double t1_s,
                                 TelemetrySink& sink) const;

  /// Appends the (node, gcd) series restricted to t in [t0, t1) to
  /// `out`, in chunk order.  Binary-searches the index when chunks are
  /// key-ordered (which spill files guarantee); otherwise scans it.
  void append_series(std::uint32_t node_id, std::uint16_t gcd_index,
                     double t0_s, double t1_s,
                     std::vector<GcdSample>& out) const;

 private:
  [[nodiscard]] std::span<const std::uint8_t> bytes() const;

  std::string path_;
  ArchiveInfo info_;
  std::vector<ChunkInfo> chunks_;
  bool key_ordered_ = false;
  void* mapped_ = nullptr;  ///< mmap base or nullptr on fallback
  std::size_t size_ = 0;
  std::vector<std::uint8_t> fallback_;
};

}  // namespace exaeff::telemetry
