// exaeff/telemetry/archive.h
//
// File-backed telemetry archives: the storage format a site would keep
// its campaign history in.  An archive is the codec's compact encoding
// framed with a small footer (record count, time extent, CRC), written
// and read through streams so tests can use memory buffers and tools
// can use files.
#pragma once

#include <iosfwd>
#include <string>

#include "telemetry/codec.h"
#include "telemetry/store.h"

namespace exaeff::telemetry {

/// Archive summary (readable without decoding the payload).
struct ArchiveInfo {
  std::uint64_t records = 0;
  double t_min_s = 0.0;
  double t_max_s = 0.0;
  std::uint64_t payload_bytes = 0;
  std::uint32_t checksum = 0;
};

/// Writes an archive of `samples` to `os`.  Returns the summary.
ArchiveInfo write_archive(std::ostream& os,
                          std::span<const GcdSample> samples,
                          const CodecOptions& options = {});

/// Reads an archive; verifies the checksum and returns the samples.
/// Throws ParseError on corruption.
[[nodiscard]] std::vector<GcdSample> read_archive(std::istream& is);

/// Reads an archive and streams the decoded records into `sink` as one
/// span batch (per-record for sinks that don't override the batch
/// call).  Returns the archive summary.  Throws ParseError on
/// corruption; nothing is delivered in that case.
ArchiveInfo read_archive(std::istream& is, TelemetrySink& sink);

/// Reads just the summary (fast; payload is skipped, checksum is still
/// verified).
[[nodiscard]] ArchiveInfo read_archive_info(std::istream& is);

/// CRC-32 (IEEE 802.3) of a byte span — exposed for tests.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data);

}  // namespace exaeff::telemetry
