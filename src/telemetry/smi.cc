#include "telemetry/smi.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace exaeff::telemetry {

SamplerSpec rocm_smi_sampler() {
  SamplerSpec s;
  s.period_s = 1.0;
  s.offset_w = 4.0;
  s.gain = 1.00;
  s.noise_stddev_w = 2.5;
  return s;
}

SamplerSpec oob_sensor_sampler() {
  SamplerSpec s;
  s.period_s = 2.0;
  s.offset_w = -2.0;
  s.gain = 0.995;
  s.noise_stddev_w = 4.0;
  return s;
}

namespace {
/// Linear interpolation of the ground-truth trace at time t.
double truth_at(const std::vector<gpusim::TracePoint>& truth, double t) {
  if (truth.empty()) return 0.0;
  if (t <= truth.front().t_s) return truth.front().power_w;
  if (t >= truth.back().t_s) return truth.back().power_w;
  const auto it = std::lower_bound(
      truth.begin(), truth.end(), t,
      [](const gpusim::TracePoint& p, double tt) { return p.t_s < tt; });
  const auto hi = it;
  const auto lo = it - 1;
  const double span = hi->t_s - lo->t_s;
  if (span <= 0.0) return hi->power_w;
  const double a = (t - lo->t_s) / span;
  return lo->power_w + a * (hi->power_w - lo->power_w);
}

double series_at(const std::vector<SamplePoint>& s, double t) {
  if (s.empty()) return 0.0;
  if (t <= s.front().t_s) return s.front().power_w;
  if (t >= s.back().t_s) return s.back().power_w;
  const auto it = std::lower_bound(
      s.begin(), s.end(), t,
      [](const SamplePoint& p, double tt) { return p.t_s < tt; });
  const auto hi = it;
  const auto lo = it - 1;
  const double span = hi->t_s - lo->t_s;
  if (span <= 0.0) return hi->power_w;
  const double a = (t - lo->t_s) / span;
  return lo->power_w + a * (hi->power_w - lo->power_w);
}
}  // namespace

std::vector<SamplePoint> sample_trace(
    const std::vector<gpusim::TracePoint>& truth, const SamplerSpec& sampler,
    double t0, double t1, Rng& rng) {
  EXAEFF_REQUIRE(sampler.period_s > 0.0, "sampler period must be positive");
  EXAEFF_REQUIRE(t1 >= t0, "sampling interval must be non-empty");
  std::vector<SamplePoint> out;
  out.reserve(static_cast<std::size_t>((t1 - t0) / sampler.period_s) + 1);
  for (double t = t0; t < t1; t += sampler.period_s) {
    const double p = truth_at(truth, t);
    const double measured =
        sampler.gain * p + sampler.offset_w +
        rng.normal(0.0, sampler.noise_stddev_w);
    out.push_back(SamplePoint{t, std::max(0.0, measured)});
  }
  return out;
}

std::vector<SamplePoint> aggregate_series(
    const std::vector<SamplePoint>& series, double window_s) {
  EXAEFF_REQUIRE(window_s > 0.0, "aggregation window must be positive");
  std::vector<SamplePoint> out;
  if (series.empty()) return out;
  double window_start = std::floor(series.front().t_s / window_s) * window_s;
  double sum = 0.0;
  std::size_t count = 0;
  for (const auto& p : series) {
    const double w = std::floor(p.t_s / window_s) * window_s;
    if (w > window_start && count > 0) {
      out.push_back(
          SamplePoint{window_start, sum / static_cast<double>(count)});
      sum = 0.0;
      count = 0;
      window_start = w;
    }
    sum += p.power_w;
    ++count;
  }
  if (count > 0) {
    out.push_back(SamplePoint{window_start, sum / static_cast<double>(count)});
  }
  return out;
}

Agreement compare_series(const std::vector<SamplePoint>& a,
                         const std::vector<SamplePoint>& b) {
  EXAEFF_REQUIRE(!a.empty() && !b.empty(), "cannot compare empty series");
  // Evaluate on the coarser series' timestamps.
  const auto& coarse = a.size() <= b.size() ? a : b;
  const auto& fine = a.size() <= b.size() ? b : a;

  double sum_abs = 0.0;
  double sum_ref = 0.0;
  double sx = 0.0, sy = 0.0, sxx = 0.0, syy = 0.0, sxy = 0.0;
  const auto n = static_cast<double>(coarse.size());
  for (const auto& p : coarse) {
    const double x = p.power_w;
    const double y = series_at(fine, p.t_s);
    sum_abs += std::abs(x - y);
    sum_ref += x;
    sx += x;
    sy += y;
    sxx += x * x;
    syy += y * y;
    sxy += x * y;
  }
  Agreement ag;
  ag.mean_abs_err_w = sum_abs / n;
  ag.mean_rel_err = sum_ref > 0.0 ? sum_abs / sum_ref : 0.0;
  const double cov = sxy - sx * sy / n;
  const double vx = sxx - sx * sx / n;
  const double vy = syy - sy * sy / n;
  ag.correlation = (vx > 0.0 && vy > 0.0) ? cov / std::sqrt(vx * vy) : 0.0;
  return ag;
}

}  // namespace exaeff::telemetry
