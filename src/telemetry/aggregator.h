// exaeff/telemetry/aggregator.h
//
// 2 s -> 15 s aggregation stage.  The paper (§III-A): "The logs are
// captured at a frequency of 2-second intervals and are aggregated in the
// pre-processing state to make it 15-second intervals."  The aggregator
// consumes raw sensor samples and emits window-mean records aligned to
// multiples of the window length.
//
// Degraded-input policy (deterministic and order-robust):
//   * Late samples — samples whose window closed before they arrived (the
//     channel has already advanced past, or emitted, that window) — are
//     dropped and counted, never merged into the wrong window.
//   * Duplicate timestamps (a sample with the same time as the channel's
//     most recent one) resolve last-writer-wins: the newer value replaces
//     the older contribution.
//   * Reordering *within* the open window is harmless: a window mean is
//     order-invariant.
//   * With a GapPolicy set, each window's coverage fraction
//     (samples / expected samples per window) is computed and windows
//     below `min_coverage` are suppressed and counted instead of emitting
//     a mean computed from too few sensor readings.
#pragma once

#include <unordered_map>

#include "common/error.h"
#include "telemetry/sample.h"

namespace exaeff::telemetry {

/// Coverage policy for lossy streams.  Default-constructed policy (period
/// 0) disables coverage accounting, preserving the historical behaviour
/// of emitting every non-empty window.
struct GapPolicy {
  double expected_period_s = 0.0;  ///< raw sample cadence; 0 = unknown
  double min_coverage = 0.0;       ///< suppress windows below this fraction

  void validate(double window_s) const {
    EXAEFF_REQUIRE(expected_period_s >= 0.0,
                   "expected sample period must be >= 0");
    EXAEFF_REQUIRE(expected_period_s <= window_s || expected_period_s == 0.0,
                   "expected sample period must fit in the window");
    EXAEFF_REQUIRE(min_coverage >= 0.0 && min_coverage <= 1.0,
                   "min coverage must be in [0, 1]");
  }
};

/// Streaming window-mean aggregator for per-GCD (and node) channels.
///
/// Samples for one channel should arrive in non-decreasing time order;
/// different channels may interleave arbitrarily.  Out-of-order and
/// duplicate samples are handled by the documented policy above.  Call
/// `flush()` after the last sample to emit trailing partial windows.
class Aggregator final : public TelemetrySink {
 public:
  /// `downstream` receives the aggregated records. `window_s` is the
  /// output resolution (15 s on Frontier).
  Aggregator(TelemetrySink& downstream, double window_s = 15.0)
      : downstream_(downstream), window_s_(window_s) {
    EXAEFF_REQUIRE(window_s > 0.0, "aggregation window must be positive");
  }

  /// Enables coverage accounting; call before the first sample.
  void set_gap_policy(const GapPolicy& policy) {
    policy.validate(window_s_);
    gap_ = policy;
  }
  [[nodiscard]] const GapPolicy& gap_policy() const { return gap_; }

  /// Pre-sizes the channel tables for a known channel population (e.g.
  /// gcds_per_node() + 1 for a node run), avoiding rehash churn during
  /// ingest.  Purely a capacity hint; safe to skip or over-estimate.
  void reserve_channels(std::size_t gcd_channels,
                        std::size_t node_channels) {
    gcd_windows_.reserve(gcd_channels);
    node_windows_.reserve(node_channels);
  }

  void on_gcd_sample(const GcdSample& sample) override;
  void on_node_sample(const NodeSample& sample) override;

  /// Batch fast paths: identical per-sample semantics, but the channel
  /// accumulator lookup is cached across consecutive same-channel
  /// samples — the common case for batched producers, which deliver one
  /// channel per span.
  void on_gcd_batch(std::span<const GcdSample> samples) override;
  void on_node_batch(std::span<const NodeSample> samples) override;

  /// Emits all partially-filled windows and publishes ingest/emit
  /// tallies to the metrics registry (when enabled).  Idempotent.
  void flush();

  [[nodiscard]] double window_s() const { return window_s_; }

  /// Raw samples consumed since construction (all channels).
  [[nodiscard]] std::uint64_t samples_in() const { return samples_in_; }
  /// Aggregated window records emitted since construction.
  [[nodiscard]] std::uint64_t windows_out() const { return windows_out_; }
  /// Samples rejected because their window had already closed.
  [[nodiscard]] std::uint64_t late_samples() const { return late_; }
  /// Samples that replaced an earlier same-timestamp reading (LWW).
  [[nodiscard]] std::uint64_t duplicate_samples() const {
    return duplicates_;
  }
  /// Windows suppressed by the gap policy's coverage floor.
  [[nodiscard]] std::uint64_t low_coverage_windows() const {
    return low_coverage_;
  }

 private:
  struct Accum {
    double window_start = 0.0;
    double power_sum = 0.0;
    double aux_sum = 0.0;  // node_input for node channels
    std::size_t count = 0;
    bool active = false;
    // Duplicate / late bookkeeping.
    double last_t = 0.0;
    double last_power = 0.0;
    double last_aux = 0.0;
    double watermark = -1.0e300;  ///< start of the last closed window
  };

  /// Channel key: node_id in the high bits, gcd (or 0xFFFF for the node
  /// channel) in the low bits.
  [[nodiscard]] static std::uint64_t key(std::uint32_t node,
                                         std::uint16_t gcd) {
    return (static_cast<std::uint64_t>(node) << 16) | gcd;
  }

  /// Coverage gate shared by both channel kinds; true = emit.
  [[nodiscard]] bool passes_coverage(const Accum& acc);

  void emit_gcd(std::uint64_t channel_key, const Accum& acc);
  void emit_node(std::uint64_t channel_key, const Accum& acc);

  /// Late/duplicate triage shared by both channel kinds.  Returns false
  /// when the sample was fully handled (late-dropped or LWW-replaced).
  bool admit(Accum& acc, double window_start, double t, double value,
             double aux);

  /// Per-sample ingest cores; the single-sample virtuals and the batch
  /// loops funnel through these with a pre-resolved accumulator.
  void ingest_gcd(std::uint64_t channel_key, Accum& acc,
                  const GcdSample& sample);
  void ingest_node(std::uint64_t channel_key, Accum& acc,
                   const NodeSample& sample);

  TelemetrySink& downstream_;
  double window_s_;
  GapPolicy gap_;
  std::unordered_map<std::uint64_t, Accum> gcd_windows_;
  std::unordered_map<std::uint64_t, Accum> node_windows_;
  // Last-channel cache for the per-sample path: telemetry arrives in
  // long per-channel runs, so most samples hit the same accumulator as
  // the one before.  unordered_map elements have stable addresses, so
  // the cached pointer survives unrelated inserts (entries are never
  // erased).
  std::uint64_t last_gcd_key_ = ~std::uint64_t{0};
  Accum* last_gcd_acc_ = nullptr;
  std::uint64_t last_node_key_ = ~std::uint64_t{0};
  Accum* last_node_acc_ = nullptr;
  // Plain tallies on the per-sample path (no atomics); flush() publishes
  // the delta since the previous publish into the metrics registry.
  std::uint64_t samples_in_ = 0;
  std::uint64_t windows_out_ = 0;
  std::uint64_t late_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t low_coverage_ = 0;
  std::uint64_t published_in_ = 0;
  std::uint64_t published_out_ = 0;
  std::uint64_t published_late_ = 0;
  std::uint64_t published_dup_ = 0;
  std::uint64_t published_lowcov_ = 0;
};

}  // namespace exaeff::telemetry
