// exaeff/telemetry/aggregator.h
//
// 2 s -> 15 s aggregation stage.  The paper (§III-A): "The logs are
// captured at a frequency of 2-second intervals and are aggregated in the
// pre-processing state to make it 15-second intervals."  The aggregator
// consumes raw sensor samples and emits window-mean records aligned to
// multiples of the window length.
#pragma once

#include <unordered_map>

#include "common/error.h"
#include "telemetry/sample.h"

namespace exaeff::telemetry {

/// Streaming window-mean aggregator for per-GCD (and node) channels.
///
/// Samples for one channel must arrive in non-decreasing time order;
/// different channels may interleave arbitrarily.  Call `flush()` after
/// the last sample to emit trailing partial windows.
class Aggregator final : public TelemetrySink {
 public:
  /// `downstream` receives the aggregated records. `window_s` is the
  /// output resolution (15 s on Frontier).
  Aggregator(TelemetrySink& downstream, double window_s = 15.0)
      : downstream_(downstream), window_s_(window_s) {
    EXAEFF_REQUIRE(window_s > 0.0, "aggregation window must be positive");
  }

  void on_gcd_sample(const GcdSample& sample) override;
  void on_node_sample(const NodeSample& sample) override;

  /// Emits all partially-filled windows and publishes ingest/emit
  /// tallies to the metrics registry (when enabled).  Idempotent.
  void flush();

  [[nodiscard]] double window_s() const { return window_s_; }

  /// Raw samples consumed since construction (all channels).
  [[nodiscard]] std::uint64_t samples_in() const { return samples_in_; }
  /// Aggregated window records emitted since construction.
  [[nodiscard]] std::uint64_t windows_out() const { return windows_out_; }

 private:
  struct Accum {
    double window_start = 0.0;
    double power_sum = 0.0;
    double aux_sum = 0.0;  // node_input for node channels
    std::size_t count = 0;
    bool active = false;
  };

  /// Channel key: node_id in the high bits, gcd (or 0xFFFF for the node
  /// channel) in the low bits.
  [[nodiscard]] static std::uint64_t key(std::uint32_t node,
                                         std::uint16_t gcd) {
    return (static_cast<std::uint64_t>(node) << 16) | gcd;
  }

  void emit_gcd(std::uint64_t channel_key, const Accum& acc);
  void emit_node(std::uint64_t channel_key, const Accum& acc);

  TelemetrySink& downstream_;
  double window_s_;
  std::unordered_map<std::uint64_t, Accum> gcd_windows_;
  std::unordered_map<std::uint64_t, Accum> node_windows_;
  // Plain tallies on the per-sample path (no atomics); flush() publishes
  // the delta since the previous publish into the metrics registry.
  std::uint64_t samples_in_ = 0;
  std::uint64_t windows_out_ = 0;
  std::uint64_t published_in_ = 0;
  std::uint64_t published_out_ = 0;
};

}  // namespace exaeff::telemetry
