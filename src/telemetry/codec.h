// exaeff/telemetry/codec.h
//
// Compact binary codec for telemetry streams.  The paper's discussion
// flags the operational cost of fleet telemetry: "HPC centers need to
// have the infrastructure to support huge data storage needs."  A 15 s
// per-GCD stream from a 9408-node fleet is ~435 M records/day; stored
// naively (CSV or 16-byte structs) that is tens of GB/day.
//
// The codec exploits the stream's structure:
//   * records are grouped per channel (node, gcd) and sorted by time, so
//     timestamps delta-encode to a constant (the window length) — one
//     varint, usually one byte;
//   * power changes slowly within a phase, so 0.25 W-quantized power
//     deltas are small signed varints (zigzag-encoded).
//
// Typical campaigns compress ~4-6x against the raw struct encoding while
// staying exact to the quantization step.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "telemetry/sample.h"

namespace exaeff::telemetry {

/// Codec parameters.
///
/// The default mode quantizes (0.25 W / 1 s) and delta-encodes — the
/// archival trade.  `lossless = true` switches to an XOR-previous bit
/// encoding of the raw float/double channels: timestamps XOR their
/// predecessor's bit pattern (byte-swapped so the grid-induced trailing
/// zero bytes become leading zeros the varint drops), power XORs the
/// previous float's bits.  Lossless decode returns bit-identical
/// records, which is what spill files need to answer queries exactly.
struct CodecOptions {
  double power_quantum_w = 0.25;  ///< power quantization step
  double time_quantum_s = 1.0;    ///< timestamp quantization step
  bool lossless = false;          ///< exact bit round-trip, no quantization
};

/// Encodes records into a compact byte buffer.  Records are re-grouped
/// per (node, gcd) channel and time-sorted internally; decode returns
/// them in channel-major, time-ascending order.
[[nodiscard]] std::vector<std::uint8_t> encode_samples(
    std::span<const GcdSample> samples, const CodecOptions& options = {});

/// Decodes a buffer produced by encode_samples.  Throws ParseError on a
/// corrupt or truncated buffer.
[[nodiscard]] std::vector<GcdSample> decode_samples(
    std::span<const std::uint8_t> buffer);

/// Bytes per record of the naive in-memory representation.
inline constexpr std::size_t kRawRecordBytes = sizeof(GcdSample);

/// Compression ratio achieved by a buffer for a record count.
[[nodiscard]] constexpr double compression_ratio(std::size_t records,
                                                 std::size_t bytes) {
  return bytes > 0 ? static_cast<double>(records * kRawRecordBytes) /
                         static_cast<double>(bytes)
                   : 0.0;
}

// --- varint primitives (exposed for tests) ------------------------------

/// Appends an unsigned LEB128 varint.
void put_varint(std::vector<std::uint8_t>& out, std::uint64_t value);

/// Reads an unsigned LEB128 varint; advances `pos`.
[[nodiscard]] std::uint64_t get_varint(std::span<const std::uint8_t> buf,
                                       std::size_t& pos);

/// ZigZag mapping for signed values.
[[nodiscard]] constexpr std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
[[nodiscard]] constexpr std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

}  // namespace exaeff::telemetry
