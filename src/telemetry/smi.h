// exaeff/telemetry/smi.h
//
// In-band sampling (the ROCm-SMI analogue) and out-of-band sensor
// sampling of the same ground-truth power signal, plus the agreement
// metrics behind Fig 2(a).  Both samplers observe the same underlying
// trace; they differ in period, calibration offset and noise — the paper
// demonstrates the two channels agree well enough that the out-of-band
// telemetry can stand in for in-band measurements at fleet scale.
#pragma once

#include <functional>
#include <vector>

#include "common/rng.h"
#include "gpusim/simulator.h"

namespace exaeff::telemetry {

/// One point of a sampled power series.
struct SamplePoint {
  double t_s = 0.0;
  double power_w = 0.0;
};

/// Sampler characteristics.
struct SamplerSpec {
  double period_s = 1.0;       ///< sampling period
  double offset_w = 0.0;       ///< systematic calibration offset
  double gain = 1.0;           ///< systematic gain error
  double noise_stddev_w = 3.0; ///< white measurement noise
};

/// ROCm-SMI-like in-band sampler: 1 s period, small positive offset
/// (driver-side estimation includes some SoC overhead).
[[nodiscard]] SamplerSpec rocm_smi_sampler();

/// Out-of-band node-sensor sampler: 2 s period, slightly different
/// calibration (shunt-based), a touch more noise.
[[nodiscard]] SamplerSpec oob_sensor_sampler();

/// Samples a ground-truth trace (piecewise-linear in time) with the given
/// sampler over [t0, t1).
[[nodiscard]] std::vector<SamplePoint> sample_trace(
    const std::vector<gpusim::TracePoint>& truth, const SamplerSpec& sampler,
    double t0, double t1, Rng& rng);

/// Mean-aggregates a sampled series into windows of `window_s` (the 15 s
/// pre-processing step applied to the out-of-band channel).
[[nodiscard]] std::vector<SamplePoint> aggregate_series(
    const std::vector<SamplePoint>& series, double window_s);

/// Agreement metrics between two series (resampled onto the coarser
/// series' timestamps by linear interpolation).
struct Agreement {
  double mean_abs_err_w = 0.0;   ///< mean absolute difference
  double mean_rel_err = 0.0;     ///< mean |diff| / mean reference power
  double correlation = 0.0;      ///< Pearson correlation
};

[[nodiscard]] Agreement compare_series(const std::vector<SamplePoint>& a,
                                       const std::vector<SamplePoint>& b);

}  // namespace exaeff::telemetry
