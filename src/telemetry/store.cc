#include "telemetry/store.h"

#include <algorithm>
#include <charconv>
#include <istream>
#include <ostream>

#include "common/csv.h"
#include "common/error.h"
#include "obs/metrics.h"

namespace exaeff::telemetry {

namespace {
double to_double(const std::string& s) {
  double v = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw ParseError("bad numeric field in telemetry CSV: '" + s + "'");
  }
  return v;
}
}  // namespace

void TelemetryStore::publish_metrics() const {
  if (!obs::metrics_enabled()) return;
  auto& reg = obs::MetricsRegistry::global();
  reg.gauge("exaeff_store_samples", "Records retained by TelemetryStore")
      .set(static_cast<double>(gcd_samples_.size() + node_samples_.size()));
  reg.gauge("exaeff_store_bytes",
            "Bytes of sample payload retained by TelemetryStore")
      .set(static_cast<double>(retained_bytes()));
}

void TelemetryStore::sort() {
  publish_metrics();
  std::sort(gcd_samples_.begin(), gcd_samples_.end(),
            [](const GcdSample& a, const GcdSample& b) {
              if (a.node_id != b.node_id) return a.node_id < b.node_id;
              if (a.gcd_index != b.gcd_index) return a.gcd_index < b.gcd_index;
              return a.t_s < b.t_s;
            });
  sorted_ = true;
}

std::vector<GcdSample> TelemetryStore::series(std::uint32_t node_id,
                                              std::uint16_t gcd_index,
                                              double t0, double t1) const {
  EXAEFF_REQUIRE(sorted_, "call sort() before series()");
  const auto lo = std::partition_point(
      gcd_samples_.begin(), gcd_samples_.end(), [&](const GcdSample& s) {
        if (s.node_id != node_id) return s.node_id < node_id;
        if (s.gcd_index != gcd_index) return s.gcd_index < gcd_index;
        return s.t_s < t0;
      });
  std::vector<GcdSample> out;
  for (auto it = lo; it != gcd_samples_.end() && it->node_id == node_id &&
                     it->gcd_index == gcd_index && it->t_s < t1;
       ++it) {
    out.push_back(*it);
  }
  return out;
}

double TelemetryStore::total_gpu_energy_j() const {
  double e = 0.0;
  for (const auto& s : gcd_samples_) e += s.power_w * window_s_;
  return e;
}

double TelemetryStore::total_cpu_energy_j() const {
  double e = 0.0;
  for (const auto& s : node_samples_) e += s.cpu_power_w * window_s_;
  return e;
}

std::pair<double, double> TelemetryStore::time_extent() const {
  if (gcd_samples_.empty()) return {0.0, 0.0};
  double lo = gcd_samples_.front().t_s;
  double hi = lo;
  for (const auto& s : gcd_samples_) {
    lo = std::min(lo, s.t_s);
    hi = std::max(hi, s.t_s);
  }
  return {lo, hi + window_s_};
}

void TelemetryStore::save_csv(std::ostream& os) const {
  CsvWriter w(os);
  w.write_row({"t_s", "node_id", "gcd", "power_w"});
  for (const auto& s : gcd_samples_) {
    w.write_row({std::to_string(s.t_s), std::to_string(s.node_id),
                 std::to_string(s.gcd_index), std::to_string(s.power_w)});
  }
}

TelemetryStore TelemetryStore::load_csv(std::istream& is, double window_s) {
  TelemetryStore store(window_s);
  CsvReader r(is);
  std::vector<std::string> cells;
  bool header = true;
  while (r.read_row(cells)) {
    if (header) {
      header = false;
      continue;
    }
    if (cells.size() != 4) {
      throw ParseError("telemetry CSV rows must have 4 fields");
    }
    GcdSample s;
    s.t_s = to_double(cells[0]);
    s.node_id = static_cast<std::uint32_t>(to_double(cells[1]));
    s.gcd_index = static_cast<std::uint16_t>(to_double(cells[2]));
    s.power_w = static_cast<float>(to_double(cells[3]));
    store.on_gcd_sample(s);
  }
  return store;
}

}  // namespace exaeff::telemetry
