#include "telemetry/store.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <istream>
#include <memory>
#include <ostream>

#include "common/csv.h"
#include "common/error.h"
#include "obs/metrics.h"

namespace exaeff::telemetry {

namespace {
double to_double(const std::string& s, std::size_t line) {
  double v = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw ParseError("bad numeric field in telemetry CSV: '" + s + "'",
                     line);
  }
  if (!std::isfinite(v)) {
    throw ParseError("non-finite field in telemetry CSV: '" + s + "'",
                     line);
  }
  return v;
}

std::uint64_t to_u64(const std::string& s, std::size_t line) {
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw ParseError("bad integer field in telemetry CSV: '" + s + "'",
                     line);
  }
  return v;
}
}  // namespace

void TelemetryStore::publish_metrics() const {
  if (!obs::metrics_enabled()) return;
  auto& reg = obs::MetricsRegistry::global();
  reg.gauge("exaeff_store_samples", "Records retained by TelemetryStore")
      .set(static_cast<double>(gcd_samples_.size() + node_samples_.size()));
  reg.gauge("exaeff_store_bytes",
            "Bytes of sample payload retained by TelemetryStore")
      .set(static_cast<double>(retained_bytes()));
}

std::size_t TelemetryStore::sort() {
  publish_metrics();
  // Stable sort keeps insertion order among equal (node, gcd, t) keys so
  // the last-writer-wins dedupe below is deterministic.
  std::stable_sort(gcd_samples_.begin(), gcd_samples_.end(),
                   [](const GcdSample& a, const GcdSample& b) {
                     if (a.node_id != b.node_id) return a.node_id < b.node_id;
                     if (a.gcd_index != b.gcd_index) {
                       return a.gcd_index < b.gcd_index;
                     }
                     return a.t_s < b.t_s;
                   });
  std::size_t removed = 0;
  if (!gcd_samples_.empty()) {
    std::size_t kept = 0;
    for (std::size_t i = 1; i < gcd_samples_.size(); ++i) {
      const GcdSample& prev = gcd_samples_[kept];
      const GcdSample& cur = gcd_samples_[i];
      if (cur.node_id == prev.node_id && cur.gcd_index == prev.gcd_index &&
          cur.t_s == prev.t_s) {
        gcd_samples_[kept] = cur;  // later insertion wins
        ++removed;
      } else {
        gcd_samples_[++kept] = cur;
      }
    }
    gcd_samples_.resize(kept + 1);
  }
  std::stable_sort(node_samples_.begin(), node_samples_.end(),
                   [](const NodeSample& a, const NodeSample& b) {
                     if (a.node_id != b.node_id) return a.node_id < b.node_id;
                     return a.t_s < b.t_s;
                   });
  if (!node_samples_.empty()) {
    std::size_t kept = 0;
    for (std::size_t i = 1; i < node_samples_.size(); ++i) {
      const NodeSample& prev = node_samples_[kept];
      const NodeSample& cur = node_samples_[i];
      if (cur.node_id == prev.node_id && cur.t_s == prev.t_s) {
        node_samples_[kept] = cur;
        ++removed;
      } else {
        node_samples_[++kept] = cur;
      }
    }
    node_samples_.resize(kept + 1);
  }
  sorted_ = true;
  return removed;
}

std::span<const GcdSample> TelemetryStore::series_view(
    std::uint32_t node_id, std::uint16_t gcd_index, double t0,
    double t1) const {
  EXAEFF_REQUIRE(sorted_, "call sort() before series_view()");
  // Both ends by binary search over the (node, gcd, time) order — the
  // range query is O(log n) regardless of how many records it spans.
  const auto lo = std::partition_point(
      gcd_samples_.begin(), gcd_samples_.end(), [&](const GcdSample& s) {
        if (s.node_id != node_id) return s.node_id < node_id;
        if (s.gcd_index != gcd_index) return s.gcd_index < gcd_index;
        return s.t_s < t0;
      });
  const auto hi = std::partition_point(
      lo, gcd_samples_.end(), [&](const GcdSample& s) {
        if (s.node_id != node_id) return s.node_id < node_id;
        if (s.gcd_index != gcd_index) return s.gcd_index < gcd_index;
        return s.t_s < t1;
      });
  return {std::to_address(lo), static_cast<std::size_t>(hi - lo)};
}

std::vector<GcdSample> TelemetryStore::series(std::uint32_t node_id,
                                              std::uint16_t gcd_index,
                                              double t0, double t1) const {
  const auto view = series_view(node_id, gcd_index, t0, t1);
  return {view.begin(), view.end()};
}

std::vector<GcdSample> TelemetryStore::clean_series(
    std::uint32_t node_id, std::uint16_t gcd_index, double t0, double t1,
    const CleanPolicy& policy, SeriesQuality* quality) const {
  return clean_series_records(series(node_id, gcd_index, t0, t1), node_id,
                              gcd_index, t0, t1, window_s_, policy, quality);
}

std::vector<GcdSample> clean_series_records(
    std::vector<GcdSample> s, std::uint32_t node_id,
    std::uint16_t gcd_index, double t0, double t1, double window_s,
    const CleanPolicy& policy, SeriesQuality* quality) {
  EXAEFF_REQUIRE(policy.max_power_w >= policy.min_power_w,
                 "clean policy power range is inverted");
  EXAEFF_REQUIRE(policy.mad_k >= 0.0, "clean policy mad_k must be >= 0");
  SeriesQuality q;
  q.observed = s.size();

  // Range gate: non-finite and out-of-envelope readings are sensor
  // garbage regardless of the series shape.
  std::erase_if(s, [&](const GcdSample& r) {
    const bool bad = !std::isfinite(static_cast<double>(r.power_w)) ||
                     r.power_w < policy.min_power_w ||
                     r.power_w > policy.max_power_w;
    return bad;
  });

  // Robust spike gate: median / MAD, the standard stuck-and-spike filter
  // for slowly-varying power series.
  if (policy.mad_k > 0.0 && s.size() >= 4) {
    std::vector<double> v;
    v.reserve(s.size());
    for (const auto& r : s) v.push_back(static_cast<double>(r.power_w));
    const auto mid = v.begin() + static_cast<std::ptrdiff_t>(v.size() / 2);
    std::nth_element(v.begin(), mid, v.end());
    const double median = *mid;
    for (auto& x : v) x = std::abs(x - median);
    std::nth_element(v.begin(), mid, v.end());
    const double mad = *mid;
    if (mad > 0.0) {
      const double limit = policy.mad_k * 1.4826 * mad;
      std::erase_if(s, [&](const GcdSample& r) {
        return std::abs(static_cast<double>(r.power_w) - median) > limit;
      });
    }
  }
  q.rejected = q.observed - s.size();

  // Grid accounting and optional imputation.  The grid is the window-
  // aligned sample times the clean stream would have contained.
  const double first = std::ceil(t0 / window_s) * window_s;
  for (double t = first; t < t1; t += window_s) ++q.expected;
  if (policy.impute && !s.empty()) {
    std::vector<GcdSample> filled;
    filled.reserve(q.expected);
    std::size_t next = 0;  // first surviving record with t >= grid point
    for (double t = first; t < t1; t += window_s) {
      while (next < s.size() && s[next].t_s < t - 1e-9) ++next;
      if (next < s.size() && std::abs(s[next].t_s - t) < 1e-9) {
        filled.push_back(s[next]);
        continue;
      }
      GcdSample imp;
      imp.t_s = t;
      imp.node_id = node_id;
      imp.gcd_index = gcd_index;
      if (next == 0) {
        imp.power_w = s.front().power_w;  // before first: hold nearest
      } else if (next >= s.size()) {
        imp.power_w = s.back().power_w;  // after last: hold nearest
      } else {
        const GcdSample& a = s[next - 1];
        const GcdSample& b = s[next];
        const double f = (t - a.t_s) / (b.t_s - a.t_s);
        imp.power_w = static_cast<float>(
            (1.0 - f) * static_cast<double>(a.power_w) +
            f * static_cast<double>(b.power_w));
      }
      ++q.imputed;
      filled.push_back(imp);
    }
    s = std::move(filled);
  }
  if (quality != nullptr) *quality = q;
  return s;
}

double TelemetryStore::total_gpu_energy_j() const {
  double e = 0.0;
  for (const auto& s : gcd_samples_) e += s.power_w * window_s_;
  return e;
}

double TelemetryStore::total_cpu_energy_j() const {
  double e = 0.0;
  for (const auto& s : node_samples_) e += s.cpu_power_w * window_s_;
  return e;
}

std::pair<double, double> TelemetryStore::time_extent() const {
  if (gcd_samples_.empty()) return {0.0, 0.0};
  double lo = gcd_samples_.front().t_s;
  double hi = lo;
  for (const auto& s : gcd_samples_) {
    lo = std::min(lo, s.t_s);
    hi = std::max(hi, s.t_s);
  }
  return {lo, hi + window_s_};
}

void TelemetryStore::save_csv(std::ostream& os) const {
  CsvWriter w(os);
  w.write_row({"t_s", "node_id", "gcd", "power_w"});
  for (const auto& s : gcd_samples_) {
    w.write_row({std::to_string(s.t_s), std::to_string(s.node_id),
                 std::to_string(s.gcd_index), std::to_string(s.power_w)});
  }
}

TelemetryStore TelemetryStore::load_csv(std::istream& is, double window_s) {
  TelemetryStore store(window_s);
  CsvReader r(is);
  std::vector<std::string> cells;
  bool header = true;
  while (r.read_row(cells)) {
    const std::size_t line = r.row_line();
    if (header) {
      header = false;
      continue;
    }
    if (cells.size() != 4) {
      throw ParseError("telemetry CSV rows must have 4 fields, got " +
                           std::to_string(cells.size()),
                       line);
    }
    GcdSample s;
    s.t_s = to_double(cells[0], line);
    const std::uint64_t node = to_u64(cells[1], line);
    const std::uint64_t gcd = to_u64(cells[2], line);
    if (node > 0xFFFFFFFFULL) {
      throw ParseError("telemetry CSV node_id out of range", line);
    }
    if (gcd > 0xFFFFULL) {
      throw ParseError("telemetry CSV gcd index out of range", line);
    }
    s.node_id = static_cast<std::uint32_t>(node);
    s.gcd_index = static_cast<std::uint16_t>(gcd);
    s.power_w = static_cast<float>(to_double(cells[3], line));
    store.on_gcd_sample(s);
  }
  return store;
}

}  // namespace exaeff::telemetry
