#include "telemetry/codec.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/error.h"

namespace exaeff::telemetry {

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

std::uint64_t get_varint(std::span<const std::uint8_t> buf,
                         std::size_t& pos) {
  std::uint64_t value = 0;
  int shift = 0;
  for (;;) {
    if (pos >= buf.size()) {
      throw ParseError("telemetry codec: truncated varint");
    }
    const std::uint8_t byte = buf[pos++];
    if (shift >= 64) {
      throw ParseError("telemetry codec: varint overflow");
    }
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if (!(byte & 0x80)) return value;
    shift += 7;
  }
}

namespace {

constexpr std::uint32_t kMagic = 0x45544331;          // "ETC1" (quantized)
constexpr std::uint32_t kMagicLossless = 0x45544332;  // "ETC2" (exact bits)

std::uint64_t channel_key(const GcdSample& s) {
  return (static_cast<std::uint64_t>(s.node_id) << 16) | s.gcd_index;
}

// Campaign timestamps sit on the window grid, so consecutive doubles in
// a channel share sign/exponent and differ only in the integer-valued
// high-mantissa bits — their XOR has long runs of trailing zero bytes.
// Varints drop leading zeros, not trailing, so byte-swap before
// encoding.  Non-zero in, non-zero out, which keeps the head byte
// distinct from the channel-switch marker (varint 0).
std::uint64_t fold_time_bits(std::uint64_t bits) {
  return __builtin_bswap64(bits);
}

}  // namespace

std::vector<std::uint8_t> encode_samples(std::span<const GcdSample> samples,
                                         const CodecOptions& options) {
  EXAEFF_REQUIRE(options.lossless || (options.power_quantum_w > 0.0 &&
                                      options.time_quantum_s > 0.0),
                 "codec quanta must be positive");

  // Channel-major, time-ascending ordering maximizes delta locality.
  // Batched pipelines already produce that order, so test first and
  // encode straight from the caller's span — the copy + sort is only
  // paid for unordered input.  Output bytes are identical either way.
  const auto channel_time_less = [](const GcdSample& a, const GcdSample& b) {
    const auto ka = channel_key(a);
    const auto kb = channel_key(b);
    if (ka != kb) return ka < kb;
    return a.t_s < b.t_s;
  };
  std::vector<GcdSample> scratch;
  std::span<const GcdSample> sorted = samples;
  if (!std::is_sorted(samples.begin(), samples.end(), channel_time_less)) {
    scratch.assign(samples.begin(), samples.end());
    std::sort(scratch.begin(), scratch.end(), channel_time_less);
    sorted = scratch;
  }

  std::vector<std::uint8_t> out;
  out.reserve(sorted.size() * 3 + 64);

  if (options.lossless) {
    // Header: magic, record count.  No quanta — records round-trip
    // bit for bit.
    put_varint(out, kMagicLossless);
    put_varint(out, sorted.size());
    std::uint64_t prev_key = ~std::uint64_t{0};
    std::uint64_t prev_t_bits = 0;
    std::uint32_t prev_p_bits = 0;
    for (const auto& s : sorted) {
      const std::uint64_t key = channel_key(s);
      const auto t_bits = std::bit_cast<std::uint64_t>(s.t_s);
      const auto p_bits = std::bit_cast<std::uint32_t>(s.power_w);
      if (key != prev_key) {
        // Channel switch marker: varint 0 then the absolute channel
        // key, absolute (folded) time bits and power bits.
        put_varint(out, 0);
        put_varint(out, key);
        put_varint(out, fold_time_bits(t_bits));
        put_varint(out, p_bits);
        prev_key = key;
      } else {
        // Equal timestamps XOR to zero, which would collide with the
        // channel-switch marker — and the channel order contract
        // forbids them anyway.
        EXAEFF_REQUIRE(t_bits != prev_t_bits,
                       "codec requires strictly increasing timestamps per "
                       "channel");
        put_varint(out, fold_time_bits(t_bits ^ prev_t_bits));
        put_varint(out, p_bits ^ prev_p_bits);
      }
      prev_t_bits = t_bits;
      prev_p_bits = p_bits;
    }
    return out;
  }

  // Header: magic, record count, quanta (as micro-units).
  put_varint(out, kMagic);
  put_varint(out, sorted.size());
  put_varint(out, static_cast<std::uint64_t>(
                      std::llround(options.power_quantum_w * 1e6)));
  put_varint(out, static_cast<std::uint64_t>(
                      std::llround(options.time_quantum_s * 1e6)));

  std::uint64_t prev_key = ~std::uint64_t{0};
  std::int64_t prev_t = 0;
  std::int64_t prev_p = 0;
  for (const auto& s : sorted) {
    const std::uint64_t key = channel_key(s);
    const auto qt = static_cast<std::int64_t>(
        std::llround(s.t_s / options.time_quantum_s));
    const auto qp = static_cast<std::int64_t>(
        std::llround(s.power_w / options.power_quantum_w));
    if (key != prev_key) {
      // Channel switch marker: varint 0 then the absolute channel key,
      // absolute quantized time and power.  (A time delta of 0 cannot
      // occur inside a channel: records are strictly time-ascending.)
      put_varint(out, 0);
      put_varint(out, key);
      put_varint(out, zigzag(qt));
      put_varint(out, zigzag(qp));
      prev_key = key;
    } else {
      const std::uint64_t dt = static_cast<std::uint64_t>(qt - prev_t);
      EXAEFF_REQUIRE(dt > 0,
                     "codec requires strictly increasing timestamps per "
                     "channel");
      put_varint(out, dt);
      put_varint(out, zigzag(qp - prev_p));
    }
    prev_t = qt;
    prev_p = qp;
  }
  return out;
}

namespace {

std::vector<GcdSample> decode_lossless(std::span<const std::uint8_t> buffer,
                                       std::size_t pos) {
  const std::uint64_t count = get_varint(buffer, pos);
  // Every record consumes at least two payload bytes (head + power).
  if (count > (buffer.size() - pos)) {
    throw ParseError("telemetry codec: record count exceeds buffer size");
  }
  std::vector<GcdSample> out;
  out.reserve(count);
  std::uint64_t key = 0;
  std::uint64_t t_bits = 0;
  std::uint32_t p_bits = 0;
  bool have_channel = false;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t head = get_varint(buffer, pos);
    if (head == 0) {
      key = get_varint(buffer, pos);
      t_bits = fold_time_bits(get_varint(buffer, pos));
      p_bits = static_cast<std::uint32_t>(get_varint(buffer, pos));
      have_channel = true;
    } else {
      if (!have_channel) {
        throw ParseError("telemetry codec: delta before channel marker");
      }
      t_bits ^= fold_time_bits(head);
      p_bits ^= static_cast<std::uint32_t>(get_varint(buffer, pos));
    }
    GcdSample s;
    s.node_id = static_cast<std::uint32_t>(key >> 16);
    s.gcd_index = static_cast<std::uint16_t>(key & 0xFFFF);
    s.t_s = std::bit_cast<double>(t_bits);
    s.power_w = std::bit_cast<float>(p_bits);
    out.push_back(s);
  }
  if (pos != buffer.size()) {
    throw ParseError("telemetry codec: trailing bytes after last record");
  }
  return out;
}

}  // namespace

std::vector<GcdSample> decode_samples(std::span<const std::uint8_t> buffer) {
  std::size_t pos = 0;
  const std::uint64_t magic = get_varint(buffer, pos);
  if (magic == kMagicLossless) return decode_lossless(buffer, pos);
  if (magic != kMagic) {
    throw ParseError("telemetry codec: bad magic");
  }
  const std::uint64_t count = get_varint(buffer, pos);
  const double power_quantum =
      static_cast<double>(get_varint(buffer, pos)) / 1e6;
  const double time_quantum =
      static_cast<double>(get_varint(buffer, pos)) / 1e6;
  if (power_quantum <= 0.0 || time_quantum <= 0.0) {
    throw ParseError("telemetry codec: bad quanta");
  }
  // Every record consumes at least two payload bytes, so a count larger
  // than the remaining buffer is corruption — reject it before reserving
  // memory for it.
  if (count > (buffer.size() - pos)) {
    throw ParseError("telemetry codec: record count exceeds buffer size");
  }

  std::vector<GcdSample> out;
  out.reserve(count);
  std::uint64_t key = 0;
  std::int64_t qt = 0;
  std::int64_t qp = 0;
  bool have_channel = false;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t head = get_varint(buffer, pos);
    if (head == 0) {
      key = get_varint(buffer, pos);
      qt = unzigzag(get_varint(buffer, pos));
      qp = unzigzag(get_varint(buffer, pos));
      have_channel = true;
    } else {
      if (!have_channel) {
        throw ParseError("telemetry codec: delta before channel marker");
      }
      qt += static_cast<std::int64_t>(head);
      qp += unzigzag(get_varint(buffer, pos));
    }
    GcdSample s;
    s.node_id = static_cast<std::uint32_t>(key >> 16);
    s.gcd_index = static_cast<std::uint16_t>(key & 0xFFFF);
    s.t_s = static_cast<double>(qt) * time_quantum;
    s.power_w = static_cast<float>(static_cast<double>(qp) * power_quantum);
    out.push_back(s);
  }
  if (pos != buffer.size()) {
    throw ParseError("telemetry codec: trailing bytes after last record");
  }
  return out;
}

}  // namespace exaeff::telemetry
