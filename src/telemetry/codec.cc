#include "telemetry/codec.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace exaeff::telemetry {

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

std::uint64_t get_varint(std::span<const std::uint8_t> buf,
                         std::size_t& pos) {
  std::uint64_t value = 0;
  int shift = 0;
  for (;;) {
    if (pos >= buf.size()) {
      throw ParseError("telemetry codec: truncated varint");
    }
    const std::uint8_t byte = buf[pos++];
    if (shift >= 64) {
      throw ParseError("telemetry codec: varint overflow");
    }
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if (!(byte & 0x80)) return value;
    shift += 7;
  }
}

namespace {

constexpr std::uint32_t kMagic = 0x45544331;  // "ETC1"

std::uint64_t channel_key(const GcdSample& s) {
  return (static_cast<std::uint64_t>(s.node_id) << 16) | s.gcd_index;
}

}  // namespace

std::vector<std::uint8_t> encode_samples(std::span<const GcdSample> samples,
                                         const CodecOptions& options) {
  EXAEFF_REQUIRE(options.power_quantum_w > 0.0 &&
                     options.time_quantum_s > 0.0,
                 "codec quanta must be positive");

  // Channel-major, time-ascending ordering maximizes delta locality.
  // Batched pipelines already produce that order, so test first and
  // encode straight from the caller's span — the copy + sort is only
  // paid for unordered input.  Output bytes are identical either way.
  const auto channel_time_less = [](const GcdSample& a, const GcdSample& b) {
    const auto ka = channel_key(a);
    const auto kb = channel_key(b);
    if (ka != kb) return ka < kb;
    return a.t_s < b.t_s;
  };
  std::vector<GcdSample> scratch;
  std::span<const GcdSample> sorted = samples;
  if (!std::is_sorted(samples.begin(), samples.end(), channel_time_less)) {
    scratch.assign(samples.begin(), samples.end());
    std::sort(scratch.begin(), scratch.end(), channel_time_less);
    sorted = scratch;
  }

  std::vector<std::uint8_t> out;
  out.reserve(sorted.size() * 3 + 64);

  // Header: magic, record count, quanta (as micro-units).
  put_varint(out, kMagic);
  put_varint(out, sorted.size());
  put_varint(out, static_cast<std::uint64_t>(
                      std::llround(options.power_quantum_w * 1e6)));
  put_varint(out, static_cast<std::uint64_t>(
                      std::llround(options.time_quantum_s * 1e6)));

  std::uint64_t prev_key = ~std::uint64_t{0};
  std::int64_t prev_t = 0;
  std::int64_t prev_p = 0;
  for (const auto& s : sorted) {
    const std::uint64_t key = channel_key(s);
    const auto qt = static_cast<std::int64_t>(
        std::llround(s.t_s / options.time_quantum_s));
    const auto qp = static_cast<std::int64_t>(
        std::llround(s.power_w / options.power_quantum_w));
    if (key != prev_key) {
      // Channel switch marker: varint 0 then the absolute channel key,
      // absolute quantized time and power.  (A time delta of 0 cannot
      // occur inside a channel: records are strictly time-ascending.)
      put_varint(out, 0);
      put_varint(out, key);
      put_varint(out, zigzag(qt));
      put_varint(out, zigzag(qp));
      prev_key = key;
    } else {
      const std::uint64_t dt = static_cast<std::uint64_t>(qt - prev_t);
      EXAEFF_REQUIRE(dt > 0,
                     "codec requires strictly increasing timestamps per "
                     "channel");
      put_varint(out, dt);
      put_varint(out, zigzag(qp - prev_p));
    }
    prev_t = qt;
    prev_p = qp;
  }
  return out;
}

std::vector<GcdSample> decode_samples(std::span<const std::uint8_t> buffer) {
  std::size_t pos = 0;
  if (get_varint(buffer, pos) != kMagic) {
    throw ParseError("telemetry codec: bad magic");
  }
  const std::uint64_t count = get_varint(buffer, pos);
  const double power_quantum =
      static_cast<double>(get_varint(buffer, pos)) / 1e6;
  const double time_quantum =
      static_cast<double>(get_varint(buffer, pos)) / 1e6;
  if (power_quantum <= 0.0 || time_quantum <= 0.0) {
    throw ParseError("telemetry codec: bad quanta");
  }
  // Every record consumes at least two payload bytes, so a count larger
  // than the remaining buffer is corruption — reject it before reserving
  // memory for it.
  if (count > (buffer.size() - pos)) {
    throw ParseError("telemetry codec: record count exceeds buffer size");
  }

  std::vector<GcdSample> out;
  out.reserve(count);
  std::uint64_t key = 0;
  std::int64_t qt = 0;
  std::int64_t qp = 0;
  bool have_channel = false;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t head = get_varint(buffer, pos);
    if (head == 0) {
      key = get_varint(buffer, pos);
      qt = unzigzag(get_varint(buffer, pos));
      qp = unzigzag(get_varint(buffer, pos));
      have_channel = true;
    } else {
      if (!have_channel) {
        throw ParseError("telemetry codec: delta before channel marker");
      }
      qt += static_cast<std::int64_t>(head);
      qp += unzigzag(get_varint(buffer, pos));
    }
    GcdSample s;
    s.node_id = static_cast<std::uint32_t>(key >> 16);
    s.gcd_index = static_cast<std::uint16_t>(key & 0xFFFF);
    s.t_s = static_cast<double>(qt) * time_quantum;
    s.power_w = static_cast<float>(static_cast<double>(qp) * power_quantum);
    out.push_back(s);
  }
  if (pos != buffer.size()) {
    throw ParseError("telemetry codec: trailing bytes after last record");
  }
  return out;
}

}  // namespace exaeff::telemetry
