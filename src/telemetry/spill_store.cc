#include "telemetry/spill_store.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>

#include "common/atomic_file.h"
#include "common/error.h"
#include "obs/metrics.h"

namespace exaeff::telemetry {

namespace {

/// The (node, gcd, time) order TelemetryStore::sort() uses.
bool channel_time_less(const GcdSample& a, const GcdSample& b) {
  if (a.node_id != b.node_id) return a.node_id < b.node_id;
  if (a.gcd_index != b.gcd_index) return a.gcd_index < b.gcd_index;
  return a.t_s < b.t_s;
}

bool same_key(const GcdSample& a, const GcdSample& b) {
  return a.node_id == b.node_id && a.gcd_index == b.gcd_index &&
         a.t_s == b.t_s;
}

}  // namespace

SpillStore::SpillStore(SpillConfig config) : config_(std::move(config)) {
  EXAEFF_REQUIRE(!config_.dir.empty(), "spill store: empty spill dir");
  EXAEFF_REQUIRE(config_.window_s > 0.0,
                 "spill store: window_s must be positive");
}

void SpillStore::on_gcd_sample(const GcdSample& sample) {
  if (!any_gcd_) {
    t_lo_ = t_hi_ = sample.t_s;
    any_gcd_ = true;
  } else {
    t_lo_ = std::min(t_lo_, sample.t_s);
    t_hi_ = std::max(t_hi_, sample.t_s);
  }
  energy_j_ += sample.power_w * config_.window_s;
  ++ingested_records_;
  resident_.push_back(sample);
  maybe_spill();
}

// Node records fold to CPU energy on ingest and are not retained:
// SpillStore exposes no node-series query, and at paper scale the raw
// node stream (nodes × windows) is itself gigabytes — keeping it would
// defeat the memory budget.
void SpillStore::on_node_sample(const NodeSample& sample) {
  cpu_energy_j_ += sample.cpu_power_w * config_.window_s;
}

void SpillStore::on_gcd_batch(std::span<const GcdSample> samples) {
  if (samples.empty()) return;
  if (!any_gcd_) {
    t_lo_ = t_hi_ = samples.front().t_s;
    any_gcd_ = true;
  }
  // The energy sum runs in ingest order so it is the same operation
  // sequence TelemetryStore::total_gpu_energy_j() performs over its
  // (unsorted) buffer.
  for (const auto& s : samples) {
    t_lo_ = std::min(t_lo_, s.t_s);
    t_hi_ = std::max(t_hi_, s.t_s);
    energy_j_ += s.power_w * config_.window_s;
  }
  ingested_records_ += samples.size();
  // Exact growth: doubling reallocation would transiently hold ~1.5×
  // the window's bytes, which matters when the window is the budget.
  resident_.reserve(resident_.size() + samples.size());
  resident_.insert(resident_.end(), samples.begin(), samples.end());
  // Batches append whole, then the backstop fires once — a batch can
  // overshoot the budget by its own size, never more.
  maybe_spill();
}

void SpillStore::ingest_gcd_owned(std::vector<GcdSample>&& samples) {
  if (samples.empty()) return;
  if (!any_gcd_) {
    t_lo_ = t_hi_ = samples.front().t_s;
    any_gcd_ = true;
  }
  for (const auto& s : samples) {
    t_lo_ = std::min(t_lo_, s.t_s);
    t_hi_ = std::max(t_hi_, s.t_s);
    energy_j_ += s.power_w * config_.window_s;
  }
  ingested_records_ += samples.size();
  if (resident_.empty()) {
    resident_ = std::move(samples);
  } else {
    resident_.reserve(resident_.size() + samples.size());
    resident_.insert(resident_.end(), samples.begin(), samples.end());
  }
  maybe_spill();
}

void SpillStore::on_node_batch(std::span<const NodeSample> samples) {
  for (const auto& s : samples) {
    cpu_energy_j_ += s.cpu_power_w * config_.window_s;
  }
}

void SpillStore::maybe_spill() {
  if (config_.memory_budget_bytes > 0 &&
      retained_bytes() >= config_.memory_budget_bytes) {
    close_window();
  }
}

void SpillStore::close_window() {
  if (resident_.empty()) return;

  // TelemetryStore::sort() semantics for the window: stable sort by
  // (node, gcd, t), exact duplicate keys resolved last-writer-wins.
  // Small windows take std::stable_sort (fastest; record-sized
  // temporary).  Windows past the scratch limit sort via an index
  // permutation applied in place — 4 bytes/record of scratch instead
  // of 16 — because there the window IS the memory budget.  Both
  // produce the identical order (pinned in spill_store_test).
  if (resident_.size() <= config_.sort_scratch_limit_records) {
    std::stable_sort(resident_.begin(), resident_.end(),
                     channel_time_less);
  } else {
    EXAEFF_REQUIRE(resident_.size() <= UINT32_MAX,
                   "spill window exceeds 4G records");
    const auto n = static_cast<std::uint32_t>(resident_.size());
    std::vector<std::uint32_t> ord(n);
    for (std::uint32_t i = 0; i < n; ++i) ord[i] = i;
    std::sort(ord.begin(), ord.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                if (channel_time_less(resident_[a], resident_[b])) {
                  return true;
                }
                if (channel_time_less(resident_[b], resident_[a])) {
                  return false;
                }
                return a < b;  // insertion order among equals: stable
              });
    for (std::uint32_t start = 0; start < n; ++start) {
      if (ord[start] == start) continue;
      GcdSample tmp = resident_[start];
      std::uint32_t cur = start;
      while (ord[cur] != start) {
        const std::uint32_t next = ord[cur];
        resident_[cur] = resident_[next];
        ord[cur] = cur;
        cur = next;
      }
      resident_[cur] = tmp;
      ord[cur] = cur;
    }
  }
  std::size_t kept = 0;
  for (std::size_t i = 1; i < resident_.size(); ++i) {
    if (same_key(resident_[i], resident_[kept])) {
      resident_[kept] = resident_[i];  // later insertion wins
    } else {
      resident_[++kept] = resident_[i];
    }
  }
  resident_.resize(kept + 1);

  char name[32];
  std::snprintf(name, sizeof name, "win-%06zu.tel",
                config_.window_index_base + windows_.size());
  const std::string path = config_.dir + "/" + name;

  AtomicFile file(path);
  const auto info = write_archive(file.stream(), resident_, config_.codec);
  EXAEFF_REQUIRE(file.commit(),
                 "spill store: cannot write spill file '" + path + "'");
  // header + payload + index + footer, as written.
  spilled_bytes_ += 8 + info.payload_bytes + info.chunks * 64 + 32;

  Window w;
  w.path = path;
  w.reader = std::make_unique<ArchiveReader>(path);
  windows_.push_back(std::move(w));
  resident_.clear();  // keeps capacity for the next window
  publish_metrics();
}

std::vector<GcdSample> SpillStore::series(std::uint32_t node_id,
                                          std::uint16_t gcd_index,
                                          double t0, double t1) const {
  std::vector<GcdSample> out;
  // Gather in global insertion order: windows spill in ingest order and
  // the resident tail is newest.  A stable sort by time then keeps that
  // order among exact duplicates, so keeping the last occurrence per
  // timestamp reproduces TelemetryStore's last-writer-wins answer.
  for (const auto& w : windows_) {
    w.reader->append_series(node_id, gcd_index, t0, t1, out);
  }
  for (const auto& s : resident_) {
    if (s.node_id == node_id && s.gcd_index == gcd_index && s.t_s >= t0 &&
        s.t_s < t1) {
      out.push_back(s);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const GcdSample& a, const GcdSample& b) {
                     return a.t_s < b.t_s;
                   });
  std::size_t kept = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (kept > 0 && out[i].t_s == out[kept - 1].t_s) {
      out[kept - 1] = out[i];  // later insertion wins
    } else {
      out[kept++] = out[i];
    }
  }
  out.resize(kept);
  return out;
}

std::span<const GcdSample> SpillStore::series_view(std::uint32_t node_id,
                                                   std::uint16_t gcd_index,
                                                   double t0,
                                                   double t1) const {
  scratch_ = series(node_id, gcd_index, t0, t1);
  return scratch_;
}

std::vector<GcdSample> SpillStore::clean_series(
    std::uint32_t node_id, std::uint16_t gcd_index, double t0, double t1,
    const CleanPolicy& policy, SeriesQuality* quality) const {
  return clean_series_records(series(node_id, gcd_index, t0, t1), node_id,
                              gcd_index, t0, t1, config_.window_s, policy,
                              quality);
}

std::pair<double, double> SpillStore::time_extent() const {
  if (!any_gcd_) return {0.0, 0.0};
  return {t_lo_, t_hi_ + config_.window_s};
}

std::vector<std::string> SpillStore::spill_files() const {
  std::vector<std::string> paths;
  paths.reserve(windows_.size());
  for (const auto& w : windows_) paths.push_back(w.path);
  return paths;
}

void SpillStore::publish_metrics() const {
  if (!obs::metrics_enabled()) return;
  auto& reg = obs::MetricsRegistry::global();
  reg.gauge("exaeff_spill_bytes",
            "Encoded bytes written to telemetry spill files")
      .set(static_cast<double>(spilled_bytes_));
  reg.gauge("exaeff_spill_windows", "Telemetry spill windows closed")
      .set(static_cast<double>(windows_.size()));
  reg.gauge("exaeff_spill_resident_bytes",
            "Resident sample bytes in the open spill window")
      .set(static_cast<double>(retained_bytes()));
}

}  // namespace exaeff::telemetry
