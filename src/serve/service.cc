#include "serve/service.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <span>
#include <vector>

#include "cluster/system_config.h"
#include "common/units.h"
#include "exec/thread_pool.h"
#include "obs/exposition_server.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "run/journal.h"
#include "sched/fleetgen.h"
#include "workloads/app_profile.h"

namespace exaeff::serve {

namespace {

std::string json_escape(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) break;  // drop controls
        out.push_back(c);
    }
  }
  out.push_back('"');
  return out;
}

/// Fixed-format double: the one rendering every body uses, so warm
/// (cached) and cold answers cannot differ in formatting.
std::string num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

net::HttpResponse error_response(int status, const std::string& message) {
  net::HttpResponse r;
  r.status = status;
  r.content_type = "application/json";
  r.body = "{\"error\":" + json_escape(message) +
           ",\"status\":" + std::to_string(status) + "}\n";
  return r;
}

net::HttpResponse not_ready_response() {
  net::HttpResponse r = error_response(503, "fleet model still loading");
  r.extra_headers.emplace_back("Retry-After", "1");
  return r;
}

net::HttpResponse text_response(int status, std::string body) {
  net::HttpResponse r;
  r.status = status;
  r.body = std::move(body);
  return r;
}

double parse_double_param(const std::string& key, const std::string& value) {
  double v = 0.0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), v);
  if (ec != std::errc{} || ptr != value.data() + value.size() ||
      !std::isfinite(v)) {
    throw ConfigError("bad number for '" + key + "': '" + value + "'");
  }
  return v;
}

core::CapType parse_type(const std::string& value) {
  if (value == "frequency") return core::CapType::kFrequency;
  if (value == "power") return core::CapType::kPower;
  throw ConfigError("bad type '" + value +
                    "' (expected 'frequency' or 'power')");
}

sched::ScienceDomain parse_domain(const std::string& value) {
  for (const auto d : sched::all_domains()) {
    if (sched::domain_code(d) == value) return d;
  }
  std::string codes;
  for (const auto d : sched::all_domains()) {
    if (!codes.empty()) codes += ' ';
    codes += sched::domain_code(d);
  }
  throw ConfigError("unknown domain '" + value + "' (one of: " + codes +
                    ")");
}

sched::SizeBin parse_bin(const std::string& value) {
  for (const auto b : sched::all_size_bins()) {
    if (sched::bin_name(b) == value) return b;
  }
  throw ConfigError("unknown bin '" + value + "' (one of: A B C D E)");
}

/// The settings this model characterized for `type`, for validation and
/// actionable error messages.
std::vector<double> characterized_settings(const core::CapResponseTable& t,
                                           core::CapType type) {
  std::vector<double> out;
  for (const auto& r : t.rows(core::BenchClass::kComputeIntensive, type)) {
    out.push_back(r.setting);
  }
  return out;
}

void require_characterized(const core::CapResponseTable& t,
                           core::CapType type, double setting) {
  const auto settings = characterized_settings(t, type);
  for (double s : settings) {
    if (std::fabs(s - setting) <= core::CapResponseTable::kSettingTolerance) {
      return;
    }
  }
  std::string list;
  for (double s : settings) {
    if (!list.empty()) list += ' ';
    list += num(s);
  }
  throw ConfigError("cap " + num(setting) + " is not characterized for " +
                    std::string(core::cap_type_name(type)) +
                    " (characterized settings: " + list + ")");
}

void append_row_json(std::string& out, const core::ProjectionRow& row) {
  out += "{\"cap\":" + num(row.setting);
  out += ",\"ci_saved_mwh\":" + num(row.ci_saved_mwh);
  out += ",\"mi_saved_mwh\":" + num(row.mi_saved_mwh);
  out += ",\"total_saved_mwh\":" + num(row.total_saved_mwh);
  out += ",\"savings_pct\":" + num(row.savings_pct);
  out += ",\"delta_t_pct\":" + num(row.delta_t_pct);
  out += ",\"savings_pct_no_slowdown\":" + num(row.savings_pct_no_slowdown);
  out += "}";
}

}  // namespace

// --- FleetModel -------------------------------------------------------

std::shared_ptr<const FleetModel> FleetModel::build(
    const FleetModelConfig& config, exec::ThreadPool& pool) {
  EXAEFF_TRACE_SPAN("serve.load_model");
  std::shared_ptr<FleetModel> m(new FleetModel());
  m->config_ = config;
  sched::CampaignConfig cfg;
  cfg.system = cluster::frontier_scaled(config.nodes);
  cfg.duration_s = config.days * units::kDay;
  const auto& gcd = cfg.system.node.gcd;
  const auto library = workloads::make_profile_library(gcd);
  const auto boundaries = core::derive_boundaries(gcd);
  const sched::FleetGenerator gen(cfg, library);
  const auto log = gen.generate_schedule();
  m->jobs_ = log.size();
  m->acc_ = std::make_unique<core::CampaignAccumulator>(
      cfg.telemetry_window_s, boundaries);
  core::AccumulatorShards shards(*m->acc_);
  gen.generate_telemetry(log, shards, pool);
  core::CharacterizationOptions copts;
  copts.pool = &pool;
  m->table_ = core::characterize(gcd, copts);
  m->engine_ = std::make_unique<core::ProjectionEngine>(m->table_);
  m->fleet_ = m->acc_->decomposition();
  // Memoize every restricted decomposition a query can ask for (domain,
  // bin, domain x bin, plus the unrestricted fleet): 66 pure folds over
  // the 50 cells, so /sweep and /project never re-walk the accumulator.
  for (std::size_t d = 0; d <= sched::kDomainCount; ++d) {
    for (std::size_t b = 0; b <= sched::kSizeBinCount; ++b) {
      std::array<std::array<bool, sched::kSizeBinCount>,
                 sched::kDomainCount>
          mask{};
      for (std::size_t md = 0; md < sched::kDomainCount; ++md) {
        for (std::size_t mb = 0; mb < sched::kSizeBinCount; ++mb) {
          mask[md][mb] = (d == kAllDomains || md == d) &&
                         (b == kAllBins || mb == b);
        }
      }
      m->restricted_[d][b] = m->acc_->decomposition_for(mask);
    }
  }
  obs::Logger::global().info(
      "serve.model_loaded",
      {{"nodes", config.nodes},
       {"days", config.days},
       {"jobs", m->jobs_},
       {"gcd_samples", m->acc_->gcd_sample_count()}});
  return m;
}

// --- RequestContext ---------------------------------------------------

void RequestContext::check() const {
  if (token != nullptr && token->cancelled()) {
    throw CancelledError("request cancelled");
  }
  if (deadline.expired()) {
    // Trip the token so any pool chunk this request scheduled is
    // abandoned at its next boundary, then surface 504.
    if (token != nullptr) token->cancel(exec::CancellationToken::kDeadline);
    throw CancelledError("request deadline exceeded");
  }
}

// --- ProjectionService ------------------------------------------------

struct ProjectionService::Query {
  double cap = 0.0;  ///< /project only
  double lo = 0.0, hi = 0.0, step = 0.0;  ///< /sweep only
  core::CapType type = core::CapType::kFrequency;
  bool has_domain = false;
  sched::ScienceDomain domain = sched::ScienceDomain::kChemistry;
  bool has_bin = false;
  sched::SizeBin bin = sched::SizeBin::kA;
  std::string canonical;  ///< canonical text the cache key hashes
};

ProjectionService::ProjectionService(ServiceLimits limits)
    : limits_(std::move(limits)) {}

void ProjectionService::set_model(std::shared_ptr<const FleetModel> model) {
  std::lock_guard<std::mutex> lock(model_mu_);
  model_ = std::move(model);
}

bool ProjectionService::ready() const { return model() != nullptr; }

void ProjectionService::set_refresh_hook(std::function<void()> hook) {
  refresh_hook_ = std::move(hook);
}

std::shared_ptr<const FleetModel> ProjectionService::model() const {
  std::lock_guard<std::mutex> lock(model_mu_);
  return model_;
}

net::HttpResponse ProjectionService::handle(const net::HttpRequest& req,
                                            RequestContext& ctx) {
  try {
    return route(req, ctx);
  } catch (const net::HttpError& e) {
    return error_response(e.status(), e.what());
  } catch (const CancelledError&) {
    return error_response(504, "request deadline exceeded");
  } catch (const DataQualityError& e) {
    return error_response(422, e.what());
  } catch (const ConfigError& e) {
    return error_response(400, e.what());
  } catch (const ParseError& e) {
    return error_response(400, e.what());
  } catch (const std::exception& e) {
    return error_response(500, e.what());
  }
}

net::HttpResponse ProjectionService::route(const net::HttpRequest& req,
                                           RequestContext& ctx) {
  if (req.method != "GET" && req.method != "HEAD") {
    return error_response(405, "method not allowed (GET/HEAD only)");
  }
  if (req.path == "/healthz") return text_response(200, "ok\n");
  if (req.path == "/readyz") {
    if (ready()) return text_response(200, "ready\n");
    net::HttpResponse r = text_response(503, "loading\n");
    r.extra_headers.emplace_back("Retry-After", "1");
    return r;
  }
  if (req.path == "/metrics") {
    if (refresh_hook_) refresh_hook_();
    net::HttpResponse r;
    r.content_type = "text/plain; version=0.0.4; charset=utf-8";
    r.body = obs::MetricsRegistry::global().expose_prometheus();
    return r;
  }
  if (req.path == "/metrics.json") {
    if (refresh_hook_) refresh_hook_();
    net::HttpResponse r;
    r.content_type = "application/json";
    r.body = obs::MetricsRegistry::global().expose_json();
    return r;
  }
  if (req.path == "/runinfo") {
    net::HttpResponse r;
    r.content_type = "application/json";
    r.body = obs::run_info_json();
    return r;
  }
  if (req.path == "/project" || req.path == "/sweep") {
    return projection_response(req, ctx, req.path == "/sweep");
  }
  return error_response(404, "unknown path '" + req.path + "'");
}

net::HttpResponse ProjectionService::projection_response(
    const net::HttpRequest& req, RequestContext& ctx, bool sweep) {
  Query q;
  bool has_cap = false, has_caps = false;
  bool seen_type = false, seen_deadline = false;
  std::string cap_text, caps_text, domain_text, bin_text, type_text;
  for (const auto& [key, value] : net::parse_query(req.query)) {
    if ((key == "cap" && !sweep && !has_cap) ||
        (key == "caps" && sweep && !has_caps) ||
        (key == "type" && !seen_type) ||
        (key == "domain" && domain_text.empty() && !q.has_domain) ||
        (key == "bin" && bin_text.empty() && !q.has_bin) ||
        (key == "deadline_ms" && !seen_deadline)) {
      // accepted below
    } else {
      throw ConfigError("unknown or duplicate query parameter '" + key +
                        "'");
    }
    if (key == "cap") {
      has_cap = true;
      cap_text = value;
    } else if (key == "caps") {
      has_caps = true;
      caps_text = value;
    } else if (key == "type") {
      seen_type = true;
      type_text = value;
    } else if (key == "domain") {
      q.has_domain = true;
      domain_text = value;
    } else if (key == "bin") {
      q.has_bin = true;
      bin_text = value;
    } else if (key == "deadline_ms") {
      seen_deadline = true;
      const double v = parse_double_param("deadline_ms", value);
      if (v < 1.0 || v > static_cast<double>(ctx.max_deadline_ms) ||
          v != std::floor(v)) {
        throw ConfigError("deadline_ms must be an integer in [1, " +
                          std::to_string(ctx.max_deadline_ms) + "]");
      }
      ctx.deadline = net::Deadline::after_ms(static_cast<long>(v));
    }
  }
  if (!sweep && !has_cap) throw ConfigError("/project requires cap=");
  if (sweep && !has_caps) {
    throw ConfigError("/sweep requires caps=lo:hi:step");
  }
  if (seen_type) q.type = parse_type(type_text);
  if (q.has_domain) q.domain = parse_domain(domain_text);
  if (q.has_bin) q.bin = parse_bin(bin_text);

  const auto m = model();
  if (m == nullptr) return not_ready_response();

  if (sweep) {
    const auto c1 = caps_text.find(':');
    const auto c2 =
        c1 == std::string::npos ? std::string::npos : caps_text.find(':', c1 + 1);
    if (c1 == std::string::npos || c2 == std::string::npos) {
      throw ConfigError("caps must be lo:hi:step, got '" + caps_text + "'");
    }
    q.lo = parse_double_param("caps", caps_text.substr(0, c1));
    q.hi = parse_double_param("caps", caps_text.substr(c1 + 1, c2 - c1 - 1));
    q.step = parse_double_param("caps", caps_text.substr(c2 + 1));
    if (!(q.step > 0.0) || q.hi < q.lo) {
      throw ConfigError("caps must satisfy lo <= hi and step > 0");
    }
    const double points = std::floor((q.hi - q.lo) / q.step + 1e-9) + 1.0;
    if (points > static_cast<double>(limits_.max_sweep_points)) {
      throw ConfigError("sweep of " + num(points) +
                        " points exceeds the limit of " +
                        std::to_string(limits_.max_sweep_points));
    }
  } else {
    q.cap = parse_double_param("cap", cap_text);
    require_characterized(m->table(), q.type, q.cap);
  }

  // Canonical query text (fixed key order, fixed number format): the
  // cache key, shared with the journal's FNV-1a content hashing.
  q.canonical = req.path;
  q.canonical += sweep ? "?caps=" + num(q.lo) + ":" + num(q.hi) + ":" +
                             num(q.step)
                       : "?cap=" + num(q.cap);
  q.canonical += "&type=";
  q.canonical += core::cap_type_name(q.type);
  q.canonical += "&domain=";
  q.canonical += q.has_domain ? sched::domain_code(q.domain) : "all";
  q.canonical += "&bin=";
  q.canonical += q.has_bin ? sched::bin_name(q.bin) : "all";

  const std::uint64_t key = run::fnv1a64(q.canonical);
  net::HttpResponse r;
  r.content_type = "application/json";
  if (auto cached = cache_.find(key)) {
    r.body = *cached;
    return r;
  }
  auto body = std::make_shared<const std::string>(
      compute_body(*m, q, ctx, sweep));
  cache_.insert(key, body);
  r.body = *body;
  return r;
}

std::string ProjectionService::compute_body(const FleetModel& m,
                                            const Query& q,
                                            RequestContext& ctx,
                                            bool sweep) const {
  // Every decomposition a query can select is memoized at load (the
  // values match an on-demand mask fold bit for bit).
  const core::ModalDecomposition& decomp = m.restricted_decomposition(
      q.has_domain ? static_cast<std::size_t>(q.domain)
                   : FleetModel::kAllDomains,
      q.has_bin ? static_cast<std::size_t>(q.bin) : FleetModel::kAllBins);

  const core::ProjectionEngine& engine = m.engine();
  std::string out = "{\"type\":\"";
  out += core::cap_type_name(q.type);
  out += "\",\"domain\":\"";
  out += q.has_domain ? sched::domain_code(q.domain) : "all";
  out += "\",\"bin\":\"";
  out += q.has_bin ? sched::bin_name(q.bin) : "all";
  out += "\"";
  if (!sweep) {
    ctx.check();
    out += ",\"row\":";
    append_row_json(out, engine.project(decomp, q.type, q.cap));
  } else {
    const auto points = static_cast<std::size_t>(
        std::floor((q.hi - q.lo) / q.step + 1e-9) + 1.0);
    // One resolution/validation pass: every enumerated point must be
    // characterized before any work happens, so a half-bad sweep is
    // rejected whole (400), never half answered.  The resolved row
    // indices feed the batch kernel below.
    std::vector<double> settings(points);
    std::vector<std::uint32_t> ci_rows(points), mi_rows(points);
    bool resolved = true;
    for (std::size_t i = 0; i < points; ++i) {
      const double s = q.lo + static_cast<double>(i) * q.step;
      settings[i] = s;
      ci_rows[i] = m.table().index_of(core::BenchClass::kComputeIntensive,
                                      q.type, s);
      mi_rows[i] = m.table().index_of(core::BenchClass::kMemoryIntensive,
                                      q.type, s);
      if (ci_rows[i] == core::CapResponseTable::kNoRow) {
        require_characterized(m.table(), q.type, s);
      }
      // A point require_characterized accepts but index_of cannot
      // resolve (or one missing only from the MI class) falls back to
      // the scalar loop below, which surfaces the same error, at the
      // same point, as it always has.
      if (ci_rows[i] == core::CapResponseTable::kNoRow ||
          mi_rows[i] == core::CapResponseTable::kNoRow) {
        resolved = false;
      }
    }
    out += ",\"count\":" + std::to_string(points) + ",\"rows\":[";
    if (resolved) {
      // Batch-compute all rows through the SIMD kernel, observing the
      // deadline at block boundaries, then format from the row buffer.
      // The formatting loop keeps the original per-point check()/hook
      // cadence, so deadline expiry (504) and test instrumentation see
      // exactly the sequence the per-point compute loop produced.
      std::vector<core::ProjectionRow> rows(points);
      constexpr std::size_t kComputeBlock = 512;
      for (std::size_t base = 0; base < points; base += kComputeBlock) {
        ctx.check();
        const std::size_t n = std::min(kComputeBlock, points - base);
        engine.project_rows_into(
            decomp, q.type,
            std::span<const double>(settings).subspan(base, n),
            std::span<const std::uint32_t>(ci_rows).subspan(base, n),
            std::span<const std::uint32_t>(mi_rows).subspan(base, n),
            std::span<core::ProjectionRow>(rows).subspan(base, n));
      }
      out.reserve(out.size() + points * 192 + 8);
      for (std::size_t i = 0; i < points; ++i) {
        ctx.check();
        if (limits_.sweep_point_hook) limits_.sweep_point_hook();
        if (i > 0) out += ",";
        append_row_json(out, rows[i]);
      }
    } else {
      for (std::size_t i = 0; i < points; ++i) {
        // The per-point boundary: the deadline is observed here, so an
        // expired request abandons the remaining points (504), exactly
        // like a pool chunk boundary under cancellation.
        ctx.check();
        if (limits_.sweep_point_hook) limits_.sweep_point_hook();
        if (i > 0) out += ",";
        append_row_json(out, engine.project(decomp, q.type, settings[i]));
      }
    }
    out += "]";
  }
  out += "}\n";
  return out;
}

}  // namespace exaeff::serve
