#include "serve/server.h"

#include <sys/socket.h>

#include <algorithm>
#include <cmath>

#include "exec/thread_pool.h"
#include "net/http.h"
#include "net/socket_io.h"
#include "obs/log.h"
#include "obs/metrics.h"

namespace exaeff::serve {

namespace {

void inc_counter(const char* name, const char* help) {
  if (!obs::metrics_enabled()) return;
  obs::MetricsRegistry::global().counter(name, help).inc();
}

void set_inflight_gauge(std::uint64_t value) {
  if (!obs::metrics_enabled()) return;
  obs::MetricsRegistry::global()
      .gauge("exaeff_serve_inflight",
             "admitted connections not yet fully answered")
      .set(static_cast<double>(value));
}

std::string json_error_body(int status, const std::string& message) {
  std::string out = "{\"error\":\"";
  out += message;  // callers pass fixed ASCII text, no escaping needed
  out += "\",\"status\":";
  out += std::to_string(status);
  out += "}\n";
  return out;
}

}  // namespace

ProjectionServer::ProjectionServer(
    std::shared_ptr<ProjectionService> service, ServerOptions options)
    : service_(std::move(service)), options_(std::move(options)) {
  options_.shed_backoff.validate();
  if (options_.workers == 0) {
    options_.workers = std::min<std::size_t>(exec::job_count(), 8);
  }
  if (options_.workers == 0) options_.workers = 1;
  if (options_.queue_depth == 0) options_.queue_depth = 1;
}

ProjectionServer::~ProjectionServer() { drain(); }

bool ProjectionServer::start() {
  if (running_.load()) return true;
  listen_fd_ = net::listen_tcp(options_.bind_address, options_.port,
                               /*backlog=*/64, error_);
  if (listen_fd_ < 0) return false;
  port_ = net::bound_port(listen_fd_);
  stop_accept_.store(false);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    draining_ = false;
  }
  running_.store(true);
  worker_threads_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    worker_threads_.emplace_back([this] { worker_main(); });
  }
  accept_thread_ = std::thread([this] { accept_main(); });
  return true;
}

void ProjectionServer::drain() {
  if (!running_.load()) return;
  // Stop admitting first: close the listening socket so new connects
  // are refused, then let the workers finish everything already
  // admitted.  Each queued connection is bounded by the read, compute
  // and write deadlines, so the drain itself is bounded.
  stop_accept_.store(true);
  if (accept_thread_.joinable()) accept_thread_.join();
  net::close_fd(listen_fd_);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    draining_ = true;
  }
  queue_cv_.notify_all();
  for (auto& w : worker_threads_) {
    if (w.joinable()) w.join();
  }
  worker_threads_.clear();
  running_.store(false);
  set_inflight_gauge(0);
}

ProjectionServer::Stats ProjectionServer::stats() const {
  Stats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.responded = responded_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.timeouts = timeouts_.load(std::memory_order_relaxed);
  s.closed_early = closed_early_.load(std::memory_order_relaxed);
  s.write_failures = write_failures_.load(std::memory_order_relaxed);
  return s;
}

void ProjectionServer::accept_main() {
  while (!stop_accept_.load()) {
    int fd = net::accept_connection(listen_fd_, /*timeout_ms=*/100);
    if (fd < 0) continue;  // timeout or EINTR: re-check stop flag
    accepted_.fetch_add(1, std::memory_order_relaxed);
    bool admit = false;
    std::uint64_t depth = 0;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (queue_.size() < options_.queue_depth) {
        queue_.push_back(fd);
        consecutive_sheds_ = 0;
        admit = true;
        depth = queue_.size() + inflight_.load(std::memory_order_relaxed);
      } else {
        ++consecutive_sheds_;
      }
    }
    if (admit) {
      set_inflight_gauge(depth);
      queue_cv_.notify_one();
    } else {
      respond_shed(fd);
    }
  }
}

void ProjectionServer::respond_shed(int fd) {
  // Deterministic load-shedding: the queue is full, so this connection
  // is answered *now* with 503 and a Retry-After computed from the
  // shared backoff policy — sustained overload pushes clients further
  // out instead of queueing unboundedly.
  const std::size_t attempt = std::min<std::size_t>(
      std::max<std::uint32_t>(consecutive_sheds_, 1),
      options_.shed_backoff.max_attempts);
  const double delay_s = options_.shed_backoff.backoff_before_retry(attempt);
  const auto retry_after =
      static_cast<long>(std::max(1.0, std::ceil(delay_s)));

  net::HttpResponse r;
  r.status = 503;
  r.content_type = "application/json";
  r.body = "{\"error\":\"overloaded: admission queue full\",\"status\":503,"
           "\"retry_after_s\":" +
           std::to_string(retry_after) + "}\n";
  r.extra_headers.emplace_back("Retry-After", std::to_string(retry_after));
  const std::string out = net::render_response(r, /*head_only=*/false);
  // Short write budget: shedding happens on the accept thread and must
  // never stall admission behind a slow victim.
  if (net::send_all(fd, out, net::Deadline::after_ms(250))) {
    responded_.fetch_add(1, std::memory_order_relaxed);
  } else {
    write_failures_.fetch_add(1, std::memory_order_relaxed);
  }
  shed_.fetch_add(1, std::memory_order_relaxed);
  count_response(503);
  inc_counter("exaeff_serve_shed_total",
              "connections rejected 503 by admission control");
  ::shutdown(fd, SHUT_RDWR);
  net::close_fd(fd);
}

void ProjectionServer::worker_main() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return !queue_.empty() || draining_; });
      if (queue_.empty()) return;  // draining and nothing left
      fd = queue_.front();
      queue_.pop_front();
      inflight_.fetch_add(1, std::memory_order_relaxed);
    }
    serve_connection(fd);
    const auto now_inflight =
        inflight_.fetch_sub(1, std::memory_order_relaxed) - 1;
    std::size_t queued;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      queued = queue_.size();
    }
    set_inflight_gauge(now_inflight + queued);
  }
}

void ProjectionServer::serve_connection(int fd) {
  net::HttpParser parser;
  net::HttpResponse resp;
  bool have_request = false;
  bool head_only = false;
  try {
    switch (net::read_request(
        fd, parser, net::Deadline::after_ms(options_.read_timeout_ms))) {
      case net::ReadOutcome::kComplete:
        have_request = true;
        break;
      case net::ReadOutcome::kClosedEmpty:
        // Connection churn: the peer never sent a request, so no
        // response is owed.
        closed_early_.fetch_add(1, std::memory_order_relaxed);
        net::close_fd(fd);
        return;
      case net::ReadOutcome::kTimeout:
        resp.status = 408;
        resp.content_type = "application/json";
        resp.body = json_error_body(408, "timed out waiting for request");
        break;
      case net::ReadOutcome::kClosedPartial:
        resp.status = 400;
        resp.content_type = "application/json";
        resp.body = json_error_body(400, "connection closed mid-request");
        break;
    }
  } catch (const net::HttpError& e) {
    resp.status = e.status();
    resp.content_type = "application/json";
    resp.body = json_error_body(e.status(), e.what());
  }

  if (have_request) {
    const net::HttpRequest& req = parser.request();
    head_only = req.method == "HEAD";
    exec::CancellationToken token;
    RequestContext ctx;
    ctx.token = &token;
    ctx.default_deadline_ms = options_.default_deadline_ms;
    ctx.max_deadline_ms = options_.max_deadline_ms;
    ctx.deadline = net::Deadline::after_ms(options_.default_deadline_ms);
    resp = service_->handle(req, ctx);
  }

  if (resp.status == 408 || resp.status == 504) {
    timeouts_.fetch_add(1, std::memory_order_relaxed);
    inc_counter("exaeff_serve_timeouts_total",
                "read timeouts (408) and request deadline expiries (504)");
  }
  const std::string out = net::render_response(resp, head_only);
  if (net::send_all(fd, out,
                    net::Deadline::after_ms(options_.write_timeout_ms))) {
    responded_.fetch_add(1, std::memory_order_relaxed);
  } else {
    write_failures_.fetch_add(1, std::memory_order_relaxed);
    obs::Logger::global().debug("serve.write_dropped",
                                {{"status", resp.status}});
  }
  count_response(resp.status);
  ::shutdown(fd, SHUT_RDWR);
  net::close_fd(fd);
}

void ProjectionServer::count_response(int status) {
  inc_counter("exaeff_serve_requests_total",
              "responses sent by the projection server (any status)");
  if (!obs::metrics_enabled()) return;
  obs::MetricsRegistry::global()
      .counter("exaeff_serve_responses_total",
               "responses by status class",
               {{"class", std::to_string(status / 100) + "xx"}})
      .inc();
}

}  // namespace exaeff::serve
