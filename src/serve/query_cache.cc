#include "serve/query_cache.h"

#include "obs/metrics.h"

namespace exaeff::serve {

QueryCache::QueryCache(std::size_t shards, std::size_t capacity_per_shard)
    : capacity_per_shard_(capacity_per_shard == 0 ? 1 : capacity_per_shard) {
  if (shards == 0) shards = 1;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::shared_ptr<const std::string> QueryCache::find(std::uint64_t key) {
  Shard& s = shard_for(key);
  std::shared_ptr<const std::string> body;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    const auto it = s.entries.find(key);
    if (it != s.entries.end()) body = it->second;
  }
  if (body != nullptr) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (obs::metrics_enabled()) {
      obs::MetricsRegistry::global()
          .counter("exaeff_serve_cache_hits_total",
                   "projection query cache hits")
          .inc();
    }
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (obs::metrics_enabled()) {
      obs::MetricsRegistry::global()
          .counter("exaeff_serve_cache_misses_total",
                   "projection query cache misses")
          .inc();
    }
  }
  return body;
}

void QueryCache::insert(std::uint64_t key,
                        std::shared_ptr<const std::string> body) {
  if (body == nullptr) return;
  Shard& s = shard_for(key);
  std::lock_guard<std::mutex> lock(s.mu);
  const auto [it, inserted] = s.entries.emplace(key, std::move(body));
  (void)it;
  if (!inserted) return;  // first render wins
  s.order.push_back(key);
  while (s.order.size() > capacity_per_shard_) {
    s.entries.erase(s.order.front());
    s.order.pop_front();
  }
}

std::size_t QueryCache::size() const {
  std::size_t n = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    n += s->entries.size();
  }
  return n;
}

}  // namespace exaeff::serve
