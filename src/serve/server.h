// exaeff/serve/server.h
//
// The connection layer of `exaeff serve`: accept loop, bounded
// admission queue, worker threads, and graceful drain.  Robustness
// contract:
//
//   * Admission is a bounded queue.  When it is full the connection is
//     answered immediately with 503 + Retry-After (computed from the
//     shared common::BackoffPolicy, growing with consecutive sheds) and
//     closed — deterministic load-shedding, never unbounded memory.
//   * Reads and writes are deadline-bounded (net::Deadline), so a
//     slow-loris client costs one worker at most read_timeout_ms; the
//     connection cap is queue_depth + workers by construction.
//   * Each admitted request gets its own exec::CancellationToken and
//     deadline; expiry surfaces as 504 with the in-flight computation
//     abandoned at its next work boundary.
//   * drain() stops accepting, serves everything already admitted to
//     completion, and joins — every accepted connection gets either a
//     full response or a deliberate close-after-silence (churn), which
//     is what lets the CLI exit 0 on SIGTERM mid-load.
//
// Served metrics (asserted live in tests):
//   exaeff_serve_requests_total   responses sent (any status, sheds incl)
//   exaeff_serve_shed_total       503s from admission-queue overflow
//   exaeff_serve_timeouts_total   408 read timeouts + 504 deadline expiries
//   exaeff_serve_cache_{hits,misses}_total   (from QueryCache)
//   exaeff_serve_inflight         admitted-but-unfinished connections
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/backoff.h"
#include "serve/service.h"

namespace exaeff::serve {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;          ///< 0 binds an ephemeral port
  std::size_t workers = 0;         ///< 0 = min(exec::job_count(), 8)
  std::size_t queue_depth = 64;    ///< admitted-but-unclaimed connections
  int read_timeout_ms = 5000;      ///< slow-loris bound per request read
  int write_timeout_ms = 5000;     ///< response write bound
  int default_deadline_ms = 2000;  ///< per-request compute deadline
  int max_deadline_ms = 30000;     ///< cap on client deadline_ms=
  /// Retry-After schedule for shed responses: attempt k (consecutive
  /// sheds, clamped to max_attempts) waits backoff_before_retry(k),
  /// rounded up to whole seconds.  One shared policy — the same type
  /// loadgen uses client-side.
  common::BackoffPolicy shed_backoff{
      .max_attempts = 8,
      .base_backoff_s = 1.0,
      .backoff_multiplier = 2.0,
      .max_backoff_s = 8.0,
  };
};

class ProjectionServer {
 public:
  ProjectionServer(std::shared_ptr<ProjectionService> service,
                   ServerOptions options);
  /// Drains if still running.
  ~ProjectionServer();
  ProjectionServer(const ProjectionServer&) = delete;
  ProjectionServer& operator=(const ProjectionServer&) = delete;

  /// Binds and spawns the accept loop + workers.  False (reason in
  /// last_error()) when the port cannot be bound.
  [[nodiscard]] bool start();

  /// Graceful drain: stop accepting, finish every admitted connection,
  /// join all threads.  Idempotent.
  void drain();

  [[nodiscard]] bool running() const { return running_.load(); }
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] const std::string& last_error() const { return error_; }

  struct Stats {
    std::uint64_t accepted = 0;   ///< connections accepted
    std::uint64_t responded = 0;  ///< full responses written (incl sheds)
    std::uint64_t shed = 0;       ///< 503 admission rejections
    std::uint64_t timeouts = 0;   ///< 408 read timeouts + 504 deadlines
    std::uint64_t closed_early = 0;  ///< peer closed before sending a request
    std::uint64_t write_failures = 0;  ///< responses dropped mid-write
  };
  [[nodiscard]] Stats stats() const;

 private:
  void accept_main();
  void worker_main();
  void serve_connection(int fd);
  void respond_shed(int fd);
  void count_response(int status);

  std::shared_ptr<ProjectionService> service_;
  ServerOptions options_;
  std::string error_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> queue_;  ///< admitted connection fds
  bool draining_ = false;

  std::atomic<bool> running_{false};
  std::atomic<bool> stop_accept_{false};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> responded_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  std::atomic<std::uint64_t> closed_early_{0};
  std::atomic<std::uint64_t> write_failures_{0};
  std::atomic<std::uint64_t> inflight_{0};
  std::uint32_t consecutive_sheds_ = 0;  ///< accept thread only

  std::thread accept_thread_;
  std::vector<std::thread> worker_threads_;
};

}  // namespace exaeff::serve
