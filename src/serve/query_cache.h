// exaeff/serve/query_cache.h
//
// Sharded response cache for the projection service.  Keys are the same
// FNV-1a content hashes the checkpoint journal uses (run::fnv1a64 over
// the canonicalized query), values are immutable rendered bodies shared
// by reference — a hit hands out the exact bytes the cold computation
// produced, which is what makes warm answers byte-identical to cold
// ones.  Sharding keeps concurrent workers off one mutex; each shard
// evicts FIFO at a fixed capacity so the cache, like every other buffer
// in the serving path, is bounded.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace exaeff::serve {

class QueryCache {
 public:
  explicit QueryCache(std::size_t shards = 16,
                      std::size_t capacity_per_shard = 1024);

  /// The cached body for `key`, or nullptr.  Counts a hit or a miss.
  [[nodiscard]] std::shared_ptr<const std::string> find(std::uint64_t key);

  /// Inserts (idempotent: an existing entry for `key` is kept — the
  /// first render wins, so concurrent fills cannot flap bytes).
  void insert(std::uint64_t key, std::shared_ptr<const std::string> body);

  [[nodiscard]] std::uint64_t hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t size() const;

 private:
  struct Shard {
    std::mutex mu;
    std::unordered_map<std::uint64_t, std::shared_ptr<const std::string>>
        entries;
    std::deque<std::uint64_t> order;  ///< FIFO eviction order
  };

  Shard& shard_for(std::uint64_t key) {
    return *shards_[key % shards_.size()];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t capacity_per_shard_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace exaeff::serve
