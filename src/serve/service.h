// exaeff/serve/service.h
//
// The projection query service: the analysis layer of `exaeff serve`.
// A FleetModel is the characterized fleet loaded once at startup
// (CapResponseTable + campaign accumulator + modal decomposition); the
// ProjectionService answers HTTP queries against it:
//
//   GET /project?cap=1100[&type=frequency|power][&domain=CHM][&bin=A]
//   GET /sweep?caps=700:1700:200[&type=...][&domain=...][&bin=...]
//   GET /healthz /readyz /metrics /metrics.json /runinfo
//
// Optional `deadline_ms=` on /project and /sweep overrides the server's
// default per-request deadline (capped at the server maximum).
//
// Error taxonomy → HTTP status, mirroring the CLI's exit-code table:
//
//   exit 0   (success)         → 200
//   exit 2   (usage)           → 400  bad query: unknown/duplicate
//                                     parameter, uncharacterized cap,
//                                     malformed sweep spec
//   exit 3   (data quality)    → 422  DataQualityError
//   exit 130 (cancelled)       → 504  per-request deadline expired
//            (overload)        → 503  admission queue full / model
//                                     still loading (+ Retry-After)
//   exit 1   (other)           → 500
//
// Handlers never throw: every outcome is a rendered response.  Bodies
// are rendered with fixed formatting so identical queries produce
// byte-identical bytes, cold or cached.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/accumulator.h"
#include "core/characterization.h"
#include "core/projection.h"
#include "exec/cancellation.h"
#include "net/http.h"
#include "net/socket_io.h"
#include "serve/query_cache.h"

namespace exaeff::exec {
class ThreadPool;
}

namespace exaeff::serve {

/// Shape of the fleet to load at startup.
struct FleetModelConfig {
  std::size_t nodes = 32;
  double days = 7.0;
};

/// The characterized fleet, immutable once built.  Building runs the
/// full campaign + characterization pipeline on the exec pool (so
/// --jobs applies and Supervisor cancellation aborts the load at chunk
/// boundaries); after that, queries only read.
class FleetModel {
 public:
  /// Throws CancelledError when the pool's token trips mid-load.
  [[nodiscard]] static std::shared_ptr<const FleetModel> build(
      const FleetModelConfig& config, exec::ThreadPool& pool);

  [[nodiscard]] const FleetModelConfig& config() const { return config_; }
  [[nodiscard]] std::size_t jobs() const { return jobs_; }
  [[nodiscard]] const core::CapResponseTable& table() const { return table_; }
  [[nodiscard]] const core::CampaignAccumulator& accumulator() const {
    return *acc_;
  }
  /// The projection engine over table(), built once at load (queries
  /// used to construct one per request).
  [[nodiscard]] const core::ProjectionEngine& engine() const {
    return *engine_;
  }
  /// The whole-fleet decomposition, precomputed at load.
  [[nodiscard]] const core::ModalDecomposition& fleet_decomposition() const {
    return fleet_;
  }
  /// Sentinel for restricted_decomposition(): no restriction on that
  /// axis.
  static constexpr std::size_t kAllDomains = sched::kDomainCount;
  static constexpr std::size_t kAllBins = sched::kSizeBinCount;
  /// The decomposition restricted to one domain and/or one size bin
  /// (kAllDomains/kAllBins leaves that axis unrestricted), memoized at
  /// load — identical values to an on-demand decomposition_for() over
  /// the matching mask, without re-walking the cells per request.
  [[nodiscard]] const core::ModalDecomposition& restricted_decomposition(
      std::size_t domain, std::size_t bin) const {
    return restricted_[domain][bin];
  }

 private:
  FleetModel() = default;

  FleetModelConfig config_;
  std::size_t jobs_ = 0;
  std::unique_ptr<core::CampaignAccumulator> acc_;
  core::CapResponseTable table_;
  std::unique_ptr<core::ProjectionEngine> engine_;
  core::ModalDecomposition fleet_;
  std::array<std::array<core::ModalDecomposition, sched::kSizeBinCount + 1>,
             sched::kDomainCount + 1>
      restricted_{};
};

/// Per-request execution context: the deadline and the cancellation
/// token the computation must observe.  check() is called at work
/// boundaries (each sweep point); once the deadline passes it trips the
/// token — so a pool chunk in flight is abandoned at its next boundary
/// — and throws CancelledError, which the service maps to 504.
struct RequestContext {
  exec::CancellationToken* token = nullptr;
  net::Deadline deadline = net::Deadline::never();
  int default_deadline_ms = 2000;
  int max_deadline_ms = 30000;

  void check() const;
};

/// Service-level limits and test instrumentation.
struct ServiceLimits {
  std::size_t max_sweep_points = 4096;
  /// Invoked once per sweep point before it is computed; tests inject a
  /// stall here to exercise the 504 path deterministically.
  std::function<void()> sweep_point_hook;
};

class ProjectionService {
 public:
  explicit ProjectionService(ServiceLimits limits = {});

  /// Publishes the loaded model; before this every query answers 503
  /// (so /readyz gates traffic while the fleet characterizes).
  void set_model(std::shared_ptr<const FleetModel> model);
  [[nodiscard]] bool ready() const;

  /// Invoked before /metrics rendering (republish lazy series).
  void set_refresh_hook(std::function<void()> hook);

  /// Routes one parsed request.  Never throws.
  [[nodiscard]] net::HttpResponse handle(const net::HttpRequest& req,
                                         RequestContext& ctx);

  [[nodiscard]] QueryCache& cache() { return cache_; }

 private:
  struct Query;  // parsed+validated /project//sweep parameters

  [[nodiscard]] std::shared_ptr<const FleetModel> model() const;
  [[nodiscard]] net::HttpResponse route(const net::HttpRequest& req,
                                        RequestContext& ctx);
  [[nodiscard]] net::HttpResponse projection_response(
      const net::HttpRequest& req, RequestContext& ctx, bool sweep);
  [[nodiscard]] std::string compute_body(const FleetModel& m,
                                         const Query& q, RequestContext& ctx,
                                         bool sweep) const;

  ServiceLimits limits_;
  QueryCache cache_;
  std::function<void()> refresh_hook_;
  mutable std::mutex model_mu_;
  std::shared_ptr<const FleetModel> model_;
};

}  // namespace exaeff::serve
