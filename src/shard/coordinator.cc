#include "shard/coordinator.h"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/error.h"
#include "exec/thread_pool.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "run/checkpoint.h"
#include "run/journal.h"

namespace exaeff::shard {

namespace {

using Clock = std::chrono::steady_clock;

/// Supervision state of one shard.
struct ShardState {
  JobRange range;
  std::string journal_path;
  std::size_t attempt = 0;  ///< incarnations spawned so far
  int pid = -1;             ///< live worker, or -1
  int hb_fd = -1;           ///< read end of the heartbeat pipe
  Clock::time_point last_hb;
  Clock::time_point restart_at;  ///< valid while backing_off
  bool backing_off = false;
  bool hung = false;    ///< SIGKILL sent, waiting for the reap
  bool done = false;    ///< journal verified complete
  bool failed = false;  ///< retries exhausted
};

[[nodiscard]] bool live(const ShardState& s) { return s.pid >= 0; }

void close_fd(int& fd) {
  if (fd >= 0) ::close(fd);
  fd = -1;
}

/// True when every chunk of `range` is present in the shard journal and
/// decodes cleanly.  Reload goes through run::Journal, so a torn tail
/// from a mid-append SIGKILL is silently dropped here and recomputed by
/// the next incarnation.
bool shard_complete(const ShardState& s, std::uint64_t config_key,
                    std::size_t grain,
                    const core::CampaignAccumulator& proto) {
  std::error_code ec;
  if (!std::filesystem::exists(s.journal_path, ec)) return false;
  run::Journal journal(s.journal_path, /*resume=*/true);
  core::CampaignAccumulator scratch = proto.make_sibling();
  faults::FaultCounters counters;
  for (std::size_t b = s.range.begin; b < s.range.end; b += grain) {
    const std::size_t e = std::min(b + grain, s.range.end);
    const std::string* payload =
        journal.find(run::campaign_chunk_key(config_key, b, e));
    if (payload == nullptr ||
        !run::decode_campaign_chunk(*payload, scratch, counters)) {
      return false;
    }
  }
  return true;
}

void kill_and_reap(std::vector<ShardState>& shards) {
  for (ShardState& s : shards) {
    if (!live(s)) continue;
    ::kill(s.pid, SIGKILL);
    int status = 0;
    ::waitpid(s.pid, &status, 0);
    s.pid = -1;
    close_fd(s.hb_fd);
  }
}

}  // namespace

std::string ShardReport::describe(std::size_t max_attempts) const {
  char head[128];
  std::snprintf(head, sizeof head,
                "%zu of %zu shards failed after %zu attempts; missing jobs",
                failed_shards.size(), shards, max_attempts);
  std::string out = head;
  for (const JobRange& r : missing_ranges) {
    char range[64];
    std::snprintf(range, sizeof range, " [%zu,%zu)", r.begin, r.end);
    out += range;
  }
  return out;
}

void publish_shard_metrics(const ShardReport& report) {
  if (!obs::metrics_enabled()) return;
  auto& reg = obs::MetricsRegistry::global();
  reg.counter("exaeff_shard_restarts_total",
              "Shard workers restarted after a crash or hang")
      .inc(report.restarts);
  reg.counter("exaeff_shard_heartbeats_missed_total",
              "Shard workers declared hung on heartbeat deadline")
      .inc(report.heartbeats_missed);
  reg.counter("exaeff_shard_shards_failed_total",
              "Shards that exhausted every restart attempt")
      .inc(report.failed_shards.size());
}

ShardReport run_sharded_campaign(const sched::FleetGenerator& gen,
                                 const sched::SchedulerLog& log,
                                 core::CampaignAccumulator& acc,
                                 const faults::FaultPlan& plan,
                                 const ShardOptions& options,
                                 faults::FaultCounters* counters_out) {
  EXAEFF_TRACE_SPAN("shard.campaign");
  EXAEFF_REQUIRE(options.shards >= 1, "need at least one shard");
  EXAEFF_REQUIRE(!options.shard_dir.empty(),
                 "sharded campaigns need a shard directory");
  EXAEFF_REQUIRE(options.heartbeat_timeout_s > options.heartbeat_interval_s,
                 "heartbeat timeout must exceed the interval");
  options.retry.validate();

  const std::size_t n_jobs = log.jobs().size();
  const std::size_t grain = exec::ThreadPool::chunk_grain(n_jobs);
  const bool spill = !options.spill_dir.empty();
  std::vector<run::SpillWindow> plan_windows;
  std::vector<JobRange> ranges;
  if (spill) {
    EXAEFF_REQUIRE(options.memory_budget_bytes > 0,
                   "spill campaigns need a positive memory budget");
    EXAEFF_REQUIRE(!plan.any_enabled(),
                   "spill campaigns cannot inject telemetry faults");
    // The spill plan is campaign-global and shards take whole windows,
    // so the union of worker spill directories (they share one) is the
    // exact file set a single-process spill run writes.
    plan_windows = run::plan_spill_windows(
        log, gen.config().telemetry_window_s,
        gen.config().system.node.gcds_per_node(),
        options.memory_budget_bytes);
    ranges = partition_windows(plan_windows, options.shards);
  } else {
    ranges = partition_jobs(n_jobs, options.shards);
  }
  // Spill workers key their journals off the fault-free plan (telemetry
  // faults are rejected above; crash chaos never touches content), so
  // the coordinator must verify and merge under the same key.
  const std::uint64_t config_key = run::campaign_config_key(
      gen.config(), spill ? faults::FaultPlan{} : plan, n_jobs);

  ShardReport report;
  report.shards = ranges.size();
  report.total_chunks = n_jobs == 0 ? 0 : (n_jobs + grain - 1) / grain;

  std::vector<ShardState> shards(ranges.size());
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    shards[i].range = ranges[i];
    shards[i].journal_path =
        options.shard_dir + "/shard-" + std::to_string(i) + ".ckpt";
  }

  const auto hb_timeout =
      std::chrono::duration<double>(options.heartbeat_timeout_s);

  auto spawn = [&](std::size_t i) {
    ShardState& s = shards[i];
    ++s.attempt;
    s.backing_off = false;
    s.hung = false;
    int fds[2] = {-1, -1};
    if (::pipe(fds) != 0) {
      throw Error("shard coordinator: pipe() failed");
    }
    ::fcntl(fds[0], F_SETFL, O_NONBLOCK);
    ::fcntl(fds[1], F_SETFL, O_NONBLOCK);
    const int pid = ::fork();
    if (pid < 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      throw Error("shard coordinator: fork() failed");
    }
    if (pid == 0) {
      // Child: drop every coordinator-side descriptor (other workers'
      // pipes would otherwise keep their read ends from ever seeing
      // EOF), keep only our write end.
      ::close(fds[0]);
      for (const ShardState& other : shards) {
        if (other.hb_fd >= 0) ::close(other.hb_fd);
      }
      WorkerConfig cfg;
      cfg.shard_index = i;
      cfg.attempt = s.attempt;
      cfg.range = s.range;
      cfg.journal_path = s.journal_path;
      cfg.heartbeat_fd = fds[1];
      cfg.heartbeat_interval_s = options.heartbeat_interval_s;
      cfg.threads = options.worker_threads;
      cfg.resume = options.resume || s.attempt > 1;
      if (spill) {
        cfg.spill_dir = options.spill_dir;
        std::size_t first = 0;
        cfg.windows = run::windows_in_range(plan_windows, s.range.begin,
                                            s.range.end, &first);
        cfg.window_index_base = first;
        // Spill incarnations regenerate from scratch: the raw samples a
        // window needs are never journaled, and a resumed journal could
        // claim chunks whose spill files a crash tore.
        cfg.resume = false;
      }
      worker_main(gen, log, acc, plan, cfg);  // never returns
    }
    ::close(fds[1]);
    s.pid = pid;
    s.hb_fd = fds[0];
    s.last_hb = Clock::now();
    obs::Logger::global().debug(
        "shard.spawned", {{"shard", i},
                          {"attempt", s.attempt},
                          {"pid", static_cast<unsigned>(pid)}});
    if (options.on_spawn) options.on_spawn(i, s.attempt, pid);
  };

  // A worker's exit settles its attempt.  The journal is the ground
  // truth, not the exit status: an incarnation that crashed *after* its
  // last chunk landed still completed the shard, and one that exited 0
  // with a short journal (torn tail) did not.
  auto settle_exit = [&](std::size_t i, int status) {
    ShardState& s = shards[i];
    s.pid = -1;
    close_fd(s.hb_fd);
    if (shard_complete(s, config_key, grain, acc)) {
      s.done = true;
      return;
    }
    obs::Logger::global().warn(
        "shard.attempt_failed",
        {{"shard", i},
         {"attempt", s.attempt},
         {"status", static_cast<unsigned>(status)},
         {"hung", s.hung ? 1u : 0u}});
    if (options.retry.retries_after(s.attempt)) {
      ++report.restarts;
      s.backing_off = true;
      s.restart_at =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(
                                 options.retry.backoff_before_retry(
                                     s.attempt)));
    } else {
      s.failed = true;
    }
  };

  for (std::size_t i = 0; i < shards.size(); ++i) spawn(i);

  std::vector<pollfd> pfds;
  std::vector<std::size_t> pfd_shard;
  char drain[256];
  for (;;) {
    if (options.cancel != nullptr && options.cancel->cancelled()) {
      kill_and_reap(shards);
      throw CancelledError("sharded campaign cancelled");
    }

    bool all_settled = true;
    const auto now = Clock::now();
    for (std::size_t i = 0; i < shards.size(); ++i) {
      ShardState& s = shards[i];
      if (s.done || s.failed) continue;
      all_settled = false;
      if (live(s)) {
        int status = 0;
        // Per-pid WNOHANG, never waitpid(-1): the embedding process
        // (tests, a larger harness) may own children of its own.
        const int r = ::waitpid(s.pid, &status, WNOHANG);
        if (r == s.pid) {
          settle_exit(i, status);
        } else if (!s.hung && now - s.last_hb > hb_timeout) {
          // Hung (or SIGSTOPped) worker: no heartbeat inside the
          // deadline.  SIGKILL lands even on stopped processes; the
          // reap above settles the attempt next pass.
          ++report.heartbeats_missed;
          s.hung = true;
          obs::Logger::global().warn(
              "shard.heartbeat_missed",
              {{"shard", i}, {"attempt", s.attempt}});
          ::kill(s.pid, SIGKILL);
        }
      } else if (s.backing_off && now >= s.restart_at) {
        spawn(i);
      }
    }
    if (all_settled) break;

    // Block on the heartbeat pipes (or just sleep, when everyone is in
    // backoff) for one beat interval, then drain whatever arrived.
    pfds.clear();
    pfd_shard.clear();
    for (std::size_t i = 0; i < shards.size(); ++i) {
      if (shards[i].hb_fd >= 0) {
        pfds.push_back({shards[i].hb_fd, POLLIN, 0});
        pfd_shard.push_back(i);
      }
    }
    const int timeout_ms = std::max(
        1, static_cast<int>(options.heartbeat_interval_s * 1000.0));
    if (pfds.empty()) {
      ::poll(nullptr, 0, timeout_ms);
      continue;
    }
    const int ready = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (ready <= 0) continue;
    const auto beat = Clock::now();
    for (std::size_t p = 0; p < pfds.size(); ++p) {
      if ((pfds[p].revents & POLLIN) == 0) continue;
      while (::read(pfds[p].fd, drain, sizeof drain) > 0) {
      }
      shards[pfd_shard[p]].last_hb = beat;
    }
  }

  // Deterministic merge: shards own contiguous ascending job ranges, so
  // walking shards in index order and their chunks in ascending order
  // reproduces the exact serial left-fold of per-chunk partials — the
  // byte-identity contract.  Failed shards are skipped whole; their
  // ranges surface in the report.
  faults::FaultCounters total;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    ShardState& s = shards[i];
    if (!s.done) {
      report.failed_shards.push_back(i);
      report.missing_ranges.push_back(s.range);
      continue;
    }
    run::Journal journal(s.journal_path, /*resume=*/true);
    for (std::size_t b = s.range.begin; b < s.range.end; b += grain) {
      if (options.cancel != nullptr && options.cancel->cancelled()) {
        throw CancelledError("sharded campaign cancelled mid-merge");
      }
      const std::size_t e = std::min(b + grain, s.range.end);
      const std::string* payload =
          journal.find(run::campaign_chunk_key(config_key, b, e));
      core::CampaignAccumulator partial = acc.make_sibling();
      faults::FaultCounters counters;
      EXAEFF_REQUIRE(payload != nullptr &&
                         run::decode_campaign_chunk(*payload, partial,
                                                    counters),
                     "verified shard journal failed to decode");
      acc.merge(partial);
      total += counters;
      ++report.merged_chunks;
      if (options.on_chunk_merged) options.on_chunk_merged(b / grain);
    }
  }
  if (counters_out != nullptr) *counters_out = total;

  publish_shard_metrics(report);
  obs::Logger::global().info(
      "shard.campaign_done",
      {{"shards", report.shards},
       {"merged_chunks", report.merged_chunks},
       {"restarts", report.restarts},
       {"failed", report.failed_shards.size()}});
  return report;
}

}  // namespace exaeff::shard
