#include "shard/worker.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <mutex>
#include <thread>

#include <unistd.h>

#include "common/rng.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "run/checkpoint.h"
#include "run/journal.h"

namespace exaeff::shard {

std::vector<JobRange> partition_jobs(std::size_t n_jobs,
                                     std::size_t n_shards) {
  std::vector<JobRange> out;
  if (n_jobs == 0 || n_shards == 0) return out;
  const std::size_t grain = exec::ThreadPool::chunk_grain(n_jobs);
  const std::size_t chunks = (n_jobs + grain - 1) / grain;
  const std::size_t shards = std::min(n_shards, chunks);
  out.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    // Deal whole chunks, not raw job indices: every boundary lands on a
    // chunk edge, so shard journals and the serial journal agree on
    // every chunk key.
    const std::size_t chunk_lo = s * chunks / shards;
    const std::size_t chunk_hi = (s + 1) * chunks / shards;
    out.push_back(
        {chunk_lo * grain, std::min(chunk_hi * grain, n_jobs)});
  }
  return out;
}

std::vector<JobRange> partition_windows(
    std::span<const run::SpillWindow> windows, std::size_t n_shards) {
  std::vector<JobRange> out;
  if (windows.empty() || n_shards == 0) return out;
  const std::size_t shards = std::min(n_shards, windows.size());
  out.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t lo = s * windows.size() / shards;
    const std::size_t hi = (s + 1) * windows.size() / shards;
    out.push_back({windows[lo].begin, windows[hi - 1].end});
  }
  return out;
}

std::optional<std::uint64_t> crash_decision(const faults::FaultPlan& plan,
                                            std::size_t shard_index,
                                            std::size_t attempt,
                                            std::size_t chunk_count) {
  if (!(plan.crash_probability > 0.0) || chunk_count == 0) {
    return std::nullopt;
  }
  // One splitmix64 stream per (seed, shard, attempt): first draw decides
  // whether this incarnation dies, second picks the chunk it dies after.
  // Keying on the attempt makes retried incarnations independent, so
  // crash=1 deterministically exhausts every retry while crash=p<1
  // yields reproducible mixed schedules.
  std::uint64_t state = plan.seed;
  state ^= 0xC7A5ECu;  // domain-separate from the telemetry fault draws
  state ^= splitmix64(state) + shard_index;
  state ^= splitmix64(state) + attempt;
  const double u =
      static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
  if (u >= plan.crash_probability) return std::nullopt;
  return splitmix64(state) % chunk_count + 1;
}

namespace {

/// Heartbeat pump: one byte every interval until stopped.  The chunk
/// callback writes its own bytes from pool threads; 1-byte writes to a
/// pipe are atomic, and the coordinator only cares that *something*
/// arrived recently, so interleaving is immaterial.
class HeartbeatPump {
 public:
  HeartbeatPump(int fd, double interval_s) : fd_(fd) {
    if (fd_ < 0) return;
    thread_ = std::thread([this, interval_s] {
      const auto interval = std::chrono::duration<double>(interval_s);
      std::unique_lock<std::mutex> lk(mu_);
      while (!stop_) {
        beat(fd_);
        cv_.wait_for(lk, interval, [this] { return stop_; });
      }
    });
  }

  ~HeartbeatPump() {
    if (fd_ < 0) return;
    {
      const std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_.notify_one();
    thread_.join();
  }

  /// Writes one heartbeat byte; drops it when the pipe is full (the
  /// write end is O_NONBLOCK) — a full pipe already proves liveness.
  static void beat(int fd) {
    if (fd < 0) return;
    const char b = 'h';
    [[maybe_unused]] const ssize_t n = ::write(fd, &b, 1);
  }

 private:
  int fd_;
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace

void worker_main(const sched::FleetGenerator& gen,
                 const sched::SchedulerLog& log,
                 const core::CampaignAccumulator& proto,
                 const faults::FaultPlan& plan, const WorkerConfig& cfg) {
  // Shed the parent's supervision machinery: default signal dispositions
  // (the parent's handlers reference its Supervisor token), and no
  // metrics/tracing (their global registries are not fork-safe while
  // other parent threads may have been mid-update).
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  obs::set_metrics_enabled(false);
  obs::Tracer::global().set_enabled(false);

  try {
    const std::size_t grain =
        exec::ThreadPool::chunk_grain(log.jobs().size());
    const std::size_t local_chunks =
        cfg.range.empty() ? 0 : (cfg.range.size() + grain - 1) / grain;
    const auto crash_after =
        crash_decision(plan, cfg.shard_index, cfg.attempt, local_chunks);

    run::Journal journal(cfg.journal_path, cfg.resume);
    HeartbeatPump pump(cfg.heartbeat_fd, cfg.heartbeat_interval_s);
    // The worker's own pool — never ThreadPool::global(), whose worker
    // threads did not survive the fork.
    exec::ThreadPool pool(cfg.threads);

    std::atomic<std::uint64_t> chunks_done{0};
    core::CampaignAccumulator acc = proto.make_sibling();
    const auto on_chunk = [&](std::size_t /*begin*/, std::size_t /*end*/) {
      const std::uint64_t done =
          chunks_done.fetch_add(1, std::memory_order_acq_rel) + 1;
      HeartbeatPump::beat(cfg.heartbeat_fd);
      // Replayed chunks count too: with crash=1 a retried
      // incarnation still dies, so retry exhaustion is reachable
      // from the CLI, not just from tests.
      if (crash_after.has_value() && done == *crash_after) {
        ::raise(SIGKILL);
      }
    };
    if (!cfg.spill_dir.empty()) {
      telemetry::SpillConfig spill;
      spill.dir = cfg.spill_dir;
      spill.window_s = gen.config().telemetry_window_s;
      spill.window_index_base = cfg.window_index_base;
      telemetry::SpillStore store(std::move(spill));
      run::generate_telemetry_spilled(gen, log, cfg.range.begin,
                                      cfg.range.end, acc, store, pool,
                                      &journal, cfg.windows, on_chunk);
    } else {
      run::generate_telemetry_checkpointed(gen, log, cfg.range.begin,
                                           cfg.range.end, acc, plan, pool,
                                           &journal, nullptr, on_chunk);
    }
    // The accumulator itself is discarded: the durable product of a
    // worker is its journal, which the coordinator refolds in global
    // chunk order.
    ::_exit(0);
  } catch (...) {
    ::_exit(1);
  }
}

}  // namespace exaeff::shard
