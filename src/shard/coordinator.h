// exaeff/shard/coordinator.h
//
// Fault-tolerant multi-process shard campaigns: the coordinator half of
// exaeff::shard (`exaeff campaign --shards=N`).
//
// The paper's headline analysis spans 9408 nodes over three months; at
// that scale worker crashes, hangs, and torn files are operational
// routine, not exceptions.  The coordinator fork()s one worker per
// contiguous chunk-aligned job range (worker.h), then supervises:
//
//   * crashes   — per-worker waitpid(WNOHANG) + exit status;
//   * hangs     — a heartbeat pipe per worker with a deadline (the
//                 --deadline watchdog idiom, per process);
//   * torn data — each shard file is a run::Journal, so a SIGKILL
//                 mid-append costs at most one record on reload.
//
// A failed or hung worker is SIGKILLed (if needed) and restarted under
// a common::BackoffPolicy, resuming from its own shard journal rather
// than from scratch.  Because every shard boundary sits on a
// map_chunks chunk boundary and chunk partials fold in ascending global
// chunk order, the merged accumulator is byte-identical to a serial run
// for any shard count, thread count, and any crash/restart schedule —
// floating-point addition is non-associative, so the merge folds
// *per-chunk* partials in chunk order, never pre-folded per-shard
// state.
//
// When a shard exhausts its retries the merge degrades gracefully:
// surviving shards still fold deterministically, the report lists the
// missing job ranges, and the caller routes the shortfall through the
// --min-coverage gate and exits 3.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/backoff.h"
#include "exec/cancellation.h"
#include "faults/injector.h"
#include "shard/worker.h"

namespace exaeff::shard {

struct ShardOptions {
  std::size_t shards = 2;          ///< worker processes requested
  common::BackoffPolicy retry;     ///< restart schedule per shard
  double heartbeat_interval_s = 0.05;
  /// A worker silent for this long is declared hung and SIGKILLed.
  double heartbeat_timeout_s = 2.0;
  /// Directory for shard-<i>.ckpt journals; must exist.
  std::string shard_dir;
  /// Threads per worker pool; 0 = exec::job_count().
  std::size_t worker_threads = 0;
  /// First incarnations load pre-existing shard journals (--resume).
  bool resume = false;
  /// Out-of-core mode: non-empty `spill_dir` (with a positive
  /// `memory_budget_bytes`) plans campaign-global spill windows, deals
  /// whole windows to shards, and has every worker stream its telemetry
  /// through a telemetry::SpillStore into the shared directory.  Window
  /// file names carry global indices, so the merged directory is
  /// byte-identical to a single-process spill run.  Incompatible with
  /// telemetry fault injection (spill queries must be exact).
  std::string spill_dir;
  std::size_t memory_budget_bytes = 0;
  /// Checked in the supervise loop and between merged chunks; tripping
  /// it SIGKILLs every live worker and throws CancelledError.
  const exec::CancellationToken* cancel = nullptr;

  // Test hooks (both optional, called from the coordinating thread).
  /// After each fork: (shard_index, attempt, pid).
  std::function<void(std::size_t, std::size_t, int)> on_spawn;
  /// After each chunk partial merges into the caller's accumulator.
  std::function<void(std::size_t chunk_index)> on_chunk_merged;
};

/// What happened, for metrics, the CLI report line, and tests.
struct ShardReport {
  std::size_t shards = 0;             ///< effective worker count
  std::size_t total_chunks = 0;
  std::size_t merged_chunks = 0;
  std::uint64_t restarts = 0;          ///< respawns after the first spawn
  std::uint64_t heartbeats_missed = 0; ///< hang detections (SIGKILLs)
  std::vector<std::size_t> failed_shards;  ///< exhausted all retries
  std::vector<JobRange> missing_ranges;    ///< their job ranges, in order

  [[nodiscard]] bool degraded() const { return !failed_shards.empty(); }

  /// One line naming the missing job ranges, e.g.
  /// "2 of 8 shards failed after 4 attempts; missing jobs [64,128) [192,256)".
  [[nodiscard]] std::string describe(std::size_t max_attempts) const;
};

/// Publishes exaeff_shard_{restarts,heartbeats_missed,shards_failed}_total.
void publish_shard_metrics(const ShardReport& report);

/// Runs the campaign's telemetry stage across `options.shards` worker
/// processes and folds the per-chunk partials into `acc` (merged fault
/// tallies into `counters_out` when non-null).  Returns the supervision
/// report; inspect report.degraded() — completed shards are merged
/// either way.  Throws CancelledError when options.cancel trips, and
/// Error on unrecoverable coordinator-side failures (fork/pipe).
ShardReport run_sharded_campaign(const sched::FleetGenerator& gen,
                                 const sched::SchedulerLog& log,
                                 core::CampaignAccumulator& acc,
                                 const faults::FaultPlan& plan,
                                 const ShardOptions& options,
                                 faults::FaultCounters* counters_out);

}  // namespace exaeff::shard
