// exaeff/shard/worker.h
//
// The worker half of the multi-process shard runtime (see
// coordinator.h for the supervision story).  A shard worker is a
// fork()ed child that owns one contiguous, chunk-aligned job range of
// the campaign: it journals per-chunk accumulator partials to its own
// run::Journal-format shard file (so a restarted incarnation resumes
// from the last durable chunk) and writes a heartbeat byte to a pipe on
// an interval plus one per finished chunk, which is how the coordinator
// tells "slow" from "hung".
//
// Everything here runs post-fork in a process that inherited a threaded
// parent, so the worker touches none of the parent's shared machinery:
// it builds its own exec::ThreadPool, disables metrics and tracing
// (their registries' mutexes may have been mid-operation in another
// thread at fork time), resets signal dispositions, and leaves through
// _exit() — never exit() — so no parent-registered atexit handler or
// static destructor runs twice.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/accumulator.h"
#include "faults/fault_plan.h"
#include "run/spill_campaign.h"
#include "sched/fleetgen.h"

namespace exaeff::shard {

/// One contiguous job-index range [begin, end).
struct JobRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  [[nodiscard]] std::size_t size() const { return end - begin; }
  [[nodiscard]] bool empty() const { return begin >= end; }
  bool operator==(const JobRange&) const = default;
};

/// Splits `n_jobs` into at most `n_shards` contiguous ranges whose
/// boundaries all sit on exec::ThreadPool::chunk_grain(n_jobs) chunk
/// boundaries — the invariant that makes per-shard journals refold into
/// exactly the serial chunk order.  Shards get a near-even number of
/// chunks each; when there are fewer chunks than shards, the tail
/// shards are simply omitted (every returned range is non-empty).
[[nodiscard]] std::vector<JobRange> partition_jobs(std::size_t n_jobs,
                                                   std::size_t n_shards);

/// Spill-mode analogue of partition_jobs(): deals whole spill windows
/// to at most `n_shards` contiguous ranges (every returned range is
/// non-empty).  Window boundaries sit on chunk boundaries by
/// construction, so shard journals keep the chunk-key invariant, and
/// whole windows per shard keep the spill-file set campaign-global.
[[nodiscard]] std::vector<JobRange> partition_windows(
    std::span<const run::SpillWindow> windows, std::size_t n_shards);

/// The seeded `crash=` fault draw for one worker incarnation: returns
/// the 1-based count of chunk completions (journal replays included)
/// after which the incarnation raises SIGKILL against itself, or
/// nullopt when this incarnation survives.  Deterministic in
/// (plan.seed, plan.crash_probability, shard_index, attempt), so a
/// chaos run's crash schedule is reproducible from the command line and
/// tests can predict exactly which shards exhaust their retries.
[[nodiscard]] std::optional<std::uint64_t> crash_decision(
    const faults::FaultPlan& plan, std::size_t shard_index,
    std::size_t attempt, std::size_t chunk_count);

/// Everything a forked worker needs; assembled by the coordinator.
struct WorkerConfig {
  std::size_t shard_index = 0;
  std::size_t attempt = 1;          ///< 1-based incarnation counter
  JobRange range;                   ///< chunk-aligned job range owned
  std::string journal_path;         ///< this shard's checkpoint file
  int heartbeat_fd = -1;            ///< pipe write end; -1 disables
  double heartbeat_interval_s = 0.05;
  std::size_t threads = 0;          ///< worker pool width; 0 = job_count()
  bool resume = false;              ///< load existing shard journal

  // Out-of-core mode (exaeff campaign --spill-dir=/--memory-budget=):
  // non-empty `spill_dir` switches the worker from the checkpointed
  // generator to run::generate_telemetry_spilled.  `windows` is this
  // shard's slice of the campaign-global spill plan (covering `range`
  // exactly) and `window_index_base` the global plan index of its first
  // window, so every worker names its spill files by campaign-global
  // window number and the shared spill directory is identical to a
  // single-process run.  Spill incarnations never resume from their
  // journal — the raw samples a window needs are not journaled — they
  // regenerate deterministically and rewrite their files atomically.
  std::string spill_dir;
  std::vector<run::SpillWindow> windows;
  std::size_t window_index_base = 0;
};

/// Body of a forked shard worker; must be called directly after fork()
/// in the child and never returns.  Exit status: 0 when every chunk of
/// the range is durably journaled, 1 on any error (the coordinator
/// retries either way after verifying the journal — a crash *after* the
/// last chunk landed still counts as a completed shard).
[[noreturn]] void worker_main(const sched::FleetGenerator& gen,
                              const sched::SchedulerLog& log,
                              const core::CampaignAccumulator& proto,
                              const faults::FaultPlan& plan,
                              const WorkerConfig& cfg);

}  // namespace exaeff::shard
