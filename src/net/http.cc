#include "net/http.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <sstream>

namespace exaeff::net {

namespace {

bool is_token_char(char c) {
  // RFC 7230 tchar.
  if (std::isalnum(static_cast<unsigned char>(c))) return true;
  switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'': case '*':
    case '+': case '-': case '.': case '^': case '_': case '`': case '|':
    case '~':
      return true;
    default:
      return false;
  }
}

bool is_visible(char c) {
  const auto u = static_cast<unsigned char>(c);
  return u >= 0x21 && u <= 0x7E;
}

std::string_view trim_ows(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// Strips one trailing '\r' (lines may end \r\n or bare \n).
std::string_view chomp_cr(std::string_view line) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  return line;
}

}  // namespace

const std::string* HttpRequest::header(std::string_view name) const {
  for (const auto& [k, v] : headers) {
    if (k == name) return &v;
  }
  return nullptr;
}

HttpParser::HttpParser(Limits limits) : limits_(limits) {}

bool HttpParser::feed(std::string_view bytes) {
  if (complete_) return true;
  // Bound the buffer before copying: admission of hostile bytes is
  // capped at the header limit plus one read's worth.
  if (bytes.find('\0') != std::string_view::npos ||
      buf_.find('\0') != std::string::npos) {
    throw HttpError(400, "NUL byte in request head");
  }
  buf_.append(bytes.data(), bytes.size());
  // End of head: blank line, tolerant of \r\n\r\n and \n\n.
  std::size_t head_end = std::string::npos;
  std::size_t body_skip = 0;
  if (const auto p = buf_.find("\r\n\r\n"); p != std::string::npos) {
    head_end = p;
    body_skip = 4;
  }
  if (const auto p = buf_.find("\n\n");
      p != std::string::npos && p < head_end) {
    head_end = p;
    body_skip = 2;
  }
  (void)body_skip;
  if (head_end == std::string::npos) {
    const auto first_eol = buf_.find('\n');
    if (first_eol == std::string::npos &&
        buf_.size() > limits_.max_request_line) {
      throw HttpError(414, "request line too long");
    }
    if (buf_.size() > limits_.max_header_bytes) {
      throw HttpError(431, "request header block too large");
    }
    return false;
  }
  if (head_end > limits_.max_header_bytes) {
    throw HttpError(431, "request header block too large");
  }
  parse_head(std::string_view(buf_).substr(0, head_end));
  complete_ = true;
  return true;
}

void HttpParser::parse_head(std::string_view head) {
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= head.size()) {
    auto eol = head.find('\n', pos);
    if (eol == std::string_view::npos) eol = head.size();
    const std::string_view line = chomp_cr(head.substr(pos, eol - pos));
    pos = eol + 1;
    if (line_no == 0) {
      parse_request_line(line);
    } else if (!line.empty()) {
      if (req_.headers.size() >= limits_.max_headers) {
        throw HttpError(431, "too many request headers");
      }
      parse_header_line(line);
    }
    ++line_no;
    if (eol == head.size()) break;
  }
  // No-body surface: anything that declares one is refused outright
  // rather than half-read.
  if (const std::string* cl = req_.header("content-length")) {
    std::uint64_t n = 0;
    const auto [ptr, ec] =
        std::from_chars(cl->data(), cl->data() + cl->size(), n);
    if (ec != std::errc{} || ptr != cl->data() + cl->size()) {
      throw HttpError(400, "bad Content-Length '" + *cl + "'");
    }
    if (n > 0) throw HttpError(413, "request bodies are not supported");
  }
  if (req_.header("transfer-encoding") != nullptr) {
    throw HttpError(413, "request bodies are not supported");
  }
}

void HttpParser::parse_request_line(std::string_view line) {
  if (line.size() > limits_.max_request_line) {
    throw HttpError(414, "request line too long");
  }
  const auto sp1 = line.find(' ');
  const auto sp2 = sp1 == std::string_view::npos
                       ? std::string_view::npos
                       : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      line.find(' ', sp2 + 1) != std::string_view::npos) {
    throw HttpError(400, "malformed request line");
  }
  const std::string_view method = line.substr(0, sp1);
  const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = line.substr(sp2 + 1);
  if (method.empty() || method.size() > 16 ||
      !std::all_of(method.begin(), method.end(), [](char c) {
        return c >= 'A' && c <= 'Z';
      })) {
    throw HttpError(400, "bad request method");
  }
  if (target.empty() || target.front() != '/' ||
      !std::all_of(target.begin(), target.end(), is_visible)) {
    throw HttpError(400, "bad request target");
  }
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    throw HttpError(505, "unsupported HTTP version");
  }
  req_.method = std::string(method);
  req_.target = std::string(target);
  req_.version = std::string(version);
  const auto q = target.find('?');
  const std::string_view raw_path =
      q == std::string_view::npos ? target : target.substr(0, q);
  req_.query =
      q == std::string_view::npos ? std::string() : std::string(target.substr(q + 1));
  req_.path = percent_decode(raw_path);
}

void HttpParser::parse_header_line(std::string_view line) {
  const auto colon = line.find(':');
  if (colon == std::string_view::npos || colon == 0) {
    throw HttpError(400, "malformed header line");
  }
  const std::string_view name = line.substr(0, colon);
  if (!std::all_of(name.begin(), name.end(), is_token_char)) {
    throw HttpError(400, "bad header name");
  }
  const std::string_view value = trim_ows(line.substr(colon + 1));
  for (char c : value) {
    const auto u = static_cast<unsigned char>(c);
    if (u < 0x20 && c != '\t') {
      throw HttpError(400, "control character in header value");
    }
  }
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(), [](char c) {
    return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  });
  req_.headers.emplace_back(std::move(lower), std::string(value));
}

ReadOutcome read_request(int fd, HttpParser& parser, Deadline deadline) {
  while (!parser.complete()) {
    const int rc = wait_readable(fd, deadline.remaining_ms());
    if (rc == 0) return ReadOutcome::kTimeout;
    if (rc < 0) {
      return parser.buffered_bytes() > 0 ? ReadOutcome::kClosedPartial
                                         : ReadOutcome::kClosedEmpty;
    }
    char buf[2048];
    const ssize_t n = recv_some(fd, buf, sizeof buf);
    if (n == 0) {
      return parser.buffered_bytes() > 0 ? ReadOutcome::kClosedPartial
                                         : ReadOutcome::kClosedEmpty;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return parser.buffered_bytes() > 0 ? ReadOutcome::kClosedPartial
                                         : ReadOutcome::kClosedEmpty;
    }
    if (parser.feed(std::string_view(buf, static_cast<std::size_t>(n)))) {
      return ReadOutcome::kComplete;
    }
    if (deadline.expired()) return ReadOutcome::kTimeout;
  }
  return ReadOutcome::kComplete;
}

std::string percent_decode(std::string_view text, bool plus_is_space) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '%') {
      const int hi = i + 1 < text.size() ? hex_digit(text[i + 1]) : -1;
      const int lo = i + 2 < text.size() ? hex_digit(text[i + 2]) : -1;
      if (hi < 0 || lo < 0) {
        throw HttpError(400, "bad percent-encoding in '" +
                                 std::string(text) + "'");
      }
      out.push_back(static_cast<char>((hi << 4) | lo));
      i += 2;
    } else if (c == '+' && plus_is_space) {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::vector<std::pair<std::string, std::string>> parse_query(
    std::string_view query) {
  std::vector<std::pair<std::string, std::string>> out;
  std::size_t pos = 0;
  while (pos < query.size()) {
    auto amp = query.find('&', pos);
    if (amp == std::string_view::npos) amp = query.size();
    const std::string_view item = query.substr(pos, amp - pos);
    pos = amp + 1;
    if (item.empty()) continue;
    const auto eq = item.find('=');
    const std::string_view k =
        eq == std::string_view::npos ? item : item.substr(0, eq);
    const std::string_view v =
        eq == std::string_view::npos ? std::string_view() : item.substr(eq + 1);
    out.emplace_back(percent_decode(k, /*plus_is_space=*/true),
                     percent_decode(v, /*plus_is_space=*/true));
  }
  return out;
}

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 414: return "URI Too Long";
    case 422: return "Unprocessable Entity";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    case 505: return "HTTP Version Not Supported";
    default: return "Error";
  }
}

std::string render_response(const HttpResponse& r, bool head_only) {
  std::ostringstream os;
  os << r.version << " " << r.status << " " << status_text(r.status)
     << "\r\n"
     << "Content-Type: " << r.content_type << "\r\n"
     << "Content-Length: " << r.body.size() << "\r\n";
  for (const auto& [k, v] : r.extra_headers) {
    os << k << ": " << v << "\r\n";
  }
  os << "Connection: close\r\n\r\n";
  if (!head_only) os << r.body;
  return os.str();
}

}  // namespace exaeff::net
