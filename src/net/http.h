// exaeff/net/http.h
//
// A hardened, incremental HTTP/1.x request parser plus response
// rendering, sized for the project's two serving surfaces (the obs
// scrape endpoint and the `exaeff serve` projection service).  Scope is
// deliberately narrow — GET/HEAD, no request bodies, Connection: close
// — and every limit is explicit:
//
//   * requests may arrive split across any number of packets (feed()
//     is incremental); bytes are buffered up to Limits::max_header_bytes
//     and never beyond, so a malicious client cannot grow memory;
//   * a request line longer than Limits::max_request_line → 414;
//   * a header block larger than max_header_bytes, or more than
//     max_headers header lines → 431;
//   * NUL bytes, malformed request lines, bad header names, control
//     characters in values, or invalid percent-encoding → 400;
//   * a request that declares a body (Content-Length > 0 or any
//     Transfer-Encoding) → 413;
//   * an HTTP version other than 1.0/1.1 → 505.
//
// Violations throw HttpError carrying the HTTP status; the caller turns
// it into a structured error response.  This mirrors the CLI's error
// taxonomy: usage-class problems are the client's fault and get 4xx,
// the process never crashes or hangs on hostile input.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/error.h"
#include "net/socket_io.h"

namespace exaeff::net {

/// A protocol violation by the client, carrying the HTTP status code
/// the response must use.  Derived from exaeff::Error so surfaces that
/// only know the taxonomy still classify it correctly.
class HttpError : public Error {
 public:
  HttpError(int status, const std::string& what)
      : Error(what), status_(status) {}
  [[nodiscard]] int status() const { return status_; }

 private:
  int status_;
};

/// A parsed request head.  Header names are lower-cased; values are
/// trimmed of surrounding whitespace.  `target` is the raw request
/// target; `path` is its percent-decoded path part and `query` the raw
/// query string (decode via parse_query when needed).
struct HttpRequest {
  std::string method;
  std::string target;
  std::string path;
  std::string query;
  std::string version;
  std::vector<std::pair<std::string, std::string>> headers;

  /// First header with the given lower-case name, or nullptr.
  [[nodiscard]] const std::string* header(std::string_view name) const;
};

/// Incremental request parser: feed() bytes as they arrive until it
/// returns true, then read request().  One parser parses one request;
/// bytes after the header block (pipelined garbage) are ignored, which
/// is correct for Connection: close servers.
class HttpParser {
 public:
  struct Limits {
    std::size_t max_request_line = 4096;  ///< method + target + version
    std::size_t max_header_bytes = 8192;  ///< whole head incl request line
    std::size_t max_headers = 64;
  };

  HttpParser() : HttpParser(Limits{}) {}
  explicit HttpParser(Limits limits);

  /// Appends bytes; returns true once the request head is complete.
  /// Throws HttpError on any violation (see file header for the map).
  bool feed(std::string_view bytes);

  [[nodiscard]] bool complete() const { return complete_; }
  [[nodiscard]] const HttpRequest& request() const { return req_; }
  [[nodiscard]] std::size_t buffered_bytes() const { return buf_.size(); }

 private:
  void parse_head(std::string_view head);
  void parse_request_line(std::string_view line);
  void parse_header_line(std::string_view line);

  Limits limits_;
  std::string buf_;
  HttpRequest req_;
  bool complete_ = false;
};

/// How a deadline-bounded request read ended.
enum class ReadOutcome {
  kComplete,       ///< parser.request() is valid
  kTimeout,        ///< deadline expired before the head completed
  kClosedEmpty,    ///< peer closed without sending anything (churn)
  kClosedPartial,  ///< peer closed mid-request
};

/// Reads from `fd` until the parser completes, the deadline expires, or
/// the peer closes.  Propagates HttpError from the parser.  This is the
/// slow-loris defense: a silent or dribbling client costs at most the
/// deadline, and at most Limits::max_header_bytes of memory.
[[nodiscard]] ReadOutcome read_request(int fd, HttpParser& parser,
                                       Deadline deadline);

/// Percent-decodes `text`; '+' becomes a space when `plus_is_space`.
/// Throws HttpError(400) on truncated or non-hex escapes.
[[nodiscard]] std::string percent_decode(std::string_view text,
                                         bool plus_is_space = false);

/// Splits a raw query string into decoded key/value pairs, preserving
/// order.  Throws HttpError(400) on bad percent-encoding.
[[nodiscard]] std::vector<std::pair<std::string, std::string>> parse_query(
    std::string_view query);

/// A response to render.  `version` lets the HTTP/1.0 scrape endpoint
/// and the HTTP/1.1 projection service share one renderer.
struct HttpResponse {
  int status = 200;
  const char* version = "HTTP/1.1";
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  std::vector<std::pair<std::string, std::string>> extra_headers;
};

[[nodiscard]] const char* status_text(int status);

/// Serializes a complete response with Content-Length and
/// Connection: close.  `head_only` omits the body (HEAD requests).
[[nodiscard]] std::string render_response(const HttpResponse& r,
                                          bool head_only);

}  // namespace exaeff::net
