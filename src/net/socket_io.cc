#include "net/socket_io.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace exaeff::net {

namespace {

// Poll timeouts are capped so remaining_ms() of an unbounded deadline
// still returns something poll(2) accepts.
constexpr int kMaxPollMs = 3600 * 1000;

}  // namespace

Deadline Deadline::after_ms(long ms) {
  Deadline d;
  d.at_ = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  return d;
}

Deadline Deadline::never() {
  Deadline d;
  d.unbounded_ = true;
  return d;
}

bool Deadline::expired() const {
  if (unbounded_) return false;
  return std::chrono::steady_clock::now() >= at_;
}

int Deadline::remaining_ms() const {
  if (unbounded_) return kMaxPollMs;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        at_ - std::chrono::steady_clock::now())
                        .count();
  if (left <= 0) return 0;
  if (left > kMaxPollMs) return kMaxPollMs;
  return static_cast<int>(left);
}

int listen_tcp(const std::string& bind_address, std::uint16_t port,
               int backlog, std::string& error) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, bind_address.c_str(), &addr.sin_addr) != 1) {
    error = "bad bind address '" + bind_address + "'";
    close_fd(fd);
    return -1;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    error = std::string("bind: ") + std::strerror(errno);
    close_fd(fd);
    return -1;
  }
  if (::listen(fd, backlog) < 0) {
    error = std::string("listen: ") + std::strerror(errno);
    close_fd(fd);
    return -1;
  }
  return fd;
}

std::uint16_t bound_port(int listen_fd) {
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    return 0;
  }
  return ntohs(bound.sin_port);
}

int accept_connection(int listen_fd, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = listen_fd;
  pfd.events = POLLIN;
  const int rc = ::poll(&pfd, 1, timeout_ms);
  if (rc <= 0) return -1;  // timeout or EINTR: caller re-checks stop flags
  return ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
}

int connect_tcp(const std::string& host, std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close_fd(fd);
    return -1;
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    close_fd(fd);
    return -1;
  }
  return fd;
}

int wait_readable(int fd, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLIN;
  int rc;
  do {
    rc = ::poll(&pfd, 1, timeout_ms);
  } while (rc < 0 && errno == EINTR);
  return rc;
}

ssize_t recv_some(int fd, char* buf, std::size_t n) {
  ssize_t r;
  do {
    r = ::recv(fd, buf, n, 0);
  } while (r < 0 && errno == EINTR);
  return r;
}

bool send_all(int fd, std::string_view data, Deadline deadline) {
  std::size_t off = 0;
  while (off < data.size()) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    int rc;
    do {
      rc = ::poll(&pfd, 1, deadline.remaining_ms());
    } while (rc < 0 && errno == EINTR);
    if (rc <= 0) return false;  // write deadline: drop, never half-retry
    const ssize_t w = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        if (deadline.expired()) return false;
        continue;
      }
      return false;
    }
    off += static_cast<std::size_t>(w);
    if (off < data.size() && deadline.expired()) return false;
  }
  return true;
}

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace exaeff::net
