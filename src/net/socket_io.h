// exaeff/net/socket_io.h
//
// Deadline-bounded blocking socket I/O, shared by every networked
// surface in the tree: the obs exposition server, the `exaeff serve`
// projection service, and the loadgen client.  The design rule is that
// no read or write ever blocks without a bound — a peer that connects
// and goes silent (slow-loris) costs at most the caller's deadline,
// never a pinned thread.
//
// All helpers are EINTR-safe and use poll(2) rather than per-socket
// timeouts, so a single fd can be driven against several different
// deadlines over its lifetime (read deadline, then write deadline).
#pragma once

#include <sys/types.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

namespace exaeff::net {

/// An absolute point on the monotonic clock that I/O must finish by.
/// Value type: copy freely, derive poll timeouts from remaining_ms().
class Deadline {
 public:
  /// Expires `ms` milliseconds from now (ms <= 0 expires immediately).
  [[nodiscard]] static Deadline after_ms(long ms);
  /// Never expires (remaining_ms() saturates at a large poll timeout).
  [[nodiscard]] static Deadline never();

  [[nodiscard]] bool expired() const;
  /// Remaining budget clamped to [0, 1h] in milliseconds — the form
  /// poll(2) wants.
  [[nodiscard]] int remaining_ms() const;

 private:
  std::chrono::steady_clock::time_point at_{};
  bool unbounded_ = false;
};

/// Binds and listens on `bind_address:port` (port 0 = ephemeral).
/// Returns the listening fd, or -1 with the reason in `error`.
[[nodiscard]] int listen_tcp(const std::string& bind_address,
                             std::uint16_t port, int backlog,
                             std::string& error);

/// The actually-bound port of a listening fd (resolves port 0).
[[nodiscard]] std::uint16_t bound_port(int listen_fd);

/// Waits up to `timeout_ms` for the listening fd to become readable and
/// accepts one connection.  Returns the connection fd, or -1 on
/// timeout/EINTR/transient accept failure (callers loop).
[[nodiscard]] int accept_connection(int listen_fd, int timeout_ms);

/// Blocking client connect to an IPv4 address.  Returns fd or -1.
[[nodiscard]] int connect_tcp(const std::string& host, std::uint16_t port);

/// Waits for readability.  Returns >0 readable, 0 timeout, <0 error.
[[nodiscard]] int wait_readable(int fd, int timeout_ms);

/// One recv(2) after the fd is readable.  Returns bytes read, 0 on
/// orderly peer close, -1 on error (EINTR/EAGAIN already retried away
/// by the caller's poll loop; a residual -1 is a real error).
[[nodiscard]] ssize_t recv_some(int fd, char* buf, std::size_t n);

/// Writes all of `data` before `deadline`, polling for writability
/// between partial sends.  Returns false on timeout or socket error —
/// the caller's response is considered dropped, never half-retried.
[[nodiscard]] bool send_all(int fd, std::string_view data, Deadline deadline);

/// close(2) + reset to -1; no-op on fd < 0.
void close_fd(int& fd);

}  // namespace exaeff::net
