#include "workloads/membench.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/error.h"

namespace exaeff::workloads::membench {

double l2_hit_fraction(const gpusim::DeviceSpec& spec,
                       double working_set_bytes) {
  EXAEFF_REQUIRE(working_set_bytes > 0.0, "working set must be positive");
  return std::min(1.0, spec.l2_bytes / working_set_bytes);
}

gpusim::KernelDesc make_kernel(const gpusim::DeviceSpec& spec,
                               double working_set_bytes,
                               const Params& params) {
  EXAEFF_REQUIRE(params.runtime_target_s > 0.0,
                 "runtime target must be positive");
  const double h = l2_hit_fraction(spec, working_set_bytes);

  gpusim::KernelDesc k;
  char label[64];
  std::snprintf(label, sizeof label, "membench/%.0fKiB",
                working_set_bytes / 1024.0);
  k.name = label;
  k.issue_boundedness = params.issue_boundedness;
  k.latency_s = params.launch_overhead_s;

  // Choose the traffic volume V so the unconstrained run hits the target
  // runtime given the mixed-service bandwidth.
  const double mixed_bw_inv =
      h / spec.l2_bw + (1.0 - h) / spec.hbm_bw;  // seconds per byte
  const double volume = params.runtime_target_s / mixed_bw_inv;

  k.l2_bytes = volume;               // every load transits the L2
  k.hbm_bytes = volume * (1.0 - h);  // misses go out to HBM
  // Address arithmetic only: ~1 flop per 16 bytes loaded.
  k.flops = volume / 16.0;
  k.validate();
  return k;
}

std::vector<double> standard_sizes() {
  std::vector<double> sizes;
  for (double s = 384.0 * 1024.0; s <= 1.5 * 1024.0 * 1024.0 * 1024.0;
       s *= 2.0) {
    sizes.push_back(s);
  }
  return sizes;
}

std::vector<double> hbm_resident_sizes(const gpusim::DeviceSpec& spec) {
  std::vector<double> out;
  for (double s : standard_sizes()) {
    if (s > spec.l2_bytes) out.push_back(s);
  }
  return out;
}

}  // namespace exaeff::workloads::membench
