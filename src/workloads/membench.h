// exaeff/workloads/membench.h
//
// The GPU-benches-style L2-cache / HBM bandwidth benchmark the paper uses
// for memory characterization (§III-B-b, Fig 3, Fig 6).  The real kernel
// launches 100,000 blocks of 1,024 threads, each repeatedly loading a
// chunk (chunk = block_id % num_chunks) so the same working set is
// streamed at maximum rate.  Starting from a single 384 KB chunk, the
// working set grows until it spills from the 16 MB L2 into HBM.
//
// Modeled here with an L2 hit fraction h = min(1, L2_size/working_set):
// traffic volume V is served h from L2 and (1-h) from HBM.  Massive
// thread-level parallelism hides the engine clock for the HBM portion
// (issue_boundedness ~ 0), while the L2 portion follows the clock — which
// is exactly the split behaviour of Fig 6.
#pragma once

#include <vector>

#include "gpusim/device_spec.h"
#include "gpusim/kernel.h"

namespace exaeff::workloads::membench {

/// Benchmark configuration mirroring the GPU-benches kernel shape.
struct Params {
  double runtime_target_s = 10.0;   ///< per-size measurement window
  double issue_boundedness = 0.03;  ///< HBM stream clock sensitivity
  double launch_overhead_s = 0.02;  ///< kernel launch cost
  std::size_t blocks = 100000;      ///< kernel grid (documentation value)
  std::size_t threads_per_block = 1024;
};

/// Builds the load kernel for a given working-set size (bytes).
[[nodiscard]] gpusim::KernelDesc make_kernel(const gpusim::DeviceSpec& spec,
                                             double working_set_bytes,
                                             const Params& params = {});

/// L2 hit fraction for a working set on this device.
[[nodiscard]] double l2_hit_fraction(const gpusim::DeviceSpec& spec,
                                     double working_set_bytes);

/// The paper's size sweep: 384 KB doubling up to 1.5 GB.
[[nodiscard]] std::vector<double> standard_sizes();

/// Sizes from the sweep that are HBM-resident (working set > L2); the
/// memory-intensive ("MB") rows of Table III average over these.
[[nodiscard]] std::vector<double> hbm_resident_sizes(
    const gpusim::DeviceSpec& spec);

}  // namespace exaeff::workloads::membench
