#include "workloads/app_profile.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.h"

namespace exaeff::workloads {

gpusim::KernelDesc kernel_from_utils(const gpusim::DeviceSpec& spec,
                                     std::string name, double duration_s,
                                     double u_alu, double u_hbm, double u_lat,
                                     double issue_boundedness,
                                     double latency_power_fraction) {
  EXAEFF_REQUIRE(duration_s > 0.0, "phase duration must be positive");
  EXAEFF_REQUIRE(u_alu >= 0.0 && u_alu <= 1.0, "u_alu must be in [0, 1]");
  EXAEFF_REQUIRE(u_hbm >= 0.0 && u_hbm <= 1.0, "u_hbm must be in [0, 1]");
  EXAEFF_REQUIRE(u_lat >= 0.0 && u_lat < 1.0, "u_lat must be in [0, 1)");

  // The dominant throughput engine must fill the non-latency time; scale
  // both utilizations up if the caller left headroom (keeps their ratio).
  const double dominant = std::max(u_alu, u_hbm);
  EXAEFF_REQUIRE(dominant > 0.0 || u_lat > 0.0,
                 "phase must use at least one resource");
  double a = u_alu;
  double h = u_hbm;
  if (dominant > 0.0) {
    const double scale = (1.0 - u_lat) / dominant;
    a *= scale;
    h *= scale;
  }

  gpusim::KernelDesc k;
  k.name = std::move(name);
  k.issue_boundedness = issue_boundedness;
  k.latency_power_fraction = latency_power_fraction;
  k.flops = a * duration_s * spec.peak_flops_sustained;
  k.hbm_bytes = h * duration_s * spec.hbm_bw;
  k.l2_bytes = k.hbm_bytes;  // traffic transits L2
  k.latency_s = u_lat * duration_s;
  k.validate();
  return k;
}

void AppProfile::add_phase(PhaseSpec phase) {
  phase.kernel.validate();
  EXAEFF_REQUIRE(phase.mean_duration_s > 0.0,
                 "phase mean duration must be positive");
  EXAEFF_REQUIRE(phase.weight > 0.0, "phase weight must be positive");
  phases_.push_back(std::move(phase));
}

SampledPhase AppProfile::sample_phase(Rng& rng) const {
  EXAEFF_REQUIRE(!phases_.empty(), "profile has no phases");
  std::vector<double> weights;
  weights.reserve(phases_.size());
  for (const auto& p : phases_) weights.push_back(p.weight);
  const std::size_t idx = rng.categorical(weights.data(), weights.size());
  const PhaseSpec& spec = phases_[idx];

  // Lognormal duration with the archetype's mean: mu chosen so that
  // E[d] = mean (lognormal mean correction exp(sigma^2/2)).
  const double sigma = spec.duration_sigma;
  const double mu = std::log(spec.mean_duration_s) - 0.5 * sigma * sigma;
  const double duration = std::clamp(rng.lognormal(mu, sigma),
                                     0.25 * spec.mean_duration_s,
                                     4.0 * spec.mean_duration_s);

  SampledPhase out;
  out.nominal_duration_s = duration;
  out.kernel = spec.kernel.scaled(duration / spec.mean_duration_s);
  return out;
}

namespace {
/// Shorthand for building a phase from utilization targets.
PhaseSpec phase(const gpusim::DeviceSpec& spec, const char* name,
                double mean_s, double u_alu, double u_hbm, double u_lat,
                double weight, double beta = 0.5, double lat_pf = 0.12) {
  PhaseSpec p;
  p.kernel = kernel_from_utils(spec, name, mean_s, u_alu, u_hbm, u_lat, beta,
                               lat_pf);
  p.mean_duration_s = mean_s;
  p.weight = weight;
  return p;
}
}  // namespace

ProfileLibrary make_profile_library(const gpusim::DeviceSpec& spec) {
  ProfileLibrary lib;

  // Fig 9 (a)/(b): dense-linear-algebra style domains.  Dominant peak in
  // region 3 (420-560 W), occasional near-TDP balanced phases, brief
  // setup/communication dips.  (~456 W / ~538 W / ~347 W at f_max.)
  lib.compute_heavy = AppProfile("compute_heavy");
  lib.compute_heavy.add_phase(
      phase(spec, "gemm", 120.0, 1.00, 0.30, 0.02, 5.5, 0.85));
  lib.compute_heavy.add_phase(
      phase(spec, "fused", 90.0, 1.00, 0.88, 0.02, 2.0, 0.85));
  lib.compute_heavy.add_phase(
      phase(spec, "halo-exch", 20.0, 0.25, 0.30, 0.55, 1.0, 0.6));

  // (~469 W / ~485 W / ~236 W.)
  lib.compute_moderate = AppProfile("compute_moderate");
  lib.compute_moderate.add_phase(
      phase(spec, "kernel-main", 100.0, 1.00, 0.45, 0.05, 4.0, 0.8));
  lib.compute_moderate.add_phase(
      phase(spec, "reduction", 45.0, 0.60, 0.92, 0.08, 2.0, 0.3));
  lib.compute_moderate.add_phase(
      phase(spec, "io-dump", 30.0, 0.08, 0.15, 0.75, 0.8, 0.4));

  // Fig 9 (e)/(f): bandwidth-bound domains (stencils, sparse solvers).
  // (~397 W / ~332 W / ~277 W — squarely in region 2.)
  lib.memory_bandwidth = AppProfile("memory_bandwidth");
  lib.memory_bandwidth.add_phase(
      phase(spec, "stencil", 110.0, 0.20, 0.85, 0.15, 5.0, 0.08));
  lib.memory_bandwidth.add_phase(
      phase(spec, "spmv", 80.0, 0.12, 0.65, 0.35, 3.0, 0.08));
  lib.memory_bandwidth.add_phase(
      phase(spec, "pack-unpack", 25.0, 0.10, 0.45, 0.55, 1.0, 0.10));

  // (~290 W / ~243 W / ~372 W — lower region 2.)
  lib.memory_latency = AppProfile("memory_latency");
  lib.memory_latency.add_phase(
      phase(spec, "gather", 90.0, 0.10, 0.50, 0.50, 4.0, 0.10));
  lib.memory_latency.add_phase(
      phase(spec, "graph-walk", 70.0, 0.07, 0.35, 0.65, 3.0, 0.10));
  lib.memory_latency.add_phase(
      phase(spec, "sort", 40.0, 0.25, 0.70, 0.30, 1.5, 0.15));

  // Fig 9 (c)/(d): latency / network / IO bound domains (~110-230 W).
  lib.latency_io = AppProfile("latency_io");
  lib.latency_io.add_phase(
      phase(spec, "wait-io", 150.0, 0.02, 0.05, 0.95, 5.0, 0.3, 0.05));
  lib.latency_io.add_phase(
      phase(spec, "analysis", 60.0, 0.08, 0.18, 0.82, 2.0, 0.4, 0.08));
  lib.latency_io.add_phase(
      phase(spec, "burst", 25.0, 0.45, 0.55, 0.25, 0.8, 0.6));

  lib.latency_network = AppProfile("latency_network");
  lib.latency_network.add_phase(
      phase(spec, "allreduce-wait", 100.0, 0.03, 0.08, 0.92, 5.0, 0.3, 0.06));
  lib.latency_network.add_phase(
      phase(spec, "local-step", 40.0, 0.10, 0.35, 0.65, 2.2, 0.5, 0.08));

  // Fig 9 (g)/(h): multi-modal domains hopping across regions.
  lib.multimodal_wide = AppProfile("multimodal_wide");
  lib.multimodal_wide.add_phase(
      phase(spec, "fft", 70.0, 0.85, 0.70, 0.05, 2.5, 0.75));
  lib.multimodal_wide.add_phase(
      phase(spec, "transpose", 60.0, 0.15, 0.90, 0.10, 2.5, 0.08));
  lib.multimodal_wide.add_phase(
      phase(spec, "io-phase", 80.0, 0.05, 0.15, 0.85, 2.0, 0.3, 0.08));
  lib.multimodal_wide.add_phase(
      phase(spec, "solve", 90.0, 1.00, 0.40, 0.03, 2.0, 0.85));

  lib.multimodal_burst = AppProfile("multimodal_burst");
  lib.multimodal_burst.add_phase(
      phase(spec, "idle-wait", 120.0, 0.02, 0.05, 0.92, 3.5, 0.3, 0.06));
  lib.multimodal_burst.add_phase(
      phase(spec, "burst-compute", 50.0, 1.00, 0.90, 0.02, 2.5, 0.85));
  lib.multimodal_burst.add_phase(
      phase(spec, "post-process", 40.0, 0.20, 0.55, 0.45, 1.5, 0.12));

  return lib;
}

}  // namespace exaeff::workloads
