#include "workloads/vai.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/error.h"

namespace exaeff::workloads::vai {

gpusim::KernelDesc make_kernel(const gpusim::DeviceSpec& spec, double ai,
                               const Params& params) {
  EXAEFF_REQUIRE(ai >= 0.0, "arithmetic intensity must be non-negative");
  EXAEFF_REQUIRE(params.runtime_target_s > 0.0,
                 "runtime target must be positive");

  gpusim::KernelDesc k;
  if (ai == 0.0) {
    k.name = "vai/copy";
  } else {
    char label[48];
    std::snprintf(label, sizeof label, "vai/ai=%g", ai);
    k.name = label;
  }
  k.issue_boundedness = params.issue_boundedness;
  k.latency_s = params.launch_overhead_s;
  k.latency_exp = 1.0;

  const double t = params.runtime_target_s;
  const double ridge = spec.ridge_intensity();
  if (ai <= ridge) {
    // Memory-bound: the HBM stream fills the runtime.
    k.hbm_bytes = t * spec.hbm_bw;
    k.flops = ai * k.hbm_bytes;
  } else {
    // Compute-bound: the FMA chain fills the runtime.
    k.flops = t * spec.peak_flops_sustained;
    k.hbm_bytes = k.flops / ai;
  }
  if (ai == 0.0) {
    // Stream copy: 1 read + 1 write per element, negligible flops.
    k.flops = k.hbm_bytes / 1024.0;
  }
  // All HBM traffic transits the L2 on its way to the CUs.
  k.l2_bytes = k.hbm_bytes;
  k.validate();
  return k;
}

std::vector<double> standard_intensities() {
  std::vector<double> ai = {0.0};
  for (double v = 1.0 / 16.0; v <= 1024.0; v *= 2.0) ai.push_back(v);
  return ai;
}

std::vector<double> standard_frequency_caps() {
  return {1700.0, 1500.0, 1300.0, 1100.0, 900.0, 700.0};
}

std::vector<double> standard_power_caps() {
  return {560.0, 500.0, 400.0, 300.0, 200.0};
}

}  // namespace exaeff::workloads::vai
