#include "workloads/ert.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.h"
#include "workloads/membench.h"
#include "workloads/vai.h"

namespace exaeff::workloads::ert {

RooflineReport measure(const gpusim::DeviceSpec& spec,
                       const Options& options) {
  EXAEFF_REQUIRE(options.min_intensity > 0.0 &&
                     options.max_intensity > options.min_intensity,
                 "ERT intensity range must be non-empty and positive");
  EXAEFF_REQUIRE(options.intensity_step > 1.0,
                 "ERT sweep step must be > 1");

  const gpusim::GpuSimulator sim(spec);
  gpusim::PowerPolicy policy;
  if (options.frequency_mhz > 0.0) {
    policy.freq_cap_mhz = options.frequency_mhz;
  }
  policy.power_cap_w = options.power_cap_w;

  RooflineReport report;
  report.idle_power_w = 1e30;

  // Compute/memory sweep via the VAI kernel family.
  for (double ai = options.min_intensity; ai <= options.max_intensity;
       ai *= options.intensity_step) {
    const auto kernel = vai::make_kernel(spec, ai);
    const auto run = sim.run(kernel, policy);
    RooflinePoint p;
    p.intensity = ai;
    p.gflops = run.timing.achieved_flops / 1e9;
    p.bandwidth_gbs = run.timing.achieved_hbm_bw / 1e9;
    p.power_w = run.avg_power_w;
    report.sweep.push_back(p);
    report.peak_gflops = std::max(report.peak_gflops, p.gflops);
    report.hbm_bandwidth_gbs =
        std::max(report.hbm_bandwidth_gbs, p.bandwidth_gbs);
    report.max_power_w = std::max(report.max_power_w, p.power_w);
    report.idle_power_w = std::min(report.idle_power_w, p.power_w);
  }

  // L2 bandwidth roof via a cache-resident load kernel.
  const auto l2_kernel =
      membench::make_kernel(spec, 0.5 * spec.l2_bytes);
  const auto l2_run = sim.run(l2_kernel, policy);
  report.l2_bandwidth_gbs = l2_run.timing.achieved_l2_bw / 1e9;

  // Empirical ridge: where measured compute equals measured bandwidth
  // times intensity.
  if (report.hbm_bandwidth_gbs > 0.0) {
    report.ridge_intensity =
        report.peak_gflops / report.hbm_bandwidth_gbs;
  }
  return report;
}

std::string render(const RooflineReport& report) {
  std::ostringstream os;
  os << "Empirical Roofline (exaeff-ert)\n";
  os << "  sustained compute : " << std::lround(report.peak_gflops)
     << " GFLOP/s\n";
  os << "  HBM bandwidth     : " << std::lround(report.hbm_bandwidth_gbs)
     << " GB/s\n";
  os << "  L2 bandwidth      : " << std::lround(report.l2_bandwidth_gbs)
     << " GB/s\n";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2f", report.ridge_intensity);
  os << "  ridge intensity   : " << buf << " flop/byte\n";
  os << "  power range       : " << std::lround(report.idle_power_w)
     << " - " << std::lround(report.max_power_w) << " W\n";
  os << "  intensity    GFLOP/s      GB/s   power(W)\n";
  for (const auto& p : report.sweep) {
    std::snprintf(buf, sizeof buf, "  %9.4f %10.0f %9.0f %9.0f\n",
                  p.intensity, p.gflops, p.bandwidth_gbs, p.power_w);
    os << buf;
  }
  return os.str();
}

}  // namespace exaeff::workloads::ert
