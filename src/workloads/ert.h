// exaeff/workloads/ert.h
//
// An Empirical Roofline Tool (ERT) equivalent for the simulated device —
// the paper builds its VAI benchmark as an extension of ERT (§III-B-a),
// and this module closes the loop: it *measures* the device empirically,
// through the same public simulator API a user of real hardware would
// exercise, and reports the roofline parameters (sustained compute peak,
// bandwidth per memory level, ridge point) plus the power-vs-intensity
// profile.  Tests validate that the empirical measurement recovers the
// DeviceSpec ground truth, which is exactly the property that makes
// benchmark-based characterization trustworthy.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "gpusim/simulator.h"

namespace exaeff::workloads::ert {

/// One sampled point of the empirical roofline.
struct RooflinePoint {
  double intensity = 0.0;       ///< flop/byte (HBM)
  double gflops = 0.0;          ///< achieved Gflop/s
  double bandwidth_gbs = 0.0;   ///< achieved HBM GB/s
  double power_w = 0.0;         ///< sustained power
};

/// Empirical device characterization.
struct RooflineReport {
  double peak_gflops = 0.0;        ///< sustained compute roof
  double hbm_bandwidth_gbs = 0.0;  ///< HBM bandwidth roof
  double l2_bandwidth_gbs = 0.0;   ///< L2 bandwidth roof
  double ridge_intensity = 0.0;    ///< flop/byte where the roofs cross
  double max_power_w = 0.0;        ///< highest sustained power observed
  double idle_power_w = 0.0;       ///< lowest sustained power observed
  std::vector<RooflinePoint> sweep;
};

/// Measurement options.
struct Options {
  double min_intensity = 1.0 / 32.0;
  double max_intensity = 4096.0;
  double intensity_step = 2.0;       ///< multiplicative sweep step
  double frequency_mhz = 0.0;        ///< 0 = device maximum
  std::optional<double> power_cap_w; ///< optional cap during measurement
};

/// Runs the empirical sweep on a device.
[[nodiscard]] RooflineReport measure(const gpusim::DeviceSpec& spec,
                                     const Options& options = {});

/// Renders the report in ERT's customary text form.
[[nodiscard]] std::string render(const RooflineReport& report);

}  // namespace exaeff::workloads::ert
