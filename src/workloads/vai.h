// exaeff/workloads/vai.h
//
// The paper's Variable Arithmetic Intensity (VAI) benchmark, Algorithm 1,
// expressed as a KernelDesc generator.  The real benchmark allocates three
// arrays a/b/c sized to fill GPU memory, then per element performs 3 reads,
// 2*LOOPSIZE fused multiply-add flops and 1 write, repeated REPEAT times so
// the run lasts >= 20 s for stable steady-state power measurement.  For
// doubles that is 32 bytes and 2*LOOPSIZE flops per element per repeat:
// arithmetic intensity AI = LOOPSIZE/16, reaching as low as 1/16 flop/byte
// (LOOPSIZE = 1).  AI = 0 replaces the FMA loop with a stream copy.
//
// Here the same demands are computed in closed form: total HBM traffic and
// flops scaled so the unconstrained run matches the requested runtime.
// Contiguous SIMD streaming is issue-bound on this architecture (the paper
// observed memory- and compute-bound parts slowing similarly under
// frequency caps), hence the high issue_boundedness.
#pragma once

#include <vector>

#include "gpusim/device_spec.h"
#include "gpusim/kernel.h"

namespace exaeff::workloads::vai {

/// Tuning knobs mirroring the benchmark's REPEAT / globalWIs parameters.
struct Params {
  double runtime_target_s = 20.0;  ///< steady-state measurement window
  double issue_boundedness = 0.85; ///< contiguous-stream clock sensitivity
  double launch_overhead_s = 0.05; ///< kernel launch + MPI setup per run
};

/// Builds the VAI kernel for arithmetic intensity `ai` (flop/byte).
/// `ai` = 0 produces the stream-copy variant (c[i] = b[i]).
[[nodiscard]] gpusim::KernelDesc make_kernel(const gpusim::DeviceSpec& spec,
                                             double ai,
                                             const Params& params = {});

/// The paper's sweep: 0 (stream copy) then powers of two 1/16 .. 1024.
[[nodiscard]] std::vector<double> standard_intensities();

/// The frequency-cap settings of Table III(a), MHz, descending.
[[nodiscard]] std::vector<double> standard_frequency_caps();

/// The power-cap settings of Table III(b), watts, descending.
[[nodiscard]] std::vector<double> standard_power_caps();

}  // namespace exaeff::workloads::vai
