// exaeff/workloads/app_profile.h
//
// Phase-based synthetic application profiles.  Real HPC applications
// alternate between phases that stress different resources; the paper's
// Fig 9 shows each science domain has a characteristic (often multimodal)
// GPU power distribution.  An AppProfile is a weighted set of phase
// archetypes; sampling it yields a phase sequence whose power histogram
// reproduces a domain's modality.
//
// Phase kernels are constructed from *target utilizations* via
// kernel_from_utils(), which inverts the execution model at f_max: this
// gives precise control over where in the power distribution a phase
// lands, while the kernel still responds faithfully to frequency and
// power caps through the normal execution/power models.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "gpusim/device_spec.h"
#include "gpusim/kernel.h"

namespace exaeff::workloads {

/// Builds a kernel that, run unconstrained at f_max, lasts `duration_s`
/// with approximately the requested engine utilizations.
///
/// `u_lat` is the latency-bound fraction of wall time; the dominant of
/// u_alu/u_hbm is scaled to fill the remaining (1 - u_lat) throughput
/// time (roofline overlap).  All fractions in [0, 1]; u_lat < 1.
[[nodiscard]] gpusim::KernelDesc kernel_from_utils(
    const gpusim::DeviceSpec& spec, std::string name, double duration_s,
    double u_alu, double u_hbm, double u_lat,
    double issue_boundedness = 0.5, double latency_power_fraction = 0.12);

/// One phase archetype within an application profile.
struct PhaseSpec {
  gpusim::KernelDesc kernel;     ///< demands for the *mean* duration
  double mean_duration_s = 60.0; ///< phase length scale
  double duration_sigma = 0.35;  ///< lognormal sigma of phase length
  double weight = 1.0;           ///< selection weight within the profile
};

/// A sampled phase: concrete kernel scaled to a concrete duration.
struct SampledPhase {
  gpusim::KernelDesc kernel;
  double nominal_duration_s = 0.0;  ///< duration at unconstrained clock
};

/// Weighted mixture of phase archetypes for one application class.
class AppProfile {
 public:
  AppProfile() = default;
  explicit AppProfile(std::string name) : name_(std::move(name)) {}

  void add_phase(PhaseSpec phase);

  /// Draws the next phase: archetype by weight, duration lognormal around
  /// the archetype mean, kernel demands scaled accordingly.
  [[nodiscard]] SampledPhase sample_phase(Rng& rng) const;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<PhaseSpec>& phases() const {
    return phases_;
  }
  [[nodiscard]] bool empty() const { return phases_.empty(); }

 private:
  std::string name_;
  std::vector<PhaseSpec> phases_;
};

/// The archetype profiles behind the synthetic science domains:
/// compute-intensive, memory-intensive (two flavours), latency/IO-bound
/// (two flavours) and multi-modal mixtures.  The `spec` fixes the device
/// the utilization targets are inverted against.
struct ProfileLibrary {
  AppProfile compute_heavy;     ///< Fig 9 (a)/(b): sustained 430-545 W
  AppProfile compute_moderate;  ///< upper region 3 with some memory phases
  AppProfile memory_bandwidth;  ///< Fig 9 (e)/(f): 280-400 W
  AppProfile memory_latency;    ///< lower region 2: 210-300 W
  AppProfile latency_io;        ///< Fig 9 (c)/(d): 95-180 W
  AppProfile latency_network;   ///< region 1 with bursts
  AppProfile multimodal_wide;   ///< Fig 9 (g)/(h): phases across regions
  AppProfile multimodal_burst;  ///< mostly idle-ish with compute bursts
};

[[nodiscard]] ProfileLibrary make_profile_library(
    const gpusim::DeviceSpec& spec);

}  // namespace exaeff::workloads
