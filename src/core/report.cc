#include "core/report.h"

#include <sstream>

#include "common/ascii_plot.h"
#include "common/table.h"
#include "common/units.h"
#include "core/domain_analysis.h"
#include "obs/trace.h"

namespace exaeff::core {

std::string render_campaign_report(const ReportInputs& inputs) {
  EXAEFF_TRACE_SPAN("report.render");
  if (inputs.accumulator == nullptr || inputs.table == nullptr) {
    throw ConfigError("report needs an accumulator and a response table");
  }
  require_quality(inputs.quality, inputs.quality_policy);
  const bool degraded = !inputs.quality.perfect();
  const CampaignAccumulator& acc = *inputs.accumulator;
  const CapResponseTable& table = *inputs.table;
  const ProjectionEngine engine(table);
  const DomainAnalyzer analyzer(acc, engine);
  const auto decomp = acc.decomposition();
  const double total_mwh = units::joules_to_mwh(decomp.total_energy_j);

  std::ostringstream os;
  os << "# Energy-savings analysis: " << inputs.campaign_label << "\n\n";

  // --- dataset ----------------------------------------------------------
  os << "## Dataset\n\n";
  os << "- telemetry records: " << acc.gcd_sample_count() << " (at "
     << acc.window_s() << " s resolution)\n";
  os << "- GPU-hours: " << TextTable::num(decomp.total_gpu_hours, 0)
     << "\n";
  os << "- GPU energy: " << TextTable::num(total_mwh, 2) << " MWh\n";
  if (degraded) {
    os << "- telemetry coverage: "
       << TextTable::num(100.0 * inputs.quality.coverage, 1) << " %\n";
    os << "- imputed records: "
       << TextTable::num(100.0 * inputs.quality.imputed_share, 1)
       << " % (DEGRADED DATA: treat projections as approximate)\n";
  }
  os << "\n";

  // --- modal decomposition ----------------------------------------------
  os << "## Regions of operation\n\n";
  {
    TextTable t;
    t.set_header({"region", "range (W)", "GPU-hrs %", "energy %"});
    const auto& b = acc.boundaries();
    const std::string ranges[4] = {
        "<= " + TextTable::num(b.latency_max_w, 0),
        TextTable::num(b.latency_max_w, 0) + "-" +
            TextTable::num(b.memory_max_w, 0),
        TextTable::num(b.memory_max_w, 0) + "-" +
            TextTable::num(b.compute_max_w, 0),
        ">= " + TextTable::num(b.compute_max_w, 0)};
    for (int r = 0; r < 4; ++r) {
      const auto region = static_cast<Region>(r);
      t.add_row({std::string(region_name(region)), ranges[r],
                 TextTable::num(decomp.hours_pct(region), 1),
                 TextTable::num(100.0 * decomp.energy_fraction(region), 1)});
    }
    os << t.str() << "\n";
  }

  // --- projections --------------------------------------------------------
  std::vector<ProjectionRow> sweep_rows;  // reused across both blocks
  auto projection_block = [&](CapType type, const char* title) {
    os << "## " << title << "\n\n";
    TextTable t;
    std::vector<std::string> header = {
        "setting",   "C.I. saved (MWh)", "M.I. saved (MWh)",
        "total (MWh)", "savings %",      "dT %",
        "savings % at dT=0"};
    if (degraded) {
      header.push_back("coverage %");
      header.push_back("imputed %");
    }
    t.set_header(header);
    sweep_rows.resize(engine.sweep_size(type));
    engine.project_sweep_into(decomp, type, sweep_rows);
    for (const auto& row : sweep_rows) {
      std::vector<std::string> cells = {
          TextTable::num(row.setting, 0),
          TextTable::num(row.ci_saved_mwh, 3),
          TextTable::num(row.mi_saved_mwh, 3),
          TextTable::num(row.total_saved_mwh, 3),
          TextTable::num(row.savings_pct, 1),
          TextTable::num(row.delta_t_pct, 1),
          TextTable::num(row.savings_pct_no_slowdown, 1)};
      if (degraded) {
        cells.push_back(TextTable::num(100.0 * inputs.quality.coverage, 1));
        cells.push_back(
            TextTable::num(100.0 * inputs.quality.imputed_share, 1));
      }
      t.add_row(cells);
    }
    os << t.str() << "\n";
  };
  projection_block(CapType::kFrequency, "Frequency-cap projection");
  projection_block(CapType::kPower, "Power-cap projection");

  const auto best = engine.best_no_slowdown(decomp, CapType::kFrequency);
  os << "Best zero-slowdown point: **"
     << TextTable::num(best.setting, 0) << " MHz** -> "
     << TextTable::num(best.savings_pct_no_slowdown, 1)
     << "% of GPU energy saved with no runtime increase.\n\n";

  // --- heatmaps -----------------------------------------------------------
  os << "## Energy by domain and job size\n\n";
  const auto used = analyzer.energy_heatmap();
  os << heatmap("energy used (MWh)", used.row_labels, used.col_labels,
                used.values, 2)
     << "\n";
  const auto saved =
      analyzer.savings_heatmap(CapType::kFrequency, inputs.focus_cap_mhz);
  os << heatmap("projected savings at " +
                    TextTable::num(inputs.focus_cap_mhz, 0) + " MHz (MWh)",
                saved.row_labels, saved.col_labels, saved.values, 3)
     << "\n";

  // --- selective capping ---------------------------------------------------
  os << "## Selective capping\n\n";
  const auto domains = analyzer.high_yield_domains(
      CapType::kFrequency, inputs.focus_cap_mhz, inputs.high_yield_fraction);
  os << "High-yield domains:";
  for (auto d : domains) os << " " << sched::domain_code(d);
  os << "\n\n";
  if (!domains.empty()) {
    const std::vector<sched::SizeBin> bins = {
        sched::SizeBin::kA, sched::SizeBin::kB, sched::SizeBin::kC};
    const auto mask = DomainAnalyzer::selection_mask(domains, bins);
    const auto sel = engine.project(acc.decomposition_for(mask),
                                    CapType::kFrequency,
                                    inputs.focus_cap_mhz);
    const auto sys = engine.project(decomp, CapType::kFrequency,
                                    inputs.focus_cap_mhz);
    os << "Capping only these domains on job sizes A-C at "
       << TextTable::num(inputs.focus_cap_mhz, 0) << " MHz keeps "
       << TextTable::num(100.0 * sel.total_saved_mwh /
                             std::max(sys.total_saved_mwh, 1e-12),
                         0)
       << "% of the system-wide savings ("
       << TextTable::num(sel.total_saved_mwh, 3) << " of "
       << TextTable::num(sys.total_saved_mwh, 3) << " MWh).\n";
  }
  return os.str();
}

}  // namespace exaeff::core
