// exaeff/core/phases.h
//
// Phase detection on power telemetry: segmenting a GCD's power series
// into steady phases and summarizing each — the temporal half of
// application fingerprinting ("identify the modes of operations in
// real-world applications", paper §III-A).  Region classification says
// *what* a sample is; phase detection says *when the application
// changed behaviour*, which is what an online controller (src/agent)
// and a fingerprint database both key on.
//
// The detector is a two-window mean-shift test: a change point is
// declared where the mean of the trailing window differs from the mean
// of the leading window by more than `threshold_w`, with a minimum
// phase length to suppress noise.  It is causal-friendly, O(n), and
// deterministic.
#pragma once

#include <span>
#include <vector>

#include "core/modal.h"

namespace exaeff::core {

/// One detected steady phase of a power series.
struct PhaseSegment {
  std::size_t begin = 0;      ///< first window index (inclusive)
  std::size_t end = 0;        ///< last window index (exclusive)
  double mean_power_w = 0.0;
  double stddev_w = 0.0;
  Region region = Region::kLatencyBound;

  [[nodiscard]] std::size_t length() const { return end - begin; }
};

/// Detector tuning.
struct PhaseDetectorOptions {
  std::size_t window = 4;        ///< comparison window, in records
  double threshold_w = 45.0;     ///< mean shift that declares a change
  std::size_t min_phase = 4;     ///< shortest phase kept, in records
};

/// Segments `powers` (one channel, time-ordered) into phases.
[[nodiscard]] std::vector<PhaseSegment> detect_phases(
    std::span<const float> powers, const RegionBoundaries& boundaries,
    const PhaseDetectorOptions& options = {});

/// Phase-level summary of a series: how much time the application spent
/// in each region *by phase*, and how often it transitioned.
struct PhaseProfile {
  std::size_t phase_count = 0;
  std::size_t transitions = 0;  ///< region changes between phases
  std::array<double, kRegionCount> region_record_share{};
  double mean_phase_length = 0.0;  ///< in records

  /// True when >= `fraction` of records sit in one region (the paper's
  /// single-mode domains, Fig 9 (a)-(f)).
  [[nodiscard]] bool single_moded(double fraction = 0.75) const;
};

[[nodiscard]] PhaseProfile summarize_phases(
    std::span<const PhaseSegment> phases, std::size_t total_records);

}  // namespace exaeff::core
