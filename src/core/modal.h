// exaeff/core/modal.h
//
// Modal decomposition of GPU power (paper §V-B, Table IV): classify each
// telemetry sample into one of four regions of operation by its power
// value, with boundaries derived from the benchmark characterization:
//
//   region 1  latency / network / IO bound     P <= 200 W
//   region 2  memory intensive (M.I.)          200 < P <= 420 W
//   region 3  compute intensive (C.I.)         420 < P <= 560 W
//   region 4  boosted frequency                P > 560 W
//
// "it is not possible to disaggregate all the GPU operations based only
// on the power values" — the regions deliberately group operations with
// similar power, which is exactly what makes the projection tractable.
#pragma once

#include <array>
#include <string_view>

#include "gpusim/device_spec.h"

namespace exaeff::core {

/// The four regions of operation.
enum class Region : std::uint8_t {
  kLatencyBound = 0,     ///< latency / network / IO bound
  kMemoryIntensive = 1,  ///< bandwidth-dominated
  kComputeIntensive = 2, ///< ALU-dominated
  kBoost = 3,            ///< transient above-TDP excursions
};

inline constexpr std::size_t kRegionCount = 4;

[[nodiscard]] constexpr std::string_view region_name(Region r) {
  switch (r) {
    case Region::kLatencyBound: return "Latency, Network & I/O bound";
    case Region::kMemoryIntensive: return "Memory intensive (M.I.)";
    case Region::kComputeIntensive: return "Compute intensive (C.I.)";
    case Region::kBoost: return "Boosted frequency";
  }
  return "?";
}

/// Power boundaries between regions (watts).
struct RegionBoundaries {
  double latency_max_w = 200.0;  ///< region 1 upper edge
  double memory_max_w = 420.0;   ///< region 2 upper edge
  double compute_max_w = 560.0;  ///< region 3 upper edge (TDP)

  /// Classifies a power sample.  Branchless — the region index is the
  /// number of boundaries the sample exceeds — because telemetry noise
  /// keeps samples hovering around the edges, and the ingest hot loop
  /// classifies every sample; data-dependent branches here mispredict.
  [[nodiscard]] constexpr Region classify(double power_w) const {
    const int r = static_cast<int>(power_w > latency_max_w) +
                  static_cast<int>(power_w > memory_max_w) +
                  static_cast<int>(power_w > compute_max_w);
    return static_cast<Region>(r);
  }
};

/// Derives the boundaries from the device's benchmark behaviour, the way
/// the paper reads them off its benchmark runs:
///   * compute_max  = TDP (the sustained ceiling);
///   * memory_max   = steady power of a purely compute-bound kernel at
///     f_max (~420 W) — higher power requires memory traffic on top;
///   * latency_max  = power of a ~35%-bandwidth, latency-dominated kernel
///     (~200 W) — below it, throughput engines are essentially idle.
[[nodiscard]] RegionBoundaries derive_boundaries(
    const gpusim::DeviceSpec& spec);

/// Region occupancy of a campaign: GPU-hours and energy per region.
struct RegionShare {
  double gpu_hours = 0.0;
  double energy_j = 0.0;
};

/// Occupancy of all four regions plus totals (Table IV's right column).
struct ModalDecomposition {
  std::array<RegionShare, kRegionCount> regions{};
  double total_gpu_hours = 0.0;
  double total_energy_j = 0.0;

  [[nodiscard]] double hours_pct(Region r) const {
    return total_gpu_hours > 0.0
               ? 100.0 * regions[static_cast<std::size_t>(r)].gpu_hours /
                     total_gpu_hours
               : 0.0;
  }
  [[nodiscard]] double energy_fraction(Region r) const {
    return total_energy_j > 0.0
               ? regions[static_cast<std::size_t>(r)].energy_j /
                     total_energy_j
               : 0.0;
  }
};

}  // namespace exaeff::core
