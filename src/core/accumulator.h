// exaeff/core/accumulator.h
//
// Streaming campaign accumulator: the JobSampleSink that turns a fleet's
// telemetry stream into everything the analysis consumes —
//
//   * the system-wide power histogram (Fig 8),
//   * per-science-domain histograms (Fig 9),
//   * region occupancy (GPU-hours and energy) globally and per
//     (domain x size-bin) cell (Table IV, Table V/VI, Fig 10),
//   * dataset counters (Table II).
//
// Designed for fleet scale: O(1) state per sample, fixed memory, and a
// merge() for parallel sharded generation.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/stats.h"
#include "core/modal.h"
#include "sched/fleetgen.h"

namespace exaeff::core {

/// Region-resolved energy/hours of one (domain, size-bin) cell.
struct CellAccum {
  std::array<RegionShare, kRegionCount> regions{};

  [[nodiscard]] double energy_j() const {
    double e = 0.0;
    for (const auto& r : regions) e += r.energy_j;
    return e;
  }
  [[nodiscard]] double gpu_hours() const {
    double h = 0.0;
    for (const auto& r : regions) h += r.gpu_hours;
    return h;
  }
};

/// The streaming accumulator.
class CampaignAccumulator final : public sched::JobSampleSink {
 public:
  /// `window_s` is the telemetry record resolution (15 s); `boundaries`
  /// defines the modal regions; the histogram spans [hist_lo, hist_hi].
  CampaignAccumulator(double window_s, RegionBoundaries boundaries,
                      double hist_lo_w = 80.0, double hist_hi_w = 640.0,
                      std::size_t hist_bins = 280);

  void on_job_sample(const telemetry::GcdSample& sample,
                     const sched::Job& job) override;
  void on_node_sample(const telemetry::NodeSample& sample) override;

  /// Batch fast paths: per-sample accumulation order is preserved bit
  /// for bit, but the (domain, bin) cell row and domain histogram are
  /// resolved once per span and the power-histogram bin index is shared
  /// between the system and domain histograms.
  void on_job_batch(std::span<const telemetry::GcdSample> samples,
                    const sched::Job& job) override;
  void on_node_batch(
      std::span<const telemetry::NodeSample> samples) override;

  /// Merges a sibling accumulator (parallel sharding).
  void merge(const CampaignAccumulator& other);

  /// Empty accumulator with identical window/boundaries/histogram
  /// shape, suitable as a merge() source (the shard factory).
  [[nodiscard]] CampaignAccumulator make_sibling() const {
    return CampaignAccumulator(window_s_, boundaries_, hist_.lo(),
                               hist_.hi(), hist_.bin_count());
  }

  /// Flat copy of the accumulated state, for the exaeff::run checkpoint
  /// journal.  snapshot()/restore() round-trip bit for bit: a restored
  /// accumulator merges and decomposes exactly like the original, which
  /// is what makes a resumed campaign byte-identical to an uninterrupted
  /// one.  Cell layout: (domain, bin, region) row-major, gpu_hours then
  /// energy_j per region.
  struct Snapshot {
    std::vector<double> hist_weights;  ///< system histogram bins
    double hist_total = 0.0;
    std::array<std::vector<double>, sched::kDomainCount> domain_weights;
    std::array<double, sched::kDomainCount> domain_totals{};
    std::vector<double> cells;  ///< flattened CellAccum values
    std::uint64_t gcd_samples = 0;
    std::uint64_t node_samples = 0;
    double cpu_energy_j = 0.0;
  };
  [[nodiscard]] Snapshot snapshot() const;
  /// Overwrites this accumulator's state; throws when the snapshot shape
  /// does not match this accumulator's histogram/cell dimensions.
  void restore(const Snapshot& snap);

  // --- results --------------------------------------------------------
  [[nodiscard]] const Histogram& system_histogram() const { return hist_; }
  [[nodiscard]] const Histogram& domain_histogram(
      sched::ScienceDomain d) const {
    return domain_hist_[static_cast<std::size_t>(d)];
  }

  /// Region occupancy over the whole campaign (Table IV).
  [[nodiscard]] ModalDecomposition decomposition() const;

  /// Region occupancy restricted to a (domain, bin) selection mask;
  /// mask[d][b] true means the cell is included (Table VI).
  [[nodiscard]] ModalDecomposition decomposition_for(
      const std::array<std::array<bool, sched::kSizeBinCount>,
                       sched::kDomainCount>& mask) const;

  /// One (domain, bin) cell.
  [[nodiscard]] const CellAccum& cell(sched::ScienceDomain d,
                                      sched::SizeBin b) const {
    return cells_[static_cast<std::size_t>(d)][static_cast<std::size_t>(b)];
  }

  /// One (domain, bin) cell as its own mini-campaign decomposition —
  /// identical, bit for bit, to decomposition_for() with only that cell
  /// selected (a one-cell fold adds nothing to reorder).
  [[nodiscard]] ModalDecomposition cell_decomposition(
      sched::ScienceDomain d, sched::SizeBin b) const;

  [[nodiscard]] std::size_t gcd_sample_count() const { return samples_; }
  [[nodiscard]] std::size_t node_sample_count() const {
    return node_samples_;
  }
  [[nodiscard]] double total_gpu_energy_j() const;
  [[nodiscard]] double total_cpu_energy_j() const { return cpu_energy_j_; }
  [[nodiscard]] const RegionBoundaries& boundaries() const {
    return boundaries_;
  }
  [[nodiscard]] double window_s() const { return window_s_; }

 private:
  double window_s_;
  // window_s_ / 3600.0, precomputed once: the ingest loops add it per
  // sample and the division is loop-invariant for the accumulator's
  // whole lifetime.
  double hours_per_sample_ = 0.0;
  RegionBoundaries boundaries_;
  Histogram hist_;
  std::array<Histogram, sched::kDomainCount> domain_hist_;
  std::array<std::array<CellAccum, sched::kSizeBinCount>,
             sched::kDomainCount>
      cells_{};
  std::size_t samples_ = 0;
  std::size_t node_samples_ = 0;
  double cpu_energy_j_ = 0.0;
};

/// Shard factory for parallel campaign generation: hands each worker
/// chunk an empty sibling of `target` and merges the shards back (in
/// job-chunk order, per the JobSinkShards contract) into `target`.
class AccumulatorShards final : public sched::JobSinkShards {
 public:
  /// `target` must outlive the shard set.
  explicit AccumulatorShards(CampaignAccumulator& target)
      : target_(&target) {}

  [[nodiscard]] std::unique_ptr<sched::JobSampleSink> make_shard()
      const override {
    return std::make_unique<CampaignAccumulator>(target_->make_sibling());
  }

  void merge_shard(std::unique_ptr<sched::JobSampleSink> shard) override;

 private:
  CampaignAccumulator* target_;
};

}  // namespace exaeff::core
