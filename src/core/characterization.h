// exaeff/core/characterization.h
//
// Benchmark characterization stage (paper §IV, Table III): sweep the VAI
// benchmark (compute-intensive class) and the memory-bandwidth benchmark
// (memory-intensive class) across frequency caps and power caps, and
// summarize each setting as percentages of the uncapped run —
// average power %, runtime increase %, average energy used %.
//
// The resulting CapResponseTable is the transfer function the projection
// engine applies to fleet telemetry: region 3 (compute-intensive) samples
// respond like VAI, region 2 (memory-intensive) samples like MB.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "gpusim/device_spec.h"
#include "gpusim/simulator.h"

namespace exaeff::exec {
class ThreadPool;
}  // namespace exaeff::exec

namespace exaeff::core {

/// Which benchmark class a response row characterizes.
enum class BenchClass { kComputeIntensive, kMemoryIntensive };

/// Which power-management knob a response row swept.
enum class CapType { kFrequency, kPower };

[[nodiscard]] constexpr const char* bench_class_name(BenchClass c) {
  return c == BenchClass::kComputeIntensive ? "VAI" : "MB";
}
[[nodiscard]] constexpr const char* cap_type_name(CapType t) {
  return t == CapType::kFrequency ? "frequency" : "power";
}

/// One Table III row: the response of a benchmark class to one cap
/// setting, as percentages of the uncapped run (setting = f_max / TDP).
struct CapResponse {
  double setting = 0.0;        ///< MHz (frequency) or watts (power)
  double avg_power_pct = 100;  ///< average power, % of uncapped
  double runtime_pct = 100;    ///< time to solution, % of uncapped
  double energy_pct = 100;     ///< energy to solution, % of uncapped
};

/// Structure-of-arrays mirror of one (bench class, cap type) sweep,
/// maintained by add(): entry i of every column describes
/// rows(cls, type)[i], so batch consumers (the vectorized projection
/// kernel) scan contiguous columns instead of chasing row structs.
struct SweepView {
  std::vector<double> settings;       ///< = rows[i].setting
  std::vector<double> avg_power_pct;  ///< = rows[i].avg_power_pct
  std::vector<double> runtime_pct;    ///< = rows[i].runtime_pct
  std::vector<double> energy_pct;     ///< = rows[i].energy_pct
  // Derived columns the projection evaluates per point, hoisted to
  // add() time (they depend only on the table).  Each is the exact
  // IEEE subexpression the scalar path computes, so consuming the
  // cached value is bit-identical to recomputing it.
  std::vector<double> one_minus_energy;   ///< = 1.0 - energy_pct/100.0
  std::vector<double> runtime_minus_100;  ///< = runtime_pct - 100.0

  [[nodiscard]] std::size_t size() const { return settings.size(); }
};

/// Precomputed batch-sweep plan for one cap type: the capped
/// (non-baseline) compute-intensive rows in insertion order, each
/// resolved — under at()'s tolerance — to the CI and MI row the scalar
/// sweep would have looked up.  Rebuilt by add(), which is cold, so
/// queries never binary-search.
struct SweepPlan {
  std::vector<double> settings;        ///< swept settings, insertion order
  std::vector<std::uint32_t> ci_row;   ///< at()-resolved CI row per setting
  std::vector<std::uint32_t> mi_row;   ///< at()-resolved MI row (or kNoRow)
  bool paired = true;  ///< every setting resolved in both classes
  // Pre-gathered derived columns for the paired fast path, already
  // padded to a multiple of the widest SIMD group (8 doubles) so the
  // batch kernel consumes them directly — no per-call gather, no tail.
  // Populated only when `paired`; pad lanes hold 0.0 and their results
  // are never read.
  std::vector<double> ci_one_minus_e;   ///< CI 1 - energy/100, plan order
  std::vector<double> mi_one_minus_e;   ///< MI 1 - energy/100, plan order
  std::vector<double> ci_rt_minus_100;  ///< CI runtime - 100, plan order
  std::vector<double> mi_rt_minus_100;  ///< MI runtime - 100, plan order

  [[nodiscard]] std::size_t size() const { return settings.size(); }
};

/// Lookup table of cap responses per (bench class, cap type).
class CapResponseTable {
 public:
  void add(BenchClass cls, CapType type, CapResponse row);

  /// All rows of one sweep, in insertion (descending-setting) order.
  [[nodiscard]] std::span<const CapResponse> rows(BenchClass cls,
                                                  CapType type) const;

  /// The row for an exact setting (within kSettingTolerance); throws if
  /// the setting was not swept.  Binary search over a sorted side index
  /// maintained by add() — the projection engine calls this per region x
  /// sweep point, so it must not rescan the rows.
  [[nodiscard]] const CapResponse& at(BenchClass cls, CapType type,
                                      double setting) const;

  /// Index (into rows()) of the row at() would return for `setting`, or
  /// kNoRow when the setting was not swept.  Same predicate as at().
  [[nodiscard]] std::uint32_t index_of(BenchClass cls, CapType type,
                                       double setting) const;

  /// Column view of one sweep, index-aligned with rows(cls, type).
  [[nodiscard]] const SweepView& sweep_view(BenchClass cls,
                                            CapType type) const {
    return view_[static_cast<int>(cls)][static_cast<int>(type)];
  }

  /// Batch plan for the capped settings of `type` (see SweepPlan).
  [[nodiscard]] const SweepPlan& sweep_plan(CapType type) const {
    return plan_[static_cast<int>(type)];
  }

  static constexpr double kSettingTolerance = 1e-6;
  static constexpr std::uint32_t kNoRow =
      std::numeric_limits<std::uint32_t>::max();

 private:
  void rebuild_plan(CapType type);

  struct Sweep {
    std::vector<CapResponse> rows;  ///< insertion order, as presented
    /// Row indices ordered by ascending setting (at() lookups).
    std::vector<std::uint32_t> by_setting;
  };
  Sweep table_[2][2];
  SweepView view_[2][2];
  SweepPlan plan_[2];
};

/// Characterization options.
struct CharacterizationOptions {
  std::vector<double> frequency_caps_mhz;  ///< default: Table III(a) set
  std::vector<double> power_caps_w;        ///< default: Table III(b) set
  bool include_stream_copy = true;  ///< include AI=0 in the VAI average
  /// When set, baselines and sweep settings evaluate concurrently.  Each
  /// row still folds its per-kernel averages in kernel order, so the
  /// table is bit-identical to the serial sweep.
  exec::ThreadPool* pool = nullptr;
};

/// Runs both benchmark sweeps on the device and builds the table.
/// VAI rows average across the standard arithmetic intensities; MB rows
/// average across HBM-resident working-set sizes (runtime of L2-resident
/// sizes responds like compute, not like the memory-intensive region).
[[nodiscard]] CapResponseTable characterize(
    const gpusim::DeviceSpec& spec, const CharacterizationOptions& opts = {});

}  // namespace exaeff::core
