// exaeff/core/characterization.h
//
// Benchmark characterization stage (paper §IV, Table III): sweep the VAI
// benchmark (compute-intensive class) and the memory-bandwidth benchmark
// (memory-intensive class) across frequency caps and power caps, and
// summarize each setting as percentages of the uncapped run —
// average power %, runtime increase %, average energy used %.
//
// The resulting CapResponseTable is the transfer function the projection
// engine applies to fleet telemetry: region 3 (compute-intensive) samples
// respond like VAI, region 2 (memory-intensive) samples like MB.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gpusim/device_spec.h"
#include "gpusim/simulator.h"

namespace exaeff::exec {
class ThreadPool;
}  // namespace exaeff::exec

namespace exaeff::core {

/// Which benchmark class a response row characterizes.
enum class BenchClass { kComputeIntensive, kMemoryIntensive };

/// Which power-management knob a response row swept.
enum class CapType { kFrequency, kPower };

[[nodiscard]] constexpr const char* bench_class_name(BenchClass c) {
  return c == BenchClass::kComputeIntensive ? "VAI" : "MB";
}
[[nodiscard]] constexpr const char* cap_type_name(CapType t) {
  return t == CapType::kFrequency ? "frequency" : "power";
}

/// One Table III row: the response of a benchmark class to one cap
/// setting, as percentages of the uncapped run (setting = f_max / TDP).
struct CapResponse {
  double setting = 0.0;        ///< MHz (frequency) or watts (power)
  double avg_power_pct = 100;  ///< average power, % of uncapped
  double runtime_pct = 100;    ///< time to solution, % of uncapped
  double energy_pct = 100;     ///< energy to solution, % of uncapped
};

/// Lookup table of cap responses per (bench class, cap type).
class CapResponseTable {
 public:
  void add(BenchClass cls, CapType type, CapResponse row);

  /// All rows of one sweep, in insertion (descending-setting) order.
  [[nodiscard]] std::span<const CapResponse> rows(BenchClass cls,
                                                  CapType type) const;

  /// The row for an exact setting (within kSettingTolerance); throws if
  /// the setting was not swept.  Binary search over a sorted side index
  /// maintained by add() — the projection engine calls this per region x
  /// sweep point, so it must not rescan the rows.
  [[nodiscard]] const CapResponse& at(BenchClass cls, CapType type,
                                      double setting) const;

  static constexpr double kSettingTolerance = 1e-6;

 private:
  struct Sweep {
    std::vector<CapResponse> rows;  ///< insertion order, as presented
    /// Row indices ordered by ascending setting (at() lookups).
    std::vector<std::uint32_t> by_setting;
  };
  Sweep table_[2][2];
};

/// Characterization options.
struct CharacterizationOptions {
  std::vector<double> frequency_caps_mhz;  ///< default: Table III(a) set
  std::vector<double> power_caps_w;        ///< default: Table III(b) set
  bool include_stream_copy = true;  ///< include AI=0 in the VAI average
  /// When set, baselines and sweep settings evaluate concurrently.  Each
  /// row still folds its per-kernel averages in kernel order, so the
  /// table is bit-identical to the serial sweep.
  exec::ThreadPool* pool = nullptr;
};

/// Runs both benchmark sweeps on the device and builds the table.
/// VAI rows average across the standard arithmetic intensities; MB rows
/// average across HBM-resident working-set sizes (runtime of L2-resident
/// sizes responds like compute, not like the memory-intensive region).
[[nodiscard]] CapResponseTable characterize(
    const gpusim::DeviceSpec& spec, const CharacterizationOptions& opts = {});

}  // namespace exaeff::core
