#include "core/modal.h"

#include <cmath>

#include "gpusim/power_model.h"
#include "workloads/app_profile.h"
#include "workloads/vai.h"

namespace exaeff::core {

RegionBoundaries derive_boundaries(const gpusim::DeviceSpec& spec) {
  const gpusim::PowerModel pm(spec);

  RegionBoundaries b;
  b.compute_max_w = spec.tdp_w;

  // Compute-bound VAI kernel: its steady power is the floor of the
  // compute-intensive region (the paper's ~420 W).
  const auto compute_kernel = workloads::vai::make_kernel(spec, 1024.0);
  b.memory_max_w =
      std::round(pm.power_at(compute_kernel, spec.f_max_mhz) / 10.0) * 10.0;

  // A latency-dominated kernel pushing ~28% of HBM bandwidth: the power
  // level below which the device is doing essentially no throughput work.
  const auto latency_kernel = workloads::kernel_from_utils(
      spec, "region-probe", 60.0, 0.04, 0.28, 0.72, 0.4, 0.05);
  b.latency_max_w =
      std::round(pm.power_at(latency_kernel, spec.f_max_mhz) / 10.0) * 10.0;
  return b;
}

}  // namespace exaeff::core
