#include "core/projection.h"

#include <algorithm>
#include <atomic>
#include <string>

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#endif

#include "common/error.h"
#include "common/simd_env.h"
#include "common/units.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace exaeff::core {

void require_quality(const DataQuality& q, const QualityPolicy& policy) {
  if (q.coverage < policy.min_coverage) {
    throw DataQualityError(
        "telemetry coverage " + std::to_string(q.coverage) +
        " is below the projection floor " +
        std::to_string(policy.min_coverage) +
        "; refusing to project from this data");
  }
  if (q.imputed_share > policy.max_imputed_share) {
    throw DataQualityError(
        "imputed share " + std::to_string(q.imputed_share) +
        " exceeds the projection ceiling " +
        std::to_string(policy.max_imputed_share) +
        "; refusing to project from this data");
  }
}

namespace {

// --- SIMD sweep lanes -------------------------------------------------
//
// A sweep point is pure per-lane arithmetic over the CI/MI response
// percentages once the per-decomposition invariants (region energies,
// total MWh, region weights) are hoisted: no loop-carried state, so all
// points of a sweep evaluate in SIMD lanes.
//
// The kernels consume the table-derived subexpressions 1 - energy/100
// and runtime - 100 precomputed at add() time (SweepView's derived
// columns), so per point only the decomposition-dependent arithmetic
// remains: multiply by the region energy, divide by 3.6e9
// (units::joules_to_mwh is a division, deliberately not a reciprocal
// multiply), add, multiply by 100, divide by the hoisted total.
//
// Bit-identity with the scalar project() path: each lane applies the
// exact scalar expression tree — the precomputed columns are the same
// IEEE subexpressions the scalar path evaluates inline — and
// vdivpd/vmulpd/vaddpd round exactly like their scalar counterparts.
// The kernels never fuse multiply-add (this file builds with
// -ffp-contract=off, so neither intrinsics nor the portable loop can
// contract), matching the baseline-x86-64 scalar code.  Hoisting itself
// is value-preserving: every hoisted subexpression has identical
// operands at every point.
//
// Dispatch follows common/rng_lanes: AVX-512F/DQ, then AVX2, then a
// portable kernel that is the scalar loop verbatim.  EXAEFF_SIMD=0
// forces the portable kernel; tests pin tiers via force_projection_tier
// to cross-check all of them on one host.

/// Loop-invariant parameters of one batch projection call.
struct SweepParams {
  double e_ci = 0.0;       ///< CI-region energy, joules
  double e_mi = 0.0;       ///< MI-region energy, joules
  double total_mwh = 0.0;  ///< joules_to_mwh(total energy), if positive
  double w_ci = 0.0;       ///< e_ci / e_total, if positive
  double w_mi = 0.0;       ///< e_mi / e_total, if positive
  bool positive = false;   ///< total energy > 0 (else pct outputs are 0)
};

// Kernel inputs (all in plan/batch order):
//   ca = CI 1 - energy_pct/100      ma = MI 1 - energy_pct/100
//   cb = CI runtime_pct - 100       mb = MI runtime_pct - 100
using SweepLanesFn = void (*)(const double* ca, const double* ma,
                              const double* cb, const double* mb,
                              std::size_t n, const SweepParams& p,
                              double* ci_saved, double* mi_saved,
                              double* total_saved, double* savings,
                              double* noslow, double* dt);

void sweep_lanes_portable(const double* ca, const double* ma,
                          const double* cb, const double* mb, std::size_t n,
                          const SweepParams& p, double* ci_saved,
                          double* mi_saved, double* total_saved,
                          double* savings, double* noslow, double* dt) {
  for (std::size_t i = 0; i < n; ++i) {
    // ProjectionEngine::project(), verbatim (ca/ma/cb/mb are its
    // table-only subexpressions, precomputed at add() time).
    const double cs = units::joules_to_mwh(p.e_ci * ca[i]);
    const double ms = units::joules_to_mwh(p.e_mi * ma[i]);
    const double ts = cs + ms;
    ci_saved[i] = cs;
    mi_saved[i] = ms;
    total_saved[i] = ts;
    if (p.positive) {
      savings[i] = 100.0 * ts / p.total_mwh;
      noslow[i] = 100.0 * ms / p.total_mwh;
      dt[i] = p.w_ci * cb[i] + p.w_mi * mb[i];
    } else {
      savings[i] = 0.0;
      noslow[i] = 0.0;
      dt[i] = 0.0;
    }
  }
}

#if defined(__x86_64__) && defined(__GNUC__)

__attribute__((target("avx2"))) void sweep_lanes_avx2(
    const double* ca, const double* ma, const double* cb, const double* mb,
    std::size_t n, const SweepParams& p, double* ci_saved, double* mi_saved,
    double* total_saved, double* savings, double* noslow, double* dt) {
  const __m256d v100 = _mm256_set1_pd(100.0);
  const __m256d vjpm = _mm256_set1_pd(3.6e9);  // units::joules_to_mwh divisor
  const __m256d veci = _mm256_set1_pd(p.e_ci);
  const __m256d vemi = _mm256_set1_pd(p.e_mi);
  const __m256d vtot = _mm256_set1_pd(p.total_mwh);
  const __m256d vwci = _mm256_set1_pd(p.w_ci);
  const __m256d vwmi = _mm256_set1_pd(p.w_mi);
  const __m256d vzero = _mm256_setzero_pd();
  for (std::size_t i = 0; i < n; i += 4) {
    const __m256d cs =
        _mm256_div_pd(_mm256_mul_pd(veci, _mm256_loadu_pd(ca + i)), vjpm);
    const __m256d ms =
        _mm256_div_pd(_mm256_mul_pd(vemi, _mm256_loadu_pd(ma + i)), vjpm);
    const __m256d ts = _mm256_add_pd(cs, ms);
    _mm256_storeu_pd(ci_saved + i, cs);
    _mm256_storeu_pd(mi_saved + i, ms);
    _mm256_storeu_pd(total_saved + i, ts);
    if (p.positive) {
      _mm256_storeu_pd(savings + i,
                       _mm256_div_pd(_mm256_mul_pd(v100, ts), vtot));
      _mm256_storeu_pd(noslow + i,
                       _mm256_div_pd(_mm256_mul_pd(v100, ms), vtot));
      const __m256d dci = _mm256_mul_pd(vwci, _mm256_loadu_pd(cb + i));
      const __m256d dmi = _mm256_mul_pd(vwmi, _mm256_loadu_pd(mb + i));
      _mm256_storeu_pd(dt + i, _mm256_add_pd(dci, dmi));
    } else {
      _mm256_storeu_pd(savings + i, vzero);
      _mm256_storeu_pd(noslow + i, vzero);
      _mm256_storeu_pd(dt + i, vzero);
    }
  }
}

__attribute__((target("avx512f,avx512dq"))) void sweep_lanes_avx512(
    const double* ca, const double* ma, const double* cb, const double* mb,
    std::size_t n, const SweepParams& p, double* ci_saved, double* mi_saved,
    double* total_saved, double* savings, double* noslow, double* dt) {
  const __m512d v100 = _mm512_set1_pd(100.0);
  const __m512d vjpm = _mm512_set1_pd(3.6e9);
  const __m512d veci = _mm512_set1_pd(p.e_ci);
  const __m512d vemi = _mm512_set1_pd(p.e_mi);
  const __m512d vtot = _mm512_set1_pd(p.total_mwh);
  const __m512d vwci = _mm512_set1_pd(p.w_ci);
  const __m512d vwmi = _mm512_set1_pd(p.w_mi);
  const __m512d vzero = _mm512_setzero_pd();
  for (std::size_t i = 0; i < n; i += 8) {
    const __m512d cs =
        _mm512_div_pd(_mm512_mul_pd(veci, _mm512_loadu_pd(ca + i)), vjpm);
    const __m512d ms =
        _mm512_div_pd(_mm512_mul_pd(vemi, _mm512_loadu_pd(ma + i)), vjpm);
    const __m512d ts = _mm512_add_pd(cs, ms);
    _mm512_storeu_pd(ci_saved + i, cs);
    _mm512_storeu_pd(mi_saved + i, ms);
    _mm512_storeu_pd(total_saved + i, ts);
    if (p.positive) {
      _mm512_storeu_pd(savings + i,
                       _mm512_div_pd(_mm512_mul_pd(v100, ts), vtot));
      _mm512_storeu_pd(noslow + i,
                       _mm512_div_pd(_mm512_mul_pd(v100, ms), vtot));
      const __m512d dci = _mm512_mul_pd(vwci, _mm512_loadu_pd(cb + i));
      const __m512d dmi = _mm512_mul_pd(vwmi, _mm512_loadu_pd(mb + i));
      _mm512_storeu_pd(dt + i, _mm512_add_pd(dci, dmi));
    } else {
      _mm512_storeu_pd(savings + i, vzero);
      _mm512_storeu_pd(noslow + i, vzero);
      _mm512_storeu_pd(dt + i, vzero);
    }
  }
}

#endif  // x86_64 && GNUC

SweepLanesFn tier_fn(ProjectionSimdTier tier) {
#if defined(__x86_64__) && defined(__GNUC__)
  if (tier == ProjectionSimdTier::kAvx512) return sweep_lanes_avx512;
  if (tier == ProjectionSimdTier::kAvx2) return sweep_lanes_avx2;
#else
  (void)tier;
#endif
  return sweep_lanes_portable;
}

ProjectionSimdTier resolve_tier() {
  if (!simd_enabled()) return ProjectionSimdTier::kPortable;
  if (projection_tier_supported(ProjectionSimdTier::kAvx512)) {
    return ProjectionSimdTier::kAvx512;
  }
  if (projection_tier_supported(ProjectionSimdTier::kAvx2)) {
    return ProjectionSimdTier::kAvx2;
  }
  return ProjectionSimdTier::kPortable;
}

/// The dispatched kernel; null until first use or after a reset.
std::atomic<SweepLanesFn> g_sweep_lanes{nullptr};

SweepLanesFn sweep_lanes() {
  SweepLanesFn f = g_sweep_lanes.load(std::memory_order_relaxed);
  if (f == nullptr) {
    f = tier_fn(resolve_tier());
    g_sweep_lanes.store(f, std::memory_order_relaxed);
  }
  return f;
}

/// Hoists the per-decomposition invariants once for a whole batch; the
/// scalar path recomputes them per point with identical operands, so
/// hoisting cannot change a single bit.
SweepParams make_params(const ModalDecomposition& decomp) {
  SweepParams p;
  p.e_ci =
      decomp.regions[static_cast<std::size_t>(Region::kComputeIntensive)]
          .energy_j;
  p.e_mi =
      decomp.regions[static_cast<std::size_t>(Region::kMemoryIntensive)]
          .energy_j;
  const double e_total = decomp.total_energy_j;
  p.positive = e_total > 0.0;
  if (p.positive) {
    p.total_mwh = units::joules_to_mwh(e_total);
    p.w_ci = p.e_ci / e_total;
    p.w_mi = p.e_mi / e_total;
  }
  return p;
}

void count_projection_rows(std::size_t n) {
  if (obs::metrics_enabled()) {
    obs::MetricsRegistry::global()
        .counter("exaeff_projection_rows_total",
                 "Cap settings evaluated by projection sweeps")
        .inc(static_cast<double>(n));
  }
}

}  // namespace

bool projection_tier_supported(ProjectionSimdTier tier) {
  switch (tier) {
    case ProjectionSimdTier::kPortable:
      return true;
    case ProjectionSimdTier::kAvx2:
#if defined(__x86_64__) && defined(__GNUC__)
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
    case ProjectionSimdTier::kAvx512:
#if defined(__x86_64__) && defined(__GNUC__)
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512dq");
#else
      return false;
#endif
  }
  return false;
}

ProjectionSimdTier active_projection_tier() {
  const SweepLanesFn f = sweep_lanes();
#if defined(__x86_64__) && defined(__GNUC__)
  if (f == sweep_lanes_avx512) return ProjectionSimdTier::kAvx512;
  if (f == sweep_lanes_avx2) return ProjectionSimdTier::kAvx2;
#endif
  (void)f;
  return ProjectionSimdTier::kPortable;
}

void force_projection_tier(ProjectionSimdTier tier) {
  EXAEFF_REQUIRE(projection_tier_supported(tier),
                 "projection SIMD tier is not supported on this host");
  g_sweep_lanes.store(tier_fn(tier), std::memory_order_relaxed);
}

void reset_projection_tier() {
  g_sweep_lanes.store(nullptr, std::memory_order_relaxed);
}

ProjectionRow ProjectionEngine::project(const ModalDecomposition& decomp,
                                        CapType type, double setting) const {
  const CapResponse& ci =
      table_.at(BenchClass::kComputeIntensive, type, setting);
  const CapResponse& mi =
      table_.at(BenchClass::kMemoryIntensive, type, setting);

  const double e_ci =
      decomp.regions[static_cast<std::size_t>(Region::kComputeIntensive)]
          .energy_j;
  const double e_mi =
      decomp.regions[static_cast<std::size_t>(Region::kMemoryIntensive)]
          .energy_j;
  const double e_total = decomp.total_energy_j;

  ProjectionRow row;
  row.cap_type = type;
  row.setting = setting;
  row.ci_saved_mwh = units::joules_to_mwh(e_ci * (1.0 - ci.energy_pct / 100.0));
  row.mi_saved_mwh = units::joules_to_mwh(e_mi * (1.0 - mi.energy_pct / 100.0));
  row.total_saved_mwh = row.ci_saved_mwh + row.mi_saved_mwh;
  if (e_total > 0.0) {
    const double total_mwh = units::joules_to_mwh(e_total);
    row.savings_pct = 100.0 * row.total_saved_mwh / total_mwh;
    row.savings_pct_no_slowdown = 100.0 * row.mi_saved_mwh / total_mwh;
    // Energy-weighted runtime increase across the two affected regions
    // (regions 1 and 4 are excluded from capping in this projection).
    row.delta_t_pct = (e_ci / e_total) * (ci.runtime_pct - 100.0) +
                      (e_mi / e_total) * (mi.runtime_pct - 100.0);
  }
  return row;
}

void ProjectionEngine::project_rows_into(
    const ModalDecomposition& decomp, CapType type,
    std::span<const double> settings, std::span<const std::uint32_t> ci_rows,
    std::span<const std::uint32_t> mi_rows,
    std::span<ProjectionRow> out) const {
  EXAEFF_REQUIRE(settings.size() == out.size() &&
                     ci_rows.size() == out.size() &&
                     mi_rows.size() == out.size(),
                 "batch projection spans must share one size");
  const SweepView& ci_view =
      table_.sweep_view(BenchClass::kComputeIntensive, type);
  const SweepView& mi_view =
      table_.sweep_view(BenchClass::kMemoryIntensive, type);

  const SweepParams p = make_params(decomp);
  const SweepLanesFn lanes = sweep_lanes();
  // Block size bounds the stack scratch (10 lanes x 2 KB) while leaving
  // plenty of iterations to amortize the indirect kernel call.
  constexpr std::size_t kBlock = 256;
  alignas(64) double ca[kBlock], ma[kBlock], cb[kBlock], mb[kBlock];
  alignas(64) double cs[kBlock], ms[kBlock], ts[kBlock];
  alignas(64) double sp[kBlock], ns[kBlock], dt[kBlock];
  for (std::size_t base = 0; base < out.size(); base += kBlock) {
    const std::size_t m = std::min(kBlock, out.size() - base);
    for (std::size_t j = 0; j < m; ++j) {
      const std::uint32_t ci = ci_rows[base + j];
      const std::uint32_t mi = mi_rows[base + j];
      if (ci >= ci_view.size() || mi >= mi_view.size()) {
        // An unresolved (kNoRow) or stale index: surface exactly the
        // error the scalar path's at() lookup would have thrown.
        throw Error("cap setting was not part of the characterization sweep");
      }
      ca[j] = ci_view.one_minus_energy[ci];
      cb[j] = ci_view.runtime_minus_100[ci];
      ma[j] = mi_view.one_minus_energy[mi];
      mb[j] = mi_view.runtime_minus_100[mi];
    }
    // Pad the tail to a full lane group: the padded lanes compute
    // finite values the scatter never reads.
    const std::size_t padded = (m + 7) & ~std::size_t{7};
    for (std::size_t j = m; j < padded; ++j) {
      ca[j] = ma[j] = cb[j] = mb[j] = 0.0;
    }
    lanes(ca, ma, cb, mb, padded, p, cs, ms, ts, sp, ns, dt);
    for (std::size_t j = 0; j < m; ++j) {
      ProjectionRow& row = out[base + j];
      row.cap_type = type;
      row.setting = settings[base + j];
      row.ci_saved_mwh = cs[j];
      row.mi_saved_mwh = ms[j];
      row.total_saved_mwh = ts[j];
      row.savings_pct = sp[j];
      row.delta_t_pct = dt[j];
      row.savings_pct_no_slowdown = ns[j];
    }
  }
}

void ProjectionEngine::project_sweep_into(const ModalDecomposition& decomp,
                                          CapType type,
                                          std::span<ProjectionRow> out) const {
  EXAEFF_TRACE_SPAN("projection.sweep");
  const SweepPlan& plan = table_.sweep_plan(type);
  EXAEFF_REQUIRE(out.size() == plan.size(),
                 "sweep output span must have sweep_size() rows");
  if (!plan.paired) {
    // Some CI setting never resolved in the MI class: the gather path
    // below surfaces at()'s exact error for it.
    project_rows_into(decomp, type, plan.settings, plan.ci_row, plan.mi_row,
                      out);
    count_projection_rows(out.size());
    return;
  }
  // Paired fast path: the plan's pre-gathered, pre-padded columns feed
  // the kernel directly — no per-call gather, no tail handling.
  const SweepParams p = make_params(decomp);
  const SweepLanesFn lanes = sweep_lanes();
  constexpr std::size_t kBlock = 256;
  alignas(64) double cs[kBlock], ms[kBlock], ts[kBlock];
  alignas(64) double sp[kBlock], ns[kBlock], dt[kBlock];
  for (std::size_t base = 0; base < out.size(); base += kBlock) {
    const std::size_t m = std::min(kBlock, out.size() - base);
    // base is a multiple of 8, so the padded block length stays inside
    // the plan's padded columns.
    const std::size_t padded = (m + 7) & ~std::size_t{7};
    lanes(plan.ci_one_minus_e.data() + base,
          plan.mi_one_minus_e.data() + base,
          plan.ci_rt_minus_100.data() + base,
          plan.mi_rt_minus_100.data() + base, padded, p, cs, ms, ts, sp, ns,
          dt);
    for (std::size_t j = 0; j < m; ++j) {
      ProjectionRow& row = out[base + j];
      row.cap_type = type;
      row.setting = plan.settings[base + j];
      row.ci_saved_mwh = cs[j];
      row.mi_saved_mwh = ms[j];
      row.total_saved_mwh = ts[j];
      row.savings_pct = sp[j];
      row.delta_t_pct = dt[j];
      row.savings_pct_no_slowdown = ns[j];
    }
  }
  count_projection_rows(out.size());
}

std::vector<ProjectionRow> ProjectionEngine::project_sweep(
    const ModalDecomposition& decomp, CapType type) const {
  std::vector<ProjectionRow> rows(sweep_size(type));
  project_sweep_into(decomp, type, rows);
  return rows;
}

ProjectionRow ProjectionEngine::best_no_slowdown(
    const ModalDecomposition& decomp, CapType type) const {
  EXAEFF_TRACE_SPAN("projection.sweep");
  const SweepPlan& plan = table_.sweep_plan(type);
  if (plan.size() == 0) count_projection_rows(0);
  EXAEFF_REQUIRE(plan.size() > 0, "no capped settings in the sweep");
  // Blockwise batch compute with an in-place argmax fold: first row
  // wins ties (strict >), exactly like the row-vector scan it replaces.
  constexpr std::size_t kArgmaxBlock = 64;
  ProjectionRow block[kArgmaxBlock];
  ProjectionRow best;
  bool first = true;
  const std::span<const double> settings(plan.settings);
  const std::span<const std::uint32_t> ci_rows(plan.ci_row);
  const std::span<const std::uint32_t> mi_rows(plan.mi_row);
  for (std::size_t base = 0; base < plan.size(); base += kArgmaxBlock) {
    const std::size_t m = std::min(kArgmaxBlock, plan.size() - base);
    project_rows_into(decomp, type, settings.subspan(base, m),
                      ci_rows.subspan(base, m), mi_rows.subspan(base, m),
                      std::span<ProjectionRow>(block, m));
    for (std::size_t j = 0; j < m; ++j) {
      if (first ||
          block[j].savings_pct_no_slowdown > best.savings_pct_no_slowdown) {
        best = block[j];
        first = false;
      }
    }
  }
  count_projection_rows(plan.size());
  return best;
}

}  // namespace exaeff::core
