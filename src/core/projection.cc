#include "core/projection.h"

#include <string>

#include "common/error.h"
#include "common/units.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace exaeff::core {

void require_quality(const DataQuality& q, const QualityPolicy& policy) {
  if (q.coverage < policy.min_coverage) {
    throw DataQualityError(
        "telemetry coverage " + std::to_string(q.coverage) +
        " is below the projection floor " +
        std::to_string(policy.min_coverage) +
        "; refusing to project from this data");
  }
  if (q.imputed_share > policy.max_imputed_share) {
    throw DataQualityError(
        "imputed share " + std::to_string(q.imputed_share) +
        " exceeds the projection ceiling " +
        std::to_string(policy.max_imputed_share) +
        "; refusing to project from this data");
  }
}

ProjectionRow ProjectionEngine::project(const ModalDecomposition& decomp,
                                        CapType type, double setting) const {
  const CapResponse& ci =
      table_.at(BenchClass::kComputeIntensive, type, setting);
  const CapResponse& mi =
      table_.at(BenchClass::kMemoryIntensive, type, setting);

  const double e_ci =
      decomp.regions[static_cast<std::size_t>(Region::kComputeIntensive)]
          .energy_j;
  const double e_mi =
      decomp.regions[static_cast<std::size_t>(Region::kMemoryIntensive)]
          .energy_j;
  const double e_total = decomp.total_energy_j;

  ProjectionRow row;
  row.cap_type = type;
  row.setting = setting;
  row.ci_saved_mwh = units::joules_to_mwh(e_ci * (1.0 - ci.energy_pct / 100.0));
  row.mi_saved_mwh = units::joules_to_mwh(e_mi * (1.0 - mi.energy_pct / 100.0));
  row.total_saved_mwh = row.ci_saved_mwh + row.mi_saved_mwh;
  if (e_total > 0.0) {
    const double total_mwh = units::joules_to_mwh(e_total);
    row.savings_pct = 100.0 * row.total_saved_mwh / total_mwh;
    row.savings_pct_no_slowdown = 100.0 * row.mi_saved_mwh / total_mwh;
    // Energy-weighted runtime increase across the two affected regions
    // (regions 1 and 4 are excluded from capping in this projection).
    row.delta_t_pct = (e_ci / e_total) * (ci.runtime_pct - 100.0) +
                      (e_mi / e_total) * (mi.runtime_pct - 100.0);
  }
  return row;
}

std::vector<ProjectionRow> ProjectionEngine::project_sweep(
    const ModalDecomposition& decomp, CapType type) const {
  EXAEFF_TRACE_SPAN("projection.sweep");
  std::vector<ProjectionRow> rows;
  for (const auto& r : table_.rows(BenchClass::kComputeIntensive, type)) {
    // Skip the uncapped baseline rows (100% everything).
    if (r.runtime_pct == 100.0 && r.energy_pct == 100.0 &&
        r.avg_power_pct == 100.0) {
      continue;
    }
    rows.push_back(project(decomp, type, r.setting));
  }
  if (obs::metrics_enabled()) {
    obs::MetricsRegistry::global()
        .counter("exaeff_projection_rows_total",
                 "Cap settings evaluated by projection sweeps")
        .inc(rows.size());
  }
  return rows;
}

ProjectionRow ProjectionEngine::best_no_slowdown(
    const ModalDecomposition& decomp, CapType type) const {
  const auto rows = project_sweep(decomp, type);
  EXAEFF_REQUIRE(!rows.empty(), "no capped settings in the sweep");
  const ProjectionRow* best = &rows.front();
  for (const auto& r : rows) {
    if (r.savings_pct_no_slowdown > best->savings_pct_no_slowdown) {
      best = &r;
    }
  }
  return *best;
}

}  // namespace exaeff::core
