#include "core/decomposition.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace exaeff::core {

PowerDecomposer::PowerDecomposer(const gpusim::DeviceSpec& spec)
    : spec_(spec) {
  spec_.validate();
}

double PowerDecomposer::forward_power(double u_alu, double u_hbm,
                                      double f_mhz) const {
  EXAEFF_REQUIRE(u_alu >= 0.0 && u_alu <= 1.0, "u_alu must be in [0, 1]");
  EXAEFF_REQUIRE(u_hbm >= 0.0 && u_hbm <= 1.0, "u_hbm must be in [0, 1]");
  const double s = spec_.power_scale(spec_.clamp_frequency(f_mhz));
  // Mirrors PowerModel::steady_power for a pure-throughput window: HBM
  // traffic transits the L2 (u_l2 tracks traffic through the L2/HBM
  // bandwidth ratio), no latency share, no fabric throttle.
  const double u_l2 = u_hbm * (spec_.hbm_bw / spec_.l2_bw);
  double p = spec_.idle_power_w;
  p += s * (spec_.coef_alu_w * u_alu + spec_.coef_l2_w * u_l2 +
            spec_.coef_hbm_ondie_w * u_hbm);
  // At steady throughput the HBM busy fraction equals the traffic
  // fraction, so both the static and the dynamic off-die shares scale
  // with u_hbm (mirroring PowerModel::steady_power at full fabric).
  p += spec_.coef_hbm_offdie_w * u_hbm;
  p += spec_.coef_interact_w * s * u_alu * u_hbm;
  return std::clamp(p, spec_.idle_power_w, spec_.boost_power_w);
}

UtilizationEstimate PowerDecomposer::estimate(double power_w,
                                              double f_mhz) const {
  EXAEFF_REQUIRE(power_w > 0.0, "power must be positive");
  const double f = spec_.clamp_frequency(f_mhz);

  UtilizationEstimate est;
  est.power_w = power_w;
  if (power_w <= spec_.idle_power_w + 2.0) {
    est.idle = true;
    return est;
  }
  const double target = std::min(power_w, forward_power(1.0, 1.0, f));

  // The forward model is monotone non-decreasing in each utilization, so
  // each envelope edge is a 1-D bisection:
  //   alu_max: largest u_alu with P(u_alu, 0) <= target
  //   alu_min: smallest u_alu with P(u_alu, 1) >= target
  // and symmetrically for u_hbm.
  auto bisect = [&](auto pred) {
    double lo = 0.0;
    double hi = 1.0;
    // pred(u) is monotone false->true; find the boundary.
    if (pred(0.0)) return 0.0;
    if (!pred(1.0)) return 1.0;
    for (int i = 0; i < 48; ++i) {
      const double mid = 0.5 * (lo + hi);
      (pred(mid) ? hi : lo) = mid;
    }
    return 0.5 * (lo + hi);
  };

  est.alu_max =
      bisect([&](double u) { return forward_power(u, 0.0, f) >= target; });
  est.hbm_max =
      bisect([&](double u) { return forward_power(0.0, u, f) >= target; });
  est.alu_min =
      bisect([&](double u) { return forward_power(u, 1.0, f) >= target; });
  est.hbm_min =
      bisect([&](double u) { return forward_power(1.0, u, f) >= target; });

  // Balanced point estimate: walk the feasible ridge at equal normalized
  // activity u_alu = u_hbm = u.
  est.alu_mid = est.hbm_mid =
      bisect([&](double u) { return forward_power(u, u, f) >= target; });
  return est;
}

}  // namespace exaeff::core
