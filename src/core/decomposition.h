// exaeff/core/decomposition.h
//
// Power decomposition: estimating on-die resource usage from power alone
// — the paper's second headline contribution ("a novel power
// decomposition technique to estimate resource usage ... Our method
// capitalizes on the detailed insights into application resource usage
// embedded in power consumption data").
//
// A single power value cannot pin down the full utilization vector ("it
// is not possible to disaggregate all the GPU operations based only on
// the power values"), but it does carve out a *feasible set*: the
// calibrated power model is monotone in both u_alu and u_hbm, so a power
// reading yields tight envelopes [min, max] for each engine's activity,
// plus a maximum-entropy point estimate on the feasible ridge.  The
// region classification of Table IV is exactly the coarse version of
// this inverse; here the full envelope is exposed.
#pragma once

#include "gpusim/device_spec.h"
#include "gpusim/power_model.h"

namespace exaeff::core {

/// Feasible utilization envelope for one power reading at a known clock.
struct UtilizationEstimate {
  double power_w = 0.0;
  /// ALU activity (achieved fraction of peak flops) envelope.
  double alu_min = 0.0;
  double alu_max = 0.0;
  /// HBM traffic (achieved fraction of peak bandwidth) envelope.
  double hbm_min = 0.0;
  double hbm_max = 0.0;
  /// Balanced point estimate (equal normalized residual split).
  double alu_mid = 0.0;
  double hbm_mid = 0.0;
  /// True when the reading is below idle + margin (no activity inferable)
  bool idle = false;
};

/// Inverse of the calibrated power model for steady, throughput-style
/// windows (latency share assumed small; the latency region is screened
/// out by its power level before this inverse is meaningful).
class PowerDecomposer {
 public:
  explicit PowerDecomposer(const gpusim::DeviceSpec& spec);

  /// Envelope of (u_alu, u_hbm) consistent with `power_w` at `f_mhz`.
  /// Throws ConfigError for non-positive inputs.
  [[nodiscard]] UtilizationEstimate estimate(double power_w,
                                             double f_mhz) const;

  /// Forward model check: power of a (u_alu, u_hbm) pair at f (steady,
  /// no latency share).  Exposed so callers can validate estimates.
  [[nodiscard]] double forward_power(double u_alu, double u_hbm,
                                     double f_mhz) const;

 private:
  gpusim::DeviceSpec spec_;
};

}  // namespace exaeff::core
