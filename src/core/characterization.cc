#include "core/characterization.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "exec/thread_pool.h"
#include "obs/trace.h"
#include "workloads/membench.h"
#include "workloads/vai.h"

namespace exaeff::core {

void CapResponseTable::add(BenchClass cls, CapType type, CapResponse row) {
  auto& sweep = table_[static_cast<int>(cls)][static_cast<int>(type)];
  const auto idx = static_cast<std::uint32_t>(sweep.rows.size());
  sweep.rows.push_back(row);
  // Keep the side index sorted by setting; sweeps are a handful of rows
  // and add() is cold, so an ordered insert is fine.
  const auto pos = std::lower_bound(
      sweep.by_setting.begin(), sweep.by_setting.end(), row.setting,
      [&sweep](std::uint32_t i, double s) {
        return sweep.rows[i].setting < s;
      });
  sweep.by_setting.insert(pos, idx);
  // Column (structure-of-arrays) mirror, index-aligned with rows.
  auto& view = view_[static_cast<int>(cls)][static_cast<int>(type)];
  view.settings.push_back(row.setting);
  view.avg_power_pct.push_back(row.avg_power_pct);
  view.runtime_pct.push_back(row.runtime_pct);
  view.energy_pct.push_back(row.energy_pct);
  view.one_minus_energy.push_back(1.0 - row.energy_pct / 100.0);
  view.runtime_minus_100.push_back(row.runtime_pct - 100.0);
  rebuild_plan(type);
}

void CapResponseTable::rebuild_plan(CapType type) {
  SweepPlan& plan = plan_[static_cast<int>(type)];
  plan.settings.clear();
  plan.ci_row.clear();
  plan.mi_row.clear();
  plan.paired = true;
  for (const CapResponse& r :
       rows(BenchClass::kComputeIntensive, type)) {
    // Skip the uncapped baseline rows (100% everything) — the same
    // predicate project_sweep() applies.
    if (r.runtime_pct == 100.0 && r.energy_pct == 100.0 &&
        r.avg_power_pct == 100.0) {
      continue;
    }
    const std::uint32_t ci =
        index_of(BenchClass::kComputeIntensive, type, r.setting);
    const std::uint32_t mi =
        index_of(BenchClass::kMemoryIntensive, type, r.setting);
    plan.settings.push_back(r.setting);
    plan.ci_row.push_back(ci);
    plan.mi_row.push_back(mi);
    if (ci == kNoRow || mi == kNoRow) plan.paired = false;
  }
  // Pre-gathered, pre-padded kernel inputs for the paired fast path.
  plan.ci_one_minus_e.clear();
  plan.mi_one_minus_e.clear();
  plan.ci_rt_minus_100.clear();
  plan.mi_rt_minus_100.clear();
  if (plan.paired) {
    const SweepView& ci_view =
        sweep_view(BenchClass::kComputeIntensive, type);
    const SweepView& mi_view =
        sweep_view(BenchClass::kMemoryIntensive, type);
    const std::size_t padded = (plan.size() + 7) / 8 * 8;
    plan.ci_one_minus_e.assign(padded, 0.0);
    plan.mi_one_minus_e.assign(padded, 0.0);
    plan.ci_rt_minus_100.assign(padded, 0.0);
    plan.mi_rt_minus_100.assign(padded, 0.0);
    for (std::size_t i = 0; i < plan.size(); ++i) {
      plan.ci_one_minus_e[i] = ci_view.one_minus_energy[plan.ci_row[i]];
      plan.mi_one_minus_e[i] = mi_view.one_minus_energy[plan.mi_row[i]];
      plan.ci_rt_minus_100[i] = ci_view.runtime_minus_100[plan.ci_row[i]];
      plan.mi_rt_minus_100[i] = mi_view.runtime_minus_100[plan.mi_row[i]];
    }
  }
}

std::span<const CapResponse> CapResponseTable::rows(BenchClass cls,
                                                    CapType type) const {
  return table_[static_cast<int>(cls)][static_cast<int>(type)].rows;
}

const CapResponse& CapResponseTable::at(BenchClass cls, CapType type,
                                        double setting) const {
  const auto& sweep = table_[static_cast<int>(cls)][static_cast<int>(type)];
  auto it = std::lower_bound(
      sweep.by_setting.begin(), sweep.by_setting.end(),
      setting - kSettingTolerance,
      [&sweep](std::uint32_t i, double s) {
        return sweep.rows[i].setting < s;
      });
  if (it != sweep.by_setting.end()) {
    const CapResponse& r = sweep.rows[*it];
    if (std::abs(r.setting - setting) < kSettingTolerance) return r;
  }
  throw Error("cap setting was not part of the characterization sweep");
}

std::uint32_t CapResponseTable::index_of(BenchClass cls, CapType type,
                                         double setting) const {
  const auto& sweep = table_[static_cast<int>(cls)][static_cast<int>(type)];
  auto it = std::lower_bound(
      sweep.by_setting.begin(), sweep.by_setting.end(),
      setting - kSettingTolerance,
      [&sweep](std::uint32_t i, double s) {
        return sweep.rows[i].setting < s;
      });
  if (it != sweep.by_setting.end()) {
    if (std::abs(sweep.rows[*it].setting - setting) < kSettingTolerance) {
      return *it;
    }
  }
  return kNoRow;
}

namespace {

/// Sweeps one kernel set under one policy list; each row averages the
/// per-kernel percentage responses (the paper averages across arithmetic
/// intensities, Table III caption).
void sweep(const gpusim::GpuSimulator& sim,
           const std::vector<gpusim::KernelDesc>& kernels,
           const std::vector<double>& settings, CapType type,
           BenchClass cls, exec::ThreadPool* pool, CapResponseTable& out) {
  // Baselines: unconstrained run per kernel.
  const auto base = exec::map_indexed(pool, kernels.size(), [&](std::size_t i) {
    return sim.run(kernels[i], gpusim::PowerPolicy::none());
  });

  // Settings evaluate independently; each row's per-kernel fold stays in
  // kernel order, so rows match the serial sweep bit for bit.
  const auto rows = exec::map_indexed(pool, settings.size(), [&](std::size_t s) {
    const double setting = settings[s];
    const gpusim::PowerPolicy policy =
        type == CapType::kFrequency ? gpusim::PowerPolicy::frequency(setting)
                                    : gpusim::PowerPolicy::power(setting);
    double power_pct = 0.0;
    double runtime_pct = 0.0;
    double energy_pct = 0.0;
    for (std::size_t i = 0; i < kernels.size(); ++i) {
      const auto r = sim.run(kernels[i], policy);
      power_pct += 100.0 * r.avg_power_w / base[i].avg_power_w;
      runtime_pct += 100.0 * r.time_s / base[i].time_s;
      energy_pct += 100.0 * r.energy_j / base[i].energy_j;
    }
    const auto n = static_cast<double>(kernels.size());
    return CapResponse{setting, power_pct / n, runtime_pct / n,
                       energy_pct / n};
  });
  for (const CapResponse& row : rows) out.add(cls, type, row);
}

}  // namespace

CapResponseTable characterize(const gpusim::DeviceSpec& spec,
                              const CharacterizationOptions& opts) {
  EXAEFF_TRACE_SPAN("core.characterize");
  const gpusim::GpuSimulator sim(spec);

  std::vector<double> freq_caps = opts.frequency_caps_mhz.empty()
                                      ? workloads::vai::standard_frequency_caps()
                                      : opts.frequency_caps_mhz;
  std::vector<double> power_caps = opts.power_caps_w.empty()
                                       ? workloads::vai::standard_power_caps()
                                       : opts.power_caps_w;

  // Compute-intensive class: the VAI arithmetic-intensity sweep.
  std::vector<gpusim::KernelDesc> vai_kernels;
  for (double ai : workloads::vai::standard_intensities()) {
    if (ai == 0.0 && !opts.include_stream_copy) continue;
    vai_kernels.push_back(workloads::vai::make_kernel(spec, ai));
  }

  // Memory-intensive class: HBM-resident working sets of the membench.
  std::vector<gpusim::KernelDesc> mb_kernels;
  for (double size : workloads::membench::hbm_resident_sizes(spec)) {
    mb_kernels.push_back(workloads::membench::make_kernel(spec, size));
  }
  EXAEFF_REQUIRE(!vai_kernels.empty() && !mb_kernels.empty(),
                 "characterization needs at least one kernel per class");

  CapResponseTable table;
  sweep(sim, vai_kernels, freq_caps, CapType::kFrequency,
        BenchClass::kComputeIntensive, opts.pool, table);
  sweep(sim, vai_kernels, power_caps, CapType::kPower,
        BenchClass::kComputeIntensive, opts.pool, table);
  sweep(sim, mb_kernels, freq_caps, CapType::kFrequency,
        BenchClass::kMemoryIntensive, opts.pool, table);
  sweep(sim, mb_kernels, power_caps, CapType::kPower,
        BenchClass::kMemoryIntensive, opts.pool, table);
  return table;
}

}  // namespace exaeff::core
