#include "core/characterization.h"

#include <cmath>

#include "common/error.h"
#include "obs/trace.h"
#include "workloads/membench.h"
#include "workloads/vai.h"

namespace exaeff::core {

void CapResponseTable::add(BenchClass cls, CapType type, CapResponse row) {
  table_[static_cast<int>(cls)][static_cast<int>(type)].push_back(row);
}

std::span<const CapResponse> CapResponseTable::rows(BenchClass cls,
                                                    CapType type) const {
  return table_[static_cast<int>(cls)][static_cast<int>(type)];
}

const CapResponse& CapResponseTable::at(BenchClass cls, CapType type,
                                        double setting) const {
  for (const auto& r : rows(cls, type)) {
    if (std::abs(r.setting - setting) < 1e-6) return r;
  }
  throw Error("cap setting was not part of the characterization sweep");
}

namespace {

/// Sweeps one kernel set under one policy list; each row averages the
/// per-kernel percentage responses (the paper averages across arithmetic
/// intensities, Table III caption).
void sweep(const gpusim::GpuSimulator& sim,
           const std::vector<gpusim::KernelDesc>& kernels,
           const std::vector<double>& settings, CapType type,
           BenchClass cls, CapResponseTable& out) {
  // Baselines: unconstrained run per kernel.
  std::vector<gpusim::RunResult> base;
  base.reserve(kernels.size());
  for (const auto& k : kernels) {
    base.push_back(sim.run(k, gpusim::PowerPolicy::none()));
  }

  for (double setting : settings) {
    const gpusim::PowerPolicy policy =
        type == CapType::kFrequency ? gpusim::PowerPolicy::frequency(setting)
                                    : gpusim::PowerPolicy::power(setting);
    double power_pct = 0.0;
    double runtime_pct = 0.0;
    double energy_pct = 0.0;
    for (std::size_t i = 0; i < kernels.size(); ++i) {
      const auto r = sim.run(kernels[i], policy);
      power_pct += 100.0 * r.avg_power_w / base[i].avg_power_w;
      runtime_pct += 100.0 * r.time_s / base[i].time_s;
      energy_pct += 100.0 * r.energy_j / base[i].energy_j;
    }
    const auto n = static_cast<double>(kernels.size());
    out.add(cls, type,
            CapResponse{setting, power_pct / n, runtime_pct / n,
                        energy_pct / n});
  }
}

}  // namespace

CapResponseTable characterize(const gpusim::DeviceSpec& spec,
                              const CharacterizationOptions& opts) {
  EXAEFF_TRACE_SPAN("core.characterize");
  const gpusim::GpuSimulator sim(spec);

  std::vector<double> freq_caps = opts.frequency_caps_mhz.empty()
                                      ? workloads::vai::standard_frequency_caps()
                                      : opts.frequency_caps_mhz;
  std::vector<double> power_caps = opts.power_caps_w.empty()
                                       ? workloads::vai::standard_power_caps()
                                       : opts.power_caps_w;

  // Compute-intensive class: the VAI arithmetic-intensity sweep.
  std::vector<gpusim::KernelDesc> vai_kernels;
  for (double ai : workloads::vai::standard_intensities()) {
    if (ai == 0.0 && !opts.include_stream_copy) continue;
    vai_kernels.push_back(workloads::vai::make_kernel(spec, ai));
  }

  // Memory-intensive class: HBM-resident working sets of the membench.
  std::vector<gpusim::KernelDesc> mb_kernels;
  for (double size : workloads::membench::hbm_resident_sizes(spec)) {
    mb_kernels.push_back(workloads::membench::make_kernel(spec, size));
  }
  EXAEFF_REQUIRE(!vai_kernels.empty() && !mb_kernels.empty(),
                 "characterization needs at least one kernel per class");

  CapResponseTable table;
  sweep(sim, vai_kernels, freq_caps, CapType::kFrequency,
        BenchClass::kComputeIntensive, table);
  sweep(sim, vai_kernels, power_caps, CapType::kPower,
        BenchClass::kComputeIntensive, table);
  sweep(sim, mb_kernels, freq_caps, CapType::kFrequency,
        BenchClass::kMemoryIntensive, table);
  sweep(sim, mb_kernels, power_caps, CapType::kPower,
        BenchClass::kMemoryIntensive, table);
  return table;
}

}  // namespace exaeff::core
