#include "core/accumulator.h"

namespace exaeff::core {

namespace {
template <std::size_t N>
std::array<Histogram, N> make_histograms(double lo, double hi,
                                         std::size_t bins) {
  // Build via repeated copy of one prototype (Histogram has no default
  // constructor by design).
  return []<std::size_t... I>(std::index_sequence<I...>, double l, double h,
                              std::size_t b) {
    return std::array<Histogram, N>{((void)I, Histogram(l, h, b))...};
  }(std::make_index_sequence<N>{}, lo, hi, bins);
}
}  // namespace

CampaignAccumulator::CampaignAccumulator(double window_s,
                                         RegionBoundaries boundaries,
                                         double hist_lo_w, double hist_hi_w,
                                         std::size_t hist_bins)
    : window_s_(window_s),
      hours_per_sample_(window_s / 3600.0),
      boundaries_(boundaries),
      hist_(hist_lo_w, hist_hi_w, hist_bins),
      domain_hist_(make_histograms<sched::kDomainCount>(hist_lo_w, hist_hi_w,
                                                        hist_bins)) {
  EXAEFF_REQUIRE(window_s > 0.0, "telemetry window must be positive");
}

void CampaignAccumulator::on_job_sample(const telemetry::GcdSample& sample,
                                        const sched::Job& job) {
  const double p = sample.power_w;
  const Region region = boundaries_.classify(p);
  const double energy = p * window_s_;

  // hist_ and domain_hist_ share one shape, so one bin lookup serves
  // both (same clamping as Histogram::add) — same sharing as the batch
  // path below.
  const std::size_t bin = hist_.bin_index_of(p);
  hist_.add_at(bin);
  domain_hist_[static_cast<std::size_t>(job.domain)].add_at(bin);

  auto& share = cells_[static_cast<std::size_t>(job.domain)]
                      [static_cast<std::size_t>(job.bin)]
                          .regions[static_cast<std::size_t>(region)];
  share.gpu_hours += hours_per_sample_;
  share.energy_j += energy;
  ++samples_;
}

void CampaignAccumulator::on_node_sample(const telemetry::NodeSample& sample) {
  cpu_energy_j_ += sample.cpu_power_w * window_s_;
  ++node_samples_;
}

void CampaignAccumulator::on_job_batch(
    std::span<const telemetry::GcdSample> samples, const sched::Job& job) {
  // Span-invariant lookups hoisted out of the loop; every floating-point
  // accumulation below adds the same values in the same per-sample order
  // as on_job_sample(), so batched ingest is bit-identical to it.
  Histogram& dh = domain_hist_[static_cast<std::size_t>(job.domain)];
  auto& row = cells_[static_cast<std::size_t>(job.domain)]
                    [static_cast<std::size_t>(job.bin)];
  const double hours = hours_per_sample_;
  const double window = window_s_;
  for (const telemetry::GcdSample& sample : samples) {
    const double p = sample.power_w;
    const Region region = boundaries_.classify(p);
    // hist_ and domain_hist_ share one shape, so one bin lookup serves
    // both (same clamping as Histogram::add).  Totals are deferred to
    // one add_total per batch — exact for unit weights — so the loop
    // carries no serialized add into either histogram's total.
    const std::size_t bin = hist_.bin_index_of(p);
    hist_.count_at(bin);
    dh.count_at(bin);
    auto& share = row.regions[static_cast<std::size_t>(region)];
    share.gpu_hours += hours;
    share.energy_j += p * window;
  }
  const auto n = static_cast<double>(samples.size());
  hist_.add_total(n);
  dh.add_total(n);
  samples_ += samples.size();
}

void CampaignAccumulator::on_node_batch(
    std::span<const telemetry::NodeSample> samples) {
  for (const telemetry::NodeSample& sample : samples) {
    cpu_energy_j_ += sample.cpu_power_w * window_s_;
  }
  node_samples_ += samples.size();
}

void CampaignAccumulator::merge(const CampaignAccumulator& other) {
  EXAEFF_REQUIRE(window_s_ == other.window_s_,
                 "accumulators must share the telemetry window");
  hist_.merge(other.hist_);
  for (std::size_t d = 0; d < sched::kDomainCount; ++d) {
    domain_hist_[d].merge(other.domain_hist_[d]);
    for (std::size_t b = 0; b < sched::kSizeBinCount; ++b) {
      for (std::size_t r = 0; r < kRegionCount; ++r) {
        cells_[d][b].regions[r].gpu_hours +=
            other.cells_[d][b].regions[r].gpu_hours;
        cells_[d][b].regions[r].energy_j +=
            other.cells_[d][b].regions[r].energy_j;
      }
    }
  }
  samples_ += other.samples_;
  node_samples_ += other.node_samples_;
  cpu_energy_j_ += other.cpu_energy_j_;
}

CampaignAccumulator::Snapshot CampaignAccumulator::snapshot() const {
  Snapshot snap;
  snap.hist_weights.assign(hist_.weights().begin(), hist_.weights().end());
  snap.hist_total = hist_.total_weight();
  for (std::size_t d = 0; d < sched::kDomainCount; ++d) {
    snap.domain_weights[d].assign(domain_hist_[d].weights().begin(),
                                  domain_hist_[d].weights().end());
    snap.domain_totals[d] = domain_hist_[d].total_weight();
  }
  snap.cells.reserve(sched::kDomainCount * sched::kSizeBinCount *
                     kRegionCount * 2);
  for (std::size_t d = 0; d < sched::kDomainCount; ++d) {
    for (std::size_t b = 0; b < sched::kSizeBinCount; ++b) {
      for (std::size_t r = 0; r < kRegionCount; ++r) {
        snap.cells.push_back(cells_[d][b].regions[r].gpu_hours);
        snap.cells.push_back(cells_[d][b].regions[r].energy_j);
      }
    }
  }
  snap.gcd_samples = samples_;
  snap.node_samples = node_samples_;
  snap.cpu_energy_j = cpu_energy_j_;
  return snap;
}

void CampaignAccumulator::restore(const Snapshot& snap) {
  EXAEFF_REQUIRE(snap.cells.size() == sched::kDomainCount *
                                          sched::kSizeBinCount *
                                          kRegionCount * 2,
                 "accumulator snapshot has the wrong cell count");
  hist_.restore(snap.hist_weights, snap.hist_total);
  for (std::size_t d = 0; d < sched::kDomainCount; ++d) {
    domain_hist_[d].restore(snap.domain_weights[d], snap.domain_totals[d]);
  }
  std::size_t i = 0;
  for (std::size_t d = 0; d < sched::kDomainCount; ++d) {
    for (std::size_t b = 0; b < sched::kSizeBinCount; ++b) {
      for (std::size_t r = 0; r < kRegionCount; ++r) {
        cells_[d][b].regions[r].gpu_hours = snap.cells[i++];
        cells_[d][b].regions[r].energy_j = snap.cells[i++];
      }
    }
  }
  samples_ = snap.gcd_samples;
  node_samples_ = snap.node_samples;
  cpu_energy_j_ = snap.cpu_energy_j;
}

ModalDecomposition CampaignAccumulator::decomposition() const {
  std::array<std::array<bool, sched::kSizeBinCount>, sched::kDomainCount>
      all{};
  for (auto& row : all) row.fill(true);
  return decomposition_for(all);
}

ModalDecomposition CampaignAccumulator::decomposition_for(
    const std::array<std::array<bool, sched::kSizeBinCount>,
                     sched::kDomainCount>& mask) const {
  ModalDecomposition d;
  for (std::size_t dom = 0; dom < sched::kDomainCount; ++dom) {
    for (std::size_t b = 0; b < sched::kSizeBinCount; ++b) {
      if (!mask[dom][b]) continue;
      for (std::size_t r = 0; r < kRegionCount; ++r) {
        d.regions[r].gpu_hours += cells_[dom][b].regions[r].gpu_hours;
        d.regions[r].energy_j += cells_[dom][b].regions[r].energy_j;
      }
    }
  }
  for (const auto& r : d.regions) {
    d.total_gpu_hours += r.gpu_hours;
    d.total_energy_j += r.energy_j;
  }
  return d;
}

double CampaignAccumulator::total_gpu_energy_j() const {
  return decomposition().total_energy_j;
}

void AccumulatorShards::merge_shard(
    std::unique_ptr<sched::JobSampleSink> shard) {
  auto* acc = dynamic_cast<CampaignAccumulator*>(shard.get());
  EXAEFF_REQUIRE(acc != nullptr,
                 "AccumulatorShards: foreign shard passed to merge_shard");
  target_->merge(*acc);
}

}  // namespace exaeff::core
