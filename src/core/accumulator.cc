#include "core/accumulator.h"

#include <atomic>
#include <cstdint>

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#endif

#include "common/simd_env.h"

namespace exaeff::core {

namespace {
template <std::size_t N>
std::array<Histogram, N> make_histograms(double lo, double hi,
                                         std::size_t bins) {
  // Build via repeated copy of one prototype (Histogram has no default
  // constructor by design).
  return []<std::size_t... I>(std::index_sequence<I...>, double l, double h,
                              std::size_t b) {
    return std::array<Histogram, N>{((void)I, Histogram(l, h, b))...};
  }(std::make_index_sequence<N>{}, lo, hi, bins);
}

// --- SIMD histogram binning -------------------------------------------
//
// The batched ingest loop spends most of its time on the per-sample
// bin lookup (an FP divide) and the region classification (three
// compares).  Both are pure per-lane arithmetic with no loop-carried
// state, so blocks of samples precompute them in SIMD lanes; the
// floating-point *accumulations* (histogram counts, cell hours/energy)
// then run in the original per-sample order over the precomputed
// values, so batched ingest stays bit-identical to on_job_sample().
//
// Bit-identity of the precompute itself: the bin index is one IEEE
// subtract, one IEEE divide and a truncating convert — vdivpd and
// vcvttpd2qq round exactly like their scalar counterparts — with the
// same edge clamping as Histogram::bin_index; the region code is the
// same branchless sum-of-compares as RegionBoundaries::classify; the
// energy product is one IEEE multiply.  The generator never emits NaN
// power values, matching the scalar path's precondition.
//
// Dispatch follows common/rng_lanes: AVX-512F/DQ, then AVX2, then a
// portable kernel that is the scalar loop verbatim.

/// Loop-invariant parameters of one precompute call.
struct BinParams {
  double lo = 0.0;      ///< histogram lower edge
  double hi = 0.0;      ///< histogram upper edge
  double width = 0.0;   ///< histogram bin width
  double window = 0.0;  ///< telemetry window (energy weight), seconds
  double r1 = 0.0;      ///< region boundary 1 (latency_max_w)
  double r2 = 0.0;      ///< region boundary 2 (memory_max_w)
  double r3 = 0.0;      ///< region boundary 3 (compute_max_w)
  std::int64_t last = 0;  ///< bin_count() - 1
};

using BinLanesFn = void (*)(const double* p, std::size_t n,
                            const BinParams& bp, std::int64_t* bin,
                            std::int64_t* region, double* energy);

void bin_lanes_portable(const double* p, std::size_t n, const BinParams& bp,
                        std::int64_t* bin, std::int64_t* region,
                        double* energy) {
  for (std::size_t i = 0; i < n; ++i) {
    const double x = p[i];
    // Histogram::bin_index, verbatim.
    std::int64_t idx;
    if (x <= bp.lo) {
      idx = 0;
    } else if (x >= bp.hi) {
      idx = bp.last;
    } else {
      idx = std::min(
          static_cast<std::int64_t>((x - bp.lo) / bp.width), bp.last);
    }
    bin[i] = idx;
    // RegionBoundaries::classify, verbatim.
    region[i] = static_cast<std::int64_t>(x > bp.r1) +
                static_cast<std::int64_t>(x > bp.r2) +
                static_cast<std::int64_t>(x > bp.r3);
    energy[i] = x * bp.window;
  }
}

#if defined(__x86_64__) && defined(__GNUC__)

__attribute__((target("avx2"))) void bin_lanes_avx2(
    const double* p, std::size_t n, const BinParams& bp, std::int64_t* bin,
    std::int64_t* region, double* energy) {
  const __m256d vlo = _mm256_set1_pd(bp.lo);
  const __m256d vhi = _mm256_set1_pd(bp.hi);
  const __m256d vwidth = _mm256_set1_pd(bp.width);
  const __m256d vwin = _mm256_set1_pd(bp.window);
  const __m256d vr1 = _mm256_set1_pd(bp.r1);
  const __m256d vr2 = _mm256_set1_pd(bp.r2);
  const __m256d vr3 = _mm256_set1_pd(bp.r3);
  const __m256i vlast = _mm256_set1_epi64x(bp.last);
  const __m256i vzero = _mm256_setzero_si256();
  for (std::size_t i = 0; i < n; i += 4) {
    const __m256d x = _mm256_loadu_pd(p + i);
    const __m256d t = _mm256_div_pd(_mm256_sub_pd(x, vlo), vwidth);
    // Truncating convert, exactly the scalar cast.  AVX2 has no
    // pd->epi64, but in-range quotients fit i32 (edge lanes convert
    // garbage and are overwritten by the blends below).
    __m256i idx = _mm256_cvtepi32_epi64(_mm256_cvttpd_epi32(t));
    const __m256i over = _mm256_cmpgt_epi64(idx, vlast);
    idx = _mm256_blendv_epi8(idx, vlast, over);  // std::min(idx, last)
    const __m256d le_lo = _mm256_cmp_pd(x, vlo, _CMP_LE_OQ);
    const __m256d ge_hi = _mm256_cmp_pd(x, vhi, _CMP_GE_OQ);
    idx = _mm256_blendv_epi8(idx, vzero, _mm256_castpd_si256(le_lo));
    idx = _mm256_blendv_epi8(idx, vlast, _mm256_castpd_si256(ge_hi));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(bin + i), idx);
    // classify(): each true compare is an all-ones (-1) lane; the
    // region index is minus their sum.
    const __m256i m1 =
        _mm256_castpd_si256(_mm256_cmp_pd(x, vr1, _CMP_GT_OQ));
    const __m256i m2 =
        _mm256_castpd_si256(_mm256_cmp_pd(x, vr2, _CMP_GT_OQ));
    const __m256i m3 =
        _mm256_castpd_si256(_mm256_cmp_pd(x, vr3, _CMP_GT_OQ));
    const __m256i sum = _mm256_add_epi64(_mm256_add_epi64(m1, m2), m3);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(region + i),
                        _mm256_sub_epi64(vzero, sum));
    _mm256_storeu_pd(energy + i, _mm256_mul_pd(x, vwin));
  }
}

__attribute__((target("avx512f,avx512dq"))) void bin_lanes_avx512(
    const double* p, std::size_t n, const BinParams& bp, std::int64_t* bin,
    std::int64_t* region, double* energy) {
  const __m512d vlo = _mm512_set1_pd(bp.lo);
  const __m512d vhi = _mm512_set1_pd(bp.hi);
  const __m512d vwidth = _mm512_set1_pd(bp.width);
  const __m512d vwin = _mm512_set1_pd(bp.window);
  const __m512d vr1 = _mm512_set1_pd(bp.r1);
  const __m512d vr2 = _mm512_set1_pd(bp.r2);
  const __m512d vr3 = _mm512_set1_pd(bp.r3);
  const __m512i vlast = _mm512_set1_epi64(bp.last);
  const __m512i vzero = _mm512_setzero_si512();
  for (std::size_t i = 0; i < n; i += 8) {
    const __m512d x = _mm512_loadu_pd(p + i);
    const __m512d t = _mm512_div_pd(_mm512_sub_pd(x, vlo), vwidth);
    // vcvttpd2qq truncates toward zero exactly like the scalar cast;
    // out-of-range lanes saturate negative and the edge masks below
    // overwrite them.
    __m512i idx = _mm512_cvttpd_epi64(t);
    idx = _mm512_min_epi64(idx, vlast);
    const __mmask8 le_lo = _mm512_cmp_pd_mask(x, vlo, _CMP_LE_OQ);
    const __mmask8 ge_hi = _mm512_cmp_pd_mask(x, vhi, _CMP_GE_OQ);
    idx = _mm512_mask_mov_epi64(idx, le_lo, vzero);
    idx = _mm512_mask_mov_epi64(idx, ge_hi, vlast);
    _mm512_storeu_si512(bin + i, idx);
    const __m512i m1 =
        _mm512_movm_epi64(_mm512_cmp_pd_mask(x, vr1, _CMP_GT_OQ));
    const __m512i m2 =
        _mm512_movm_epi64(_mm512_cmp_pd_mask(x, vr2, _CMP_GT_OQ));
    const __m512i m3 =
        _mm512_movm_epi64(_mm512_cmp_pd_mask(x, vr3, _CMP_GT_OQ));
    const __m512i sum = _mm512_add_epi64(_mm512_add_epi64(m1, m2), m3);
    _mm512_storeu_si512(region + i, _mm512_sub_epi64(vzero, sum));
    _mm512_storeu_pd(energy + i, _mm512_mul_pd(x, vwin));
  }
}

#endif  // x86_64 && GNUC

BinLanesFn resolve_bin_lanes() {
#if defined(__x86_64__) && defined(__GNUC__)
  if (simd_enabled()) {
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512dq")) {
      return bin_lanes_avx512;
    }
    if (__builtin_cpu_supports("avx2")) return bin_lanes_avx2;
  }
#endif
  return bin_lanes_portable;
}

/// Resolved on first use (not static init) so EXAEFF_SIMD=0 set by the
/// test harness before the first batch is honored.
BinLanesFn bin_lanes() {
  static std::atomic<BinLanesFn> fn{nullptr};
  BinLanesFn f = fn.load(std::memory_order_relaxed);
  if (f == nullptr) {
    f = resolve_bin_lanes();
    fn.store(f, std::memory_order_relaxed);
  }
  return f;
}
}  // namespace

CampaignAccumulator::CampaignAccumulator(double window_s,
                                         RegionBoundaries boundaries,
                                         double hist_lo_w, double hist_hi_w,
                                         std::size_t hist_bins)
    : window_s_(window_s),
      hours_per_sample_(window_s / 3600.0),
      boundaries_(boundaries),
      hist_(hist_lo_w, hist_hi_w, hist_bins),
      domain_hist_(make_histograms<sched::kDomainCount>(hist_lo_w, hist_hi_w,
                                                        hist_bins)) {
  EXAEFF_REQUIRE(window_s > 0.0, "telemetry window must be positive");
}

void CampaignAccumulator::on_job_sample(const telemetry::GcdSample& sample,
                                        const sched::Job& job) {
  const double p = sample.power_w;
  const Region region = boundaries_.classify(p);
  const double energy = p * window_s_;

  // hist_ and domain_hist_ share one shape, so one bin lookup serves
  // both (same clamping as Histogram::add) — same sharing as the batch
  // path below.
  const std::size_t bin = hist_.bin_index_of(p);
  hist_.add_at(bin);
  domain_hist_[static_cast<std::size_t>(job.domain)].add_at(bin);

  auto& share = cells_[static_cast<std::size_t>(job.domain)]
                      [static_cast<std::size_t>(job.bin)]
                          .regions[static_cast<std::size_t>(region)];
  share.gpu_hours += hours_per_sample_;
  share.energy_j += energy;
  ++samples_;
}

void CampaignAccumulator::on_node_sample(const telemetry::NodeSample& sample) {
  cpu_energy_j_ += sample.cpu_power_w * window_s_;
  ++node_samples_;
}

void CampaignAccumulator::on_job_batch(
    std::span<const telemetry::GcdSample> samples, const sched::Job& job) {
  // Span-invariant lookups hoisted out of the loop; every floating-point
  // accumulation below adds the same values in the same per-sample order
  // as on_job_sample(), so batched ingest is bit-identical to it.
  Histogram& dh = domain_hist_[static_cast<std::size_t>(job.domain)];
  auto& row = cells_[static_cast<std::size_t>(job.domain)]
                    [static_cast<std::size_t>(job.bin)];
  const double hours = hours_per_sample_;
  const double window = window_s_;
  // SIMD blocks precompute bin index, region, and energy product per
  // lane (see the kernels above); the in-order consumption loop then
  // applies them sample by sample, so every accumulation adds the same
  // value in the same order as the scalar tail below.  hist_ and
  // domain_hist_ share one shape, so one bin lookup serves both (same
  // clamping as Histogram::add); totals are deferred to one add_total
  // per batch — exact for unit weights — so the loop carries no
  // serialized add into either histogram's total.
  BinParams bp;
  bp.lo = hist_.lo();
  bp.hi = hist_.hi();
  bp.width = hist_.bin_width();
  bp.window = window;
  bp.r1 = boundaries_.latency_max_w;
  bp.r2 = boundaries_.memory_max_w;
  bp.r3 = boundaries_.compute_max_w;
  bp.last = static_cast<std::int64_t>(hist_.bin_count()) - 1;
  // Block size trades stack footprint (4 lanes × 2 KB) against the cost
  // of the indirect kernel call: at 256 samples the call and the
  // gather/consume load-store traffic amortize over 32 AVX-512 (64
  // AVX2) iterations.
  constexpr std::size_t kBlock = 256;
  alignas(64) double p_lane[kBlock];
  alignas(64) std::int64_t bin_lane[kBlock];
  alignas(64) std::int64_t region_lane[kBlock];
  alignas(64) double energy_lane[kBlock];
  const BinLanesFn lanes = bin_lanes();
  std::size_t i = 0;
  for (; i + kBlock <= samples.size(); i += kBlock) {
    for (std::size_t j = 0; j < kBlock; ++j) {
      p_lane[j] = samples[i + j].power_w;
    }
    lanes(p_lane, kBlock, bp, bin_lane, region_lane, energy_lane);
    for (std::size_t j = 0; j < kBlock; ++j) {
      const auto bin = static_cast<std::size_t>(bin_lane[j]);
      hist_.count_at(bin);
      dh.count_at(bin);
      auto& share = row.regions[static_cast<std::size_t>(region_lane[j])];
      share.gpu_hours += hours;
      share.energy_j += energy_lane[j];
    }
  }
  for (; i < samples.size(); ++i) {
    const double p = samples[i].power_w;
    const Region region = boundaries_.classify(p);
    const std::size_t bin = hist_.bin_index_of(p);
    hist_.count_at(bin);
    dh.count_at(bin);
    auto& share = row.regions[static_cast<std::size_t>(region)];
    share.gpu_hours += hours;
    share.energy_j += p * window;
  }
  const auto n = static_cast<double>(samples.size());
  hist_.add_total(n);
  dh.add_total(n);
  samples_ += samples.size();
}

void CampaignAccumulator::on_node_batch(
    std::span<const telemetry::NodeSample> samples) {
  for (const telemetry::NodeSample& sample : samples) {
    cpu_energy_j_ += sample.cpu_power_w * window_s_;
  }
  node_samples_ += samples.size();
}

void CampaignAccumulator::merge(const CampaignAccumulator& other) {
  EXAEFF_REQUIRE(window_s_ == other.window_s_,
                 "accumulators must share the telemetry window");
  hist_.merge(other.hist_);
  for (std::size_t d = 0; d < sched::kDomainCount; ++d) {
    domain_hist_[d].merge(other.domain_hist_[d]);
    for (std::size_t b = 0; b < sched::kSizeBinCount; ++b) {
      for (std::size_t r = 0; r < kRegionCount; ++r) {
        cells_[d][b].regions[r].gpu_hours +=
            other.cells_[d][b].regions[r].gpu_hours;
        cells_[d][b].regions[r].energy_j +=
            other.cells_[d][b].regions[r].energy_j;
      }
    }
  }
  samples_ += other.samples_;
  node_samples_ += other.node_samples_;
  cpu_energy_j_ += other.cpu_energy_j_;
}

CampaignAccumulator::Snapshot CampaignAccumulator::snapshot() const {
  Snapshot snap;
  snap.hist_weights.assign(hist_.weights().begin(), hist_.weights().end());
  snap.hist_total = hist_.total_weight();
  for (std::size_t d = 0; d < sched::kDomainCount; ++d) {
    snap.domain_weights[d].assign(domain_hist_[d].weights().begin(),
                                  domain_hist_[d].weights().end());
    snap.domain_totals[d] = domain_hist_[d].total_weight();
  }
  snap.cells.reserve(sched::kDomainCount * sched::kSizeBinCount *
                     kRegionCount * 2);
  for (std::size_t d = 0; d < sched::kDomainCount; ++d) {
    for (std::size_t b = 0; b < sched::kSizeBinCount; ++b) {
      for (std::size_t r = 0; r < kRegionCount; ++r) {
        snap.cells.push_back(cells_[d][b].regions[r].gpu_hours);
        snap.cells.push_back(cells_[d][b].regions[r].energy_j);
      }
    }
  }
  snap.gcd_samples = samples_;
  snap.node_samples = node_samples_;
  snap.cpu_energy_j = cpu_energy_j_;
  return snap;
}

void CampaignAccumulator::restore(const Snapshot& snap) {
  EXAEFF_REQUIRE(snap.cells.size() == sched::kDomainCount *
                                          sched::kSizeBinCount *
                                          kRegionCount * 2,
                 "accumulator snapshot has the wrong cell count");
  hist_.restore(snap.hist_weights, snap.hist_total);
  for (std::size_t d = 0; d < sched::kDomainCount; ++d) {
    domain_hist_[d].restore(snap.domain_weights[d], snap.domain_totals[d]);
  }
  std::size_t i = 0;
  for (std::size_t d = 0; d < sched::kDomainCount; ++d) {
    for (std::size_t b = 0; b < sched::kSizeBinCount; ++b) {
      for (std::size_t r = 0; r < kRegionCount; ++r) {
        cells_[d][b].regions[r].gpu_hours = snap.cells[i++];
        cells_[d][b].regions[r].energy_j = snap.cells[i++];
      }
    }
  }
  samples_ = snap.gcd_samples;
  node_samples_ = snap.node_samples;
  cpu_energy_j_ = snap.cpu_energy_j;
}

ModalDecomposition CampaignAccumulator::decomposition() const {
  std::array<std::array<bool, sched::kSizeBinCount>, sched::kDomainCount>
      all{};
  for (auto& row : all) row.fill(true);
  return decomposition_for(all);
}

ModalDecomposition CampaignAccumulator::decomposition_for(
    const std::array<std::array<bool, sched::kSizeBinCount>,
                     sched::kDomainCount>& mask) const {
  // Eight independent accumulators — (4 regions) x (hours, energy) —
  // instead of read-modify-write through the result struct: each one
  // still adds its cell values in the same (domain, bin) order as the
  // nested scalar loop did, so every sum is bit-identical, while the
  // independence lets the fold run in SIMD lanes (a CellAccum is eight
  // contiguous doubles).
  double h0 = 0.0, h1 = 0.0, h2 = 0.0, h3 = 0.0;
  double e0 = 0.0, e1 = 0.0, e2 = 0.0, e3 = 0.0;
  for (std::size_t dom = 0; dom < sched::kDomainCount; ++dom) {
    for (std::size_t b = 0; b < sched::kSizeBinCount; ++b) {
      if (!mask[dom][b]) continue;
      const auto& rg = cells_[dom][b].regions;
      h0 += rg[0].gpu_hours;
      e0 += rg[0].energy_j;
      h1 += rg[1].gpu_hours;
      e1 += rg[1].energy_j;
      h2 += rg[2].gpu_hours;
      e2 += rg[2].energy_j;
      h3 += rg[3].gpu_hours;
      e3 += rg[3].energy_j;
    }
  }
  static_assert(kRegionCount == 4, "region fold is unrolled over 4 regions");
  ModalDecomposition d;
  d.regions[0] = RegionShare{h0, e0};
  d.regions[1] = RegionShare{h1, e1};
  d.regions[2] = RegionShare{h2, e2};
  d.regions[3] = RegionShare{h3, e3};
  for (const auto& r : d.regions) {
    d.total_gpu_hours += r.gpu_hours;
    d.total_energy_j += r.energy_j;
  }
  return d;
}

ModalDecomposition CampaignAccumulator::cell_decomposition(
    sched::ScienceDomain dom, sched::SizeBin b) const {
  ModalDecomposition d;
  d.regions = cell(dom, b).regions;
  for (const auto& r : d.regions) {
    d.total_gpu_hours += r.gpu_hours;
    d.total_energy_j += r.energy_j;
  }
  return d;
}

double CampaignAccumulator::total_gpu_energy_j() const {
  return decomposition().total_energy_j;
}

void AccumulatorShards::merge_shard(
    std::unique_ptr<sched::JobSampleSink> shard) {
  auto* acc = dynamic_cast<CampaignAccumulator*>(shard.get());
  EXAEFF_REQUIRE(acc != nullptr,
                 "AccumulatorShards: foreign shard passed to merge_shard");
  target_->merge(*acc);
}

}  // namespace exaeff::core
