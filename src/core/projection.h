// exaeff/core/projection.h
//
// The energy-savings projection engine — the paper's headline method
// (§V-C, Tables V and VI).  Given a campaign's modal decomposition and
// the benchmark cap-response table, project what a system-wide (or
// selective) cap would have saved:
//
//   saved(region, cap) = E_region * (1 - energy_pct(bench(region), cap))
//   bench(C.I.) = VAI,  bench(M.I.) = MB
//   total saved  = saved(C.I.) + saved(M.I.)       [regions 1 & 4 excluded:
//                                                   no observed savings /
//                                                   not characterized]
//   savings %    = total saved / E_total
//   dT %         = sum_region E_region/E_total * (runtime_pct - 100)
//   savings % at dT=0 = saved(M.I.) / E_total      [MB runtime is flat]
//
// This is an *upper bound*: it assumes every sample in a savings region
// responds like the benchmark that defines the region.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/characterization.h"
#include "core/modal.h"

namespace exaeff::core {

/// Dispatch tiers of the batch projection kernel.  Resolution follows
/// common/rng_lanes: the widest supported tier wins, `EXAEFF_SIMD=0`
/// (or common::set_simd_enabled(false)) forces kPortable, and tests pin
/// a tier explicitly to cross-check bit-identity between them.
enum class ProjectionSimdTier { kPortable = 0, kAvx2 = 1, kAvx512 = 2 };

/// True when this host can run `tier` (kPortable always can).
[[nodiscard]] bool projection_tier_supported(ProjectionSimdTier tier);

/// The tier the batch kernel currently dispatches to.
[[nodiscard]] ProjectionSimdTier active_projection_tier();

/// Test hook: pin the batch kernel to one tier; throws when the host
/// does not support it.
void force_projection_tier(ProjectionSimdTier tier);

/// Test hook: return to automatic resolution (environment honored).
void reset_projection_tier();

/// Data-quality summary attached to a projection's input telemetry.
/// Defaults describe a perfect (clean, complete) stream so existing
/// callers are unaffected.
struct DataQuality {
  double coverage = 1.0;       ///< fraction of expected records observed
  double imputed_share = 0.0;  ///< fraction of analyzed records synthesized

  [[nodiscard]] bool perfect() const {
    return coverage >= 1.0 && imputed_share <= 0.0;
  }
};

/// Floor below which projections must refuse to report numbers: a savings
/// estimate extrapolated from a sliver of the fleet is misinformation,
/// not an upper bound.
struct QualityPolicy {
  double min_coverage = 0.5;       ///< refuse below this coverage
  double max_imputed_share = 0.25; ///< refuse above this imputed share
};

/// Throws DataQualityError naming the failing dimension when `q` is below
/// the policy floor.  No-op for data that meets the floor.
void require_quality(const DataQuality& q, const QualityPolicy& policy);

/// One row of Table V / Table VI.
struct ProjectionRow {
  CapType cap_type = CapType::kFrequency;
  double setting = 0.0;            ///< MHz or watts
  double ci_saved_mwh = 0.0;       ///< compute-intensive region savings
  double mi_saved_mwh = 0.0;       ///< memory-intensive region savings
  double total_saved_mwh = 0.0;    ///< TS column
  double savings_pct = 0.0;        ///< TS / total energy
  double delta_t_pct = 0.0;        ///< energy-weighted runtime increase
  double savings_pct_no_slowdown = 0.0;  ///< MI-only (dT = 0) column
};

/// Projects savings from region occupancies and benchmark responses.
class ProjectionEngine {
 public:
  explicit ProjectionEngine(const CapResponseTable& table) : table_(table) {}

  /// Projection for one cap setting over a decomposition.
  [[nodiscard]] ProjectionRow project(const ModalDecomposition& decomp,
                                      CapType type, double setting) const;

  /// Projection rows for a whole sweep (every setting in the table except
  /// the uncapped baseline).
  [[nodiscard]] std::vector<ProjectionRow> project_sweep(
      const ModalDecomposition& decomp, CapType type) const;

  /// Number of rows project_sweep(·, type) produces.
  [[nodiscard]] std::size_t sweep_size(CapType type) const {
    return table_.sweep_plan(type).size();
  }

  /// The whole sweep into caller storage (out.size() must equal
  /// sweep_size(type)): per-decomposition invariants are hoisted once
  /// and all points run through the batch lanes.  Rows are bit-identical
  /// to project_sweep()'s, with no intermediate allocation.
  void project_sweep_into(const ModalDecomposition& decomp, CapType type,
                          std::span<ProjectionRow> out) const;

  /// Batch projection of arbitrary pre-resolved sweep points: row k
  /// reports settings[k] and reads the CI/MI responses at table row
  /// ci_rows[k] / mi_rows[k] (see CapResponseTable::index_of).  All four
  /// spans must share one size; indices must not be kNoRow.  Each row is
  /// bit-identical to project(decomp, type, settings[k]) resolved to the
  /// same table rows.
  void project_rows_into(const ModalDecomposition& decomp, CapType type,
                         std::span<const double> settings,
                         std::span<const std::uint32_t> ci_rows,
                         std::span<const std::uint32_t> mi_rows,
                         std::span<ProjectionRow> out) const;

  /// The setting (among the swept ones) with the highest savings at zero
  /// slowdown — the paper's "best case" operating point.  Runs the batch
  /// kernel blockwise and folds the argmax in place (no row vector).
  [[nodiscard]] ProjectionRow best_no_slowdown(
      const ModalDecomposition& decomp, CapType type) const;

  [[nodiscard]] const CapResponseTable& table() const { return table_; }

 private:
  const CapResponseTable& table_;
};

}  // namespace exaeff::core
