#include "core/domain_analysis.h"

#include <algorithm>

#include "common/units.h"

namespace exaeff::core {

double HeatmapData::max_value() const {
  double m = 0.0;
  for (double v : values) m = std::max(m, v);
  return m;
}

namespace {
HeatmapData empty_heatmap() {
  HeatmapData h;
  for (auto d : sched::all_domains()) {
    h.row_labels.emplace_back(sched::domain_code(d));
  }
  for (auto b : sched::all_size_bins()) {
    h.col_labels.emplace_back(sched::bin_name(b));
  }
  h.values.assign(h.row_labels.size() * h.col_labels.size(), 0.0);
  return h;
}
}  // namespace

HeatmapData DomainAnalyzer::energy_heatmap() const {
  HeatmapData h = empty_heatmap();
  std::size_t i = 0;
  for (auto d : sched::all_domains()) {
    for (auto b : sched::all_size_bins()) {
      h.values[i++] = units::joules_to_mwh(acc_.cell(d, b).energy_j());
    }
  }
  return h;
}

HeatmapData DomainAnalyzer::savings_heatmap(CapType type,
                                            double setting) const {
  HeatmapData h = empty_heatmap();
  std::size_t i = 0;
  for (auto d : sched::all_domains()) {
    for (auto b : sched::all_size_bins()) {
      // Per-cell projection: treat the cell as its own mini-campaign.
      const ProjectionRow row =
          engine_.project(acc_.cell_decomposition(d, b), type, setting);
      h.values[i++] = row.total_saved_mwh;
    }
  }
  return h;
}

std::vector<sched::ScienceDomain> DomainAnalyzer::high_yield_domains(
    CapType type, double setting, double fraction_of_max) const {
  const HeatmapData h = savings_heatmap(type, setting);
  const double threshold = fraction_of_max * h.max_value();
  std::vector<sched::ScienceDomain> selected;
  const auto domains = sched::all_domains();
  for (std::size_t row = 0; row < domains.size(); ++row) {
    for (std::size_t col = 0; col < h.col_labels.size(); ++col) {
      if (h.at(row, col) >= threshold && h.at(row, col) > 0.0) {
        selected.push_back(domains[row]);
        break;
      }
    }
  }
  return selected;
}

std::array<std::array<bool, sched::kSizeBinCount>, sched::kDomainCount>
DomainAnalyzer::selection_mask(std::span<const sched::ScienceDomain> domains,
                               std::span<const sched::SizeBin> bins) {
  std::array<std::array<bool, sched::kSizeBinCount>, sched::kDomainCount>
      mask{};
  for (auto d : domains) {
    for (auto b : bins) {
      mask[static_cast<std::size_t>(d)][static_cast<std::size_t>(b)] = true;
    }
  }
  return mask;
}

}  // namespace exaeff::core
