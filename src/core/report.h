// exaeff/core/report.h
//
// One-call campaign report: renders the full analysis of a campaign —
// dataset summary, benchmark characterization, modal decomposition,
// system-wide and selective projections, domain/size heatmaps — into a
// single text document.  This is the artifact an operations team would
// circulate; the examples write it to disk.
#pragma once

#include <string>

#include "core/accumulator.h"
#include "core/characterization.h"
#include "core/projection.h"

namespace exaeff::core {

/// Report inputs.
struct ReportInputs {
  const CampaignAccumulator* accumulator = nullptr;
  const CapResponseTable* table = nullptr;
  std::string campaign_label = "campaign";

  /// Cap setting highlighted in the heatmap/selective sections (MHz).
  double focus_cap_mhz = 1100.0;
  /// Threshold for the "high-yield domain" selection.
  double high_yield_fraction = 0.35;

  /// Data quality of the telemetry behind `accumulator`.  When imperfect,
  /// the dataset section and the projection tables carry explicit
  /// coverage / imputed-share columns so degraded numbers can never be
  /// mistaken for clean ones; with the default (perfect) quality the
  /// report is byte-identical to the pre-robustness format.
  DataQuality quality{};
  /// Floor enforced before rendering; render_campaign_report throws
  /// DataQualityError when `quality` is below it.
  QualityPolicy quality_policy{};
};

/// Renders the full report.  Throws ConfigError when inputs are missing.
[[nodiscard]] std::string render_campaign_report(const ReportInputs& inputs);

}  // namespace exaeff::core
