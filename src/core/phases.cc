#include "core/phases.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace exaeff::core {

std::vector<PhaseSegment> detect_phases(std::span<const float> powers,
                                        const RegionBoundaries& boundaries,
                                        const PhaseDetectorOptions& options) {
  EXAEFF_REQUIRE(options.window >= 1, "detector window must be >= 1");
  EXAEFF_REQUIRE(options.threshold_w > 0.0,
                 "detector threshold must be positive");
  EXAEFF_REQUIRE(options.min_phase >= 1, "minimum phase must be >= 1");

  std::vector<PhaseSegment> segments;
  if (powers.empty()) return segments;

  const std::size_t w = options.window;
  // Candidate change points: |mean(right window) - mean(left window)|
  // exceeds the threshold.  Evaluated at every interior index.
  std::vector<std::size_t> cuts;
  if (powers.size() > 2 * w) {
    // Window-mean difference at every interior position.
    const std::size_t positions = powers.size() - 2 * w + 1;
    std::vector<double> diff(positions);
    double left = 0.0;
    double right = 0.0;
    for (std::size_t i = 0; i < w; ++i) {
      left += powers[i];
      right += powers[w + i];
    }
    for (std::size_t k = 0;; ++k) {
      diff[k] = std::abs(right - left) / static_cast<double>(w);
      if (k + 1 >= positions) break;
      left += powers[w + k] - powers[k];
      right += powers[2 * w + k] - powers[w + k];
    }

    // One cut per excursion above the threshold, placed at the local
    // maximum of the difference (the sharpest point of the transition);
    // then both windows must clear the transition before re-arming.
    std::size_t last_cut = 0;
    for (std::size_t k = 0; k < positions;) {
      if (diff[k] <= options.threshold_w) {
        ++k;
        continue;
      }
      std::size_t peak = k;
      while (k < positions && diff[k] > options.threshold_w) {
        if (diff[k] > diff[peak]) peak = k;
        ++k;
      }
      const std::size_t cut = peak + w;  // transition center
      if (cut - last_cut >= options.min_phase &&
          powers.size() - cut >= options.min_phase) {
        cuts.push_back(cut);
        last_cut = cut;
      }
    }
  }
  cuts.push_back(powers.size());

  // Build segments between consecutive cuts and summarize each.
  std::size_t begin = 0;
  for (std::size_t cut : cuts) {
    if (cut <= begin) continue;
    PhaseSegment seg;
    seg.begin = begin;
    seg.end = cut;
    double sum = 0.0;
    for (std::size_t i = begin; i < cut; ++i) sum += powers[i];
    seg.mean_power_w = sum / static_cast<double>(cut - begin);
    double var = 0.0;
    for (std::size_t i = begin; i < cut; ++i) {
      const double d = powers[i] - seg.mean_power_w;
      var += d * d;
    }
    seg.stddev_w = std::sqrt(var / static_cast<double>(cut - begin));
    seg.region = boundaries.classify(seg.mean_power_w);
    segments.push_back(seg);
    begin = cut;
  }

  // Merge runt segments into their taller neighbour.
  for (std::size_t i = 0; i < segments.size();) {
    if (segments[i].length() >= options.min_phase ||
        segments.size() == 1) {
      ++i;
      continue;
    }
    const std::size_t into = i == 0 ? 1 : i - 1;
    auto& dst = segments[into];
    auto& src = segments[i];
    const double total =
        static_cast<double>(dst.length() + src.length());
    dst.mean_power_w =
        (dst.mean_power_w * dst.length() + src.mean_power_w * src.length()) /
        total;
    dst.begin = std::min(dst.begin, src.begin);
    dst.end = std::max(dst.end, src.end);
    dst.region = boundaries.classify(dst.mean_power_w);
    segments.erase(segments.begin() + static_cast<long>(i));
    if (i > 0) --i;
  }
  return segments;
}

bool PhaseProfile::single_moded(double fraction) const {
  for (double share : region_record_share) {
    if (share >= fraction) return true;
  }
  return false;
}

PhaseProfile summarize_phases(std::span<const PhaseSegment> phases,
                              std::size_t total_records) {
  PhaseProfile profile;
  profile.phase_count = phases.size();
  if (phases.empty() || total_records == 0) return profile;

  double length_sum = 0.0;
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const auto& p = phases[i];
    profile.region_record_share[static_cast<std::size_t>(p.region)] +=
        static_cast<double>(p.length()) /
        static_cast<double>(total_records);
    length_sum += static_cast<double>(p.length());
    if (i > 0 && phases[i].region != phases[i - 1].region) {
      ++profile.transitions;
    }
  }
  profile.mean_phase_length =
      length_sum / static_cast<double>(phases.size());
  return profile;
}

}  // namespace exaeff::core
