// exaeff/core/domain_analysis.h
//
// Domain x job-size analysis (paper Fig 10 and Table VI): heatmaps of
// energy used and energy saved per (science domain, size bin) cell, and
// the selection of high-yield domains — the paper restricts Table VI to
// domains with at least one strongly-saving ("red") cell and to job sizes
// A, B and C.
#pragma once

#include <array>
#include <vector>

#include "core/accumulator.h"
#include "core/projection.h"

namespace exaeff::core {

/// A domain x size-bin matrix of values (row-major, domains x bins).
struct HeatmapData {
  std::vector<std::string> row_labels;  ///< domain codes
  std::vector<std::string> col_labels;  ///< bin names A..E
  std::vector<double> values;           ///< MWh, row-major

  [[nodiscard]] double at(std::size_t row, std::size_t col) const {
    return values[row * col_labels.size() + col];
  }
  [[nodiscard]] double max_value() const;
};

/// Analysis over a finished campaign accumulator.
class DomainAnalyzer {
 public:
  /// Both referents must outlive the analyzer.
  DomainAnalyzer(const CampaignAccumulator& acc,
                 const ProjectionEngine& engine)
      : acc_(acc), engine_(engine) {}

  /// Fig 10(a): total GPU energy (MWh) per (domain, size bin).
  [[nodiscard]] HeatmapData energy_heatmap() const;

  /// Fig 10(b): projected savings (MWh) per cell for one cap setting.
  [[nodiscard]] HeatmapData savings_heatmap(CapType type,
                                            double setting) const;

  /// Domains with at least one cell whose projected savings reach
  /// `fraction_of_max` of the heatmap maximum (the paper's "red" cells).
  [[nodiscard]] std::vector<sched::ScienceDomain> high_yield_domains(
      CapType type, double setting, double fraction_of_max = 0.5) const;

  /// Selection mask for Table VI: the given domains restricted to the
  /// given size bins.
  [[nodiscard]] static std::array<
      std::array<bool, sched::kSizeBinCount>, sched::kDomainCount>
  selection_mask(std::span<const sched::ScienceDomain> domains,
                 std::span<const sched::SizeBin> bins);

 private:
  const CampaignAccumulator& acc_;
  const ProjectionEngine& engine_;
};

}  // namespace exaeff::core
