// exaeff/graph/generators.h
//
// Synthetic graph generators replacing the SNAP datasets (paper §III-B-c
// used networks of 3 K - 8 M edges with d_max 9..343 and d_avg 2..23):
//
//   * rmat()      — Kronecker/R-MAT power-law graphs, the stand-in for
//                   social networks (heavy-tailed degree distribution).
//   * road_grid() — perturbed 2-D lattice with bounded degree (d_max <= 9,
//                   d_avg ~ 2-4), the stand-in for road networks.
//
// Both are deterministic from the Rng and control d_max/d_avg directly,
// which is all the Fig 7 experiment depends on.
#pragma once

#include "common/rng.h"
#include "graph/csr.h"

namespace exaeff::graph {

/// R-MAT generator parameters.
struct RmatParams {
  int scale = 14;             ///< 2^scale vertices
  double edge_factor = 8.0;   ///< edges per vertex
  double a = 0.57;            ///< Kronecker quadrant probabilities
  double b = 0.19;
  double c = 0.19;            ///< (d = 1 - a - b - c)
};

/// Power-law ("social") graph via R-MAT.
[[nodiscard]] CsrGraph rmat(const RmatParams& params, Rng& rng);

/// Bounded-degree ("road") graph: width x height lattice where each node
/// connects to its grid neighbors, with a small fraction of random local
/// shortcuts.  d_max stays <= 9.
[[nodiscard]] CsrGraph road_grid(std::size_t width, std::size_t height,
                                 double shortcut_prob, Rng& rng);

/// A ready-made suite of test networks spanning the paper's edge-count
/// range, labeled by kind and approximate edge count.
struct NamedGraph {
  std::string name;
  bool power_law = false;
  CsrGraph graph;
};

[[nodiscard]] std::vector<NamedGraph> paper_network_suite(Rng& rng);

}  // namespace exaeff::graph
