#include "graph/gpu_mapping.h"

#include <algorithm>
#include <cmath>

namespace exaeff::graph {

gpusim::KernelDesc map_louvain_run(const gpusim::DeviceSpec& spec,
                                   const CsrGraph& g,
                                   const LouvainResult& run,
                                   const MappingParams& params) {
  const DegreeStats ds = g.degree_stats();
  const double scans = static_cast<double>(run.total_edge_scans());

  gpusim::KernelDesc k;
  k.name = "louvain";
  // Irregular gathers at massive occupancy largely hide the engine clock
  // on the bandwidth side.
  k.issue_boundedness = 0.12;

  // Traffic: every scan touches CSR arrays and the community array; the
  // community lookups are random 4-byte reads that drag whole cache
  // lines, and a fraction misses L2 out to HBM.
  const double l2_traffic =
      scans * params.bytes_per_scan * params.l2_amplification;
  const double hbm_traffic =
      scans * params.bytes_per_scan * params.hbm_miss_fraction;
  k.l2_bytes = std::max(l2_traffic, 1.0);
  k.hbm_bytes = std::max(hbm_traffic, 1.0);
  k.flops = std::max(scans * params.flops_per_scan, 1.0);

  // Imbalance: the implementation assigns a wavefront (or thread group)
  // to high-degree vertices and a single thread to low-degree ones
  // (paper §IV-C).  Low-average-degree graphs therefore execute with
  // mostly-idle lanes (1/lane_utilization) *and* walk each adjacency as
  // a dependent serial chain (chain_cycles per neighbor) — both inflate
  // compute time, and both follow the engine clock, which is exactly why
  // road networks are the frequency-sensitive ones in Fig 7.
  const double lane_utilization = std::clamp(ds.d_avg / 16.0, 0.10, 1.0);
  const double chain_penalty =
      1.0 + params.chain_cycles * (1.0 - lane_utilization);
  k.divergence = chain_penalty / lane_utilization;

  // Latency: kernel launches and host bookkeeping between passes.  These
  // are mostly host/PCIe-side, nearly independent of the GPU clock.
  double latency = 0.0;
  for (const auto& p : run.passes) {
    latency += params.launch_latency_s * params.launches_per_iteration *
               static_cast<double>(p.iterations);
    latency += params.host_overhead_per_vertex_s *
               static_cast<double>(p.vertices);
  }
  k.latency_s = latency;
  k.latency_exp = 0.25;
  k.latency_power_fraction = 0.10;
  k.validate();
  return k;
}

}  // namespace exaeff::graph
