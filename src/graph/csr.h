// exaeff/graph/csr.h
//
// Compressed Sparse Row graph container used by the Louvain case study
// (paper §III-B-c: "input graphs are processed in a Compressed Sparse Row
// (CSR) format, for more regular memory access").  Graphs are undirected
// and weighted; each undirected edge is stored in both directions.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/error.h"

namespace exaeff::graph {

using VertexId = std::int32_t;

/// One endpoint record in an edge list.
struct Edge {
  VertexId u = 0;
  VertexId v = 0;
  double w = 1.0;
};

/// Degree summary of a graph (the d_max / d_avg the paper reports).
struct DegreeStats {
  std::size_t d_max = 0;
  double d_avg = 0.0;
  double d_stddev = 0.0;
  /// Coefficient of variation of the degree distribution; the GPU
  /// execution mapper uses it as the imbalance signal.
  [[nodiscard]] double cv() const {
    return d_avg > 0.0 ? d_stddev / d_avg : 0.0;
  }
};

/// Immutable undirected weighted graph in CSR form.
class CsrGraph {
 public:
  CsrGraph() = default;

  /// Builds from an edge list: self-loops dropped, duplicates merged
  /// (weights summed), both directions stored.
  static CsrGraph from_edges(std::size_t num_vertices,
                             std::span<const Edge> edges);

  [[nodiscard]] std::size_t num_vertices() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  /// Number of undirected edges.
  [[nodiscard]] std::size_t num_edges() const { return neighbors_.size() / 2; }

  /// Neighbors of v (each undirected edge appears once per endpoint).
  [[nodiscard]] std::span<const VertexId> neighbors(VertexId v) const {
    return {neighbors_.data() + offsets_[static_cast<std::size_t>(v)],
            neighbors_.data() + offsets_[static_cast<std::size_t>(v) + 1]};
  }
  [[nodiscard]] std::span<const double> weights(VertexId v) const {
    return {weights_.data() + offsets_[static_cast<std::size_t>(v)],
            weights_.data() + offsets_[static_cast<std::size_t>(v) + 1]};
  }
  [[nodiscard]] std::size_t degree(VertexId v) const {
    return static_cast<std::size_t>(
        offsets_[static_cast<std::size_t>(v) + 1] -
        offsets_[static_cast<std::size_t>(v)]);
  }

  /// Sum of weights incident to v (weighted degree).
  [[nodiscard]] double weighted_degree(VertexId v) const;

  /// Total edge weight of the graph, counting each undirected edge once.
  [[nodiscard]] double total_weight() const { return total_weight_; }

  [[nodiscard]] DegreeStats degree_stats() const;

  /// Raw arrays (for traffic estimation by the GPU mapper).
  [[nodiscard]] std::span<const std::int64_t> offsets() const {
    return offsets_;
  }
  [[nodiscard]] std::span<const VertexId> neighbor_array() const {
    return neighbors_;
  }

 private:
  std::vector<std::int64_t> offsets_;
  std::vector<VertexId> neighbors_;
  std::vector<double> weights_;
  double total_weight_ = 0.0;
};

}  // namespace exaeff::graph
