#include "graph/louvain.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

namespace exaeff::graph {

std::size_t LouvainResult::num_communities() const {
  std::unordered_set<VertexId> distinct(community.begin(), community.end());
  return distinct.size();
}

std::size_t LouvainResult::total_edge_scans() const {
  std::size_t total = 0;
  for (const auto& p : passes) total += p.edge_scans;
  return total;
}

double modularity(const CsrGraph& g, std::span<const VertexId> community) {
  EXAEFF_REQUIRE(community.size() == g.num_vertices(),
                 "community assignment must cover every vertex");
  const double m2 = 2.0 * g.total_weight();
  if (m2 <= 0.0) return 0.0;

  // Q = sum_c [ in_c / 2m - (tot_c / 2m)^2 ]
  std::unordered_map<VertexId, double> internal;  // 2 * intra-community w
  std::unordered_map<VertexId, double> total;     // sum of degrees
  for (std::size_t vi = 0; vi < g.num_vertices(); ++vi) {
    const auto v = static_cast<VertexId>(vi);
    const VertexId cv = community[vi];
    total[cv] += g.weighted_degree(v);
    const auto nbrs = g.neighbors(v);
    const auto ws = g.weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (community[static_cast<std::size_t>(nbrs[i])] == cv) {
        internal[cv] += ws[i];
      }
    }
  }
  double q = 0.0;
  for (const auto& [c, tot] : total) {
    const double in_c = internal.count(c) ? internal.at(c) : 0.0;
    q += in_c / m2 - (tot / m2) * (tot / m2);
  }
  return q;
}

namespace {

/// One aggregation level: local greedy moves on `g`, writing the level's
/// community assignment into `community` and work counters into `stats`.
void local_move_pass(const CsrGraph& g, const LouvainParams& params,
                     Rng& rng, std::vector<VertexId>& community,
                     PassStats& stats) {
  const std::size_t n = g.num_vertices();
  const double m2 = 2.0 * g.total_weight();

  community.resize(n);
  std::iota(community.begin(), community.end(), VertexId{0});

  std::vector<double> k(n);       // weighted degree of each vertex
  std::vector<double> sigma(n);   // total degree of each community
  for (std::size_t v = 0; v < n; ++v) {
    k[v] = g.weighted_degree(static_cast<VertexId>(v));
    sigma[v] = k[v];
  }

  // Randomized visiting order decorrelates move sequences across levels.
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), VertexId{0});
  for (std::size_t i = n; i > 1; --i) {
    std::swap(order[i - 1], order[rng.uniform_index(i)]);
  }

  // Scratch: weight of edges from the current vertex to each community.
  std::unordered_map<VertexId, double> links;
  links.reserve(64);

  for (int it = 0; it < params.max_iterations; ++it) {
    std::size_t moves = 0;
    double gain_total = 0.0;
    for (const VertexId v : order) {
      const auto vi = static_cast<std::size_t>(v);
      const VertexId c_old = community[vi];
      const auto nbrs = g.neighbors(v);
      const auto ws = g.weights(v);
      stats.edge_scans += nbrs.size();

      links.clear();
      links[c_old] = 0.0;  // allow staying put at zero link weight
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const VertexId c = community[static_cast<std::size_t>(nbrs[i])];
        if (nbrs[i] != v) links[c] += ws[i];
      }

      // Remove v from its community for the gain comparison.
      sigma[static_cast<std::size_t>(c_old)] -= k[vi];
      const double link_old = links.at(c_old);

      VertexId c_best = c_old;
      double best_gain = 0.0;
      for (const auto& [c, link_w] : links) {
        if (c == c_old) continue;
        // dQ(move to c) - dQ(stay) up to a constant factor 1/m:
        const double gain =
            (link_w - link_old) -
            k[vi] * (sigma[static_cast<std::size_t>(c)] -
                     sigma[static_cast<std::size_t>(c_old)]) /
                m2;
        if (gain > best_gain + params.min_gain) {
          best_gain = gain;
          c_best = c;
        }
      }
      sigma[static_cast<std::size_t>(c_best)] += k[vi];
      if (c_best != c_old) {
        community[vi] = c_best;
        ++moves;
        gain_total += best_gain;
      }
    }
    ++stats.iterations;
    stats.moves += moves;
    if (moves == 0 || gain_total < params.min_gain) break;
  }
}

/// Builds the aggregated graph where each community becomes a vertex.
/// `renumber` maps old community ids to dense new vertex ids.
CsrGraph aggregate(const CsrGraph& g, std::vector<VertexId>& community,
                   std::vector<VertexId>& renumber) {
  const std::size_t n = g.num_vertices();
  renumber.assign(n, -1);
  VertexId next = 0;
  for (std::size_t v = 0; v < n; ++v) {
    auto& slot = renumber[static_cast<std::size_t>(community[v])];
    if (slot < 0) slot = next++;
  }
  for (std::size_t v = 0; v < n; ++v) {
    community[v] = renumber[static_cast<std::size_t>(community[v])];
  }

  std::vector<Edge> edges;
  edges.reserve(g.num_edges());
  std::vector<double> self_loop(static_cast<std::size_t>(next), 0.0);
  for (std::size_t vi = 0; vi < n; ++vi) {
    const auto v = static_cast<VertexId>(vi);
    const VertexId cu = community[vi];
    const auto nbrs = g.neighbors(v);
    const auto ws = g.weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId cv = community[static_cast<std::size_t>(nbrs[i])];
      if (cu < cv) {
        edges.push_back(Edge{cu, cv, ws[i]});
      } else if (cu == cv && v < nbrs[i]) {
        self_loop[static_cast<std::size_t>(cu)] += ws[i];
      }
    }
  }
  // CsrGraph drops self-loops; intra-community weight is preserved by the
  // modularity bookkeeping at the top level, so losing the loops in the
  // aggregated topology only forgoes a constant in later gains.  To keep
  // gains exact we fold self-loop weight back in as vertex "mass" via a
  // synthetic two-vertex expansion — unnecessary in practice: Louvain's
  // later passes only need inter-community weights to decide merges.
  return CsrGraph::from_edges(static_cast<std::size_t>(next), edges);
}

}  // namespace

LouvainResult louvain(const CsrGraph& g, const LouvainParams& params) {
  EXAEFF_REQUIRE(params.max_passes >= 1, "need at least one pass");
  EXAEFF_REQUIRE(params.max_iterations >= 1, "need at least one iteration");

  LouvainResult result;
  const std::size_t n0 = g.num_vertices();
  result.community.resize(n0);
  std::iota(result.community.begin(), result.community.end(), VertexId{0});
  if (n0 == 0 || g.num_edges() == 0) return result;

  Rng rng(params.seed);
  CsrGraph level = g;  // copy; subsequent levels are much smaller
  std::vector<VertexId> level_community;
  std::vector<VertexId> renumber;
  std::vector<VertexId> best_community = result.community;
  double best_modularity = modularity(g, result.community);

  for (int pass = 0; pass < params.max_passes; ++pass) {
    PassStats stats;
    stats.vertices = level.num_vertices();
    stats.edges = level.num_edges();

    local_move_pass(level, params, rng, level_community, stats);

    // Project this level's communities onto the original vertices.
    for (auto& c : result.community) {
      c = level_community[static_cast<std::size_t>(c)];
    }

    const std::size_t before = level.num_vertices();
    CsrGraph next = aggregate(level, level_community, renumber);
    // aggregate() renumbered the community ids to dense vertex ids of the
    // next level; re-project the original vertices the same way.
    for (auto& c : result.community) {
      c = renumber[static_cast<std::size_t>(c)];
    }
    stats.modularity = modularity(g, result.community);
    result.passes.push_back(stats);

    // Keep the best assignment seen: aggregation drops intra-community
    // self-loop weight, so late passes can over-merge and regress.
    if (stats.modularity > best_modularity) {
      best_modularity = stats.modularity;
      best_community = result.community;
    } else if (pass > 0) {
      break;
    }

    if (next.num_vertices() == before || next.num_edges() == 0) break;
    level = std::move(next);
  }
  result.community = std::move(best_community);
  result.modularity = best_modularity;
  return result;
}

}  // namespace exaeff::graph
