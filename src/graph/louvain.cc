#include "graph/louvain.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "exec/thread_pool.h"

namespace exaeff::graph {

namespace {

/// Runs body(begin, end) over [0, n), on the pool when one is given.
/// Only used for element-wise writes, where chunking cannot change the
/// result.
void for_range(exec::ThreadPool* pool, std::size_t n,
               const std::function<void(std::size_t, std::size_t)>& body) {
  if (pool != nullptr) {
    pool->parallel_for(n, 0, body);
  } else {
    body(0, n);
  }
}

}  // namespace

std::size_t LouvainResult::num_communities() const {
  std::unordered_set<VertexId> distinct(community.begin(), community.end());
  return distinct.size();
}

std::size_t LouvainResult::total_edge_scans() const {
  std::size_t total = 0;
  for (const auto& p : passes) total += p.edge_scans;
  return total;
}

double modularity(const CsrGraph& g, std::span<const VertexId> community) {
  return modularity(g, community, nullptr);
}

double modularity(const CsrGraph& g, std::span<const VertexId> community,
                  exec::ThreadPool* pool) {
  const std::size_t n = g.num_vertices();
  EXAEFF_REQUIRE(community.size() == n,
                 "community assignment must cover every vertex");
  const double m2 = 2.0 * g.total_weight();
  if (m2 <= 0.0) return 0.0;

  // Q = sum_c [ in_c / 2m - (tot_c / 2m)^2 ].  Per-vertex contributions
  // are independent (scan my neighbors, sum same-community weights); the
  // community fold and the final sum run serially in index order, so the
  // result is identical for any thread count.
  std::vector<double> deg(n, 0.0);
  std::vector<double> vertex_internal(n, 0.0);
  for_range(pool, n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t vi = begin; vi < end; ++vi) {
      const auto v = static_cast<VertexId>(vi);
      const VertexId cv = community[vi];
      deg[vi] = g.weighted_degree(v);
      const auto nbrs = g.neighbors(v);
      const auto ws = g.weights(v);
      double in_w = 0.0;
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (community[static_cast<std::size_t>(nbrs[i])] == cv) {
          in_w += ws[i];
        }
      }
      vertex_internal[vi] = in_w;
    }
  });

  std::vector<double> internal(n, 0.0);  // 2 * intra-community w
  std::vector<double> total(n, 0.0);     // sum of degrees
  std::vector<bool> present(n, false);
  for (std::size_t vi = 0; vi < n; ++vi) {
    const VertexId cv = community[vi];
    EXAEFF_REQUIRE(cv >= 0 && static_cast<std::size_t>(cv) < n,
                   "community ids must lie in [0, num_vertices)");
    const auto c = static_cast<std::size_t>(cv);
    total[c] += deg[vi];
    internal[c] += vertex_internal[vi];
    present[c] = true;
  }
  double q = 0.0;
  for (std::size_t c = 0; c < n; ++c) {
    if (!present[c]) continue;
    q += internal[c] / m2 - (total[c] / m2) * (total[c] / m2);
  }
  return q;
}

namespace {

/// One aggregation level: local greedy moves on `g`, writing the level's
/// community assignment into `community` and work counters into `stats`.
void local_move_pass(const CsrGraph& g, const LouvainParams& params,
                     Rng& rng, std::vector<VertexId>& community,
                     PassStats& stats) {
  const std::size_t n = g.num_vertices();
  const double m2 = 2.0 * g.total_weight();

  community.resize(n);
  std::iota(community.begin(), community.end(), VertexId{0});

  std::vector<double> k(n);       // weighted degree of each vertex
  std::vector<double> sigma(n);   // total degree of each community
  for_range(params.pool, n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t v = begin; v < end; ++v) {
      k[v] = g.weighted_degree(static_cast<VertexId>(v));
      sigma[v] = k[v];
    }
  });

  // Randomized visiting order decorrelates move sequences across levels.
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), VertexId{0});
  for (std::size_t i = n; i > 1; --i) {
    std::swap(order[i - 1], order[rng.uniform_index(i)]);
  }

  // Scratch: weight of edges from the current vertex to each candidate
  // community, as a stamped flat array.  `touched` records candidates in
  // first-encounter order (own community first, then neighbor order), so
  // the best-gain scan below is deterministic — no hash-order iteration.
  std::vector<double> link_w(n, 0.0);
  std::vector<std::uint64_t> stamp(n, 0);
  std::uint64_t current_stamp = 0;
  std::vector<VertexId> touched;
  touched.reserve(64);
  const auto touch = [&](VertexId c, double w) {
    const auto ci = static_cast<std::size_t>(c);
    if (stamp[ci] != current_stamp) {
      stamp[ci] = current_stamp;
      link_w[ci] = 0.0;
      touched.push_back(c);
    }
    link_w[ci] += w;
  };

  for (int it = 0; it < params.max_iterations; ++it) {
    std::size_t moves = 0;
    double gain_total = 0.0;
    for (const VertexId v : order) {
      const auto vi = static_cast<std::size_t>(v);
      const VertexId c_old = community[vi];
      const auto nbrs = g.neighbors(v);
      const auto ws = g.weights(v);
      stats.edge_scans += nbrs.size();

      ++current_stamp;
      touched.clear();
      touch(c_old, 0.0);  // allow staying put at zero link weight
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (nbrs[i] != v) {
          touch(community[static_cast<std::size_t>(nbrs[i])], ws[i]);
        }
      }

      // Remove v from its community for the gain comparison.
      sigma[static_cast<std::size_t>(c_old)] -= k[vi];
      const double link_old = link_w[static_cast<std::size_t>(c_old)];

      VertexId c_best = c_old;
      double best_gain = 0.0;
      for (const VertexId c : touched) {
        if (c == c_old) continue;
        // dQ(move to c) - dQ(stay) up to a constant factor 1/m:
        const double gain =
            (link_w[static_cast<std::size_t>(c)] - link_old) -
            k[vi] * (sigma[static_cast<std::size_t>(c)] -
                     sigma[static_cast<std::size_t>(c_old)]) /
                m2;
        if (gain > best_gain + params.min_gain) {
          best_gain = gain;
          c_best = c;
        }
      }
      sigma[static_cast<std::size_t>(c_best)] += k[vi];
      if (c_best != c_old) {
        community[vi] = c_best;
        ++moves;
        gain_total += best_gain;
      }
    }
    ++stats.iterations;
    stats.moves += moves;
    if (moves == 0 || gain_total < params.min_gain) break;
  }
}

/// Builds the aggregated graph where each community becomes a vertex.
/// `renumber` maps old community ids to dense new vertex ids.
CsrGraph aggregate(const CsrGraph& g, std::vector<VertexId>& community,
                   std::vector<VertexId>& renumber,
                   exec::ThreadPool* pool) {
  const std::size_t n = g.num_vertices();
  renumber.assign(n, -1);
  VertexId next = 0;
  for (std::size_t v = 0; v < n; ++v) {
    auto& slot = renumber[static_cast<std::size_t>(community[v])];
    if (slot < 0) slot = next++;
  }
  for (std::size_t v = 0; v < n; ++v) {
    community[v] = renumber[static_cast<std::size_t>(community[v])];
  }

  // CsrGraph drops self-loops; intra-community weight is preserved by the
  // modularity bookkeeping at the top level, so losing the loops in the
  // aggregated topology only forgoes a constant in later gains — Louvain's
  // later passes only need inter-community weights to decide merges.
  //
  // The neighbor scan runs per chunk of vertices; concatenating the
  // per-chunk edge lists in chunk order reproduces the serial scan order
  // exactly, so from_edges sees the identical input for any thread count.
  const auto chunk_edges = [&](std::size_t begin, std::size_t end) {
    std::vector<Edge> out;
    for (std::size_t vi = begin; vi < end; ++vi) {
      const auto v = static_cast<VertexId>(vi);
      const VertexId cu = community[vi];
      const auto nbrs = g.neighbors(v);
      const auto ws = g.weights(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const VertexId cv = community[static_cast<std::size_t>(nbrs[i])];
        if (cu < cv) out.push_back(Edge{cu, cv, ws[i]});
      }
    }
    return out;
  };

  std::vector<Edge> edges;
  edges.reserve(g.num_edges());
  if (pool != nullptr) {
    auto chunks = pool->map_chunks(
        n, exec::ThreadPool::chunk_grain(n), chunk_edges);
    for (auto& c : chunks) {
      edges.insert(edges.end(), c.begin(), c.end());
    }
  } else {
    edges = chunk_edges(0, n);
  }
  return CsrGraph::from_edges(static_cast<std::size_t>(next), edges);
}

}  // namespace

LouvainResult louvain(const CsrGraph& g, const LouvainParams& params) {
  EXAEFF_REQUIRE(params.max_passes >= 1, "need at least one pass");
  EXAEFF_REQUIRE(params.max_iterations >= 1, "need at least one iteration");

  LouvainResult result;
  const std::size_t n0 = g.num_vertices();
  result.community.resize(n0);
  std::iota(result.community.begin(), result.community.end(), VertexId{0});
  if (n0 == 0 || g.num_edges() == 0) return result;

  Rng rng(params.seed);
  CsrGraph level = g;  // copy; subsequent levels are much smaller
  std::vector<VertexId> level_community;
  std::vector<VertexId> renumber;
  std::vector<VertexId> best_community = result.community;
  double best_modularity = modularity(g, result.community, params.pool);

  for (int pass = 0; pass < params.max_passes; ++pass) {
    PassStats stats;
    stats.vertices = level.num_vertices();
    stats.edges = level.num_edges();

    local_move_pass(level, params, rng, level_community, stats);

    // Project this level's communities onto the original vertices.
    for (auto& c : result.community) {
      c = level_community[static_cast<std::size_t>(c)];
    }

    const std::size_t before = level.num_vertices();
    CsrGraph next = aggregate(level, level_community, renumber, params.pool);
    // aggregate() renumbered the community ids to dense vertex ids of the
    // next level; re-project the original vertices the same way.
    for (auto& c : result.community) {
      c = renumber[static_cast<std::size_t>(c)];
    }
    stats.modularity = modularity(g, result.community, params.pool);
    result.passes.push_back(stats);

    // Keep the best assignment seen: aggregation drops intra-community
    // self-loop weight, so late passes can over-merge and regress.
    if (stats.modularity > best_modularity) {
      best_modularity = stats.modularity;
      best_community = result.community;
    } else if (pass > 0) {
      break;
    }

    if (next.num_vertices() == before || next.num_edges() == 0) break;
    level = std::move(next);
  }
  result.community = std::move(best_community);
  result.modularity = best_modularity;
  return result;
}

}  // namespace exaeff::graph
