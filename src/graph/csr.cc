#include "graph/csr.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace exaeff::graph {

CsrGraph CsrGraph::from_edges(std::size_t num_vertices,
                              std::span<const Edge> edges) {
  // Normalize: drop self-loops, order endpoints, sort, merge duplicates.
  std::vector<Edge> list;
  list.reserve(edges.size());
  for (const Edge& e : edges) {
    EXAEFF_REQUIRE(e.u >= 0 && static_cast<std::size_t>(e.u) < num_vertices &&
                       e.v >= 0 &&
                       static_cast<std::size_t>(e.v) < num_vertices,
                   "edge endpoint out of range");
    EXAEFF_REQUIRE(e.w > 0.0, "edge weights must be positive");
    if (e.u == e.v) continue;
    list.push_back(
        Edge{std::min(e.u, e.v), std::max(e.u, e.v), e.w});
  }
  std::sort(list.begin(), list.end(), [](const Edge& a, const Edge& b) {
    if (a.u != b.u) return a.u < b.u;
    return a.v < b.v;
  });
  std::vector<Edge> merged;
  merged.reserve(list.size());
  for (const Edge& e : list) {
    if (!merged.empty() && merged.back().u == e.u && merged.back().v == e.v) {
      merged.back().w += e.w;
    } else {
      merged.push_back(e);
    }
  }

  CsrGraph g;
  g.offsets_.assign(num_vertices + 1, 0);
  for (const Edge& e : merged) {
    ++g.offsets_[static_cast<std::size_t>(e.u) + 1];
    ++g.offsets_[static_cast<std::size_t>(e.v) + 1];
  }
  std::partial_sum(g.offsets_.begin(), g.offsets_.end(), g.offsets_.begin());
  g.neighbors_.resize(static_cast<std::size_t>(g.offsets_.back()));
  g.weights_.resize(g.neighbors_.size());

  std::vector<std::int64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const Edge& e : merged) {
    auto& cu = cursor[static_cast<std::size_t>(e.u)];
    g.neighbors_[static_cast<std::size_t>(cu)] = e.v;
    g.weights_[static_cast<std::size_t>(cu)] = e.w;
    ++cu;
    auto& cv = cursor[static_cast<std::size_t>(e.v)];
    g.neighbors_[static_cast<std::size_t>(cv)] = e.u;
    g.weights_[static_cast<std::size_t>(cv)] = e.w;
    ++cv;
    g.total_weight_ += e.w;
  }
  return g;
}

double CsrGraph::weighted_degree(VertexId v) const {
  double sum = 0.0;
  for (double w : weights(v)) sum += w;
  return sum;
}

DegreeStats CsrGraph::degree_stats() const {
  DegreeStats st;
  const std::size_t n = num_vertices();
  if (n == 0) return st;
  double sum = 0.0;
  double sum_sq = 0.0;
  std::size_t d_max = 0;
#ifdef _OPENMP
#pragma omp parallel for reduction(+ : sum, sum_sq) reduction(max : d_max) \
    if (n > 100000)
#endif
  for (std::size_t v = 0; v < n; ++v) {
    const auto d = degree(static_cast<VertexId>(v));
    d_max = std::max(d_max, d);
    sum += static_cast<double>(d);
    sum_sq += static_cast<double>(d) * static_cast<double>(d);
  }
  st.d_max = d_max;
  st.d_avg = sum / static_cast<double>(n);
  const double var = sum_sq / static_cast<double>(n) - st.d_avg * st.d_avg;
  st.d_stddev = var > 0.0 ? std::sqrt(var) : 0.0;
  return st;
}

}  // namespace exaeff::graph
