#include "graph/generators.h"

#include <cmath>

namespace exaeff::graph {

CsrGraph rmat(const RmatParams& params, Rng& rng) {
  EXAEFF_REQUIRE(params.scale >= 2 && params.scale <= 26,
                 "rmat scale out of supported range");
  EXAEFF_REQUIRE(params.a > 0 && params.b >= 0 && params.c >= 0 &&
                     params.a + params.b + params.c < 1.0,
                 "rmat quadrant probabilities must sum below 1");
  const std::size_t n = std::size_t{1} << params.scale;
  const auto m = static_cast<std::size_t>(
      params.edge_factor * static_cast<double>(n));

  std::vector<Edge> edges;
  edges.reserve(m);
  for (std::size_t e = 0; e < m; ++e) {
    std::size_t u = 0;
    std::size_t v = 0;
    for (int bit = 0; bit < params.scale; ++bit) {
      const double r = rng.uniform();
      u <<= 1;
      v <<= 1;
      if (r < params.a) {
        // top-left: no bits set
      } else if (r < params.a + params.b) {
        v |= 1;
      } else if (r < params.a + params.b + params.c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u == v) continue;
    edges.push_back(Edge{static_cast<VertexId>(u), static_cast<VertexId>(v),
                         1.0});
  }
  return CsrGraph::from_edges(n, edges);
}

CsrGraph road_grid(std::size_t width, std::size_t height,
                   double shortcut_prob, Rng& rng) {
  EXAEFF_REQUIRE(width >= 2 && height >= 2, "grid must be at least 2x2");
  EXAEFF_REQUIRE(shortcut_prob >= 0.0 && shortcut_prob <= 0.5,
                 "shortcut probability out of range");
  const std::size_t n = width * height;
  auto id = [width](std::size_t x, std::size_t y) {
    return static_cast<VertexId>(y * width + x);
  };

  std::vector<Edge> edges;
  edges.reserve(2 * n + static_cast<std::size_t>(shortcut_prob * n));
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      if (x + 1 < width) edges.push_back(Edge{id(x, y), id(x + 1, y), 1.0});
      if (y + 1 < height) edges.push_back(Edge{id(x, y), id(x, y + 1), 1.0});
      // Occasional diagonal "shortcut" road; keeps d_max <= 8.
      if (x + 1 < width && y + 1 < height &&
          rng.bernoulli(shortcut_prob)) {
        edges.push_back(Edge{id(x, y), id(x + 1, y + 1), 1.0});
      }
    }
  }
  return CsrGraph::from_edges(n, edges);
}

std::vector<NamedGraph> paper_network_suite(Rng& rng) {
  std::vector<NamedGraph> suite;

  // Social-like power-law networks spanning ~100 K to ~8 M edges.
  struct SocialSpec {
    const char* name;
    int scale;
    double edge_factor;
  };
  constexpr SocialSpec kSocial[] = {{"social-2M", 18, 8.0},
                                    {"social-6M", 19, 11.0},
                                    {"social-8M", 20, 8.0}};
  for (const auto& s : kSocial) {
    RmatParams p;
    p.scale = s.scale;
    p.edge_factor = s.edge_factor;
    suite.push_back(NamedGraph{s.name, true, rmat(p, rng)});
  }
  // Small social network near the paper's 3 K edge lower bound.
  {
    RmatParams p;
    p.scale = 10;
    p.edge_factor = 3.0;
    suite.push_back(NamedGraph{"social-3K", true, rmat(p, rng)});
  }
  // Bounded-degree road networks (d_avg ~ 2-3, d_max <= 9).
  suite.push_back(
      NamedGraph{"road-1M", false, road_grid(700, 700, 0.05, rng)});
  suite.push_back(
      NamedGraph{"road-8M", false, road_grid(2000, 2000, 0.05, rng)});
  return suite;
}

}  // namespace exaeff::graph
