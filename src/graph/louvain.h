// exaeff/graph/louvain.h
//
// Louvain community detection (Blondel et al. 2008): repeated passes of
// greedy local modularity optimization followed by community aggregation.
// This is the real algorithm — modularity is maximized and verified by
// tests — not a placeholder; the GPU case study (paper §IV-C / Fig 7)
// maps each pass's measured work onto the GPU simulator.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "graph/csr.h"

namespace exaeff::exec {
class ThreadPool;
}  // namespace exaeff::exec

namespace exaeff::graph {

/// Algorithm controls.
struct LouvainParams {
  int max_passes = 10;          ///< aggregation levels
  int max_iterations = 25;      ///< local-move sweeps per pass
  double min_gain = 1e-7;       ///< stop a pass when total gain is below
  std::uint64_t seed = 1;       ///< vertex visiting order shuffle
  /// When set, the per-pass neighbor scans (degree init, modularity
  /// evaluation, aggregation) run on the pool.  The greedy move loop is
  /// inherently sequential and stays serial; community selection uses
  /// deterministic encounter-order tie-breaking, so results do not
  /// depend on the thread count.
  exec::ThreadPool* pool = nullptr;
};

/// Work/quality record of one pass (one aggregation level).
struct PassStats {
  std::size_t vertices = 0;      ///< vertices at this level
  std::size_t edges = 0;         ///< undirected edges at this level
  std::size_t edge_scans = 0;    ///< neighbor inspections performed
  std::size_t moves = 0;         ///< accepted community moves
  int iterations = 0;            ///< local-move sweeps executed
  double modularity = 0.0;       ///< modularity after the pass
};

/// Full result: final community per original vertex, modularity, and the
/// per-pass work profile the GPU mapper consumes.
struct LouvainResult {
  std::vector<VertexId> community;
  double modularity = 0.0;
  std::vector<PassStats> passes;

  [[nodiscard]] std::size_t num_communities() const;
  /// Total neighbor inspections across all passes (the dominant memory
  /// traffic driver on a GPU implementation).
  [[nodiscard]] std::size_t total_edge_scans() const;
};

/// Modularity Q of a given community assignment on g.  Community ids
/// must lie in [0, num_vertices).  The pool overload evaluates per-vertex
/// contributions concurrently and folds them in vertex order, so both
/// overloads agree for any thread count.
[[nodiscard]] double modularity(const CsrGraph& g,
                                std::span<const VertexId> community);
[[nodiscard]] double modularity(const CsrGraph& g,
                                std::span<const VertexId> community,
                                exec::ThreadPool* pool);

/// Runs Louvain on g.
[[nodiscard]] LouvainResult louvain(const CsrGraph& g,
                                    const LouvainParams& params = {});

}  // namespace exaeff::graph
