// exaeff/graph/gpu_mapping.h
//
// Maps a measured Louvain run onto the GPU simulator.  The paper's GPU
// implementation distributes the work of a vertex's community assignment
// by degree: high-degree vertices get a wavefront (or a group of threads
// within one), low-degree vertices a single thread (§IV-C).  Two
// consequences the mapper reproduces:
//
//   * power-law (social) graphs: degree-binned assignment keeps wavefronts
//     busy -> balanced, bandwidth-dominated execution, modest clock
//     sensitivity, higher power;
//   * bounded-degree (road) graphs: one thread per low-degree vertex ->
//     wavefront under-utilization and latency domination, strong clock
//     sensitivity, low power (the paper's 8 M road network peaks at a mere
//     ~205 W).
//
// The mapping converts the run's edge-scan counts into HBM/L2 traffic and
// flops, and the degree distribution's imbalance into divergence and
// latency shares.
#pragma once

#include "gpusim/device_spec.h"
#include "gpusim/kernel.h"
#include "graph/csr.h"
#include "graph/louvain.h"

namespace exaeff::graph {

/// Per-edge cost model of the GPU Louvain implementation.
struct MappingParams {
  /// Effective bytes moved per neighbor inspection.  Community lookups
  /// are random 4-byte reads that drag whole cache lines, so the
  /// effective traffic is line-granular, not payload-granular.
  double bytes_per_scan = 96.0;
  double flops_per_scan = 8.0;      ///< gain arithmetic per inspected edge
  double l2_amplification = 2.2;    ///< L2 traffic per HBM byte (reuse)
  double hbm_miss_fraction = 0.55;  ///< scans missing L2 out to HBM
  double launch_latency_s = 4e-6;   ///< per kernel launch + sync
  double launches_per_iteration = 4.0;
  /// CPU<->GPU transfer + host bookkeeping per pass, seconds per vertex.
  double host_overhead_per_vertex_s = 1.0e-9;
  /// Dependent-chain cycles per neighbor inspection when a single thread
  /// walks its vertex's adjacency serially (the bounded-degree path).
  double chain_cycles = 14.0;
};

/// Converts a Louvain run on `g` into a simulator kernel.
///
/// Degree imbalance (the distribution's coefficient of variation versus
/// the one-thread-per-vertex threshold) controls divergence and the
/// latency share: bounded-degree graphs execute mostly latency-bound,
/// power-law graphs mostly throughput-bound.
[[nodiscard]] gpusim::KernelDesc map_louvain_run(
    const gpusim::DeviceSpec& spec, const CsrGraph& g,
    const LouvainResult& run, const MappingParams& params = {});

}  // namespace exaeff::graph
