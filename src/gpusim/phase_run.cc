#include "gpusim/phase_run.h"

#include "common/error.h"

namespace exaeff::gpusim {

SequenceResult run_sequence(const GpuSimulator& sim,
                            const std::vector<KernelDesc>& kernels,
                            const PowerPolicy& policy) {
  EXAEFF_REQUIRE(!kernels.empty(), "phase sequence must not be empty");
  SequenceResult seq;
  for (const auto& k : kernels) {
    PhaseResult pr;
    pr.start_s = seq.time_s;
    pr.run = sim.run(k, policy);
    seq.time_s += pr.run.time_s;
    seq.energy_j += pr.run.energy_j;
    seq.any_cap_breached |= pr.run.cap_breached;
    seq.phases.push_back(std::move(pr));
  }
  seq.avg_power_w = seq.time_s > 0.0 ? seq.energy_j / seq.time_s : 0.0;
  return seq;
}

SequenceResult run_sequence_traced(const GpuSimulator& sim,
                                   const std::vector<KernelDesc>& kernels,
                                   const PowerPolicy& policy, Rng& rng,
                                   std::vector<TracePoint>& trace,
                                   const TraceOptions& options) {
  EXAEFF_REQUIRE(!kernels.empty(), "phase sequence must not be empty");
  SequenceResult seq;
  trace.clear();
  std::vector<TracePoint> part;
  for (std::size_t ki = 0; ki < kernels.size(); ++ki) {
    PhaseResult pr;
    pr.start_s = seq.time_s;
    pr.run = sim.run_traced(kernels[ki], policy, rng, part, options);
    const bool last_phase = ki + 1 == kernels.size();
    for (TracePoint p : part) {
      // Per-phase traces round their final sample up to the sampling
      // grid; drop the overshoot so the stitched trace stays monotone.
      if (!last_phase && p.t_s >= pr.run.time_s) continue;
      p.t_s += pr.start_s;
      trace.push_back(p);
    }
    seq.time_s += pr.run.time_s;
    seq.energy_j += pr.run.energy_j;
    seq.any_cap_breached |= pr.run.cap_breached;
    seq.phases.push_back(std::move(pr));
  }
  seq.avg_power_w = seq.time_s > 0.0 ? seq.energy_j / seq.time_s : 0.0;
  return seq;
}

}  // namespace exaeff::gpusim
