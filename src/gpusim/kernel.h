// exaeff/gpusim/kernel.h
//
// KernelDesc is the workload currency of the simulator: a device-agnostic
// description of the *demands* a GPU kernel places on the die.  The
// execution model turns a KernelDesc plus a frequency into timings and
// engine utilizations; the power model turns utilizations into watts.
//
// Workload generators (VAI, membench, Louvain passes, application phases)
// all reduce to KernelDescs, which is what lets benchmark characterization
// transfer onto fleet-scale workloads — exactly the paper's method.
#pragma once

#include <string>

#include "common/error.h"

namespace exaeff::gpusim {

/// Demand description of one GPU kernel (or steady application phase).
struct KernelDesc {
  std::string name = "kernel";

  /// Total floating-point operations to retire.
  double flops = 0.0;

  /// Bytes moved to/from HBM (misses past L2).
  double hbm_bytes = 0.0;

  /// Bytes served by the L2 cache (hits).
  double l2_bytes = 0.0;

  /// Issue-boundedness of the HBM stream, in [0, 1].
  ///
  /// 1 means achievable HBM bandwidth scales with the engine clock (the
  /// kernel cannot keep enough loads in flight at low clock — the paper's
  /// VAI stream behaves this way, Fig 4); 0 means bandwidth is clock-
  /// insensitive (massive occupancy hides the clock — the paper's
  /// L2-cache/HBM benchmark behaves this way, Fig 6).
  double issue_boundedness = 0.0;

  /// Serial/latency-bound time at f_max (dependent chains, kernel-launch
  /// and synchronization overhead, CPU<->GPU transfers).  Scales as
  /// (f_max/f)^latency_exp when the clock is lowered.
  double latency_s = 0.0;

  /// Frequency sensitivity of the latency term; 1 = proportional (the
  /// behaviour the paper reports for its latency-bound region), 0 = none.
  double latency_exp = 1.0;

  /// Compute-time inflation factor >= 1 for divergent / imbalanced
  /// workloads (bounded-degree graphs in Fig 7 motivate this knob).
  double divergence = 1.0;

  /// Fraction of dynamic engine power actually drawn while latency-bound
  /// work is "occupying" the die (low: stalled units clock-gate).
  double latency_power_fraction = 0.12;

  /// Validates ranges; throws ConfigError on nonsense.
  void validate() const {
    if (flops < 0.0 || hbm_bytes < 0.0 || l2_bytes < 0.0 || latency_s < 0.0) {
      throw ConfigError("KernelDesc: demands must be non-negative");
    }
    if (flops == 0.0 && hbm_bytes == 0.0 && l2_bytes == 0.0 &&
        latency_s == 0.0) {
      throw ConfigError("KernelDesc: kernel has no work at all");
    }
    if (issue_boundedness < 0.0 || issue_boundedness > 1.0) {
      throw ConfigError("KernelDesc: issue_boundedness must be in [0, 1]");
    }
    if (divergence < 1.0) {
      throw ConfigError("KernelDesc: divergence must be >= 1");
    }
    if (latency_exp < 0.0 || latency_exp > 2.0) {
      throw ConfigError("KernelDesc: latency_exp must be in [0, 2]");
    }
    if (latency_power_fraction < 0.0 || latency_power_fraction > 1.0) {
      throw ConfigError("KernelDesc: latency_power_fraction in [0, 1]");
    }
  }

  /// Arithmetic intensity against HBM traffic, flop/byte.  Infinite HBM
  /// intensity (no HBM traffic) returns a large sentinel.
  [[nodiscard]] double arithmetic_intensity() const {
    if (hbm_bytes <= 0.0) return 1e30;
    return flops / hbm_bytes;
  }

  /// Returns a copy scaled to `factor` times the work (all demand fields
  /// scale linearly; used to extend runtime for steady-state measurement,
  /// mirroring the paper's REPEAT knob).
  [[nodiscard]] KernelDesc scaled(double factor) const {
    KernelDesc k = *this;
    k.flops *= factor;
    k.hbm_bytes *= factor;
    k.l2_bytes *= factor;
    k.latency_s *= factor;
    return k;
  }
};

}  // namespace exaeff::gpusim
