// exaeff/gpusim/device_spec.h
//
// Static description of one simulated GPU compute die (GCD).  The default
// preset models one of the two Graphic Compute Dies of an AMD MI250X as
// deployed in Frontier (paper Table I): 64 GB HBM2e at 1.6 TB/s, 23.9
// TFLOP/s FP64 theoretical peak, 560 W TDP, 1700 MHz maximum engine clock.
//
// Two peak-FLOPs numbers are carried deliberately:
//   * `peak_flops_theoretical` — the 23.9 TFLOP/s spec-sheet number
//     (packed-FMA FP64), reported in Table I.
//   * `peak_flops_sustained`   — what a straightforward, well-written
//     kernel (the paper's VAI benchmark, "simple algorithm without
//     excessive optimization") actually sustains.  The paper's empirical
//     roofline places the memory/compute ridge at an arithmetic intensity
//     of 4 flop/byte, which with 1.6 TB/s of HBM bandwidth corresponds to
//     ~6.55 TFLOP/s sustained.  The execution model uses this value, so
//     the simulated roofline has the paper's ridge.
//
// The power-model coefficients are calibrated against the paper's §IV-A
// anchor points at 1700 MHz:
//   idle               88–90 W
//   AI = 1/16 stream   ~380 W   (HBM saturated, ALUs nearly idle)
//   AI = 4             ~540 W   (HBM and ALUs both saturated; only point
//                                that approaches the 560 W TDP)
//   AI >> 4            ~420 W   (ALUs saturated, HBM nearly idle)
// With P = idle + s(f)(A u_alu + L u_l2) + M u_hbm + X s(f) u_alu u_hbm,
// A = 330 W, M = 290 W, X = -170 W reproduces all four anchors exactly.
#pragma once

#include <cstdint>
#include <string>

#include "common/error.h"

namespace exaeff::gpusim {

/// Immutable hardware description of a simulated GCD.
struct DeviceSpec {
  std::string name = "MI250X-GCD";

  // --- clocks -----------------------------------------------------------
  double f_min_mhz = 500.0;      ///< lowest user-settable engine clock
  double f_max_mhz = 1700.0;     ///< highest sustained engine clock
  double f_step_mhz = 1.0;       ///< DVFS quantization step
  double cap_f_floor_mhz = 800;  ///< lowest clock the power-cap DPM uses

  // --- compute / memory -------------------------------------------------
  double peak_flops_theoretical = 23.9e12;  ///< spec-sheet FP64 peak at f_max
  double peak_flops_sustained = 6.55e12;    ///< achievable FP64 peak at f_max
  double hbm_bytes = 64.0 * 1024.0 * 1024.0 * 1024.0;  ///< 64 GB HBM2e
  double hbm_bw = 1.6384e12;                ///< HBM bandwidth, B/s
  double l2_bytes = 16.0 * 1024.0 * 1024.0; ///< L2 capacity (paper §IV-B)
  double l2_bw = 8.2e12;                    ///< L2 bandwidth at f_max, B/s

  // --- power ------------------------------------------------------------
  double idle_power_w = 89.0;   ///< paper §V-A: idle is 88-90 W
  double tdp_w = 560.0;         ///< sustained power limit (GCD max power)
  double boost_power_w = 625.0; ///< short-excursion ceiling seen in telemetry

  /// Power-model coefficients (watts at f_max, full utilization).
  ///
  /// Moving a byte from HBM burns power both off-die (DRAM + PHY, which
  /// does not follow the engine clock) and on-die (fabric/datapath, which
  /// does).  The split is what makes memory-bound power drop ~15-25%
  /// under deep frequency caps while bandwidth stays flat — the paper's
  /// Table III "MB" column.
  double coef_alu_w = 330.0;        ///< ALU/issue dynamic power
  double coef_hbm_offdie_w = 170.0; ///< HBM DRAM + PHY (clock-independent)
  double coef_hbm_ondie_w = 100.0;  ///< on-die transport (scales with s(f))
  double coef_l2_w = 80.0;          ///< L2/on-die datapath power
  double coef_interact_w = -170.0;  ///< shared-rail saturation (sub-additive)

  /// Fabric throttling: when a power cap is unattainable even at the DPM
  /// clock floor, firmware additionally slows the memory fabric.
  /// `fabric_floor` is the lowest bandwidth fraction it can impose;
  /// `hbm_static_fraction` is the share of off-die HBM power that draws
  /// regardless of achieved traffic (refresh, PHY bias) — which is why
  /// deep caps are *breached* rather than met.
  double fabric_floor = 0.78;
  double hbm_static_fraction = 0.25;

  /// Below this relative engine clock the on-die fabric can no longer
  /// keep HBM saturated even for occupancy-bound streams — achievable
  /// bandwidth degrades linearly.  This is why the paper's deepest
  /// frequency cap (700 MHz) costs memory-bound codes energy again.
  double fabric_min_rel_clock = 0.47;

  /// Affine voltage curve V(f) = volt_base + volt_slope * (f / f_max);
  /// only the *ratio* to V(f_max) matters for power scaling.
  double volt_base = 0.60;
  double volt_slope = 0.50;

  // --- boost behaviour (telemetry-visible transients) --------------------
  double boost_probability = 0.010; ///< chance a 2 s sample catches a boost
  double boost_extra_w = 45.0;      ///< mean extra power during a boost spike

  /// Validates internal consistency; throws ConfigError on nonsense.
  void validate() const {
    if (!(f_min_mhz > 0.0 && f_max_mhz > f_min_mhz)) {
      throw ConfigError("DeviceSpec: need 0 < f_min < f_max");
    }
    if (!(peak_flops_sustained > 0.0 && hbm_bw > 0.0 && l2_bw > 0.0)) {
      throw ConfigError("DeviceSpec: peak rates must be positive");
    }
    if (!(idle_power_w >= 0.0 && tdp_w > idle_power_w)) {
      throw ConfigError("DeviceSpec: need idle >= 0 and TDP > idle");
    }
    if (!(boost_power_w >= tdp_w)) {
      throw ConfigError("DeviceSpec: boost ceiling below TDP");
    }
  }

  /// Relative clock f/f_max in (0, 1].
  [[nodiscard]] double rel_clock(double f_mhz) const {
    return f_mhz / f_max_mhz;
  }

  /// Voltage at frequency f (arbitrary units; used as a ratio).
  [[nodiscard]] double voltage(double f_mhz) const {
    return volt_base + volt_slope * rel_clock(f_mhz);
  }

  /// Dynamic-power scale factor s(f) = (f/f0) * (V(f)/V(f0))^2, equal to 1
  /// at f_max.  Classic CMOS dynamic-power scaling.
  [[nodiscard]] double power_scale(double f_mhz) const {
    const double v_ratio = voltage(f_mhz) / voltage(f_max_mhz);
    return rel_clock(f_mhz) * v_ratio * v_ratio;
  }

  /// Clamps and quantizes a frequency request to a supported DVFS state.
  [[nodiscard]] double clamp_frequency(double f_mhz) const;

  /// Ridge point of the sustained roofline, flop/byte.
  [[nodiscard]] double ridge_intensity() const {
    return peak_flops_sustained / hbm_bw;
  }
};

/// Factory: the Frontier MI250X GCD preset used throughout the paper.
[[nodiscard]] DeviceSpec mi250x_gcd();

/// Factory: a hypothetical next-generation GCD (the paper's discussion:
/// "based on technology developments, such assessments have to be
/// re-evaluated").  Higher TDP and bandwidth, a larger L2, a wider
/// clock range, and a bigger clock-independent HBM share — the trend
/// that *shifts* where capping pays.
[[nodiscard]] DeviceSpec nextgen_gcd();

}  // namespace exaeff::gpusim
