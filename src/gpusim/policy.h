// exaeff/gpusim/policy.h
//
// Power-management policy applied to a simulated device: an optional
// frequency cap, an optional power cap, or both (the power cap then acts
// within the frequency-capped range, as on real firmware).
#pragma once

#include <optional>
#include <string>

#include "common/error.h"

namespace exaeff::gpusim {

/// One power-management setting, as an operator would apply it.
struct PowerPolicy {
  /// Upper bound on the engine clock (rocm-smi --setsclk analogue).
  std::optional<double> freq_cap_mhz;

  /// Upper bound on sustained device power (rocm-smi --setpoweroverdrive
  /// analogue).
  std::optional<double> power_cap_w;

  [[nodiscard]] static PowerPolicy none() { return {}; }

  [[nodiscard]] static PowerPolicy frequency(double mhz) {
    PowerPolicy p;
    p.freq_cap_mhz = mhz;
    return p;
  }

  [[nodiscard]] static PowerPolicy power(double watts) {
    PowerPolicy p;
    p.power_cap_w = watts;
    return p;
  }

  [[nodiscard]] bool unconstrained() const {
    return !freq_cap_mhz && !power_cap_w;
  }

  void validate() const {
    if (freq_cap_mhz && *freq_cap_mhz <= 0.0) {
      throw ConfigError("PowerPolicy: frequency cap must be positive");
    }
    if (power_cap_w && *power_cap_w <= 0.0) {
      throw ConfigError("PowerPolicy: power cap must be positive");
    }
  }

  /// Human-readable label ("1300 MHz", "300 W", "uncapped", ...).
  [[nodiscard]] std::string label() const;
};

}  // namespace exaeff::gpusim
