#include "gpusim/control_api.h"

#include <algorithm>

namespace exaeff::gpusim {

double DeviceControl::set_frequency_cap(double mhz) {
  EXAEFF_REQUIRE(mhz > 0.0, "frequency cap must be positive");
  const double applied = sim_.spec().clamp_frequency(mhz);
  policy_.freq_cap_mhz = applied;
  return applied;
}

double DeviceControl::set_power_cap(double watts) {
  EXAEFF_REQUIRE(watts > 0.0, "power cap must be positive");
  const double applied = std::min(watts, sim_.spec().boost_power_w);
  policy_.power_cap_w = applied;
  return applied;
}

void DeviceControl::reset_caps() { policy_ = PowerPolicy{}; }

RunResult DeviceControl::launch(const KernelDesc& kernel) {
  const RunResult r = sim_.run(kernel, policy_);
  last_power_w_ = r.avg_power_w;
  last_freq_mhz_ = r.freq_mhz;
  last_breached_ = r.cap_breached;
  energy_j_ += r.energy_j;
  ++launches_;
  return r;
}

double DeviceControl::read_power_w() {
  const double base =
      launches_ > 0 ? last_power_w_ : sim_.spec().idle_power_w;
  // Sensor noise comparable to the out-of-band channel's.
  return std::max(0.0, base + rng_.normal(0.0, 3.0));
}

double DeviceControl::read_frequency_mhz() const {
  return launches_ > 0 ? last_freq_mhz_ : sim_.spec().f_max_mhz;
}

}  // namespace exaeff::gpusim
