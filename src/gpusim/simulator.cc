#include "gpusim/simulator.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"

namespace exaeff::gpusim {

CapSolution GpuSimulator::settle(const KernelDesc& kernel,
                                 const PowerPolicy& policy) const {
  policy.validate();
  kernel.validate();

  // Registry updates are guarded so the disabled (default) cost is one
  // relaxed load — settle() is on the bench-critical path.
  struct SettleMetrics {
    obs::Counter& calls;
    obs::Counter& breaches;
  };
  static SettleMetrics* metrics = [] {
    auto& reg = obs::MetricsRegistry::global();
    return new SettleMetrics{
        reg.counter("exaeff_settle_total",
                    "Cap-settle solves performed by the GPU simulator"),
        reg.counter("exaeff_cap_breach_total",
                    "Settles where the power cap could not be met")};
  }();
  const bool count = obs::metrics_enabled();
  if (count) metrics->calls.inc();

  // A frequency cap restricts the clock range; model it by solving the
  // power cap (if any) at a device whose f_max is the cap.
  const double f_ceiling =
      policy.freq_cap_mhz ? spec_.clamp_frequency(*policy.freq_cap_mhz)
                          : spec_.f_max_mhz;

  if (!policy.power_cap_w) {
    CapSolution sol;
    sol.freq_mhz = f_ceiling;
    sol.power_w = power_.power_at(kernel, f_ceiling);
    return sol;
  }

  CapSolution sol = cap_ctrl_.solve(kernel, *policy.power_cap_w);
  if (sol.freq_mhz > f_ceiling) {
    // The frequency cap binds harder than the power cap.
    sol.freq_mhz = f_ceiling;
    sol.fabric_factor = 1.0;
    sol.power_w = power_.power_at(kernel, f_ceiling);
    sol.breached = sol.power_w > *policy.power_cap_w;
  }
  if (count && sol.breached) metrics->breaches.inc();
  return sol;
}

RunResult GpuSimulator::run(const KernelDesc& kernel,
                            const PowerPolicy& policy) const {
  const CapSolution sol = settle(kernel, policy);
  RunResult r;
  r.timing = exec_.timing(kernel, sol.freq_mhz, sol.fabric_factor);
  r.freq_mhz = sol.freq_mhz;
  r.cap_breached = sol.breached;
  r.time_s = r.timing.time_s;
  r.avg_power_w = power_.steady_power(r.timing, kernel);
  r.energy_j = r.avg_power_w * r.time_s;
  return r;
}

RunResult GpuSimulator::run_traced(const KernelDesc& kernel,
                                   const PowerPolicy& policy, Rng& rng,
                                   std::vector<TracePoint>& trace,
                                   const TraceOptions& opts) const {
  EXAEFF_REQUIRE(opts.dt_s > 0.0, "trace sampling period must be positive");
  RunResult r = run(kernel, policy);
  const double steady_p = r.avg_power_w;
  const double idle = spec_.idle_power_w;

  // Boost spikes appear only for workloads already running near TDP and
  // only when no cap suppresses them (firmware allows brief excursions).
  const bool boost_eligible = opts.enable_boost && policy.unconstrained() &&
                              steady_p > 0.85 * spec_.tdp_w;

  trace.clear();
  const auto samples =
      static_cast<std::size_t>(std::ceil(r.time_s / opts.dt_s));
  trace.reserve(samples + 1);

  double noise = 0.0;
  const double innovation_sd =
      opts.noise_stddev_w * std::sqrt(std::max(0.0, 1.0 - opts.noise_rho *
                                                          opts.noise_rho));
  double energy = 0.0;
  for (std::size_t i = 0; i <= samples; ++i) {
    const double t = static_cast<double>(i) * opts.dt_s;
    // Exponential ramp from idle to steady power at run start.
    const double ramp =
        1.0 - std::exp(-t / std::max(opts.ramp_tau_s, 1e-9));
    double p = idle + (steady_p - idle) * ramp;
    noise = opts.noise_rho * noise + rng.normal(0.0, innovation_sd);
    p += noise;
    if (boost_eligible && rng.bernoulli(spec_.boost_probability)) {
      p += rng.exponential(spec_.boost_extra_w);
    }
    p = std::clamp(p, idle * 0.97, spec_.boost_power_w);
    // A power cap also clips what the sensor can see (steady clipping;
    // breached caps already run above the cap at f_min).
    if (policy.power_cap_w && !r.cap_breached) {
      p = std::min(p, *policy.power_cap_w * 1.01);
    }
    trace.push_back(TracePoint{t, p, r.freq_mhz});
    const double slice = std::min(opts.dt_s, std::max(0.0, r.time_s - t));
    energy += p * slice;
  }
  if (!trace.empty()) {
    r.energy_j = energy;
    r.avg_power_w = r.time_s > 0.0 ? energy / r.time_s : steady_p;
  }
  return r;
}

}  // namespace exaeff::gpusim
