#include "gpusim/policy.h"

#include <cstdio>

namespace exaeff::gpusim {

std::string PowerPolicy::label() const {
  char buf[64];
  if (freq_cap_mhz && power_cap_w) {
    std::snprintf(buf, sizeof buf, "%.0f MHz + %.0f W", *freq_cap_mhz,
                  *power_cap_w);
  } else if (freq_cap_mhz) {
    std::snprintf(buf, sizeof buf, "%.0f MHz", *freq_cap_mhz);
  } else if (power_cap_w) {
    std::snprintf(buf, sizeof buf, "%.0f W", *power_cap_w);
  } else {
    std::snprintf(buf, sizeof buf, "uncapped");
  }
  return buf;
}

}  // namespace exaeff::gpusim
