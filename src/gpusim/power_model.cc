#include "gpusim/power_model.h"

#include <algorithm>
#include <cmath>

namespace exaeff::gpusim {

double PowerModel::steady_power(const KernelTiming& timing,
                                const KernelDesc& kernel) const {
  const double s = spec_.power_scale(timing.freq_mhz);
  // ALU power follows the *achieved* flop rate relative to the clock's
  // peak, not the busy time: a divergent kernel occupies the SIMDs with
  // mostly-idle lanes and draws correspondingly little (why the paper's
  // bounded-degree road networks peak at a mere ~205 W, Fig 7).
  const double peak_now =
      spec_.peak_flops_sustained * spec_.rel_clock(timing.freq_mhz);
  const double alu_activity =
      peak_now > 0.0 ? std::min(1.0, timing.achieved_flops / peak_now) : 0.0;
  const double u_alu_eff =
      alu_activity + kernel.latency_power_fraction * timing.u_lat;
  // HBM power follows the *achieved* traffic rate (bytes per second
  // relative to peak), not the busy fraction: a memory-bound kernel whose
  // bandwidth falls with the clock also moves fewer bytes per second and
  // draws less memory power — the behaviour behind the paper's Table III
  // VAI power column.  A static off-die share (refresh, PHY bias) draws
  // whenever the memory system is active at all, which is why deep power
  // caps are breached rather than met.
  const double traffic_rel =
      std::min(1.0, timing.achieved_hbm_bw / spec_.hbm_bw);
  const double activity = timing.u_hbm > 0.0 ? 1.0 : 0.0;
  const double offdie =
      spec_.coef_hbm_offdie_w *
      (spec_.hbm_static_fraction * activity * std::min(1.0, timing.u_hbm) +
       (1.0 - spec_.hbm_static_fraction) * traffic_rel);

  double p = spec_.idle_power_w;
  p += s * (spec_.coef_alu_w * u_alu_eff + spec_.coef_l2_w * timing.u_l2 +
            spec_.coef_hbm_ondie_w * traffic_rel);
  p += offdie;
  p += spec_.coef_interact_w * s * alu_activity * traffic_rel;
  // Steady power never exceeds the boost ceiling; transients above TDP are
  // produced by the trace layer, not the steady model.
  return std::clamp(p, spec_.idle_power_w, spec_.boost_power_w);
}

double PowerModel::power_at(const KernelDesc& kernel, double f_mhz,
                            double fabric_factor) const {
  const KernelTiming t = exec_.timing(kernel, f_mhz, fabric_factor);
  return steady_power(t, kernel);
}

double PowerModel::energy_at(const KernelDesc& kernel, double f_mhz) const {
  const KernelTiming t = exec_.timing(kernel, f_mhz);
  return steady_power(t, kernel) * t.time_s;
}

CapSolution PowerCapController::solve(const KernelDesc& kernel,
                                      double cap_w) const {
  EXAEFF_REQUIRE(cap_w > 0.0, "power cap must be positive");
  kernel.validate();

  CapSolution sol;
  // Fast path: unconstrained at f_max.
  const double p_max = model_.power_at(kernel, spec_.f_max_mhz);
  if (p_max <= cap_w) {
    sol.freq_mhz = spec_.f_max_mhz;
    sol.power_w = p_max;
    return sol;
  }

  // The power-cap DPM loop will not push the clock below its floor (on
  // real parts the firmware's lowest performance state sits well above
  // the lowest *user-settable* clock).
  const double f_floor = std::max(spec_.cap_f_floor_mhz, spec_.f_min_mhz);
  const double p_min = model_.power_at(kernel, f_floor);
  if (p_min <= cap_w) {
    // Stage 1: the engine clock alone can satisfy the cap.  P(f) is
    // monotonically non-decreasing in f (every term grows with the clock
    // or stays flat), so bisect for the highest admissible clock.
    double lo = f_floor;          // feasible
    double hi = spec_.f_max_mhz;  // infeasible
    for (int iter = 0; iter < 64 && hi - lo > 0.5 * spec_.f_step_mhz;
         ++iter) {
      const double mid = 0.5 * (lo + hi);
      if (model_.power_at(kernel, mid) <= cap_w) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    const double f = spec_.clamp_frequency(lo);
    sol.freq_mhz = f;
    sol.power_w = model_.power_at(kernel, f);
    // Quantization may push power a hair over the cap; step down if so.
    if (sol.power_w > cap_w && f - spec_.f_step_mhz >= f_floor) {
      sol.freq_mhz = f - spec_.f_step_mhz;
      sol.power_w = model_.power_at(kernel, sol.freq_mhz);
    }
    return sol;
  }

  // Stage 2: even the DPM clock floor exceeds the cap — HBM-side power is
  // beyond the clock's authority.  Firmware falls back to throttling the
  // memory fabric, down to its hardware floor.  Power is non-decreasing
  // in the fabric factor, so bisect; if the floor still exceeds the cap,
  // the cap is *breached* and the device simply runs hot (the paper's
  // Fig 6(d) 140 W / 200 W curves).
  sol.freq_mhz = f_floor;
  const double p_floor = model_.power_at(kernel, f_floor, spec_.fabric_floor);
  if (p_floor > cap_w) {
    sol.fabric_factor = spec_.fabric_floor;
    sol.power_w = p_floor;
    sol.breached = true;
    return sol;
  }
  double lo_g = spec_.fabric_floor;  // feasible
  double hi_g = 1.0;                 // infeasible
  for (int iter = 0; iter < 48 && hi_g - lo_g > 1e-4; ++iter) {
    const double mid = 0.5 * (lo_g + hi_g);
    if (model_.power_at(kernel, f_floor, mid) <= cap_w) {
      lo_g = mid;
    } else {
      hi_g = mid;
    }
  }
  sol.fabric_factor = lo_g;
  sol.power_w = model_.power_at(kernel, f_floor, lo_g);
  return sol;
}

}  // namespace exaeff::gpusim
