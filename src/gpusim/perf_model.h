// exaeff/gpusim/perf_model.h
//
// Roofline execution model.  Given a device, a kernel demand description,
// and an engine clock, produces the kernel's runtime, the per-engine
// utilizations the power model consumes, and the achieved rates the
// roofline plots report (Fig 4).
//
// Model structure (validated against the paper's observations):
//   t_compute = flops * divergence / (peak_sustained * f/f_max)
//   t_hbm     = hbm_bytes / (hbm_bw * (1 - beta + beta * f/f_max))
//   t_l2      = l2_bytes  / (l2_bw * f/f_max)
//   t_lat     = latency_s * (f_max/f)^latency_exp
//   T         = max(t_compute, t_hbm, t_l2) + t_lat
// The throughput phases overlap perfectly (classic roofline); the latency
// phase does not overlap (synchronization, transfers, launch gaps).
#pragma once

#include "gpusim/device_spec.h"
#include "gpusim/kernel.h"

namespace exaeff::gpusim {

/// Timing and utilization result for one kernel at one clock.
struct KernelTiming {
  double freq_mhz = 0.0;       ///< clock this timing was computed at
  double fabric_factor = 1.0;  ///< HBM bandwidth fraction applied
  double time_s = 0.0;         ///< total wall time

  double t_compute_s = 0.0;  ///< ALU-limited time
  double t_hbm_s = 0.0;      ///< HBM-limited time
  double t_l2_s = 0.0;       ///< L2-limited time
  double t_latency_s = 0.0;  ///< non-overlapped latency time

  double u_alu = 0.0;  ///< ALU busy fraction of T
  double u_hbm = 0.0;  ///< HBM busy fraction of T
  double u_l2 = 0.0;   ///< L2 busy fraction of T
  double u_lat = 0.0;  ///< latency-bound fraction of T

  double achieved_flops = 0.0;   ///< flop/s over the whole run
  double achieved_hbm_bw = 0.0;  ///< B/s over the whole run
  double achieved_l2_bw = 0.0;   ///< B/s over the whole run

  /// The engine whose roof the kernel is pressing against.
  enum class Bound { kCompute, kHbm, kL2, kLatency };
  Bound bound = Bound::kCompute;
};

/// Stateless roofline execution model for a fixed device.
class ExecutionModel {
 public:
  explicit ExecutionModel(const DeviceSpec& spec) : spec_(spec) {
    spec_.validate();
  }

  /// Computes timing/utilization at engine clock `f_mhz` (clamped to the
  /// device's supported range).  `fabric_factor` in (0, 1] scales the
  /// achievable HBM bandwidth (firmware fabric throttling under a
  /// breached power cap); 1 means no throttling.
  [[nodiscard]] KernelTiming timing(const KernelDesc& kernel, double f_mhz,
                                    double fabric_factor = 1.0) const;

  /// Effective HBM bandwidth at clock f for a kernel with the given
  /// issue-boundedness (exposed for tests and plots).
  [[nodiscard]] double effective_hbm_bw(double f_mhz, double beta) const;

  [[nodiscard]] const DeviceSpec& spec() const { return spec_; }

 private:
  DeviceSpec spec_;
};

}  // namespace exaeff::gpusim
