#include "gpusim/perf_model.h"

#include <algorithm>
#include <cmath>

namespace exaeff::gpusim {

double ExecutionModel::effective_hbm_bw(double f_mhz, double beta) const {
  const double rel = spec_.rel_clock(spec_.clamp_frequency(f_mhz));
  // Issue-boundedness scales bandwidth with the clock per kernel; below
  // the fabric knee, even occupancy-bound streams lose bandwidth because
  // the on-die transport cannot keep HBM saturated.
  const double fabric =
      std::min(1.0, rel / std::max(spec_.fabric_min_rel_clock, 1e-9));
  return spec_.hbm_bw * (1.0 - beta + beta * rel) * fabric;
}

KernelTiming ExecutionModel::timing(const KernelDesc& kernel, double f_mhz,
                                    double fabric_factor) const {
  kernel.validate();
  EXAEFF_REQUIRE(fabric_factor > 0.0 && fabric_factor <= 1.0,
                 "fabric_factor must be in (0, 1]");
  const double f = spec_.clamp_frequency(f_mhz);
  const double rel = spec_.rel_clock(f);

  KernelTiming t;
  t.freq_mhz = f;
  t.fabric_factor = fabric_factor;

  const double peak_flops = spec_.peak_flops_sustained * rel;
  t.t_compute_s =
      kernel.flops > 0.0 ? kernel.flops * kernel.divergence / peak_flops : 0.0;
  t.t_hbm_s = kernel.hbm_bytes > 0.0
                  ? kernel.hbm_bytes /
                        (effective_hbm_bw(f, kernel.issue_boundedness) *
                         fabric_factor)
                  : 0.0;
  t.t_l2_s = kernel.l2_bytes > 0.0 ? kernel.l2_bytes / (spec_.l2_bw * rel) : 0.0;
  t.t_latency_s =
      kernel.latency_s > 0.0
          ? kernel.latency_s * std::pow(1.0 / rel, kernel.latency_exp)
          : 0.0;

  const double throughput_time =
      std::max({t.t_compute_s, t.t_hbm_s, t.t_l2_s});
  t.time_s = throughput_time + t.t_latency_s;

  if (t.time_s > 0.0) {
    t.u_alu = t.t_compute_s / t.time_s;
    t.u_hbm = t.t_hbm_s / t.time_s;
    t.u_l2 = t.t_l2_s / t.time_s;
    t.u_lat = t.t_latency_s / t.time_s;
    t.achieved_flops = kernel.flops / t.time_s;
    t.achieved_hbm_bw = kernel.hbm_bytes / t.time_s;
    t.achieved_l2_bw = kernel.l2_bytes / t.time_s;
  }

  // Classify the binding roof (latency wins when it dominates wall time).
  if (t.t_latency_s >= throughput_time) {
    t.bound = KernelTiming::Bound::kLatency;
  } else if (t.t_compute_s >= t.t_hbm_s && t.t_compute_s >= t.t_l2_s) {
    t.bound = KernelTiming::Bound::kCompute;
  } else if (t.t_hbm_s >= t.t_l2_s) {
    t.bound = KernelTiming::Bound::kHbm;
  } else {
    t.bound = KernelTiming::Bound::kL2;
  }
  return t;
}

}  // namespace exaeff::gpusim
