// exaeff/gpusim/control_api.h
//
// A device-control facade in the style of ROCm-SMI / Variorum / GEOPM's
// platform IO: sticky cap state, sensor reads, and guard rails.  The
// simulator itself is purely functional (run(kernel, policy)); real
// power-management software instead talks to a *stateful* device — set a
// cap, launch work, read sensors, clear the cap.  DeviceControl provides
// that contract on top of the simulator so runtime tools (src/agent) and
// user code exercise the same call shapes they would on hardware.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "gpusim/simulator.h"

namespace exaeff::gpusim {

/// Stateful control interface for one simulated GCD.
class DeviceControl {
 public:
  explicit DeviceControl(const DeviceSpec& spec)
      : sim_(spec), rng_(0xD0C5) {}
  DeviceControl(const DeviceSpec& spec, std::uint64_t sensor_seed)
      : sim_(spec), rng_(sensor_seed) {}

  // --- cap management (rocm-smi --setsclk / --setpoweroverdrive) -------
  /// Sets the engine-clock cap; clamped to the supported range.
  /// Returns the actually-applied value.
  double set_frequency_cap(double mhz);

  /// Sets the sustained power cap.  Values below the device's breach
  /// floor are accepted (hardware accepts them too) but will be
  /// breached under memory-heavy load.  Throws on non-positive input.
  double set_power_cap(double watts);

  /// Clears both caps (back to default performance state).
  void reset_caps();

  [[nodiscard]] std::optional<double> frequency_cap_mhz() const {
    return policy_.freq_cap_mhz;
  }
  [[nodiscard]] std::optional<double> power_cap_w() const {
    return policy_.power_cap_w;
  }

  // --- execution --------------------------------------------------------
  /// Runs a kernel under the currently-set caps and records the outcome
  /// in the device's sensor history.
  RunResult launch(const KernelDesc& kernel);

  // --- sensors (rocm-smi --showpower etc.) -------------------------------
  /// Instantaneous power of the most recent launch's steady state, with
  /// sensor noise; idle power when nothing has run yet.
  [[nodiscard]] double read_power_w();

  /// Engine clock the last launch settled at (device max when idle).
  [[nodiscard]] double read_frequency_mhz() const;

  /// Accumulated energy over all launches, joules.
  [[nodiscard]] double energy_counter_j() const { return energy_j_; }

  /// True when the last launch could not honor the power cap.
  [[nodiscard]] bool cap_breached() const { return last_breached_; }

  /// Count of launches so far.
  [[nodiscard]] std::size_t launch_count() const { return launches_; }

  [[nodiscard]] const DeviceSpec& spec() const { return sim_.spec(); }

 private:
  GpuSimulator sim_;
  Rng rng_;
  PowerPolicy policy_;
  double last_power_w_ = 0.0;
  double last_freq_mhz_ = 0.0;
  double energy_j_ = 0.0;
  bool last_breached_ = false;
  std::size_t launches_ = 0;
};

}  // namespace exaeff::gpusim
