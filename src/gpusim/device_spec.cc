#include "gpusim/device_spec.h"

#include <algorithm>
#include <cmath>

namespace exaeff::gpusim {

double DeviceSpec::clamp_frequency(double f_mhz) const {
  const double clamped = std::clamp(f_mhz, f_min_mhz, f_max_mhz);
  if (f_step_mhz <= 0.0) return clamped;
  const double steps = std::round((clamped - f_min_mhz) / f_step_mhz);
  return std::min(f_max_mhz, f_min_mhz + steps * f_step_mhz);
}

DeviceSpec mi250x_gcd() {
  DeviceSpec spec;  // defaults are the MI250X GCD calibration
  spec.validate();
  return spec;
}

DeviceSpec nextgen_gcd() {
  DeviceSpec spec;
  spec.name = "NextGen-GCD";
  // Clocks: wider dynamic range, higher ceiling.
  spec.f_min_mhz = 500.0;
  spec.f_max_mhz = 2100.0;
  spec.cap_f_floor_mhz = 900.0;
  // Compute/memory: ~2x compute, ~2.6x HBM bandwidth (HBM3-class),
  // double the L2.  The ridge moves slightly left (more bandwidth per
  // flop), enlarging the memory-intensive savings region.
  spec.peak_flops_theoretical = 45.0e12;
  spec.peak_flops_sustained = 13.1e12;
  spec.hbm_bytes = 128.0 * 1024.0 * 1024.0 * 1024.0;
  spec.hbm_bw = 4.2e12;
  spec.l2_bytes = 32.0 * 1024.0 * 1024.0;
  spec.l2_bw = 16.0e12;
  // Power: higher TDP, and a larger clock-independent share (more HBM
  // stacks) — the structural reason frequency capping saves relatively
  // less dynamic power on newer parts.
  spec.idle_power_w = 110.0;
  spec.tdp_w = 760.0;
  spec.boost_power_w = 840.0;
  spec.coef_alu_w = 400.0;
  spec.coef_hbm_offdie_w = 290.0;
  spec.coef_hbm_ondie_w = 130.0;
  spec.coef_l2_w = 95.0;
  spec.coef_interact_w = -175.0;
  spec.validate();
  return spec;
}

}  // namespace exaeff::gpusim
