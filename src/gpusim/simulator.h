// exaeff/gpusim/simulator.h
//
// GpuSimulator ties the execution model, power model and cap controller
// together: it "runs" a kernel (or phase sequence) under a PowerPolicy and
// reports runtime, energy and steady power, optionally synthesizing the
// noisy sampled power trace that a 2-second out-of-band sensor would see
// (ramp transient at kernel start, AR(1) measurement/workload noise, and
// short boost excursions above TDP for near-TDP workloads).
#pragma once

#include <vector>

#include "common/rng.h"
#include "gpusim/device_spec.h"
#include "gpusim/kernel.h"
#include "gpusim/perf_model.h"
#include "gpusim/policy.h"
#include "gpusim/power_model.h"

namespace exaeff::gpusim {

/// Outcome of running one kernel under one policy.
struct RunResult {
  double time_s = 0.0;         ///< wall time to solution
  double energy_j = 0.0;       ///< energy to solution
  double avg_power_w = 0.0;    ///< energy / time
  double freq_mhz = 0.0;       ///< steady engine clock the run settled at
  bool cap_breached = false;   ///< power cap unattainable even at f_min
  KernelTiming timing;         ///< execution-model detail at the settled clock
};

/// One sampled point of a synthesized power trace.
struct TracePoint {
  double t_s = 0.0;       ///< sample time from run start
  double power_w = 0.0;   ///< instantaneous device power
  double freq_mhz = 0.0;  ///< instantaneous engine clock
};

/// Trace-synthesis tuning (defaults model Frontier's 2 s sensors).
struct TraceOptions {
  double dt_s = 2.0;             ///< sensor sampling period
  double ramp_tau_s = 1.5;       ///< power ramp time constant at kernel start
  double noise_stddev_w = 6.0;   ///< AR(1) noise magnitude
  double noise_rho = 0.6;        ///< AR(1) correlation between samples
  bool enable_boost = true;      ///< allow transient >TDP samples
};

/// Simulates one GCD.
class GpuSimulator {
 public:
  explicit GpuSimulator(const DeviceSpec& spec)
      : spec_(spec), exec_(spec), power_(spec), cap_ctrl_(spec) {}

  /// Analytic steady-state run: settles the clock per the policy, then
  /// reports runtime/energy.  Deterministic, no trace.
  [[nodiscard]] RunResult run(const KernelDesc& kernel,
                              const PowerPolicy& policy) const;

  /// As `run`, but also synthesizes the sampled power trace a 2 s sensor
  /// would record, including the start-of-run ramp, correlated noise and
  /// boost spikes.  Energy in the result integrates the *trace* so it is
  /// consistent with what telemetry would report.
  [[nodiscard]] RunResult run_traced(const KernelDesc& kernel,
                                     const PowerPolicy& policy, Rng& rng,
                                     std::vector<TracePoint>& trace,
                                     const TraceOptions& opts = {}) const;

  /// Resolves the steady clock for a kernel under a policy.
  [[nodiscard]] CapSolution settle(const KernelDesc& kernel,
                                   const PowerPolicy& policy) const;

  [[nodiscard]] const DeviceSpec& spec() const { return spec_; }
  [[nodiscard]] const ExecutionModel& execution_model() const { return exec_; }
  [[nodiscard]] const PowerModel& power_model() const { return power_; }

 private:
  DeviceSpec spec_;
  ExecutionModel exec_;
  PowerModel power_;
  PowerCapController cap_ctrl_;
};

}  // namespace exaeff::gpusim
