// exaeff/gpusim/phase_run.h
//
// Multi-phase execution: real applications are sequences of kernels with
// different demands (the paper's Fig 9 modality comes from exactly this).
// run_sequence() executes a phase list under one policy and aggregates
// time/energy, with per-phase detail for analysis; run_sequence_traced()
// additionally synthesizes the continuous sensor trace across phases.
#pragma once

#include <vector>

#include "gpusim/simulator.h"

namespace exaeff::gpusim {

/// Per-phase outcome within a sequence run.
struct PhaseResult {
  RunResult run;
  double start_s = 0.0;  ///< wall-clock offset of the phase start
};

/// Aggregate outcome of a phase sequence.
struct SequenceResult {
  double time_s = 0.0;
  double energy_j = 0.0;
  double avg_power_w = 0.0;
  bool any_cap_breached = false;
  std::vector<PhaseResult> phases;
};

/// Runs `kernels` back-to-back under `policy` (steady-state analytic).
[[nodiscard]] SequenceResult run_sequence(
    const GpuSimulator& sim, const std::vector<KernelDesc>& kernels,
    const PowerPolicy& policy);

/// As run_sequence, but also produces the continuous sampled trace the
/// telemetry stack would observe across all phases.
[[nodiscard]] SequenceResult run_sequence_traced(
    const GpuSimulator& sim, const std::vector<KernelDesc>& kernels,
    const PowerPolicy& policy, Rng& rng, std::vector<TracePoint>& trace,
    const TraceOptions& options = {});

}  // namespace exaeff::gpusim
