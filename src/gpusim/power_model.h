// exaeff/gpusim/power_model.h
//
// Calibrated steady-state power model of a GCD, plus the firmware
// power-cap controller that inverts it.
//
//   P(f, u) = P_idle
//           + s(f) * (A * u_alu_eff + L * u_l2 + D * u_hbm)
//           + M(g) * u_hbm
//           + X * s(f) * u_alu * u_hbm
//
// where s(f) = (f/f0)(V(f)/V(f0))^2 is the classic dynamic-power scale,
// u_alu_eff adds a small residual-activity term for latency-bound time,
// D is the on-die transport cost of HBM traffic (follows the engine
// clock — this is why memory-bound power still drops 15-25% under deep
// frequency caps, Table III "MB"), M(g) is the off-die HBM+PHY power,
// which does NOT follow the engine clock and only partially follows
// fabric throttling g (static share persists — why deep power caps are
// *breached*, Fig 6(d)), and X < 0 models shared-rail sub-additivity so
// that only simultaneous ALU+HBM saturation approaches TDP (AI = 4).
#pragma once

#include "gpusim/device_spec.h"
#include "gpusim/kernel.h"
#include "gpusim/perf_model.h"

namespace exaeff::gpusim {

/// Steady-state power model over the device's utilization vector.
class PowerModel {
 public:
  explicit PowerModel(const DeviceSpec& spec) : spec_(spec), exec_(spec) {
    spec_.validate();
  }

  /// Steady power (watts) for a kernel timing computed at timing.freq_mhz.
  [[nodiscard]] double steady_power(const KernelTiming& timing,
                                    const KernelDesc& kernel) const;

  /// Convenience: evaluate the execution model then the power model.
  /// `fabric_factor` in (0, 1] applies firmware fabric throttling.
  [[nodiscard]] double power_at(const KernelDesc& kernel, double f_mhz,
                                double fabric_factor = 1.0) const;

  /// Energy to solution (joules) at a fixed clock.
  [[nodiscard]] double energy_at(const KernelDesc& kernel, double f_mhz) const;

  [[nodiscard]] const DeviceSpec& spec() const { return spec_; }
  [[nodiscard]] const ExecutionModel& execution_model() const { return exec_; }

 private:
  DeviceSpec spec_;
  ExecutionModel exec_;
};

/// Result of the power-cap controller's steady-state solve.
struct CapSolution {
  double freq_mhz = 0.0;       ///< clock the controller settles at
  double fabric_factor = 1.0;  ///< HBM bandwidth fraction imposed
  double power_w = 0.0;        ///< steady power at that operating point
  bool breached = false;       ///< true when the cap remains unattainable
};

/// Firmware power-cap controller.  The only actuator the firmware has is
/// the engine clock, so the controller finds the highest supported clock
/// whose steady power fits under the cap.  When HBM-dominated power
/// exceeds the cap even at f_min, the cap is breached and the device runs
/// at f_min anyway — matching the measured 140 W / 200 W breach behaviour.
class PowerCapController {
 public:
  explicit PowerCapController(const DeviceSpec& spec)
      : spec_(spec), model_(spec) {}

  /// Steady-state solve for one kernel under `cap_w` (watts).
  [[nodiscard]] CapSolution solve(const KernelDesc& kernel,
                                  double cap_w) const;

  [[nodiscard]] const PowerModel& power_model() const { return model_; }

 private:
  DeviceSpec spec_;
  PowerModel model_;
};

}  // namespace exaeff::gpusim
