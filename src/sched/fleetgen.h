// exaeff/sched/fleetgen.h
//
// Synthetic campaign generator: produces the scheduler log and the
// out-of-band telemetry stream for a multi-week fleet of jobs — the
// stand-in for the paper's three months of Frontier production data.
//
// Generation is two-stage and fully deterministic from the seed:
//   1. generate_schedule() draws jobs (domain, size bin, node count,
//      duration) and packs them onto the fleet with an earliest-free
//      allocator, yielding a SchedulerLog with per-node allocations.
//   2. generate_telemetry() walks each job's per-GCD phase sequence and
//      emits 15 s power records (steady phase power + AR(1) sensor noise
//      + boost excursions for near-TDP phases) into a JobSampleSink.
//
// The telemetry is emitted *joined* (sample + owning job) for efficiency;
// the unjoined path — raw samples joined via SchedulerLog::job_at — is
// exercised by the integration tests to validate that both agree.
#pragma once

#include <array>
#include <memory>
#include <span>

#include "cluster/system_config.h"
#include "common/rng.h"
#include "sched/log.h"
#include "telemetry/sample.h"
#include "workloads/app_profile.h"

namespace exaeff::exec {
class ThreadPool;
}  // namespace exaeff::exec

namespace exaeff::sched {

/// Receiver of joined telemetry (sample plus the job it belongs to).
///
/// Batch contract (mirrors telemetry::TelemetrySink): producers may
/// deliver a contiguous span of one job's records via on_job_batch().
/// The defaults loop over the per-record virtuals, so sinks that only
/// implement those observe the identical record sequence — batching
/// must never change observable output.  Spans are valid only for the
/// duration of the call.
class JobSampleSink {
 public:
  virtual ~JobSampleSink() = default;
  virtual void on_job_sample(const telemetry::GcdSample& sample,
                             const Job& job) = 0;
  /// Optional node-level channel (CPU power etc.).
  virtual void on_node_sample(const telemetry::NodeSample& /*sample*/) {}

  /// Batch delivery of samples that all belong to `job`.
  virtual void on_job_batch(std::span<const telemetry::GcdSample> samples,
                            const Job& job) {
    for (const telemetry::GcdSample& s : samples) on_job_sample(s, job);
  }
  virtual void on_node_batch(std::span<const telemetry::NodeSample> samples) {
    for (const telemetry::NodeSample& s : samples) on_node_sample(s);
  }
};

/// Factory/merger of worker-local sinks for the parallel telemetry
/// path.  Each chunk of jobs writes into its own shard, and shards are
/// folded back in ascending job-chunk order, so the merged result is
/// byte-identical for any thread count (see exec/thread_pool.h).
///
/// make_shard() is called concurrently from pool workers and must be
/// thread-safe; merge_shard() is called serially, in chunk order.
class JobSinkShards {
 public:
  virtual ~JobSinkShards() = default;
  [[nodiscard]] virtual std::unique_ptr<JobSampleSink> make_shard() const = 0;
  virtual void merge_shard(std::unique_ptr<JobSampleSink> shard) = 0;
};

/// Campaign parameters.
struct CampaignConfig {
  cluster::SystemConfig system = cluster::frontier_scaled(64);
  double duration_s = 14.0 * units::kDay;
  double telemetry_window_s = 15.0;
  std::uint64_t seed = 0xF50;

  double sched_gap_s = 90.0;        ///< node turnaround between jobs
  double min_job_duration_s = 900;  ///< shortest job drawn

  // Telemetry noise (per 15 s record).
  double noise_stddev_w = 7.0;
  double noise_rho = 0.5;

  // Boost excursions: probability that a 15 s record of a near-TDP phase
  // catches a boost, and the mean extra watts of the excursion.
  double boost_sample_probability = 0.50;
  double boost_extra_w = 40.0;

  bool emit_node_samples = false;  ///< also synthesize CPU/node channels

  void validate() const;
};

/// Per-domain generation weights: share of GPU-hours and size-bin mix.
struct DomainTraits {
  double hour_weight = 0.1;  ///< target share of campaign GPU-hours
  std::array<double, kSizeBinCount> bin_hour_share = {0.25, 0.30, 0.25,
                                                      0.12, 0.08};
};

/// Deterministic synthetic-campaign generator.
class FleetGenerator {
 public:
  /// `library` must outlive the generator.
  FleetGenerator(CampaignConfig config,
                 const workloads::ProfileLibrary& library);

  /// Stage 1: draw and pack jobs.  Returns an indexed SchedulerLog.
  [[nodiscard]] SchedulerLog generate_schedule() const;

  /// Stage 2: synthesize per-GCD telemetry for every job into `sink`.
  void generate_telemetry(const SchedulerLog& log, JobSampleSink& sink) const;

  /// Parallel stage 2: jobs are chunked across `pool`, each chunk
  /// emitting into its own shard from `shards`, which are merged back
  /// in job-index order.  Every job derives its stream from
  /// root.split(job_id), so the shard contents — and therefore the
  /// merged artifact — are byte-identical to the serial overload for
  /// any thread count.
  void generate_telemetry(const SchedulerLog& log, JobSinkShards& shards,
                          exec::ThreadPool& pool) const;

  /// Stage 2 restricted to the job-index range [begin, end) — the
  /// checkpoint/resume building block (exaeff::run).  Every job derives
  /// its stream from root.split(job_id) exactly as the full overloads
  /// do, so emitting a range into its own sink and folding the sinks in
  /// ascending range order is byte-identical to one full pass.
  void generate_telemetry(const SchedulerLog& log, std::size_t begin,
                          std::size_t end, JobSampleSink& sink) const;

  /// Profile used for a domain's applications.
  [[nodiscard]] const workloads::AppProfile& profile_for(
      ScienceDomain d) const;

  /// Default hour-share weights tuned so the campaign's modal region
  /// occupancy approximates the paper's Table IV.
  [[nodiscard]] static std::array<DomainTraits, kDomainCount>
  default_domain_traits();

  [[nodiscard]] const CampaignConfig& config() const { return config_; }

 private:
  CampaignConfig config_;
  const workloads::ProfileLibrary& library_;
  std::array<DomainTraits, kDomainCount> traits_;
  SchedulingPolicy policy_;
};

}  // namespace exaeff::sched
