#include "sched/log.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <istream>
#include <ostream>

#include "common/csv.h"
#include "common/error.h"

namespace exaeff::sched {

namespace {
double to_double(const std::string& s, std::size_t line) {
  double v = 0.0;
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || p != s.data() + s.size()) {
    throw ParseError("bad numeric field in scheduler CSV: '" + s + "'",
                     line);
  }
  if (!std::isfinite(v)) {
    throw ParseError("non-finite field in scheduler CSV: '" + s + "'",
                     line);
  }
  return v;
}

std::uint64_t to_u64(const std::string& s, std::size_t line) {
  std::uint64_t v = 0;
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || p != s.data() + s.size()) {
    throw ParseError("bad integer field in scheduler CSV: '" + s + "'",
                     line);
  }
  return v;
}
}  // namespace

void SchedulerLog::add_job(Job job) {
  EXAEFF_REQUIRE(job.end_s > job.begin_s, "job must have positive duration");
  EXAEFF_REQUIRE(job.nodes.size() == job.num_nodes,
                 "job node list must match num_nodes");
  jobs_.push_back(std::move(job));
  indexed_ = false;
}

void SchedulerLog::build_index(std::uint32_t total_nodes) {
  node_index_.assign(total_nodes, {});
  for (std::size_t j = 0; j < jobs_.size(); ++j) {
    for (std::uint32_t n : jobs_[j].nodes) {
      EXAEFF_REQUIRE(n < total_nodes, "job references node beyond system");
      node_index_[n].push_back(Span{jobs_[j].begin_s, jobs_[j].end_s, j});
    }
  }
  for (auto& spans : node_index_) {
    std::sort(spans.begin(), spans.end(),
              [](const Span& a, const Span& b) { return a.begin_s < b.begin_s; });
    for (std::size_t i = 1; i < spans.size(); ++i) {
      EXAEFF_REQUIRE(spans[i].begin_s >= spans[i - 1].end_s - 1e-9,
                     "overlapping jobs on one node");
    }
  }
  indexed_ = true;
}

std::optional<std::size_t> SchedulerLog::job_at(std::uint32_t node,
                                                double t) const {
  EXAEFF_REQUIRE(indexed_, "call build_index() before job_at()");
  if (node >= node_index_.size()) return std::nullopt;
  const auto& spans = node_index_[node];
  // Last span with begin <= t.
  auto it = std::upper_bound(
      spans.begin(), spans.end(), t,
      [](double tt, const Span& s) { return tt < s.begin_s; });
  if (it == spans.begin()) return std::nullopt;
  --it;
  if (t >= it->begin_s && t < it->end_s) return it->job_index;
  return std::nullopt;
}

double SchedulerLog::total_gpu_hours(std::size_t gcds_per_node) const {
  double total = 0.0;
  for (const auto& j : jobs_) total += j.gpu_hours(gcds_per_node);
  return total;
}

void SchedulerLog::save_csv(std::ostream& os) const {
  CsvWriter w(os);
  w.write_row({"job_id", "project_id", "num_nodes", "begin_s", "end_s",
               "nodes"});
  for (const auto& j : jobs_) {
    std::string nodes;
    for (std::size_t i = 0; i < j.nodes.size(); ++i) {
      if (i) nodes += ' ';
      nodes += std::to_string(j.nodes[i]);
    }
    w.write_row({std::to_string(j.job_id), j.project_id,
                 std::to_string(j.num_nodes), std::to_string(j.begin_s),
                 std::to_string(j.end_s), nodes});
  }
}

SchedulerLog SchedulerLog::load_csv(std::istream& is,
                                    const SchedulingPolicy& policy) {
  SchedulerLog log;
  CsvReader r(is);
  std::vector<std::string> cells;
  bool header = true;
  while (r.read_row(cells)) {
    const std::size_t line = r.row_line();
    if (header) {
      header = false;
      continue;
    }
    if (cells.size() != 6) {
      throw ParseError("scheduler CSV rows must have 6 fields, got " +
                           std::to_string(cells.size()),
                       line);
    }
    Job j;
    j.job_id = to_u64(cells[0], line);
    j.project_id = cells[1];
    j.domain = domain_from_project_id(j.project_id);
    const std::uint64_t num_nodes = to_u64(cells[2], line);
    if (num_nodes == 0 || num_nodes > 0xFFFFFFFFULL) {
      throw ParseError("scheduler CSV num_nodes out of range", line);
    }
    j.num_nodes = static_cast<std::uint32_t>(num_nodes);
    j.begin_s = to_double(cells[3], line);
    j.end_s = to_double(cells[4], line);
    if (j.end_s <= j.begin_s) {
      throw ParseError("scheduler CSV job has non-positive duration", line);
    }
    j.bin = policy.bin_of(j.num_nodes);
    // Parse the space-separated node list.
    const std::string& ns = cells[5];
    std::size_t pos = 0;
    while (pos < ns.size()) {
      std::size_t next = ns.find(' ', pos);
      if (next == std::string::npos) next = ns.size();
      const std::uint64_t node = to_u64(ns.substr(pos, next - pos), line);
      if (node > 0xFFFFFFFFULL) {
        throw ParseError("scheduler CSV node id out of range", line);
      }
      j.nodes.push_back(static_cast<std::uint32_t>(node));
      pos = next + 1;
    }
    if (j.nodes.size() != j.num_nodes) {
      throw ParseError("scheduler CSV node list does not match num_nodes",
                       line);
    }
    log.add_job(std::move(j));
  }
  return log;
}

}  // namespace exaeff::sched
