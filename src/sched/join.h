// exaeff/sched/join.h
//
// The degradation-tolerant telemetry <-> job join.  Raw telemetry carries
// no workload metadata (paper §III-A), so job/domain analysis joins each
// sample against the scheduler log's per-node allocation records.  On
// clean data every sample lands in exactly one job; on production data
// samples go unmatched (truncated scheduler logs, clock skew, idle-window
// glitches) and jobs lose telemetry (dropout, node outages).  join()
// tolerates both: unmatched samples are counted instead of crashing the
// pipeline, and every job reports its telemetry coverage — the fraction
// of the records it should have produced that actually arrived.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sched/fleetgen.h"
#include "sched/log.h"
#include "telemetry/sample.h"

namespace exaeff::sched {

/// Telemetry coverage of one job.
struct JobCoverage {
  std::uint64_t expected = 0;  ///< records a clean stream would contain
  std::uint64_t observed = 0;  ///< records that actually joined

  [[nodiscard]] double coverage() const {
    return expected > 0 ? static_cast<double>(observed) /
                              static_cast<double>(expected)
                        : 1.0;
  }
};

/// Outcome of a join pass.
struct JoinResult {
  std::uint64_t matched = 0;    ///< samples attributed to a job
  std::uint64_t unmatched = 0;  ///< samples with no owning job (tolerated)
  std::vector<JobCoverage> jobs;  ///< index-aligned with log.jobs()

  /// Expected-weighted mean coverage across jobs; 1 when the log is empty.
  [[nodiscard]] double mean_coverage() const;
  /// Jobs whose coverage is below `floor`.
  [[nodiscard]] std::size_t jobs_below(double floor) const;
};

/// Number of per-GCD records a clean 15 s stream of `job` contains
/// (matches the fleet generator's emission grid exactly).
[[nodiscard]] std::uint64_t expected_gcd_samples(const Job& job,
                                                 double window_s,
                                                 std::size_t gcds_per_node);

/// Sum of expected_gcd_samples over the whole log.
[[nodiscard]] std::uint64_t expected_gcd_samples(const SchedulerLog& log,
                                                 double window_s,
                                                 std::size_t gcds_per_node);

/// Joins `samples` against `log` (which must be indexed).  Matched
/// samples are forwarded to `sink` (when non-null) with their owning job;
/// unmatched samples are dropped and counted.  Per-job expected counts
/// use `window_s` and `gcds_per_node`.
[[nodiscard]] JoinResult join_telemetry(
    const SchedulerLog& log, std::span<const telemetry::GcdSample> samples,
    double window_s, std::size_t gcds_per_node,
    JobSampleSink* sink = nullptr);

}  // namespace exaeff::sched
