#include "sched/queue_sim.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>

#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sched/policy.h"

namespace exaeff::sched {

BatchScheduler::BatchScheduler(std::uint32_t total_nodes,
                               QueueDiscipline discipline)
    : total_nodes_(total_nodes), discipline_(discipline) {
  EXAEFF_REQUIRE(total_nodes >= 1, "scheduler needs at least one node");
}

namespace {

struct Running {
  double end_s;
  std::uint32_t num_nodes;
  std::vector<std::uint32_t> nodes;
  bool operator>(const Running& other) const { return end_s > other.end_s; }
};

/// Free-node pool handing out the lowest ids first (deterministic).
class NodePool {
 public:
  explicit NodePool(std::uint32_t n) {
    free_.resize(n);
    for (std::uint32_t i = 0; i < n; ++i) free_[i] = n - 1 - i;  // stack
  }
  [[nodiscard]] std::uint32_t available() const {
    return static_cast<std::uint32_t>(free_.size());
  }
  std::vector<std::uint32_t> take(std::uint32_t count) {
    std::vector<std::uint32_t> out(free_.end() - count, free_.end());
    free_.resize(free_.size() - count);
    std::sort(out.begin(), out.end());
    return out;
  }
  void give_back(const std::vector<std::uint32_t>& nodes) {
    free_.insert(free_.end(), nodes.rbegin(), nodes.rend());
    // Keep the stack roughly sorted so low ids go out first again.
    std::sort(free_.begin(), free_.end(), std::greater<>());
  }

 private:
  std::vector<std::uint32_t> free_;  // stack: back = next out
};

}  // namespace

QueueOutcome BatchScheduler::run(std::vector<QueuedJob> submissions) const {
  EXAEFF_TRACE_SPAN("queue_sim.run");
  obs::Histogram* wait_hist = nullptr;
  if (obs::metrics_enabled()) {
    wait_hist = &obs::MetricsRegistry::global().histogram(
        "exaeff_queue_wait_seconds", "Distribution of job queue waits", {},
        /*lo=*/1.0, /*hi=*/1e6, /*bucket_count=*/20);
  }
  for (const auto& j : submissions) {
    EXAEFF_REQUIRE(j.num_nodes >= 1 && j.num_nodes <= total_nodes_,
                   "job node count out of range");
    EXAEFF_REQUIRE(j.actual_runtime_s > 0.0 &&
                       j.actual_runtime_s <= j.requested_walltime_s,
                   "job runtime must be positive and within its request");
  }
  std::sort(submissions.begin(), submissions.end(),
            [](const QueuedJob& a, const QueuedJob& b) {
              if (a.submit_s != b.submit_s) return a.submit_s < b.submit_s;
              return a.job_id < b.job_id;
            });

  QueueOutcome outcome;
  const SchedulingPolicy policy(total_nodes_);
  NodePool pool(total_nodes_);
  std::priority_queue<Running, std::vector<Running>, std::greater<>>
      running;
  std::deque<const QueuedJob*> queue;
  std::size_t next_submit = 0;
  double now = 0.0;
  double wait_sum = 0.0;
  double busy_node_seconds = 0.0;

  auto start_job = [&](const QueuedJob& j) {
    Job job;
    job.job_id = j.job_id;
    job.project_id = j.project_id.empty()
                         ? make_project_id(j.domain, 1)
                         : j.project_id;
    job.domain = j.domain;
    job.num_nodes = j.num_nodes;
    job.bin = policy.bin_of(j.num_nodes);
    job.begin_s = now;
    job.end_s = now + j.actual_runtime_s;
    job.nodes = pool.take(j.num_nodes);
    running.push(Running{job.end_s, job.num_nodes, job.nodes});
    busy_node_seconds += j.actual_runtime_s * j.num_nodes;
    const double wait = now - j.submit_s;
    if (wait_hist) wait_hist->observe(wait);
    wait_sum += wait;
    outcome.max_wait_s = std::max(outcome.max_wait_s, wait);
    outcome.makespan_s = std::max(outcome.makespan_s, job.end_s);
    outcome.log.add_job(std::move(job));
  };

  // Predicts when `needed` nodes will be free, given the running set:
  // walks the end-time heap (copy) accumulating released nodes.  Also
  // reports how many nodes running jobs will have released by then.
  struct Shadow {
    double time;
    std::uint32_t released;
  };
  auto shadow_time = [&](std::uint32_t needed) {
    std::uint32_t avail = pool.available();
    std::uint32_t released = 0;
    if (avail >= needed) return Shadow{now, 0};
    auto copy = running;
    while (!copy.empty()) {
      const Running r = copy.top();
      copy.pop();
      avail += r.num_nodes;
      released += r.num_nodes;
      if (avail >= needed) return Shadow{r.end_s, released};
    }
    return Shadow{now, released};  // unreachable for valid jobs
  };

  auto try_dispatch = [&]() {
    // Head-of-queue jobs start as soon as they fit (FCFS).
    while (!queue.empty() && queue.front()->num_nodes <= pool.available()) {
      const QueuedJob* j = queue.front();
      queue.pop_front();
      start_job(*j);
    }
    if (queue.empty() || discipline_ == QueueDiscipline::kFcfs) return;

    // EASY backfill: the head gets a reservation at its shadow time;
    // later jobs may start now if they fit in the free nodes AND either
    // finish (by their *requested* walltime) before the shadow time or
    // leave the head's reservation intact.
    const QueuedJob* head = queue.front();
    const Shadow sh = shadow_time(head->num_nodes);
    const double shadow = sh.time;
    // "Extra" nodes: currently-free nodes the head will not need at its
    // reservation because completing jobs cover it.  A backfill job that
    // fits within the extras can run arbitrarily long.
    const std::uint32_t head_from_free =
        head->num_nodes > sh.released ? head->num_nodes - sh.released : 0;
    const std::uint32_t extra = pool.available() > head_from_free
                                    ? pool.available() - head_from_free
                                    : 0;
    for (auto it = queue.begin() + 1; it != queue.end();) {
      const QueuedJob* j = *it;
      const bool fits_now = j->num_nodes <= pool.available();
      const bool ends_before_shadow =
          now + j->requested_walltime_s <= shadow + 1e-9;
      const bool within_extra = j->num_nodes <= extra;
      if (fits_now && (ends_before_shadow || within_extra)) {
        it = queue.erase(it);
        start_job(*j);
        ++outcome.backfilled;
      } else {
        ++it;
      }
    }
  };

  while (next_submit < submissions.size() || !running.empty() ||
         !queue.empty()) {
    // Next event: a submission or a completion.
    const double t_submit = next_submit < submissions.size()
                                ? submissions[next_submit].submit_s
                                : 1e300;
    const double t_finish = !running.empty() ? running.top().end_s : 1e300;
    EXAEFF_REQUIRE(t_submit < 1e300 || t_finish < 1e300,
                   "scheduler deadlock: queued jobs but no events");
    now = std::min(t_submit, t_finish);

    while (!running.empty() && running.top().end_s <= now + 1e-12) {
      pool.give_back(running.top().nodes);
      running.pop();
    }
    while (next_submit < submissions.size() &&
           submissions[next_submit].submit_s <= now + 1e-12) {
      queue.push_back(&submissions[next_submit]);
      ++next_submit;
    }
    try_dispatch();
  }

  if (!submissions.empty()) {
    outcome.mean_wait_s = wait_sum / static_cast<double>(submissions.size());
  }
  if (outcome.makespan_s > 0.0) {
    outcome.utilization = busy_node_seconds /
                          (static_cast<double>(total_nodes_) *
                           outcome.makespan_s);
  }
  outcome.log.build_index(total_nodes_);
  if (obs::metrics_enabled()) {
    auto& reg = obs::MetricsRegistry::global();
    const char* disc =
        discipline_ == QueueDiscipline::kFcfs ? "fcfs" : "easy";
    reg.counter("exaeff_queue_jobs_total",
                "Jobs run through the batch scheduler",
                {{"discipline", disc}})
        .inc(outcome.log.size());
    reg.counter("exaeff_queue_backfilled_total",
                "Jobs started out of order by EASY backfill",
                {{"discipline", disc}})
        .inc(outcome.backfilled);
    reg.gauge("exaeff_sim_time_seconds",
              "Simulated campaign time advanced")
        .set(outcome.makespan_s);
  }
  return outcome;
}

std::vector<QueuedJob> synthesize_submissions(std::uint32_t total_nodes,
                                              double horizon_s,
                                              double load_factor,
                                              std::uint64_t seed) {
  EXAEFF_REQUIRE(horizon_s > 0.0, "horizon must be positive");
  EXAEFF_REQUIRE(load_factor > 0.0 && load_factor <= 3.0,
                 "load factor must be in (0, 3]");
  const SchedulingPolicy policy(total_nodes);
  Rng rng(seed);

  // Arrival rate chosen so expected demand ~ load_factor x capacity.
  const double mean_nodes = 0.18 * total_nodes;  // typical mixed queue
  const double mean_runtime = 3.0 * units::kHour;
  const double jobs_per_second =
      load_factor * total_nodes / (mean_nodes * mean_runtime);

  std::vector<QueuedJob> out;
  double t = 0.0;
  std::uint64_t id = 5000000;
  const auto domains = all_domains();
  while (true) {
    t += rng.exponential(1.0 / jobs_per_second);
    if (t >= horizon_s) break;
    QueuedJob j;
    j.job_id = id++;
    j.domain = domains[rng.uniform_index(domains.size())];
    j.project_id = make_project_id(j.domain, 1);
    j.submit_s = t;
    // Size: heavier tail toward small jobs, occasional big ones.
    const double u = rng.uniform();
    const SizeBin bin = u < 0.45   ? SizeBin::kE
                        : u < 0.75 ? SizeBin::kD
                        : u < 0.92 ? SizeBin::kC
                        : u < 0.985 ? SizeBin::kB
                                    : SizeBin::kA;
    const auto [lo, hi] = policy.node_range(bin);
    const std::uint32_t span = hi >= lo ? hi - lo + 1 : 1;
    j.num_nodes = static_cast<std::uint32_t>(lo + rng.uniform_index(span));
    const double wall = SchedulingPolicy::max_walltime_s(
        policy.bin_of(j.num_nodes));
    // Users over-request: actual runtime is a fraction of the request.
    j.requested_walltime_s = std::clamp(
        wall * rng.uniform(0.4, 1.0), 600.0, wall);
    j.actual_runtime_s =
        std::max(300.0, j.requested_walltime_s * rng.uniform(0.3, 0.95));
    out.push_back(std::move(j));
  }
  return out;
}

}  // namespace exaeff::sched
