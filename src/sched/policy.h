// exaeff/sched/policy.h
//
// Frontier's batch scheduling policy (paper Table VII): jobs are binned
// A-E by node count, with per-bin walltime limits.  For scaled-down
// fleets the bin boundaries are expressed as fractions of the system so
// the *mix* of job sizes is preserved.
//
//   bin   nodes (of 9408)    fraction        max walltime
//   A     5645 - 9408        >= 0.600         12 h
//   B     1882 - 5644        >= 0.200         12 h
//   C      184 - 1881        >= 0.0196        12 h
//   D       92 -  183        >= 0.0098         6 h
//   E        1 -   91        <  0.0098         2 h
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "common/error.h"
#include "common/units.h"

namespace exaeff::sched {

/// Job-size bin per the Frontier scheduling policy.
enum class SizeBin : std::uint8_t { kA, kB, kC, kD, kE };

inline constexpr std::size_t kSizeBinCount = 5;

[[nodiscard]] constexpr std::array<SizeBin, kSizeBinCount> all_size_bins() {
  return {SizeBin::kA, SizeBin::kB, SizeBin::kC, SizeBin::kD, SizeBin::kE};
}

[[nodiscard]] constexpr std::string_view bin_name(SizeBin b) {
  switch (b) {
    case SizeBin::kA: return "A";
    case SizeBin::kB: return "B";
    case SizeBin::kC: return "C";
    case SizeBin::kD: return "D";
    case SizeBin::kE: return "E";
  }
  return "?";
}

/// Scheduling policy: size-bin thresholds as fractions of the machine
/// plus per-bin walltime limits.
class SchedulingPolicy {
 public:
  /// Constructs the Frontier Table VII policy for a system of
  /// `total_nodes` nodes (fractional thresholds, so any scale works).
  explicit SchedulingPolicy(std::uint32_t total_nodes);

  /// The bin a job of `num_nodes` nodes falls into.
  [[nodiscard]] SizeBin bin_of(std::uint32_t num_nodes) const;

  /// Inclusive node-count range [lo, hi] of a bin at this system scale.
  [[nodiscard]] std::pair<std::uint32_t, std::uint32_t> node_range(
      SizeBin b) const;

  /// Maximum walltime for a bin, seconds.
  [[nodiscard]] static double max_walltime_s(SizeBin b);

  [[nodiscard]] std::uint32_t total_nodes() const { return total_nodes_; }

 private:
  std::uint32_t total_nodes_;
  std::array<std::uint32_t, kSizeBinCount> lower_bound_{};  // per-bin lo
};

}  // namespace exaeff::sched
