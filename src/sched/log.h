// exaeff/sched/log.h
//
// The scheduler log and the telemetry join.  Telemetry records carry only
// (time, node, gcd, power) — "telemetry data lacks metadata information on
// workloads, projects, and other fields" (paper §III-A) — so job-level and
// domain-level analysis requires joining against the per-node-per-job
// allocation records from the scheduler, which is what this class provides.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <vector>

#include "sched/job.h"

namespace exaeff::sched {

/// Append-only job log with a per-node time index for the telemetry join.
class SchedulerLog {
 public:
  /// Adds a job; nodes/begin/end must be populated.
  void add_job(Job job);

  [[nodiscard]] const std::vector<Job>& jobs() const { return jobs_; }
  [[nodiscard]] std::size_t size() const { return jobs_.size(); }

  /// Builds the per-node interval index; call after the last add_job.
  void build_index(std::uint32_t total_nodes);

  /// Index of the job running on `node` at time `t`, or nullopt when the
  /// node is idle.  Requires build_index().  Jobs never overlap on a node.
  [[nodiscard]] std::optional<std::size_t> job_at(std::uint32_t node,
                                                  double t) const;

  /// Total GPU-hours across all jobs.
  [[nodiscard]] double total_gpu_hours(std::size_t gcds_per_node) const;

  /// CSV round trip: job_id,project_id,num_nodes,begin_s,end_s,nodes...
  void save_csv(std::ostream& os) const;
  static SchedulerLog load_csv(std::istream& is,
                               const SchedulingPolicy& policy);

 private:
  struct Span {
    double begin_s;
    double end_s;
    std::size_t job_index;
  };

  std::vector<Job> jobs_;
  std::vector<std::vector<Span>> node_index_;  // per node, sorted by begin
  bool indexed_ = false;
};

}  // namespace exaeff::sched
