#include "sched/policy.h"

#include <algorithm>
#include <cmath>

namespace exaeff::sched {

namespace {
// Table VII lower bounds as fractions of the 9408-node machine.
constexpr double kFracA = 5645.0 / 9408.0;
constexpr double kFracB = 1882.0 / 9408.0;
constexpr double kFracC = 184.0 / 9408.0;
constexpr double kFracD = 92.0 / 9408.0;
}  // namespace

SchedulingPolicy::SchedulingPolicy(std::uint32_t total_nodes)
    : total_nodes_(total_nodes) {
  EXAEFF_REQUIRE(total_nodes >= 8,
                 "policy needs at least 8 nodes to form distinct bins");
  const double n = static_cast<double>(total_nodes);
  auto at_least_1 = [](double v) {
    return std::max<std::uint32_t>(1, static_cast<std::uint32_t>(
                                          std::ceil(v)));
  };
  lower_bound_[0] = at_least_1(kFracA * n);  // A
  lower_bound_[1] = at_least_1(kFracB * n);  // B
  lower_bound_[2] = at_least_1(kFracC * n);  // C
  lower_bound_[3] = at_least_1(kFracD * n);  // D
  lower_bound_[4] = 1;                       // E
  // Guarantee strictly decreasing bounds on tiny systems.
  for (std::size_t i = 1; i < lower_bound_.size(); ++i) {
    lower_bound_[i] =
        std::min(lower_bound_[i], lower_bound_[i - 1] > 1
                                      ? lower_bound_[i - 1] - 1
                                      : 1U);
  }
}

SizeBin SchedulingPolicy::bin_of(std::uint32_t num_nodes) const {
  EXAEFF_REQUIRE(num_nodes >= 1 && num_nodes <= total_nodes_,
                 "job size out of machine range");
  if (num_nodes >= lower_bound_[0]) return SizeBin::kA;
  if (num_nodes >= lower_bound_[1]) return SizeBin::kB;
  if (num_nodes >= lower_bound_[2]) return SizeBin::kC;
  if (num_nodes >= lower_bound_[3]) return SizeBin::kD;
  return SizeBin::kE;
}

std::pair<std::uint32_t, std::uint32_t> SchedulingPolicy::node_range(
    SizeBin b) const {
  switch (b) {
    case SizeBin::kA: return {lower_bound_[0], total_nodes_};
    case SizeBin::kB: return {lower_bound_[1], lower_bound_[0] - 1};
    case SizeBin::kC: return {lower_bound_[2], lower_bound_[1] - 1};
    case SizeBin::kD: return {lower_bound_[3], lower_bound_[2] - 1};
    case SizeBin::kE: return {1, std::max(1U, lower_bound_[3] - 1)};
  }
  throw Error("unknown size bin");
}

double SchedulingPolicy::max_walltime_s(SizeBin b) {
  switch (b) {
    case SizeBin::kA:
    case SizeBin::kB:
    case SizeBin::kC:
      return 12.0 * units::kHour;
    case SizeBin::kD:
      return 6.0 * units::kHour;
    case SizeBin::kE:
      return 2.0 * units::kHour;
  }
  throw Error("unknown size bin");
}

}  // namespace exaeff::sched
