// exaeff/sched/job.h
//
// Job metadata, mirroring what the paper extracts from the SLURM
// scheduler log (Table II (b)/(c)): job id, project id (whose prefix is
// the science domain), node count, begin/end time and the concrete node
// allocation (the per-node-per-job records needed to join telemetry).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sched/domain.h"
#include "sched/policy.h"

namespace exaeff::sched {

/// One batch job as recorded by the scheduler.
struct Job {
  std::uint64_t job_id = 0;
  std::string project_id;       ///< e.g. "CHM007"; prefix = science domain
  ScienceDomain domain = ScienceDomain::kChemistry;
  SizeBin bin = SizeBin::kE;
  std::uint32_t num_nodes = 0;
  double begin_s = 0.0;
  double end_s = 0.0;
  std::vector<std::uint32_t> nodes;  ///< allocated node ids

  [[nodiscard]] double duration_s() const { return end_s - begin_s; }

  /// GPU-hours consumed (8 GCDs per node on Frontier).
  [[nodiscard]] double gpu_hours(std::size_t gcds_per_node) const {
    return duration_s() * static_cast<double>(num_nodes) *
           static_cast<double>(gcds_per_node) / 3600.0;
  }
};

}  // namespace exaeff::sched
