// exaeff/sched/domain.h
//
// Science-domain taxonomy.  On Frontier the paper derives the science
// domain of a job from the prefix of its project_id in the SLURM log
// (§V-A); the synthetic campaign mirrors that: project ids are formed as
// "<DOMAIN-CODE><number>" and the analysis recovers the domain from the
// prefix, exercising the same join path the paper used.
#pragma once

#include <array>
#include <string>
#include <string_view>

namespace exaeff::sched {

/// Synthetic science domains.  Each maps to a workload archetype chosen
/// so the per-domain power distributions reproduce the Fig 9 modalities.
enum class ScienceDomain : std::uint8_t {
  kChemistry,   ///< compute-heavy (Fig 9 (a) style)
  kMaterials,   ///< compute-heavy/moderate (Fig 9 (b) style)
  kBiology,     ///< latency/IO-bound (Fig 9 (c) style)
  kClimate,     ///< latency/IO-bound (Fig 9 (d) style)
  kCfd,         ///< memory-bandwidth-bound (Fig 9 (e) style)
  kFusion,      ///< memory-bound (Fig 9 (f) style)
  kAstro,       ///< multi-modal (Fig 9 (g) style)
  kNuclear,     ///< multi-modal bursty (Fig 9 (h) style)
  kPhysics,     ///< compute-moderate
  kCompSci,     ///< memory-latency-bound
};

inline constexpr std::size_t kDomainCount = 10;

/// All domains in declaration order.
[[nodiscard]] constexpr std::array<ScienceDomain, kDomainCount>
all_domains() {
  return {ScienceDomain::kChemistry, ScienceDomain::kMaterials,
          ScienceDomain::kBiology,   ScienceDomain::kClimate,
          ScienceDomain::kCfd,       ScienceDomain::kFusion,
          ScienceDomain::kAstro,     ScienceDomain::kNuclear,
          ScienceDomain::kPhysics,   ScienceDomain::kCompSci};
}

/// Three-letter project-id prefix for a domain ("CHM", "MAT", ...).
[[nodiscard]] std::string_view domain_code(ScienceDomain d);

/// Human-readable name ("Chemistry", ...).
[[nodiscard]] std::string_view domain_name(ScienceDomain d);

/// Recovers the domain from a project id's prefix; throws ParseError if
/// the prefix matches no known domain.
[[nodiscard]] ScienceDomain domain_from_project_id(std::string_view project);

/// Forms a project id from a domain and a project number.
[[nodiscard]] std::string make_project_id(ScienceDomain d, unsigned number);

}  // namespace exaeff::sched
