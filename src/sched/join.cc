#include "sched/join.h"

#include <cmath>

#include "common/error.h"
#include "obs/metrics.h"

namespace exaeff::sched {

double JoinResult::mean_coverage() const {
  std::uint64_t expected = 0;
  std::uint64_t observed = 0;
  for (const auto& j : jobs) {
    expected += j.expected;
    observed += j.observed;
  }
  return expected > 0
             ? static_cast<double>(observed) / static_cast<double>(expected)
             : 1.0;
}

std::size_t JoinResult::jobs_below(double floor) const {
  std::size_t n = 0;
  for (const auto& j : jobs) {
    if (j.coverage() < floor) ++n;
  }
  return n;
}

std::uint64_t expected_gcd_samples(const Job& job, double window_s,
                                   std::size_t gcds_per_node) {
  EXAEFF_REQUIRE(window_s > 0.0, "window must be positive");
  // The generator emits at window-aligned times tw in [ceil(begin/w)*w,
  // end); count those grid points without replaying the loop.
  const double first = std::ceil(job.begin_s / window_s) * window_s;
  if (first >= job.end_s) return 0;
  const auto windows = static_cast<std::uint64_t>(
      std::ceil((job.end_s - first) / window_s - 1e-9));
  return windows * job.num_nodes * gcds_per_node;
}

std::uint64_t expected_gcd_samples(const SchedulerLog& log, double window_s,
                                   std::size_t gcds_per_node) {
  std::uint64_t total = 0;
  for (const auto& j : log.jobs()) {
    total += expected_gcd_samples(j, window_s, gcds_per_node);
  }
  return total;
}

JoinResult join_telemetry(const SchedulerLog& log,
                          std::span<const telemetry::GcdSample> samples,
                          double window_s, std::size_t gcds_per_node,
                          JobSampleSink* sink) {
  JoinResult result;
  result.jobs.resize(log.size());
  for (std::size_t j = 0; j < log.size(); ++j) {
    result.jobs[j].expected =
        expected_gcd_samples(log.jobs()[j], window_s, gcds_per_node);
  }
  for (const auto& s : samples) {
    const auto job = log.job_at(s.node_id, s.t_s);
    if (!job) {
      ++result.unmatched;
      continue;
    }
    ++result.matched;
    ++result.jobs[*job].observed;
    if (sink != nullptr) sink->on_job_sample(s, log.jobs()[*job]);
  }
  if (obs::metrics_enabled()) {
    auto& reg = obs::MetricsRegistry::global();
    reg.counter("exaeff_join_matched_total",
                "Telemetry samples attributed to a job by the join")
        .inc(result.matched);
    if (result.unmatched > 0) {
      reg.counter("exaeff_join_unmatched_total",
                  "Telemetry samples with no owning job (tolerated)")
          .inc(result.unmatched);
    }
  }
  return result;
}

}  // namespace exaeff::sched
