#include "sched/domain.h"

#include <cstdio>

#include "common/error.h"

namespace exaeff::sched {

namespace {
struct DomainInfo {
  ScienceDomain domain;
  std::string_view code;
  std::string_view name;
};

constexpr std::array<DomainInfo, kDomainCount> kInfo = {{
    {ScienceDomain::kChemistry, "CHM", "Chemistry"},
    {ScienceDomain::kMaterials, "MAT", "Materials"},
    {ScienceDomain::kBiology, "BIO", "Biology"},
    {ScienceDomain::kClimate, "CLI", "Climate"},
    {ScienceDomain::kCfd, "CFD", "Fluid Dynamics"},
    {ScienceDomain::kFusion, "FUS", "Fusion"},
    {ScienceDomain::kAstro, "AST", "Astrophysics"},
    {ScienceDomain::kNuclear, "NUC", "Nuclear Physics"},
    {ScienceDomain::kPhysics, "PHY", "Physics"},
    {ScienceDomain::kCompSci, "CSC", "Computer Science"},
}};

const DomainInfo& info_of(ScienceDomain d) {
  for (const auto& i : kInfo) {
    if (i.domain == d) return i;
  }
  throw Error("unknown science domain enumerator");
}
}  // namespace

std::string_view domain_code(ScienceDomain d) { return info_of(d).code; }

std::string_view domain_name(ScienceDomain d) { return info_of(d).name; }

ScienceDomain domain_from_project_id(std::string_view project) {
  for (const auto& i : kInfo) {
    if (project.substr(0, i.code.size()) == i.code) return i.domain;
  }
  throw ParseError("project id '" + std::string(project) +
                   "' has no known science-domain prefix");
}

std::string make_project_id(ScienceDomain d, unsigned number) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%.*s%03u",
                static_cast<int>(domain_code(d).size()),
                domain_code(d).data(), number);
  return buf;
}

}  // namespace exaeff::sched
