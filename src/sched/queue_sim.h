// exaeff/sched/queue_sim.h
//
// Discrete-event batch-scheduler simulation: the SLURM-like substrate
// behind the paper's job log.  Jobs are *submitted* over time with a
// requested walltime; the scheduler places them FCFS with optional EASY
// backfilling (a later job may jump ahead only if it cannot delay the
// reserved start of the queue head).  The outcome is a SchedulerLog —
// the same artifact the fleet generator produces by packing — plus queue
// statistics, so scheduling policies can be compared on wait time and
// utilization.
#pragma once

#include <cstdint>
#include <vector>

#include "sched/log.h"

namespace exaeff::sched {

/// One submission to the batch queue.
struct QueuedJob {
  std::uint64_t job_id = 0;
  std::string project_id;
  ScienceDomain domain = ScienceDomain::kChemistry;
  std::uint32_t num_nodes = 0;
  double submit_s = 0.0;
  double requested_walltime_s = 0.0;  ///< user's limit request
  double actual_runtime_s = 0.0;      ///< true runtime (<= requested)
};

/// Scheduling discipline.
enum class QueueDiscipline {
  kFcfs,          ///< strict first-come-first-served
  kEasyBackfill,  ///< FCFS + EASY backfilling
};

/// Aggregate outcome of one simulation.
struct QueueOutcome {
  SchedulerLog log;
  double mean_wait_s = 0.0;
  double max_wait_s = 0.0;
  double makespan_s = 0.0;       ///< last job end
  double utilization = 0.0;      ///< busy node-seconds / (nodes x makespan)
  std::size_t backfilled = 0;    ///< jobs started ahead of queue order
};

/// Event-driven batch scheduler for a homogeneous fleet.
class BatchScheduler {
 public:
  BatchScheduler(std::uint32_t total_nodes, QueueDiscipline discipline);

  /// Schedules all submissions; submissions need not be sorted.
  /// Throws ConfigError on invalid jobs (zero nodes, runtime > request).
  [[nodiscard]] QueueOutcome run(std::vector<QueuedJob> submissions) const;

  [[nodiscard]] std::uint32_t total_nodes() const { return total_nodes_; }
  [[nodiscard]] QueueDiscipline discipline() const { return discipline_; }

 private:
  std::uint32_t total_nodes_;
  QueueDiscipline discipline_;
};

/// Draws a synthetic submission stream with the fleet generator's domain
/// mix: Poisson-ish arrivals over `horizon_s`, sizes by the Table VII
/// policy, runtimes a fraction of the requested walltime.
[[nodiscard]] std::vector<QueuedJob> synthesize_submissions(
    std::uint32_t total_nodes, double horizon_s, double load_factor,
    std::uint64_t seed);

}  // namespace exaeff::sched
