#include "sched/fleetgen.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/rng_lanes.h"
#include "exec/thread_pool.h"
#include "gpusim/power_model.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace exaeff::sched {

void CampaignConfig::validate() const {
  system.validate();
  EXAEFF_REQUIRE(duration_s > 0.0, "campaign duration must be positive");
  EXAEFF_REQUIRE(telemetry_window_s > 0.0, "telemetry window must be positive");
  EXAEFF_REQUIRE(min_job_duration_s > 0.0, "min job duration must be positive");
  EXAEFF_REQUIRE(noise_rho >= 0.0 && noise_rho < 1.0,
                 "noise correlation must be in [0, 1)");
  EXAEFF_REQUIRE(boost_sample_probability >= 0.0 &&
                     boost_sample_probability <= 1.0,
                 "boost probability must be in [0, 1]");
}

FleetGenerator::FleetGenerator(CampaignConfig config,
                               const workloads::ProfileLibrary& library)
    : config_(std::move(config)),
      library_(library),
      traits_(default_domain_traits()),
      policy_(static_cast<std::uint32_t>(config_.system.compute_nodes)) {
  config_.validate();
}

const workloads::AppProfile& FleetGenerator::profile_for(
    ScienceDomain d) const {
  switch (d) {
    case ScienceDomain::kChemistry: return library_.compute_heavy;
    case ScienceDomain::kMaterials: return library_.compute_moderate;
    case ScienceDomain::kBiology: return library_.latency_io;
    case ScienceDomain::kClimate: return library_.latency_network;
    case ScienceDomain::kCfd: return library_.memory_bandwidth;
    case ScienceDomain::kFusion: return library_.memory_bandwidth;
    case ScienceDomain::kAstro: return library_.multimodal_wide;
    case ScienceDomain::kNuclear: return library_.multimodal_burst;
    case ScienceDomain::kPhysics: return library_.compute_moderate;
    case ScienceDomain::kCompSci: return library_.memory_latency;
  }
  throw Error("unknown science domain");
}

std::array<DomainTraits, kDomainCount>
FleetGenerator::default_domain_traits() {
  // Hour weights tuned so the system-wide region occupancy lands near the
  // paper's Table IV (R1 ~30%, R2 ~50%, R3 ~20%, boost ~1%).  Size mixes
  // skew compute/memory domains toward large A/B/C jobs (leadership-scale
  // campaigns), latency domains toward smaller allocations — which is
  // what concentrates savings in large jobs (Fig 10).
  std::array<DomainTraits, kDomainCount> t{};
  auto set = [&t](ScienceDomain d, double w,
                  std::array<double, kSizeBinCount> bins) {
    t[static_cast<std::size_t>(d)] = DomainTraits{w, bins};
  };
  set(ScienceDomain::kChemistry, 0.06, {0.30, 0.32, 0.23, 0.09, 0.06});
  set(ScienceDomain::kMaterials, 0.04, {0.24, 0.30, 0.27, 0.11, 0.08});
  set(ScienceDomain::kBiology, 0.17, {0.10, 0.22, 0.33, 0.20, 0.15});
  set(ScienceDomain::kClimate, 0.10, {0.12, 0.25, 0.33, 0.18, 0.12});
  set(ScienceDomain::kCfd, 0.19, {0.30, 0.33, 0.24, 0.08, 0.05});
  set(ScienceDomain::kFusion, 0.14, {0.28, 0.32, 0.25, 0.09, 0.06});
  set(ScienceDomain::kAstro, 0.09, {0.22, 0.30, 0.28, 0.12, 0.08});
  set(ScienceDomain::kNuclear, 0.05, {0.18, 0.27, 0.30, 0.14, 0.11});
  set(ScienceDomain::kPhysics, 0.03, {0.22, 0.30, 0.28, 0.12, 0.08});
  set(ScienceDomain::kCompSci, 0.13, {0.16, 0.27, 0.32, 0.14, 0.11});
  return t;
}

SchedulerLog FleetGenerator::generate_schedule() const {
  EXAEFF_TRACE_SPAN("fleetgen.schedule");
  Rng rng(config_.seed);
  const auto total_nodes =
      static_cast<std::uint32_t>(config_.system.compute_nodes);

  // Domain selection: probability of *starting* a job in domain d is
  // proportional to hour_weight / E[gpu-hours per job of d], so realized
  // GPU-hour shares track the targets.
  std::array<double, kDomainCount> job_weight{};
  for (std::size_t d = 0; d < kDomainCount; ++d) {
    double expect_node_hours = 0.0;
    for (std::size_t b = 0; b < kSizeBinCount; ++b) {
      const auto bin = all_size_bins()[b];
      const auto [lo, hi] = policy_.node_range(bin);
      const double mean_nodes = 0.5 * (lo + hi);
      const double mean_dur = 0.55 * SchedulingPolicy::max_walltime_s(bin);
      expect_node_hours += traits_[d].bin_hour_share[b] * mean_nodes *
                           mean_dur;
    }
    job_weight[d] = expect_node_hours > 0.0
                        ? traits_[d].hour_weight / expect_node_hours
                        : 0.0;
  }

  // Per-domain bin selection weight: hour share / E[node-hours of a job
  // in that bin] gives the job-count mix that realizes the hour shares.
  std::array<std::array<double, kSizeBinCount>, kDomainCount> bin_weight{};
  for (std::size_t d = 0; d < kDomainCount; ++d) {
    for (std::size_t b = 0; b < kSizeBinCount; ++b) {
      const auto bin = all_size_bins()[b];
      const auto [lo, hi] = policy_.node_range(bin);
      const double mean_nodes = 0.5 * (lo + hi);
      const double mean_dur = 0.55 * SchedulingPolicy::max_walltime_s(bin);
      bin_weight[d][b] =
          traits_[d].bin_hour_share[b] / (mean_nodes * mean_dur);
    }
  }

  // Earliest-free packing.
  std::vector<double> free_at(total_nodes, 0.0);
  std::vector<std::uint32_t> order(total_nodes);
  SchedulerLog log;
  std::uint64_t next_job_id = 1000000;
  std::array<unsigned, kDomainCount> project_counter{};

  for (;;) {
    // Pick domain and size bin.
    const auto d = rng.categorical(job_weight.data(), job_weight.size());
    const auto domain = all_domains()[d];
    const auto b =
        rng.categorical(bin_weight[d].data(), bin_weight[d].size());
    const auto sampled_bin = all_size_bins()[b];
    const auto [lo, hi] = policy_.node_range(sampled_bin);
    // On small fleets adjacent bins can collapse (node_range may even be
    // empty); sample within the non-empty span and classify the job by
    // its realized node count, which is what the analysis joins on.
    const std::uint32_t span = hi >= lo ? hi - lo + 1 : 1;
    const auto num_nodes =
        static_cast<std::uint32_t>(lo + rng.uniform_index(span));
    const SizeBin bin = policy_.bin_of(num_nodes);

    // Duration: lognormal around ~55% of the walltime limit, clamped.
    const double wall = SchedulingPolicy::max_walltime_s(bin);
    const double mean_dur = 0.55 * wall;
    const double mu = std::log(mean_dur) - 0.5 * 0.5 * 0.5;
    const double duration = std::clamp(rng.lognormal(mu, 0.5),
                                       config_.min_job_duration_s, wall);

    // Allocate the num_nodes earliest-free nodes.
    std::iota(order.begin(), order.end(), 0U);
    std::partial_sort(order.begin(), order.begin() + num_nodes, order.end(),
                      [&free_at](std::uint32_t a, std::uint32_t c) {
                        return free_at[a] < free_at[c];
                      });
    double start = 0.0;
    for (std::uint32_t i = 0; i < num_nodes; ++i) {
      start = std::max(start, free_at[order[i]]);
    }
    start += config_.sched_gap_s;
    if (start >= config_.duration_s) break;

    Job job;
    job.job_id = next_job_id++;
    job.domain = domain;
    job.project_id = make_project_id(
        domain, 1 + (project_counter[d]++ % 7));  // a few projects/domain
    job.bin = bin;
    job.num_nodes = num_nodes;
    job.begin_s = start;
    job.end_s = std::min(start + duration, config_.duration_s);
    job.nodes.assign(order.begin(), order.begin() + num_nodes);
    std::sort(job.nodes.begin(), job.nodes.end());
    for (std::uint32_t n : job.nodes) free_at[n] = job.end_s;
    log.add_job(std::move(job));
  }

  log.build_index(total_nodes);
  if (obs::metrics_enabled()) {
    auto& reg = obs::MetricsRegistry::global();
    reg.counter("exaeff_jobs_placed_total",
                "Jobs placed by the fleet generator")
        .inc(log.size());
    reg.gauge("exaeff_sim_time_seconds",
              "Simulated campaign time advanced")
        .set(config_.duration_s);
  }
  return log;
}

namespace {

struct EmitTally {
  std::uint64_t gcd_samples = 0;
  std::uint64_t node_samples = 0;
  std::uint64_t phase_count = 0;
  std::uint64_t batches = 0;
  std::uint64_t batch_records = 0;

  EmitTally& operator+=(const EmitTally& o) {
    gcd_samples += o.gcd_samples;
    node_samples += o.node_samples;
    phase_count += o.phase_count;
    batches += o.batches;
    batch_records += o.batch_records;
    return *this;
  }
};

// Per-job telemetry synthesis, shared by the serial and sharded
// generate_telemetry paths.  Every job derives all of its randomness
// from root.split(job_id), so jobs can be emitted in any grouping — the
// stream each job sees is identical either way.  The emitter itself is
// single-threaded (reused phase/batch scratch); the parallel path
// constructs one per chunk.
//
// Hot-path structure: records for one (node, gcd) channel are written
// into a flat worker-local buffer — walked phase by phase so the steady
// power and near-TDP flag are loop constants (the steady power itself is
// already memoized once per phase in `phases_`, shared by every channel
// of the job) — and flushed with a single on_job_batch() call per
// channel instead of one virtual call per window.  Channels are filled
// kGcdLanes at a time where counts allow it — kGcdLanes independent RNG
// streams advanced in lockstep through PolarLanes8 (one full node's GCD
// channel set per group), with the normal transform deferred to a
// second pass over the accepted pairs.
// The record values and the RNG draw sequence are exactly those of the
// per-record path, so the output is byte-identical;
// `telemetry::batching_enabled()` selects the per-record fallback for
// cross-checking.
class JobEmitter {
 public:
  JobEmitter(const FleetGenerator& gen, const CampaignConfig& cfg)
      : gen_(gen),
        cfg_(cfg),
        spec_(cfg.system.node.gcd),
        power_model_(spec_),
        window_(cfg.telemetry_window_s),
        near_tdp_(0.85 * spec_.tdp_w),
        innovation_sd_(
            cfg.noise_stddev_w *
            std::sqrt(std::max(0.0, 1.0 - cfg.noise_rho * cfg.noise_rho))),
        root_(cfg.seed ^ 0x7E1E7E1EULL),
        batching_(telemetry::batching_enabled()) {}

  void emit(const Job& job, JobSampleSink& sink) {
    Rng job_rng = root_.split(job.job_id);

    // Phase schedule shared by all ranks of the job (bulk-synchronous).
    // power_at() is evaluated once per phase here and reused by every
    // (node x gcd) channel below — it is invariant across channels.
    const auto& profile = gen_.profile_for(job.domain);
    phases_.clear();
    double t = job.begin_s;
    while (t < job.end_s) {
      const auto sampled = profile.sample_phase(job_rng);
      const double steady =
          power_model_.power_at(sampled.kernel, spec_.f_max_mhz);
      const double end = std::min(t + sampled.nominal_duration_s, job.end_s);
      phases_.push_back(PhaseSpan{t, end, steady, steady > near_tdp_});
      t = end;
    }
    if (phases_.empty()) return;
    tally_.phase_count += phases_.size();

    const double first_window = std::ceil(job.begin_s / window_) * window_;
    const auto gcds =
        static_cast<std::uint16_t>(cfg_.system.node.gcds_per_node());
    // Window count, identical for every channel of the job — lets the
    // lane fills size their buffers once and write records by index.
    std::size_t total_windows = 0;
    for (double tc = first_window; tc < job.end_s; tc += window_) {
      ++total_windows;
    }

    // Nodes are walked in groups of kGcdLanes so the per-node CPU
    // channels can be drawn in lockstep too (one normal per window,
    // no data-dependent draws — the ideal lane shape).  Within a
    // group, every node's gcd channels flush first (in node order),
    // then the group's node channels (in node order): each stream's
    // internal order is exactly the per-record path's, and every
    // JobSampleSink consumer keeps disjoint state per stream, so the
    // changed gcd/node interleave cannot change any output.
    const auto& nodes = job.nodes;
    std::size_t ni = 0;
    if (cfg_.emit_node_samples) {
      for (; ni + kGcdLanes <= nodes.size(); ni += kGcdLanes) {
        for (int k = 0; k < kGcdLanes; ++k) {
          fill_node_gcds(job, sink, job_rng, nodes[ni + k], gcds,
                         first_window, total_windows);
        }
        fill_node_lanes(job, sink, job_rng, &nodes[ni], gcds, first_window,
                        total_windows);
      }
    }
    for (; ni < nodes.size(); ++ni) {
      fill_node_gcds(job, sink, job_rng, nodes[ni], gcds, first_window,
                     total_windows);
      if (cfg_.emit_node_samples) {
        fill_node_channel(job, sink, job_rng, nodes[ni], gcds, first_window);
      }
    }
  }

  [[nodiscard]] const EmitTally& tally() const { return tally_; }

 private:
  struct PhaseSpan {
    double begin_s;
    double end_s;
    double steady_w;
    bool near_tdp;
  };

  // One phase run inside a pre-drawn stretch: its steady power and how
  // many telemetry windows it spans.
  struct RunSeg {
    double steady_w;
    std::size_t count;
  };

  // How many gcd channels are drawn in lockstep.  Each lane owns an
  // independent RNG stream (the channel's own split), so the interleaved
  // draw chains carry no cross-lane data dependencies and the core
  // overlaps one lane's log/sqrt latency with the others'.
  static constexpr int kGcdLanes = 8;

  // Scalar fill for one (node, gcd) channel: walked phase by phase so
  // steady power and the near-TDP flag are loop constants, then flushed
  // as one batch.  Also the reference sequence the laned fill reproduces.
  void fill_gcd_channel(const Job& job, JobSampleSink& sink,
                        const Rng& job_rng, std::uint32_t node,
                        std::uint16_t g, double first_window) {
    const double rho = cfg_.noise_rho;
    const double boost_p = cfg_.boost_sample_probability;
    const double boost_w = cfg_.boost_extra_w;
    const double clamp_lo = spec_.idle_power_w * 0.97;
    const double clamp_hi = spec_.boost_power_w;
    const double job_end = job.end_s;

    Rng chan_rng =
        job_rng.split((static_cast<std::uint64_t>(node) << 8) | g);
    double noise = 0.0;
    gcd_batch_.clear();
    std::size_t phase_idx = 0;
    double tw = first_window;
    while (tw < job_end) {
      while (phase_idx + 1 < phases_.size() &&
             phases_[phase_idx].end_s <= tw) {
        ++phase_idx;
      }
      const PhaseSpan& ph = phases_[phase_idx];
      // All windows in [tw, run_end) belong to this phase; the last
      // phase (whose end is job_end by construction) absorbs any
      // float-edge leftovers exactly like the per-window walk did.
      const double run_end =
          phase_idx + 1 < phases_.size() ? ph.end_s : job_end;
      const double steady = ph.steady_w;
      if (ph.near_tdp) {
        for (; tw < run_end; tw += window_) {
          noise = rho * noise + chan_rng.normal(0.0, innovation_sd_);
          double p = steady + noise;
          if (chan_rng.bernoulli(boost_p)) {
            p += chan_rng.exponential(boost_w);
          }
          p = std::clamp(p, clamp_lo, clamp_hi);
          telemetry::GcdSample s;
          s.t_s = tw;
          s.node_id = node;
          s.gcd_index = g;
          s.power_w = static_cast<float>(p);
          gcd_batch_.push_back(s);
        }
      } else {
        for (; tw < run_end; tw += window_) {
          noise = rho * noise + chan_rng.normal(0.0, innovation_sd_);
          const double p = std::clamp(steady + noise, clamp_lo, clamp_hi);
          telemetry::GcdSample s;
          s.t_s = tw;
          s.node_id = node;
          s.gcd_index = g;
          s.power_w = static_cast<float>(p);
          gcd_batch_.push_back(s);
        }
      }
    }
    tally_.gcd_samples += gcd_batch_.size();
    flush_gcd(sink, job, gcd_batch_);
  }

  // All gcd channels of one node: lane groups first (kGcdLanes channels
  // drawn in lockstep), remainder through the scalar fill.  Channels
  // flush strictly in gcd order either way.
  void fill_node_gcds(const Job& job, JobSampleSink& sink,
                      const Rng& job_rng, std::uint32_t node,
                      std::uint16_t gcds, double first_window,
                      std::size_t total_windows) {
    std::uint16_t g = 0;
    for (; g + kGcdLanes <= gcds; g += kGcdLanes) {
      fill_gcd_lanes(job, sink, job_rng, node, g, first_window,
                     total_windows);
    }
    for (; g < gcds; ++g) {
      fill_gcd_channel(job, sink, job_rng, node, g, first_window);
    }
  }

  // Lockstep fill of channels [g0, g0 + kGcdLanes): the shared phase
  // schedule means every lane sees the same window-to-phase mapping, so
  // one walk drives all lanes.  Away from TDP a window draws exactly one
  // normal per lane, so whole phase runs pre-draw their accepted polar
  // pairs through PolarLanes8 and apply the transform as a second pass;
  // near TDP the boost draws make stream consumption data-dependent, so
  // those runs stay on the scalar per-lane loop.  Each lane consumes its
  // own channel stream in the channel's own order — values and sequence
  // are exactly the scalar fill's, and lanes flush in gcd order.
  void fill_gcd_lanes(const Job& job, JobSampleSink& sink,
                      const Rng& job_rng, std::uint32_t node,
                      std::uint16_t g0, double first_window,
                      std::size_t total_windows) {
    const double rho = cfg_.noise_rho;
    const double boost_p = cfg_.boost_sample_probability;
    const double boost_w = cfg_.boost_extra_w;
    const double clamp_lo = spec_.idle_power_w * 0.97;
    const double clamp_hi = spec_.boost_power_w;
    const double job_end = job.end_s;

    std::array<Rng, kGcdLanes> rng;
    std::array<double, kGcdLanes> noise{};
    std::array<telemetry::GcdSample*, kGcdLanes> out{};
    for (int l = 0; l < kGcdLanes; ++l) {
      const auto li = static_cast<std::size_t>(l);
      rng[li] = job_rng.split((static_cast<std::uint64_t>(node) << 8) |
                              static_cast<std::uint64_t>(g0 + l));
      lane_batches_[li].resize(total_windows);
      out[li] = lane_batches_[li].data();
    }
    std::size_t filled = 0;  // windows emitted so far, same in every lane
    std::size_t phase_idx = 0;
    double tw = first_window;
    while (tw < job_end) {
      while (phase_idx + 1 < phases_.size() &&
             phases_[phase_idx].end_s <= tw) {
        ++phase_idx;
      }
      const PhaseSpan& ph = phases_[phase_idx];
      const double run_end =
          phase_idx + 1 < phases_.size() ? ph.end_s : job_end;
      const double steady = ph.steady_w;
      if (ph.near_tdp) {
        for (; tw < run_end; tw += window_, ++filled) {
          for (int l = 0; l < kGcdLanes; ++l) {
            const auto li = static_cast<std::size_t>(l);
            noise[li] =
                rho * noise[li] + rng[li].normal(0.0, innovation_sd_);
            double p = steady + noise[li];
            if (rng[li].bernoulli(boost_p)) {
              p += rng[li].exponential(boost_w);
            }
            p = std::clamp(p, clamp_lo, clamp_hi);
            telemetry::GcdSample s;
            s.t_s = tw;
            s.node_id = node;
            s.gcd_index = static_cast<std::uint16_t>(g0 + l);
            s.power_w = static_cast<float>(p);
            out[li][filled] = s;
          }
        }
      } else {
        // Extend the pre-draw over every consecutive non-near-TDP phase
        // (phases average ~4 windows, so per-phase engine calls would
        // amortize poorly).  The count walk advances a cursor with the
        // very float additions the scalar loop would take, recording one
        // (steady, window count) segment per phase run; the per-lane
        // replay below retraces it.
        runs_.clear();
        std::size_t n = 0;
        double tc = tw;
        std::size_t pi = phase_idx;
        while (tc < job_end) {
          while (pi + 1 < phases_.size() && phases_[pi].end_s <= tc) {
            ++pi;
          }
          if (phases_[pi].near_tdp) break;
          const double seg_end =
              pi + 1 < phases_.size() ? phases_[pi].end_s : job_end;
          std::size_t c = 0;
          for (; tc < seg_end; tc += window_) ++c;
          runs_.push_back(RunSeg{phases_[pi].steady_w, c});
          n += c;
        }
        polar_u_.resize(kGcdLanes * n);
        polar_s_.resize(kGcdLanes * n);
        PolarLanes8 lanes(rng);
        lanes.generate(n, polar_u_.data(), polar_s_.data());
        lanes.extract(rng);
        for (int l = 0; l < kGcdLanes; ++l) {
          const auto li = static_cast<std::size_t>(l);
          double nz = noise[li];
          telemetry::GcdSample* dst = out[li] + filled;
          double t2 = tw;
          std::size_t w = 0;
          for (const RunSeg& seg : runs_) {
            const double seg_steady = seg.steady_w;
            for (std::size_t k = 0; k < seg.count; ++k, t2 += window_) {
              const double m =
                  polar_transform(polar_u_[kGcdLanes * w + li],
                                  polar_s_[kGcdLanes * w + li]);
              nz = rho * nz + (0.0 + innovation_sd_ * m);
              const double p =
                  std::clamp(seg_steady + nz, clamp_lo, clamp_hi);
              telemetry::GcdSample s;
              s.t_s = t2;
              s.node_id = node;
              s.gcd_index = static_cast<std::uint16_t>(g0 + l);
              s.power_w = static_cast<float>(p);
              dst[w] = s;
              ++w;
            }
          }
          noise[li] = nz;
        }
        filled += n;
        tw = tc;
        phase_idx = pi;
      }
    }
    for (int l = 0; l < kGcdLanes; ++l) {
      const auto li = static_cast<std::size_t>(l);
      tally_.gcd_samples += lane_batches_[li].size();
      flush_gcd(sink, job, lane_batches_[li]);
    }
  }

  // One node's CPU channel: one synthetic record per window, derived
  // from the mean GPU load of the job's phases on this node.  Scalar
  // reference path (also the lane-group remainder).
  void fill_node_channel(const Job& job, JobSampleSink& sink,
                         const Rng& job_rng, std::uint32_t node,
                         std::uint16_t gcds, double first_window) {
    const double job_end = job.end_s;
    Rng node_rng = job_rng.split(0xC0000000ULL | node);
    node_batch_.clear();
    std::size_t phase_idx = 0;
    double tw = first_window;
    while (tw < job_end) {
      while (phase_idx + 1 < phases_.size() &&
             phases_[phase_idx].end_s <= tw) {
        ++phase_idx;
      }
      const PhaseSpan& ph = phases_[phase_idx];
      const double run_end =
          phase_idx + 1 < phases_.size() ? ph.end_s : job_end;
      const double rel = std::clamp(
          (ph.steady_w - spec_.idle_power_w) /
              (spec_.tdp_w - spec_.idle_power_w),
          0.0, 1.0);
      const double gpu_w = static_cast<double>(gcds) * ph.steady_w;
      for (; tw < run_end; tw += window_) {
        const double cpu_util = std::clamp(
            0.15 + 0.55 * rel + node_rng.normal(0.0, 0.05), 0.0, 1.0);
        telemetry::NodeSample ns;
        ns.t_s = tw;
        ns.node_id = node;
        ns.cpu_power_w =
            static_cast<float>(cfg_.system.node.cpu.power(cpu_util));
        ns.node_input_w = static_cast<float>(
            ns.cpu_power_w + cfg_.system.node.other_power_w + gpu_w);
        node_batch_.push_back(ns);
      }
    }
    tally_.node_samples += node_batch_.size();
    flush_node(sink, node_batch_);
  }

  // CPU channels of kGcdLanes nodes in lockstep.  Every window draws
  // exactly one normal regardless of phase, so the whole job span
  // pre-draws in one generate() call; the transform pass then walks the
  // shared phase schedule per lane.  Values and per-stream order are
  // exactly fill_node_channel's.
  void fill_node_lanes(const Job& job, JobSampleSink& sink,
                       const Rng& job_rng, const std::uint32_t* group,
                       std::uint16_t gcds, double first_window,
                       std::size_t total_windows) {
    const double job_end = job.end_s;
    const std::size_t n = total_windows;
    if (n == 0) return;

    std::array<Rng, kGcdLanes> rng;
    for (int l = 0; l < kGcdLanes; ++l) {
      rng[static_cast<std::size_t>(l)] =
          job_rng.split(0xC0000000ULL | group[l]);
    }
    polar_u_.resize(kGcdLanes * n);
    polar_s_.resize(kGcdLanes * n);
    PolarLanes8 lanes(rng);
    lanes.generate(n, polar_u_.data(), polar_s_.data());

    for (int l = 0; l < kGcdLanes; ++l) {
      const auto li = static_cast<std::size_t>(l);
      const std::uint32_t node = group[li];
      auto& out = node_lane_batches_[li];
      out.clear();
      std::size_t phase_idx = 0;
      std::size_t w = 0;
      double tw = first_window;
      while (tw < job_end) {
        while (phase_idx + 1 < phases_.size() &&
               phases_[phase_idx].end_s <= tw) {
          ++phase_idx;
        }
        const PhaseSpan& ph = phases_[phase_idx];
        const double run_end =
            phase_idx + 1 < phases_.size() ? ph.end_s : job_end;
        const double rel = std::clamp(
            (ph.steady_w - spec_.idle_power_w) /
                (spec_.tdp_w - spec_.idle_power_w),
            0.0, 1.0);
        const double gpu_w = static_cast<double>(gcds) * ph.steady_w;
        for (; tw < run_end; tw += window_) {
          const double m = polar_transform(polar_u_[kGcdLanes * w + li],
                                           polar_s_[kGcdLanes * w + li]);
          ++w;
          const double cpu_util = std::clamp(
              0.15 + 0.55 * rel + (0.0 + 0.05 * m), 0.0, 1.0);
          telemetry::NodeSample ns;
          ns.t_s = tw;
          ns.node_id = node;
          ns.cpu_power_w =
              static_cast<float>(cfg_.system.node.cpu.power(cpu_util));
          ns.node_input_w = static_cast<float>(
              ns.cpu_power_w + cfg_.system.node.other_power_w + gpu_w);
          out.push_back(ns);
        }
      }
    }
    for (int l = 0; l < kGcdLanes; ++l) {
      const auto li = static_cast<std::size_t>(l);
      tally_.node_samples += node_lane_batches_[li].size();
      flush_node(sink, node_lane_batches_[li]);
    }
  }

  // Delivers a buffered channel.  The batch call and the per-record
  // fallback hand the sink the identical record sequence; only the call
  // shape differs.
  void flush_gcd(JobSampleSink& sink, const Job& job,
                 const std::vector<telemetry::GcdSample>& batch) {
    if (batch.empty()) return;
    if (batching_) {
      ++tally_.batches;
      tally_.batch_records += batch.size();
      sink.on_job_batch(batch, job);
    } else {
      for (const telemetry::GcdSample& s : batch) {
        sink.on_job_sample(s, job);
      }
    }
  }
  void flush_node(JobSampleSink& sink,
                  const std::vector<telemetry::NodeSample>& batch) {
    if (batch.empty()) return;
    if (batching_) {
      ++tally_.batches;
      tally_.batch_records += batch.size();
      sink.on_node_batch(batch);
    } else {
      for (const telemetry::NodeSample& s : batch) {
        sink.on_node_sample(s);
      }
    }
  }

  const FleetGenerator& gen_;
  const CampaignConfig& cfg_;
  const gpusim::DeviceSpec& spec_;
  gpusim::PowerModel power_model_;
  double window_;
  double near_tdp_;
  double innovation_sd_;
  Rng root_;
  bool batching_;
  std::vector<PhaseSpan> phases_;  // scratch reused across jobs
  std::vector<telemetry::GcdSample> gcd_batch_;   // scratch, one channel
  std::array<std::vector<telemetry::GcdSample>, kGcdLanes>
      lane_batches_;  // scratch, one lane group
  std::vector<telemetry::NodeSample> node_batch_;  // scratch, one node
  std::array<std::vector<telemetry::NodeSample>, kGcdLanes>
      node_lane_batches_;  // scratch, one node group
  std::vector<double> polar_u_, polar_s_;  // scratch, pre-drawn pairs
  std::vector<RunSeg> runs_;  // scratch, one pre-drawn stretch
  EmitTally tally_;
};

void publish_tally(const EmitTally& tally) {
  if (!obs::metrics_enabled()) return;
  auto& reg = obs::MetricsRegistry::global();
  reg.counter("exaeff_samples_total",
              "Telemetry samples synthesized by the pipeline")
      .inc(tally.gcd_samples + tally.node_samples);
  reg.counter("exaeff_fleetgen_gcd_samples_total",
              "Per-GCD power records emitted by fleetgen")
      .inc(tally.gcd_samples);
  reg.counter("exaeff_fleetgen_node_samples_total",
              "Node-level records emitted by fleetgen")
      .inc(tally.node_samples);
  reg.counter("exaeff_fleetgen_phases_total",
              "Application phases synthesized by fleetgen")
      .inc(tally.phase_count);
  if (tally.batches > 0) {
    reg.counter("exaeff_telemetry_batches_total",
                "Span-batched sink deliveries on the telemetry hot path")
        .inc(tally.batches);
    reg.counter("exaeff_telemetry_batch_records_total",
                "Telemetry records delivered through batched sink calls")
        .inc(tally.batch_records);
  }
}

}  // namespace

void FleetGenerator::generate_telemetry(const SchedulerLog& log,
                                        JobSampleSink& sink) const {
  EXAEFF_TRACE_SPAN("fleetgen.telemetry");
  // Hot loop: tally into plain locals, publish into the registry once at
  // the end so the per-sample path stays atomics-free.
  JobEmitter emitter(*this, config_);
  for (const Job& job : log.jobs()) emitter.emit(job, sink);
  publish_tally(emitter.tally());
}

void FleetGenerator::generate_telemetry(const SchedulerLog& log,
                                        std::size_t begin, std::size_t end,
                                        JobSampleSink& sink) const {
  EXAEFF_TRACE_SPAN("fleetgen.telemetry");
  const auto& jobs = log.jobs();
  EXAEFF_REQUIRE(begin <= end && end <= jobs.size(),
                 "generate_telemetry: job range out of bounds");
  JobEmitter emitter(*this, config_);
  for (std::size_t i = begin; i < end; ++i) emitter.emit(jobs[i], sink);
  publish_tally(emitter.tally());
}

void FleetGenerator::generate_telemetry(const SchedulerLog& log,
                                        JobSinkShards& shards,
                                        exec::ThreadPool& pool) const {
  EXAEFF_TRACE_SPAN("fleetgen.telemetry");
  const auto& jobs = log.jobs();

  struct ChunkOut {
    std::unique_ptr<JobSampleSink> sink;
    EmitTally tally;
  };
  // Chunk boundaries depend only on the job count (see
  // ThreadPool::chunk_grain), so the shard partition — and therefore the
  // merged output — is identical for any thread count.
  auto outs = pool.map_chunks(
      jobs.size(), exec::ThreadPool::chunk_grain(jobs.size()),
      [&](std::size_t begin, std::size_t end) {
        ChunkOut out;
        out.sink = shards.make_shard();
        JobEmitter emitter(*this, config_);
        for (std::size_t i = begin; i < end; ++i) {
          emitter.emit(jobs[i], *out.sink);
        }
        out.tally = emitter.tally();
        return out;
      });

  EmitTally total;
  for (auto& out : outs) {
    total += out.tally;
    shards.merge_shard(std::move(out.sink));
  }
  publish_tally(total);
}

}  // namespace exaeff::sched
