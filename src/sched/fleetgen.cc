#include "sched/fleetgen.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "exec/thread_pool.h"
#include "gpusim/power_model.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace exaeff::sched {

void CampaignConfig::validate() const {
  system.validate();
  EXAEFF_REQUIRE(duration_s > 0.0, "campaign duration must be positive");
  EXAEFF_REQUIRE(telemetry_window_s > 0.0, "telemetry window must be positive");
  EXAEFF_REQUIRE(min_job_duration_s > 0.0, "min job duration must be positive");
  EXAEFF_REQUIRE(noise_rho >= 0.0 && noise_rho < 1.0,
                 "noise correlation must be in [0, 1)");
  EXAEFF_REQUIRE(boost_sample_probability >= 0.0 &&
                     boost_sample_probability <= 1.0,
                 "boost probability must be in [0, 1]");
}

FleetGenerator::FleetGenerator(CampaignConfig config,
                               const workloads::ProfileLibrary& library)
    : config_(std::move(config)),
      library_(library),
      traits_(default_domain_traits()),
      policy_(static_cast<std::uint32_t>(config_.system.compute_nodes)) {
  config_.validate();
}

const workloads::AppProfile& FleetGenerator::profile_for(
    ScienceDomain d) const {
  switch (d) {
    case ScienceDomain::kChemistry: return library_.compute_heavy;
    case ScienceDomain::kMaterials: return library_.compute_moderate;
    case ScienceDomain::kBiology: return library_.latency_io;
    case ScienceDomain::kClimate: return library_.latency_network;
    case ScienceDomain::kCfd: return library_.memory_bandwidth;
    case ScienceDomain::kFusion: return library_.memory_bandwidth;
    case ScienceDomain::kAstro: return library_.multimodal_wide;
    case ScienceDomain::kNuclear: return library_.multimodal_burst;
    case ScienceDomain::kPhysics: return library_.compute_moderate;
    case ScienceDomain::kCompSci: return library_.memory_latency;
  }
  throw Error("unknown science domain");
}

std::array<DomainTraits, kDomainCount>
FleetGenerator::default_domain_traits() {
  // Hour weights tuned so the system-wide region occupancy lands near the
  // paper's Table IV (R1 ~30%, R2 ~50%, R3 ~20%, boost ~1%).  Size mixes
  // skew compute/memory domains toward large A/B/C jobs (leadership-scale
  // campaigns), latency domains toward smaller allocations — which is
  // what concentrates savings in large jobs (Fig 10).
  std::array<DomainTraits, kDomainCount> t{};
  auto set = [&t](ScienceDomain d, double w,
                  std::array<double, kSizeBinCount> bins) {
    t[static_cast<std::size_t>(d)] = DomainTraits{w, bins};
  };
  set(ScienceDomain::kChemistry, 0.06, {0.30, 0.32, 0.23, 0.09, 0.06});
  set(ScienceDomain::kMaterials, 0.04, {0.24, 0.30, 0.27, 0.11, 0.08});
  set(ScienceDomain::kBiology, 0.17, {0.10, 0.22, 0.33, 0.20, 0.15});
  set(ScienceDomain::kClimate, 0.10, {0.12, 0.25, 0.33, 0.18, 0.12});
  set(ScienceDomain::kCfd, 0.19, {0.30, 0.33, 0.24, 0.08, 0.05});
  set(ScienceDomain::kFusion, 0.14, {0.28, 0.32, 0.25, 0.09, 0.06});
  set(ScienceDomain::kAstro, 0.09, {0.22, 0.30, 0.28, 0.12, 0.08});
  set(ScienceDomain::kNuclear, 0.05, {0.18, 0.27, 0.30, 0.14, 0.11});
  set(ScienceDomain::kPhysics, 0.03, {0.22, 0.30, 0.28, 0.12, 0.08});
  set(ScienceDomain::kCompSci, 0.13, {0.16, 0.27, 0.32, 0.14, 0.11});
  return t;
}

SchedulerLog FleetGenerator::generate_schedule() const {
  EXAEFF_TRACE_SPAN("fleetgen.schedule");
  Rng rng(config_.seed);
  const auto total_nodes =
      static_cast<std::uint32_t>(config_.system.compute_nodes);

  // Domain selection: probability of *starting* a job in domain d is
  // proportional to hour_weight / E[gpu-hours per job of d], so realized
  // GPU-hour shares track the targets.
  std::array<double, kDomainCount> job_weight{};
  for (std::size_t d = 0; d < kDomainCount; ++d) {
    double expect_node_hours = 0.0;
    for (std::size_t b = 0; b < kSizeBinCount; ++b) {
      const auto bin = all_size_bins()[b];
      const auto [lo, hi] = policy_.node_range(bin);
      const double mean_nodes = 0.5 * (lo + hi);
      const double mean_dur = 0.55 * SchedulingPolicy::max_walltime_s(bin);
      expect_node_hours += traits_[d].bin_hour_share[b] * mean_nodes *
                           mean_dur;
    }
    job_weight[d] = expect_node_hours > 0.0
                        ? traits_[d].hour_weight / expect_node_hours
                        : 0.0;
  }

  // Per-domain bin selection weight: hour share / E[node-hours of a job
  // in that bin] gives the job-count mix that realizes the hour shares.
  std::array<std::array<double, kSizeBinCount>, kDomainCount> bin_weight{};
  for (std::size_t d = 0; d < kDomainCount; ++d) {
    for (std::size_t b = 0; b < kSizeBinCount; ++b) {
      const auto bin = all_size_bins()[b];
      const auto [lo, hi] = policy_.node_range(bin);
      const double mean_nodes = 0.5 * (lo + hi);
      const double mean_dur = 0.55 * SchedulingPolicy::max_walltime_s(bin);
      bin_weight[d][b] =
          traits_[d].bin_hour_share[b] / (mean_nodes * mean_dur);
    }
  }

  // Earliest-free packing.
  std::vector<double> free_at(total_nodes, 0.0);
  std::vector<std::uint32_t> order(total_nodes);
  SchedulerLog log;
  std::uint64_t next_job_id = 1000000;
  std::array<unsigned, kDomainCount> project_counter{};

  for (;;) {
    // Pick domain and size bin.
    const auto d = rng.categorical(job_weight.data(), job_weight.size());
    const auto domain = all_domains()[d];
    const auto b =
        rng.categorical(bin_weight[d].data(), bin_weight[d].size());
    const auto sampled_bin = all_size_bins()[b];
    const auto [lo, hi] = policy_.node_range(sampled_bin);
    // On small fleets adjacent bins can collapse (node_range may even be
    // empty); sample within the non-empty span and classify the job by
    // its realized node count, which is what the analysis joins on.
    const std::uint32_t span = hi >= lo ? hi - lo + 1 : 1;
    const auto num_nodes =
        static_cast<std::uint32_t>(lo + rng.uniform_index(span));
    const SizeBin bin = policy_.bin_of(num_nodes);

    // Duration: lognormal around ~55% of the walltime limit, clamped.
    const double wall = SchedulingPolicy::max_walltime_s(bin);
    const double mean_dur = 0.55 * wall;
    const double mu = std::log(mean_dur) - 0.5 * 0.5 * 0.5;
    const double duration = std::clamp(rng.lognormal(mu, 0.5),
                                       config_.min_job_duration_s, wall);

    // Allocate the num_nodes earliest-free nodes.
    std::iota(order.begin(), order.end(), 0U);
    std::partial_sort(order.begin(), order.begin() + num_nodes, order.end(),
                      [&free_at](std::uint32_t a, std::uint32_t c) {
                        return free_at[a] < free_at[c];
                      });
    double start = 0.0;
    for (std::uint32_t i = 0; i < num_nodes; ++i) {
      start = std::max(start, free_at[order[i]]);
    }
    start += config_.sched_gap_s;
    if (start >= config_.duration_s) break;

    Job job;
    job.job_id = next_job_id++;
    job.domain = domain;
    job.project_id = make_project_id(
        domain, 1 + (project_counter[d]++ % 7));  // a few projects/domain
    job.bin = bin;
    job.num_nodes = num_nodes;
    job.begin_s = start;
    job.end_s = std::min(start + duration, config_.duration_s);
    job.nodes.assign(order.begin(), order.begin() + num_nodes);
    std::sort(job.nodes.begin(), job.nodes.end());
    for (std::uint32_t n : job.nodes) free_at[n] = job.end_s;
    log.add_job(std::move(job));
  }

  log.build_index(total_nodes);
  if (obs::metrics_enabled()) {
    auto& reg = obs::MetricsRegistry::global();
    reg.counter("exaeff_jobs_placed_total",
                "Jobs placed by the fleet generator")
        .inc(log.size());
    reg.gauge("exaeff_sim_time_seconds",
              "Simulated campaign time advanced")
        .set(config_.duration_s);
  }
  return log;
}

namespace {

struct EmitTally {
  std::uint64_t gcd_samples = 0;
  std::uint64_t node_samples = 0;
  std::uint64_t phase_count = 0;

  EmitTally& operator+=(const EmitTally& o) {
    gcd_samples += o.gcd_samples;
    node_samples += o.node_samples;
    phase_count += o.phase_count;
    return *this;
  }
};

// Per-job telemetry synthesis, shared by the serial and sharded
// generate_telemetry paths.  Every job derives all of its randomness
// from root.split(job_id), so jobs can be emitted in any grouping — the
// stream each job sees is identical either way.  The emitter itself is
// single-threaded (reused phase scratch); the parallel path constructs
// one per chunk.
class JobEmitter {
 public:
  JobEmitter(const FleetGenerator& gen, const CampaignConfig& cfg)
      : gen_(gen),
        cfg_(cfg),
        spec_(cfg.system.node.gcd),
        power_model_(spec_),
        window_(cfg.telemetry_window_s),
        near_tdp_(0.85 * spec_.tdp_w),
        innovation_sd_(
            cfg.noise_stddev_w *
            std::sqrt(std::max(0.0, 1.0 - cfg.noise_rho * cfg.noise_rho))),
        root_(cfg.seed ^ 0x7E1E7E1EULL) {}

  void emit(const Job& job, JobSampleSink& sink) {
    Rng job_rng = root_.split(job.job_id);

    // Phase schedule shared by all ranks of the job (bulk-synchronous).
    const auto& profile = gen_.profile_for(job.domain);
    phases_.clear();
    double t = job.begin_s;
    while (t < job.end_s) {
      const auto sampled = profile.sample_phase(job_rng);
      const double steady =
          power_model_.power_at(sampled.kernel, spec_.f_max_mhz);
      const double end = std::min(t + sampled.nominal_duration_s, job.end_s);
      phases_.push_back(PhaseSpan{t, end, steady, steady > near_tdp_});
      t = end;
    }
    if (phases_.empty()) return;
    tally_.phase_count += phases_.size();

    const double first_window = std::ceil(job.begin_s / window_) * window_;
    const auto gcds =
        static_cast<std::uint16_t>(cfg_.system.node.gcds_per_node());

    for (std::uint32_t node : job.nodes) {
      for (std::uint16_t g = 0; g < gcds; ++g) {
        Rng chan_rng =
            job_rng.split((static_cast<std::uint64_t>(node) << 8) | g);
        double noise = 0.0;
        std::size_t phase_idx = 0;
        for (double tw = first_window; tw < job.end_s; tw += window_) {
          while (phase_idx + 1 < phases_.size() &&
                 phases_[phase_idx].end_s <= tw) {
            ++phase_idx;
          }
          const PhaseSpan& ph = phases_[phase_idx];
          noise = cfg_.noise_rho * noise +
                  chan_rng.normal(0.0, innovation_sd_);
          double p = ph.steady_w + noise;
          if (ph.near_tdp &&
              chan_rng.bernoulli(cfg_.boost_sample_probability)) {
            p += chan_rng.exponential(cfg_.boost_extra_w);
          }
          p = std::clamp(p, spec_.idle_power_w * 0.97, spec_.boost_power_w);
          telemetry::GcdSample s;
          s.t_s = tw;
          s.node_id = node;
          s.gcd_index = g;
          s.power_w = static_cast<float>(p);
          sink.on_job_sample(s, job);
          ++tally_.gcd_samples;
        }
      }

      if (cfg_.emit_node_samples) {
        // One synthetic CPU/node record per window, derived from the mean
        // GPU load of the job's phases on this node.
        Rng node_rng = job_rng.split(0xC0000000ULL | node);
        std::size_t phase_idx = 0;
        for (double tw = first_window; tw < job.end_s; tw += window_) {
          while (phase_idx + 1 < phases_.size() &&
                 phases_[phase_idx].end_s <= tw) {
            ++phase_idx;
          }
          const PhaseSpan& ph = phases_[phase_idx];
          const double rel = std::clamp(
              (ph.steady_w - spec_.idle_power_w) /
                  (spec_.tdp_w - spec_.idle_power_w),
              0.0, 1.0);
          const double cpu_util = std::clamp(
              0.15 + 0.55 * rel + node_rng.normal(0.0, 0.05), 0.0, 1.0);
          telemetry::NodeSample ns;
          ns.t_s = tw;
          ns.node_id = node;
          ns.cpu_power_w =
              static_cast<float>(cfg_.system.node.cpu.power(cpu_util));
          ns.node_input_w = static_cast<float>(
              ns.cpu_power_w + cfg_.system.node.other_power_w +
              static_cast<double>(gcds) * ph.steady_w);
          sink.on_node_sample(ns);
          ++tally_.node_samples;
        }
      }
    }
  }

  [[nodiscard]] const EmitTally& tally() const { return tally_; }

 private:
  struct PhaseSpan {
    double begin_s;
    double end_s;
    double steady_w;
    bool near_tdp;
  };

  const FleetGenerator& gen_;
  const CampaignConfig& cfg_;
  const gpusim::DeviceSpec& spec_;
  gpusim::PowerModel power_model_;
  double window_;
  double near_tdp_;
  double innovation_sd_;
  Rng root_;
  std::vector<PhaseSpan> phases_;  // scratch reused across jobs
  EmitTally tally_;
};

void publish_tally(const EmitTally& tally) {
  if (!obs::metrics_enabled()) return;
  auto& reg = obs::MetricsRegistry::global();
  reg.counter("exaeff_samples_total",
              "Telemetry samples synthesized by the pipeline")
      .inc(tally.gcd_samples + tally.node_samples);
  reg.counter("exaeff_fleetgen_gcd_samples_total",
              "Per-GCD power records emitted by fleetgen")
      .inc(tally.gcd_samples);
  reg.counter("exaeff_fleetgen_node_samples_total",
              "Node-level records emitted by fleetgen")
      .inc(tally.node_samples);
  reg.counter("exaeff_fleetgen_phases_total",
              "Application phases synthesized by fleetgen")
      .inc(tally.phase_count);
}

}  // namespace

void FleetGenerator::generate_telemetry(const SchedulerLog& log,
                                        JobSampleSink& sink) const {
  EXAEFF_TRACE_SPAN("fleetgen.telemetry");
  // Hot loop: tally into plain locals, publish into the registry once at
  // the end so the per-sample path stays atomics-free.
  JobEmitter emitter(*this, config_);
  for (const Job& job : log.jobs()) emitter.emit(job, sink);
  publish_tally(emitter.tally());
}

void FleetGenerator::generate_telemetry(const SchedulerLog& log,
                                        std::size_t begin, std::size_t end,
                                        JobSampleSink& sink) const {
  EXAEFF_TRACE_SPAN("fleetgen.telemetry");
  const auto& jobs = log.jobs();
  EXAEFF_REQUIRE(begin <= end && end <= jobs.size(),
                 "generate_telemetry: job range out of bounds");
  JobEmitter emitter(*this, config_);
  for (std::size_t i = begin; i < end; ++i) emitter.emit(jobs[i], sink);
  publish_tally(emitter.tally());
}

void FleetGenerator::generate_telemetry(const SchedulerLog& log,
                                        JobSinkShards& shards,
                                        exec::ThreadPool& pool) const {
  EXAEFF_TRACE_SPAN("fleetgen.telemetry");
  const auto& jobs = log.jobs();

  struct ChunkOut {
    std::unique_ptr<JobSampleSink> sink;
    EmitTally tally;
  };
  // Chunk boundaries depend only on the job count (see
  // ThreadPool::chunk_grain), so the shard partition — and therefore the
  // merged output — is identical for any thread count.
  auto outs = pool.map_chunks(
      jobs.size(), exec::ThreadPool::chunk_grain(jobs.size()),
      [&](std::size_t begin, std::size_t end) {
        ChunkOut out;
        out.sink = shards.make_shard();
        JobEmitter emitter(*this, config_);
        for (std::size_t i = begin; i < end; ++i) {
          emitter.emit(jobs[i], *out.sink);
        }
        out.tally = emitter.tally();
        return out;
      });

  EmitTally total;
  for (auto& out : outs) {
    total += out.tally;
    shards.merge_shard(std::move(out.sink));
  }
  publish_tally(total);
}

}  // namespace exaeff::sched
