// exaeff/common/backoff.h
//
// Bounded retry with capped exponential backoff — the one retry schedule
// every resilient actuator in the codebase shares.  agent::CapApplier
// uses it to re-issue transient cap-apply failures (simulated waits: the
// replay pipeline is offline, so retry cost is accounted, not paid), and
// shard::Coordinator uses it to restart crashed or hung worker processes
// (real waits: a management controller that just fell over needs a
// moment before the respawn).
//
// The schedule for a policy {max_attempts=A, base=b, multiplier=m,
// max=c} is: attempt 1 immediately, then waits
//
//   w_k = min(b * m^(k-1), c)   before the retry that follows attempt k,
//
// for k = 1 .. A-1.  Attempt A is the last; there is no wait after it.
#pragma once

#include <algorithm>
#include <cstddef>

#include "common/error.h"

namespace exaeff::common {

/// Retry schedule for one fallible operation.
struct BackoffPolicy {
  std::size_t max_attempts = 4;     ///< total tries (first + retries)
  double base_backoff_s = 0.05;     ///< wait before the first retry
  double backoff_multiplier = 2.0;  ///< geometric growth per retry
  double max_backoff_s = 1.0;       ///< per-wait ceiling

  void validate() const {
    EXAEFF_REQUIRE(max_attempts >= 1,
                   "retry policy needs at least 1 attempt");
    EXAEFF_REQUIRE(base_backoff_s >= 0.0, "backoff must be non-negative");
    EXAEFF_REQUIRE(backoff_multiplier >= 1.0,
                   "backoff multiplier must be >= 1");
    EXAEFF_REQUIRE(max_backoff_s >= base_backoff_s,
                   "backoff ceiling below base backoff");
  }

  /// Wait before the retry that follows (1-based) failed `attempt`.
  /// Computed by the same progressive-capping recurrence the original
  /// incremental loop used, so accumulated totals match bit for bit.
  [[nodiscard]] double backoff_before_retry(std::size_t attempt) const {
    double wait = base_backoff_s;
    for (std::size_t k = 1; k < attempt; ++k) {
      wait = std::min(wait * backoff_multiplier, max_backoff_s);
    }
    return wait;
  }

  /// True when a retry is allowed after (1-based) failed `attempt`.
  [[nodiscard]] bool retries_after(std::size_t attempt) const {
    return attempt < max_attempts;
  }
};

}  // namespace exaeff::common
