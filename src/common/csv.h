// exaeff/common/csv.h
//
// Minimal CSV reading/writing for telemetry and scheduler-log round trips.
// Handles quoting, embedded commas/quotes, and header rows.  The telemetry
// store uses this for its on-disk format; tests use it for golden files.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace exaeff {

/// Writes rows of string cells as RFC-4180-style CSV.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  /// Writes one row; cells are quoted only when needed.
  void write_row(const std::vector<std::string>& cells);

 private:
  std::ostream& os_;
};

/// Incremental CSV reader over an input stream.
class CsvReader {
 public:
  explicit CsvReader(std::istream& is) : is_(is) {}

  /// Reads the next record into `cells`; returns false at end of input.
  /// Throws ParseError (with line/column context) on malformed quoting or
  /// embedded NUL bytes.
  bool read_row(std::vector<std::string>& cells);

  /// 1-based input line the most recently read row started on; 0 before
  /// the first read_row().  Rows with quoted embedded newlines span
  /// several physical lines; this reports the first.
  [[nodiscard]] std::size_t row_line() const { return row_line_; }

 private:
  std::istream& is_;
  std::size_t next_line_ = 1;
  std::size_t row_line_ = 0;
};

/// Parses a single CSV line (no embedded newlines) into cells.  `line_no`
/// (1-based, 0 = unknown) is attached to ParseError context.
[[nodiscard]] std::vector<std::string> parse_csv_line(std::string_view line,
                                                      std::size_t line_no = 0);

/// Serializes cells into a single CSV line (no trailing newline).
[[nodiscard]] std::string format_csv_line(
    const std::vector<std::string>& cells);

}  // namespace exaeff
