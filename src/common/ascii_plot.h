// exaeff/common/ascii_plot.h
//
// Terminal rendering for the paper's figures.  Each figure bench prints
// (a) machine-readable series (CSV-style columns, for external plotting)
// and (b) an ASCII rendering so the shape is visible directly in the
// bench output.  Two renderers cover every figure in the paper:
//
//   * LinePlot — multi-series x/y chart (rooflines, sweeps, distributions)
//   * heatmap  — shaded matrix (Fig 10's domain x job-size heatmaps)
#pragma once

#include <span>
#include <string>
#include <vector>

namespace exaeff {

/// Multi-series ASCII line chart.  Series are plotted with distinct glyphs
/// onto a character raster; axes are annotated with min/max values.
class LinePlot {
 public:
  /// width/height are the raster size in characters (excluding axes).
  LinePlot(std::string title, std::size_t width = 72, std::size_t height = 18);

  /// Adds a named series. x and y must have equal, non-zero length.
  void add_series(std::string name, std::span<const double> x,
                  std::span<const double> y);

  /// Use log10 scale on the x axis (roofline plots).
  void set_log_x(bool v) { log_x_ = v; }
  /// Use log10 scale on the y axis.
  void set_log_y(bool v) { log_y_ = v; }
  /// Axis labels.
  void set_labels(std::string x_label, std::string y_label);

  /// Renders raster, axes, and legend.
  [[nodiscard]] std::string str() const;

 private:
  struct Series {
    std::string name;
    std::vector<double> x;
    std::vector<double> y;
  };

  std::string title_;
  std::string x_label_;
  std::string y_label_;
  std::size_t width_;
  std::size_t height_;
  bool log_x_ = false;
  bool log_y_ = false;
  std::vector<Series> series_;
};

/// Renders a matrix as a shaded ASCII heatmap with row/column labels.
/// Values are normalized to the matrix maximum; shading uses a 10-step
/// character ramp.  `cell_values` is row-major [rows x cols].
[[nodiscard]] std::string heatmap(const std::string& title,
                                  std::span<const std::string> row_labels,
                                  std::span<const std::string> col_labels,
                                  std::span<const double> cell_values,
                                  int value_precision = 1);

}  // namespace exaeff
