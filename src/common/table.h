// exaeff/common/table.h
//
// Fixed-width text table rendering.  The benchmark harnesses print the
// paper's tables row-for-row; TextTable keeps that output aligned and
// uniform, and can also emit CSV for downstream plotting.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace exaeff {

/// Column alignment for TextTable.
enum class Align { kLeft, kRight };

/// A simple row/column text table with per-column alignment, a title, and
/// optional horizontal rules.  Cells are strings; numeric helpers format
/// with fixed precision.
class TextTable {
 public:
  explicit TextTable(std::string title = {}) : title_(std::move(title)) {}

  /// Sets the header row (also defines the column count).
  void set_header(std::vector<std::string> header);

  /// Appends a data row; must match the header's column count if set.
  void add_row(std::vector<std::string> row);

  /// Appends a horizontal rule before the next row.
  void add_rule();

  /// Formats a double with `precision` digits after the decimal point.
  [[nodiscard]] static std::string num(double v, int precision = 1);

  /// Formats a percentage (value already in percent units).
  [[nodiscard]] static std::string pct(double v, int precision = 1);

  /// Renders to a string with box-drawing rules.
  [[nodiscard]] std::string str() const;

  /// Renders as CSV (header + rows, no title or rules).
  [[nodiscard]] std::string csv() const;

  /// Streams the rendered table.
  friend std::ostream& operator<<(std::ostream& os, const TextTable& t);

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }
  [[nodiscard]] std::size_t column_count() const { return header_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule_before = false;
  };

  std::string title_;
  std::vector<std::string> header_;
  std::vector<Row> rows_;
  bool pending_rule_ = false;
};

}  // namespace exaeff
