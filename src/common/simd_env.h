// exaeff/common/simd_env.h
//
// One switch for every runtime-dispatched SIMD kernel (RNG lanes,
// histogram binning, projection sweeps): `EXAEFF_SIMD=0|off|false`
// forces the portable kernels, mirroring the `EXAEFF_BATCH` idiom.
// Every kernel pair is bit-identical by contract, so the switch exists
// for cross-checking (CI runs a forced-portable leg) and for debugging
// on hardware where a vector unit misbehaves — never for correctness.
#pragma once

namespace exaeff {

/// False when the environment disables SIMD dispatch (EXAEFF_SIMD=0).
/// Resolved from the environment once, on first call.
[[nodiscard]] bool simd_enabled();

/// Test override; wins over the environment for subsequent calls.
void set_simd_enabled(bool enabled);

}  // namespace exaeff
