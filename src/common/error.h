// exaeff/common/error.h
//
// Error handling primitives shared by every exaeff library.
//
// The libraries follow a simple contract: programming errors (violated
// preconditions, out-of-range indices, malformed configuration) throw
// exaeff::Error with a message that names the failing condition.  Hot
// simulation loops never throw; they validate inputs once at entry.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace exaeff {

/// Base exception for all exaeff errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a configuration value is malformed or out of range.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

namespace detail {
inline std::string with_location(const std::string& what, std::size_t line,
                                 std::size_t column) {
  std::string out = what;
  if (line > 0) {
    out += " (line ";
    out += std::to_string(line);
    if (column > 0) {
      out += ", column ";
      out += std::to_string(column);
    }
    out += ")";
  }
  return out;
}
}  // namespace detail

/// Thrown when a file or serialized payload cannot be parsed.  Carries
/// optional 1-based line/column context (0 means unknown) so malformed
/// input is rejected with an actionable location instead of producing
/// garbage rows.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
  ParseError(const std::string& what, std::size_t line,
             std::size_t column = 0)
      : Error(detail::with_location(what, line, column)),
        line_(line),
        column_(column) {}

  /// 1-based input line of the failure; 0 when unknown.
  [[nodiscard]] std::size_t line() const { return line_; }
  /// 1-based column (byte offset within the line); 0 when unknown.
  [[nodiscard]] std::size_t column() const { return column_; }

 private:
  std::size_t line_ = 0;
  std::size_t column_ = 0;
};

/// Thrown when degraded telemetry falls below the configured quality
/// floor (coverage / imputation thresholds) and a consumer refuses to
/// project from it.
class DataQualityError : public Error {
 public:
  explicit DataQualityError(const std::string& what) : Error(what) {}
};

/// Thrown when a run is cancelled mid-flight (SIGINT/SIGTERM, a wall
/// clock deadline) and a parallel loop stopped before completing.  The
/// work already finished is preserved (checkpoint journal); the CLI maps
/// this to exit code 130.
class CancelledError : public Error {
 public:
  explicit CancelledError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_requirement(std::string_view expr,
                                           std::string_view file, int line,
                                           std::string_view msg) {
  std::string what = "requirement failed: ";
  what += expr;
  what += " at ";
  what += file;
  what += ":";
  what += std::to_string(line);
  if (!msg.empty()) {
    what += " (";
    what += msg;
    what += ")";
  }
  throw Error(what);
}
}  // namespace detail

}  // namespace exaeff

/// Validate a precondition; throws exaeff::Error with location info when
/// the condition does not hold.  Used at API boundaries, not in hot loops.
#define EXAEFF_REQUIRE(cond, msg)                                        \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::exaeff::detail::throw_requirement(#cond, __FILE__, __LINE__, msg); \
    }                                                                    \
  } while (false)
