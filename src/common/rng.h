// exaeff/common/rng.h
//
// Deterministic random number generation for every stochastic component in
// exaeff.  All randomness flows through an explicitly-seeded Rng instance;
// nothing uses global state, so any experiment is reproducible from its
// seed alone and independent streams can be split off for parallel fleet
// generation (one stream per node/job) without cross-talk.
//
// The core generator is xoshiro256**, seeded via splitmix64 as its authors
// recommend.  It is small, fast (~1ns/draw), and passes BigCrush — more
// than adequate for workload synthesis.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

namespace exaeff {

/// splitmix64 step; used for seeding and for cheap hash-style mixing.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG with explicit seeding and stream-splitting.
///
/// Satisfies UniformRandomBitGenerator, so it composes with <random>
/// distributions, but the common draws (uniform, normal, exponential,
/// lognormal, categorical) are provided as members for convenience and
/// to keep behavior identical across standard libraries.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four lanes from a single 64-bit seed via splitmix64.
  explicit constexpr Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    std::uint64_t sm = seed;
    for (auto& lane : state_) lane = splitmix64(sm);
  }

  [[nodiscard]] static constexpr result_type min() { return 0; }
  [[nodiscard]] static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit draw.
  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Derives an independent child stream.  Mixes the parent state with the
  /// stream id through splitmix64, so streams with adjacent ids are
  /// decorrelated.  The parent is not advanced.
  [[nodiscard]] constexpr Rng split(std::uint64_t stream_id) const {
    std::uint64_t sm = state_[0] ^ (0xA0761D6478BD642FULL * (stream_id + 1));
    std::uint64_t mixed = splitmix64(sm) ^ state_[3];
    return Rng(mixed);
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n); n must be > 0.
  [[nodiscard]] std::uint64_t uniform_index(std::uint64_t n) {
    // Lemire's multiply-shift method (128-bit product, top 64 bits).
    __extension__ using u128 = unsigned __int128;
    const std::uint64_t x = (*this)();
    return static_cast<std::uint64_t>((static_cast<u128>(x) * n) >> 64);
  }

  /// Standard normal via Marsaglia polar method (cached spare is not used
  /// to keep the generator stateless w.r.t. distribution draws).
  /// Defined inline: telemetry synthesis draws one of these per sample,
  /// and keeping the rejection loop visible to the caller lets the raw
  /// generator fold into the fill loops.
  [[nodiscard]] double normal() {
    // Marsaglia polar method; rejection loop terminates with probability 1.
    for (;;) {
      const double u = uniform(-1.0, 1.0);
      const double v = uniform(-1.0, 1.0);
      const double s = u * u + v * v;
      if (s > 0.0 && s < 1.0) {
        return u * std::sqrt(-2.0 * std::log(s) / s);
      }
    }
  }

  /// Normal with mean/stddev.
  [[nodiscard]] double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  /// Exponential with the given mean (mean = 1/rate).
  [[nodiscard]] double exponential(double mean);

  /// Log-normal parameterized by the mean/sigma of the underlying normal.
  [[nodiscard]] double lognormal(double mu, double sigma);

  /// Draws an index with probability proportional to weights[i].
  /// Weights must be non-negative with a positive sum.
  [[nodiscard]] std::size_t categorical(const double* weights,
                                        std::size_t count);

  /// Bernoulli draw with probability p of returning true.
  [[nodiscard]] bool bernoulli(double p) { return uniform() < p; }

  /// Raw engine state accessors, for lockstep lane engines (rng_lanes.h)
  /// that must consume and reproduce this exact stream.  Not for general
  /// use: going through these bypasses the distribution helpers' draw
  /// accounting.
  [[nodiscard]] constexpr std::array<std::uint64_t, 4> state() const {
    return state_;
  }
  constexpr void set_state(const std::array<std::uint64_t, 4>& s) {
    state_ = s;
  }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace exaeff
