#include "common/atomic_file.h"

#include <cstdio>
#include <string_view>

#include <unistd.h>

#include "obs/log.h"

namespace exaeff {

namespace {

/// Writes `content` to `temp` with an fsync before close; returns false
/// on any short write or flush failure.
bool write_synced(const std::string& temp, std::string_view content) {
  std::FILE* f = std::fopen(temp.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = content.empty() ||
            std::fwrite(content.data(), 1, content.size(), f) ==
                content.size();
  ok = std::fflush(f) == 0 && ok;
  // Without the fsync a crash after rename can still surface an empty
  // file on some filesystems: the rename is durable but the data is not.
  ok = ::fsync(::fileno(f)) == 0 && ok;
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

}  // namespace

AtomicFile::AtomicFile(std::string path)
    : path_(std::move(path)),
      temp_path_(path_ + ".tmp." + std::to_string(::getpid())) {}

AtomicFile::~AtomicFile() {
  if (!committed_) std::remove(temp_path_.c_str());
}

bool AtomicFile::commit() {
  if (committed_) return false;
  if (!write_synced(temp_path_, buffer_.view()) ||
      std::rename(temp_path_.c_str(), path_.c_str()) != 0) {
    obs::Logger::global().error("run.atomic_write_failed",
                                {{"path", path_}});
    std::remove(temp_path_.c_str());
    return false;
  }
  committed_ = true;
  return true;
}

bool write_file_atomic(const std::string& path, std::string_view content) {
  AtomicFile f(path);
  f.write(content);
  return f.commit();
}

}  // namespace exaeff
