#include "common/simd_env.h"

#include <atomic>
#include <cstdlib>
#include <string_view>

namespace exaeff {

namespace {
// -1 = not yet resolved from the environment; 0/1 once decided.
std::atomic<int> g_simd{-1};
}  // namespace

bool simd_enabled() {
  int v = g_simd.load(std::memory_order_relaxed);
  if (v < 0) {
    const char* env = std::getenv("EXAEFF_SIMD");
    const bool off =
        env != nullptr && (std::string_view(env) == "0" ||
                           std::string_view(env) == "off" ||
                           std::string_view(env) == "false");
    v = off ? 0 : 1;
    g_simd.store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

void set_simd_enabled(bool enabled) {
  g_simd.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

}  // namespace exaeff
