#include "common/rng_lanes.h"

#if defined(__x86_64__) && defined(__GNUC__)
#define EXAEFF_RNG_LANES_X86 1
#include <immintrin.h>
#endif

namespace exaeff {
namespace {

/// Reference kernel: runs each of `lanes` streams through the scalar
/// rejection loop, writing u[stride*i + l].  Matching Rng::normal()'s
/// draw stream is automatic because it *is* that loop, stopped just
/// before the transform.
void kernel_portable(std::uint64_t* a, std::uint64_t* b, std::uint64_t* c,
                     std::uint64_t* d, std::size_t lanes, std::size_t n,
                     double* u, double* s, std::size_t stride) {
  for (std::size_t l = 0; l < lanes; ++l) {
    Rng rng(0);
    rng.set_state({a[l], b[l], c[l], d[l]});
    for (std::size_t i = 0; i < n; ++i) {
      for (;;) {
        const double lu = rng.uniform(-1.0, 1.0);
        const double lv = rng.uniform(-1.0, 1.0);
        const double ls = lu * lu + lv * lv;
        if (ls > 0.0 && ls < 1.0) {
          u[stride * i + l] = lu;
          s[stride * i + l] = ls;
          break;
        }
      }
    }
    const auto st = rng.state();
    a[l] = st[0];
    b[l] = st[1];
    c[l] = st[2];
    d[l] = st[3];
  }
}

#if defined(EXAEFF_RNG_LANES_X86)

__attribute__((target("avx2"))) inline __m256i rotl4(__m256i x, int k) {
  return _mm256_or_si256(_mm256_slli_epi64(x, k), _mm256_srli_epi64(x, 64 - k));
}

/// Exact u64 -> double conversion for x < 2^53 (AVX2 has no 64-bit
/// integer convert).  Splits x into hi*2^32 + lo; both halves are
/// exactly representable and the final sum fits in 53 bits, so every
/// step is exact and the result equals static_cast<double>(x).
__attribute__((target("avx2"))) inline __m256d u53_to_pd(__m256i x) {
  const __m256i hi = _mm256_or_si256(
      _mm256_srli_epi64(x, 32),
      _mm256_castpd_si256(_mm256_set1_pd(19342813113834066795298816.)));
  const __m256i lo = _mm256_blend_epi32(
      x, _mm256_castpd_si256(_mm256_set1_pd(0x1.0p52)), 0xAA);
  const __m256d f = _mm256_sub_pd(
      _mm256_castsi256_pd(hi), _mm256_set1_pd(19342813118337666422669312.));
  return _mm256_add_pd(_mm256_castsi256_pd(lo), f);
}

/// Four lanes of masked lockstep rejection, writing u[stride*i + 0..3].
/// The stride parameter lets an 8-lane engine run two half-groups into
/// its interleaved layout on machines without AVX-512.
__attribute__((target("avx2"))) void kernel4_avx2(std::uint64_t* a,
                                                  std::uint64_t* b,
                                                  std::uint64_t* c,
                                                  std::uint64_t* d,
                                                  std::size_t n, double* u,
                                                  double* s,
                                                  std::size_t stride) {
  __m256i A = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a));
  __m256i B = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b));
  __m256i C = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c));
  __m256i D = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d));
  const __m256d zero = _mm256_setzero_pd();
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d neg1 = _mm256_set1_pd(-1.0);
  const __m256d two = _mm256_set1_pd(2.0);
  const __m256d scale = _mm256_set1_pd(0x1.0p-53);
  const __m256d ones_mask = _mm256_cmp_pd(zero, zero, _CMP_EQ_OQ);
  for (std::size_t i = 0; i < n; ++i) {
    __m256d done = zero;
    __m256d ures = zero;
    __m256d sres = zero;
    for (;;) {
      // A lane that has already accepted goes inactive: its state stops
      // advancing (so it consumes exactly the scalar loop's draws) and
      // its result is frozen.
      const __m256d active = _mm256_andnot_pd(done, ones_mask);
      // Two raw xoshiro256** draws, on copies so inactive lanes can
      // discard the advance.  result = rotl(b*5, 7) * 9 with the
      // multiplies strength-reduced to shift-adds.
      __m256i nA = A;
      __m256i nB = B;
      __m256i nC = C;
      __m256i nD = D;
      __m256i b5 = _mm256_add_epi64(nB, _mm256_slli_epi64(nB, 2));
      __m256i r7 = rotl4(b5, 7);
      const __m256i r1 = _mm256_add_epi64(r7, _mm256_slli_epi64(r7, 3));
      __m256i t = _mm256_slli_epi64(nB, 17);
      nC = _mm256_xor_si256(nC, nA);
      nD = _mm256_xor_si256(nD, nB);
      nB = _mm256_xor_si256(nB, nC);
      nA = _mm256_xor_si256(nA, nD);
      nC = _mm256_xor_si256(nC, t);
      nD = rotl4(nD, 45);
      b5 = _mm256_add_epi64(nB, _mm256_slli_epi64(nB, 2));
      r7 = rotl4(b5, 7);
      const __m256i r2 = _mm256_add_epi64(r7, _mm256_slli_epi64(r7, 3));
      t = _mm256_slli_epi64(nB, 17);
      nC = _mm256_xor_si256(nC, nA);
      nD = _mm256_xor_si256(nD, nB);
      nB = _mm256_xor_si256(nB, nC);
      nA = _mm256_xor_si256(nA, nD);
      nC = _mm256_xor_si256(nC, t);
      nD = rotl4(nD, 45);
      // u, v in [-1, 1): -1 + 2 * ((r >> 11) * 2^-53), the exact
      // operation tree of Rng::uniform(-1, 1).
      const __m256d u01 =
          _mm256_mul_pd(u53_to_pd(_mm256_srli_epi64(r1, 11)), scale);
      const __m256d v01 =
          _mm256_mul_pd(u53_to_pd(_mm256_srli_epi64(r2, 11)), scale);
      const __m256d uu = _mm256_add_pd(neg1, _mm256_mul_pd(two, u01));
      const __m256d vv = _mm256_add_pd(neg1, _mm256_mul_pd(two, v01));
      const __m256d ss =
          _mm256_add_pd(_mm256_mul_pd(uu, uu), _mm256_mul_pd(vv, vv));
      const __m256d accept = _mm256_and_pd(_mm256_cmp_pd(ss, zero, _CMP_GT_OQ),
                                           _mm256_cmp_pd(ss, one, _CMP_LT_OQ));
      const __m256d take = _mm256_and_pd(active, accept);
      const __m256i act_i = _mm256_castpd_si256(active);
      A = _mm256_blendv_epi8(A, nA, act_i);
      B = _mm256_blendv_epi8(B, nB, act_i);
      C = _mm256_blendv_epi8(C, nC, act_i);
      D = _mm256_blendv_epi8(D, nD, act_i);
      ures = _mm256_blendv_pd(ures, uu, take);
      sres = _mm256_blendv_pd(sres, ss, take);
      done = _mm256_or_pd(done, take);
      if (_mm256_movemask_pd(done) == 0xF) break;
    }
    _mm256_storeu_pd(u + stride * i, ures);
    _mm256_storeu_pd(s + stride * i, sres);
  }
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(a), A);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(b), B);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(c), C);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(d), D);
}

// GCC implements the unmasked AVX-512 shift/rotate intrinsics in terms
// of their masked forms with an _mm512_undefined_epi32() "don't care"
// source, which -Wmaybe-uninitialized flags; there is no actual
// uninitialized read.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

/// Eight lanes in one ZMM register per state word.  AVX-512 makes the
/// round body markedly cheaper than two AVX2 half-groups: rotates are
/// native (vprolq), the u64 -> double conversion is a single
/// vcvtuqq2pd (AVX512DQ) instead of the five-op split trick, and the
/// accept/freeze bookkeeping lives in mask registers instead of
/// blendv chains.
__attribute__((target("avx512f,avx512dq"))) void kernel8_avx512(
    std::uint64_t* a, std::uint64_t* b, std::uint64_t* c, std::uint64_t* d,
    std::size_t n, double* u, double* s) {
  __m512i A = _mm512_loadu_si512(a);
  __m512i B = _mm512_loadu_si512(b);
  __m512i C = _mm512_loadu_si512(c);
  __m512i D = _mm512_loadu_si512(d);
  const __m512d zero = _mm512_setzero_pd();
  const __m512d one = _mm512_set1_pd(1.0);
  const __m512d neg1 = _mm512_set1_pd(-1.0);
  const __m512d two = _mm512_set1_pd(2.0);
  const __m512d scale = _mm512_set1_pd(0x1.0p-53);
  for (std::size_t i = 0; i < n; ++i) {
    __mmask8 done = 0;
    __m512d ures = zero;
    __m512d sres = zero;
    for (;;) {
      const auto active = static_cast<__mmask8>(~done);
      __m512i nA = A;
      __m512i nB = B;
      __m512i nC = C;
      __m512i nD = D;
      __m512i b5 = _mm512_add_epi64(nB, _mm512_slli_epi64(nB, 2));
      __m512i r7 = _mm512_rol_epi64(b5, 7);
      const __m512i r1 = _mm512_add_epi64(r7, _mm512_slli_epi64(r7, 3));
      __m512i t = _mm512_slli_epi64(nB, 17);
      nC = _mm512_xor_si512(nC, nA);
      nD = _mm512_xor_si512(nD, nB);
      nB = _mm512_xor_si512(nB, nC);
      nA = _mm512_xor_si512(nA, nD);
      nC = _mm512_xor_si512(nC, t);
      nD = _mm512_rol_epi64(nD, 45);
      b5 = _mm512_add_epi64(nB, _mm512_slli_epi64(nB, 2));
      r7 = _mm512_rol_epi64(b5, 7);
      const __m512i r2 = _mm512_add_epi64(r7, _mm512_slli_epi64(r7, 3));
      t = _mm512_slli_epi64(nB, 17);
      nC = _mm512_xor_si512(nC, nA);
      nD = _mm512_xor_si512(nD, nB);
      nB = _mm512_xor_si512(nB, nC);
      nA = _mm512_xor_si512(nA, nD);
      nC = _mm512_xor_si512(nC, t);
      nD = _mm512_rol_epi64(nD, 45);
      // vcvtuqq2pd rounds to nearest; the operands are < 2^53, so the
      // conversion is exact and equals static_cast<double>.
      const __m512d u01 = _mm512_mul_pd(
          _mm512_cvtepu64_pd(_mm512_srli_epi64(r1, 11)), scale);
      const __m512d v01 = _mm512_mul_pd(
          _mm512_cvtepu64_pd(_mm512_srli_epi64(r2, 11)), scale);
      const __m512d uu = _mm512_add_pd(neg1, _mm512_mul_pd(two, u01));
      const __m512d vv = _mm512_add_pd(neg1, _mm512_mul_pd(two, v01));
      const __m512d ss =
          _mm512_add_pd(_mm512_mul_pd(uu, uu), _mm512_mul_pd(vv, vv));
      const __mmask8 accept =
          _mm512_cmp_pd_mask(ss, zero, _CMP_GT_OQ) &
          _mm512_cmp_pd_mask(ss, one, _CMP_LT_OQ);
      const auto take = static_cast<__mmask8>(active & accept);
      A = _mm512_mask_mov_epi64(A, active, nA);
      B = _mm512_mask_mov_epi64(B, active, nB);
      C = _mm512_mask_mov_epi64(C, active, nC);
      D = _mm512_mask_mov_epi64(D, active, nD);
      ures = _mm512_mask_mov_pd(ures, take, uu);
      sres = _mm512_mask_mov_pd(sres, take, ss);
      done |= take;
      if (done == 0xFF) break;
    }
    _mm512_storeu_pd(u + 8 * i, ures);
    _mm512_storeu_pd(s + 8 * i, sres);
  }
  _mm512_storeu_si512(a, A);
  _mm512_storeu_si512(b, B);
  _mm512_storeu_si512(c, C);
  _mm512_storeu_si512(d, D);
}

#pragma GCC diagnostic pop

bool cpu_has_avx2() {
  static const bool has = __builtin_cpu_supports("avx2");
  return has;
}

bool cpu_has_avx512() {
  static const bool has = __builtin_cpu_supports("avx512f") &&
                          __builtin_cpu_supports("avx512dq");
  return has;
}

#endif  // EXAEFF_RNG_LANES_X86

}  // namespace

PolarLanes4::PolarLanes4(const std::array<Rng, 4>& lanes) {
  for (std::size_t l = 0; l < 4; ++l) {
    const auto st = lanes[l].state();
    a_[l] = st[0];
    b_[l] = st[1];
    c_[l] = st[2];
    d_[l] = st[3];
  }
}

void PolarLanes4::extract(std::array<Rng, 4>& lanes) const {
  for (std::size_t l = 0; l < 4; ++l) {
    lanes[l].set_state({a_[l], b_[l], c_[l], d_[l]});
  }
}

void PolarLanes4::generate(std::size_t n, double* u, double* s) {
#if defined(EXAEFF_RNG_LANES_X86)
  if (cpu_has_avx2()) {
    kernel4_avx2(a_.data(), b_.data(), c_.data(), d_.data(), n, u, s, 4);
    return;
  }
#endif
  kernel_portable(a_.data(), b_.data(), c_.data(), d_.data(), 4, n, u, s, 4);
}

PolarLanes8::PolarLanes8(const std::array<Rng, 8>& lanes) {
  for (std::size_t l = 0; l < 8; ++l) {
    const auto st = lanes[l].state();
    a_[l] = st[0];
    b_[l] = st[1];
    c_[l] = st[2];
    d_[l] = st[3];
  }
}

void PolarLanes8::extract(std::array<Rng, 8>& lanes) const {
  for (std::size_t l = 0; l < 8; ++l) {
    lanes[l].set_state({a_[l], b_[l], c_[l], d_[l]});
  }
}

void PolarLanes8::generate(std::size_t n, double* u, double* s) {
#if defined(EXAEFF_RNG_LANES_X86)
  if (cpu_has_avx512()) {
    kernel8_avx512(a_.data(), b_.data(), c_.data(), d_.data(), n, u, s);
    return;
  }
  if (cpu_has_avx2()) {
    // Two independent half-groups into the 8-wide interleave.  Lockstep
    // is per half-group, which changes nothing observable: each lane
    // still consumes exactly its own scalar draw sequence.
    kernel4_avx2(a_.data(), b_.data(), c_.data(), d_.data(), n, u, s, 8);
    kernel4_avx2(a_.data() + 4, b_.data() + 4, c_.data() + 4, d_.data() + 4,
                 n, u + 4, s + 4, 8);
    return;
  }
#endif
  kernel_portable(a_.data(), b_.data(), c_.data(), d_.data(), 8, n, u, s, 8);
}

}  // namespace exaeff
