#include "common/csv.h"

#include <istream>
#include <ostream>

#include "common/error.h"

namespace exaeff {

namespace {
bool needs_quoting(std::string_view cell) {
  return cell.find_first_of(",\"\n\r") != std::string_view::npos;
}

void append_quoted(std::string& out, std::string_view cell) {
  out += '"';
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
}
}  // namespace

std::string format_csv_line(const std::vector<std::string>& cells) {
  std::string out;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out += ',';
    if (needs_quoting(cells[i])) {
      append_quoted(out, cells[i]);
    } else {
      out += cells[i];
    }
  }
  return out;
}

std::vector<std::string> parse_csv_line(std::string_view line,
                                        std::size_t line_no) {
  std::vector<std::string> cells;
  std::string cur;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (c == '\0') {
      throw ParseError("NUL byte in CSV input", line_no, i + 1);
    }
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else {
      if (c == '"') {
        if (!cur.empty()) {
          throw ParseError("quote inside unquoted CSV cell", line_no, i + 1);
        }
        in_quotes = true;
      } else if (c == ',') {
        cells.push_back(std::move(cur));
        cur.clear();
      } else if (c == '\r') {
        // tolerate CRLF
      } else {
        cur += c;
      }
    }
  }
  if (in_quotes) {
    throw ParseError("unterminated quote in CSV line", line_no,
                     line.size());
  }
  cells.push_back(std::move(cur));
  return cells;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  os_ << format_csv_line(cells) << '\n';
}

bool CsvReader::read_row(std::vector<std::string>& cells) {
  std::string line;
  if (!std::getline(is_, line)) return false;
  row_line_ = next_line_++;
  // Re-join lines while inside a quoted cell (embedded newline support).
  auto count_quotes = [](const std::string& s) {
    std::size_t n = 0;
    for (char c : s) n += (c == '"');
    return n;
  };
  while (count_quotes(line) % 2 == 1) {
    std::string next;
    if (!std::getline(is_, next)) {
      throw ParseError("unterminated quoted cell at end of CSV input",
                       row_line_);
    }
    ++next_line_;
    line += '\n';
    line += next;
  }
  cells = parse_csv_line(line, row_line_);
  return true;
}

}  // namespace exaeff
