// exaeff/common/units.h
//
// Strongly-suggestive (but lightweight) unit conventions used across the
// code base, plus conversion helpers.  We deliberately use plain `double`
// with named helper functions rather than a unit type system: the
// simulator's hot loops are arithmetic-dense and the conventions are few.
//
// Conventions:
//   time        seconds            (suffix _s)
//   power       watts              (suffix _w)
//   energy      joules             (suffix _j)   [reports use Wh / MWh]
//   frequency   megahertz          (suffix _mhz) [device clocks]
//   bandwidth   bytes per second   (suffix _bps)
//   work        flop               (floating point operations)
//   data        bytes
#pragma once

#include <cstdint>

namespace exaeff::units {

// --- scale prefixes ---------------------------------------------------
inline constexpr double kKilo = 1e3;
inline constexpr double kMega = 1e6;
inline constexpr double kGiga = 1e9;
inline constexpr double kTera = 1e12;
inline constexpr double kPeta = 1e15;

// --- data sizes --------------------------------------------------------
inline constexpr double kKiB = 1024.0;
inline constexpr double kMiB = 1024.0 * kKiB;
inline constexpr double kGiB = 1024.0 * kMiB;

// --- time --------------------------------------------------------------
inline constexpr double kMinute = 60.0;
inline constexpr double kHour = 3600.0;
inline constexpr double kDay = 24.0 * kHour;

/// Joules -> watt-hours.
[[nodiscard]] constexpr double joules_to_wh(double j) { return j / 3600.0; }

/// Joules -> megawatt-hours (the unit the paper's Tables V/VI report).
[[nodiscard]] constexpr double joules_to_mwh(double j) {
  return j / 3.6e9;
}

/// Megawatt-hours -> joules.
[[nodiscard]] constexpr double mwh_to_joules(double mwh) {
  return mwh * 3.6e9;
}

/// Watt-hours -> joules.
[[nodiscard]] constexpr double wh_to_joules(double wh) { return wh * 3600.0; }

/// Seconds -> GPU-hours given a number of concurrently-busy GPUs.
[[nodiscard]] constexpr double gpu_hours(double seconds, double gpus) {
  return seconds * gpus / kHour;
}

}  // namespace exaeff::units
