#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace exaeff {

// ---------------------------------------------------------------------
// StreamingMoments
// ---------------------------------------------------------------------

void StreamingMoments::add_weighted(double x, double weight) {
  EXAEFF_REQUIRE(weight > 0.0, "observation weight must be positive");
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  total_weight_ += weight;
  const double delta = x - mean_;
  mean_ += (weight / total_weight_) * delta;
  m2_ += weight * delta * (x - mean_);
}

void StreamingMoments::merge(const StreamingMoments& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double combined = total_weight_ + other.total_weight_;
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ +
         delta * delta * total_weight_ * other.total_weight_ / combined;
  mean_ += delta * other.total_weight_ / combined;
  total_weight_ = combined;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double StreamingMoments::variance() const {
  if (count_ < 2 || total_weight_ <= 0.0) return 0.0;
  return m2_ / total_weight_;
}

double StreamingMoments::stddev() const { return std::sqrt(variance()); }

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0.0) {
  EXAEFF_REQUIRE(hi > lo, "histogram range must be non-empty");
  EXAEFF_REQUIRE(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x, double weight) {
  EXAEFF_REQUIRE(weight >= 0.0, "histogram weight must be non-negative");
  counts_[bin_index(x)] += weight;
  total_ += weight;
}

void Histogram::restore(std::span<const double> weights, double total) {
  EXAEFF_REQUIRE(weights.size() == counts_.size(),
                 "histogram restore must match the bin count");
  std::copy(weights.begin(), weights.end(), counts_.begin());
  total_ = total;
}

void Histogram::merge(const Histogram& other) {
  EXAEFF_REQUIRE(other.counts_.size() == counts_.size() && other.lo_ == lo_ &&
                     other.hi_ == hi_,
                 "histograms must share binning to merge");
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
}

double Histogram::bin_center(std::size_t i) const {
  EXAEFF_REQUIRE(i < counts_.size(), "bin index out of range");
  return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

double Histogram::density(std::size_t i) const {
  EXAEFF_REQUIRE(i < counts_.size(), "bin index out of range");
  if (total_ <= 0.0) return 0.0;
  return counts_[i] / (total_ * width_);
}

double Histogram::weight_between(double a, double b) const {
  if (b <= a) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double c = bin_center(i);
    if (c >= a && c < b) acc += counts_[i];
  }
  // Edge bins absorb clamped samples: include the top bin when b extends
  // past the histogram range, matching "region >= hi" semantics.
  if (b > hi_ && a < hi_) {
    const double top_center = bin_center(counts_.size() - 1);
    if (top_center < a || top_center >= b) acc += counts_.back();
  }
  return acc;
}

// ---------------------------------------------------------------------
// Density estimation and peaks
// ---------------------------------------------------------------------

std::vector<double> gaussian_kde(std::span<const double> xs,
                                 std::span<const double> weights, double lo,
                                 double hi, std::size_t grid_points,
                                 double bandwidth) {
  EXAEFF_REQUIRE(grid_points >= 2, "kde grid needs at least two points");
  EXAEFF_REQUIRE(hi > lo, "kde range must be non-empty");
  EXAEFF_REQUIRE(bandwidth > 0.0, "kde bandwidth must be positive");
  EXAEFF_REQUIRE(weights.empty() || weights.size() == xs.size(),
                 "weights must be empty or match sample count");

  std::vector<double> grid(grid_points, 0.0);
  const double step = (hi - lo) / static_cast<double>(grid_points - 1);
  const double inv_h = 1.0 / bandwidth;
  const double norm = 1.0 / std::sqrt(2.0 * 3.14159265358979323846);

  double total_w = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double w = weights.empty() ? 1.0 : weights[i];
    total_w += w;
    // Kernel support truncated at 4 sigma for speed.
    const double x = xs[i];
    const auto g_lo = static_cast<long>(
        std::floor((x - 4.0 * bandwidth - lo) / step));
    const auto g_hi = static_cast<long>(
        std::ceil((x + 4.0 * bandwidth - lo) / step));
    const long first = std::max<long>(0, g_lo);
    const long last =
        std::min<long>(static_cast<long>(grid_points) - 1, g_hi);
    for (long g = first; g <= last; ++g) {
      const double u = (lo + static_cast<double>(g) * step - x) * inv_h;
      grid[static_cast<std::size_t>(g)] +=
          w * norm * std::exp(-0.5 * u * u) * inv_h;
    }
  }
  if (total_w > 0.0) {
    for (double& v : grid) v /= total_w;
  }
  return grid;
}

std::vector<double> smooth_density(const Histogram& h, double bandwidth) {
  std::vector<double> xs(h.bin_count());
  std::vector<double> ws(h.bin_count());
  for (std::size_t i = 0; i < h.bin_count(); ++i) {
    xs[i] = h.bin_center(i);
    ws[i] = h.bin_weight(i);
  }
  return gaussian_kde(xs, ws, h.lo(), h.hi(), h.bin_count(), bandwidth);
}

std::vector<Peak> find_peaks(std::span<const double> y,
                             std::span<const double> x_of,
                             double min_prominence_fraction) {
  EXAEFF_REQUIRE(y.size() == x_of.size(), "y and x grids must match");
  std::vector<Peak> peaks;
  if (y.size() < 3) return peaks;

  double global_max = 0.0;
  for (double v : y) global_max = std::max(global_max, v);
  if (global_max <= 0.0) return peaks;

  for (std::size_t i = 1; i + 1 < y.size(); ++i) {
    if (!(y[i] > y[i - 1] && y[i] >= y[i + 1])) continue;
    // Prominence: walk outward to the nearest higher point on each side;
    // the saddle is the minimum seen along the walk.
    double left_saddle = y[i];
    for (std::size_t j = i; j-- > 0;) {
      left_saddle = std::min(left_saddle, y[j]);
      if (y[j] > y[i]) break;
    }
    double right_saddle = y[i];
    for (std::size_t j = i + 1; j < y.size(); ++j) {
      right_saddle = std::min(right_saddle, y[j]);
      if (y[j] > y[i]) break;
    }
    const double prominence = y[i] - std::max(left_saddle, right_saddle);
    if (prominence >= min_prominence_fraction * global_max) {
      peaks.push_back(Peak{i, x_of[i], y[i], prominence});
    }
  }
  return peaks;
}

double percentile(std::span<const double> xs, double p) {
  EXAEFF_REQUIRE(!xs.empty(), "percentile of empty sample");
  EXAEFF_REQUIRE(p >= 0.0 && p <= 100.0, "percentile must be in [0, 100]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo_idx = static_cast<std::size_t>(std::floor(rank));
  const auto hi_idx = std::min(lo_idx + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo_idx);
  return sorted[lo_idx] + frac * (sorted[hi_idx] - sorted[lo_idx]);
}

double weighted_mean(std::span<const double> xs,
                     std::span<const double> weights) {
  EXAEFF_REQUIRE(xs.size() == weights.size(),
                 "weighted_mean needs matching lengths");
  EXAEFF_REQUIRE(!xs.empty(), "weighted_mean of empty sample");
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    num += xs[i] * weights[i];
    den += weights[i];
  }
  EXAEFF_REQUIRE(den > 0.0, "weighted_mean weights must sum to > 0");
  return num / den;
}

}  // namespace exaeff
