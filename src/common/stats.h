// exaeff/common/stats.h
//
// Statistics toolkit used throughout the pipeline:
//
//   * StreamingMoments — single-pass mean/variance/min/max (Welford), with
//     optional per-observation weights (telemetry samples carry a duration
//     weight when aggregation windows differ).
//   * Histogram        — fixed-width weighted histogram over a closed
//     range, the workhorse behind Figures 8 and 9.
//   * gaussian_kde     — kernel density estimate evaluated on a grid; used
//     to render the smooth power-distribution curves and to locate modes.
//   * find_peaks       — local-maxima detection with prominence filtering,
//     used by the modal decomposition to identify regions of operation.
//   * percentile       — linear-interpolation percentile of a sample.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/error.h"

namespace exaeff {

/// Single-pass weighted mean/variance/extrema accumulator (Welford's
/// algorithm generalized to weights).  Numerically stable for the billions
/// of telemetry samples a full campaign produces.
class StreamingMoments {
 public:
  /// Adds an observation with weight 1.
  void add(double x) { add_weighted(x, 1.0); }

  /// Adds an observation with the given positive weight.
  void add_weighted(double x, double weight);

  /// Merges another accumulator into this one (parallel reduction step).
  void merge(const StreamingMoments& other);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double weight() const { return total_weight_; }
  [[nodiscard]] double mean() const { return mean_; }
  /// Population variance (weighted). Zero when fewer than two observations.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  /// Weighted sum of the observations (mean * total weight).
  [[nodiscard]] double sum() const { return mean_ * total_weight_; }

 private:
  std::size_t count_ = 0;
  double total_weight_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // weighted sum of squared deviations
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width weighted histogram over [lo, hi].  Out-of-range samples are
/// clamped into the edge bins (telemetry can carry boost-region samples
/// above the nominal range; the paper counts those in the topmost region).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0);
  void merge(const Histogram& other);

  /// Bin that `x` falls into (out-of-range values clamp to the edge
  /// bins, exactly as add() counts them).  Inline: this is the per-sample
  /// lookup on the batched telemetry ingest path.
  [[nodiscard]] std::size_t bin_index_of(double x) const {
    return bin_index(x);
  }
  /// Adds `weight` directly to bin `bin` — the hot-path companion to
  /// add() for callers sharing one bin lookup across several histograms
  /// of identical shape.  Precondition: bin < bin_count().
  void add_at(std::size_t bin, double weight = 1.0) {
    counts_[bin] += weight;
    total_ += weight;
  }
  /// Counts one unit-weight sample in bin `bin` WITHOUT updating the
  /// total — pair with one add_total(n) per batch.  Splitting the two
  /// removes a serialized add into total_ from every iteration of the
  /// batched ingest loop; unit weights make the deferred total exact
  /// (n additions of 1.0 and one addition of n are both integer sums,
  /// bit-identical below 2^53).  Precondition: bin < bin_count().
  void count_at(std::size_t bin) { counts_[bin] += 1.0; }
  /// Adds `n` unit-weight samples' worth of total weight; see count_at.
  void add_total(double n) { total_ += n; }

  /// Overwrites the bin weights and total with previously captured
  /// values (checkpoint restore).  `weights` must match bin_count();
  /// passing back exactly what weights()/total_weight() returned
  /// reproduces the histogram bit for bit.
  void restore(std::span<const double> weights, double total);

  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }
  [[nodiscard]] double bin_width() const { return width_; }
  /// Center of bin i.
  [[nodiscard]] double bin_center(std::size_t i) const;
  /// Weighted count in bin i.
  [[nodiscard]] double bin_weight(std::size_t i) const { return counts_[i]; }
  /// Total accumulated weight.
  [[nodiscard]] double total_weight() const { return total_; }
  /// Probability-density value of bin i (weight / (total * bin_width)).
  [[nodiscard]] double density(std::size_t i) const;
  /// Sum of weights for samples falling in [a, b) (bin-resolution).
  [[nodiscard]] double weight_between(double a, double b) const;
  /// Read-only view of raw bin weights.
  [[nodiscard]] std::span<const double> weights() const { return counts_; }

 private:
  [[nodiscard]] std::size_t bin_index(double x) const {
    if (x <= lo_) return 0;
    if (x >= hi_) return counts_.size() - 1;
    const auto idx = static_cast<std::size_t>((x - lo_) / width_);
    return std::min(idx, counts_.size() - 1);
  }

  double lo_;
  double hi_;
  double width_;
  double total_ = 0.0;
  std::vector<double> counts_;
};

/// Gaussian kernel density estimate of weighted samples, evaluated at
/// `grid_points` evenly spaced points spanning [lo, hi].
/// `bandwidth` is the kernel standard deviation (same unit as x).
[[nodiscard]] std::vector<double> gaussian_kde(std::span<const double> xs,
                                               std::span<const double> weights,
                                               double lo, double hi,
                                               std::size_t grid_points,
                                               double bandwidth);

/// Smooths a histogram into a density curve via a Gaussian kernel applied
/// at bin granularity.  Cheap enough for billions of underlying samples
/// since it works on the binned representation.
[[nodiscard]] std::vector<double> smooth_density(const Histogram& h,
                                                 double bandwidth);

/// A detected density peak: grid/bin index, x location, height, and
/// prominence (height above the higher of the two flanking saddles).
struct Peak {
  std::size_t index = 0;
  double x = 0.0;
  double height = 0.0;
  double prominence = 0.0;
};

/// Finds local maxima of `y` (with x locations from `x_of`), keeping those
/// whose prominence is at least `min_prominence` times the global maximum.
[[nodiscard]] std::vector<Peak> find_peaks(std::span<const double> y,
                                           std::span<const double> x_of,
                                           double min_prominence_fraction);

/// Linear-interpolation percentile (p in [0, 100]) of a sample.  Sorts a
/// copy; intended for report-size data, not raw telemetry.
[[nodiscard]] double percentile(std::span<const double> xs, double p);

/// Weighted arithmetic mean of xs (weights must match length; sum > 0).
[[nodiscard]] double weighted_mean(std::span<const double> xs,
                                   std::span<const double> weights);

}  // namespace exaeff
