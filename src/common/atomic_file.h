// exaeff/common/atomic_file.h
//
// Crash-safe artifact commit: every file the pipeline writes (reports,
// traces, metrics, checkpoints, spilled telemetry chunks) goes through
// write-temp → flush → fsync → rename.  rename(2) is atomic within a
// filesystem, so a kill at any instant leaves either the previous
// artifact or the complete new one on disk — never a truncated file.
// The temp file lives next to the target (`<path>.tmp.<pid>`) so the
// rename never crosses filesystems, and is unlinked if the writer dies
// before commit() or abandons the write.
//
// (Historically `exaeff::run::AtomicFile`; it lives in common/ so the
// telemetry spill store — which sits below run/ in the layering — can
// commit chunk files through the same path.  `run/atomic_file.h` keeps
// the old name as an alias.)
#pragma once

#include <sstream>
#include <string>

namespace exaeff {

/// Buffered atomic file writer.  Accumulate content via stream() (or
/// write()), then commit() once; the destructor discards an uncommitted
/// temp file.  Artifacts in this pipeline are reports, journals and
/// compressed spill chunks — small enough that buffering in memory is
/// the simple, safe choice.
class AtomicFile {
 public:
  explicit AtomicFile(std::string path);
  ~AtomicFile();
  AtomicFile(const AtomicFile&) = delete;
  AtomicFile& operator=(const AtomicFile&) = delete;

  /// The in-memory buffer; anything streamed here lands in the file on
  /// commit().
  [[nodiscard]] std::ostream& stream() { return buffer_; }
  void write(std::string_view text) { buffer_ << text; }

  /// Writes the buffer to `<path>.tmp.<pid>`, fsyncs, and renames over
  /// the target.  Returns false (and removes the temp) on any failure.
  /// At most one commit per instance.
  [[nodiscard]] bool commit();

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::string temp_path_;
  std::ostringstream buffer_;
  bool committed_ = false;
};

/// One-shot helper: atomically replaces `path` with `content`.
[[nodiscard]] bool write_file_atomic(const std::string& path,
                                     std::string_view content);

}  // namespace exaeff
