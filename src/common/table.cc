#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/error.h"

namespace exaeff {

void TextTable::set_header(std::vector<std::string> header) {
  EXAEFF_REQUIRE(!header.empty(), "table header must not be empty");
  EXAEFF_REQUIRE(rows_.empty(), "set the header before adding rows");
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  EXAEFF_REQUIRE(header_.empty() || row.size() == header_.size(),
                 "row width must match header");
  rows_.push_back(Row{std::move(row), pending_rule_});
  pending_rule_ = false;
}

void TextTable::add_rule() { pending_rule_ = true; }

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string TextTable::pct(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, v);
  return buf;
}

std::string TextTable::str() const {
  // Column widths.
  std::vector<std::size_t> width(header_.size(), 0);
  auto grow = [&width](const std::vector<std::string>& cells) {
    if (cells.size() > width.size()) width.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      width[i] = std::max(width[i], cells[i].size());
    }
  };
  grow(header_);
  for (const auto& r : rows_) grow(r.cells);

  std::ostringstream os;
  auto hline = [&] {
    os << '+';
    for (std::size_t w : width) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t i = 0; i < width.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string{};
      os << ' ' << c << std::string(width[i] - c.size() + 1, ' ') << '|';
    }
    os << '\n';
  };

  if (!title_.empty()) os << title_ << '\n';
  hline();
  if (!header_.empty()) {
    emit(header_);
    hline();
  }
  for (const auto& r : rows_) {
    if (r.rule_before) hline();
    emit(r.cells);
  }
  hline();
  return os.str();
}

std::string TextTable::csv() const {
  std::ostringstream os;
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) os << ',';
      os << quote(cells[i]);
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r.cells);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.str();
}

}  // namespace exaeff
