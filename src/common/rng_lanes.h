// exaeff/common/rng_lanes.h
//
// Lockstep Marsaglia-polar pre-draws for N independent Rng streams.
//
// The telemetry hot path draws one standard normal per sample per
// channel, and channels that share a phase schedule walk the same
// windows.  Drawing those channels one at a time serializes every
// sample behind the polar method's mispredicted rejection branch.
// A PolarLanes engine instead advances N streams together: each call
// to generate() produces, per stream, exactly the accepted (u, s) pair
// the scalar rejection loop in Rng::normal() would have produced,
// consuming exactly the same raw draws — so after extract() the lanes
// continue bit-for-bit where a scalar walk would have left them.
//
// The u * sqrt(-2 ln s / s) transform is deliberately left to the
// caller (polar_transform below): run as a second pass over already-
// accepted pairs, the log/sqrt chains are independent and pipeline,
// instead of each one serializing behind the next draw's rejection
// branch.
//
// On x86 the rejection loop itself runs masked in SIMD lanes — a lane
// that has accepted freezes (state stops advancing, result is held)
// until every lane of the round is done.  PolarLanes8 uses one AVX-512
// register per xoshiro state word where available and falls back to
// two AVX2 half-groups; PolarLanes4 is the AVX2-sized variant.  Both
// produce bit-identical output through a portable kernel elsewhere.
#pragma once

#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "common/rng.h"

namespace exaeff {

/// The deferred half of Rng::normal(): maps an accepted polar pair to
/// the standard-normal value, with the exact expression (and therefore
/// the exact rounding) the scalar rejection loop uses.
[[nodiscard]] inline double polar_transform(double u, double s) {
  return u * std::sqrt(-2.0 * std::log(s) / s);
}

/// Four xoshiro256** streams advanced in lockstep through the polar
/// method's rejection loop.
class PolarLanes4 {
 public:
  explicit PolarLanes4(const std::array<Rng, 4>& lanes);

  /// Fills u[4*i + lane] and s[4*i + lane] for i in [0, n): one
  /// accepted (u, s) pair per lane per step, in the interleaved layout
  /// the two-pass fill loops consume.
  void generate(std::size_t n, double* u, double* s);

  /// Writes the advanced stream states back into `lanes`.
  void extract(std::array<Rng, 4>& lanes) const;

 private:
  // xoshiro256** lane states, structure-of-arrays so each state word
  // maps onto one SIMD register.
  std::array<std::uint64_t, 4> a_{}, b_{}, c_{}, d_{};
};

/// Eight xoshiro256** streams advanced in lockstep — the shape of one
/// node's full GCD channel set.  Wider lockstep costs slightly more
/// rounds per step (the slowest lane gates all eight) but halves the
/// per-round loop overhead per draw, and maps onto one AVX-512
/// register per state word.
class PolarLanes8 {
 public:
  explicit PolarLanes8(const std::array<Rng, 8>& lanes);

  /// Fills u[8*i + lane] and s[8*i + lane] for i in [0, n).
  void generate(std::size_t n, double* u, double* s);

  /// Writes the advanced stream states back into `lanes`.
  void extract(std::array<Rng, 8>& lanes) const;

 private:
  std::array<std::uint64_t, 8> a_{}, b_{}, c_{}, d_{};
};

}  // namespace exaeff
