#include "common/rng.h"

#include <cmath>

#include "common/error.h"

namespace exaeff {

double Rng::exponential(double mean) {
  EXAEFF_REQUIRE(mean > 0.0, "exponential mean must be positive");
  // Inverse CDF; 1-uniform() is in (0, 1] so log() is finite.
  return -mean * std::log(1.0 - uniform());
}

double Rng::lognormal(double mu, double sigma) {
  EXAEFF_REQUIRE(sigma >= 0.0, "lognormal sigma must be non-negative");
  return std::exp(mu + sigma * normal());
}

std::size_t Rng::categorical(const double* weights, std::size_t count) {
  EXAEFF_REQUIRE(count > 0, "categorical needs at least one weight");
  double total = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    EXAEFF_REQUIRE(weights[i] >= 0.0, "categorical weights must be >= 0");
    total += weights[i];
  }
  EXAEFF_REQUIRE(total > 0.0, "categorical weights must not all be zero");
  double r = uniform() * total;
  for (std::size_t i = 0; i < count; ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return count - 1;  // numerical slack lands on the last bucket
}

}  // namespace exaeff
