#include "common/ascii_plot.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "common/error.h"

namespace exaeff {

namespace {
constexpr const char kGlyphs[] = "*o+x#@%&$~";
constexpr const char kRamp[] = " .:-=+*#%@";

double transform(double v, bool log_scale) {
  if (!log_scale) return v;
  return std::log10(std::max(v, 1e-300));
}
}  // namespace

LinePlot::LinePlot(std::string title, std::size_t width, std::size_t height)
    : title_(std::move(title)), width_(width), height_(height) {
  EXAEFF_REQUIRE(width_ >= 8 && height_ >= 4, "plot raster too small");
}

void LinePlot::add_series(std::string name, std::span<const double> x,
                          std::span<const double> y) {
  EXAEFF_REQUIRE(x.size() == y.size() && !x.empty(),
                 "series needs matching non-empty x/y");
  series_.push_back(Series{std::move(name),
                           std::vector<double>(x.begin(), x.end()),
                           std::vector<double>(y.begin(), y.end())});
}

void LinePlot::set_labels(std::string x_label, std::string y_label) {
  x_label_ = std::move(x_label);
  y_label_ = std::move(y_label);
}

std::string LinePlot::str() const {
  std::ostringstream os;
  if (series_.empty()) {
    os << title_ << " (no data)\n";
    return os.str();
  }

  double x_min = std::numeric_limits<double>::infinity();
  double x_max = -x_min;
  double y_min = x_min;
  double y_max = -x_min;
  for (const auto& s : series_) {
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      const double tx = transform(s.x[i], log_x_);
      const double ty = transform(s.y[i], log_y_);
      x_min = std::min(x_min, tx);
      x_max = std::max(x_max, tx);
      y_min = std::min(y_min, ty);
      y_max = std::max(y_max, ty);
    }
  }
  if (x_max <= x_min) x_max = x_min + 1.0;
  if (y_max <= y_min) y_max = y_min + 1.0;

  std::vector<std::string> raster(height_, std::string(width_, ' '));
  for (std::size_t si = 0; si < series_.size(); ++si) {
    const char glyph = kGlyphs[si % (sizeof(kGlyphs) - 1)];
    const auto& s = series_[si];
    // Draw line segments between consecutive points with dense sampling.
    for (std::size_t i = 0; i + 1 <= s.x.size(); ++i) {
      const std::size_t j = std::min(i + 1, s.x.size() - 1);
      const double x0 = transform(s.x[i], log_x_);
      const double y0 = transform(s.y[i], log_y_);
      const double x1 = transform(s.x[j], log_x_);
      const double y1 = transform(s.y[j], log_y_);
      const int steps = static_cast<int>(width_);
      for (int t = 0; t <= steps; ++t) {
        const double a = static_cast<double>(t) / steps;
        const double xt = x0 + a * (x1 - x0);
        const double yt = y0 + a * (y1 - y0);
        const auto cx = static_cast<long>(
            std::lround((xt - x_min) / (x_max - x_min) * (width_ - 1)));
        const auto cy = static_cast<long>(
            std::lround((yt - y_min) / (y_max - y_min) * (height_ - 1)));
        if (cx >= 0 && cx < static_cast<long>(width_) && cy >= 0 &&
            cy < static_cast<long>(height_)) {
          raster[height_ - 1 - static_cast<std::size_t>(cy)]
                [static_cast<std::size_t>(cx)] = glyph;
        }
      }
    }
  }

  auto fmt = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3g", v);
    return std::string(buf);
  };
  auto inv = [](double v, bool log_scale) {
    return log_scale ? std::pow(10.0, v) : v;
  };

  os << title_ << '\n';
  if (!y_label_.empty()) os << "  y: " << y_label_ << '\n';
  const std::string top = fmt(inv(y_max, log_y_));
  const std::string bot = fmt(inv(y_min, log_y_));
  const std::size_t margin = std::max(top.size(), bot.size());
  for (std::size_t r = 0; r < height_; ++r) {
    std::string label(margin, ' ');
    if (r == 0) label = top + std::string(margin - top.size(), ' ');
    if (r == height_ - 1) label = bot + std::string(margin - bot.size(), ' ');
    os << label << " |" << raster[r] << '\n';
  }
  os << std::string(margin + 1, ' ') << '+' << std::string(width_, '-')
     << '\n';
  os << std::string(margin + 2, ' ') << fmt(inv(x_min, log_x_))
     << std::string(width_ > 16 ? width_ - 12 : 2, ' ')
     << fmt(inv(x_max, log_x_));
  if (!x_label_.empty()) os << "  (x: " << x_label_ << ')';
  os << '\n';
  os << "  legend:";
  for (std::size_t si = 0; si < series_.size(); ++si) {
    os << "  [" << kGlyphs[si % (sizeof(kGlyphs) - 1)] << "] "
       << series_[si].name;
  }
  os << '\n';
  return os.str();
}

std::string heatmap(const std::string& title,
                    std::span<const std::string> row_labels,
                    std::span<const std::string> col_labels,
                    std::span<const double> cell_values,
                    int value_precision) {
  const std::size_t rows = row_labels.size();
  const std::size_t cols = col_labels.size();
  EXAEFF_REQUIRE(cell_values.size() == rows * cols,
                 "heatmap needs rows*cols values");

  double vmax = 0.0;
  for (double v : cell_values) vmax = std::max(vmax, v);

  std::size_t label_w = 0;
  for (const auto& r : row_labels) label_w = std::max(label_w, r.size());

  auto cell_str = [&](double v) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.*f", value_precision, v);
    return std::string(buf);
  };
  std::size_t cell_w = 5;
  for (double v : cell_values) cell_w = std::max(cell_w, cell_str(v).size());
  for (const auto& c : col_labels) cell_w = std::max(cell_w, c.size());
  cell_w += 2;  // shade glyph + space

  std::ostringstream os;
  os << title << '\n';
  os << std::string(label_w + 1, ' ');
  for (const auto& c : col_labels) {
    os << ' ' << c << std::string(cell_w - c.size(), ' ');
  }
  os << '\n';
  for (std::size_t r = 0; r < rows; ++r) {
    os << row_labels[r] << std::string(label_w - row_labels[r].size() + 1, ' ');
    for (std::size_t c = 0; c < cols; ++c) {
      const double v = cell_values[r * cols + c];
      const int shade_idx =
          vmax > 0.0
              ? std::min(9, static_cast<int>(std::floor(v / vmax * 9.999)))
              : 0;
      const std::string s = cell_str(v);
      os << ' ' << kRamp[shade_idx] << s
         << std::string(cell_w - 1 - s.size(), ' ');
    }
    os << '\n';
  }
  os << "  shading: ' ' = 0 ... '@' = " << cell_str(vmax) << " (row-major max)\n";
  return os.str();
}

}  // namespace exaeff
