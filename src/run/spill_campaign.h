// exaeff/run/spill_campaign.h
//
// Out-of-core campaign generation: the driver that lets a paper-scale
// campaign (9408 nodes x 90 days) run its telemetry through a
// telemetry::SpillStore on a fixed memory budget while the accumulator
// pipeline runs unchanged.
//
// The plan step packs whole job-chunks (the exec::ThreadPool grain that
// every parallel path shares) into spill windows whose expected raw
// telemetry volume reaches the memory budget.  Window boundaries are a
// function of (schedule, budget) only — never of thread or shard count —
// so the set of spill files a campaign writes is deterministic: the
// driver closes the store at each planned boundary instead of relying on
// the store's byte-count backstop.
//
// Within a window, chunks generate in parallel exactly like the
// checkpointed path (same grain, same chunk identities, same serial fold
// order); each chunk captures its raw samples contiguously alongside its
// accumulator partial, and the fold feeds the captures to the store in
// chunk order.  Batched (EXAEFF_BATCH=1) and per-sample generation
// capture identical contiguous streams, so spill files are byte-stable
// across that switch too.
//
// Peak resident telemetry is about twice the budget: one window of chunk
// captures plus the store's resident copy of the same window during the
// fold.  See docs/performance.md ("Out-of-core campaigns").
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/accumulator.h"
#include "run/checkpoint.h"
#include "run/journal.h"
#include "sched/fleetgen.h"
#include "telemetry/spill_store.h"

namespace exaeff::run {

/// One spill window: the half-open job-index range whose telemetry is
/// buffered together and spilled as one archive.  Boundaries always sit
/// on exec::ThreadPool::chunk_grain(job_count) chunk edges.
struct SpillWindow {
  std::size_t begin = 0;
  std::size_t end = 0;

  bool operator==(const SpillWindow&) const = default;
};

/// Plans the spill windows of a campaign: greedily packs whole
/// job-chunks until the cumulative expected raw telemetry
/// (sched::expected_gcd_samples x sizeof(GcdSample)) reaches
/// `memory_budget_bytes`, then closes the window.  Every window holds at
/// least one chunk, so the plan terminates for any budget.  Windows
/// partition [0, job_count) exactly; empty log -> empty plan.
[[nodiscard]] std::vector<SpillWindow> plan_spill_windows(
    const sched::SchedulerLog& log, double window_s,
    std::size_t gcds_per_node, std::size_t memory_budget_bytes);

/// The windows of `windows` covering jobs [begin, end) — the shard
/// worker's slice of a global plan.  Requires [begin, end) to sit on
/// window boundaries of the plan.  Also returns (via `first_index`,
/// optional) the global plan index of the first returned window, which
/// is what a shard worker passes as SpillConfig::window_index_base so
/// its files carry campaign-global window numbers.
[[nodiscard]] std::vector<SpillWindow> windows_in_range(
    std::span<const SpillWindow> windows, std::size_t begin,
    std::size_t end, std::size_t* first_index = nullptr);

/// Generates telemetry for jobs [range_begin, range_end) of `log` into
/// `acc` (exactly as the checkpointed/sharded paths do) while streaming
/// every raw sample through `store`, closing the store's window at each
/// planned boundary in `windows` (which must cover exactly
/// [range_begin, range_end)).  Chunk grain derives from the full job
/// count and the range must be chunk-aligned, so accumulator results and
/// spill-file bytes are identical for any thread count or shard split.
///
/// When `journal` is non-null, every generated chunk's partial is
/// appended under the same campaign_chunk_key the checkpointed path
/// uses (fault-free plan) — but only after the chunk's window commits
/// its spill file, so a journal never claims telemetry whose spill file
/// a crash could have lost.  Generation itself always recomputes (the
/// raw samples a spill window needs are not journaled).
void generate_telemetry_spilled(const sched::FleetGenerator& gen,
                                const sched::SchedulerLog& log,
                                std::size_t range_begin,
                                std::size_t range_end,
                                core::CampaignAccumulator& acc,
                                telemetry::SpillStore& store,
                                exec::ThreadPool& pool, Journal* journal,
                                std::span<const SpillWindow> windows,
                                const ChunkDoneFn& on_chunk_done = {});

/// Whole-log convenience overload.
void generate_telemetry_spilled(const sched::FleetGenerator& gen,
                                const sched::SchedulerLog& log,
                                core::CampaignAccumulator& acc,
                                telemetry::SpillStore& store,
                                exec::ThreadPool& pool, Journal* journal,
                                std::span<const SpillWindow> windows);

}  // namespace exaeff::run
