// exaeff/run/supervisor.h
//
// Supervised execution for long campaigns: one object that owns the
// run's CancellationToken and every way it can trip —
//
//   * SIGINT / SIGTERM handlers (async-signal-safe: the handler does one
//     atomic CAS on the token; a second signal hard-exits with the
//     conventional 128+sig code in case graceful shutdown itself hangs),
//   * an optional wall-clock deadline enforced by a watchdog thread,
//     which also logs a "stuck stage" warning naming the most recently
//     opened obs span when no new span has opened for the soft timeout
//     (one long chunk, a deadlock, a wedged stage).
//
// The pipeline observes cancellation at thread-pool chunk boundaries
// (exec/cancellation.h): in-flight work finishes, finished work is in the
// checkpoint journal, and the interrupted loop throws CancelledError,
// which the CLI maps to exit code 130.
#pragma once

#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

#include "exec/cancellation.h"

namespace exaeff::run {

struct SupervisorOptions {
  /// Wall-clock budget for the whole run; <= 0 disables the watchdog's
  /// deadline (signals still work).
  double deadline_s = 0.0;
  /// Log a stuck-stage warning when no obs span has opened for this
  /// long; <= 0 derives min(30 s, deadline / 4) clamped to >= 1 s.
  double soft_stage_timeout_s = 0.0;
  /// Install SIGINT/SIGTERM handlers (tests turn this off).
  bool handle_signals = true;
};

class Supervisor {
 public:
  explicit Supervisor(SupervisorOptions options = {});
  /// Restores previous signal dispositions and joins the watchdog.
  ~Supervisor();
  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  [[nodiscard]] exec::CancellationToken& token() { return token_; }
  [[nodiscard]] bool cancelled() const { return token_.cancelled(); }

  /// Human-readable cause for token.reason(): "SIGINT", "SIGTERM",
  /// "deadline", or "cancelled".
  [[nodiscard]] static std::string reason_name(int reason);

  /// Increments exaeff_run_cancellations_total (call once per observed
  /// cancellation, from normal context — never from a handler).
  static void publish_cancellation();

 private:
  void watchdog_main();

  SupervisorOptions options_;
  exec::CancellationToken token_;
  bool signals_installed_ = false;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread watchdog_;
};

}  // namespace exaeff::run
