// exaeff/run/checkpoint.h
//
// Chunk-granular checkpoint/resume for the campaign pipeline and the
// faults sweep.
//
// The parallel telemetry path (exec::ThreadPool::map_chunks over the
// scheduler log) already partitions a campaign into chunks whose
// boundaries are a fixed function of the job count, and folds per-chunk
// accumulator partials serially in chunk order.  Checkpointing rides on
// exactly that structure: each completed chunk's partial is serialized
// (bit-exact hex doubles) and appended to a Journal under a content hash
// of (campaign config, seed, fault plan, chunk range).  On resume,
// journaled chunks are restored instead of recomputed; since a restored
// partial is bitwise equal to the recomputed one and the fold order is
// unchanged, the resumed run's artifacts are byte-identical to an
// uninterrupted run at the same seed, config, and any --jobs=N.
//
// Cancellation (SIGINT/SIGTERM/deadline) surfaces here as the pool's
// CancelledError: chunks finished before the stop are already durably
// journaled (appends happen inside the chunk, before it reports done),
// so nothing computed is ever lost.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "core/accumulator.h"
#include "core/projection.h"
#include "faults/injector.h"
#include "run/journal.h"
#include "sched/fleetgen.h"

namespace exaeff::run {

/// Content hash identifying one campaign realization: everything that
/// changes the telemetry stream (fleet size, duration, window, seed,
/// noise/boost parameters, fault plan, job count).  Two runs share
/// journal entries iff their keys match.
[[nodiscard]] std::uint64_t campaign_config_key(
    const sched::CampaignConfig& cfg, const faults::FaultPlan& plan,
    std::size_t job_count);

/// Key of one job-chunk work unit under `config_key`.
[[nodiscard]] std::uint64_t campaign_chunk_key(std::uint64_t config_key,
                                               std::size_t begin,
                                               std::size_t end);

// --- campaign chunk payloads -----------------------------------------

[[nodiscard]] std::string encode_campaign_chunk(
    const core::CampaignAccumulator& partial,
    const faults::FaultCounters& counters);

/// Restores a payload into `partial` (an empty sibling of the target
/// accumulator).  Returns false — leaving the outputs untouched — on any
/// malformed field or shape mismatch, in which case the caller simply
/// recomputes the chunk.
[[nodiscard]] bool decode_campaign_chunk(std::string_view payload,
                                         core::CampaignAccumulator& partial,
                                         faults::FaultCounters& counters);

/// Drop-in replacement for the FleetGenerator sharded-telemetry path
/// with chunk-granular checkpointing.  Chunks present in `journal` are
/// restored; missing chunks are computed in parallel on `pool` (faulted
/// through `plan` when enabled) and appended to `journal` as they
/// complete.  Partials merge into `acc` serially in chunk order either
/// way.  With `journal == nullptr` this is byte-identical to
/// FleetGenerator::generate_telemetry(log, shards, pool).
/// `counters_out` (optional) receives the merged fault tallies.
void generate_telemetry_checkpointed(const sched::FleetGenerator& gen,
                                     const sched::SchedulerLog& log,
                                     core::CampaignAccumulator& acc,
                                     const faults::FaultPlan& plan,
                                     exec::ThreadPool& pool,
                                     Journal* journal,
                                     faults::FaultCounters* counters_out);

/// Called after each chunk lands (restored or computed + journaled) with
/// its global [begin, end) job range.  May run concurrently from pool
/// workers.
using ChunkDoneFn = std::function<void(std::size_t, std::size_t)>;

/// Range-restricted variant covering jobs [begin, end) of `log` — the
/// shard worker's inner loop.  Chunk boundaries, journal keys, and the
/// merge order are those of the full-log run (the grain is derived from
/// log.jobs().size(), and `begin` must be chunk-aligned), so per-chunk
/// partials journaled by any shard split can be refolded into exactly
/// the serial fold tree.  `end` must be chunk-aligned or equal to the
/// job count.
void generate_telemetry_checkpointed(const sched::FleetGenerator& gen,
                                     const sched::SchedulerLog& log,
                                     std::size_t begin, std::size_t end,
                                     core::CampaignAccumulator& acc,
                                     const faults::FaultPlan& plan,
                                     exec::ThreadPool& pool,
                                     Journal* journal,
                                     faults::FaultCounters* counters_out,
                                     const ChunkDoneFn& on_chunk_done = {});

// --- faults-sweep point payloads --------------------------------------

/// One completed dropout point of `faults-sweep` — the sweep's unit of
/// checkpointing (each point regenerates a whole campaign internally).
struct SweepPointCheckpoint {
  int pct = 0;
  std::uint64_t records = 0;
  double coverage = 1.0;
  core::ProjectionRow row;
  faults::FaultCounters counters;
  bool faulted = false;
};

/// Key of one sweep point under `config_key` (include the focus cap
/// setting so a changed sweep configuration never matches stale points).
[[nodiscard]] std::uint64_t sweep_point_key(std::uint64_t config_key,
                                            double focus_setting, int pct);

[[nodiscard]] std::string encode_sweep_point(const SweepPointCheckpoint& p);
[[nodiscard]] bool decode_sweep_point(std::string_view payload,
                                      SweepPointCheckpoint& p);

}  // namespace exaeff::run
