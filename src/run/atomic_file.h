// exaeff/run/atomic_file.h
//
// Compatibility alias: the atomic write-temp → fsync → rename writer
// moved to common/atomic_file.h so layers below run/ (the telemetry
// spill store) can use it.  Existing run:: spellings keep working.
#pragma once

#include "common/atomic_file.h"

namespace exaeff::run {

using exaeff::AtomicFile;
using exaeff::write_file_atomic;

}  // namespace exaeff::run
