#include "run/supervisor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>

#include <unistd.h>

#include "common/error.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace exaeff::run {

namespace {

// One supervisor may own the process signal handlers at a time.  The
// handler reads the token through a lock-free atomic; everything it does
// is async-signal-safe (CAS, _exit).
std::atomic<exec::CancellationToken*> g_signal_token{nullptr};

extern "C" void exaeff_signal_handler(int sig) {
  exec::CancellationToken* tok =
      g_signal_token.load(std::memory_order_acquire);
  if (tok == nullptr || !tok->cancel(sig)) {
    // No graceful path (or the second signal): exit the conventional way.
    _exit(128 + sig);
  }
}

}  // namespace

Supervisor::Supervisor(SupervisorOptions options) : options_(options) {
  if (options_.soft_stage_timeout_s <= 0.0) {
    options_.soft_stage_timeout_s =
        options_.deadline_s > 0.0
            ? std::clamp(options_.deadline_s / 4.0, 1.0, 30.0)
            : 30.0;
  }
  if (options_.handle_signals) {
    exec::CancellationToken* expected = nullptr;
    EXAEFF_REQUIRE(g_signal_token.compare_exchange_strong(
                       expected, &token_, std::memory_order_acq_rel),
                   "only one Supervisor may handle signals at a time");
    signals_installed_ = true;
    struct sigaction sa = {};
    sa.sa_handler = exaeff_signal_handler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;  // no SA_RESTART: interrupt blocking IO promptly
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
  }
  if (options_.deadline_s > 0.0) {
    if (obs::metrics_enabled()) {
      obs::MetricsRegistry::global()
          .gauge("exaeff_run_deadline_seconds",
                 "Wall-clock deadline configured for this run")
          .set(options_.deadline_s);
    }
    watchdog_ = std::thread([this] { watchdog_main(); });
  }
}

Supervisor::~Supervisor() {
  {
    const std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
  if (signals_installed_) {
    struct sigaction sa = {};
    sa.sa_handler = SIG_DFL;
    sigemptyset(&sa.sa_mask);
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
    g_signal_token.store(nullptr, std::memory_order_release);
  }
}

void Supervisor::watchdog_main() {
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  const auto deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(options_.deadline_s));
  const auto soft_us =
      static_cast<std::uint64_t>(options_.soft_stage_timeout_s * 1e6);
  const char* warned_stage = nullptr;
  std::uint64_t warned_open_us = 0;

  std::unique_lock<std::mutex> lk(mu_);
  while (!stop_) {
    if (cv_.wait_for(lk, std::chrono::milliseconds(100),
                     [this] { return stop_; })) {
      return;
    }
    if (token_.cancelled()) return;  // someone else tripped it; done
    if (Clock::now() >= deadline) {
      obs::Logger::global().warn(
          "run.deadline_exceeded",
          {{"deadline_s", options_.deadline_s},
           {"stage", obs::last_span_name() ? obs::last_span_name() : "?"}});
      token_.cancel(exec::CancellationToken::kDeadline);
      return;
    }
    // Stuck-stage heuristic: spans open constantly while the pipeline
    // makes progress; a long quiet spell names the wedged stage.
    const char* stage = obs::last_span_name();
    const std::uint64_t opened = obs::last_span_open_us();
    if (stage != nullptr &&
        obs::monotonic_now_us() - opened > soft_us &&
        (stage != warned_stage || opened != warned_open_us)) {
      warned_stage = stage;
      warned_open_us = opened;
      obs::Logger::global().warn(
          "run.stuck_stage",
          {{"stage", stage},
           {"quiet_s", static_cast<double>(
                           obs::monotonic_now_us() - opened) / 1e6},
           {"soft_timeout_s", options_.soft_stage_timeout_s}});
    }
  }
}

std::string Supervisor::reason_name(int reason) {
  switch (reason) {
    case SIGINT: return "SIGINT";
    case SIGTERM: return "SIGTERM";
    case exec::CancellationToken::kDeadline: return "deadline";
    default: return "cancelled";
  }
}

void Supervisor::publish_cancellation() {
  if (!obs::metrics_enabled()) return;
  obs::MetricsRegistry::global()
      .counter("exaeff_run_cancellations_total",
               "Runs interrupted by signal or deadline")
      .inc();
}

}  // namespace exaeff::run
