#include "run/spill_campaign.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/error.h"
#include "exec/thread_pool.h"
#include "obs/trace.h"
#include "sched/join.h"

namespace exaeff::run {

namespace {

/// Tees one chunk's stream into the chunk's partial accumulator while
/// capturing the raw samples contiguously.  The capture normalizes the
/// generator's delivery shape: per-sample (EXAEFF_BATCH=0) and batched
/// generation append the identical record sequence, so everything
/// downstream — including spill-file bytes — is independent of the
/// batching switch.
class CaptureSink final : public sched::JobSampleSink {
 public:
  explicit CaptureSink(core::CampaignAccumulator& acc) : acc_(&acc) {}

  void on_job_sample(const telemetry::GcdSample& sample,
                     const sched::Job& job) override {
    acc_->on_job_sample(sample, job);
    gcd.push_back(sample);
  }
  void on_node_sample(const telemetry::NodeSample& sample) override {
    acc_->on_node_sample(sample);
    node.push_back(sample);
  }
  void on_job_batch(std::span<const telemetry::GcdSample> samples,
                    const sched::Job& job) override {
    acc_->on_job_batch(samples, job);
    gcd.insert(gcd.end(), samples.begin(), samples.end());
  }
  void on_node_batch(
      std::span<const telemetry::NodeSample> samples) override {
    acc_->on_node_batch(samples);
    node.insert(node.end(), samples.begin(), samples.end());
  }

  std::vector<telemetry::GcdSample> gcd;
  std::vector<telemetry::NodeSample> node;

 private:
  core::CampaignAccumulator* acc_;
};

}  // namespace

std::vector<SpillWindow> plan_spill_windows(const sched::SchedulerLog& log,
                                            double window_s,
                                            std::size_t gcds_per_node,
                                            std::size_t memory_budget_bytes) {
  const auto& jobs = log.jobs();
  std::vector<SpillWindow> windows;
  if (jobs.empty()) return windows;
  EXAEFF_REQUIRE(memory_budget_bytes > 0,
                 "spill plan: memory budget must be positive");
  const std::size_t grain = exec::ThreadPool::chunk_grain(jobs.size());
  SpillWindow cur{0, 0};
  std::uint64_t expected_bytes = 0;
  for (std::size_t begin = 0; begin < jobs.size(); begin += grain) {
    const std::size_t end = std::min(begin + grain, jobs.size());
    for (std::size_t i = begin; i < end; ++i) {
      expected_bytes +=
          sched::expected_gcd_samples(jobs[i], window_s, gcds_per_node) *
          sizeof(telemetry::GcdSample);
    }
    cur.end = end;
    // The budget check runs after at least one chunk joined the window,
    // so every window is non-empty and the plan always terminates.
    if (expected_bytes >= memory_budget_bytes) {
      windows.push_back(cur);
      cur = {end, end};
      expected_bytes = 0;
    }
  }
  if (cur.end > cur.begin) windows.push_back(cur);
  return windows;
}

std::vector<SpillWindow> windows_in_range(
    std::span<const SpillWindow> windows, std::size_t begin,
    std::size_t end, std::size_t* first_index) {
  std::vector<SpillWindow> out;
  bool found_begin = begin == end;
  for (std::size_t i = 0; i < windows.size(); ++i) {
    const SpillWindow& w = windows[i];
    if (w.end <= begin || w.begin >= end) continue;
    EXAEFF_REQUIRE(w.begin >= begin && w.end <= end,
                   "shard range does not sit on spill window boundaries");
    if (out.empty()) {
      found_begin = w.begin == begin;
      if (first_index != nullptr) *first_index = i;
    }
    out.push_back(w);
  }
  EXAEFF_REQUIRE(found_begin && (out.empty() ? begin == end
                                             : out.back().end == end),
                 "shard range does not sit on spill window boundaries");
  if (out.empty() && first_index != nullptr) *first_index = 0;
  return out;
}

void generate_telemetry_spilled(const sched::FleetGenerator& gen,
                                const sched::SchedulerLog& log,
                                std::size_t range_begin,
                                std::size_t range_end,
                                core::CampaignAccumulator& acc,
                                telemetry::SpillStore& store,
                                exec::ThreadPool& pool, Journal* journal,
                                std::span<const SpillWindow> windows,
                                const ChunkDoneFn& on_chunk_done) {
  EXAEFF_TRACE_SPAN("run.telemetry_spilled");
  const auto& jobs = log.jobs();
  // Same alignment contract as the checkpointed path: grain from the
  // full job count, range on chunk boundaries, so chunk identities and
  // the fold order match every other generation path.
  const std::size_t grain = exec::ThreadPool::chunk_grain(jobs.size());
  EXAEFF_REQUIRE(range_begin <= range_end && range_end <= jobs.size(),
                 "telemetry range out of bounds");
  EXAEFF_REQUIRE(range_begin % grain == 0,
                 "telemetry range must start on a chunk boundary");
  EXAEFF_REQUIRE(range_end % grain == 0 || range_end == jobs.size(),
                 "telemetry range must end on a chunk boundary");
  EXAEFF_REQUIRE(
      windows.empty() ? range_begin == range_end
                      : windows.front().begin == range_begin &&
                            windows.back().end == range_end,
      "spill windows must cover the telemetry range exactly");
  const faults::FaultPlan no_faults;  // spill mode never injects faults
  const std::uint64_t config_key =
      campaign_config_key(gen.config(), no_faults, jobs.size());
  const double window_s = gen.config().telemetry_window_s;
  const std::size_t gcds_per_node =
      gen.config().system.node.gcds_per_node();

  struct ChunkOut {
    std::unique_ptr<core::CampaignAccumulator> partial;
    std::vector<telemetry::GcdSample> gcd;
    std::vector<telemetry::NodeSample> node;
    std::uint64_t key = 0;
  };

  std::size_t prev_end = range_begin;
  for (const SpillWindow& w : windows) {
    EXAEFF_REQUIRE(w.begin == prev_end && w.end > w.begin,
                   "spill windows must be contiguous and non-empty");
    EXAEFF_REQUIRE(w.begin % grain == 0 &&
                       (w.end % grain == 0 || w.end == jobs.size()),
                   "spill window must sit on chunk boundaries");
    prev_end = w.end;

    auto outs = pool.map_chunks(
        w.end - w.begin, grain,
        [&](std::size_t local_begin, std::size_t local_end) {
          const std::size_t begin = w.begin + local_begin;
          const std::size_t end = w.begin + local_end;
          ChunkOut out;
          out.partial = std::make_unique<core::CampaignAccumulator>(
              acc.make_sibling());
          CaptureSink capture(*out.partial);
          // Reserve the exact record count up front: a growing vector's
          // doubling reallocation would transiently hold ~1.5× the
          // chunk's bytes, and the chunk is the unit the memory budget
          // is planned in.
          std::uint64_t expected = 0;
          for (std::size_t k = begin; k < end; ++k) {
            expected +=
                sched::expected_gcd_samples(jobs[k], window_s,
                                            gcds_per_node);
          }
          capture.gcd.reserve(expected);
          // Always generate: the raw samples the spill window needs are
          // never journaled, and the generator is deterministic, so a
          // restarted worker recomputes the same bytes.
          gen.generate_telemetry(log, begin, end, capture);
          out.gcd = std::move(capture.gcd);
          out.node = std::move(capture.node);
          out.key = campaign_chunk_key(config_key, begin, end);
          if (on_chunk_done) on_chunk_done(begin, end);
          return out;
        });

    // Serial fold in chunk order: accumulator merge plus the store
    // ingest, then the planned window close — the only place a spill
    // file is ever cut, so the file set is a function of the plan alone.
    for (auto& out : outs) {
      acc.merge(*out.partial);
      // Hand each chunk's capture to the store by move (adopted
      // wholesale when it opens the window) and drop the node capture
      // right after the fold: the resident window and the captured
      // chunks must not double-buffer the window's bytes.
      store.ingest_gcd_owned(std::move(out.gcd));
      store.on_node_batch(out.node);
      std::vector<telemetry::GcdSample>().swap(out.gcd);
      std::vector<telemetry::NodeSample>().swap(out.node);
    }
    store.close_window();
    // Journal only after the window's spill file is durably committed:
    // a journal that claims a chunk must never outrun the spill file
    // carrying that chunk's telemetry (the shard coordinator treats a
    // complete journal as a complete shard).
    if (journal != nullptr) {
      for (const auto& out : outs) {
        if (journal->find(out.key) == nullptr) {
          journal->append(out.key,
                          encode_campaign_chunk(*out.partial,
                                                faults::FaultCounters{}));
        }
      }
    }
  }
}

void generate_telemetry_spilled(const sched::FleetGenerator& gen,
                                const sched::SchedulerLog& log,
                                core::CampaignAccumulator& acc,
                                telemetry::SpillStore& store,
                                exec::ThreadPool& pool, Journal* journal,
                                std::span<const SpillWindow> windows) {
  generate_telemetry_spilled(gen, log, 0, log.jobs().size(), acc, store,
                             pool, journal, windows, {});
}

}  // namespace exaeff::run
