#include "run/checkpoint.h"

#include <memory>
#include <sstream>
#include <vector>

#include "exec/thread_pool.h"
#include "obs/log.h"
#include "obs/trace.h"

namespace exaeff::run {

namespace {

void hash_field(std::string& acc, std::string_view name, std::uint64_t v) {
  acc += name;
  acc += '=';
  acc += encode_u64(v);
  acc += '|';
}

void hash_field(std::string& acc, std::string_view name, double v) {
  acc += name;
  acc += '=';
  acc += encode_f64(v);
  acc += '|';
}

/// Appends a sparse (index:bits) encoding of one histogram's weights.
void encode_weights(std::ostringstream& os, std::span<const double> w,
                    double total) {
  std::size_t nonzero = 0;
  for (const double x : w) nonzero += x != 0.0 ? 1 : 0;
  os << ' ' << encode_f64(total) << ' ' << nonzero;
  for (std::size_t i = 0; i < w.size(); ++i) {
    if (w[i] != 0.0) os << ' ' << i << ':' << encode_f64(w[i]);
  }
}

/// Token reader over a space-separated payload.
class TokenReader {
 public:
  explicit TokenReader(std::string_view payload) : rest_(payload) {}

  [[nodiscard]] bool next(std::string_view& tok) {
    while (!rest_.empty() && rest_.front() == ' ') rest_.remove_prefix(1);
    if (rest_.empty()) return false;
    const auto sp = rest_.find(' ');
    tok = rest_.substr(0, sp);
    rest_.remove_prefix(sp == std::string_view::npos ? rest_.size()
                                                     : sp + 1);
    return true;
  }

  [[nodiscard]] bool next_u64(std::uint64_t& out) {
    std::string_view tok;
    return next(tok) && decode_u64(tok, out);
  }

  [[nodiscard]] bool next_f64(double& out) {
    std::string_view tok;
    return next(tok) && decode_f64(tok, out);
  }

  /// Plain decimal (counts, bin indices).
  [[nodiscard]] bool next_dec(std::size_t& out) {
    std::string_view tok;
    if (!next(tok) || tok.empty()) return false;
    std::size_t v = 0;
    for (const char c : tok) {
      if (c < '0' || c > '9') return false;
      v = v * 10 + static_cast<std::size_t>(c - '0');
    }
    out = v;
    return true;
  }

  [[nodiscard]] bool expect(std::string_view word) {
    std::string_view tok;
    return next(tok) && tok == word;
  }

  [[nodiscard]] bool exhausted() {
    std::string_view tok;
    return !next(tok);
  }

 private:
  std::string_view rest_;
};

/// Reads one sparse weight section into a dense vector of `bins` zeros.
[[nodiscard]] bool decode_weights(TokenReader& r, std::size_t bins,
                                  std::vector<double>& weights,
                                  double& total) {
  std::size_t npairs = 0;
  if (!r.next_f64(total) || !r.next_dec(npairs) || npairs > bins) {
    return false;
  }
  weights.assign(bins, 0.0);
  for (std::size_t p = 0; p < npairs; ++p) {
    std::string_view tok;
    if (!r.next(tok)) return false;
    const auto colon = tok.find(':');
    if (colon == std::string_view::npos) return false;
    std::size_t idx = 0;
    for (const char c : tok.substr(0, colon)) {
      if (c < '0' || c > '9') return false;
      idx = idx * 10 + static_cast<std::size_t>(c - '0');
    }
    double v = 0.0;
    if (idx >= bins || !decode_f64(tok.substr(colon + 1), v)) return false;
    weights[idx] = v;
  }
  return true;
}

void encode_counters(std::ostringstream& os,
                     const faults::FaultCounters& c) {
  os << ' ' << encode_u64(c.samples_in) << ' ' << encode_u64(c.passed)
     << ' ' << encode_u64(c.dropped_iid) << ' '
     << encode_u64(c.dropped_burst) << ' ' << encode_u64(c.dropped_outage)
     << ' ' << encode_u64(c.stuck) << ' ' << encode_u64(c.spiked) << ' '
     << encode_u64(c.skewed) << ' ' << encode_u64(c.reordered);
}

[[nodiscard]] bool decode_counters(TokenReader& r,
                                   faults::FaultCounters& c) {
  return r.next_u64(c.samples_in) && r.next_u64(c.passed) &&
         r.next_u64(c.dropped_iid) && r.next_u64(c.dropped_burst) &&
         r.next_u64(c.dropped_outage) && r.next_u64(c.stuck) &&
         r.next_u64(c.spiked) && r.next_u64(c.skewed) &&
         r.next_u64(c.reordered);
}

}  // namespace

std::uint64_t campaign_config_key(const sched::CampaignConfig& cfg,
                                  const faults::FaultPlan& plan,
                                  std::size_t job_count) {
  std::string basis = "campaign|";
  hash_field(basis, "nodes",
             static_cast<std::uint64_t>(cfg.system.compute_nodes));
  hash_field(basis, "duration", cfg.duration_s);
  hash_field(basis, "window", cfg.telemetry_window_s);
  hash_field(basis, "seed", cfg.seed);
  hash_field(basis, "gap", cfg.sched_gap_s);
  hash_field(basis, "minjob", cfg.min_job_duration_s);
  hash_field(basis, "noise", cfg.noise_stddev_w);
  hash_field(basis, "rho", cfg.noise_rho);
  hash_field(basis, "boostp", cfg.boost_sample_probability);
  hash_field(basis, "boostw", cfg.boost_extra_w);
  hash_field(basis, "nodechan",
             static_cast<std::uint64_t>(cfg.emit_node_samples ? 1 : 0));
  basis += "plan=";
  basis += plan.describe();
  basis += '|';
  hash_field(basis, "planseed", plan.seed);
  hash_field(basis, "jobs", static_cast<std::uint64_t>(job_count));
  return fnv1a64(basis);
}

std::uint64_t campaign_chunk_key(std::uint64_t config_key,
                                 std::size_t begin, std::size_t end) {
  std::string basis = "chunk|";
  hash_field(basis, "cfg", config_key);
  hash_field(basis, "begin", static_cast<std::uint64_t>(begin));
  hash_field(basis, "end", static_cast<std::uint64_t>(end));
  return fnv1a64(basis);
}

std::string encode_campaign_chunk(const core::CampaignAccumulator& partial,
                                  const faults::FaultCounters& counters) {
  const auto snap = partial.snapshot();
  std::ostringstream os;
  os << "v1 " << encode_u64(snap.gcd_samples) << ' '
     << encode_u64(snap.node_samples) << ' '
     << encode_f64(snap.cpu_energy_j);
  os << " hist";
  encode_weights(os, snap.hist_weights, snap.hist_total);
  for (std::size_t d = 0; d < sched::kDomainCount; ++d) {
    os << " dom";
    encode_weights(os, snap.domain_weights[d], snap.domain_totals[d]);
  }
  os << " cells " << snap.cells.size();
  for (const double v : snap.cells) os << ' ' << encode_f64(v);
  os << " faults";
  encode_counters(os, counters);
  return os.str();
}

bool decode_campaign_chunk(std::string_view payload,
                           core::CampaignAccumulator& partial,
                           faults::FaultCounters& counters) {
  const std::size_t bins = partial.system_histogram().bin_count();
  core::CampaignAccumulator::Snapshot snap;
  faults::FaultCounters parsed;
  TokenReader r(payload);
  if (!r.expect("v1") || !r.next_u64(snap.gcd_samples) ||
      !r.next_u64(snap.node_samples) || !r.next_f64(snap.cpu_energy_j)) {
    return false;
  }
  if (!r.expect("hist") ||
      !decode_weights(r, bins, snap.hist_weights, snap.hist_total)) {
    return false;
  }
  for (std::size_t d = 0; d < sched::kDomainCount; ++d) {
    if (!r.expect("dom") || !decode_weights(r, bins, snap.domain_weights[d],
                                            snap.domain_totals[d])) {
      return false;
    }
  }
  std::size_t ncells = 0;
  constexpr std::size_t kExpectedCells =
      sched::kDomainCount * sched::kSizeBinCount * core::kRegionCount * 2;
  if (!r.expect("cells") || !r.next_dec(ncells) ||
      ncells != kExpectedCells) {
    return false;
  }
  snap.cells.resize(ncells);
  for (double& v : snap.cells) {
    if (!r.next_f64(v)) return false;
  }
  if (!r.expect("faults") || !decode_counters(r, parsed) ||
      !r.exhausted()) {
    return false;
  }
  partial.restore(snap);
  counters = parsed;
  return true;
}

void generate_telemetry_checkpointed(const sched::FleetGenerator& gen,
                                     const sched::SchedulerLog& log,
                                     core::CampaignAccumulator& acc,
                                     const faults::FaultPlan& plan,
                                     exec::ThreadPool& pool,
                                     Journal* journal,
                                     faults::FaultCounters* counters_out) {
  generate_telemetry_checkpointed(gen, log, 0, log.jobs().size(), acc, plan,
                                  pool, journal, counters_out, {});
}

void generate_telemetry_checkpointed(const sched::FleetGenerator& gen,
                                     const sched::SchedulerLog& log,
                                     std::size_t range_begin,
                                     std::size_t range_end,
                                     core::CampaignAccumulator& acc,
                                     const faults::FaultPlan& plan,
                                     exec::ThreadPool& pool,
                                     Journal* journal,
                                     faults::FaultCounters* counters_out,
                                     const ChunkDoneFn& on_chunk_done) {
  EXAEFF_TRACE_SPAN("run.telemetry_checkpointed");
  const auto& jobs = log.jobs();
  // The grain always derives from the *full* job count, and the range
  // must sit on chunk boundaries: that keeps chunk identities — journal
  // keys and fold order — identical no matter how the log is split
  // across shards, thread counts, or resume boundaries.
  const std::size_t grain = exec::ThreadPool::chunk_grain(jobs.size());
  EXAEFF_REQUIRE(range_begin <= range_end && range_end <= jobs.size(),
                 "telemetry range out of bounds");
  EXAEFF_REQUIRE(range_begin % grain == 0,
                 "telemetry range must start on a chunk boundary");
  EXAEFF_REQUIRE(range_end % grain == 0 || range_end == jobs.size(),
                 "telemetry range must end on a chunk boundary");
  const std::uint64_t config_key =
      campaign_config_key(gen.config(), plan, jobs.size());

  struct ChunkOut {
    std::unique_ptr<core::CampaignAccumulator> partial;
    faults::FaultCounters counters;
  };
  // Chunk boundaries are a function of the job count only (the exec
  // determinism contract), so the journal keys — and the merge order —
  // are stable across thread counts and across the kill/resume boundary.
  auto outs = pool.map_chunks(
      range_end - range_begin, grain,
      [&](std::size_t local_begin, std::size_t local_end) {
        const std::size_t begin = range_begin + local_begin;
        const std::size_t end = range_begin + local_end;
        ChunkOut out;
        out.partial = std::make_unique<core::CampaignAccumulator>(
            acc.make_sibling());
        const std::uint64_t key =
            campaign_chunk_key(config_key, begin, end);
        bool restored = false;
        if (journal != nullptr) {
          if (const std::string* payload = journal->find(key)) {
            restored =
                decode_campaign_chunk(*payload, *out.partial, out.counters);
            if (!restored) {
              obs::Logger::global().warn(
                  "run.checkpoint_decode_failed",
                  {{"chunk_begin", begin}, {"chunk_end", end}});
            }
          }
        }
        if (!restored) {
          if (plan.any_enabled()) {
            faults::JobFaultInjector inject(*out.partial, plan);
            gen.generate_telemetry(log, begin, end, inject);
            out.counters = inject.counters();
          } else {
            gen.generate_telemetry(log, begin, end, *out.partial);
          }
          // Journal before the chunk reports complete: a cancellation or
          // crash arriving later can only lose not-yet-finished chunks.
          if (journal != nullptr) {
            journal->append(
                key, encode_campaign_chunk(*out.partial, out.counters));
          }
        }
        if (on_chunk_done) on_chunk_done(begin, end);
        return out;
      });

  faults::FaultCounters total;
  for (auto& out : outs) {
    acc.merge(*out.partial);
    total += out.counters;
  }
  if (counters_out != nullptr) *counters_out = total;
}

std::uint64_t sweep_point_key(std::uint64_t config_key,
                              double focus_setting, int pct) {
  std::string basis = "sweep|";
  hash_field(basis, "cfg", config_key);
  hash_field(basis, "focus", focus_setting);
  hash_field(basis, "pct", static_cast<std::uint64_t>(pct));
  return fnv1a64(basis);
}

std::string encode_sweep_point(const SweepPointCheckpoint& p) {
  std::ostringstream os;
  os << "sw1 " << p.pct << ' ' << encode_u64(p.records) << ' '
     << encode_f64(p.coverage) << ' '
     << static_cast<int>(p.row.cap_type) << ' '
     << encode_f64(p.row.setting) << ' ' << encode_f64(p.row.ci_saved_mwh)
     << ' ' << encode_f64(p.row.mi_saved_mwh) << ' '
     << encode_f64(p.row.total_saved_mwh) << ' '
     << encode_f64(p.row.savings_pct) << ' '
     << encode_f64(p.row.delta_t_pct) << ' '
     << encode_f64(p.row.savings_pct_no_slowdown) << ' '
     << (p.faulted ? 1 : 0);
  encode_counters(os, p.counters);
  return os.str();
}

bool decode_sweep_point(std::string_view payload, SweepPointCheckpoint& p) {
  SweepPointCheckpoint out;
  TokenReader r(payload);
  std::size_t pct = 0;
  std::size_t cap_type = 0;
  std::size_t faulted = 0;
  if (!r.expect("sw1") || !r.next_dec(pct) || !r.next_u64(out.records) ||
      !r.next_f64(out.coverage) || !r.next_dec(cap_type) ||
      cap_type > 1 || !r.next_f64(out.row.setting) ||
      !r.next_f64(out.row.ci_saved_mwh) ||
      !r.next_f64(out.row.mi_saved_mwh) ||
      !r.next_f64(out.row.total_saved_mwh) ||
      !r.next_f64(out.row.savings_pct) ||
      !r.next_f64(out.row.delta_t_pct) ||
      !r.next_f64(out.row.savings_pct_no_slowdown) ||
      !r.next_dec(faulted) || faulted > 1 ||
      !decode_counters(r, out.counters) || !r.exhausted()) {
    return false;
  }
  out.pct = static_cast<int>(pct);
  out.row.cap_type = static_cast<core::CapType>(cap_type);
  out.faulted = faulted == 1;
  p = out;
  return true;
}

}  // namespace exaeff::run
