// exaeff/run/journal.h
//
// Chunk-granular checkpoint journal for long campaigns.
//
// Completed work units (job-chunk accumulator partials, sweep points)
// are appended to an on-disk journal keyed by a content hash of
// (config, seed, fault plan, chunk identity).  On `--resume`, a unit
// whose key is present is replayed from the journal instead of being
// recomputed; because the payload round-trips every double bit for bit
// (hex bit patterns, never decimal) and units merge in the same order
// either way, a resumed run is byte-identical to an uninterrupted one.
//
// Crash safety: entries are appended with fflush + fsync, each record is
// self-delimiting (declared payload length plus a terminator), and load
// stops at the first record that fails validation — a SIGKILL mid-append
// costs at most the entry being written, never the journal.  Appends may
// come from concurrent pool workers; records land in completion order,
// which is irrelevant because lookups go through the key map.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/error.h"

namespace exaeff::run {

/// Another live process holds the journal at the same path.  A distinct
/// type so the CLI can map it to a usage error (exit 2) instead of a
/// generic failure: two writers interleaving appends would tear records
/// for both of them.
class JournalLockedError : public Error {
 public:
  using Error::Error;
};

// --- wire codec -------------------------------------------------------
// Lossless text encoding used by every journal payload: 64-bit values as
// fixed-width lowercase hex of the bit pattern.  Exact round-trip is the
// determinism contract; decimal formatting would lose ulps.

[[nodiscard]] std::string encode_u64(std::uint64_t v);
[[nodiscard]] std::string encode_f64(double v);
/// Returns false (leaving `out` untouched) on malformed input.
[[nodiscard]] bool decode_u64(std::string_view hex, std::uint64_t& out);
[[nodiscard]] bool decode_f64(std::string_view hex, double& out);

/// FNV-1a 64-bit hash; the journal's content-addressing primitive.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view data,
                                    std::uint64_t seed = 0xCBF29CE484222325ULL);

// --- journal ----------------------------------------------------------

class Journal {
 public:
  /// Opens (creating directories is the caller's job) the journal at
  /// `path`.  With `resume` true, existing valid records are loaded and
  /// appends extend the file; otherwise the file starts empty.  Throws
  /// exaeff::Error when the file cannot be opened for writing.
  Journal(std::string path, bool resume);
  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Payload previously stored under `key`, or nullptr.  Counts a
  /// resumed unit on hit.  Thread-safe.
  [[nodiscard]] const std::string* find(std::uint64_t key) const;

  /// Appends (key, payload) and flushes it to disk (fflush + fsync)
  /// before returning, so a unit is either durably journaled or not
  /// journaled at all.  `payload` must not contain '\n'.  Thread-safe;
  /// re-appending an existing key is a no-op.
  void append(std::uint64_t key, std::string payload);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::uint64_t entries_loaded() const { return loaded_; }
  [[nodiscard]] std::uint64_t entries_appended() const { return appended_; }
  [[nodiscard]] std::uint64_t entries_resumed() const { return resumed_; }

  /// Publishes exaeff_run_checkpoints_written_total and
  /// exaeff_run_chunks_resumed_total deltas since the last call.
  void publish_metrics();

 private:
  mutable std::mutex mu_;
  std::string path_;
  std::FILE* file_ = nullptr;
  std::unordered_map<std::uint64_t, std::string> entries_;
  std::uint64_t loaded_ = 0;
  std::uint64_t appended_ = 0;
  mutable std::uint64_t resumed_ = 0;
  std::uint64_t published_written_ = 0;
  std::uint64_t published_resumed_ = 0;
};

}  // namespace exaeff::run
