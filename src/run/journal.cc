#include "run/journal.h"

#include <bit>
#include <cstring>
#include <vector>

#include <sys/file.h>
#include <unistd.h>

#include "common/error.h"
#include "obs/log.h"
#include "obs/metrics.h"

namespace exaeff::run {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

// Record grammar, one per line:
//   ck1 <key:16 hex> <payload-length decimal> <payload>|
// The fixed magic, declared length, and trailing '|' let load() reject a
// torn final record without a separate index or checksum file.
constexpr std::string_view kMagic = "ck1 ";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

}  // namespace

std::string encode_u64(std::uint64_t v) {
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHexDigits[v & 0xF];
    v >>= 4;
  }
  return out;
}

std::string encode_f64(double v) {
  return encode_u64(std::bit_cast<std::uint64_t>(v));
}

bool decode_u64(std::string_view hex, std::uint64_t& out) {
  if (hex.size() != 16) return false;
  std::uint64_t v = 0;
  for (const char c : hex) {
    const int d = hex_value(c);
    if (d < 0) return false;
    v = (v << 4) | static_cast<std::uint64_t>(d);
  }
  out = v;
  return true;
}

bool decode_f64(std::string_view hex, double& out) {
  std::uint64_t bits = 0;
  if (!decode_u64(hex, bits)) return false;
  out = std::bit_cast<double>(bits);
  return true;
}

std::uint64_t fnv1a64(std::string_view data, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

Journal::Journal(std::string path, bool resume) : path_(std::move(path)) {
  if (resume) {
    // Load every valid record; stop at the first torn/corrupt one (a
    // crash can only damage the tail, and anything after an invalid
    // record has no trustworthy framing).
    if (std::FILE* in = std::fopen(path_.c_str(), "rb")) {
      std::string line;
      std::size_t valid_bytes = 0;  // end of the last accepted record
      int c;
      bool stop = false;
      while (!stop && (c = std::fgetc(in)) != EOF) {
        if (c != '\n') {
          line.push_back(static_cast<char>(c));
          continue;
        }
        std::string_view rec = line;
        std::uint64_t key = 0;
        std::size_t len = 0;
        bool ok = rec.size() > kMagic.size() + 17 &&
                  rec.substr(0, kMagic.size()) == kMagic;
        if (ok) {
          rec.remove_prefix(kMagic.size());
          ok = decode_u64(rec.substr(0, 16), key) && rec[16] == ' ';
        }
        if (ok) {
          rec.remove_prefix(17);
          const auto sp = rec.find(' ');
          ok = sp != std::string_view::npos && sp > 0;
          if (ok) {
            len = 0;
            for (const char d : rec.substr(0, sp)) {
              if (d < '0' || d > '9') {
                ok = false;
                break;
              }
              len = len * 10 + static_cast<std::size_t>(d - '0');
            }
            if (ok) rec.remove_prefix(sp + 1);
          }
        }
        ok = ok && rec.size() == len + 1 && rec[len] == '|';
        if (!ok) {
          obs::Logger::global().warn(
              "run.journal_torn_record",
              {{"path", path_}, {"loaded", loaded_}});
          stop = true;
        } else {
          entries_[key] = std::string(rec.substr(0, len));
          ++loaded_;
          valid_bytes += line.size() + 1;
        }
        line.clear();
      }
      // A trailing line with no '\n' is a torn append; ignored.
      std::fclose(in);
      // Cut the file back to the last valid record before appending.
      // Without this, new appends land *after* the torn bytes — glued
      // onto the partial record's line — and every future load rejects
      // them, so a resumed shard could never make durable progress.
      if (::truncate(path_.c_str(), static_cast<off_t>(valid_bytes)) !=
          0) {
        throw Error("cannot truncate torn checkpoint journal: " + path_);
      }
    }
    file_ = std::fopen(path_.c_str(), "ab");
  } else {
    file_ = std::fopen(path_.c_str(), "wb");
  }
  if (file_ == nullptr) {
    throw Error("cannot open checkpoint journal: " + path_);
  }
  // Advisory exclusive lock for the journal's lifetime.  Two processes
  // pointed at the same --checkpoint dir would interleave appends and
  // tear each other's records; fail the late-comer fast instead.  The
  // kernel drops the lock automatically when the process dies, so a
  // crashed owner never wedges a resume.
  if (::flock(::fileno(file_), LOCK_EX | LOCK_NB) != 0) {
    std::fclose(file_);
    file_ = nullptr;
    throw JournalLockedError(
        "checkpoint journal is locked by another process: " + path_);
  }
}

Journal::~Journal() {
  if (file_ != nullptr) std::fclose(file_);
}

const std::string* Journal::find(std::uint64_t key) const {
  const std::lock_guard<std::mutex> lk(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  ++resumed_;
  // Entries are never erased or rehashed away mid-run (insertions only
  // add nodes; node addresses are stable), so the pointer stays valid.
  return &it->second;
}

void Journal::append(std::uint64_t key, std::string payload) {
  EXAEFF_REQUIRE(payload.find('\n') == std::string::npos,
                 "journal payloads must be single-line");
  const std::lock_guard<std::mutex> lk(mu_);
  if (entries_.contains(key)) return;
  std::string rec;
  rec.reserve(payload.size() + 32);
  rec += kMagic;
  rec += encode_u64(key);
  rec += ' ';
  rec += std::to_string(payload.size());
  rec += ' ';
  rec += payload;
  rec += "|\n";
  if (std::fwrite(rec.data(), 1, rec.size(), file_) != rec.size() ||
      std::fflush(file_) != 0 || ::fsync(::fileno(file_)) != 0) {
    throw Error("checkpoint journal append failed: " + path_);
  }
  entries_[key] = std::move(payload);
  ++appended_;
}

std::size_t Journal::size() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return entries_.size();
}

void Journal::publish_metrics() {
  if (!obs::metrics_enabled()) return;
  const std::lock_guard<std::mutex> lk(mu_);
  auto& reg = obs::MetricsRegistry::global();
  reg.counter("exaeff_run_checkpoints_written_total",
              "Work units durably appended to the checkpoint journal")
      .inc(appended_ - published_written_);
  reg.counter("exaeff_run_chunks_resumed_total",
              "Work units replayed from the checkpoint journal")
      .inc(resumed_ - published_resumed_);
  published_written_ = appended_;
  published_resumed_ = resumed_;
}

}  // namespace exaeff::run
