#include "cluster/system_config.h"

namespace exaeff::cluster {

SystemConfig frontier() {
  SystemConfig cfg;  // defaults are the Table I numbers
  cfg.validate();
  return cfg;
}

SystemConfig frontier_scaled(std::size_t nodes) {
  SystemConfig cfg = frontier();
  cfg.name = "Frontier (scaled fleet)";
  cfg.compute_nodes = nodes;
  cfg.validate();
  return cfg;
}

}  // namespace exaeff::cluster
