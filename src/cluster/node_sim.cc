#include "cluster/node_sim.h"

#include <algorithm>
#include <cmath>

#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "telemetry/aggregator.h"

namespace exaeff::cluster {

NodeRunResult simulate_node_job(const NodeSpec& node,
                                const std::vector<gpusim::KernelDesc>& phases,
                                const gpusim::PowerPolicy& policy,
                                const NodeRunOptions& options, Rng& rng,
                                telemetry::TelemetrySink& sink) {
  EXAEFF_TRACE_SPAN("node_sim.job");
  node.validate();
  EXAEFF_REQUIRE(!phases.empty(), "node job needs at least one phase");
  EXAEFF_REQUIRE(options.sensor_period_s > 0.0 &&
                     options.aggregate_window_s >= options.sensor_period_s,
                 "aggregation window must cover the sensor period");

  const gpusim::GpuSimulator sim(node.gcd);
  const std::size_t gcds = node.gcds_per_node();

  /// Counts records flowing out of the aggregator.
  struct CountingSink final : telemetry::TelemetrySink {
    telemetry::TelemetrySink& inner;
    std::size_t gcd_records = 0;
    std::size_t node_records = 0;
    explicit CountingSink(telemetry::TelemetrySink& s) : inner(s) {}
    void on_gcd_sample(const telemetry::GcdSample& s) override {
      ++gcd_records;
      inner.on_gcd_sample(s);
    }
    void on_node_sample(const telemetry::NodeSample& s) override {
      ++node_records;
      inner.on_node_sample(s);
    }
    void on_gcd_batch(
        std::span<const telemetry::GcdSample> samples) override {
      gcd_records += samples.size();
      inner.on_gcd_batch(samples);
    }
    void on_node_batch(
        std::span<const telemetry::NodeSample> samples) override {
      node_records += samples.size();
      inner.on_node_batch(samples);
    }
  } counter(sink);
  telemetry::Aggregator aggregator(counter, options.aggregate_window_s);
  aggregator.reserve_channels(gcds, 1);

  // Run every GCD's trace (same phase schedule, per-GCD jitter + noise).
  // The split/uniform draws happen up front in GCD order — preserving the
  // exact serial RNG sequence — so the traces themselves can run on the
  // pool in any order and still reproduce the serial result bit for bit.
  NodeRunResult result;
  std::vector<std::vector<gpusim::TracePoint>> traces(gcds);
  std::vector<double> offsets(gcds);
  std::vector<Rng> gcd_rngs;
  gcd_rngs.reserve(gcds);
  for (std::size_t g = 0; g < gcds; ++g) {
    gcd_rngs.push_back(rng.split(g + 1));
    offsets[g] = rng.uniform(0.0, options.gcd_jitter_s);
  }
  struct GcdRun {
    double time_s = 0.0;
    double energy_j = 0.0;
  };
  const auto runs = exec::map_indexed(
      options.pool, gcds, [&](std::size_t g) {
        Rng gcd_rng = gcd_rngs[g];
        const auto seq = gpusim::run_sequence_traced(
            sim, phases, policy, gcd_rng, traces[g], options.trace);
        return GcdRun{seq.time_s, seq.energy_j};
      });
  for (std::size_t g = 0; g < gcds; ++g) {
    result.wall_time_s =
        std::max(result.wall_time_s, offsets[g] + runs[g].time_s);
    result.gpu_energy_j += runs[g].energy_j;
  }

  // Walk the common 2 s sensor clock across all channels.
  auto trace_at = [](const std::vector<gpusim::TracePoint>& tr,
                     double t) {
    if (tr.empty()) return 0.0;
    if (t <= tr.front().t_s) return tr.front().power_w;
    if (t >= tr.back().t_s) return tr.back().power_w;
    const auto it = std::lower_bound(
        tr.begin(), tr.end(), t,
        [](const gpusim::TracePoint& p, double tt) { return p.t_s < tt; });
    const auto hi = it;
    const auto lo = it - 1;
    const double span = hi->t_s - lo->t_s;
    if (span <= 0.0) return hi->power_w;
    return lo->power_w +
           (t - lo->t_s) / span * (hi->power_w - lo->power_w);
  };

  const double idle = node.gcd.idle_power_w;
  const double tdp = node.gcd.tdp_w;
  const bool batching = telemetry::batching_enabled();
  std::vector<telemetry::GcdSample> tick_batch;
  tick_batch.reserve(gcds);
  for (double t = 0.0; t < result.wall_time_s;
       t += options.sensor_period_s) {
    // The sensor walk is time-major (the shared rng interleaves idle
    // noise and CPU-utilization draws per tick), so one tick's worth of
    // per-GCD readings forms the natural batch.
    tick_batch.clear();
    double gcd_sum = 0.0;
    for (std::size_t g = 0; g < gcds; ++g) {
      // The GCD finished? Sensor reads idle.
      const double local_t = t - offsets[g];
      const bool active =
          local_t >= 0.0 && local_t <= traces[g].back().t_s;
      const double p = active ? trace_at(traces[g], local_t)
                              : idle + rng.normal(0.0, 1.5);
      telemetry::GcdSample s;
      s.t_s = t;
      s.node_id = options.node_id;
      s.gcd_index = static_cast<std::uint16_t>(g);
      s.power_w = static_cast<float>(std::max(0.0, p));
      tick_batch.push_back(s);
      gcd_sum += s.power_w;
      ++result.raw_samples;
    }
    if (batching) {
      aggregator.on_gcd_batch(tick_batch);
    } else {
      for (const telemetry::GcdSample& s : tick_batch) {
        aggregator.on_gcd_sample(s);
      }
    }
    // CPU orchestration tracks mean GPU load.
    const double rel = std::clamp(
        (gcd_sum / static_cast<double>(gcds) - idle) / (tdp - idle), 0.0,
        1.0);
    const double cpu_util =
        std::clamp(0.15 + 0.55 * rel + rng.normal(0.0, 0.04), 0.0, 1.0);
    telemetry::NodeSample ns;
    ns.t_s = t;
    ns.node_id = options.node_id;
    ns.cpu_power_w = static_cast<float>(node.cpu.power(cpu_util));
    ns.node_input_w = static_cast<float>(ns.cpu_power_w +
                                         node.other_power_w + gcd_sum);
    aggregator.on_node_sample(ns);
    result.cpu_energy_j += ns.cpu_power_w * options.sensor_period_s;
    ++result.raw_samples;
  }
  aggregator.flush();
  result.aggregated_samples = counter.gcd_records + counter.node_records;
  if (obs::metrics_enabled()) {
    auto& reg = obs::MetricsRegistry::global();
    reg.counter("exaeff_node_phases_total",
                "Application phases executed by the node simulator")
        .inc(phases.size() * gcds);
    reg.counter("exaeff_samples_total",
                "Telemetry samples synthesized by the pipeline")
        .inc(result.raw_samples);
  }
  return result;
}

}  // namespace exaeff::cluster
