// exaeff/cluster/system_config.h
//
// System-level configuration (the paper's Table I).  The preset carries
// Frontier's published numbers; a scaled-down variant with identical
// per-node behaviour is provided for tractable fleet simulation — the
// projection arithmetic is linear in GPU-hours, so a scaled fleet with
// the same workload mix reproduces all percentages.
#pragma once

#include <cstddef>
#include <string>

#include "cluster/node.h"

namespace exaeff::cluster {

/// Whole-system description.
struct SystemConfig {
  std::string name = "Frontier";
  std::size_t compute_nodes = 9408;
  double peak_performance_eflops = 1.9;  ///< double-precision peak, EF
  double peak_power_mw = 29.0;           ///< facility peak power, MW
  NodeSpec node;

  [[nodiscard]] std::size_t total_gcds() const {
    return compute_nodes * node.gcds_per_node();
  }

  /// Total GPU (HBM) memory, bytes.
  [[nodiscard]] double total_hbm_bytes() const {
    return static_cast<double>(compute_nodes) * node.hbm_bytes();
  }

  /// Total CPU (DDR4) memory, bytes.
  [[nodiscard]] double total_ddr4_bytes() const {
    return static_cast<double>(compute_nodes) * node.cpu.ddr4_bytes;
  }

  void validate() const {
    if (compute_nodes == 0) {
      throw ConfigError("SystemConfig: need at least one node");
    }
    node.validate();
  }
};

/// The full 9408-node Frontier preset (Table I).
[[nodiscard]] SystemConfig frontier();

/// A fleet scaled to `nodes` nodes with identical per-node behaviour, for
/// tractable campaign simulation.
[[nodiscard]] SystemConfig frontier_scaled(std::size_t nodes);

}  // namespace exaeff::cluster
