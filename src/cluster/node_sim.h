// exaeff/cluster/node_sim.h
//
// Node-level telemetry simulation through the *full* sensor path: each
// of the node's GCDs runs its phase sequence on the GPU simulator, the
// 2-second out-of-band sensors sample every channel (GCD power, CPU
// power, node input), and the pre-processing aggregator folds the raw
// stream to 15-second records — exactly the pipeline of the paper's
// §III-A, end to end.  The fleet generator synthesizes the aggregated
// records directly for speed; this module is the ground-truth path the
// fast path is validated against.
#pragma once

#include <vector>

#include "cluster/node.h"
#include "common/rng.h"
#include "gpusim/phase_run.h"
#include "telemetry/sample.h"

namespace exaeff::exec {
class ThreadPool;
}  // namespace exaeff::exec

namespace exaeff::cluster {

/// Options for a node run.
struct NodeRunOptions {
  double sensor_period_s = 2.0;     ///< raw out-of-band sampling period
  double aggregate_window_s = 15.0; ///< pre-processing window
  std::uint32_t node_id = 0;
  /// Per-GCD start jitter (ranks never align perfectly), seconds.
  double gcd_jitter_s = 1.0;
  gpusim::TraceOptions trace;       ///< noise/ramp/boost tuning
  /// When set, per-GCD traces run concurrently.  Each GCD's stream comes
  /// from rng.split(g+1) and the jitter draws happen up front in GCD
  /// order, so the result is byte-identical to the serial run.
  exec::ThreadPool* pool = nullptr;
};

/// Outcome of simulating one job interval on one node.
struct NodeRunResult {
  double wall_time_s = 0.0;       ///< longest GCD's wall time
  double gpu_energy_j = 0.0;      ///< sum over GCDs (trace-integrated)
  double cpu_energy_j = 0.0;
  std::size_t raw_samples = 0;    ///< 2 s records produced
  std::size_t aggregated_samples = 0;  ///< 15 s records delivered
};

/// Runs `phases` (the same bulk-synchronous schedule on every GCD) under
/// `policy`, pushing the aggregated records into `sink`.
///
/// CPU power is modeled as tracking mean GPU load (orchestration); the
/// node-input channel sums CPU, GCDs and the constant "other" draw.
NodeRunResult simulate_node_job(
    const NodeSpec& node, const std::vector<gpusim::KernelDesc>& phases,
    const gpusim::PowerPolicy& policy, const NodeRunOptions& options,
    Rng& rng, telemetry::TelemetrySink& sink);

}  // namespace exaeff::cluster
