// exaeff/cluster/node.h
//
// Compute-node model: a Frontier node couples one 64-core CPU with four
// MI250X packages (eight GCDs).  The telemetry pipeline consumes per-GCD
// power plus CPU power per node, so the node model provides the CPU power
// model and the node-level aggregation — enough to reproduce Fig 2(b)'s
// GPU-vs-CPU energy comparison and the node power input channel.
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.h"
#include "gpusim/device_spec.h"

namespace exaeff::cluster {

/// CPU socket power model (Frontier: AMD "optimized 3rd gen EPYC").
/// The CPU on a GPU-dominated node mostly orchestrates; its utilization
/// tracks GPU activity loosely.  Power is affine in utilization.
struct CpuSpec {
  double idle_power_w = 95.0;
  double max_power_w = 280.0;
  double ddr4_bytes = 512.0 * 1024.0 * 1024.0 * 1024.0;  ///< 512 GB DDR4

  [[nodiscard]] double power(double utilization) const {
    EXAEFF_REQUIRE(utilization >= 0.0 && utilization <= 1.0,
                   "CPU utilization must be in [0, 1]");
    return idle_power_w + (max_power_w - idle_power_w) * utilization;
  }
};

/// Static description of one compute node.
struct NodeSpec {
  std::size_t gpus_per_node = 4;   ///< MI250X packages
  std::size_t gcds_per_gpu = 2;    ///< user-visible GPUs per package
  gpusim::DeviceSpec gcd = gpusim::mi250x_gcd();
  CpuSpec cpu;

  /// Power of everything that is neither CPU nor GPU (NIC, fans at the
  /// rack, board).  Constant; dwarfed by GPU power on a busy node.
  double other_power_w = 120.0;

  [[nodiscard]] std::size_t gcds_per_node() const {
    return gpus_per_node * gcds_per_gpu;
  }

  /// Total HBM capacity of the node, bytes.
  [[nodiscard]] double hbm_bytes() const {
    return static_cast<double>(gcds_per_node()) * gcd.hbm_bytes;
  }

  /// Node power given per-GCD powers and CPU utilization.
  [[nodiscard]] double node_power(const std::vector<double>& gcd_power_w,
                                  double cpu_utilization) const {
    EXAEFF_REQUIRE(gcd_power_w.size() == gcds_per_node(),
                   "per-GCD power vector must match node GCD count");
    double total = cpu.power(cpu_utilization) + other_power_w;
    for (double p : gcd_power_w) total += p;
    return total;
  }

  /// Idle node power (all GCDs and CPU idle).
  [[nodiscard]] double idle_power() const {
    return cpu.power(0.0) + other_power_w +
           static_cast<double>(gcds_per_node()) * gcd.idle_power_w;
  }

  void validate() const {
    if (gpus_per_node == 0 || gcds_per_gpu == 0) {
      throw ConfigError("NodeSpec: node needs at least one GCD");
    }
    gcd.validate();
  }
};

}  // namespace exaeff::cluster
