#include "faults/fault_plan.h"

#include <charconv>
#include <cmath>

#include "common/error.h"

namespace exaeff::faults {

namespace {

double parse_num(std::string_view item, std::string_view text) {
  double v = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc{} || ptr != text.data() + text.size() ||
      !std::isfinite(v)) {
    throw ConfigError("fault spec: bad number in '" + std::string(item) +
                      "'");
  }
  return v;
}

void require_probability(double p, const char* what) {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw ConfigError(std::string("fault spec: ") + what +
                      " probability must be in [0, 1]");
  }
}

void require_positive_param(const FaultRate& r, const char* what) {
  require_probability(r.probability, what);
  if (r.enabled() && !(r.param > 0.0)) {
    throw ConfigError(std::string("fault spec: ") + what +
                      " parameter must be > 0");
  }
}

void append_rate(std::string& out, const char* key, const FaultRate& r,
                 int param_digits = 0) {
  if (!r.enabled()) return;
  if (!out.empty()) out += ',';
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s=%g:%.*f", key, r.probability,
                param_digits, r.param);
  out += buf;
}

}  // namespace

std::vector<SpecItem> parse_spec_items(std::string_view spec) {
  std::vector<SpecItem> items;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    auto comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string_view::npos) {
      throw ConfigError("fault spec: item '" + std::string(item) +
                        "' needs key=value");
    }
    items.push_back(
        SpecItem{item, item.substr(0, eq), item.substr(eq + 1)});
  }
  return items;
}

double spec_number(const SpecItem& it) {
  return parse_num(it.item, it.value);
}

std::uint64_t spec_u64(const SpecItem& it) {
  std::uint64_t v = 0;
  const auto [ptr, ec] =
      std::from_chars(it.value.data(), it.value.data() + it.value.size(), v);
  if (ec != std::errc{} || ptr != it.value.data() + it.value.size()) {
    throw ConfigError("fault spec: bad integer in '" + std::string(it.item) +
                      "'");
  }
  return v;
}

FaultRate spec_rate(const SpecItem& it) {
  const auto colon = it.value.find(':');
  if (colon == std::string_view::npos) {
    throw ConfigError("fault spec: '" + std::string(it.item) +
                      "' needs the form p:param");
  }
  FaultRate r;
  r.probability = parse_num(it.item, it.value.substr(0, colon));
  r.param = parse_num(it.item, it.value.substr(colon + 1));
  return r;
}

bool FaultPlan::any_enabled() const {
  return drop_probability > 0.0 || burst.enabled() || stuck.enabled() ||
         spike.enabled() || outage.enabled() || skew_max_s > 0.0 ||
         reorder.enabled() || truncate_fraction > 0.0;
}

void FaultPlan::validate() const {
  require_probability(drop_probability, "drop");
  require_positive_param(burst, "burst");
  require_positive_param(stuck, "stuck");
  require_positive_param(spike, "spike");
  require_positive_param(outage, "outage");
  require_positive_param(reorder, "reorder");
  if (reorder.enabled() && reorder.param != std::floor(reorder.param)) {
    throw ConfigError("fault spec: reorder depth must be an integer");
  }
  if (!(skew_max_s >= 0.0) || !std::isfinite(skew_max_s)) {
    throw ConfigError("fault spec: skew must be >= 0");
  }
  if (!(truncate_fraction >= 0.0 && truncate_fraction <= 1.0)) {
    throw ConfigError("fault spec: truncate fraction must be in [0, 1]");
  }
  require_probability(crash_probability, "crash");
}

FaultPlan FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  for (const SpecItem& it : parse_spec_items(spec)) {
    if (it.key == "seed") {
      plan.seed = spec_u64(it);
    } else if (it.key == "drop") {
      plan.drop_probability = spec_number(it);
    } else if (it.key == "burst") {
      plan.burst = spec_rate(it);
    } else if (it.key == "stuck") {
      plan.stuck = spec_rate(it);
    } else if (it.key == "spike") {
      plan.spike = spec_rate(it);
    } else if (it.key == "outage") {
      plan.outage = spec_rate(it);
    } else if (it.key == "skew") {
      plan.skew_max_s = spec_number(it);
    } else if (it.key == "reorder") {
      plan.reorder = spec_rate(it);
    } else if (it.key == "truncate") {
      plan.truncate_fraction = spec_number(it);
    } else if (it.key == "crash") {
      plan.crash_probability = spec_number(it);
    } else {
      throw ConfigError("fault spec: unknown key '" + std::string(it.key) +
                        "'");
    }
  }
  plan.validate();
  return plan;
}

std::string FaultPlan::describe() const {
  std::string out;
  char buf[64];
  auto append = [&out, &buf](const char* text) {
    if (!out.empty()) out += ',';
    out += text;
  };
  if (drop_probability > 0.0) {
    std::snprintf(buf, sizeof buf, "drop=%g", drop_probability);
    append(buf);
  }
  append_rate(out, "burst", burst);
  append_rate(out, "stuck", stuck);
  append_rate(out, "spike", spike, 2);
  append_rate(out, "outage", outage);
  if (skew_max_s > 0.0) {
    std::snprintf(buf, sizeof buf, "skew=%g", skew_max_s);
    append(buf);
  }
  append_rate(out, "reorder", reorder);
  if (truncate_fraction > 0.0) {
    std::snprintf(buf, sizeof buf, "truncate=%g", truncate_fraction);
    append(buf);
  }
  if (crash_probability > 0.0) {
    std::snprintf(buf, sizeof buf, "crash=%g", crash_probability);
    append(buf);
  }
  return out.empty() ? "none" : out;
}

}  // namespace exaeff::faults
