#include "faults/injector.h"

#include <cmath>

#include "common/rng.h"
#include "obs/metrics.h"

namespace exaeff::faults {

namespace {

// Per-class salts for the stateless decision draws.  Distinct arbitrary
// constants; changing one reshuffles only that fault class.
constexpr std::uint64_t kSaltDrop = 0x9D39247E33776D41ULL;
constexpr std::uint64_t kSaltBurst = 0x2AF7398005AAA5C7ULL;
constexpr std::uint64_t kSaltStuck = 0x44DB015024623547ULL;
constexpr std::uint64_t kSaltSpike = 0x9C15F73E62A76AE2ULL;
constexpr std::uint64_t kSaltOutage = 0x75834465489C0C89ULL;
constexpr std::uint64_t kSaltSkew = 0x3290AC3A203001BFULL;
constexpr std::uint64_t kSaltReorder = 0x0FBBAD1F61042279ULL;

/// Pseudo-gcd index for the node-level channel (matches the aggregator's
/// channel-key convention).
constexpr std::uint16_t kNodeChannelGcd = 0xFFFF;

std::uint64_t channel_key(std::uint32_t node, std::uint16_t gcd) {
  return (static_cast<std::uint64_t>(node) << 16) | gcd;
}

/// Epoch index of time `t` for an epoch length; times before zero clamp
/// into epoch 0 so skewed-negative timestamps stay well defined.
std::uint64_t epoch_of(double t, double len_s) {
  if (t <= 0.0) return 0;
  return static_cast<std::uint64_t>(t / len_s);
}

/// Quantized time used to key iid per-sample draws: decouples the draw
/// from float noise in t while keeping distinct samples distinct.
std::uint64_t time_key(double t) {
  return static_cast<std::uint64_t>(std::llround(t * 16.0));
}

}  // namespace

FaultModel::FaultModel(const FaultPlan& plan) : plan_(plan) {
  plan_.validate();
}

double FaultModel::roll(std::uint64_t salt, std::uint64_t key,
                        std::uint64_t epoch) const {
  std::uint64_t sm = plan_.seed ^ salt ^
                     (key * 0x9E3779B97F4A7C15ULL) ^
                     (epoch * 0xC2B2AE3D27D4EB4FULL);
  return static_cast<double>(splitmix64(sm) >> 11) * 0x1.0p-53;
}

bool FaultModel::survives(std::uint64_t channel, std::uint32_t node,
                          double t) {
  if (plan_.outage.enabled() &&
      roll(kSaltOutage, node, epoch_of(t, plan_.outage.param)) <
          plan_.outage.probability) {
    ++counters_.dropped_outage;
    return false;
  }
  if (plan_.burst.enabled() &&
      roll(kSaltBurst, channel, epoch_of(t, plan_.burst.param)) <
          plan_.burst.probability) {
    ++counters_.dropped_burst;
    return false;
  }
  if (plan_.drop_probability > 0.0 &&
      roll(kSaltDrop, channel, time_key(t)) < plan_.drop_probability) {
    ++counters_.dropped_iid;
    return false;
  }
  return true;
}

double FaultModel::corrupt(std::uint64_t channel, double t, double value) {
  if (plan_.stuck.enabled()) {
    const std::uint64_t epoch = epoch_of(t, plan_.stuck.param);
    if (roll(kSaltStuck, channel, epoch) < plan_.stuck.probability) {
      StuckState& st = stuck_[channel];
      if (st.epoch != epoch) {
        // First surviving sample of the stuck epoch pins the value.
        st.epoch = epoch;
        st.value = value;
      }
      ++counters_.stuck;
      return st.value;
    }
  }
  if (plan_.spike.enabled() &&
      roll(kSaltSpike, channel, time_key(t)) < plan_.spike.probability) {
    ++counters_.spiked;
    return value * plan_.spike.param;
  }
  return value;
}

double FaultModel::skew_of(std::uint32_t node) const {
  if (plan_.skew_max_s <= 0.0) return 0.0;
  const double u = roll(kSaltSkew, node, 0);
  return (2.0 * u - 1.0) * plan_.skew_max_s;
}

bool FaultModel::apply(telemetry::GcdSample& sample) {
  ++counters_.samples_in;
  const std::uint64_t chan = channel_key(sample.node_id, sample.gcd_index);
  if (!survives(chan, sample.node_id, sample.t_s)) return false;
  sample.power_w = static_cast<float>(
      corrupt(chan, sample.t_s, static_cast<double>(sample.power_w)));
  const double skew = skew_of(sample.node_id);
  if (skew != 0.0) {
    sample.t_s = std::max(0.0, sample.t_s + skew);
    ++counters_.skewed;
  }
  ++counters_.passed;
  return true;
}

bool FaultModel::apply(telemetry::NodeSample& sample) {
  ++counters_.samples_in;
  const std::uint64_t chan = channel_key(sample.node_id, kNodeChannelGcd);
  if (!survives(chan, sample.node_id, sample.t_s)) return false;
  sample.cpu_power_w = static_cast<float>(corrupt(
      chan, sample.t_s, static_cast<double>(sample.cpu_power_w)));
  const double skew = skew_of(sample.node_id);
  if (skew != 0.0) {
    sample.t_s = std::max(0.0, sample.t_s + skew);
    ++counters_.skewed;
  }
  ++counters_.passed;
  return true;
}

void publish_fault_counters(const FaultCounters& counters) {
  if (!obs::metrics_enabled()) return;
  auto& reg = obs::MetricsRegistry::global();
  const char* help = "Faults injected into the telemetry stream";
  const auto publish = [&](const char* cls, std::uint64_t v) {
    if (v > 0) {
      reg.counter("exaeff_faults_injected_total", help, {{"class", cls}})
          .inc(v);
    }
  };
  publish("drop_iid", counters.dropped_iid);
  publish("drop_burst", counters.dropped_burst);
  publish("drop_outage", counters.dropped_outage);
  publish("stuck", counters.stuck);
  publish("spike", counters.spiked);
  publish("skew", counters.skewed);
  publish("reorder", counters.reordered);
  reg.counter("exaeff_faults_samples_total",
              "Samples examined by the fault injector")
      .inc(counters.samples_in);
  reg.counter("exaeff_faults_passed_total",
              "Samples that survived fault injection")
      .inc(counters.passed);
}

void FaultModel::publish_metrics() const {
  publish_fault_counters(counters_);
}

// A worker-local shard: faults the chunk's stream, forwards survivors to
// the wrapped shard set's own shard.
struct FaultedJobShards::Shard final : sched::JobSampleSink {
  std::unique_ptr<sched::JobSampleSink> inner;
  JobFaultInjector injector;

  Shard(std::unique_ptr<sched::JobSampleSink> in, const FaultPlan& plan)
      : inner(std::move(in)), injector(*inner, plan) {}

  void on_job_sample(const telemetry::GcdSample& sample,
                     const sched::Job& job) override {
    injector.on_job_sample(sample, job);
  }
  void on_node_sample(const telemetry::NodeSample& sample) override {
    injector.on_node_sample(sample);
  }
  void on_job_batch(std::span<const telemetry::GcdSample> samples,
                    const sched::Job& job) override {
    injector.on_job_batch(samples, job);
  }
  void on_node_batch(
      std::span<const telemetry::NodeSample> samples) override {
    injector.on_node_batch(samples);
  }
};

std::unique_ptr<sched::JobSampleSink> FaultedJobShards::make_shard() const {
  return std::make_unique<Shard>(inner_.make_shard(), plan_);
}

void FaultedJobShards::merge_shard(
    std::unique_ptr<sched::JobSampleSink> shard) {
  auto* s = dynamic_cast<Shard*>(shard.get());
  EXAEFF_REQUIRE(s != nullptr,
                 "FaultedJobShards: foreign shard passed to merge_shard");
  counters_ += s->injector.counters();
  inner_.merge_shard(std::move(s->inner));
}

void FaultInjector::release_due() {
  // Deliver held samples whose delay has elapsed; compact in place so the
  // hold-back order (and therefore the output) is deterministic.
  std::size_t kept = 0;
  for (std::size_t i = 0; i < held_.size(); ++i) {
    if (held_[i].remaining == 0) {
      downstream_.on_gcd_sample(held_[i].sample);
    } else {
      --held_[i].remaining;
      held_[kept++] = held_[i];
    }
  }
  held_.resize(kept);
}

void FaultInjector::on_gcd_sample(const telemetry::GcdSample& sample) {
  telemetry::GcdSample s = sample;
  const bool pass = model_.apply(s);
  if (!held_.empty()) release_due();
  if (!pass) return;
  const FaultPlan& plan = model_.plan();
  if (plan.reorder.enabled()) {
    // Stateless draw keyed on the channel and quantized time; the sample
    // is held behind the next `depth` deliveries.
    std::uint64_t sm = plan.seed ^ kSaltReorder ^
                       ((channel_key(s.node_id, s.gcd_index) *
                         0x9E3779B97F4A7C15ULL) +
                        static_cast<std::uint64_t>(
                            std::llround(std::max(0.0, s.t_s) * 16.0)));
    const double u =
        static_cast<double>(splitmix64(sm) >> 11) * 0x1.0p-53;
    if (u < plan.reorder.probability) {
      model_.count_reordered();
      held_.push_back(
          Held{s, static_cast<std::uint32_t>(plan.reorder.param)});
      return;
    }
  }
  downstream_.on_gcd_sample(s);
}

void FaultInjector::on_node_sample(const telemetry::NodeSample& sample) {
  telemetry::NodeSample s = sample;
  if (model_.apply(s)) downstream_.on_node_sample(s);
}

void FaultInjector::on_gcd_batch(
    std::span<const telemetry::GcdSample> samples) {
  if (model_.plan().reorder.enabled()) {
    // The hold-back buffer decrements per delivery, so its state is a
    // function of the per-record walk; replay it exactly.
    for (const telemetry::GcdSample& s : samples) on_gcd_sample(s);
    return;
  }
  if (!model_.mutates_values()) {
    // Drops only: forward the surviving sub-spans zero-copy.
    std::size_t run = 0;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      telemetry::GcdSample s = samples[i];
      if (model_.apply(s)) continue;
      if (i > run) downstream_.on_gcd_batch(samples.subspan(run, i - run));
      run = i + 1;
    }
    if (samples.size() > run) {
      downstream_.on_gcd_batch(samples.subspan(run));
    }
    return;
  }
  gcd_scratch_.clear();
  gcd_scratch_.reserve(samples.size());
  for (const telemetry::GcdSample& sample : samples) {
    telemetry::GcdSample s = sample;
    if (model_.apply(s)) gcd_scratch_.push_back(s);
  }
  if (!gcd_scratch_.empty()) downstream_.on_gcd_batch(gcd_scratch_);
}

void FaultInjector::on_node_batch(
    std::span<const telemetry::NodeSample> samples) {
  if (!model_.mutates_values()) {
    std::size_t run = 0;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      telemetry::NodeSample s = samples[i];
      if (model_.apply(s)) continue;
      if (i > run) downstream_.on_node_batch(samples.subspan(run, i - run));
      run = i + 1;
    }
    if (samples.size() > run) {
      downstream_.on_node_batch(samples.subspan(run));
    }
    return;
  }
  node_scratch_.clear();
  node_scratch_.reserve(samples.size());
  for (const telemetry::NodeSample& sample : samples) {
    telemetry::NodeSample s = sample;
    if (model_.apply(s)) node_scratch_.push_back(s);
  }
  if (!node_scratch_.empty()) downstream_.on_node_batch(node_scratch_);
}

void JobFaultInjector::on_job_batch(
    std::span<const telemetry::GcdSample> samples, const sched::Job& job) {
  if (!model_.mutates_values()) {
    // Drop decisions are stateless hash draws and survivors are
    // unmodified, so the span partitions into surviving sub-spans that
    // forward zero-copy.
    std::size_t run = 0;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      telemetry::GcdSample s = samples[i];
      if (model_.apply(s)) continue;
      if (i > run) {
        downstream_.on_job_batch(samples.subspan(run, i - run), job);
      }
      run = i + 1;
    }
    if (samples.size() > run) {
      downstream_.on_job_batch(samples.subspan(run), job);
    }
    return;
  }
  gcd_scratch_.clear();
  gcd_scratch_.reserve(samples.size());
  for (const telemetry::GcdSample& sample : samples) {
    telemetry::GcdSample s = sample;
    if (model_.apply(s)) gcd_scratch_.push_back(s);
  }
  if (!gcd_scratch_.empty()) downstream_.on_job_batch(gcd_scratch_, job);
}

void JobFaultInjector::on_node_batch(
    std::span<const telemetry::NodeSample> samples) {
  if (!model_.mutates_values()) {
    std::size_t run = 0;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      telemetry::NodeSample s = samples[i];
      if (model_.apply(s)) continue;
      if (i > run) downstream_.on_node_batch(samples.subspan(run, i - run));
      run = i + 1;
    }
    if (samples.size() > run) {
      downstream_.on_node_batch(samples.subspan(run));
    }
    return;
  }
  node_scratch_.clear();
  node_scratch_.reserve(samples.size());
  for (const telemetry::NodeSample& sample : samples) {
    telemetry::NodeSample s = sample;
    if (model_.apply(s)) node_scratch_.push_back(s);
  }
  if (!node_scratch_.empty()) downstream_.on_node_batch(node_scratch_);
}

void FaultInjector::flush() {
  for (auto& h : held_) downstream_.on_gcd_sample(h.sample);
  held_.clear();
}

sched::SchedulerLog truncate_log(const sched::SchedulerLog& log,
                                 double horizon_s, const FaultPlan& plan,
                                 std::uint32_t total_nodes,
                                 std::size_t* dropped_jobs) {
  const double cutoff_s =
      horizon_s * (1.0 - plan.truncate_fraction);
  sched::SchedulerLog out;
  std::size_t dropped = 0;
  for (const auto& job : log.jobs()) {
    if (plan.truncate_fraction > 0.0 && job.begin_s >= cutoff_s) {
      ++dropped;
      continue;
    }
    out.add_job(job);
  }
  out.build_index(total_nodes);
  if (dropped_jobs != nullptr) *dropped_jobs = dropped;
  if (dropped > 0 && obs::metrics_enabled()) {
    obs::MetricsRegistry::global()
        .counter("exaeff_faults_truncated_jobs_total",
                 "Scheduler-log records lost to truncation")
        .inc(dropped);
  }
  return out;
}

}  // namespace exaeff::faults
