// exaeff/faults/injector.h
//
// Deterministic realization of a FaultPlan over the telemetry substrate.
//
// Every per-sample decision is a *stateless hash draw* over
// (plan seed, fault-class salt, channel key, epoch index) — not a
// sequential RNG — so the injected stream is bit-identical for a given
// seed regardless of how samples are interleaved across channels, how the
// work is sharded, or whether metrics are enabled.  Only the stuck-at
// fault keeps per-channel state (the held value), which is well defined
// because each channel's samples arrive in time order.
//
// Three entry points share the same FaultModel core:
//   * FaultInjector      — TelemetrySink adapter (raw-stream pipelines);
//                          also implements delivery reordering.
//   * JobFaultInjector   — JobSampleSink adapter (joined fleet pipeline).
//   * truncate_log()     — scheduler-log tail loss.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "faults/fault_plan.h"
#include "sched/fleetgen.h"
#include "sched/log.h"
#include "telemetry/sample.h"

namespace exaeff::faults {

/// Injection tallies, one per fault class plus throughput.
struct FaultCounters {
  std::uint64_t samples_in = 0;
  std::uint64_t passed = 0;
  std::uint64_t dropped_iid = 0;
  std::uint64_t dropped_burst = 0;
  std::uint64_t dropped_outage = 0;
  std::uint64_t stuck = 0;
  std::uint64_t spiked = 0;
  std::uint64_t skewed = 0;
  std::uint64_t reordered = 0;

  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_iid + dropped_burst + dropped_outage;
  }

  /// Tally merge for parallel sharding.
  FaultCounters& operator+=(const FaultCounters& o) {
    samples_in += o.samples_in;
    passed += o.passed;
    dropped_iid += o.dropped_iid;
    dropped_burst += o.dropped_burst;
    dropped_outage += o.dropped_outage;
    stuck += o.stuck;
    spiked += o.spiked;
    skewed += o.skewed;
    reordered += o.reordered;
    return *this;
  }
};

/// Publishes `counters` as exaeff_faults_* registry series (no-op while
/// metrics are disabled).
void publish_fault_counters(const FaultCounters& counters);

/// The seeded fault core: decides, per sample, whether it is dropped and
/// how it is corrupted.  apply() mutates the sample in place and returns
/// false when the sample is lost.
class FaultModel {
 public:
  explicit FaultModel(const FaultPlan& plan);

  /// Per-GCD channel.  Returns false when the sample is dropped.
  [[nodiscard]] bool apply(telemetry::GcdSample& sample);

  /// Node-level channel (shares the node's outage/skew, has its own
  /// drop/stuck/spike draws keyed on the node pseudo-channel).
  [[nodiscard]] bool apply(telemetry::NodeSample& sample);

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] const FaultCounters& counters() const { return counters_; }

  /// True when the plan can rewrite sample fields (stuck/spike/skew).
  /// When false, a surviving sample is bit-identical to its input, so
  /// batch adapters may forward sub-spans of the original span instead
  /// of copying.
  [[nodiscard]] bool mutates_values() const {
    return plan_.stuck.enabled() || plan_.spike.enabled() ||
           plan_.skew_max_s > 0.0;
  }

  /// Counts an externally-reordered delivery (used by FaultInjector).
  void count_reordered() { ++counters_.reordered; }

  /// Publishes `exaeff_faults_injected_total{class=...}` counters to the
  /// metrics registry (no-op while metrics are disabled).
  void publish_metrics() const;

 private:
  /// Deterministic decision draw in [0, 1).
  [[nodiscard]] double roll(std::uint64_t salt, std::uint64_t key,
                            std::uint64_t epoch) const;
  /// Shared drop chain (outage -> burst -> iid) for one channel.
  [[nodiscard]] bool survives(std::uint64_t channel, std::uint32_t node,
                              double t);
  /// Stuck-at and spike corruption of one power value.
  [[nodiscard]] double corrupt(std::uint64_t channel, double t,
                               double value);
  /// Per-node clock offset in [-skew_max, +skew_max]; 0 when disabled.
  [[nodiscard]] double skew_of(std::uint32_t node) const;

  struct StuckState {
    std::uint64_t epoch = ~std::uint64_t{0};
    double value = 0.0;
  };

  FaultPlan plan_;
  FaultCounters counters_;
  std::unordered_map<std::uint64_t, StuckState> stuck_;
};

/// TelemetrySink adapter: faults the stream, then forwards survivors to
/// `downstream`.  When the plan enables reordering, a small hold-back
/// buffer delays selected samples behind later ones; call flush() after
/// the last sample to drain it.
class FaultInjector final : public telemetry::TelemetrySink {
 public:
  FaultInjector(telemetry::TelemetrySink& downstream, const FaultPlan& plan)
      : downstream_(downstream), model_(plan) {}

  void on_gcd_sample(const telemetry::GcdSample& sample) override;
  void on_node_sample(const telemetry::NodeSample& sample) override;

  /// Batch fast paths.  GCD batches fall back to the per-record walk
  /// while reordering is enabled — the hold-back buffer counts
  /// deliveries, so its state depends on per-record interleaving.
  void on_gcd_batch(std::span<const telemetry::GcdSample> samples) override;
  void on_node_batch(
      std::span<const telemetry::NodeSample> samples) override;

  /// Delivers every held-back sample (in hold-back order).  Idempotent.
  void flush();

  [[nodiscard]] const FaultModel& model() const { return model_; }
  [[nodiscard]] const FaultCounters& counters() const {
    return model_.counters();
  }

 private:
  struct Held {
    telemetry::GcdSample sample;
    std::uint32_t remaining;  ///< deliveries left before release
  };

  void release_due();

  telemetry::TelemetrySink& downstream_;
  FaultModel model_;
  std::vector<Held> held_;
  std::vector<telemetry::GcdSample> gcd_scratch_;   // batch survivors
  std::vector<telemetry::NodeSample> node_scratch_;  // batch survivors
};

/// JobSampleSink adapter for the joined fleet pipeline.  Reordering is not
/// applied here: joined consumers are order-insensitive accumulators and
/// the join itself carries the job identity.
class JobFaultInjector final : public sched::JobSampleSink {
 public:
  JobFaultInjector(sched::JobSampleSink& downstream, const FaultPlan& plan)
      : downstream_(downstream), model_(plan) {}

  void on_job_sample(const telemetry::GcdSample& sample,
                     const sched::Job& job) override {
    telemetry::GcdSample s = sample;
    if (model_.apply(s)) downstream_.on_job_sample(s, job);
  }
  void on_node_sample(const telemetry::NodeSample& sample) override {
    telemetry::NodeSample s = sample;
    if (model_.apply(s)) downstream_.on_node_sample(s);
  }

  /// Batch fast paths: drop decisions are stateless hash draws, so a
  /// span partitions into surviving sub-spans that forward downstream
  /// zero-copy when the plan cannot rewrite values; otherwise survivors
  /// are compacted into a scratch buffer and forwarded as one batch.
  /// Either way the downstream record sequence matches the per-record
  /// path exactly.
  void on_job_batch(std::span<const telemetry::GcdSample> samples,
                    const sched::Job& job) override;
  void on_node_batch(
      std::span<const telemetry::NodeSample> samples) override;

  [[nodiscard]] const FaultModel& model() const { return model_; }
  [[nodiscard]] FaultModel& model() { return model_; }
  [[nodiscard]] const FaultCounters& counters() const {
    return model_.counters();
  }

 private:
  sched::JobSampleSink& downstream_;
  FaultModel model_;
  std::vector<telemetry::GcdSample> gcd_scratch_;   // batch survivors
  std::vector<telemetry::NodeSample> node_scratch_;  // batch survivors
};

/// JobSinkShards decorator that faults each shard's stream before it
/// reaches the wrapped shard set (the parallel analogue of wrapping a
/// sink in JobFaultInjector).
///
/// Determinism: every drop/corrupt decision is a stateless hash draw,
/// so it is unaffected by sharding.  The one exception is the stuck-at
/// hold state, which lives per shard and thus resets at job-chunk
/// boundaries; since chunk boundaries are a fixed function of the job
/// count (never of the thread count), the realization is still
/// byte-identical for any --jobs=N at a given seed.
class FaultedJobShards final : public sched::JobSinkShards {
 public:
  /// `inner` and `plan` must outlive the shard set.
  FaultedJobShards(sched::JobSinkShards& inner, const FaultPlan& plan)
      : inner_(inner), plan_(plan) {}

  [[nodiscard]] std::unique_ptr<sched::JobSampleSink> make_shard()
      const override;
  void merge_shard(std::unique_ptr<sched::JobSampleSink> shard) override;

  /// Tallies merged from every shard seen so far.
  [[nodiscard]] const FaultCounters& counters() const { return counters_; }
  void publish_metrics() const { publish_fault_counters(counters_); }

 private:
  struct Shard;

  sched::JobSinkShards& inner_;
  const FaultPlan& plan_;
  FaultCounters counters_;
};

/// Scheduler-log truncation: returns a copy of `log` without the jobs
/// that begin after (1 - plan.truncate_fraction) * horizon_s, re-indexed
/// for `total_nodes`.  `dropped_jobs` (optional) receives the loss count.
[[nodiscard]] sched::SchedulerLog truncate_log(
    const sched::SchedulerLog& log, double horizon_s, const FaultPlan& plan,
    std::uint32_t total_nodes, std::size_t* dropped_jobs = nullptr);

}  // namespace exaeff::faults
