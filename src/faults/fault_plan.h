// exaeff/faults/fault_plan.h
//
// Declarative description of the data-loss and corruption a production
// telemetry substrate exhibits.  The paper's analysis runs over three
// months of out-of-band fleet telemetry, and at Frontier scale dropped
// samples, glitching sensors, node outages and scheduler-log gaps are the
// norm, not the exception.  A FaultPlan names each fault class and its
// intensity; the injector (injector.h) realizes the plan deterministically
// from the seed, so any degraded run is exactly reproducible.
//
// Spec grammar (the `--faults=` CLI flag and FaultPlan::parse):
//
//   spec    := item (',' item)*
//   item    := 'seed=' u64              RNG seed            (default 0xFA17)
//            | 'drop=' p                iid sample dropout probability
//            | 'burst=' p ':' len_s     per-channel burst dropout: whole
//                                       len_s epochs go dark w.p. p
//            | 'stuck=' p ':' len_s     stuck-at sensor: channel repeats
//                                       one value for a len_s epoch w.p. p
//            | 'spike=' p ':' mag       glitch: sample power multiplied
//                                       by mag w.p. p
//            | 'outage=' p ':' len_s    node outage: every channel of the
//                                       node dark for a len_s epoch w.p. p
//            | 'skew=' max_s            per-node clock offset, uniform in
//                                       [-max_s, +max_s]
//            | 'reorder=' p ':' depth   delivery reordering: a sample is
//                                       delayed behind up to `depth` later
//                                       ones w.p. p (stream adapter only)
//            | 'truncate=' frac         scheduler log loses the jobs that
//                                       begin in the last frac of the
//                                       campaign
//            | 'crash=' p               process fault: each shard-worker
//                                       incarnation self-kills (SIGKILL)
//                                       at a seeded drawn chunk w.p. p
//                                       (only --shards mode spawns workers)
//
// Example: --faults=drop=0.10,stuck=0.01:60,outage=0.002:3600,seed=7
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace exaeff::faults {

/// One "key=value" item of the comma-separated spec grammar, with the
/// full item text retained for error messages.  The views alias the
/// spec string passed to parse_spec_items — keep it alive.
struct SpecItem {
  std::string_view item;   ///< "drop=0.1"
  std::string_view key;    ///< "drop"
  std::string_view value;  ///< "0.1"
};

/// Splits the comma-separated key=value grammar shared by --faults= and
/// the serving tools' client-side fault plans (tools/loadgen).  Empty
/// items are skipped; an item without '=' throws ConfigError.
[[nodiscard]] std::vector<SpecItem> parse_spec_items(std::string_view spec);

/// Strict whole-token value parsers (ConfigError names the item).
[[nodiscard]] double spec_number(const SpecItem& it);
[[nodiscard]] std::uint64_t spec_u64(const SpecItem& it);

/// One fault class with a probability and a per-class parameter.
struct FaultRate {
  double probability = 0.0;  ///< per-decision probability in [0, 1]
  double param = 0.0;        ///< epoch length (s), magnitude, or depth

  [[nodiscard]] bool enabled() const { return probability > 0.0; }
};

/// Parses the "p:param" pair form of a spec item's value; throws
/// ConfigError when the colon is missing or a number is bad.
[[nodiscard]] FaultRate spec_rate(const SpecItem& it);

/// The full plan.  Default-constructed plans inject nothing.
struct FaultPlan {
  std::uint64_t seed = 0xFA17;

  double drop_probability = 0.0;  ///< iid sample dropout
  FaultRate burst;                ///< param = epoch length, seconds
  FaultRate stuck;                ///< param = epoch length, seconds
  FaultRate spike;                ///< param = power multiplier
  FaultRate outage;               ///< param = epoch length, seconds
  double skew_max_s = 0.0;        ///< per-node clock offset bound
  FaultRate reorder;              ///< param = delay depth, samples
  double truncate_fraction = 0.0; ///< scheduler-log tail loss
  double crash_probability = 0.0; ///< per-incarnation worker self-kill

  /// True when at least one *data* fault class is active.  The crash
  /// fault is deliberately excluded: it kills processes, never touches
  /// telemetry content, so a crash-only plan still produces clean data.
  [[nodiscard]] bool any_enabled() const;

  /// Throws ConfigError when a probability, length or fraction is out of
  /// range (probabilities and fractions in [0, 1], lengths/depths > 0 for
  /// enabled classes, all values finite).
  void validate() const;

  /// Parses the spec grammar above.  Unknown keys, malformed numbers and
  /// out-of-range values throw ConfigError naming the offending item.
  [[nodiscard]] static FaultPlan parse(std::string_view spec);

  /// Canonical one-line rendering of the enabled classes (for logs and
  /// report headers); "none" when nothing is enabled.
  [[nodiscard]] std::string describe() const;
};

}  // namespace exaeff::faults
