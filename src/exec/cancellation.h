// exaeff/exec/cancellation.h
//
// Cooperative cancellation for the execution engine.  A CancellationToken
// is a single word of state shared between whoever requests the stop
// (signal handlers, the deadline watchdog, tests) and the thread pool,
// which checks it at chunk boundaries: once the token trips, no new chunk
// is scheduled, in-flight chunks finish normally, and the interrupted
// parallel_for/map_chunks throws CancelledError on the calling thread so
// partially-computed results are never observed as complete.
//
// cancel() is async-signal-safe (one lock-free atomic CAS), which is the
// whole reason this is not a condition variable: SIGINT/SIGTERM handlers
// call it directly.  The first cancel wins and pins the reason; later
// calls are no-ops so a signal racing a deadline keeps one stable cause.
#pragma once

#include <atomic>

namespace exaeff::exec {

class CancellationToken {
 public:
  /// Reason codes are positive signal numbers (SIGINT, SIGTERM, ...) or
  /// the synthetic kDeadline for wall-clock expiry.
  static constexpr int kDeadline = -1;

  /// Trips the token.  Returns true when this call was the first (its
  /// reason sticks); false when the token was already cancelled.
  /// Async-signal-safe.
  bool cancel(int reason) noexcept {
    int expected = 0;
    return reason != 0 &&
           state_.compare_exchange_strong(expected, reason,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire);
  }

  [[nodiscard]] bool cancelled() const noexcept {
    return state_.load(std::memory_order_relaxed) != 0;
  }

  /// The first cancel()'s reason; 0 while not cancelled.
  [[nodiscard]] int reason() const noexcept {
    return state_.load(std::memory_order_acquire);
  }

  /// Re-arms the token (tests, REPL-style reuse).  Not signal-safe with
  /// respect to concurrent cancel(); call between runs only.
  void reset() noexcept { state_.store(0, std::memory_order_release); }

 private:
  std::atomic<int> state_{0};
};

static_assert(std::atomic<int>::is_always_lock_free,
              "CancellationToken must be async-signal-safe");

}  // namespace exaeff::exec
