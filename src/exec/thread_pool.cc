#include "exec/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <string>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace exaeff::exec {

namespace {

// Set for workers (for life) and for callers while inside a loop, so
// nested parallel_for runs inline with identical chunking instead of
// deadlocking on the dispatch mutex.
thread_local bool t_in_parallel = false;

struct ScopedInParallel {
  bool prev = t_in_parallel;
  ScopedInParallel() { t_in_parallel = true; }
  ~ScopedInParallel() { t_in_parallel = prev; }
};

std::atomic<std::size_t> g_job_count{0};

// Packed [lo, hi) chunk range: lo in the high 32 bits, hi in the low.
constexpr std::uint64_t pack_range(std::uint32_t lo, std::uint32_t hi) {
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

bool take_front(std::atomic<std::uint64_t>& range, std::uint32_t& out) {
  std::uint64_t v = range.load(std::memory_order_relaxed);
  for (;;) {
    const auto lo = static_cast<std::uint32_t>(v >> 32);
    const auto hi = static_cast<std::uint32_t>(v);
    if (lo >= hi) return false;
    if (range.compare_exchange_weak(v, pack_range(lo + 1, hi),
                                    std::memory_order_acq_rel,
                                    std::memory_order_relaxed)) {
      out = lo;
      return true;
    }
  }
}

bool take_back(std::atomic<std::uint64_t>& range, std::uint32_t& out) {
  std::uint64_t v = range.load(std::memory_order_relaxed);
  for (;;) {
    const auto lo = static_cast<std::uint32_t>(v >> 32);
    const auto hi = static_cast<std::uint32_t>(v);
    if (lo >= hi) return false;
    if (range.compare_exchange_weak(v, pack_range(lo, hi - 1),
                                    std::memory_order_acq_rel,
                                    std::memory_order_relaxed)) {
      out = hi - 1;
      return true;
    }
  }
}

}  // namespace

std::size_t default_job_count() {
  if (const char* env = std::getenv("EXAEFF_JOBS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 4096) {
      return static_cast<std::size_t>(v);
    }
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<std::size_t>(hc);
}

void set_job_count(std::size_t n) {
  g_job_count.store(n, std::memory_order_relaxed);
}

std::size_t job_count() {
  const std::size_t n = g_job_count.load(std::memory_order_relaxed);
  return n == 0 ? default_job_count() : n;
}

struct ThreadPool::Loop {
  const std::function<void(std::size_t, std::size_t)>* body = nullptr;
  std::size_t n = 0;
  std::size_t grain = 1;
  const CancellationToken* cancel = nullptr;
  // One packed [lo, hi) chunk range per participant; index 0 is the
  // calling thread, 1..N-1 the workers.
  std::vector<std::atomic<std::uint64_t>> slots;
  std::atomic<bool> abort{false};
  std::atomic<std::size_t> completed{0};  ///< chunks that ran to the end
  std::mutex error_mu;
  std::exception_ptr error;

  /// True once no further chunk may start (error or cancellation).
  [[nodiscard]] bool stopped() const {
    return abort.load(std::memory_order_relaxed) ||
           (cancel != nullptr && cancel->cancelled());
  }
};

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = threads == 0 ? job_count() : threads;
  workers_.reserve(n > 0 ? n - 1 : 0);
  for (std::size_t s = 1; s < n; ++s) {
    workers_.emplace_back([this, s] { worker_main(s); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_serial(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  const ScopedInParallel scope;
  const CancellationToken* tok = cancel_.load(std::memory_order_acquire);
  std::uint64_t executed = 0;
  bool interrupted = false;
  for (std::size_t begin = 0; begin < n; begin += grain) {
    if (tok != nullptr && tok->cancelled()) {
      interrupted = true;
      break;
    }
    EXAEFF_TRACE_SPAN("exec.chunk");
    body(begin, std::min(begin + grain, n));
    ++executed;
  }
  chunks_.fetch_add(executed, std::memory_order_relaxed);
  loops_.fetch_add(1, std::memory_order_relaxed);
  if (interrupted) {
    throw CancelledError("parallel loop cancelled before completion");
  }
}

void ThreadPool::parallel_for(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t g = grain == 0 ? chunk_grain(n) : grain;
  const std::size_t chunks = (n + g - 1) / g;
  EXAEFF_REQUIRE(chunks <= 0xFFFFFFFFULL, "parallel_for: too many chunks");
  if (t_in_parallel || workers_.empty() || chunks == 1) {
    run_serial(n, g, body);
    return;
  }

  const std::lock_guard<std::mutex> top(loop_mu_);
  Loop loop;
  loop.body = &body;
  loop.n = n;
  loop.grain = g;
  loop.cancel = cancel_.load(std::memory_order_acquire);
  const std::size_t participants = workers_.size() + 1;
  loop.slots = std::vector<std::atomic<std::uint64_t>>(participants);
  for (std::size_t s = 0; s < participants; ++s) {
    const auto lo = static_cast<std::uint32_t>(chunks * s / participants);
    const auto hi =
        static_cast<std::uint32_t>(chunks * (s + 1) / participants);
    loop.slots[s].store(pack_range(lo, hi), std::memory_order_relaxed);
  }

  {
    const std::lock_guard<std::mutex> lk(mu_);
    loop_ = &loop;
    done_workers_ = 0;
    ++epoch_;
  }
  cv_.notify_all();

  {
    const ScopedInParallel scope;
    run_slot(loop, 0);
  }

  {
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [&] { return done_workers_ == workers_.size(); });
    loop_ = nullptr;
  }
  loops_.fetch_add(1, std::memory_order_relaxed);
  // A chunk's own exception outranks cancellation: exactly one exception
  // reaches the caller either way.  A loop whose chunks all completed
  // before the token was observed returns normally.
  if (loop.error) std::rethrow_exception(loop.error);
  if (loop.completed.load(std::memory_order_acquire) < chunks) {
    throw CancelledError("parallel loop cancelled before completion");
  }
}

void ThreadPool::run_slot(Loop& loop, std::size_t slot) {
  std::uint64_t executed = 0;
  std::uint64_t stolen = 0;
  const auto run_chunk = [&](std::uint32_t c) {
    const std::size_t begin = static_cast<std::size_t>(c) * loop.grain;
    const std::size_t end = std::min(begin + loop.grain, loop.n);
    EXAEFF_TRACE_SPAN("exec.chunk");
    try {
      (*loop.body)(begin, end);
      loop.completed.fetch_add(1, std::memory_order_acq_rel);
    } catch (...) {
      {
        const std::lock_guard<std::mutex> lk(loop.error_mu);
        if (!loop.error) loop.error = std::current_exception();
      }
      loop.abort.store(true, std::memory_order_relaxed);
    }
    ++executed;
  };

  std::uint32_t c = 0;
  while (!loop.stopped() && take_front(loop.slots[slot], c)) {
    run_chunk(c);
  }
  const std::size_t nslots = loop.slots.size();
  for (std::size_t off = 1; off < nslots; ++off) {
    auto& victim = loop.slots[(slot + off) % nslots];
    while (!loop.stopped() && take_back(victim, c)) {
      run_chunk(c);
      ++stolen;
    }
  }
  chunks_.fetch_add(executed, std::memory_order_relaxed);
  steals_.fetch_add(stolen, std::memory_order_relaxed);
}

void ThreadPool::worker_main(std::size_t slot) {
  t_in_parallel = true;  // nested loops from pool code always run inline
  std::uint64_t seen = 0;
  for (;;) {
    Loop* loop = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
      loop = loop_;
    }
    if (loop != nullptr) {
      EXAEFF_TRACE_SPAN("exec.worker");
      run_slot(*loop, slot);
    }
    {
      const std::lock_guard<std::mutex> lk(mu_);
      ++done_workers_;
    }
    done_cv_.notify_one();
  }
}

ThreadPool::Stats ThreadPool::stats() const {
  Stats s;
  s.loops = loops_.load(std::memory_order_relaxed);
  s.chunks = chunks_.load(std::memory_order_relaxed);
  s.steals = steals_.load(std::memory_order_relaxed);
  return s;
}

void ThreadPool::publish_metrics() {
  if (!obs::metrics_enabled()) return;
  const std::lock_guard<std::mutex> lk(publish_mu_);
  const Stats now = stats();
  auto& reg = obs::MetricsRegistry::global();
  reg.counter("exaeff_exec_loops_total", "Parallel loops dispatched")
      .inc(now.loops - published_.loops);
  reg.counter("exaeff_exec_chunks_total", "Parallel chunks executed")
      .inc(now.chunks - published_.chunks);
  reg.counter("exaeff_exec_steals_total",
              "Chunks stolen from another worker's slot")
      .inc(now.steals - published_.steals);
  reg.gauge("exaeff_exec_threads", "Thread pool participants")
      .set(static_cast<double>(thread_count()));
  published_ = now;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace exaeff::exec
