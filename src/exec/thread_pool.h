// exaeff/exec/thread_pool.h
//
// Deterministic parallel execution engine (paper §V context: the
// projection substrate is three months of fleet telemetry; re-simulating
// it serially caps how large a fleet we can study).  A work-stealing
// thread pool with chunked parallel_for / parallel_map plus an
// ordered-reduction primitive (map_chunks) that hands back per-chunk
// results in submission order.
//
// Determinism contract
// --------------------
// Chunk boundaries are a fixed function of (n, grain) — never of the
// thread count.  Which *thread* runs a chunk varies run to run, but each
// chunk sees exactly the same index range, and map_chunks() returns the
// per-chunk results in ascending chunk order, so a serial left-fold over
// them is byte-identical for any --jobs=N, including N=1.  Callers keep
// the contract by (a) deriving per-item state from splittable RNG streams
// or pure functions of the index, never from shared mutable state, and
// (b) merging chunk results serially, in order.
//
// Concurrency model
// -----------------
// N-1 persistent workers plus the calling thread.  Chunks are dealt into
// per-participant slots up front; each participant drains its own slot
// front-to-back and then steals from other slots back-to-front (packed
// 2x32-bit atomic ranges, CAS only — no locks on the steal path).  One
// loop runs at a time; nested parallel_for from inside a worker runs
// inline with identical chunking, so pipelines can compose freely
// (e.g. faults-sweep points in parallel, each generating a campaign).
// The first exception thrown by any chunk aborts the loop and is
// rethrown on the calling thread.
//
// Cancellation
// ------------
// An optional CancellationToken (set_cancellation_token) is checked at
// every chunk boundary: once tripped, no participant takes another chunk,
// in-flight chunks finish, and the loop throws CancelledError on the
// caller — unless a chunk itself threw first, in which case that single
// exception is rethrown instead (never both).  A loop whose chunks all
// completed before the token was observed returns normally: complete
// results are never discarded.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "exec/cancellation.h"

namespace exaeff::exec {

/// Process-wide worker-count default: EXAEFF_JOBS env var if set and
/// positive, else std::thread::hardware_concurrency() (min 1).
[[nodiscard]] std::size_t default_job_count();

/// Overrides the job count used by pools constructed afterwards
/// (the CLI's --jobs=N). 0 restores default_job_count().
void set_job_count(std::size_t n);

/// Effective job count: the set_job_count() override or the default.
[[nodiscard]] std::size_t job_count();

class ThreadPool {
 public:
  /// threads == 0 means job_count(). One thread means no workers are
  /// spawned and every loop runs inline on the caller.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Participants per loop (workers + calling thread).
  [[nodiscard]] std::size_t thread_count() const {
    return workers_.size() + 1;
  }

  /// Default grain: ~kChunkTarget chunks regardless of thread count, so
  /// chunk boundaries (and thus reduction order) never depend on N.
  static constexpr std::size_t kChunkTarget = 64;
  [[nodiscard]] static std::size_t chunk_grain(std::size_t n) {
    const std::size_t g = (n + kChunkTarget - 1) / kChunkTarget;
    return g == 0 ? 1 : g;
  }

  /// Runs body(begin, end) over [0, n) in chunks of `grain` indices
  /// (grain == 0 means chunk_grain(n)). Blocks until every chunk has
  /// finished; rethrows the first chunk exception.
  void parallel_for(std::size_t n, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& body);

  /// Element-wise map: out[i] = fn(i). fn is invoked concurrently and
  /// must be safe to call from multiple threads; results land in index
  /// order regardless of which thread computed them.
  template <typename Fn>
  auto parallel_map(std::size_t n, Fn&& fn, std::size_t grain = 0)
      -> std::vector<std::decay_t<std::invoke_result_t<Fn&, std::size_t>>> {
    using T = std::decay_t<std::invoke_result_t<Fn&, std::size_t>>;
    std::vector<std::optional<T>> tmp(n);
    parallel_for(n, grain, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) tmp[i].emplace(fn(i));
    });
    std::vector<T> out;
    out.reserve(n);
    for (auto& t : tmp) out.push_back(std::move(*t));
    return out;
  }

  /// Ordered reduction primitive: fn(begin, end) produces one partial
  /// per chunk; the partials come back in ascending chunk order, ready
  /// for a serial in-order merge. A left-fold of contiguous chunks
  /// merged left-to-right is bit-identical to the full serial fold.
  template <typename Fn>
  auto map_chunks(std::size_t n, std::size_t grain, Fn&& fn) -> std::vector<
      std::decay_t<std::invoke_result_t<Fn&, std::size_t, std::size_t>>> {
    using T = std::decay_t<std::invoke_result_t<Fn&, std::size_t, std::size_t>>;
    const std::size_t g = grain == 0 ? chunk_grain(n) : grain;
    const std::size_t chunks = n == 0 ? 0 : (n + g - 1) / g;
    std::vector<std::optional<T>> tmp(chunks);
    parallel_for(n, g, [&](std::size_t begin, std::size_t end) {
      tmp[begin / g].emplace(fn(begin, end));
    });
    std::vector<T> out;
    out.reserve(chunks);
    for (auto& t : tmp) out.push_back(std::move(*t));
    return out;
  }

  /// Cumulative scheduling statistics (all loops since construction).
  struct Stats {
    std::uint64_t loops = 0;   ///< parallel_for invocations
    std::uint64_t chunks = 0;  ///< chunk executions
    std::uint64_t steals = 0;  ///< chunks taken from another slot
  };
  [[nodiscard]] Stats stats() const;

  /// Publishes stats deltas since the last call into the obs registry
  /// (exaeff_exec_loops/chunks/steals_total, exaeff_exec_threads).
  void publish_metrics();

  /// Attaches (or detaches, with nullptr) the cancellation token checked
  /// at chunk boundaries.  `token` must outlive every loop run while it
  /// is attached.  Safe to call concurrently with running loops; chunks
  /// already in flight finish either way.
  void set_cancellation_token(const CancellationToken* token) {
    cancel_.store(token, std::memory_order_release);
  }
  [[nodiscard]] const CancellationToken* cancellation_token() const {
    return cancel_.load(std::memory_order_acquire);
  }

  /// Shared pool sized from job_count() at first use. set_job_count()
  /// must be called before the first access to take effect here.
  static ThreadPool& global();

 private:
  struct Loop;

  void run_serial(std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body);
  void run_slot(Loop& loop, std::size_t slot);
  void worker_main(std::size_t slot);

  std::vector<std::thread> workers_;

  // Top-level loops are serialized; nested calls run inline instead.
  std::mutex loop_mu_;

  // Dispatch handshake: caller publishes (loop_, epoch_) under mu_ and
  // wakes the workers; each worker runs its slot exactly once per epoch
  // and reports back through done_workers_.
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  std::uint64_t epoch_ = 0;
  std::size_t done_workers_ = 0;
  Loop* loop_ = nullptr;
  bool stop_ = false;

  std::atomic<const CancellationToken*> cancel_{nullptr};
  std::atomic<std::uint64_t> loops_{0};
  std::atomic<std::uint64_t> chunks_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::mutex publish_mu_;
  Stats published_;
};

/// Maps fn over [0, n) through `pool`, or serially (same chunking) when
/// pool is null — the common "optional parallelism" shape for library
/// code whose callers may not have a pool.
template <typename Fn>
auto map_indexed(ThreadPool* pool, std::size_t n, Fn&& fn)
    -> std::vector<std::decay_t<std::invoke_result_t<Fn&, std::size_t>>> {
  using T = std::decay_t<std::invoke_result_t<Fn&, std::size_t>>;
  if (pool != nullptr) return pool->parallel_map(n, fn);
  std::vector<T> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(fn(i));
  return out;
}

}  // namespace exaeff::exec
