#include "agent/fingerprint.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "agent/response_model.h"

namespace exaeff::agent {

double JobFingerprint::power_stddev() const {
  if (samples < 2) return 0.0;
  return std::sqrt(m2_power / static_cast<double>(samples));
}

core::Region JobFingerprint::dominant_region() const {
  std::size_t best = 0;
  for (std::size_t r = 1; r < core::kRegionCount; ++r) {
    if (region_energy_j[r] > region_energy_j[best]) best = r;
  }
  return static_cast<core::Region>(best);
}

void JobFingerprintAccumulator::on_job_sample(
    const telemetry::GcdSample& sample, const sched::Job& job) {
  JobFingerprint& fp = fingerprints_[job.job_id];
  if (fp.samples == 0) {
    fp.job_id = job.job_id;
    fp.domain = job.domain;
    fp.bin = job.bin;
  }
  const double p = sample.power_w;
  const double e = p * window_s_;
  fp.region_energy_j[static_cast<std::size_t>(boundaries_.classify(p))] += e;
  fp.energy_j += e;
  fp.gpu_hours += window_s_ / 3600.0;
  // Welford mean/variance of the power samples.
  ++fp.samples;
  const double delta = p - fp.mean_power_w;
  fp.mean_power_w += delta / static_cast<double>(fp.samples);
  fp.m2_power += delta * (p - fp.mean_power_w);
}

std::vector<JobSensitivity> predict_sensitivities(
    const JobFingerprintAccumulator& acc,
    const core::CapResponseTable& table, const gpusim::DeviceSpec& spec,
    double cap_mhz) {
  const RegionResponseModel model(table, spec);
  // The response depends only on (region, cap), and the cap is fixed
  // across the call: resolve the four per-region rows once instead of
  // re-searching the table for every job in the fleet.
  std::array<WindowResponse, core::kRegionCount> responses;
  for (std::size_t r = 0; r < core::kRegionCount; ++r) {
    responses[r] = model.response(static_cast<core::Region>(r), cap_mhz);
  }
  std::vector<JobSensitivity> out;
  out.reserve(acc.fingerprints().size());
  for (const auto& [id, fp] : acc.fingerprints()) {
    JobSensitivity s;
    s.job_id = id;
    s.energy_j = fp.energy_j;
    double runtime = 0.0;
    for (std::size_t r = 0; r < core::kRegionCount; ++r) {
      const double e = fp.region_energy_j[r];
      if (e <= 0.0) continue;
      const WindowResponse& resp = responses[r];
      s.saved_j += e * (1.0 - resp.energy_scale);
      // The job's wall time is the sum of its phases' times; weight each
      // region's slowdown by its share of the job's energy (a proxy for
      // its share of time at this granularity).
      runtime += (e / fp.energy_j) * resp.runtime_scale;
    }
    s.runtime_scale = runtime > 0.0 ? runtime : 1.0;
    out.push_back(s);
  }
  std::sort(out.begin(), out.end(),
            [](const JobSensitivity& a, const JobSensitivity& b) {
              return a.saved_j > b.saved_j;
            });
  return out;
}

FingerprintProjection aggregate_sensitivities(
    const std::vector<JobSensitivity>& sensitivities) {
  FingerprintProjection agg;
  double weighted_rt = 0.0;
  for (const auto& s : sensitivities) {
    agg.total_energy_j += s.energy_j;
    agg.total_saved_j += s.saved_j;
    weighted_rt += s.energy_j * s.runtime_scale;
    ++agg.jobs;
  }
  agg.mean_runtime_scale =
      agg.total_energy_j > 0.0 ? weighted_rt / agg.total_energy_j : 1.0;
  return agg;
}

}  // namespace exaeff::agent
