// exaeff/agent/power_steering.h
//
// Node power steering: hold a node at a power *target* by continuously
// adjusting a common frequency cap across its GCDs — the control loop a
// facility runs during demand-response events or when the budget
// allocator hands each node a share of the machine budget.
//
// The controller is a clamped integral controller on the cap with a
// deadband: simple, stable for the monotone plant (power is
// non-decreasing in the cap), and free of steady-state error.
#pragma once

#include "gpusim/device_spec.h"

namespace exaeff::agent {

/// Controller tuning.
struct SteeringConfig {
  double target_w = 0.0;      ///< node (or GCD-sum) power target
  double gain_mhz_per_w = 1.2;///< integral gain
  double deadband_w = 15.0;   ///< no actuation within target +- deadband
  double min_cap_mhz = 0.0;   ///< defaults to the device DPM floor
  double max_cap_mhz = 0.0;   ///< defaults to the device f_max
};

/// One steering loop instance.
class PowerSteering {
 public:
  PowerSteering(const SteeringConfig& config,
                const gpusim::DeviceSpec& spec);

  /// Feeds one power measurement; returns the frequency cap to apply
  /// until the next measurement (>= f_max means uncapped).
  double update(double measured_w);

  [[nodiscard]] double current_cap_mhz() const { return cap_mhz_; }
  /// True when the last `n` updates stayed inside the deadband.
  [[nodiscard]] bool settled(std::size_t n = 3) const {
    return in_band_streak_ >= n;
  }
  [[nodiscard]] std::size_t update_count() const { return updates_; }

 private:
  SteeringConfig config_;
  double f_max_;
  double cap_mhz_;
  std::size_t in_band_streak_ = 0;
  std::size_t updates_ = 0;
};

}  // namespace exaeff::agent
