#include "agent/cap_applier.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/error.h"
#include "obs/metrics.h"

namespace exaeff::agent {

CapApplier::CapApplier(ApplyFn fn, RetryPolicy policy)
    : fn_(std::move(fn)), policy_(policy) {
  EXAEFF_REQUIRE(static_cast<bool>(fn_), "cap applier needs an apply fn");
  policy_.validate();
}

ApplyOutcome CapApplier::apply(double cap_mhz) {
  ApplyOutcome out;
  ++counters_.requests;
  for (std::size_t attempt = 1; attempt <= policy_.max_attempts; ++attempt) {
    ++counters_.attempts;
    out.attempts = attempt;
    if (fn_(cap_mhz)) {
      out.applied = true;
      break;
    }
    ++counters_.transient_failures;
    if (policy_.retries_after(attempt)) {
      out.backoff_s += policy_.backoff_before_retry(attempt);
    }
  }
  counters_.backoff_s += out.backoff_s;
  if (!out.applied) ++counters_.gave_up;
  return out;
}

void CapApplier::publish_metrics() const {
  if (!obs::metrics_enabled()) return;
  auto& reg = obs::MetricsRegistry::global();
  reg.counter("exaeff_cap_apply_requests_total",
              "Cap-apply operations requested")
      .inc(counters_.requests);
  reg.counter("exaeff_cap_apply_attempts_total",
              "Raw cap-apply invocations including retries")
      .inc(counters_.attempts);
  if (counters_.transient_failures > 0) {
    reg.counter("exaeff_cap_apply_transient_failures_total",
                "Cap-apply invocations that failed transiently")
        .inc(counters_.transient_failures);
  }
  if (counters_.gave_up > 0) {
    reg.counter("exaeff_cap_apply_gave_up_total",
                "Cap-apply operations that exhausted all retries")
        .inc(counters_.gave_up);
  }
  if (counters_.backoff_s > 0.0) {
    reg.gauge("exaeff_cap_apply_backoff_seconds",
              "Simulated backoff accumulated across cap-apply retries")
        .add(counters_.backoff_s);
  }
}

CapApplier::ApplyFn CapApplier::flaky_fn(double failure_probability,
                                         std::uint64_t seed) {
  EXAEFF_REQUIRE(failure_probability >= 0.0 && failure_probability <= 1.0,
                 "failure probability must be in [0, 1]");
  // The call counter makes draws depend only on (seed, call index), so a
  // replay with the same seed sees the identical failure pattern.
  auto calls = std::make_shared<std::uint64_t>(0);
  return [failure_probability, seed, calls](double /*cap_mhz*/) {
    const std::uint64_t n = (*calls)++;
    std::uint64_t sm = seed ^ (n * 0xC2B2AE3D27D4EB4FULL);
    const double u = static_cast<double>(splitmix64(sm) >> 11) * 0x1.0p-53;
    return u >= failure_probability;
  };
}

}  // namespace exaeff::agent
