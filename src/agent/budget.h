// exaeff/agent/budget.h
//
// Facility power-budget allocation — the constrained-power-budget setting
// the paper's introduction motivates ("optimize the power-performance
// trade-off within constrained power budgets").  Given the instantaneous
// demand of a set of GCDs (their uncapped power draws and regions of
// operation) and a total power budget, distribute per-GCD frequency caps
// and estimate the throughput cost.
//
// Strategies compared by the ablation bench:
//   * uniform ceiling  — one common power ceiling lowered until the fleet
//     fits (what a naive site-wide cap does);
//   * region-aware     — cap memory-intensive GCDs first (their runtime
//     barely moves), then compute-intensive ones, and latency-bound GCDs
//     last (capping them is pure loss).
#pragma once

#include <span>
#include <vector>

#include "agent/response_model.h"

namespace exaeff::agent {

/// One GCD's instantaneous demand.
struct GcdDemand {
  double uncapped_power_w = 0.0;
  core::Region region = core::Region::kLatencyBound;
};

/// One GCD's allocation decision.
struct GcdAllocation {
  double cap_mhz = 1.0e9;     ///< frequency cap applied (>= f_max: none)
  double power_w = 0.0;       ///< estimated power under the cap
  double runtime_scale = 1.0; ///< estimated slowdown of work on this GCD
};

/// Result of one allocation round.
struct BudgetPlan {
  std::vector<GcdAllocation> allocations;
  double total_power_w = 0.0;
  bool feasible = false;          ///< total fits under the budget
  /// Mean runtime scale across GCDs, weighted by uncapped power (a proxy
  /// for where the work is).
  double throughput_cost = 0.0;
};

/// Allocation strategies.
enum class BudgetStrategy {
  kUniformCeiling,  ///< one common cap for every GCD
  kRegionAware,     ///< spend the budget cut where it is cheapest
};

/// Distributes frequency caps so estimated total power fits `budget_w`.
///
/// The per-GCD power under a cap is estimated from the characterization
/// table (region-specific power percentage); runtime cost likewise.  The
/// available cap settings are the table's frequency sweep.
class BudgetAllocator {
 public:
  BudgetAllocator(const core::CapResponseTable& table,
                  const gpusim::DeviceSpec& spec);

  [[nodiscard]] BudgetPlan allocate(std::span<const GcdDemand> demands,
                                    double budget_w,
                                    BudgetStrategy strategy) const;

  /// Power multiplier for a region at a cap (from the table).
  [[nodiscard]] double power_scale(core::Region region, double cap_mhz) const;

 private:
  const core::CapResponseTable& table_;
  gpusim::DeviceSpec spec_;
  RegionResponseModel response_;
  std::vector<double> settings_;  ///< descending cap sweep incl. f_max
};

}  // namespace exaeff::agent
