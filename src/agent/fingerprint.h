// exaeff/agent/fingerprint.h
//
// Per-job application fingerprinting — the refinement the paper's
// discussion calls out: "The telemetry data can be augmented to include
// more precise application fingerprinting, with more precise sensitivity
// prediction regarding power management."
//
// Instead of pooling all samples into four global regions, a
// JobFingerprintAccumulator keeps each job's own region-resolved energy
// (its *fingerprint*).  The sensitivity predictor then projects each job
// individually — a job that is 95 % memory-bound gets the full MB
// response, a mixed job a weighted one — and jobs can be ranked by
// expected savings, which is what an operator would actually act on.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/characterization.h"
#include "core/modal.h"
#include "sched/fleetgen.h"

namespace exaeff::agent {

/// One job's power fingerprint: region-resolved energy plus moments.
struct JobFingerprint {
  std::uint64_t job_id = 0;
  sched::ScienceDomain domain = sched::ScienceDomain::kChemistry;
  sched::SizeBin bin = sched::SizeBin::kE;
  std::array<double, core::kRegionCount> region_energy_j{};
  double energy_j = 0.0;
  double gpu_hours = 0.0;
  double mean_power_w = 0.0;
  double m2_power = 0.0;  ///< running sum of squared deviations
  std::size_t samples = 0;

  [[nodiscard]] double region_fraction(core::Region r) const {
    return energy_j > 0.0
               ? region_energy_j[static_cast<std::size_t>(r)] / energy_j
               : 0.0;
  }
  [[nodiscard]] double power_stddev() const;
  /// The region carrying the most energy.
  [[nodiscard]] core::Region dominant_region() const;
};

/// Streaming sink that builds per-job fingerprints.
class JobFingerprintAccumulator final : public sched::JobSampleSink {
 public:
  JobFingerprintAccumulator(double window_s,
                            core::RegionBoundaries boundaries)
      : window_s_(window_s), boundaries_(boundaries) {}

  void on_job_sample(const telemetry::GcdSample& sample,
                     const sched::Job& job) override;

  [[nodiscard]] const std::unordered_map<std::uint64_t, JobFingerprint>&
  fingerprints() const {
    return fingerprints_;
  }
  [[nodiscard]] std::size_t job_count() const { return fingerprints_.size(); }

 private:
  double window_s_;
  core::RegionBoundaries boundaries_;
  std::unordered_map<std::uint64_t, JobFingerprint> fingerprints_;
};

/// Per-job projection for one cap setting.
struct JobSensitivity {
  std::uint64_t job_id = 0;
  double energy_j = 0.0;
  double saved_j = 0.0;        ///< projected energy saved
  double runtime_scale = 1.0;  ///< projected slowdown of the whole job
  [[nodiscard]] double savings_pct() const {
    return energy_j > 0.0 ? 100.0 * saved_j / energy_j : 0.0;
  }
};

/// Projects each job through its own fingerprint (energy-weighted mix of
/// region responses).  Jobs are returned sorted by absolute savings.
[[nodiscard]] std::vector<JobSensitivity> predict_sensitivities(
    const JobFingerprintAccumulator& acc,
    const core::CapResponseTable& table, const gpusim::DeviceSpec& spec,
    double cap_mhz);

/// Aggregate of the per-job projection — comparable to the region-level
/// ProjectionEngine output, but computed job-by-job.
struct FingerprintProjection {
  double total_energy_j = 0.0;
  double total_saved_j = 0.0;
  double mean_runtime_scale = 1.0;  ///< energy-weighted
  std::size_t jobs = 0;
  [[nodiscard]] double savings_pct() const {
    return total_energy_j > 0.0 ? 100.0 * total_saved_j / total_energy_j
                                : 0.0;
  }
};

[[nodiscard]] FingerprintProjection aggregate_sensitivities(
    const std::vector<JobSensitivity>& sensitivities);

}  // namespace exaeff::agent
